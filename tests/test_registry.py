"""Tests for the cross-run registry ledger (repro.observe.registry)."""

from __future__ import annotations

import json

import pytest

from repro.observe.registry import (
    RUN_SCHEMA,
    append_run,
    diff_runs,
    find_run,
    load_runs,
    matching_baseline,
    render_diff,
    render_run,
    render_runs_list,
    runs_path,
    shape_fingerprint,
)


def make_record(
    run_id: str = "r-0001",
    pairs_per_second: float = 1_000_000.0,
    fingerprint: str | None = None,
    **overrides,
) -> dict:
    record = {
        "schema": RUN_SCHEMA,
        "run_id": run_id,
        "timestamp_unix": 1_754_000_000.0,
        "host": "testhost",
        "fingerprint": fingerprint or shape_fingerprint(
            stat="r2", n_snps=300, n_samples=64, block_snps=64,
        ),
        "config": {
            "engine": "threads", "workers": 2, "stat": "r2",
            "n_snps": 300, "n_samples": 64, "block_snps": 64,
            "band": None, "memory_budget": None,
        },
        "wall_seconds": 0.05,
        "pairs_computed": 50_000,
        "pairs_per_second": pairs_per_second,
        "percent_of_peak": 1.5,
        "tiles": {
            "total": 15, "computed": 15, "skipped": 0, "pruned": 0,
            "quarantined": 0, "retries": 0,
        },
        "anomalies": [],
        "artifacts": {"out": "ld.npy"},
    }
    record.update(overrides)
    return record


class TestLedger:
    def test_runs_path_env_override(self, tmp_path, monkeypatch):
        monkeypatch.setenv("REPRO_RUNS_PATH", str(tmp_path / "r.jsonl"))
        assert runs_path() == tmp_path / "r.jsonl"

    def test_append_and_load_round_trip(self, tmp_path):
        path = tmp_path / "runs.jsonl"
        append_run(make_record("r-a"), path)
        append_run(make_record("r-b"), path)
        records, n_torn = load_runs(path)
        assert [r["run_id"] for r in records] == ["r-a", "r-b"]
        assert n_torn == 0

    def test_append_rejects_wrong_schema(self, tmp_path):
        with pytest.raises(ValueError, match="repro-run/1"):
            append_run({"schema": "bogus"}, tmp_path / "runs.jsonl")

    def test_missing_ledger_is_empty(self, tmp_path):
        assert load_runs(tmp_path / "absent.jsonl") == ([], 0)

    def test_torn_final_line_tolerated_and_counted(self, tmp_path):
        path = tmp_path / "runs.jsonl"
        append_run(make_record("r-a"), path)
        with open(path, "a", encoding="utf-8") as fh:
            fh.write('{"schema": "repro-run/1", "run_id": "r-torn')
        records, n_torn = load_runs(path)
        assert [r["run_id"] for r in records] == ["r-a"]
        assert n_torn == 1

    def test_interior_corruption_raises(self, tmp_path):
        path = tmp_path / "runs.jsonl"
        good = json.dumps(make_record("r-a"))
        path.write_text(f"not json at all\n{good}\n")
        with pytest.raises(ValueError, match="corrupt mid-ledger"):
            load_runs(path)

    def test_wrong_schema_record_raises(self, tmp_path):
        path = tmp_path / "runs.jsonl"
        path.write_text('{"schema": "repro-live/1"}\n')
        with pytest.raises(ValueError, match="not a repro-run/1"):
            load_runs(path)


class TestFingerprint:
    def test_same_problem_same_print(self):
        a = shape_fingerprint(
            stat="r2", n_snps=1000, n_samples=100, block_snps=128,
        )
        b = shape_fingerprint(
            stat="r2", n_snps=1000, n_samples=100, block_snps=128,
        )
        assert a == b

    @pytest.mark.parametrize("change", [
        {"stat": "D"}, {"n_snps": 1001}, {"n_samples": 101},
        {"block_snps": 64}, {"band": "window 50"},
    ])
    def test_any_shape_change_changes_print(self, change):
        base = dict(stat="r2", n_snps=1000, n_samples=100, block_snps=128)
        assert shape_fingerprint(**base) != shape_fingerprint(
            **{**base, **change}
        )


class TestFindRun:
    def test_by_index_and_negative_index(self):
        records = [make_record("r-a"), make_record("r-b")]
        assert find_run(records, "0")["run_id"] == "r-a"
        assert find_run(records, "-1")["run_id"] == "r-b"

    def test_by_id_prefix(self):
        records = [make_record("alpha-1"), make_record("beta-2")]
        assert find_run(records, "beta")["run_id"] == "beta-2"

    def test_errors(self):
        records = [make_record("run-a"), make_record("run-b")]
        with pytest.raises(ValueError, match="out of range"):
            find_run(records, "7")
        with pytest.raises(ValueError, match="no run matches"):
            find_run(records, "zzz")
        with pytest.raises(ValueError, match="ambiguous"):
            find_run(records, "run-")


class TestDiff:
    def test_detects_30_percent_regression(self):
        base = make_record("r-base", pairs_per_second=1_000_000.0)
        slow = make_record("r-slow", pairs_per_second=650_000.0)
        diff = diff_runs(base, slow)
        assert diff["flagged"] is True
        assert diff["regression"] == pytest.approx(0.35)
        assert "REGRESSION" in render_diff(diff)

    def test_small_drop_not_flagged(self):
        base = make_record("r-base", pairs_per_second=1_000_000.0)
        meh = make_record("r-meh", pairs_per_second=900_000.0)
        diff = diff_runs(base, meh)
        assert diff["flagged"] is False
        assert "ok:" in render_diff(diff)

    def test_faster_candidate_not_flagged(self):
        base = make_record("r-base", pairs_per_second=1_000_000.0)
        fast = make_record("r-fast", pairs_per_second=2_000_000.0)
        assert diff_runs(base, fast)["flagged"] is False

    def test_shape_mismatch_blocks_verdict(self):
        base = make_record("r-base", pairs_per_second=1_000_000.0)
        other = make_record(
            "r-other", pairs_per_second=100_000.0,
            fingerprint=shape_fingerprint(
                stat="r2", n_snps=9999, n_samples=64, block_snps=64,
            ),
        )
        diff = diff_runs(base, other)
        assert diff["flagged"] is False
        assert diff["fingerprint_match"] is False
        assert "fingerprints differ" in render_diff(diff)

    def test_threshold_validation(self):
        base = make_record("a")
        with pytest.raises(ValueError, match="threshold"):
            diff_runs(base, base, threshold=0.0)
        with pytest.raises(ValueError, match="threshold"):
            diff_runs(base, base, threshold=1.5)

    def test_new_anomalies_surface(self):
        base = make_record("r-base")
        cand = make_record(
            "r-cand", pairs_per_second=100_000.0, anomalies=["io_bound"],
        )
        text = render_diff(diff_runs(base, cand))
        assert "new anomalies: io_bound" in text

    def test_matching_baseline_prefers_most_recent(self):
        a = make_record("r-a")
        b = make_record("r-b")
        other = make_record(
            "r-x",
            fingerprint=shape_fingerprint(
                stat="D", n_snps=300, n_samples=64, block_snps=64,
            ),
        )
        cand = make_record("r-c")
        records = [a, b, other, cand]
        assert matching_baseline(records, cand)["run_id"] == "r-b"
        assert matching_baseline([other, cand], cand) is None


class TestRenderers:
    def test_list_table(self):
        text = render_runs_list([make_record("r-a"), make_record("r-b")])
        assert "2 recorded" in text
        assert "r-a" in text and "r-b" in text
        assert "pairs/s" in text

    def test_list_empty_and_torn(self):
        assert "empty ledger" in render_runs_list([])
        assert "1 torn final record" in render_runs_list(
            [make_record("r-a")], n_torn=1
        )

    def test_show_record(self):
        text = render_run(make_record("r-a", anomalies=["worker_idle"]))
        assert "r-a" in text
        assert "testhost" in text
        assert "anomalies: worker_idle" in text
        assert "out: ld.npy" in text


class TestCliRegistryFlow:
    """The `ld --engine` -> ledger -> `runs list|show|diff` loop."""

    def _run_ld(self, tmp_path, out_name, extra=()):
        from repro.cli import main

        ms = tmp_path / "panel.ms"
        if not ms.exists():
            assert main([
                "simulate", "--kind", "sfs", "--samples", "32", "--snps",
                "120", "--out", str(ms),
            ]) == 0
        return main([
            "ld", str(ms), "--engine", "serial", "--block-snps", "40",
            "--out", str(tmp_path / out_name), *extra,
        ])

    def test_engine_run_appends_record(self, tmp_path, capsys):
        from repro.cli import main

        assert self._run_ld(tmp_path, "ld1.npy") == 0
        records, n_torn = load_runs()  # conftest isolates REPRO_RUNS_PATH
        assert n_torn == 0 and len(records) == 1
        record = records[0]
        assert record["schema"] == RUN_SCHEMA
        assert record["tiles"]["computed"] == record["tiles"]["total"] > 0
        assert record["pairs_per_second"] > 0
        assert main(["runs", "list"]) == 0
        assert record["run_id"] in capsys.readouterr().out

    def test_runs_show_and_diff_exit_codes(self, tmp_path, capsys):
        from repro.cli import main

        assert self._run_ld(tmp_path, "ld1.npy") == 0
        assert self._run_ld(tmp_path, "ld2.npy") == 0
        assert main(["runs", "show", "0"]) == 0
        assert "fingerprint" in capsys.readouterr().out
        # Same shape, real timings: not a >=30% regression in general is
        # not guaranteed, so force the verdict by editing the ledger.
        records, _ = load_runs()
        records[1]["pairs_per_second"] = (
            records[0]["pairs_per_second"] * 0.5
        )
        target = runs_path()
        target.write_text(
            "".join(json.dumps(r) + "\n" for r in records)
        )
        assert main(["runs", "diff", "0", "1"]) == 1
        assert "REGRESSION" in capsys.readouterr().out
        assert main([
            "runs", "diff", "0", "1", "--threshold", "0.9",
        ]) == 0
