"""Differential test harness: every r² execution path must agree exactly.

One seeded generator produces panels across awkward shapes (sample counts
off 64-bit word boundaries, monomorphic all-zero/all-one columns, more
SNPs than samples and vice versa), and every implementation in the repo —
the naive Section II-B baseline, the blocked GEMM under every registered
kernel (both fused macro-kernels and both legacy micro-kernels), the threaded driver at several widths, the streaming loop,
and all three sharded-engine executors — is required to reproduce the
same r² matrix to float64 round-off.
"""

from __future__ import annotations

import numpy as np
import pytest

from repro.baselines.naive import naive_ld_matrix
from repro.core.engine import run_engine
from repro.core.ldmatrix import compute_ld, ld_matrix
from repro.core.gemm import GEMM_KERNELS
from repro.core.microkernel import MICRO_KERNELS
from repro.core.parallel import popcount_gemm_parallel
from repro.core.stats import r_squared_matrix
from repro.core.streaming import stream_ld_blocks
from repro.encoding.bitmatrix import BitMatrix

from tests.conftest import assert_allclose_nan, reference_ld

#: (n_samples, n_snps) grid: word-aligned and non-aligned sample counts,
#: tall/square/wide SNP panels, and single-word/single-SNP degenerates.
SHAPES = [
    (64, 20),    # exactly one packed word
    (128, 10),   # two exact words
    (1, 6),      # single sample
    (3, 17),     # far below one word
    (63, 24),    # one bit short of a word
    (65, 24),    # one bit past a word
    (90, 41),    # generic non-aligned
    (130, 33),   # two words + fringe bits
    (37, 64),    # more SNPs than samples
    (200, 7),    # deep thin panel
    (70, 1),     # single SNP
    (31, 90),    # wide panel, partial word
]


def make_panel(n_samples: int, n_snps: int, seed: int) -> np.ndarray:
    """Seeded binary panel with forced monomorphic edge columns."""
    rng = np.random.default_rng(0xD1FF + seed)
    dense = rng.integers(0, 2, size=(n_samples, n_snps)).astype(np.uint8)
    # Plant an all-zero and (when room allows) an all-one column: their r²
    # rows are entirely undefined, the NaN pattern every path must share.
    dense[:, 0] = 0
    if n_snps > 2:
        dense[:, n_snps // 2] = 1
    return dense


def reference_r2(dense: np.ndarray) -> np.ndarray:
    return reference_ld(dense)["r2"]


@pytest.fixture(params=range(len(SHAPES)), ids=lambda i: f"{SHAPES[i]}")
def case(request) -> tuple[np.ndarray, np.ndarray]:
    n_samples, n_snps = SHAPES[request.param]
    dense = make_panel(n_samples, n_snps, seed=request.param)
    return dense, reference_r2(dense)


def r2_from_counts(counts: np.ndarray, dense: np.ndarray) -> np.ndarray:
    """Normalize a GᵀG count matrix into r² exactly as the pipeline does."""
    n = dense.shape[0]
    p = BitMatrix.from_dense(dense).allele_frequencies()
    return r_squared_matrix(counts / float(n), p)


class TestDifferentialR2:
    def test_naive_matches_reference(self, case):
        dense, expected = case
        assert_allclose_nan(naive_ld_matrix(dense), expected, atol=1e-12)

    @pytest.mark.parametrize("kernel", sorted(GEMM_KERNELS))
    def test_every_micro_kernel(self, case, kernel):
        dense, expected = case
        result = compute_ld(dense, kernel=kernel)
        assert_allclose_nan(result.r2(), expected, atol=1e-12)

    @pytest.mark.parametrize("n_threads", [1, 2, 5])
    def test_parallel_thread_counts(self, case, n_threads):
        dense, expected = case
        words = BitMatrix.from_dense(dense).words
        counts = popcount_gemm_parallel(words, None, n_threads=n_threads)
        assert_allclose_nan(r2_from_counts(counts, dense), expected, atol=1e-12)

    def test_streaming_blocks(self, case):
        dense, expected = case
        n = dense.shape[1]
        assembled = np.full((n, n), np.nan)

        def sink(i0, j0, block):
            assembled[i0 : i0 + block.shape[0], j0 : j0 + block.shape[1]] = block

        stream_ld_blocks(dense, sink, stat="r2", block_snps=5)
        il = np.tril_indices(n)
        assert_allclose_nan(assembled[il], expected[il], atol=1e-12)

    @pytest.mark.parametrize("engine", ["serial", "threads", "processes"])
    @pytest.mark.parametrize("kernel", sorted(GEMM_KERNELS))
    def test_kernel_engine_cross_product(self, kernel, engine):
        """Every micro-kernel under every executor, one awkward shape."""
        dense = make_panel(70, 23, seed=1234)
        expected = reference_r2(dense)
        assembled = np.full((23, 23), np.nan)

        def sink(i0, j0, block):
            assembled[i0 : i0 + block.shape[0], j0 : j0 + block.shape[1]] = block

        run_engine(
            dense, sink, engine=engine, kernel=kernel, block_snps=6,
            n_workers=2,
        )
        il = np.tril_indices(23)
        assert_allclose_nan(assembled[il], expected[il], atol=1e-12)

    @pytest.mark.parametrize("engine", ["serial", "threads", "processes"])
    def test_engine_executors(self, case, engine):
        dense, expected = case
        n = dense.shape[1]
        assembled = np.full((n, n), np.nan)

        def sink(i0, j0, block):
            assembled[i0 : i0 + block.shape[0], j0 : j0 + block.shape[1]] = block

        report = run_engine(
            dense, sink, engine=engine, block_snps=7, n_workers=2
        )
        assert report.complete and report.n_computed == report.n_tiles
        il = np.tril_indices(n)
        assert_allclose_nan(assembled[il], expected[il], atol=1e-12)


def test_all_paths_bit_identical_to_each_other():
    """The GEMM-family paths must agree bit-for-bit, not merely closely.

    All of them reduce to the same int64 counts and the same float64
    normalization expressions, so equality is exact, NaNs included. (The
    naive baseline normalizes with a reciprocal multiply as the pseudocode
    writes it, so it is compared within round-off above, not here.)
    """
    dense = make_panel(101, 29, seed=99)
    baseline = ld_matrix(dense)
    il = np.tril_indices(29)

    results = {}
    for kernel in GEMM_KERNELS:
        results[f"kernel:{kernel}"] = ld_matrix(dense, kernel=kernel)[il]
    for n_threads in (2, 5):
        results[f"threads:{n_threads}"] = ld_matrix(dense, n_threads=n_threads)[il]
    assembled = np.full((29, 29), np.nan)

    def sink(i0, j0, block):
        assembled[i0 : i0 + block.shape[0], j0 : j0 + block.shape[1]] = block

    stream_ld_blocks(dense, sink, block_snps=6)
    results["streaming"] = assembled[il]
    for engine in ("serial", "threads", "processes"):
        tiled = np.full((29, 29), np.nan)

        def esink(i0, j0, block):
            tiled[i0 : i0 + block.shape[0], j0 : j0 + block.shape[1]] = block

        run_engine(dense, esink, engine=engine, block_snps=6, n_workers=2)
        results[f"engine:{engine}"] = tiled[il]

    for name, values in results.items():
        np.testing.assert_array_equal(values, baseline[il], err_msg=name)
