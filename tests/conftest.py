"""Shared fixtures and reference implementations for the test suite.

The float-GEMM reference (`reference_ld`) recomputes every LD quantity with
plain dense linear algebra — the ground truth every packed/blocked/popcount
path is checked against.
"""

from __future__ import annotations

import numpy as np
import pytest


@pytest.fixture(autouse=True)
def _isolated_run_registry(tmp_path, monkeypatch) -> None:
    """Point the cross-run registry at scratch: every ``ld --engine`` run
    appends a record, and tests must not write into ``~/.cache``."""
    monkeypatch.setenv("REPRO_RUNS_PATH", str(tmp_path / "runs.jsonl"))


@pytest.fixture
def rng() -> np.random.Generator:
    """Deterministic per-test random generator."""
    return np.random.default_rng(0xC0FFEE)


@pytest.fixture
def small_panel(rng: np.random.Generator) -> np.ndarray:
    """A small dense binary panel with awkward (non-multiple-of-64) sizes."""
    return rng.integers(0, 2, size=(137, 53)).astype(np.uint8)


@pytest.fixture
def tiny_panel(rng: np.random.Generator) -> np.ndarray:
    """A very small panel for the slow pure-Python reference paths."""
    return rng.integers(0, 2, size=(30, 12)).astype(np.uint8)


def reference_counts(dense: np.ndarray) -> np.ndarray:
    """Shared-derived-allele count matrix via float GEMM."""
    g = np.asarray(dense, dtype=np.float64)
    return np.rint(g.T @ g).astype(np.int64)


def reference_ld(dense: np.ndarray) -> dict[str, np.ndarray]:
    """All LD quantities via dense float linear algebra (ground truth)."""
    g = np.asarray(dense, dtype=np.float64)
    n = g.shape[0]
    h = (g.T @ g) / n
    p = g.mean(axis=0)
    d = h - np.outer(p, p)
    denom = np.outer(p * (1 - p), p * (1 - p))
    with np.errstate(divide="ignore", invalid="ignore"):
        r2 = np.where(denom > 0, d * d / denom, np.nan)
    return {"h": h, "p": p, "d": d, "r2": r2}


def reference_ld_cross(a: np.ndarray, b: np.ndarray) -> dict[str, np.ndarray]:
    """Cross-matrix LD quantities via dense float linear algebra."""
    ga = np.asarray(a, dtype=np.float64)
    gb = np.asarray(b, dtype=np.float64)
    n = ga.shape[0]
    h = (ga.T @ gb) / n
    p = ga.mean(axis=0)
    q = gb.mean(axis=0)
    d = h - np.outer(p, q)
    denom = np.outer(p * (1 - p), q * (1 - q))
    with np.errstate(divide="ignore", invalid="ignore"):
        r2 = np.where(denom > 0, d * d / denom, np.nan)
    return {"h": h, "p": p, "q": q, "d": d, "r2": r2}


def assert_allclose_nan(actual: np.ndarray, expected: np.ndarray, **kw) -> None:
    """allclose that also requires NaN patterns to match."""
    actual = np.asarray(actual, dtype=np.float64)
    expected = np.asarray(expected, dtype=np.float64)
    assert actual.shape == expected.shape
    np.testing.assert_array_equal(np.isnan(actual), np.isnan(expected))
    np.testing.assert_allclose(
        np.nan_to_num(actual), np.nan_to_num(expected), **kw
    )
