"""Tests for the instruction-trace pipeline simulator (repro.machine.trace)."""

import pytest

from repro.machine.cpu import CoreModel
from repro.machine.isa import AVX2, AVX512, SCALAR64, SSE
from repro.machine.trace import (
    Instruction,
    Op,
    microkernel_trace,
    simulate_pipeline,
)


class TestTraceGeneration:
    def test_scalar_instruction_counts(self):
        trace = microkernel_trace(4, 2, 3, SCALAR64)
        counts = {}
        for inst in trace:
            counts[inst.op] = counts.get(inst.op, 0) + 1
        # Per step: 2 + 3 loads, 6 AND, 6 POPCNT, 6 ADD; 4 steps.
        assert counts[Op.LOAD] == 4 * 5
        assert counts[Op.AND] == 4 * 6
        assert counts[Op.POPCNT] == 4 * 6
        assert counts[Op.ADD] == 4 * 6
        assert Op.EXTRACT not in counts

    def test_simd_without_hw_popcount_adds_shuffles(self):
        trace = microkernel_trace(1, 2, 2, AVX2)
        extracts = sum(1 for i in trace if i.op is Op.EXTRACT)
        inserts = sum(1 for i in trace if i.op is Op.INSERT)
        popcnts = sum(1 for i in trace if i.op is Op.POPCNT)
        # Every word popcounted needs one extract and one insert.
        assert extracts == inserts == popcnts == 4

    def test_simd_vector_ops_cover_tile(self):
        trace = microkernel_trace(1, 4, 4, AVX2)
        and_words = sum(i.words for i in trace if i.op is Op.AND)
        assert and_words == 16  # the full 4x4 tile

    def test_hw_popcount_vectorizes(self):
        trace = microkernel_trace(1, 4, 2, AVX512.with_hw_popcount())
        popcnt_insts = [i for i in trace if i.op is Op.POPCNT]
        assert sum(i.words for i in popcnt_insts) == 8
        assert len(popcnt_insts) == 1  # one 8-lane vector popcount
        assert not any(i.op is Op.EXTRACT for i in trace)

    def test_rejects_bad_dimensions(self):
        with pytest.raises(ValueError, match=">= 1"):
            microkernel_trace(0, 2, 2)


class TestPipelineSimulation:
    def test_scalar_steady_state_matches_throughput_model(self):
        """The cycle-level sim lands near the paper's 3-ops/cycle peak:
        one AND+POPCNT+ADD triple retires per cycle, minus load overhead."""
        trace = microkernel_trace(64, 8, 8, SCALAR64)
        result = simulate_pipeline(trace)
        # Per k-step: 16 loads over 2 ports (8 cycles, the last one
        # co-issuing the first triple) + 64 POPCNT-bound triple cycles
        # => ~70 cycles per 64 words: ~0.91 words/cycle, i.e. the ~90 %
        # of the 3-ops/cycle peak the paper measures.
        assert result.words_per_cycle == pytest.approx(0.914, abs=0.02)
        assert result.utilization("popcnt") == pytest.approx(0.914, abs=0.02)

    def test_simd_without_hw_popcount_is_half_speed(self):
        """Section V executable: shuffle serialization halves the pace."""
        for simd in (SSE, AVX2, AVX512):
            trace = microkernel_trace(16, 8, 8, simd)
            result = simulate_pipeline(trace)
            scalar = simulate_pipeline(microkernel_trace(16, 8, 8, SCALAR64))
            assert result.cycles > 1.8 * scalar.cycles

    def test_hw_popcount_restores_vector_speedup(self):
        scalar = simulate_pipeline(microkernel_trace(16, 8, 8, SCALAR64))
        for simd in (SSE, AVX2, AVX512):
            hw = simulate_pipeline(
                microkernel_trace(16, 8, 8, simd.with_hw_popcount())
            )
            speedup = scalar.cycles / hw.cycles
            # Loads cap the ideal v-fold gain; require >60 % of it.
            assert speedup > 0.6 * simd.lanes

    def test_port_busy_accounting(self):
        trace = microkernel_trace(2, 2, 2, SCALAR64)
        result = simulate_pipeline(trace)
        assert result.issued == len(trace)
        total_issue_slots = sum(
            v for k, v in result.port_busy.items() if not k.startswith("_")
        )
        assert total_issue_slots == len(trace)

    def test_empty_trace(self):
        result = simulate_pipeline([])
        assert result.cycles == 0
        assert result.words_per_cycle == 0.0
        assert result.utilization("alu") == 0.0

    def test_single_instruction(self):
        result = simulate_pipeline([Instruction(Op.AND)])
        assert result.cycles == 1

    def test_custom_core_widths(self):
        """A 1-wide ALU serializes AND and ADD into separate cycles."""
        trace = [Instruction(Op.AND), Instruction(Op.ADD)] * 8
        wide = simulate_pipeline(trace, CoreModel(alu_ports=2))
        narrow = simulate_pipeline(trace, CoreModel(alu_ports=1))
        assert narrow.cycles == 2 * wide.cycles
