"""Tests for banded/windowed LD (repro.core.windowed)."""

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.core.blocking import BlockingParams
from repro.core.ldmatrix import ld_matrix
from repro.core.windowed import BandedLDMatrix, banded_ld

SMALL_PARAMS = BlockingParams(mc=8, nc=8, kc=4, mr=4, nr=4)


class TestBandedLd:
    @pytest.mark.parametrize("stat", ["r2", "D", "H"])
    @pytest.mark.parametrize("window", [1, 3, 10, 52, 200])
    def test_matches_full_matrix_on_band(self, small_panel, stat, window):
        band = banded_ld(small_panel, window=window, stat=stat)
        full = ld_matrix(small_panel, stat=stat)
        n = small_panel.shape[1]
        for i in range(n):
            for d in range(min(window, n - 1 - i) + 1):
                got = band.values[i, d]
                expected = full[i, i + d]
                if np.isnan(expected):
                    assert np.isnan(got)
                else:
                    assert got == pytest.approx(expected, abs=1e-12)

    def test_out_of_band_entries_are_nan(self, small_panel):
        band = banded_ld(small_panel, window=5)
        n = small_panel.shape[1]
        # Tail rows have no pairs at large distances.
        assert np.isnan(band.values[n - 1, 1:]).all()
        assert np.isnan(band.values[n - 3, 3:]).all()

    @given(
        window=st.integers(min_value=1, max_value=60),
        seed=st.integers(min_value=0, max_value=2**31),
    )
    @settings(max_examples=15, deadline=None)
    def test_property_band_matches_full(self, window, seed):
        rng = np.random.default_rng(seed)
        panel = rng.integers(0, 2, size=(50, 20)).astype(np.uint8)
        band = banded_ld(panel, window=window, params=SMALL_PARAMS)
        full = ld_matrix(panel)
        dense = band.to_dense()
        for i in range(20):
            for j in range(20):
                if abs(i - j) <= window:
                    a, b = dense[i, j], full[i, j]
                    assert (np.isnan(a) and np.isnan(b)) or a == pytest.approx(
                        b, abs=1e-12
                    )
                else:
                    assert np.isnan(dense[i, j])

    def test_blocking_independent(self, small_panel):
        a = banded_ld(small_panel, window=7, params=SMALL_PARAMS)
        b = banded_ld(small_panel, window=7)
        np.testing.assert_allclose(
            np.nan_to_num(a.values), np.nan_to_num(b.values), atol=1e-12
        )

    def test_validation(self, small_panel):
        with pytest.raises(ValueError, match="window"):
            banded_ld(small_panel, window=0)
        with pytest.raises(ValueError, match="unknown LD statistic"):
            banded_ld(small_panel, window=2, stat="Dprime")


class TestBandedLDMatrix:
    @pytest.fixture
    def band(self, small_panel):
        return banded_ld(small_panel, window=6)

    def test_get_symmetric_access(self, band, small_panel):
        full = ld_matrix(small_panel)
        assert band.get(3, 8) == pytest.approx(full[3, 8], abs=1e-12)
        assert band.get(8, 3) == band.get(3, 8)

    def test_get_rejects_out_of_band(self, band):
        with pytest.raises(IndexError, match="band"):
            band.get(0, 10)
        with pytest.raises(IndexError, match="out of range"):
            band.get(0, 9999)

    def test_n_pairs(self, small_panel):
        band = banded_ld(small_panel, window=6)
        n = small_panel.shape[1]
        expected = sum(min(6, n - 1 - i) + 1 for i in range(n))
        assert band.n_pairs() == expected

    def test_mean_by_distance_shape(self, band):
        means = band.mean_by_distance()
        assert means.shape == (7,)
        assert means[0] == pytest.approx(1.0)  # diagonal r2 of polymorphic

    def test_to_dense_fill(self, band):
        dense = band.to_dense(fill=-1.0)
        assert dense[0, 20] == -1.0
        assert dense[20, 0] == -1.0

    def test_banded_work_is_linear_in_n(self, rng):
        """The banded path computes O(n*W), not O(n^2) — verified via the
        stored non-NaN entries."""
        panel = rng.integers(0, 2, size=(40, 120)).astype(np.uint8)
        band = banded_ld(panel, window=10)
        defined_slots = band.n_pairs()
        assert defined_slots < 120 * 121 // 2 / 4  # far fewer than all pairs
