"""End-to-end integration tests across subsystems.

Each test exercises a realistic multi-module pipeline:

1. simulate → io round-trip → GEMM LD → ω scan, compared against the
   OmegaPlus baseline on the same data;
2. simulated sequencing (reads → MSA → SNP calls) → gap-aware LD;
3. haplotypes → diploid genotypes → PLINK bed round-trip → PLINK baseline,
   cross-checked against haplotype-level GEMM r² on unambiguous pairs;
4. the paper's full DLA pipeline identity H − ppᵀ = D at dataset scale;
5. machine model consistency: modelled seconds for the paper's dataset
   shapes are ordered by problem size.
"""

import numpy as np
import pytest

from repro.analysis.gaps import masked_ld_matrix
from repro.analysis.omega import omega_scan_from_ld
from repro.analysis.sweeps import sweep_scan
from repro.baselines.naive import naive_ld_matrix
from repro.baselines.omegaplus import omegaplus_scan
from repro.baselines.plink import plink_r2_matrix
from repro.core.ldmatrix import compute_ld, ld_matrix
from repro.encoding.genotypes import GenotypeMatrix, genotypes_from_haplotypes
from repro.io.msformat import read_ms, write_ms
from repro.io.plinkbed import read_plink_bed, write_plink_bed
from repro.io.vcf import read_vcf, write_vcf
from repro.machine.perfmodel import estimate_gemm_performance
from repro.simulate.coalescent import simulate_chunked_region
from repro.simulate.datasets import dataset_A
from repro.simulate.msa import simulate_msa_pipeline


def test_simulate_io_ld_omega_pipeline(tmp_path):
    rng = np.random.default_rng(21)
    sample = simulate_chunked_region(
        40, n_chunks=3, theta_per_chunk=12.0, rng=rng, chunk_length=50.0
    )
    path = tmp_path / "sim.ms"
    write_ms(path, [(sample.haplotypes, sample.positions / 150.0)])
    replicate = read_ms(path)[0]
    np.testing.assert_array_equal(replicate.haplotypes, sample.haplotypes)

    r2 = ld_matrix(replicate.haplotypes)
    positions = replicate.positions * 150.0
    grid = np.linspace(positions[0], positions[-1], 6)
    omegas, _ = omega_scan_from_ld(r2, positions, grid, max_window=20)
    baseline = omegaplus_scan(
        replicate.haplotypes, positions, grid_size=6, max_window=20
    )
    np.testing.assert_allclose(omegas, baseline.omegas, equal_nan=True)
    # The baseline computed only a subset of the pairwise values.
    n = replicate.haplotypes.shape[1]
    assert baseline.ld_evaluations <= n * (n - 1) // 2


def test_msa_pipeline_feeds_gap_aware_ld():
    rng = np.random.default_rng(9)
    result = simulate_msa_pipeline(
        30, 400, coverage=7, error_rate=0.005, missing_rate=0.05, rng=rng
    )
    assert result.n_snps >= 2
    assert result.genotype_error_rate < 0.02
    r2 = masked_ld_matrix(result.matrix, result.mask)
    assert r2.shape == (result.n_snps, result.n_snps)
    finite = r2[~np.isnan(r2)]
    assert np.all(finite >= -1e-9) and np.all(finite <= 1.0 + 1e-9)


def test_haplotypes_to_plink_to_baseline(tmp_path):
    rng = np.random.default_rng(33)
    haps = rng.integers(0, 2, size=(160, 8)).astype(np.uint8)
    genos = genotypes_from_haplotypes(haps)
    prefix = tmp_path / "panel"
    write_plink_bed(prefix, GenotypeMatrix.from_dense(genos))
    ds = read_plink_bed(prefix)
    geno_r2 = plink_r2_matrix(ds.genotypes)
    hap_r2 = ld_matrix(haps)
    # Genotype-dosage r² approximates haplotype r² under random pairing;
    # at this sample size they correlate strongly.
    defined = ~np.isnan(geno_r2) & ~np.isnan(hap_r2)
    iu = np.triu_indices(8, k=1)
    g = geno_r2[iu][defined[iu]]
    h = hap_r2[iu][defined[iu]]
    if g.size >= 5 and g.std() > 1e-6 and h.std() > 1e-6:
        assert np.corrcoef(g, h)[0, 1] > 0.5


def test_vcf_roundtrip_preserves_ld(tmp_path):
    rng = np.random.default_rng(4)
    haps = rng.integers(0, 2, size=(40, 10)).astype(np.uint8)
    path = tmp_path / "panel.vcf"
    write_vcf(path, haps, np.arange(10) * 100 + 1)
    panel = read_vcf(path)
    np.testing.assert_allclose(
        np.nan_to_num(ld_matrix(panel.haplotypes)),
        np.nan_to_num(ld_matrix(haps)),
    )


def test_paper_pipeline_identity_at_dataset_scale():
    """H = GᵀG/N and D = H − ppᵀ on a (scaled) Dataset A panel."""
    panel = dataset_A(scale=0.02)  # 50 samples x 200 SNPs
    result = compute_ld(panel)
    n = panel.n_samples
    np.testing.assert_allclose(result.h, result.counts / n)
    np.testing.assert_allclose(
        result.d, result.h - np.outer(result.p, result.p), atol=1e-12
    )
    # Cross-check one corner against the naive baseline.
    dense = panel.to_dense()[:, :30]
    np.testing.assert_allclose(
        np.nan_to_num(result.r2()[:30, :30]),
        np.nan_to_num(naive_ld_matrix(dense)),
        atol=1e-12,
    )


def test_sweep_scan_and_omegaplus_agree_on_dataset():
    panel = dataset_A(scale=0.01)  # 25 samples x 100 SNPs
    dense = panel.to_dense()
    ours = sweep_scan(dense, grid_size=4, max_window=30)
    baseline = omegaplus_scan(dense, grid_size=4, max_window=30)
    np.testing.assert_allclose(ours.omegas, baseline.omegas, equal_nan=True)


def test_machine_model_orders_paper_datasets():
    """Modelled GEMM time: dataset C > B > A (Tables I-III ordering)."""
    times = {}
    for name, k_samples in (("A", 2504), ("B", 10000), ("C", 100000)):
        est = estimate_gemm_performance(
            10000, 10000, (k_samples + 63) // 64, symmetric=True
        )
        times[name] = est.seconds
    assert times["C"] > times["B"] > times["A"]
    # And every estimate stays in the paper's efficiency band.
    for name, k_samples in (("B", 10000), ("C", 100000)):
        est = estimate_gemm_performance(
            10000, 10000, (k_samples + 63) // 64, symmetric=True
        )
        assert est.percent_of_peak == pytest.approx(87.0, abs=5.0)
