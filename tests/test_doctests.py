"""Run the doctests embedded in public docstrings.

Keeps the README-style examples in module docstrings honest: if a
quickstart snippet drifts from the API, this fails.
"""

import doctest

import pytest

import repro
import repro.util.timing

MODULES_WITH_DOCTESTS = [repro, repro.util.timing]


@pytest.mark.parametrize(
    "module", MODULES_WITH_DOCTESTS, ids=lambda m: m.__name__
)
def test_module_doctests(module):
    results = doctest.testmod(module, verbose=False)
    assert results.failed == 0, f"{results.failed} doctest failures in {module}"
    assert results.attempted > 0, f"no doctests found in {module.__name__}"
