"""Tests for three-locus LD (repro.analysis.higher_order)."""

import numpy as np
import pytest

from repro.analysis.higher_order import third_order_d, third_order_d_window


def brute_force_d3(dense: np.ndarray, i: int, j: int, k: int) -> float:
    """Bennett's D_ijk straight from the definition."""
    g = dense.astype(float)
    n = g.shape[0]
    p = g.mean(axis=0)
    p_ijk = (g[:, i] * g[:, j] * g[:, k]).sum() / n

    def d(a, b):
        return (g[:, a] * g[:, b]).sum() / n - p[a] * p[b]

    return (
        p_ijk
        - p[i] * d(j, k)
        - p[j] * d(i, k)
        - p[k] * d(i, j)
        - p[i] * p[j] * p[k]
    )


@pytest.fixture
def panel(rng):
    return rng.integers(0, 2, size=(90, 10)).astype(np.uint8)


class TestThirdOrderD:
    def test_matches_brute_force(self, panel):
        triples = np.array([[0, 1, 2], [3, 7, 9], [5, 5, 5], [2, 4, 8]])
        got = third_order_d(panel, triples)
        for value, (i, j, k) in zip(got, triples):
            assert value == pytest.approx(brute_force_d3(panel, i, j, k))

    def test_permutation_symmetric(self, panel):
        base = third_order_d(panel, np.array([[1, 4, 7]]))[0]
        for perm in ([4, 1, 7], [7, 4, 1], [1, 7, 4]):
            assert third_order_d(panel, np.array([perm]))[0] == pytest.approx(base)

    def test_independent_loci_give_zero_expectation(self):
        """Across many independent triples, D3 averages to ~0."""
        rng = np.random.default_rng(6)
        panel = rng.integers(0, 2, size=(4000, 30)).astype(np.uint8)
        triples = np.array([[3 * t, 3 * t + 1, 3 * t + 2] for t in range(10)])
        values = third_order_d(panel, triples)
        assert np.abs(values).max() < 0.02

    def test_constructed_three_way_interaction(self):
        """XOR-structured loci: pairwise independent, jointly dependent."""
        rng = np.random.default_rng(8)
        n = 2000
        a = rng.integers(0, 2, n).astype(np.uint8)
        b = rng.integers(0, 2, n).astype(np.uint8)
        c = (a ^ b).astype(np.uint8)
        panel = np.stack([a, b, c], axis=1)
        d3 = third_order_d(panel, np.array([[0, 1, 2]]))[0]
        # For the XOR triple, |D3| -> p_a p_b (1 - ...) scale; it must be
        # clearly nonzero while every pairwise D is ~0.
        from repro.core.ldmatrix import ld_matrix

        pairwise = ld_matrix(panel, stat="D")
        assert abs(pairwise[0, 1]) < 0.03
        assert abs(pairwise[0, 2]) < 0.03
        assert abs(d3) > 0.05

    def test_validation(self, panel):
        with pytest.raises(ValueError, match=r"\(n, 3\)"):
            third_order_d(panel, np.array([[0, 1]]))
        with pytest.raises(ValueError, match="out of range"):
            third_order_d(panel, np.array([[0, 1, 99]]))


class TestThirdOrderWindow:
    def test_matches_explicit_triples(self, panel):
        cube = third_order_d_window(panel, 2, 8)
        for i in range(6):
            for j in range(6):
                for k in range(6):
                    expected = brute_force_d3(panel, 2 + i, 2 + j, 2 + k)
                    assert cube[i, j, k] == pytest.approx(expected, abs=1e-10)

    def test_cube_is_fully_symmetric(self, panel):
        cube = third_order_d_window(panel, 0, 6)
        np.testing.assert_allclose(cube, np.transpose(cube, (0, 2, 1)), atol=1e-12)
        np.testing.assert_allclose(cube, np.transpose(cube, (1, 0, 2)), atol=1e-12)
        np.testing.assert_allclose(cube, np.transpose(cube, (2, 1, 0)), atol=1e-12)

    def test_validation(self, panel):
        with pytest.raises(ValueError, match="out of range"):
            third_order_d_window(panel, 5, 50)
        with pytest.raises(ValueError, match="out of range"):
            third_order_d_window(panel, 5, 5)
