"""Tests for the popcount implementation survey (repro.util.popcount)."""

import numpy as np
import pytest
from hypothesis import given
from hypothesis import strategies as st

from repro.util.popcount import (
    POPCOUNT_IMPLEMENTATIONS,
    popcount_hardware,
    popcount_lut8,
    popcount_lut16,
    popcount_naive,
    popcount_swar,
    popcount_u64,
    scalar_popcount,
)

ALL_IMPLS = sorted(POPCOUNT_IMPLEMENTATIONS)

WORDS = st.lists(
    st.integers(min_value=0, max_value=2**64 - 1), min_size=1, max_size=50
)


@pytest.mark.parametrize("impl", ALL_IMPLS)
def test_known_values(impl):
    words = np.array(
        [0, 1, 0xFFFFFFFFFFFFFFFF, 0x8000000000000000, 0x5555555555555555],
        dtype=np.uint64,
    )
    expected = np.array([0, 1, 64, 1, 32], dtype=np.uint64)
    np.testing.assert_array_equal(popcount_u64(words, impl=impl), expected)


@pytest.mark.parametrize("impl", ALL_IMPLS)
@given(values=WORDS)
def test_matches_python_bit_count(impl, values):
    words = np.array(values, dtype=np.uint64)
    expected = np.array([v.bit_count() for v in values], dtype=np.uint64)
    np.testing.assert_array_equal(
        POPCOUNT_IMPLEMENTATIONS[impl](words), expected
    )


@given(values=WORDS)
def test_all_implementations_agree(values):
    words = np.array(values, dtype=np.uint64)
    results = [POPCOUNT_IMPLEMENTATIONS[i](words) for i in ALL_IMPLS]
    for other in results[1:]:
        np.testing.assert_array_equal(results[0], other)


@pytest.mark.parametrize("impl", ALL_IMPLS)
def test_preserves_shape(impl):
    words = np.arange(24, dtype=np.uint64).reshape(2, 3, 4)
    out = POPCOUNT_IMPLEMENTATIONS[impl](words)
    assert out.shape == (2, 3, 4)
    assert out.dtype == np.uint64


@pytest.mark.parametrize(
    "fn",
    [popcount_hardware, popcount_lut8, popcount_lut16, popcount_swar, popcount_naive],
)
def test_rejects_wrong_dtype(fn):
    with pytest.raises(TypeError, match="uint64"):
        fn(np.arange(4, dtype=np.int64))


def test_dispatcher_rejects_unknown_name():
    with pytest.raises(ValueError, match="unknown popcount"):
        popcount_u64(np.zeros(1, dtype=np.uint64), impl="magic")


def test_scalar_popcount_basics():
    assert scalar_popcount(0) == 0
    assert scalar_popcount(0b1011) == 3
    assert scalar_popcount(2**64 - 1) == 64


def test_scalar_popcount_rejects_negative():
    with pytest.raises(ValueError, match="non-negative"):
        scalar_popcount(-1)


def test_swar_does_not_mutate_input():
    words = np.array([0xDEADBEEF], dtype=np.uint64)
    before = words.copy()
    popcount_swar(words)
    np.testing.assert_array_equal(words, before)
