"""Tests for the attribution engine and renderers (repro.observe.report).

build_profile_payload is exercised both against a real engine run (phase
presence, coverage, roofline join, JSON round-trip) and against synthetic
recorder/profiler/report inputs that trigger each anomaly rule; the
renderers are checked over every schema repro report claims to handle.
"""

from __future__ import annotations

import json

import numpy as np
import pytest

from repro.core.engine import EngineReport, run_engine
from repro.core.streaming import NpyMemmapSink
from repro.observe import MetricsRecorder, SpanProfiler
from repro.observe.modelcheck import compare_phases_to_model
from repro.observe.report import (
    build_profile_payload,
    load_report_payload,
    render_file,
    render_report,
)


@pytest.fixture
def panel(rng):
    return rng.integers(0, 2, size=(60, 29)).astype(np.uint8)


def _profiled_run(panel, tmp_path, **kwargs):
    recorder = MetricsRecorder(keep_events=True)
    profiler = SpanProfiler()
    with NpyMemmapSink(tmp_path / "ld.npy", panel.shape[1]) as sink:
        report = run_engine(
            panel, sink, block_snps=8,
            manifest_path=tmp_path / "ld.manifest",
            recorder=recorder, profiler=profiler, **kwargs,
        )
    workload = {
        "stat": "r2",
        "n_snps": panel.shape[1],
        "n_samples": panel.shape[0],
        "k_words": (panel.shape[0] + 63) // 64,
        "block_snps": 8,
    }
    return build_profile_payload(
        recorder=recorder, profiler=profiler, report=report,
        wall_seconds=recorder.timers["engine.run_seconds"].total,
        workload=workload,
    )


class TestBuildProfilePayload:
    def test_real_run_produces_complete_payload(self, panel, tmp_path):
        payload = _profiled_run(panel, tmp_path, engine="serial")
        assert payload["schema"] == "repro-profile/1"
        phases = payload["phases"]
        assert {"pack_a", "pack_b", "plane_matmul", "mirror", "stat",
                "driver.deliver", "driver.manifest_append"} <= set(phases)
        assert all(row["seconds"] >= 0 for row in phases.values())
        assert sum(row["share"] for row in phases.values()) == (
            pytest.approx(1.0)
        )
        # Spans attribute (nearly) all of the measured tile compute time.
        assert payload["tiles"]["phase_coverage"] > 0.9
        # Every phase got a roofline row with a classification.
        roofline_names = {row["name"] for row in payload["roofline"]}
        assert set(phases) <= roofline_names
        assert all(row["kind"] in ("compute", "memory", "overhead")
                   for row in payload["roofline"])
        assert "model" in payload  # complete un-resumed run
        json.dumps(payload)  # must be serializable as-is

    def test_threads_run_has_dispatch_phases_and_timeline(
        self, panel, tmp_path
    ):
        payload = _profiled_run(
            panel, tmp_path, engine="threads", n_workers=2
        )
        assert {"driver.dispatch", "driver.wait"} <= set(payload["phases"])
        timeline = payload["timeline"]
        assert timeline["workers"]
        assert sum(r["n_tiles"] for r in timeline["workers"]) == 10
        assert 0 < timeline["utilization"] <= 1.0
        assert timeline["imbalance"] >= 1.0

    def test_validation(self, panel, tmp_path):
        recorder = MetricsRecorder()
        profiler = SpanProfiler()
        report = EngineReport("serial", 1, 1, 1, 0, 0)
        with pytest.raises(ValueError, match="wall_seconds"):
            build_profile_payload(
                recorder=recorder, profiler=profiler, report=report,
                wall_seconds=0.0, workload={"n_snps": 4, "k_words": 1},
            )
        with pytest.raises(ValueError, match="k_words"):
            build_profile_payload(
                recorder=recorder, profiler=profiler, report=report,
                wall_seconds=1.0, workload={"n_snps": 4},
            )


class TestAnomalies:
    def _payload(self, *, recorder=None, profiler=None, report=None,
                 wall=1.0, workload=None):
        return build_profile_payload(
            recorder=recorder or MetricsRecorder(keep_events=True),
            profiler=profiler or SpanProfiler(),
            report=report or EngineReport("threads", 2, 4, 4, 0, 0),
            wall_seconds=wall,
            workload=workload or {"n_snps": 64, "k_words": 1},
        )

    def _kinds(self, payload):
        return {a["kind"] for a in payload["anomalies"]}

    def test_clean_synthetic_run_has_no_anomalies(self):
        assert self._kinds(self._payload()) == set()

    def test_idle_worker_flagged_above_threshold(self):
        recorder = MetricsRecorder(keep_events=True)
        recorder.events.append({"kind": "tile_computed", "ts": 0.95,
                                "compute_s": 0.9, "worker": "w0"})
        recorder.events.append({"kind": "tile_computed", "ts": 0.2,
                                "compute_s": 0.1, "worker": "w1"})
        payload = self._payload(recorder=recorder, wall=1.0)
        kinds = self._kinds(payload)
        assert "worker_idle" in kinds
        idle = [a for a in payload["anomalies"] if a["kind"] == "worker_idle"]
        assert len(idle) == 1 and "w1" in idle[0]["detail"]

    def test_single_worker_idle_is_not_flagged(self):
        # A serial run's one "worker" is idle whenever the driver works;
        # that is not imbalance.
        recorder = MetricsRecorder(keep_events=True)
        recorder.events.append({"kind": "tile_computed", "ts": 0.5,
                                "compute_s": 0.3, "worker": "driver"})
        assert "worker_idle" not in self._kinds(
            self._payload(recorder=recorder, wall=1.0)
        )

    def test_low_span_coverage_flagged(self):
        recorder = MetricsRecorder(keep_events=True)
        recorder.observe_time("engine.tile_compute_seconds", 1.0)
        recorder.observe_time("phase.plane_matmul", 0.5)
        payload = self._payload(recorder=recorder, wall=2.0)
        assert "span_coverage_low" in self._kinds(payload)
        assert payload["tiles"]["phase_coverage"] == pytest.approx(0.5)

    def test_packing_heavier_than_model_flagged(self):
        recorder = MetricsRecorder(keep_events=True)
        # Packing dominates a breakdown where the model expects matmul to.
        recorder.observe_time("engine.tile_compute_seconds", 1.0)
        recorder.observe_time("phase.pack_a", 0.5)
        recorder.observe_time("phase.pack_b", 0.4)
        recorder.observe_time("phase.plane_matmul", 0.1)
        assert "packing_heavy" in self._kinds(
            self._payload(recorder=recorder)
        )

    def test_fault_path_outcomes_flagged(self):
        report = EngineReport(
            "processes", 2, 4, 3, 0, 5,
            engine_used="threads", n_quarantined=1,
            quarantined=((8, 0),),
        )
        kinds = self._kinds(self._payload(report=report))
        assert {"tile_retries", "tiles_quarantined",
                "executor_degraded"} <= kinds

    def test_band_covering_whole_triangle_flagged(self):
        # W >= n prunes nothing: the banded run does dense work plus
        # masking overhead, which the operator should know about.
        payload = self._payload(workload={
            "n_snps": 64, "k_words": 1, "band": {"window": 64},
        })
        kinds = self._kinds(payload)
        assert "band_wasteful" in kinds
        wasteful = [a for a in payload["anomalies"]
                    if a["kind"] == "band_wasteful"]
        assert "no tiles can be pruned" in wasteful[0]["detail"]

    def test_narrow_band_is_not_flagged(self):
        for band in ({"window": 16}, {"window_kb": 2.5, "index_width": 16}):
            payload = self._payload(workload={
                "n_snps": 64, "k_words": 1, "band": band,
            })
            assert "band_wasteful" not in self._kinds(payload)

    def test_dropped_spans_flagged(self):
        profiler = SpanProfiler(capacity=1)
        for _ in range(3):
            with profiler.span("x"):
                pass
        payload = self._payload(profiler=profiler)
        assert "spans_dropped" in self._kinds(payload)
        assert payload["spans_dropped"] == 2


class TestRenderReport:
    def test_renders_profile_payload(self, panel, tmp_path):
        payload = _profiled_run(panel, tmp_path, engine="serial")
        text = render_report(payload)
        assert "repro-profile/1" in text
        assert "plane_matmul" in text and "roofline" in text
        assert "anomalies" in text

    def test_renders_metrics_payload(self, tmp_path):
        recorder = MetricsRecorder()
        recorder.observe_time("engine.tile_compute_seconds", 0.25)
        recorder.inc("events.tile_computed", 4)
        path = tmp_path / "metrics.json"
        recorder.write_json(path, extra={
            "schema": "repro-ld-metrics/1", "engine": "serial",
            "workers": 1, "stat": "r2", "n_snps": 64, "n_samples": 32,
            "wall_seconds": 0.5, "n_tiles": 4, "n_computed": 4,
            "pairs_per_second": 1000.0,
        })
        text = render_file(path)
        assert "repro-ld-metrics/1" in text
        assert "engine.tile_compute_seconds" in text
        assert "tile_computed" in text

    def test_renders_trace_jsonl_with_fault_events(self, tmp_path):
        path = tmp_path / "trace.jsonl"
        records = [
            {"schema": "repro-trace/1", "seq": 0, "kind": "run_start",
             "ts": 0.0},
            {"schema": "repro-trace/1", "seq": 1, "kind": "tile_retry",
             "ts": 0.1, "tile": [8, 0], "error": "RuntimeError('x')"},
            {"schema": "repro-trace/1", "seq": 2, "kind": "run_end",
             "ts": 0.2},
        ]
        path.write_text(
            "\n".join(json.dumps(r) for r in records) + "\n"
        )
        text = render_file(path)
        assert "3 events" in text
        assert "tile_retry" in text and "fault-path" in text
        assert "WARNING" not in text  # monotonic seq

    def test_trace_seq_gap_warns(self):
        text = render_report([
            {"schema": "repro-trace/1", "seq": 0, "kind": "a", "ts": 0.0},
            {"schema": "repro-trace/1", "seq": 5, "kind": "b", "ts": 0.1},
        ])
        assert "WARNING" in text and "seq" in text

    def test_renders_pre_schema_trace(self):
        # PR-2 traces had no schema tag; records carrying "kind" still
        # render as a trace.
        text = render_report([
            {"kind": "tile_computed", "ts": 0.1, "worker": "w0"},
        ])
        assert "pre-schema" in text and "tile_computed" in text

    def test_renders_bench_payloads_and_history(self, tmp_path):
        engine_payload = {
            "schema": "repro-bench-engine/1", "model": "m",
            "results": [{"n_snps": 220, "engine": "serial", "workers": 1,
                         "seconds": 0.01, "pairs_per_second": 2e6,
                         "measured_percent_of_peak": 0.5}],
        }
        gemm_payload = {
            "schema": "repro-bench-gemm/1", "model": "m",
            "results": [{"m": 512, "n": 512, "k_words": 8,
                         "kernel": "fused", "seconds": 0.1,
                         "words_per_second": 1e9,
                         "measured_percent_of_peak": 1.0}],
        }
        banded_payload = {
            "schema": "repro-bench-banded/1", "model": "m",
            "results": [
                {"n_snps": 2048, "window": 256, "mode": "dense",
                 "seconds": 0.4, "words_per_second": 5e8, "n_tiles": 2080,
                 "tiles_pruned": 0, "speedup_vs_dense": None},
                {"n_snps": 2048, "window": 256, "mode": "banded",
                 "seconds": 0.1, "words_per_second": 1e9, "n_tiles": 540,
                 "tiles_pruned": 1540, "speedup_vs_dense": 3.5},
            ],
        }
        assert "serial" in render_report(engine_payload)
        assert "fused" in render_report(gemm_payload)
        banded_text = render_report(banded_payload)
        assert "banded" in banded_text
        assert "1540" in banded_text and "3.50x" in banded_text
        assert "--" in banded_text  # the dense row has no speedup
        history = tmp_path / "BENCH_history.jsonl"
        with history.open("w") as fh:
            for _ in range(2):
                fh.write(json.dumps(
                    {**engine_payload, "timestamp": 1700000000.0}
                ) + "\n")
        text = render_file(history)
        assert "history: 2 entries" in text

    def test_unknown_schema_and_empty_inputs_fail_loudly(self, tmp_path):
        with pytest.raises(ValueError, match="unknown schema"):
            render_report({"schema": "repro-nope/9"})
        with pytest.raises(ValueError, match="empty"):
            render_report([])
        with pytest.raises(ValueError, match="cannot render"):
            render_report("just a string")
        bad = tmp_path / "bad.txt"
        bad.write_text("not json at all\n")
        with pytest.raises(ValueError, match="line 1"):
            load_report_payload(bad)

    def test_load_sniffs_json_vs_jsonl(self, tmp_path):
        doc = tmp_path / "doc.json"
        doc.write_text(json.dumps({"schema": "repro-bench-gemm/1",
                                   "results": []}, indent=2))
        assert isinstance(load_report_payload(doc), dict)
        lines = tmp_path / "doc.jsonl"
        lines.write_text('{"kind": "a", "ts": 0}\n{"kind": "b", "ts": 1}\n')
        assert isinstance(load_report_payload(lines), list)


class TestComparePhasesValidation:
    def test_rejects_negative_measurements(self):
        with pytest.raises(ValueError, match="non-negative"):
            compare_phases_to_model({"pack_a": -1.0}, 64, 64, 1)

    def test_unmodelled_phase_carried_as_overhead(self):
        rows = compare_phases_to_model(
            {"driver.dispatch": 0.5, "plane_matmul": 1.0}, 64, 64, 1
        )
        extra = [r for r in rows if r.name == "driver.dispatch"]
        assert extra and extra[0].kind == "overhead"
        assert extra[0].modeled_seconds == 0.0
        assert extra[0].measured_vs_modeled is None
