"""Tests for repro.util.validation and repro.util.timing."""

import time

import numpy as np
import pytest

from repro.util.timing import Timer, format_seconds
from repro.util.validation import (
    check_binary,
    check_positive,
    check_shape_compatible,
    require,
)


class TestValidation:
    def test_require(self):
        require(True, "never")
        with pytest.raises(ValueError, match="boom"):
            require(False, "boom")

    def test_check_binary_passthrough(self):
        arr = np.array([[0, 1], [1, 0]], dtype=np.uint8)
        out = check_binary(arr)
        np.testing.assert_array_equal(out, arr)
        assert out.dtype == np.uint8

    def test_check_binary_converts_bool(self):
        arr = np.array([[True, False]])
        out = check_binary(arr)
        assert out.dtype == np.uint8

    def test_check_binary_rejects_values(self):
        with pytest.raises(ValueError, match="0/1"):
            check_binary(np.array([[0, 5]]))

    def test_check_binary_rejects_ndim(self):
        with pytest.raises(ValueError, match="2-D"):
            check_binary(np.zeros(3))

    def test_check_binary_names_argument(self):
        with pytest.raises(ValueError, match="my matrix"):
            check_binary(np.zeros(3), name="my matrix")

    def test_check_positive(self):
        assert check_positive(5, "n") == 5
        with pytest.raises(ValueError, match="n must be positive"):
            check_positive(0, "n")
        with pytest.raises(ValueError, match="n must be positive"):
            check_positive(-2, "n")

    def test_check_shape_compatible(self):
        a = np.zeros((3, 4))
        b = np.zeros((4, 5))
        check_shape_compatible(a, b, 1, 0, "inner dim")
        with pytest.raises(ValueError, match="incompatible inner dim"):
            check_shape_compatible(a, b, 0, 1, "inner dim")


class TestTimer:
    def test_accumulates_laps(self):
        t = Timer()
        with t:
            time.sleep(0.001)
        with t:
            time.sleep(0.001)
        assert len(t.laps) == 2
        assert t.elapsed >= sum(t.laps) - 1e-9
        assert t.best <= t.elapsed

    def test_best_requires_laps(self):
        with pytest.raises(ValueError, match="no completed laps"):
            Timer().best

    def test_reset(self):
        t = Timer()
        with t:
            pass
        t.reset()
        assert t.elapsed == 0.0 and not t.laps


class TestFormatSeconds:
    @pytest.mark.parametrize(
        "value,expected",
        [
            (5e-9, "5.0 ns"),
            (3.2e-6, "3.2 us"),
            (1.5e-3, "1.5 ms"),
            (0.25, "250.0 ms"),
            (12.5, "12.50 s"),
        ],
    )
    def test_units(self, value, expected):
        assert format_seconds(value) == expected

    def test_rejects_negative(self):
        with pytest.raises(ValueError, match="non-negative"):
            format_seconds(-1.0)
