"""Tests for validity masks (repro.encoding.masks)."""

import numpy as np
import pytest

from repro.encoding.bitmatrix import BitMatrix
from repro.encoding.masks import ValidityMask


class TestConstruction:
    def test_all_valid(self):
        mask = ValidityMask.all_valid(70, 5)
        assert mask.n_samples == 70 and mask.n_snps == 5
        np.testing.assert_array_equal(mask.valid_counts(), [70] * 5)

    def test_from_dense(self, rng):
        dense = rng.integers(0, 2, size=(90, 7)).astype(np.uint8)
        mask = ValidityMask.from_dense(dense)
        np.testing.assert_array_equal(mask.bits.to_dense(), dense)
        np.testing.assert_array_equal(mask.valid_counts(), dense.sum(axis=0))

    def test_from_missing_splits_data_and_mask(self):
        data = np.array([[1, -1], [0, 1], [-1, 0]], dtype=np.int8)
        mask, clean = ValidityMask.from_missing(data)
        np.testing.assert_array_equal(clean, [[1, 0], [0, 1], [0, 0]])
        np.testing.assert_array_equal(
            mask.bits.to_dense(), [[1, 0], [1, 1], [0, 1]]
        )

    def test_from_missing_custom_sentinel(self):
        data = np.array([[1, 9], [0, 1]], dtype=np.int8)
        mask, clean = ValidityMask.from_missing(data, missing=9)
        np.testing.assert_array_equal(clean, [[1, 0], [0, 1]])

    def test_from_missing_rejects_non_binary_remainder(self):
        with pytest.raises(ValueError, match="binary"):
            ValidityMask.from_missing(np.array([[2, -1]], dtype=np.int8))

    def test_from_missing_rejects_wrong_ndim(self):
        with pytest.raises(ValueError, match="2-D"):
            ValidityMask.from_missing(np.zeros(3, dtype=np.int8))


class TestMaskAlgebra:
    def test_pair_valid_words(self, rng):
        dense = rng.integers(0, 2, size=(100, 4)).astype(np.uint8)
        mask = ValidityMask.from_dense(dense)
        joint = mask.pair_valid_words(0, 3)
        expected = int((dense[:, 0] & dense[:, 3]).sum())
        assert int(np.bitwise_count(joint).sum()) == expected

    def test_apply_zeroes_invalid_cells(self, rng):
        data_dense = rng.integers(0, 2, size=(80, 6)).astype(np.uint8)
        valid_dense = rng.integers(0, 2, size=(80, 6)).astype(np.uint8)
        data = BitMatrix.from_dense(data_dense)
        mask = ValidityMask.from_dense(valid_dense)
        masked = mask.apply(data)
        np.testing.assert_array_equal(
            masked.to_dense(), data_dense & valid_dense
        )

    def test_apply_rejects_shape_mismatch(self, rng):
        data = BitMatrix.from_dense(
            rng.integers(0, 2, size=(80, 6)).astype(np.uint8)
        )
        mask = ValidityMask.all_valid(80, 5)
        with pytest.raises(ValueError, match="does not match"):
            mask.apply(data)

    def test_repr(self):
        assert "n_snps=3" in repr(ValidityMask.all_valid(10, 3))
