"""Tests for the import-time NumPy >= 2.0 capability guard."""

import types

import numpy as np
import pytest

import repro
from repro import _require_numpy_2


class TestNumpyFloor:
    def test_installed_numpy_passes(self):
        # The package imported at the top of this file, so the guard
        # already ran once; run it again explicitly for good measure.
        _require_numpy_2()
        _require_numpy_2(np)

    def test_numpy_1x_like_module_is_rejected(self):
        fake = types.SimpleNamespace(__version__="1.26.4")  # no bitwise_count
        with pytest.raises(ImportError, match="NumPy >= 2.0"):
            _require_numpy_2(fake)

    def test_error_names_version_and_remedy(self):
        fake = types.SimpleNamespace(__version__="1.24.0")
        with pytest.raises(ImportError) as excinfo:
            _require_numpy_2(fake)
        message = str(excinfo.value)
        assert "1.24.0" in message
        assert "bitwise_count" in message
        assert "pip install 'numpy>=2.0'" in message

    def test_module_without_version_attribute(self):
        with pytest.raises(ImportError, match="unknown"):
            _require_numpy_2(types.SimpleNamespace())

    def test_guard_checks_capability_not_version_string(self):
        # A module advertising 1.x but providing the API passes: the
        # kernels need the function, not the version number.
        fake = types.SimpleNamespace(
            __version__="1.99", bitwise_count=np.bitwise_count
        )
        _require_numpy_2(fake)

    def test_declared_floor_matches_guard(self):
        # pyproject.toml and the runtime guard must not drift apart.
        import pathlib

        pyproject = pathlib.Path(repro.__file__).parents[2] / "pyproject.toml"
        if pyproject.exists():
            assert '"numpy>=2.0"' in pyproject.read_text()
