"""Tests for the fused macro-kernel layer (repro.core.macrokernel).

Pins the three tentpole guarantees: bit-identity of both macro-kernels
with the legacy scalar micro-kernel on every fringe shape, zero scratch
allocation in the hot loop after workspace warm-up, and the operation-
count model (`gemm_operation_counts`) mirroring the restructured drivers
tile visit for tile visit.
"""

from __future__ import annotations

import tracemalloc

import numpy as np
import pytest

from repro.core.blocking import FUSED_BLOCKING, BlockingParams
from repro.core.gemm import (
    GEMM_KERNELS,
    gemm_operation_counts,
    popcount_gemm,
    popcount_gram,
    resolve_blocking,
)
from repro.core.macrokernel import (
    GemmWorkspace,
    macrokernel_fused,
    mirror_lower_inplace,
    shared_workspace,
)

#: (m, n, k) shapes covering interior-only, fringe-in-every-dimension,
#: k smaller than any kc, single-row/column, and empty operands.
SHAPES = [
    (16, 16, 4),    # aligned to the tiny blocking below
    (17, 19, 3),    # fringe in m, n, and k
    (5, 33, 1),     # single-word contraction
    (1, 1, 7),      # single tile
    (8, 0, 4),      # empty n
    (0, 9, 4),      # empty m
    (9, 8, 0),      # empty k: the zero matrix
    (40, 23, 11),   # multiple cache blocks with fringe everywhere
]

#: Small enough that every loop level (jc/pc/ic/jr/ir) iterates.
TINY = BlockingParams(mc=8, nc=8, kc=4, mr=4, nr=4)


def make_words(m: int, k: int, seed: int) -> np.ndarray:
    rng = np.random.default_rng(seed)
    return rng.integers(0, 2**63, size=(m, k), dtype=np.int64).astype(np.uint64)


class TestBitIdentity:
    @pytest.mark.parametrize("shape", SHAPES, ids=str)
    @pytest.mark.parametrize("kernel", sorted(GEMM_KERNELS))
    def test_gemm_matches_scalar_oracle(self, shape, kernel):
        m, n, k = shape
        a = make_words(m, k, seed=m * 101 + k)
        b = make_words(n, k, seed=n * 103 + k)
        expected = popcount_gemm(a, b, kernel="scalar", params=TINY)
        result = popcount_gemm(a, b, kernel=kernel, params=TINY)
        np.testing.assert_array_equal(result, expected)

    @pytest.mark.parametrize("m,k", [(16, 4), (29, 3), (1, 5), (0, 2)])
    @pytest.mark.parametrize("kernel", sorted(GEMM_KERNELS))
    def test_gram_matches_scalar_oracle(self, m, k, kernel):
        a = make_words(m, k, seed=m * 107 + k)
        expected = popcount_gram(a, kernel="scalar", params=TINY)
        result = popcount_gram(a, kernel=kernel, params=TINY)
        np.testing.assert_array_equal(result, expected)

    def test_kc_larger_than_k(self):
        # The pc loop must clamp, not read past the operand.
        a = make_words(10, 2, seed=7)
        b = make_words(12, 2, seed=8)
        big_kc = BlockingParams(mc=8, nc=8, kc=512, mr=4, nr=4)
        np.testing.assert_array_equal(
            popcount_gemm(a, b, kernel="fused", params=big_kc),
            popcount_gemm(a, b, kernel="scalar", params=TINY),
        )

    def test_default_blocking_per_kernel(self):
        # resolve_blocking picks FUSED_BLOCKING for the macro-kernels and
        # the results still agree at production parameters.
        assert resolve_blocking(None, "fused") is FUSED_BLOCKING
        assert resolve_blocking(TINY, "fused") is TINY
        a = make_words(50, 3, seed=11)
        np.testing.assert_array_equal(
            popcount_gram(a, kernel="fused"),
            popcount_gram(a, kernel="numpy"),
        )


class TestWorkspace:
    def test_carve_reuses_pools(self):
        ws = GemmWorkspace()
        first = ws.carve("x", np.float32, (4, 8))
        assert ws.n_allocations == 1 and ws.n_reuses == 0
        second = ws.carve("x", np.float32, (2, 8))
        assert ws.n_allocations == 1 and ws.n_reuses == 1
        # Same pool: the smaller carve is a view of the same memory.
        assert second.base is first.base
        ws.carve("x", np.float32, (16, 16))  # growth
        assert ws.n_allocations == 2
        ws.release()
        assert ws.pool_bytes == 0

    def test_same_name_different_dtype_gets_own_pool(self):
        ws = GemmWorkspace()
        ws.carve("x", np.uint8, (8,))
        ws.carve("x", np.float32, (8,))
        assert ws.n_allocations == 2

    def test_shared_workspace_is_per_thread_singleton(self):
        assert shared_workspace() is shared_workspace()

    @pytest.mark.parametrize("kernel", ["fused", "fused-popcount"])
    def test_second_call_allocates_nothing_from_workspace(self, kernel):
        ws = GemmWorkspace()
        a = make_words(64, 4, seed=3)
        b = make_words(48, 4, seed=4)
        popcount_gemm(a, b, kernel=kernel, params=TINY, workspace=ws)
        allocs = ws.n_allocations
        popcount_gemm(a, b, kernel=kernel, params=TINY, workspace=ws)
        assert ws.n_allocations == allocs
        assert ws.n_reuses > 0

    def test_hot_loop_is_allocation_free_after_warmup(self):
        """The zero-allocation acceptance test (tracemalloc-measured).

        After one warm-up call at a steady shape, a further call may
        allocate the exact (m, n) int64 output and interpreter noise —
        but no workspace-scale scratch. The threshold is the output size
        plus a small slack; a single leaked bit-plane panel or padded C
        copy would exceed it by an order of magnitude.
        """
        ws = GemmWorkspace()
        m, n, k = 256, 256, 8
        a = make_words(m, k, seed=5)
        b = make_words(n, k, seed=6)
        popcount_gemm(a, b, kernel="fused", workspace=ws)  # warm the pools
        tracemalloc.start()
        popcount_gemm(a, b, kernel="fused", workspace=ws)
        _current, peak = tracemalloc.get_traced_memory()
        tracemalloc.stop()
        output_bytes = m * n * 8
        assert peak < output_bytes + (256 << 10), (
            f"hot-loop peak {peak} bytes exceeds output ({output_bytes}) "
            f"+ 256 KiB slack; scratch is being allocated per call"
        )


class TestOperationCountMirror:
    @pytest.mark.parametrize("kernel", ["numpy", "scalar", "fused-popcount"])
    @pytest.mark.parametrize("shape", [(17, 19, 3), (40, 23, 11), (9, 8, 0)])
    def test_gemm_tile_visits_match_model(self, kernel, shape):
        from repro.observe import MetricsRecorder

        m, n, k = shape
        a = make_words(m, k, seed=21)
        b = make_words(n, k, seed=22)
        recorder = MetricsRecorder()
        popcount_gemm(
            a, b, kernel=kernel, params=TINY, recorder=recorder
        )
        counts = gemm_operation_counts(m, n, k, TINY)
        assert recorder.counters.get("gemm.tile_visits", 0) == counts.kernel_calls

    @pytest.mark.parametrize("kernel", ["numpy", "fused-popcount"])
    @pytest.mark.parametrize("m,k", [(29, 3), (40, 5)])
    def test_gram_tile_visits_match_symmetric_model(self, kernel, m, k):
        from repro.observe import MetricsRecorder

        a = make_words(m, k, seed=23)
        recorder = MetricsRecorder()
        popcount_gram(a, kernel=kernel, params=TINY, recorder=recorder)
        counts = gemm_operation_counts(m, m, k, TINY, symmetric=True)
        assert recorder.counters.get("gram.tile_visits", 0) == counts.kernel_calls


class TestMirrorLowerInplace:
    @pytest.mark.parametrize("m", [0, 1, 5, 64, 100, 300])
    def test_matches_tril_idiom(self, m):
        rng = np.random.default_rng(m)
        c = rng.integers(-50, 50, size=(m, m)).astype(np.int64)
        expected = np.tril(c) + np.tril(c, -1).T
        result = mirror_lower_inplace(c.copy(), block=64)
        np.testing.assert_array_equal(result, expected)

    def test_in_place_and_returns_same_object(self):
        c = np.arange(16, dtype=np.int64).reshape(4, 4)
        out = mirror_lower_inplace(c)
        assert out is c
        np.testing.assert_array_equal(c, c.T)

    def test_rejects_non_square(self):
        with pytest.raises(ValueError, match="square"):
            mirror_lower_inplace(np.zeros((3, 4)))

    def test_gram_output_is_symmetric(self):
        a = make_words(33, 4, seed=77)
        c = popcount_gram(a, params=TINY)
        np.testing.assert_array_equal(c, c.T)
