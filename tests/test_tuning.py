"""Tests for the blocking autotuner and its persistent profile."""

from __future__ import annotations

import json

import numpy as np
import pytest

from repro.core.blocking import DEFAULT_BLOCKING, FUSED_BLOCKING, BlockingParams
from repro.core.gemm import GEMM_KERNELS
from repro.core.tuning import (
    DEFAULT_TUNE_SHAPE,
    PROFILE_ENV,
    PROFILE_SCHEMA,
    autotune,
    candidate_blockings,
    load_tuned_blocking,
    machine_fingerprint,
    profile_path,
    save_profile,
    tuned_blocking,
)

#: Small deterministic timing shape so the full test suite stays fast.
SMALL_SHAPE = (128, 128, 4)


class TestCandidates:
    @pytest.mark.parametrize("kernel", sorted(GEMM_KERNELS))
    def test_grid_is_nonempty_and_unique(self, kernel):
        grid = candidate_blockings(kernel)
        assert grid
        assert len(grid) == len(set(grid))
        assert all(isinstance(p, BlockingParams) for p in grid)

    def test_shipped_defaults_lead_the_grid(self):
        # The shipped default is always timed first, so a budget-capped
        # search can never pick something worse than the default.
        assert candidate_blockings("fused")[0] == FUSED_BLOCKING
        assert candidate_blockings("numpy")[0] == DEFAULT_BLOCKING

    def test_unknown_kernel_rejected(self):
        with pytest.raises(ValueError, match="unknown kernel"):
            candidate_blockings("simd512")


class TestAutotune:
    def test_returns_fastest_candidate(self):
        result = autotune("fused", shape=SMALL_SHAPE, repeats=1)
        assert result.kernel == "fused"
        assert result.shape == SMALL_SHAPE
        assert result.fingerprint == machine_fingerprint()
        best = min(result.candidates, key=lambda t: t.seconds)
        assert result.params == best.params
        assert result.words_per_second == best.words_per_second

    def test_budget_skips_tail_but_keeps_default(self):
        result = autotune(
            "fused", shape=SMALL_SHAPE, repeats=1, budget_seconds=0.0
        )
        # Budget 0 still times the first candidate (the shipped default).
        assert len(result.candidates) >= 1
        assert result.candidates[0].params == FUSED_BLOCKING

    def test_explicit_candidates_are_honoured(self):
        tiny = BlockingParams(mc=16, nc=16, kc=4, mr=8, nr=8)
        result = autotune(
            "fused", shape=SMALL_SHAPE, repeats=1, candidates=[tiny]
        )
        assert result.params == tiny

    def test_rejects_degenerate_shape(self):
        with pytest.raises(ValueError, match="positive"):
            autotune("fused", shape=(0, 4, 4))


class TestProfilePersistence:
    def test_round_trip(self, tmp_path, monkeypatch):
        """tune -> persist -> reload returns identical parameters."""
        profile = tmp_path / "tuning.json"
        monkeypatch.setenv(PROFILE_ENV, str(profile))
        assert profile_path() == profile
        result = autotune("fused", shape=SMALL_SHAPE, repeats=1)
        save_profile(result)
        loaded = load_tuned_blocking("fused")
        assert loaded == result.params
        payload = json.loads(profile.read_text())
        assert payload["schema"] == PROFILE_SCHEMA
        record = payload["profiles"][machine_fingerprint()]["fused"]
        assert record["shape"] == list(SMALL_SHAPE)
        assert "tuned_at" in record

    def test_tuned_blocking_tunes_once_then_reloads(self, tmp_path):
        profile = tmp_path / "tuning.json"
        first = tuned_blocking(
            "fused", path=profile, shape=SMALL_SHAPE, repeats=1,
            budget_seconds=0.0,
        )
        assert profile.exists()
        mtime = profile.stat().st_mtime_ns
        again = tuned_blocking("fused", path=profile, shape=SMALL_SHAPE)
        assert again == first
        # No re-tune: the profile file was not rewritten.
        assert profile.stat().st_mtime_ns == mtime

    def test_missing_profile_returns_none(self, tmp_path):
        assert load_tuned_blocking("fused", path=tmp_path / "nope.json") is None

    @pytest.mark.parametrize("content", [
        "not json at all",
        '{"schema": "other/9", "profiles": {}}',
        '{"schema": "repro-tuning/1"}',
        '{"schema": "repro-tuning/1", "profiles": {"x": 3}}',
    ])
    def test_malformed_profile_returns_none(self, tmp_path, content):
        bad = tmp_path / "tuning.json"
        bad.write_text(content)
        assert load_tuned_blocking("fused", path=bad) is None

    def test_invalid_params_record_returns_none(self, tmp_path):
        bad = tmp_path / "tuning.json"
        bad.write_text(json.dumps({
            "schema": PROFILE_SCHEMA,
            "profiles": {machine_fingerprint(): {
                "fused": {"params": {"mc": "huge"}},
            }},
        }))
        assert load_tuned_blocking("fused", path=bad) is None

    def test_foreign_fingerprint_is_ignored(self, tmp_path):
        result = autotune("fused", shape=SMALL_SHAPE, repeats=1,
                          budget_seconds=0.0)
        path = save_profile(result, path=tmp_path / "tuning.json")
        assert load_tuned_blocking(
            "fused", path=path, fingerprint="arm64-plan9-512-numpy-9.9"
        ) is None

    def test_merge_preserves_other_kernels(self, tmp_path):
        path = tmp_path / "tuning.json"
        for kernel in ("fused", "numpy"):
            save_profile(
                autotune(kernel, shape=SMALL_SHAPE, repeats=1,
                         budget_seconds=0.0),
                path=path,
            )
        assert load_tuned_blocking("fused", path=path) is not None
        assert load_tuned_blocking("numpy", path=path) is not None


class TestFingerprint:
    def test_stable_and_informative(self):
        fp = machine_fingerprint()
        assert fp == machine_fingerprint()
        assert f"numpy-{np.__version__}" in fp


class TestTuneCli:
    def test_tune_writes_profile_and_ld_autotune_reloads(
        self, tmp_path, monkeypatch, capsys
    ):
        from repro.cli import main

        profile = tmp_path / "tuning.json"
        monkeypatch.setenv(PROFILE_ENV, str(profile))
        panel = tmp_path / "panel.ms"
        assert main([
            "simulate", "--samples", "32", "--snps", "40",
            "--out", str(panel),
        ]) == 0
        assert main([
            "tune", "--shape", "64", "64", "2", "--repeats", "1",
            "--budget-seconds", "0",
        ]) == 0
        out = capsys.readouterr().out
        assert "best" in out and str(profile) in out
        assert profile.exists()
        tuned = load_tuned_blocking("fused")
        assert tuned is not None
        assert main([
            "ld", str(panel), "--autotune", "--out", str(tmp_path / "ld.npy"),
        ]) == 0
        err = capsys.readouterr().err
        assert f"mc={tuned.mc}" in err

    def test_tune_dry_run_writes_nothing(self, tmp_path, monkeypatch):
        from repro.cli import main

        profile = tmp_path / "tuning.json"
        monkeypatch.setenv(PROFILE_ENV, str(profile))
        assert main([
            "tune", "--shape", "64", "64", "2", "--repeats", "1",
            "--budget-seconds", "0", "--dry-run",
        ]) == 0
        assert not profile.exists()

    def test_default_shape_constant_sane(self):
        m, n, k = DEFAULT_TUNE_SHAPE
        assert m > 0 and n > 0 and k > 0
