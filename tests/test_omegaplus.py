"""Tests for the OmegaPlus-style baseline (repro.baselines.omegaplus)."""

import numpy as np
import pytest

from repro.analysis.omega import omega_scan_from_ld
from repro.baselines.omegaplus import (
    OmegaPlusResult,
    PairwiseLDCache,
    omegaplus_scan,
)
from repro.core.ldmatrix import ld_matrix
from repro.encoding.bitmatrix import BitMatrix


@pytest.fixture
def panel(rng):
    return rng.integers(0, 2, size=(80, 26)).astype(np.uint8)


class TestPairwiseLDCache:
    def test_values_match_gemm(self, panel):
        cache = PairwiseLDCache(BitMatrix.from_dense(panel))
        full = ld_matrix(panel)
        for i, j in [(0, 1), (5, 20), (3, 3), (25, 0)]:
            got = cache.r2(i, j)
            expected = full[i, j]
            if np.isnan(expected):
                assert np.isnan(got)
            else:
                assert got == pytest.approx(expected)

    def test_cache_counts_distinct_evaluations(self, panel):
        cache = PairwiseLDCache(BitMatrix.from_dense(panel))
        cache.r2(0, 1)
        cache.r2(1, 0)   # symmetric hit
        cache.r2(0, 1)   # repeat hit
        cache.r2(2, 3)
        assert cache.evaluations == 2

    def test_window_matrix_matches_gemm_block(self, panel):
        cache = PairwiseLDCache(BitMatrix.from_dense(panel))
        window = cache.window_matrix(5, 15)
        full = np.nan_to_num(ld_matrix(panel), nan=0.0)
        block = full[5:15, 5:15].copy()
        np.fill_diagonal(block, 0.0)  # cache leaves the diagonal at 0
        np.testing.assert_allclose(np.nan_to_num(window), block, atol=1e-12)

    def test_rejects_zero_samples(self):
        bm = BitMatrix(words=np.zeros((2, 0), dtype=np.uint64), n_samples=0)
        with pytest.raises(ValueError, match="zero samples"):
            PairwiseLDCache(bm)


class TestOmegaplusScan:
    def test_agrees_with_gemm_accelerated_scan(self, panel):
        result = omegaplus_scan(panel, grid_size=6, max_window=10)
        r2 = ld_matrix(panel)
        positions = np.arange(panel.shape[1], dtype=float)
        omegas, splits = omega_scan_from_ld(
            r2, positions, result.grid, max_window=10
        )
        np.testing.assert_allclose(result.omegas, omegas, equal_nan=True)
        np.testing.assert_array_equal(result.best_splits, splits)

    def test_ld_evaluation_accounting(self, panel):
        """Region-restricted scans compute fewer than all N(N+1)/2 pairs."""
        n = panel.shape[1]
        result = omegaplus_scan(panel, grid_size=4, max_window=5)
        all_pairs = n * (n - 1) // 2
        assert 0 < result.ld_evaluations < all_pairs
        # A full-region window computes at most all distinct pairs once.
        full = omegaplus_scan(panel, grid_size=4, max_window=n)
        assert full.ld_evaluations <= all_pairs

    def test_custom_positions(self, panel):
        positions = np.sort(np.random.default_rng(1).uniform(0, 1000, panel.shape[1]))
        result = omegaplus_scan(panel, positions, grid_size=5, max_window=8)
        assert result.grid[0] == positions[0]
        assert result.grid[-1] == positions[-1]

    def test_peak_position(self):
        result = OmegaPlusResult(
            grid=np.array([0.0, 1.0, 2.0]),
            omegas=np.array([1.0, 5.0, 2.0]),
            best_splits=np.array([1, 2, 3]),
            ld_evaluations=10,
        )
        assert result.peak_position == 1.0

    def test_rejects_bad_positions(self, panel):
        with pytest.raises(ValueError, match="positions"):
            omegaplus_scan(panel, np.arange(5, dtype=float))
        bad = np.arange(panel.shape[1], dtype=float)[::-1]
        with pytest.raises(ValueError, match="sorted"):
            omegaplus_scan(panel, bad)

    def test_rejects_bad_grid_size(self, panel):
        with pytest.raises(ValueError, match="grid_size"):
            omegaplus_scan(panel, grid_size=0)

    def test_empty_region(self):
        empty = BitMatrix(words=np.zeros((0, 1), dtype=np.uint64), n_samples=10)
        result = omegaplus_scan(empty)
        assert result.omegas.size == 0 and result.ld_evaluations == 0
