"""Tests for cache-blocking parameter selection (repro.core.blocking)."""

import pytest

from repro.core.blocking import (
    DEFAULT_BLOCKING,
    MICRO_BLOCKING,
    BlockingParams,
    select_blocking,
)


class TestBlockingParams:
    def test_presets_are_internally_consistent(self):
        for params in (DEFAULT_BLOCKING, MICRO_BLOCKING):
            assert params.mc % params.mr == 0
            assert params.nc % params.nr == 0

    @pytest.mark.parametrize("field", ["mc", "nc", "kc", "mr", "nr"])
    def test_rejects_non_positive(self, field):
        values = dict(mc=8, nc=8, kc=8, mr=4, nr=4)
        values[field] = 0
        with pytest.raises(ValueError, match="positive"):
            BlockingParams(**values)

    def test_rejects_mc_not_multiple_of_mr(self):
        with pytest.raises(ValueError, match="multiple of mr"):
            BlockingParams(mc=10, nc=8, kc=8, mr=4, nr=4)

    def test_rejects_nc_not_multiple_of_nr(self):
        with pytest.raises(ValueError, match="multiple of nr"):
            BlockingParams(mc=8, nc=10, kc=8, mr=4, nr=4)

    def test_footprints(self):
        p = BlockingParams(mc=16, nc=32, kc=64, mr=8, nr=8)
        assert p.a_block_bytes == 16 * 64 * 8
        assert p.b_panel_bytes == 64 * 32 * 8
        assert p.b_micropanel_bytes == 64 * 8 * 8

    def test_describe_mentions_all_parameters(self):
        text = MICRO_BLOCKING.describe()
        for token in ("mc=", "nc=", "kc=", "mr=", "nr="):
            assert token in text


class TestSelectBlocking:
    def test_default_targets_half_caches(self):
        p = select_blocking()
        assert p.b_micropanel_bytes <= 32 * 1024 // 2 + p.nr * 8
        assert p.a_block_bytes <= 256 * 1024 // 2 + p.mr * p.kc * 8
        assert p.mc % p.mr == 0 and p.nc % p.nr == 0

    def test_bigger_l1_gives_bigger_kc(self):
        small = select_blocking(l1_bytes=16 * 1024)
        big = select_blocking(l1_bytes=64 * 1024, l2_bytes=512 * 1024)
        assert big.kc > small.kc

    def test_nc_cap(self):
        p = select_blocking(max_nc=256, nr=8)
        assert p.nc <= 256

    def test_rejects_non_positive_cache(self):
        with pytest.raises(ValueError, match="positive"):
            select_blocking(l1_bytes=0)

    def test_rejects_inverted_hierarchy(self):
        with pytest.raises(ValueError, match="l1 <= l2 <= l3"):
            select_blocking(l1_bytes=1 << 20, l2_bytes=1 << 10)

    def test_respects_register_tile(self):
        p = select_blocking(mr=16, nr=4)
        assert p.mr == 16 and p.nr == 4
        assert p.mc % 16 == 0 and p.nc % 4 == 0
