"""Tests for LD pruning (repro.analysis.ldprune)."""

import numpy as np
import pytest

from repro.analysis.ldprune import ld_prune
from repro.core.ldmatrix import ld_matrix


def make_correlated_panel(rng, n_samples=200):
    """Panel with two tight LD clusters plus independent SNPs."""
    base1 = rng.integers(0, 2, n_samples).astype(np.uint8)
    base2 = rng.integers(0, 2, n_samples).astype(np.uint8)
    cols = []
    for _copy in range(4):  # near-duplicates of base1
        noisy = base1.copy()
        flip = rng.random(n_samples) < 0.02
        noisy[flip] ^= 1
        cols.append(noisy)
    for _copy in range(3):  # near-duplicates of base2
        noisy = base2.copy()
        flip = rng.random(n_samples) < 0.02
        noisy[flip] ^= 1
        cols.append(noisy)
    for _i in range(5):  # independent SNPs
        cols.append(rng.integers(0, 2, n_samples).astype(np.uint8))
    return np.stack(cols, axis=1)


class TestLdPrune:
    def test_no_retained_pair_exceeds_threshold(self, rng):
        panel = make_correlated_panel(rng)
        kept = ld_prune(panel, window=12, step=3, r2_threshold=0.3)
        r2 = ld_matrix(panel[:, kept], undefined=0.0)
        np.fill_diagonal(r2, 0.0)
        # The window covers the whole panel here, so the guarantee is global.
        assert np.nanmax(r2) <= 0.3 + 1e-9

    def test_clusters_reduced_to_representatives(self, rng):
        panel = make_correlated_panel(rng)
        kept = ld_prune(panel, window=12, step=3, r2_threshold=0.3)
        # Each of the two clusters collapses to one SNP; the 5 independent
        # SNPs survive (low mutual LD with high probability at n=200).
        assert sum(1 for k in kept if k < 4) == 1
        assert sum(1 for k in kept if 4 <= k < 7) == 1

    def test_keeps_higher_maf_member(self, rng):
        n = 300
        common = (rng.random(n) < 0.5).astype(np.uint8)
        rare = common.copy()
        # Knock a few carriers out so the duplicate is rarer but in high LD.
        carriers = np.flatnonzero(rare == 1)
        rare[carriers[:10]] = 0
        panel = np.stack([rare, common], axis=1)
        kept = ld_prune(panel, window=2, step=1, r2_threshold=0.5)
        assert list(kept) == [1]

    def test_independent_snps_untouched(self, rng):
        panel = rng.integers(0, 2, size=(500, 10)).astype(np.uint8)
        kept = ld_prune(panel, window=10, step=2, r2_threshold=0.9)
        assert len(kept) == 10

    def test_sliding_window_covers_tail(self, rng):
        """A correlated pair at the very end of the panel is still pruned."""
        panel = rng.integers(0, 2, size=(200, 9)).astype(np.uint8)
        panel[:, 8] = panel[:, 7]
        kept = ld_prune(panel, window=4, step=2, r2_threshold=0.5)
        assert not (7 in kept and 8 in kept)

    def test_parameter_validation(self, rng):
        panel = rng.integers(0, 2, size=(50, 5)).astype(np.uint8)
        with pytest.raises(ValueError, match="window"):
            ld_prune(panel, window=1)
        with pytest.raises(ValueError, match="step"):
            ld_prune(panel, step=0)
        with pytest.raises(ValueError, match="r2_threshold"):
            ld_prune(panel, r2_threshold=0.0)
        with pytest.raises(ValueError, match="r2_threshold"):
            ld_prune(panel, r2_threshold=1.5)

    def test_result_sorted_unique(self, rng):
        panel = make_correlated_panel(rng)
        kept = ld_prune(panel, window=6, step=2, r2_threshold=0.3)
        assert list(kept) == sorted(set(kept.tolist()))
