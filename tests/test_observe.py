"""Tests for the observability layer (repro.observe) and its hot-path hooks."""

from __future__ import annotations

import io
import json

import numpy as np
import pytest

from repro.core.engine import enumerate_tiles, run_engine
from repro.core.gemm import popcount_gemm, popcount_gram
from repro.core.streaming import stream_ld_blocks
from repro.faults import FaultPlan, FaultSpec
from repro.machine.cpu import HASWELL
from repro.machine.perfmodel import (
    estimate_gemm_performance,
    measured_ops_per_cycle,
    measured_percent_of_peak,
)
from repro.observe import (
    Histogram,
    JsonlTraceSink,
    MetricsRecorder,
    ProgressReporter,
    compare_to_model,
)


@pytest.fixture
def panel(rng):
    return rng.integers(0, 2, size=(64, 33)).astype(np.uint8)


class TestHistogram:
    def test_accumulates_summary_stats(self):
        hist = Histogram()
        for value in (3.0, 1.0, 2.0):
            hist.observe(value)
        assert hist.count == 3
        assert hist.total == 6.0
        assert hist.mean == 2.0
        assert hist.min == 1.0 and hist.max == 3.0

    def test_streaming_quantiles_on_known_distribution(self, rng):
        hist = Histogram()
        values = rng.permutation(np.arange(1, 10_001, dtype=np.float64))
        for value in values:
            hist.observe(value)
        # P² estimates over a uniform stream land close to the exact
        # order statistics (well within a few percent at n=10k).
        assert hist.quantile(0.50) == pytest.approx(5000, rel=0.05)
        assert hist.quantile(0.95) == pytest.approx(9500, rel=0.05)
        assert hist.quantile(0.99) == pytest.approx(9900, rel=0.05)

    def test_small_sample_quantiles_are_exact(self):
        hist = Histogram()
        for value in (3.0, 1.0, 2.0):
            hist.observe(value)
        assert hist.quantile(0.50) == 2.0
        assert hist.quantile(0.95) == 3.0
        summary = hist.summary()
        assert summary["p50"] == 2.0 and summary["p99"] == 3.0

    def test_untracked_quantile_raises(self):
        with pytest.raises(KeyError, match="not tracked"):
            Histogram().quantile(0.42)

    def test_empty_quantiles_are_none(self):
        hist = Histogram()
        assert hist.quantile(0.5) is None
        summary = hist.summary()
        assert summary["p50"] is None and summary["p95"] is None

    def test_empty_summary_is_json_safe(self):
        summary = Histogram().summary()
        assert summary["count"] == 0
        assert summary["min"] is None and summary["max"] is None
        json.dumps(summary)  # must not contain inf


class TestMetricsRecorder:
    def test_counters_and_timers(self):
        rec = MetricsRecorder()
        rec.inc("a")
        rec.inc("a", 4)
        with rec.time("t"):
            pass
        rec.observe("h", 2.5)
        assert rec.counters["a"] == 5
        assert rec.timers["t"].count == 1
        assert rec.histograms["h"].max == 2.5

    def test_events_bump_counters_and_are_kept_on_request(self):
        rec = MetricsRecorder(keep_events=True)
        rec.event("tile_computed", tile=[0, 0])
        rec.event("tile_computed", tile=[8, 0])
        rec.event("tile_retry", tile=[8, 0])
        assert rec.event_count("tile_computed") == 2
        assert rec.event_count("tile_retry") == 1
        assert rec.event_count("missing") == 0
        kinds = [e["kind"] for e in rec.events]
        assert kinds == ["tile_computed", "tile_computed", "tile_retry"]
        assert all("ts" in e for e in rec.events)

    def test_events_not_retained_by_default(self):
        rec = MetricsRecorder()
        rec.event("x")
        assert rec.events == []
        assert rec.event_count("x") == 1

    def test_write_json_with_extra(self, tmp_path):
        rec = MetricsRecorder()
        rec.inc("n", 3)
        out = tmp_path / "m.json"
        rec.write_json(out, extra={"schema": "test/1"})
        payload = json.loads(out.read_text())
        assert payload["schema"] == "test/1"
        assert payload["counters"]["n"] == 3
        assert set(payload) >= {"counters", "timers", "histograms"}

    def test_trace_sink_receives_events(self, tmp_path):
        path = tmp_path / "trace.jsonl"
        with MetricsRecorder(trace=JsonlTraceSink(path)) as rec:
            rec.event("a", x=1)
            rec.event("b", y=[2, 3])
        lines = [json.loads(l) for l in path.read_text().splitlines()]
        assert [l["kind"] for l in lines] == ["a", "b"]
        assert lines[1]["y"] == [2, 3]


class TestJsonlTraceSink:
    def test_write_after_close_fails(self, tmp_path):
        sink = JsonlTraceSink(tmp_path / "t.jsonl")
        sink.write({"kind": "x"})
        sink.close()
        sink.close()  # idempotent
        with pytest.raises(ValueError, match="closed"):
            sink.write({"kind": "y"})
        assert sink.n_written == 1

    def test_every_line_carries_schema_and_monotonic_seq(self, tmp_path):
        path = tmp_path / "t.jsonl"
        with JsonlTraceSink(path) as sink:
            for i in range(5):
                sink.write({"kind": "tick", "i": i})
        lines = [json.loads(l) for l in path.read_text().splitlines()]
        assert all(l["schema"] == "repro-trace/1" for l in lines)
        assert [l["seq"] for l in lines] == [0, 1, 2, 3, 4]
        assert [l["i"] for l in lines] == [0, 1, 2, 3, 4]

    def test_non_serializable_values_coerced_via_repr(self, tmp_path):
        # A retry event may carry an exception object; the sink must not
        # crash the run over it.
        path = tmp_path / "t.jsonl"
        with JsonlTraceSink(path) as sink:
            sink.write({"kind": "tile_retry", "error": RuntimeError("boom"),
                        "where": {1, 2}})
        record = json.loads(path.read_text())
        assert record["error"] == repr(RuntimeError("boom"))
        assert "1" in record["where"] and "2" in record["where"]

    def test_flush_on_write_makes_lines_visible_immediately(self, tmp_path):
        path = tmp_path / "t.jsonl"
        sink = JsonlTraceSink(path, flush_on_write=True)
        try:
            sink.write({"kind": "tick"})
            # Visible to a concurrent reader before close: the flush
            # happened at write time, not at close.
            lines = path.read_text().splitlines()
            assert len(lines) == 1
            assert json.loads(lines[0])["kind"] == "tick"
        finally:
            sink.close()

    def test_buffered_by_default_but_durable_on_close(self, tmp_path):
        path = tmp_path / "t.jsonl"
        sink = JsonlTraceSink(path)
        sink.write({"kind": "tick", "pad": "x" * 64})
        buffered = path.read_text()
        sink.close()
        # close() flushes + fsyncs whatever write() buffered.
        final = path.read_text().splitlines()
        assert len(final) == 1
        assert len(buffered.splitlines()) <= 1
        assert json.loads(final[0])["kind"] == "tick"


class TestProgressReporter:
    def test_accounting_and_snapshot(self):
        progress = ProgressReporter(4, 100, stream=None)
        progress.advance(30)
        progress.advance(20, skipped=True)
        snap = progress.snapshot()
        assert snap.tiles_done == 2 and snap.pairs_done == 50
        assert snap.fraction == 0.5
        assert snap.pairs_per_second > 0
        assert 0 < snap.eta_seconds < float("inf")

    def test_eta_edge_cases(self):
        progress = ProgressReporter(2, 10, stream=None)
        assert progress.snapshot().eta_seconds == float("inf")  # no rate yet
        progress.advance(10)
        assert progress.snapshot().eta_seconds == 0.0

    def test_renders_single_overwriting_line(self):
        buf = io.StringIO()
        with ProgressReporter(2, 20, stream=buf, min_interval=0.0) as progress:
            progress.advance(10)
            progress.advance(10)
        text = buf.getvalue()
        assert text.count("\r") >= 2
        assert text.endswith("\n")
        assert "2/2 tiles" in text and "100.0%" in text

    def test_rate_limited_rendering(self):
        buf = io.StringIO()
        progress = ProgressReporter(100, 100, stream=buf, min_interval=3600.0)
        for _ in range(50):
            progress.advance(1)
        # First render goes through; the rest are inside the interval.
        assert buf.getvalue().count("\r") == 1

    def test_rejects_negative_totals(self):
        with pytest.raises(ValueError, match="non-negative"):
            ProgressReporter(-1, 0, stream=None)

    def test_rejects_nonpositive_window(self):
        with pytest.raises(ValueError, match="window_seconds"):
            ProgressReporter(1, 1, stream=None, window_seconds=0.0)

    def test_eta_text_never_renders_zero_seconds(self):
        # Before any progress the ETA is unknown; once done it is moot.
        # Both render "--", never a misleading "eta 0s".
        progress = ProgressReporter(2, 10, stream=None)
        assert "eta --" in progress.format_line()
        progress.advance(5)
        line = progress.format_line()
        assert "eta" in line and "eta 0s" not in line
        progress.advance(5)
        assert "eta --" in progress.format_line()

    def test_window_rates_reflect_recent_throughput(self):
        progress = ProgressReporter(100, 1000, stream=None,
                                    window_seconds=60.0)
        # Inject a controlled sample history: 100 pairs/s long ago, then
        # a 10x faster recent burst inside the window.
        progress.tiles_done, progress.pairs_done = 4, 400
        progress._window.clear()
        progress._window.extend([
            (0.0, 0, 0), (100.0, 1, 100), (100.1, 2, 200),
            (100.2, 3, 300), (100.3, 4, 400),
        ])
        # The anchor sample (100.0) has aged out for a "now" of 170.
        horizon_now = 170.0
        while (len(progress._window) > 2
               and progress._window[1][0] <= horizon_now - 60.0):
            progress._window.popleft()
        tiles_rate, pairs_rate = progress._window_rates()
        # Cumulative rate would be ~4 pairs/s; the window sees the burst.
        assert pairs_rate == pytest.approx(300 / 0.3, rel=1e-6)
        assert tiles_rate == pytest.approx(3 / 0.3, rel=1e-6)
        snap = progress.snapshot()
        assert snap.window_pairs_per_second == pytest.approx(1000, rel=1e-6)
        # The ETA uses the windowed rate: 600 remaining at 1000/s.
        assert snap.eta_seconds == pytest.approx(0.6, rel=1e-6)

    def test_window_warmup_falls_back_to_cumulative(self):
        progress = ProgressReporter(4, 100, stream=None)
        progress._window.clear()
        progress._window.append((progress._start, 0, 0))
        snap = progress.snapshot()
        assert snap.window_pairs_per_second == 0.0
        # eta_seconds falls back to the cumulative pairs_per_second.
        assert snap.eta_seconds == float("inf")  # no progress yet at all


class TestMeasuredPerf:
    def test_measured_ops_per_cycle_units(self):
        # 3.5e9 ops in one second on a 3.5 GHz machine = 1 op/cycle.
        assert measured_ops_per_cycle(
            int(HASWELL.frequency_hz), 1.0, machine=HASWELL
        ) == pytest.approx(1.0)

    def test_validation(self):
        with pytest.raises(ValueError, match="seconds"):
            measured_ops_per_cycle(10, 0.0)
        with pytest.raises(ValueError, match="total_ops"):
            measured_ops_per_cycle(-1, 1.0)
        with pytest.raises(ValueError, match="measured_seconds"):
            compare_to_model(10, 10, 1, 0.0)

    def test_measured_matches_model_at_predicted_seconds(self):
        est = estimate_gemm_performance(100, 100, 2)
        pct = measured_percent_of_peak(est.total_ops, est.seconds)
        assert pct == pytest.approx(est.percent_of_peak)

    def test_compare_to_model_consistency(self):
        cmp = compare_to_model(120, 120, 2, measured_seconds=0.05,
                               symmetric=True)
        est = estimate_gemm_performance(120, 120, 2, symmetric=True)
        assert cmp.modeled_percent_of_peak == pytest.approx(
            est.percent_of_peak
        )
        assert cmp.measured_vs_modeled == pytest.approx(
            cmp.measured_percent_of_peak / cmp.modeled_percent_of_peak
        )
        # Running exactly as fast as the model predicts → ratio 1.
        honest = compare_to_model(120, 120, 2, est.seconds, symmetric=True)
        assert honest.measured_vs_modeled == pytest.approx(1.0)

    def test_as_dict_round_trips_through_json(self):
        cmp = compare_to_model(64, 64, 1, measured_seconds=0.01)
        payload = json.loads(json.dumps(cmp.as_dict()))
        assert payload["m"] == 64
        assert payload["measured_percent_of_peak"] > 0


class TestGemmRecorder:
    def test_gemm_emits_one_event_per_call(self, rng):
        words = rng.integers(0, 2**63, size=(9, 2), dtype=np.uint64)
        rec = MetricsRecorder(keep_events=True)
        expected = popcount_gemm(words, words)
        observed = popcount_gemm(words, words, recorder=rec)
        np.testing.assert_array_equal(observed, expected)
        assert rec.counters["gemm.calls"] == 1
        assert rec.event_count("gemm") == 1
        event = rec.events[0]
        assert (event["m"], event["n"], event["k"]) == (9, 9, 2)
        assert rec.timers["gemm.seconds"].count == 1

    def test_gram_emits_gram_events(self, rng):
        words = rng.integers(0, 2**63, size=(7, 3), dtype=np.uint64)
        rec = MetricsRecorder(keep_events=True)
        expected = popcount_gram(words)
        observed = popcount_gram(words, recorder=rec)
        np.testing.assert_array_equal(observed, expected)
        assert rec.counters["gram.calls"] == 1
        assert rec.event_count("gram") == 1


class TestStreamingRecorder:
    def test_per_tile_events_and_counters(self, panel):
        rec = MetricsRecorder(keep_events=True)
        buf = io.StringIO()
        tiles = enumerate_tiles(33, 9)
        progress = ProgressReporter(
            len(tiles), sum(t.n_pairs for t in tiles),
            stream=buf, min_interval=0.0,
        )
        n_blocks = stream_ld_blocks(
            panel, lambda *a: None, block_snps=9,
            recorder=rec, progress=progress,
        )
        assert rec.event_count("tile_computed") == n_blocks
        assert rec.counters["stream.tiles_computed"] == n_blocks
        assert rec.timers["stream.tile_compute_seconds"].count == n_blocks
        assert all(
            e["worker"] == "driver"
            for e in rec.events if e["kind"] == "tile_computed"
        )
        assert progress.tiles_done == n_blocks
        assert buf.getvalue().count("\r") == n_blocks


class TestEngineRecorder:
    @pytest.mark.parametrize("engine", ["serial", "threads", "processes"])
    def test_tile_events_agree_with_report(self, panel, engine):
        rec = MetricsRecorder(keep_events=True)
        report = run_engine(
            panel, lambda *a: None, engine=engine, block_snps=9,
            n_workers=2, recorder=rec,
        )
        assert rec.event_count("tile_computed") == report.n_computed
        assert rec.event_count("run_start") == rec.event_count("run_end") == 1
        assert rec.counters["engine.tiles_computed"] == report.n_computed
        assert rec.counters["engine.pairs_computed"] == sum(
            e["pairs"] for e in rec.events if e["kind"] == "tile_computed"
        )
        computed = [e for e in rec.events if e["kind"] == "tile_computed"]
        for event in computed:
            assert event["compute_s"] >= 0.0
            assert event["deliver_s"] >= 0.0
            assert event["bytes"] > 0
            assert event["worker"]

    def test_resume_emits_skipped_events(self, panel, tmp_path):
        manifest = tmp_path / "run.manifest"
        first = run_engine(
            panel, lambda *a: None, block_snps=9, manifest_path=manifest
        )
        rec = MetricsRecorder(keep_events=True)
        progress = ProgressReporter(first.n_tiles, 1, stream=None)
        second = run_engine(
            panel, lambda *a: None, block_snps=9, manifest_path=manifest,
            resume=True, recorder=rec, progress=progress,
        )
        assert second.n_skipped == first.n_tiles
        assert rec.event_count("tile_skipped") == second.n_skipped
        assert rec.event_count("tile_computed") == 0
        assert rec.counters["engine.tiles_skipped"] == second.n_skipped
        assert progress.tiles_done == second.n_skipped

    def test_trace_jsonl_written_through_engine(self, panel, tmp_path):
        path = tmp_path / "trace.jsonl"
        with MetricsRecorder(trace=JsonlTraceSink(path)) as rec:
            report = run_engine(
                panel, lambda *a: None, block_snps=16, recorder=rec
            )
        lines = [json.loads(l) for l in path.read_text().splitlines()]
        kinds = [l["kind"] for l in lines]
        assert kinds[0] == "run_start" and kinds[-1] == "run_end"
        assert kinds.count("tile_computed") == report.n_computed

    def test_results_identical_with_and_without_recorder(self, panel):
        def collect(with_recorder):
            blocks = {}
            run_engine(
                panel,
                lambda i0, j0, b: blocks.__setitem__((i0, j0), b.copy()),
                block_snps=9,
                recorder=MetricsRecorder() if with_recorder else None,
            )
            return blocks

        plain, recorded = collect(False), collect(True)
        assert plain.keys() == recorded.keys()
        for key in plain:
            np.testing.assert_array_equal(plain[key], recorded[key])


class TestFaultEventTrace:
    """Fault-path events must reach both the JSONL trace and the metrics
    payload, so post-mortem artifacts agree with each other."""

    @staticmethod
    def _run(panel, trace_path, **kwargs):
        recorder = MetricsRecorder(
            trace=JsonlTraceSink(trace_path), keep_events=True
        )
        with recorder:
            report = run_engine(
                panel, lambda *a: None, block_snps=8, n_workers=2,
                max_retries=kwargs.pop("max_retries", 2),
                retry_backoff=0.0, recorder=recorder, **kwargs,
            )
        lines = [
            json.loads(line)
            for line in trace_path.read_text().splitlines()
        ]
        return report, recorder, lines

    def test_retry_and_quarantine_reach_trace_and_payload(
        self, panel, tmp_path
    ):
        plan = FaultPlan(seed=3, specs=(
            # One transient crash: retried once, then succeeds.
            FaultSpec(site="tile_compute", tile=(8, 0), attempts_below=1),
            # One persistent corruption: exhausts the retry budget and
            # lands in quarantine.
            FaultSpec(site="tile_deliver", action="bitflip", tile=(16, 0)),
        ))
        report, recorder, lines = self._run(
            panel, tmp_path / "trace.jsonl", engine="serial",
            max_retries=1, allow_quarantine=True, faults=plan,
        )
        assert report.n_retries >= 1 and report.n_quarantined == 1
        kinds = [l["kind"] for l in lines]
        assert {"tile_retry", "tile_corrupt", "tile_quarantined"} <= (
            set(kinds)
        )
        # Every trace line is schema-tagged with a gap-free seq.
        assert all(l["schema"] == "repro-trace/1" for l in lines)
        assert [l["seq"] for l in lines] == list(range(len(lines)))
        # The metrics payload tells the same story as the trace.
        payload = recorder.summary()
        for kind in ("tile_retry", "tile_corrupt", "tile_quarantined"):
            assert payload["counters"][f"events.{kind}"] == (
                kinds.count(kind)
            )

    def test_pool_restart_reaches_trace_and_payload(self, panel, tmp_path):
        plan = FaultPlan(specs=(
            FaultSpec(site="tile_compute", action="kill",
                      attempts_below=1, tile=(8, 0)),
        ))
        report, recorder, lines = self._run(
            panel, tmp_path / "trace.jsonl", engine="processes",
            faults=plan,
        )
        assert report.complete
        kinds = [l["kind"] for l in lines]
        assert "pool_restart" in kinds
        assert recorder.counters["engine.pool_restarts"] >= 1
        payload = recorder.summary()
        assert payload["counters"]["events.pool_restart"] == (
            kinds.count("pool_restart")
        )

    def test_degradation_reaches_trace_and_payload(self, panel, tmp_path):
        plan = FaultPlan(specs=(FaultSpec(site="pool_spawn"),))
        report, recorder, lines = self._run(
            panel, tmp_path / "trace.jsonl", engine="processes",
            faults=plan,
        )
        assert report.complete and report.engine_used == "threads"
        kinds = [l["kind"] for l in lines]
        assert "pool_spawn_failed" in kinds
        assert "executor_degraded" in kinds
        degraded = next(
            l for l in lines if l["kind"] == "executor_degraded"
        )
        assert degraded["from_engine"] == "processes"
        assert degraded["to_engine"] == "threads"
        payload = recorder.summary()
        assert payload["counters"]["engine.degradations"] == 1
        assert payload["counters"]["events.executor_degraded"] == 1
