"""Tests for the PLINK 1.9-style genotype baseline (repro.baselines.plink)."""

import numpy as np
import pytest

from repro.baselines.plink import (
    plink_pairwise_counts,
    plink_r2_matrix,
    prepare_planes,
)
from repro.encoding.genotypes import GenotypeMatrix, genotypes_from_haplotypes


@pytest.fixture
def genotypes(rng):
    haps = rng.integers(0, 2, size=(120, 10)).astype(np.uint8)
    return genotypes_from_haplotypes(haps)


@pytest.fixture
def genotypes_with_missing(rng, genotypes):
    genos = genotypes.astype(np.int8).copy()
    missing = rng.random(genos.shape) < 0.1
    genos[missing] = -1
    return genos


class TestPreparePlanes:
    def test_carrier_counts(self, genotypes):
        gm = GenotypeMatrix.from_dense(genotypes)
        planes = prepare_planes(gm)
        carriers = np.bitwise_count(planes.carrier).sum(axis=1)
        np.testing.assert_array_equal(carriers, (genotypes >= 1).sum(axis=0))

    def test_homalt_counts(self, genotypes):
        gm = GenotypeMatrix.from_dense(genotypes)
        planes = prepare_planes(gm)
        homalt = np.bitwise_count(planes.homalt).sum(axis=1)
        np.testing.assert_array_equal(homalt, (genotypes == 2).sum(axis=0))

    def test_valid_excludes_missing(self, genotypes_with_missing):
        gm = GenotypeMatrix.from_dense(genotypes_with_missing)
        planes = prepare_planes(gm)
        valid = np.bitwise_count(planes.valid).sum(axis=1)
        np.testing.assert_array_equal(
            valid, (genotypes_with_missing != -1).sum(axis=0)
        )

    def test_padding_bits_invalid(self):
        """Bits past n_individuals never count as valid."""
        gm = GenotypeMatrix.from_dense(np.zeros((5, 2), dtype=np.int8))
        planes = prepare_planes(gm)
        assert int(np.bitwise_count(planes.valid).sum()) == 10


class TestPairwiseCounts:
    def test_table_matches_brute_force(self, genotypes_with_missing):
        gm = GenotypeMatrix.from_dense(genotypes_with_missing)
        planes = prepare_planes(gm)
        genos = genotypes_with_missing
        for i, j in [(0, 1), (3, 7), (2, 2), (9, 0)]:
            table, n_valid = plink_pairwise_counts(planes, i, j)
            both = (genos[:, i] != -1) & (genos[:, j] != -1)
            assert n_valid == int(both.sum())
            for a in range(3):
                for b in range(3):
                    expected = int(
                        (both & (genos[:, i] == a) & (genos[:, j] == b)).sum()
                    )
                    assert table[a, b] == expected

    def test_table_sums_to_n_valid(self, genotypes):
        gm = GenotypeMatrix.from_dense(genotypes)
        planes = prepare_planes(gm)
        table, n_valid = plink_pairwise_counts(planes, 0, 5)
        assert int(table.sum()) == n_valid == gm.n_individuals


class TestR2Matrix:
    def test_matches_dosage_correlation(self, genotypes):
        gm = GenotypeMatrix.from_dense(genotypes)
        r2 = plink_r2_matrix(gm)
        ref = np.corrcoef(genotypes.astype(float).T) ** 2
        defined = ~np.isnan(r2)
        np.testing.assert_allclose(r2[defined], ref[defined], atol=1e-10)

    def test_symmetric_with_unit_diagonal(self, genotypes):
        gm = GenotypeMatrix.from_dense(genotypes)
        r2 = plink_r2_matrix(gm)
        clean = np.nan_to_num(r2)
        np.testing.assert_allclose(clean, clean.T)
        poly = genotypes.std(axis=0) > 0
        np.testing.assert_allclose(np.diag(r2)[poly], 1.0)

    def test_missing_data_matches_masked_correlation(self, genotypes_with_missing):
        gm = GenotypeMatrix.from_dense(genotypes_with_missing)
        r2 = plink_r2_matrix(gm)
        genos = genotypes_with_missing
        for i, j in [(0, 1), (4, 8)]:
            both = (genos[:, i] != -1) & (genos[:, j] != -1)
            x = genos[both, i].astype(float)
            y = genos[both, j].astype(float)
            if x.std() > 0 and y.std() > 0:
                expected = np.corrcoef(x, y)[0, 1] ** 2
                assert r2[i, j] == pytest.approx(expected, abs=1e-10)

    def test_monomorphic_undefined(self):
        genos = np.zeros((10, 2), dtype=np.int8)
        genos[:, 1] = [0, 1, 2, 0, 1, 2, 0, 1, 2, 0]
        r2 = plink_r2_matrix(GenotypeMatrix.from_dense(genos))
        assert np.isnan(r2[0, 0]) and np.isnan(r2[0, 1])
        assert r2[1, 1] == pytest.approx(1.0)

    def test_undefined_fill_value(self):
        genos = np.zeros((6, 2), dtype=np.int8)
        r2 = plink_r2_matrix(GenotypeMatrix.from_dense(genos), undefined=0.0)
        np.testing.assert_array_equal(r2, 0.0)

    def test_all_missing_pair(self):
        genos = np.full((8, 2), -1, dtype=np.int8)
        genos[:, 1] = [0, 1, 2, 0, 1, 2, 0, 1]
        r2 = plink_r2_matrix(GenotypeMatrix.from_dense(genos))
        assert np.isnan(r2[0, 1])
