"""Tests for deterministic fault injection and the hardened engine paths.

Covers repro.faults itself (spec validation, decision determinism,
serialization) and the engine behaviours it exists to exercise:
corruption detection on the tile handoff, poison-tile quarantine,
the tile watchdog, executor degradation, torn manifest appends, and
the versioned manifest's record checksums.
"""

from __future__ import annotations

import json

import numpy as np
import pytest

from repro.core.engine import (
    TileCorruptionError,
    TileManifest,
    TileTask,
    input_fingerprint,
    run_engine,
)
from repro.core.ldmatrix import as_bitmatrix, ld_matrix
from repro.core.streaming import NpyMemmapSink, stream_ld_blocks
from repro.faults import (
    FaultPlan,
    FaultSpec,
    InjectedCrash,
    InjectedFault,
)
from repro.observe import MetricsRecorder


@pytest.fixture
def panel(rng):
    return rng.integers(0, 2, size=(60, 29)).astype(np.uint8)


class _AssemblingSink:
    def __init__(self, n: int) -> None:
        self.matrix = np.full((n, n), np.nan)
        self.calls: list[tuple[int, int]] = []

    def __call__(self, i0: int, j0: int, block: np.ndarray) -> None:
        self.calls.append((i0, j0))
        self.matrix[i0 : i0 + block.shape[0], j0 : j0 + block.shape[1]] = block


def _lower(panel, matrix):
    il = np.tril_indices(panel.shape[1])
    return matrix[il]


class TestFaultSpecValidation:
    def test_rejects_unknown_site_and_action(self):
        with pytest.raises(ValueError, match="unknown fault site"):
            FaultSpec(site="tile_burn")
        with pytest.raises(ValueError, match="unknown fault action"):
            FaultSpec(site="tile_compute", action="explode")

    def test_rejects_action_at_wrong_site(self):
        with pytest.raises(ValueError, match="not injectable"):
            FaultSpec(site="tile_compute", action="bitflip")
        with pytest.raises(ValueError, match="not injectable"):
            FaultSpec(site="pool_spawn", action="kill")
        with pytest.raises(ValueError, match="not injectable"):
            FaultSpec(site="tile_deliver", action="torn")

    def test_rejects_bad_numbers(self):
        with pytest.raises(ValueError, match="rate"):
            FaultSpec(site="tile_compute", rate=1.5)
        with pytest.raises(ValueError, match="attempts_below"):
            FaultSpec(site="tile_compute", attempts_below=0)
        with pytest.raises(ValueError, match="delay_seconds"):
            FaultSpec(site="tile_compute", action="delay", delay_seconds=-1)


class TestFaultPlanDecisions:
    def test_decisions_are_pure_functions_of_identity(self):
        plan = FaultPlan(seed=42, specs=(
            FaultSpec(site="tile_compute", rate=0.5),
        ))
        # Re-evaluating the same opportunity always agrees with itself —
        # the property that makes worker-local plan copies coherent.
        for key in [(0, 0), (8, 0), (8, 8)]:
            for attempt in range(3):
                outcomes = set()
                for _ in range(5):
                    try:
                        plan.fire("tile_compute", key, attempt)
                        outcomes.add("pass")
                    except InjectedFault:
                        outcomes.add("raise")
                assert len(outcomes) == 1

    def test_seed_changes_the_schedule(self):
        def fired(seed):
            plan = FaultPlan(seed=seed, specs=(
                FaultSpec(site="tile_compute", rate=0.5),
            ))
            hits = []
            for i in range(40):
                try:
                    plan.fire("tile_compute", (i, 0), 0)
                except InjectedFault:
                    hits.append(i)
            return hits

        assert fired(1) != fired(2)

    def test_tile_and_attempt_gates(self):
        plan = FaultPlan(specs=(
            FaultSpec(site="tile_compute", tile=(8, 0), attempts_below=2),
        ))
        plan.fire("tile_compute", (0, 0), 0)  # other tile: no fire
        plan.fire("tile_compute", (8, 0), 2)  # attempts exhausted: no fire
        with pytest.raises(InjectedFault):
            plan.fire("tile_compute", (8, 0), 1)

    def test_corrupt_flips_exactly_one_bit(self):
        plan = FaultPlan(seed=3, specs=(
            FaultSpec(site="tile_deliver", action="bitflip", tile=(0, 0)),
        ))
        block = np.arange(12, dtype=np.float64).reshape(3, 4)
        original = block.copy()
        assert plan.corrupt("tile_deliver", (0, 0), 0, block)
        diff = block.view(np.uint64) ^ original.view(np.uint64)
        assert bin(int(diff.sum())).count("1") == 1
        assert not plan.corrupt("tile_deliver", (4, 0), 0, block)

    def test_json_round_trip(self, tmp_path):
        plan = FaultPlan(seed=9, specs=(
            FaultSpec(site="tile_compute", action="kill", tile=(8, 0),
                      attempts_below=1),
            FaultSpec(site="tile_deliver", action="bitflip", rate=0.25),
        ))
        path = tmp_path / "plan.json"
        path.write_text(json.dumps(plan.to_dict()))
        assert FaultPlan.from_json(path) == plan

    def test_from_json_rejects_garbage(self, tmp_path):
        path = tmp_path / "bad.json"
        path.write_text("{not json")
        with pytest.raises(ValueError, match="unreadable fault plan"):
            FaultPlan.from_json(path)
        path.write_text('{"seed": 0, "specs": [{"site": "nope"}]}')
        with pytest.raises(ValueError, match="invalid fault plan"):
            FaultPlan.from_json(path)
        path.write_text('{"sede": 1}')
        with pytest.raises(ValueError, match="unknown fault-plan fields"):
            FaultPlan.from_json(path)


class TestCorruptionDetection:
    @pytest.mark.parametrize("engine", ["serial", "threads", "processes"])
    def test_bitflip_within_budget_is_recomputed(self, panel, engine):
        plan = FaultPlan(seed=5, specs=(
            FaultSpec(site="tile_deliver", action="bitflip", tile=(8, 8),
                      attempts_below=1),
        ))
        sink = _AssemblingSink(panel.shape[1])
        recorder = MetricsRecorder(keep_events=True)
        report = run_engine(
            panel, sink, engine=engine, block_snps=8, n_workers=2,
            max_retries=2, retry_backoff=0.0, faults=plan, recorder=recorder,
        )
        assert report.complete and report.n_quarantined == 0
        assert recorder.counters["engine.corruptions"] == 1
        assert recorder.event_count("tile_corrupt") == 1
        np.testing.assert_array_equal(
            _lower(panel, sink.matrix), _lower(panel, ld_matrix(panel))
        )

    def test_corruption_beyond_budget_is_never_written(self, panel):
        plan = FaultPlan(specs=(
            FaultSpec(site="tile_deliver", action="bitflip", tile=(8, 0)),
        ))
        sink = _AssemblingSink(panel.shape[1])
        recorder = MetricsRecorder(keep_events=True)
        report = run_engine(
            panel, sink, engine="serial", block_snps=8,
            max_retries=1, retry_backoff=0.0, allow_quarantine=True,
            faults=plan, recorder=recorder,
        )
        assert report.n_quarantined == 1
        assert report.quarantined == ((8, 0),)
        assert not report.complete
        # The poisoned tile never reached the sink: its cells are still
        # the sink's initial NaN fill, and every other tile is correct.
        assert (8, 0) not in sink.calls
        assert np.isnan(sink.matrix[8:16, 0:8]).all()
        expected = ld_matrix(panel)
        for i0, j0 in sink.calls:
            np.testing.assert_array_equal(
                sink.matrix[i0 : i0 + 8, j0 : j0 + 8][
                    ~np.isnan(sink.matrix[i0 : i0 + 8, j0 : j0 + 8])
                ],
                expected[i0 : i0 + 8, j0 : j0 + 8][
                    ~np.isnan(sink.matrix[i0 : i0 + 8, j0 : j0 + 8])
                ],
            )
        assert recorder.event_count("tile_quarantined") == 1

    def test_without_quarantine_corruption_aborts(self, panel):
        plan = FaultPlan(specs=(
            FaultSpec(site="tile_deliver", action="bitflip", tile=(8, 0)),
        ))
        with pytest.raises(TileCorruptionError, match="checksum"):
            run_engine(
                panel, _AssemblingSink(panel.shape[1]), engine="serial",
                block_snps=8, max_retries=1, retry_backoff=0.0, faults=plan,
            )

    def test_streaming_detects_bitflips_too(self, panel):
        plan = FaultPlan(specs=(
            FaultSpec(site="tile_deliver", action="bitflip", tile=(0, 0)),
        ))
        with pytest.raises(TileCorruptionError, match="refusing to write"):
            stream_ld_blocks(
                panel, lambda *a: None, block_snps=8, faults=plan
            )


class TestQuarantineResume:
    def test_quarantined_tile_is_retried_on_resume(self, panel, tmp_path):
        manifest = tmp_path / "run.manifest"
        out = tmp_path / "ld.npy"
        n = panel.shape[1]
        plan = FaultPlan(specs=(
            FaultSpec(site="tile_compute", tile=(16, 8)),
        ))
        with NpyMemmapSink(out, n) as sink:
            first = run_engine(
                panel, sink, engine="serial", block_snps=8,
                manifest_path=manifest, max_retries=1, retry_backoff=0.0,
                allow_quarantine=True, faults=plan,
            )
        assert first.quarantined == ((16, 8),)
        with TileManifest.open(
            manifest,
            input_fingerprint(as_bitmatrix(panel), stat="r2", block_snps=8),
            resume=True,
        ) as journal:
            assert set(journal.quarantined) == {(16, 8)}
            assert "injected raise" in journal.quarantined[(16, 8)]
            assert (16, 8) not in journal.completed
        # Resume without the fault plan: the quarantined tile is retried,
        # not skipped, and the finished matrix is bit-identical to clean.
        with NpyMemmapSink(out, n, mode="r+") as sink:
            second = run_engine(
                panel, sink, engine="serial", block_snps=8,
                manifest_path=manifest, resume=True,
            )
        assert second.n_computed == 1 and second.complete
        clean = tmp_path / "clean.npy"
        with NpyMemmapSink(clean, n) as sink:
            run_engine(panel, sink, engine="serial", block_snps=8)
        np.testing.assert_array_equal(np.load(out), np.load(clean))


class TestWatchdog:
    @pytest.mark.parametrize("engine", ["serial", "threads"])
    def test_slow_tile_times_out_and_retries(self, panel, engine):
        plan = FaultPlan(specs=(
            FaultSpec(site="tile_compute", action="delay", tile=(8, 0),
                      attempts_below=1, delay_seconds=0.4),
        ))
        sink = _AssemblingSink(panel.shape[1])
        recorder = MetricsRecorder(keep_events=True)
        report = run_engine(
            panel, sink, engine=engine, block_snps=8, n_workers=2,
            max_retries=2, retry_backoff=0.0, tile_timeout=0.15,
            faults=plan, recorder=recorder,
        )
        assert report.complete
        assert recorder.counters["engine.timeouts"] >= 1
        assert recorder.event_count("tile_timeout") >= 1
        np.testing.assert_array_equal(
            _lower(panel, sink.matrix), _lower(panel, ld_matrix(panel))
        )

    def test_hung_process_worker_is_killed(self, panel):
        plan = FaultPlan(specs=(
            FaultSpec(site="tile_compute", action="delay", tile=(8, 0),
                      attempts_below=1, delay_seconds=30.0),
        ))
        sink = _AssemblingSink(panel.shape[1])
        recorder = MetricsRecorder(keep_events=True)
        report = run_engine(
            panel, sink, engine="processes", block_snps=8, n_workers=2,
            max_retries=2, retry_backoff=0.0, tile_timeout=0.5,
            faults=plan, recorder=recorder,
        )
        assert report.complete
        assert recorder.counters["engine.timeouts"] >= 1
        assert recorder.counters["engine.pool_restarts"] >= 1
        np.testing.assert_array_equal(
            _lower(panel, sink.matrix), _lower(panel, ld_matrix(panel))
        )


class TestDegradation:
    def test_processes_degrade_to_threads_when_pool_cannot_spawn(self, panel):
        plan = FaultPlan(specs=(
            FaultSpec(site="pool_spawn"),
        ))
        sink = _AssemblingSink(panel.shape[1])
        recorder = MetricsRecorder(keep_events=True)
        report = run_engine(
            panel, sink, engine="processes", block_snps=8, n_workers=2,
            max_retries=1, retry_backoff=0.0, faults=plan, recorder=recorder,
        )
        assert report.complete
        assert report.engine == "processes"
        assert report.engine_used == "threads"
        assert report.degraded
        assert recorder.counters["engine.degradations"] == 1
        assert recorder.counters["engine.spawn_failures"] >= 1
        events = [e for e in recorder.events if e["kind"] == "executor_degraded"]
        assert events and events[0]["from_engine"] == "processes"
        assert events[0]["to_engine"] == "threads"
        np.testing.assert_array_equal(
            _lower(panel, sink.matrix), _lower(panel, ld_matrix(panel))
        )

    def test_worker_kill_within_budget_rebuilds_the_pool(self, panel):
        plan = FaultPlan(specs=(
            FaultSpec(site="tile_compute", action="kill", attempts_below=1,
                      tile=(8, 0)),
        ))
        sink = _AssemblingSink(panel.shape[1])
        recorder = MetricsRecorder(keep_events=True)
        report = run_engine(
            panel, sink, engine="processes", block_snps=8, n_workers=2,
            max_retries=2, retry_backoff=0.0, faults=plan, recorder=recorder,
        )
        assert report.complete
        assert not report.degraded
        assert recorder.counters["engine.pool_restarts"] >= 1
        np.testing.assert_array_equal(
            _lower(panel, sink.matrix), _lower(panel, ld_matrix(panel))
        )

    def test_kill_downgrades_to_raise_in_process(self, panel):
        # A kill outside a sacrificeable pool worker must not take the
        # driver down; the serial engine sees it as a retryable raise.
        plan = FaultPlan(specs=(
            FaultSpec(site="tile_compute", action="kill", attempts_below=1,
                      tile=(8, 0)),
        ))
        sink = _AssemblingSink(panel.shape[1])
        report = run_engine(
            panel, sink, engine="serial", block_snps=8,
            max_retries=2, retry_backoff=0.0, faults=plan,
        )
        assert report.complete and report.n_retries == 1


class TestTornManifest:
    def test_torn_append_crashes_and_resume_recovers(self, panel, tmp_path):
        manifest = tmp_path / "run.manifest"
        out = tmp_path / "ld.npy"
        n = panel.shape[1]
        plan = FaultPlan(specs=(
            FaultSpec(site="manifest_append", action="torn", tile=(16, 0)),
        ))
        with NpyMemmapSink(out, n) as sink:
            with pytest.raises(InjectedCrash, match="torn manifest"):
                run_engine(
                    panel, sink, engine="serial", block_snps=8,
                    manifest_path=manifest, faults=plan,
                )
        # The journal's final line really is torn mid-record.
        assert not manifest.read_text().endswith("\n")
        with NpyMemmapSink(out, n, mode="r+") as sink:
            resumed = run_engine(
                panel, sink, engine="serial", block_snps=8,
                manifest_path=manifest, resume=True,
            )
        assert resumed.complete
        clean = tmp_path / "clean.npy"
        with NpyMemmapSink(clean, n) as sink:
            run_engine(panel, sink, engine="serial", block_snps=8)
        np.testing.assert_array_equal(np.load(out), np.load(clean))


class TestManifestV2:
    def test_records_carry_checksums(self, tmp_path):
        path = tmp_path / "m.manifest"
        with TileManifest.open(path, "fp") as manifest:
            manifest.record(TileTask(0, 8, 0, 8))
        for line in path.read_text().splitlines():
            record = json.loads(line)
            assert "crc" in record

    def test_interior_corruption_is_detected(self, tmp_path):
        path = tmp_path / "m.manifest"
        with TileManifest.open(path, "fp") as manifest:
            manifest.record(TileTask(0, 8, 0, 8))
            manifest.record(TileTask(8, 16, 0, 8))
        lines = path.read_text().splitlines()
        lines[1] = lines[1].replace('[0,0]', '[0,8]')  # flip a journaled key
        path.write_text("\n".join(lines) + "\n")
        with pytest.raises(ValueError, match="checksum mismatch"):
            TileManifest.open(path, "fp", resume=True)

    def test_interior_garbage_is_detected(self, tmp_path):
        path = tmp_path / "m.manifest"
        with TileManifest.open(path, "fp") as manifest:
            manifest.record(TileTask(0, 8, 0, 8))
            manifest.record(TileTask(8, 16, 0, 8))
        lines = path.read_text().splitlines()
        lines[1] = '{"tile": [0,'
        path.write_text("\n".join(lines) + "\n")
        with pytest.raises(ValueError, match="corrupt manifest record"):
            TileManifest.open(path, "fp", resume=True)

    def test_torn_tail_is_truncated_before_appending(self, tmp_path):
        path = tmp_path / "m.manifest"
        with TileManifest.open(path, "fp") as manifest:
            manifest.record(TileTask(0, 8, 0, 8))
        with path.open("a") as fh:
            fh.write('{"tile": [8,')
        with TileManifest.open(path, "fp", resume=True) as manifest:
            assert manifest.completed == {(0, 0)}
            manifest.record(TileTask(8, 16, 0, 8))
        # The torn fragment is gone and the new record parses cleanly.
        with TileManifest.open(path, "fp", resume=True) as manifest:
            assert manifest.completed == {(0, 0), (8, 0)}

    def test_version_1_manifests_still_load(self, tmp_path):
        path = tmp_path / "v1.manifest"
        path.write_text(
            json.dumps({"magic": TileManifest.MAGIC, "version": 1,
                        "fingerprint": "fp"}) + "\n"
            + json.dumps({"tile": [0, 0]}) + "\n"
        )
        with TileManifest.open(path, "fp", resume=True) as manifest:
            assert manifest.completed == {(0, 0)}

    def test_quarantine_round_trip_and_supersession(self, tmp_path):
        path = tmp_path / "q.manifest"
        with TileManifest.open(path, "fp") as manifest:
            manifest.record_quarantine(TileTask(0, 8, 0, 8), "boom")
            manifest.record_quarantine(TileTask(8, 16, 0, 8), "bang")
            manifest.record(TileTask(8, 16, 0, 8))  # later success supersedes
        with TileManifest.open(path, "fp", resume=True) as manifest:
            assert manifest.quarantined == {(0, 0): "boom"}
            assert manifest.completed == {(8, 0)}
