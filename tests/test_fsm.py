"""Tests for the finite-sites four-bit-plane encoding (repro.encoding.fsm)."""

import numpy as np
import pytest

from repro.encoding.bitmatrix import BitMatrix
from repro.encoding.fsm import DNA_STATES, FiniteSitesMatrix


@pytest.fixture
def alignment(rng):
    return rng.choice(list("ACGT-N"), size=(40, 9), p=[0.25, 0.25, 0.2, 0.2, 0.05, 0.05])


class TestConstruction:
    def test_from_characters_shapes(self, alignment):
        fsm = FiniteSitesMatrix.from_characters(alignment)
        assert fsm.shape == (40, 9)
        assert fsm.n_samples == 40 and fsm.n_snps == 9

    def test_planes_are_indicator_matrices(self, alignment):
        fsm = FiniteSitesMatrix.from_characters(alignment)
        for state in DNA_STATES:
            np.testing.assert_array_equal(
                fsm.plane(state).to_dense(),
                (np.char.upper(alignment) == state).astype(np.uint8),
            )

    def test_lowercase_accepted(self):
        fsm = FiniteSitesMatrix.from_characters(np.array([["a", "c"], ["g", "t"]]))
        assert fsm.plane("A").to_dense()[0, 0] == 1
        assert fsm.plane("T").to_dense()[1, 1] == 1

    def test_bytes_accepted(self):
        chars = np.array([[b"A", b"C"], [b"G", b"T"]], dtype="S1")
        fsm = FiniteSitesMatrix.from_characters(chars)
        assert fsm.plane("C").to_dense()[0, 1] == 1

    def test_rejects_wrong_ndim(self):
        with pytest.raises(ValueError, match="2-D"):
            FiniteSitesMatrix.from_characters(np.array(["A", "C"]))

    def test_rejects_overlapping_planes(self):
        plane = BitMatrix.from_dense(np.ones((4, 2), dtype=np.uint8))
        empty = BitMatrix.zeros(4, 2)
        with pytest.raises(ValueError, match="overlap"):
            FiniteSitesMatrix(planes=(plane, plane, empty, empty))

    def test_rejects_mismatched_shapes(self):
        a = BitMatrix.zeros(4, 2)
        b = BitMatrix.zeros(5, 2)
        with pytest.raises(ValueError, match="disagree"):
            FiniteSitesMatrix(planes=(a, b, a, a))

    def test_plane_lookup_rejects_unknown_state(self, alignment):
        fsm = FiniteSitesMatrix.from_characters(alignment)
        with pytest.raises(ValueError, match="unknown DNA state"):
            fsm.plane("X")


class TestDerivedQuantities:
    def test_validity_mask_marks_acgt_only(self, alignment):
        fsm = FiniteSitesMatrix.from_characters(alignment)
        valid = fsm.validity_mask().bits.to_dense().astype(bool)
        expected = np.isin(np.char.upper(alignment), list(DNA_STATES))
        np.testing.assert_array_equal(valid, expected)

    def test_state_counts(self, alignment):
        fsm = FiniteSitesMatrix.from_characters(alignment)
        counts = fsm.state_counts()
        assert counts.shape == (9, 4)
        upper = np.char.upper(alignment)
        for snp in range(9):
            for idx, state in enumerate(DNA_STATES):
                assert counts[snp, idx] == (upper[:, snp] == state).sum()

    def test_n_states(self):
        chars = np.array([["A", "A", "G"], ["A", "C", "T"], ["A", "C", "-"]])
        fsm = FiniteSitesMatrix.from_characters(chars)
        np.testing.assert_array_equal(fsm.n_states(), [1, 2, 2])

    def test_to_characters_roundtrip(self, alignment):
        fsm = FiniteSitesMatrix.from_characters(alignment)
        decoded = fsm.to_characters()
        upper = np.char.upper(alignment)
        valid = np.isin(upper, list(DNA_STATES))
        np.testing.assert_array_equal(decoded[valid], upper[valid])
        assert np.all(decoded[~valid] == "-")

    def test_repr(self, alignment):
        assert "n_snps=9" in repr(FiniteSitesMatrix.from_characters(alignment))
