"""Tests for demographic-history coalescent simulation (repro.simulate.demography)."""

import numpy as np
import pytest

from repro.simulate.coalescent import simulate_coalescent
from repro.simulate.demography import (
    Epoch,
    PopulationHistory,
    simulate_coalescent_demography,
)


class TestPopulationHistory:
    def test_constant(self):
        history = PopulationHistory.constant()
        assert history.size_at(0.0) == 1.0
        assert history.size_at(100.0) == 1.0

    def test_bottleneck_profile(self):
        history = PopulationHistory.bottleneck(depth=0.1, start=0.05, end=0.5)
        assert history.size_at(0.0) == 1.0
        assert history.size_at(0.1) == 0.1
        assert history.size_at(0.6) == 1.0

    def test_expansion_profile(self):
        history = PopulationHistory.expansion(factor=10.0, onset=0.1)
        assert history.size_at(0.05) == 10.0
        assert history.size_at(0.2) == 1.0

    def test_validation(self):
        with pytest.raises(ValueError, match="at least one"):
            PopulationHistory(epochs=())
        with pytest.raises(ValueError, match="start at time 0"):
            PopulationHistory(epochs=(Epoch(1.0, 1.0),))
        with pytest.raises(ValueError, match="strictly increasing"):
            PopulationHistory(epochs=(Epoch(0.0, 1.0), Epoch(0.0, 2.0)))
        with pytest.raises(ValueError, match="positive"):
            Epoch(0.0, 0.0)
        with pytest.raises(ValueError, match=">= 0"):
            Epoch(-1.0, 1.0)
        with pytest.raises(ValueError, match="0 < start < end"):
            PopulationHistory.bottleneck(start=0.5, end=0.1)
        with pytest.raises(ValueError, match="positive"):
            PopulationHistory.expansion(factor=0.0)

    def test_size_at_rejects_negative_time(self):
        with pytest.raises(ValueError, match=">= 0"):
            PopulationHistory.constant().size_at(-1.0)

    def test_coalescence_rate_scales_with_size(self):
        """Mean waiting time for k=2 equals the relative size."""
        rng = np.random.default_rng(2)
        for size in (0.25, 1.0, 4.0):
            history = PopulationHistory.constant(size)
            times = [
                history.draw_coalescence_time(0.0, 2, rng) for _ in range(4000)
            ]
            assert np.mean(times) == pytest.approx(size, rel=0.1)

    def test_rate_changes_across_boundary(self):
        """Waiting times starting inside a small-size epoch are short."""
        rng = np.random.default_rng(3)
        history = PopulationHistory(
            epochs=(Epoch(0.0, 1.0), Epoch(1.0, 0.01))
        )
        # Starting after the boundary, rate is 100x: tiny waits.
        times = [
            history.draw_coalescence_time(2.0, 2, rng) - 2.0
            for _ in range(2000)
        ]
        assert np.mean(times) == pytest.approx(0.01, rel=0.15)

    def test_draw_rejects_single_lineage(self):
        with pytest.raises(ValueError, match=">= 2"):
            PopulationHistory.constant().draw_coalescence_time(
                0.0, 1, np.random.default_rng(0)
            )


class TestSimulateWithDemography:
    def test_constant_history_matches_plain_coalescent(self):
        """Same distribution: compare mean tree heights over replicates."""
        history = PopulationHistory.constant()
        rng_a = np.random.default_rng(10)
        rng_b = np.random.default_rng(11)
        reps = 200
        demo_heights = [
            simulate_coalescent_demography(8, 1.0, history, rng=rng_a).tree_height
            for _ in range(reps)
        ]
        plain_heights = [
            simulate_coalescent(8, 1.0, rng=rng_b).tree_height
            for _ in range(reps)
        ]
        assert np.mean(demo_heights) == pytest.approx(
            np.mean(plain_heights), rel=0.15
        )

    def test_bottleneck_reduces_diversity(self):
        """Severe recent bottleneck => shorter trees => fewer SNPs."""
        rng = np.random.default_rng(14)
        reps, theta = 120, 5.0
        bottleneck = PopulationHistory(
            epochs=(Epoch(0.0, 0.02),)  # tiny population throughout
        )
        small = np.mean([
            simulate_coalescent_demography(
                10, theta, bottleneck, rng=rng
            ).n_snps
            for _ in range(reps)
        ])
        normal = np.mean([
            simulate_coalescent_demography(
                10, theta, PopulationHistory.constant(), rng=rng
            ).n_snps
            for _ in range(reps)
        ])
        assert small < 0.25 * normal

    def test_expansion_enriches_singletons(self):
        """Recent expansion => star-like trees => singleton excess."""
        rng = np.random.default_rng(15)
        reps, theta = 150, 8.0

        def singleton_fraction(history):
            singles = total = 0
            for _ in range(reps):
                sample = simulate_coalescent_demography(
                    12, theta, history, rng=rng
                )
                if sample.n_snps:
                    counts = sample.haplotypes.sum(axis=0)
                    singles += int((counts == 1).sum())
                    total += sample.n_snps
            return singles / total

        expanded = singleton_fraction(
            PopulationHistory.expansion(factor=50.0, onset=0.02)
        )
        constant = singleton_fraction(PopulationHistory.constant())
        assert expanded > constant

    def test_basic_output_contract(self):
        rng = np.random.default_rng(16)
        sample = simulate_coalescent_demography(
            15, 10.0, PopulationHistory.bottleneck(), rng=rng, min_snps=4
        )
        assert sample.n_samples == 15
        assert sample.n_snps >= 4
        counts = sample.haplotypes.sum(axis=0)
        assert np.all((counts >= 1) & (counts <= 14))
        assert np.all(np.diff(sample.positions) >= 0)

    def test_validation(self):
        history = PopulationHistory.constant()
        with pytest.raises(ValueError, match="at least 2"):
            simulate_coalescent_demography(1, 1.0, history)
        with pytest.raises(ValueError, match="non-negative"):
            simulate_coalescent_demography(5, -1.0, history)
