"""Tests for the live run-status bus (repro.observe.live)."""

from __future__ import annotations

import json
import threading
import urllib.request

import numpy as np
import pytest

from repro.core.engine import run_engine
from repro.observe import MetricsRecorder
from repro.observe.live import (
    LIVE_SCHEMA,
    LivePublisher,
    new_run_id,
    prometheus_text,
    read_snapshot,
    render_top,
    serve_prometheus,
    sparkline,
)


@pytest.fixture
def panel(rng):
    return rng.integers(0, 2, size=(60, 33)).astype(np.uint8)


class TestLivePublisher:
    def test_begin_publishes_first_snapshot(self, tmp_path):
        path = tmp_path / "live.json"
        pub = LivePublisher(path, config={"engine": "serial", "stat": "r2"})
        assert not path.exists()
        pub.begin(n_tiles=10, pairs_total=1000)
        snapshot = read_snapshot(path)
        assert snapshot["schema"] == LIVE_SCHEMA
        assert snapshot["phase"] == "running"
        assert snapshot["tiles"]["total"] == 10
        assert snapshot["pairs"]["total"] == 1000
        assert snapshot["config"]["engine"] == "serial"

    def test_progress_and_worker_heartbeats(self, tmp_path):
        pub = LivePublisher(tmp_path / "live.json")
        pub.begin(n_tiles=4, pairs_total=400)
        pub.tile_done(worker="pid-1", pairs=100, compute_s=0.01)
        pub.tile_done(worker="pid-1", pairs=100, compute_s=0.01)
        pub.tile_done(worker="pid-2", pairs=100, compute_s=0.02)
        pub.publish()
        snapshot = read_snapshot(pub.path)
        assert snapshot["tiles"]["done"] == 3
        assert snapshot["pairs"]["done"] == 300
        rows = {r["worker"]: r for r in snapshot["workers"]}
        assert rows["pid-1"]["n_tiles"] == 2
        assert rows["pid-2"]["n_tiles"] == 1
        assert all(r["state"] == "busy" for r in snapshot["workers"])

    def test_fault_accounting(self, tmp_path):
        pub = LivePublisher(tmp_path / "live.json")
        pub.begin(n_tiles=2, pairs_total=20)
        pub.tile_retry()
        pub.tile_quarantined()
        pub.pool_restart()
        pub.worker_respawn(1)
        pub.publish()
        snapshot = read_snapshot(pub.path)
        assert snapshot["retries"] == 1
        assert snapshot["tiles"]["quarantined"] == 1
        assert snapshot["pool_restarts"] == 1
        assert snapshot["worker_respawns"] == 1
        assert snapshot["recent_respawns"][0]["worker"] == 1

    def test_finish_marks_done(self, tmp_path):
        pub = LivePublisher(tmp_path / "live.json")
        pub.begin(n_tiles=1, pairs_total=1)
        pub.finish()
        assert read_snapshot(pub.path)["phase"] == "done"

    def test_maybe_publish_throttles(self, tmp_path):
        pub = LivePublisher(tmp_path / "live.json", interval=60.0)
        assert pub.maybe_publish() is True  # first call always fires
        assert pub.maybe_publish() is False  # throttled for 60 s
        assert pub.n_published == 1

    def test_seq_monotone_and_atomic_tmp_cleanup(self, tmp_path):
        pub = LivePublisher(tmp_path / "live.json")
        pub.begin(n_tiles=1, pairs_total=1)
        for _ in range(3):
            pub.publish()
        snapshot = read_snapshot(pub.path)
        assert snapshot["seq"] == 3
        assert not (tmp_path / "live.json.tmp").exists()

    def test_interval_must_be_positive(self, tmp_path):
        with pytest.raises(ValueError, match="interval"):
            LivePublisher(tmp_path / "live.json", interval=0.0)

    def test_percent_of_peak_needs_shape_and_dense(self, tmp_path):
        pub = LivePublisher(tmp_path / "live.json")  # no shape in config
        pub.begin(n_tiles=1, pairs_total=100)
        pub.tile_done(worker="w", pairs=50)
        pub.publish()
        assert read_snapshot(pub.path)["percent_of_peak"] is None
        banded = LivePublisher(
            tmp_path / "banded.json",
            config={"n_snps": 64, "k_words": 2, "band": "window 8"},
        )
        banded.begin(n_tiles=1, pairs_total=100)
        banded.tile_done(worker="w", pairs=50)
        banded.publish()
        assert read_snapshot(banded.path)["percent_of_peak"] is None

    def test_percent_of_peak_on_dense_shape(self, tmp_path):
        pub = LivePublisher(
            tmp_path / "live.json", config={"n_snps": 64, "k_words": 2}
        )
        pub.begin(n_tiles=1, pairs_total=100)
        pub.tile_done(worker="w", pairs=50)
        pub.publish()
        peak = read_snapshot(pub.path)["percent_of_peak"]
        assert peak is not None and 0.0 <= peak <= 100.0

    def test_io_bound_anomaly_from_recorder(self, tmp_path):
        recorder = MetricsRecorder()
        pub = LivePublisher(tmp_path / "live.json", recorder=recorder)
        pub.begin(n_tiles=1, pairs_total=10)
        # Stall far beyond STALL_THRESHOLD of any sane elapsed time.
        recorder.observe_time("prefetch.stall_seconds", 1e6)
        recorder.inc("prefetch.bytes_read", 4096)
        pub.publish()
        snapshot = read_snapshot(pub.path)
        kinds = {a["kind"] for a in snapshot["anomalies"]}
        assert "io_bound" in kinds
        assert snapshot["prefetch"]["bytes_read"] == 4096
        recorder.close()

    def test_read_snapshot_missing_and_wrong_schema(self, tmp_path):
        assert read_snapshot(tmp_path / "absent.json") is None
        bogus = tmp_path / "bogus.json"
        bogus.write_text('{"schema": "repro-profile/1"}')
        with pytest.raises(ValueError, match="repro-live/1"):
            read_snapshot(bogus)

    def test_run_ids_are_unique(self):
        assert new_run_id() != new_run_id()


class TestConcurrentReaders:
    def test_reader_never_sees_torn_json(self, tmp_path):
        """A polling reader racing the writer always parses a full doc."""
        path = tmp_path / "live.json"
        pub = LivePublisher(path)
        pub.begin(n_tiles=1, pairs_total=1)
        errors: list[Exception] = []
        stop = threading.Event()

        def poll() -> None:
            while not stop.is_set():
                try:
                    snapshot = read_snapshot(path)
                    assert snapshot is not None
                    assert snapshot["schema"] == LIVE_SCHEMA
                except Exception as exc:  # noqa: BLE001 - collected
                    errors.append(exc)
                    return

        readers = [threading.Thread(target=poll) for _ in range(4)]
        for t in readers:
            t.start()
        # Big config payload makes the serialized blob non-trivial so a
        # non-atomic write would actually tear.
        pub.config["pad"] = "x" * 4096
        for i in range(300):
            pub.tile_done(worker=f"w{i % 3}", pairs=1)
            pub.publish()
        stop.set()
        for t in readers:
            t.join()
        assert not errors


class TestEngineIntegration:
    def test_engine_run_feeds_publisher(self, panel, tmp_path):
        path = tmp_path / "live.json"
        pub = LivePublisher(path, config={"engine": "serial", "stat": "r2"})
        report = run_engine(
            panel, lambda *a: None, engine="serial", block_snps=8, live=pub
        )
        snapshot = read_snapshot(path)
        assert snapshot["phase"] == "done"
        assert snapshot["tiles"]["done"] == report.n_computed > 0
        assert snapshot["tiles"]["total"] == report.n_tiles
        assert snapshot["pairs"]["done"] > 0
        assert snapshot["workers"], "at least one worker heartbeat"

    def test_resumed_run_reports_skips(self, panel, tmp_path):
        manifest = tmp_path / "run.manifest"
        run_engine(
            panel, lambda *a: None, block_snps=8, manifest_path=manifest
        )
        pub = LivePublisher(tmp_path / "live.json")
        run_engine(
            panel, lambda *a: None, block_snps=8, manifest_path=manifest,
            resume=True, live=pub,
        )
        snapshot = read_snapshot(pub.path)
        assert snapshot["tiles"]["skipped"] == snapshot["tiles"]["total"] > 0
        assert snapshot["tiles"]["done"] == 0


class TestRenderTop:
    def _snapshot(self, tmp_path) -> dict:
        pub = LivePublisher(
            tmp_path / "live.json",
            config={
                "engine": "threads", "workers": 2, "stat": "r2",
                "n_snps": 60, "n_samples": 33,
            },
        )
        pub.begin(n_tiles=4, pairs_total=400)
        pub.tile_done(worker="pid-7", pairs=100, compute_s=0.01)
        pub.worker_respawn(0)
        pub.publish()
        return read_snapshot(pub.path)

    def test_dashboard_has_progress_workers_and_respawns(self, tmp_path):
        text = render_top(self._snapshot(tmp_path))
        assert "engine=threads" in text
        assert "tiles 1/4 done" in text
        assert "pid-7" in text
        assert "1 respawns" in text
        assert "respawned worker slot 0" in text
        assert "rate " in text

    def test_sparkline_shapes(self):
        assert sparkline([]) == ""
        assert sparkline([0.0, 0.0]) == "▁▁"
        line = sparkline([0.0, 5.0, 10.0])
        assert len(line) == 3 and line[-1] == "█"


class TestPrometheus:
    def test_text_format_core_series(self, tmp_path):
        pub = LivePublisher(tmp_path / "live.json", run_id="test-run")
        pub.begin(n_tiles=4, pairs_total=400)
        pub.tile_done(worker="pid-1", pairs=100)
        pub.publish()
        text = prometheus_text(read_snapshot(pub.path))
        assert 'repro_live_up{run_id="test-run"} 1' in text
        assert 'repro_tiles_done{run_id="test-run"} 1' in text
        assert 'repro_pairs_done{run_id="test-run"} 100' in text
        assert 'repro_worker_busy{run_id="test-run",worker="pid-1"} 1' in text
        assert 'repro_percent_of_peak{run_id="test-run"} NaN' in text
        assert '# TYPE repro_retries_total counter' in text
        assert text.endswith("\n")

    def test_anomaly_series_and_label_escaping(self, tmp_path):
        pub = LivePublisher(tmp_path / "live.json", run_id='od"d\\run')
        pub.begin(n_tiles=1, pairs_total=1)
        pub.publish()
        text = prometheus_text(read_snapshot(pub.path))
        assert r'run_id="od\"d\\run"' in text
        assert 'kind="none"' in text

    def test_serve_prometheus_scrape(self, tmp_path):
        pub = LivePublisher(tmp_path / "live.json", run_id="served")
        pub.begin(n_tiles=2, pairs_total=20)
        pub.publish()
        server = serve_prometheus(pub.path, 0)  # port 0: pick a free one
        thread = threading.Thread(target=server.serve_forever, daemon=True)
        thread.start()
        try:
            port = server.server_address[1]
            with urllib.request.urlopen(
                f"http://127.0.0.1:{port}/metrics", timeout=10
            ) as resp:
                assert resp.status == 200
                body = resp.read().decode()
            assert 'repro_tiles_total{run_id="served"} 2' in body
            # The exporter re-reads per scrape: later publishes show up.
            pub.tile_done(worker="w", pairs=10)
            pub.publish()
            with urllib.request.urlopen(
                f"http://127.0.0.1:{port}/metrics", timeout=10
            ) as resp:
                assert 'repro_tiles_done{run_id="served"} 1' in (
                    resp.read().decode()
                )
            with pytest.raises(urllib.error.HTTPError) as excinfo:
                urllib.request.urlopen(
                    f"http://127.0.0.1:{port}/nope", timeout=10
                )
            assert excinfo.value.code == 404
        finally:
            server.shutdown()
            server.server_close()
            thread.join(timeout=10)

    def test_serve_503_without_snapshot(self, tmp_path):
        server = serve_prometheus(tmp_path / "absent.json", 0)
        thread = threading.Thread(target=server.serve_forever, daemon=True)
        thread.start()
        try:
            port = server.server_address[1]
            with pytest.raises(urllib.error.HTTPError) as excinfo:
                urllib.request.urlopen(
                    f"http://127.0.0.1:{port}/metrics", timeout=10
                )
            assert excinfo.value.code == 503
        finally:
            server.shutdown()
            server.server_close()
            thread.join(timeout=10)
