"""docs/METRICS.md is a contract: emitted names must all be cataloged."""

from __future__ import annotations

import re
from pathlib import Path

import numpy as np
import pytest

from repro.core.engine import run_engine
from repro.observe import MetricsRecorder

CATALOG = Path(__file__).resolve().parent.parent / "docs" / "METRICS.md"

#: Trace event kinds documented in the catalog's event table; the
#: ``events.<kind>`` auto-counters and the emitted ``kind`` fields are
#: both checked against this vocabulary.
_WILDCARDS = ("events.", "phase.")


def catalog_names() -> set[str]:
    """Every backticked dotted name / bare identifier in the catalog."""
    text = CATALOG.read_text(encoding="utf-8")
    return set(re.findall(r"`([a-z_][a-z0-9_.<>]*)`", text))


def is_cataloged(name: str, names: set[str]) -> bool:
    if name in names:
        return True
    # events.<kind> and phase.<span> are cataloged as one wildcard row
    # plus an explicit vocabulary of kinds / span names.
    for prefix in _WILDCARDS:
        if name.startswith(prefix):
            wildcard = f"{prefix}<{'kind' if prefix == 'events.' else 'span'}>"
            suffix = name[len(prefix):]
            return wildcard in names and (
                suffix in names or suffix == "worker.idle"
            )
    return False


@pytest.fixture(scope="module")
def instrumented_recorder():
    rng = np.random.default_rng(0xCA7A)
    panel = rng.integers(0, 2, size=(50, 41)).astype(np.uint8)
    recorder = MetricsRecorder(keep_events=True)
    run_engine(
        panel, lambda *a: None, engine="threads", n_workers=2,
        block_snps=9, recorder=recorder,
    )
    yield recorder
    recorder.close()


class TestCatalog:
    def test_catalog_exists_and_is_substantial(self):
        names = catalog_names()
        # Spot checks: one of each family must be present.
        for expected in (
            "engine.tiles_computed", "engine.run_seconds", "gemm.calls",
            "prefetch.bytes_read", "stream.tiles_computed",
            "phase.worker.idle", "events.<kind>", "phase.<span>",
            "tile_computed", "worker_respawn", "pack_a", "driver.wait",
        ):
            assert expected in names, f"catalog lost {expected!r}"

    def test_every_emitted_counter_and_timer_is_cataloged(
        self, instrumented_recorder
    ):
        names = catalog_names()
        emitted = set(instrumented_recorder.counters) | set(
            instrumented_recorder.timers
        )
        assert emitted, "instrumented run emitted nothing?"
        missing = sorted(
            n for n in emitted if not is_cataloged(n, names)
        )
        assert not missing, (
            f"emitted metrics missing from docs/METRICS.md: {missing}"
        )

    def test_every_emitted_event_kind_is_cataloged(
        self, instrumented_recorder
    ):
        names = catalog_names()
        kinds = {e["kind"] for e in instrumented_recorder.events}
        assert "run_start" in kinds and "run_end" in kinds
        missing = sorted(k for k in kinds if k not in names)
        assert not missing, (
            f"emitted event kinds missing from docs/METRICS.md: {missing}"
        )

    def test_every_source_literal_emission_is_cataloged(self):
        """Static sweep: literal inc/observe_time/event names in src/."""
        names = catalog_names()
        src = CATALOG.parent.parent / "src"
        pattern = re.compile(
            r"""(?:\.inc|observe_time|\.event|record_event)\(\s*
                ["']([a-z_][a-z0-9_.]*)["']""",
            re.VERBOSE,
        )
        missing: set[str] = set()
        for path in src.rglob("*.py"):
            for name in pattern.findall(path.read_text(encoding="utf-8")):
                if not is_cataloged(name, names) and name not in names:
                    missing.add(f"{path.name}: {name}")
        assert not missing, (
            f"source emits names missing from docs/METRICS.md: "
            f"{sorted(missing)}"
        )
