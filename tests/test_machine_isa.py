"""Tests for the ISA abstractions and core port model (repro.machine.isa/.cpu)."""

import pytest

from repro.machine.cpu import CoreModel, HASWELL, IVY_BRIDGE_2S, MachineSpec
from repro.machine.isa import AVX2, AVX512, PRESETS, SCALAR64, SSE, SimdConfig
from repro.machine.peak import (
    gemm_theoretical_peak_flops_per_cycle,
    ld_theoretical_peak_ops_per_cycle,
)


class TestSimdConfig:
    @pytest.mark.parametrize(
        "config,lanes", [(SCALAR64, 1), (SSE, 2), (AVX2, 4), (AVX512, 8)]
    )
    def test_lanes(self, config, lanes):
        assert config.lanes == lanes

    def test_presets_have_no_hw_popcount(self):
        """Real x86 (the paper's premise): POPCNT is scalar everywhere."""
        for config in PRESETS:
            assert not config.hw_popcount

    def test_extract_insert_requirement(self):
        assert not SCALAR64.needs_extract_insert
        assert SSE.needs_extract_insert
        assert not SSE.with_hw_popcount().needs_extract_insert

    def test_with_hw_popcount_renames(self):
        hw = AVX2.with_hw_popcount()
        assert hw.hw_popcount and "hwpopcnt" in hw.name
        assert hw.lanes == AVX2.lanes

    def test_rejects_bad_width(self):
        with pytest.raises(ValueError, match="multiple of 64"):
            SimdConfig(name="odd", width_bits=96)
        with pytest.raises(ValueError, match="multiple of 64"):
            SimdConfig(name="tiny", width_bits=32)


class TestCoreModelComputeCycles:
    def test_scalar_is_popcnt_bound(self):
        """1e6 LD steps take 1e6 cycles: AND/ADD co-issue with POPCNT."""
        core = CoreModel()
        assert core.compute_cycles(1e6, 1e6, 1e6, SCALAR64) == pytest.approx(1e6)

    @pytest.mark.parametrize("simd", [SSE, AVX2, AVX512])
    def test_simd_without_hw_popcount_is_shuffle_bound(self, simd):
        """Section V: extract+insert through one port => 2 cycles/word."""
        core = CoreModel()
        assert core.compute_cycles(1e6, 1e6, 1e6, simd) == pytest.approx(2e6)

    @pytest.mark.parametrize("simd", [SSE, AVX2, AVX512])
    def test_hw_popcount_gives_full_vector_speedup(self, simd):
        core = CoreModel()
        hw = simd.with_hw_popcount()
        assert core.compute_cycles(1e6, 1e6, 1e6, hw) == pytest.approx(
            1e6 / simd.lanes
        )

    def test_alu_bound_when_popcnt_light(self):
        """With no POPCNTs the ALU ports set the pace."""
        core = CoreModel(alu_ports=2)
        assert core.compute_cycles(4e6, 0.0, 4e6, SCALAR64) == pytest.approx(4e6)

    def test_validation(self):
        with pytest.raises(ValueError, match="port"):
            CoreModel(alu_ports=0)
        with pytest.raises(ValueError, match="invalid"):
            CoreModel(pack_words_per_cycle=0.0)
        with pytest.raises(ValueError, match="invalid"):
            CoreModel(kernel_call_overhead=-1.0)


class TestPeaks:
    def test_scalar_peak_is_three_ops(self):
        assert ld_theoretical_peak_ops_per_cycle(SCALAR64) == 3.0

    @pytest.mark.parametrize("simd", [SSE, AVX2, AVX512])
    def test_real_simd_peak_stays_three(self, simd):
        """The paper's point: wider registers do not raise the LD peak."""
        assert ld_theoretical_peak_ops_per_cycle(simd) == 3.0

    @pytest.mark.parametrize("simd", [SSE, AVX2, AVX512])
    def test_hw_popcount_peak_scales(self, simd):
        assert ld_theoretical_peak_ops_per_cycle(
            simd.with_hw_popcount()
        ) == 3.0 * simd.lanes

    def test_gemm_peak_reference(self):
        assert gemm_theoretical_peak_flops_per_cycle(4, fma=False) == 8.0
        assert gemm_theoretical_peak_flops_per_cycle(4, fma=True) == 16.0
        with pytest.raises(ValueError):
            gemm_theoretical_peak_flops_per_cycle(0)


class TestMachineSpecs:
    def test_paper_testbeds(self):
        assert HASWELL.frequency_hz == 3.5e9
        assert IVY_BRIDGE_2S.n_cores == 12
        assert IVY_BRIDGE_2S.frequency_hz == 2.1e9

    def test_validation(self):
        with pytest.raises(ValueError, match="frequency"):
            MachineSpec(
                name="x", frequency_hz=0.0, core=CoreModel(),
                caches=HASWELL.caches, n_cores=1,
            )
        with pytest.raises(ValueError, match="core/SMT"):
            MachineSpec(
                name="x", frequency_hz=1e9, core=CoreModel(),
                caches=HASWELL.caches, n_cores=0,
            )
