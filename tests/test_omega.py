"""Tests for the ω statistic (repro.analysis.omega)."""

import numpy as np
import pytest

from repro.analysis.omega import (
    omega_at_split,
    omega_max,
    omega_profile,
    omega_scan_from_ld,
)
from repro.core.ldmatrix import ld_matrix


def brute_force_omega(r2: np.ndarray, ell: int) -> float:
    """Direct implementation of Kim & Nielsen's formula."""
    s = r2.shape[0]
    clean = np.nan_to_num(r2, nan=0.0)
    left = [(i, j) for i in range(ell) for j in range(i + 1, ell)]
    right = [(i, j) for i in range(ell, s) for j in range(i + 1, s)]
    cross = [(i, j) for i in range(ell) for j in range(ell, s)]
    numer = (sum(clean[i, j] for i, j in left) + sum(clean[i, j] for i, j in right)) / (
        len(left) + len(right)
    )
    denom = sum(clean[i, j] for i, j in cross) / len(cross)
    if denom == 0.0:
        return 0.0 if numer == 0.0 else float("inf")
    return numer / denom


@pytest.fixture
def r2_window(rng):
    dense = rng.integers(0, 2, size=(60, 14)).astype(np.uint8)
    return ld_matrix(dense)


class TestOmegaAtSplit:
    def test_matches_brute_force(self, r2_window):
        s = r2_window.shape[0]
        for ell in range(2, s - 1):
            assert omega_at_split(r2_window, ell) == pytest.approx(
                brute_force_omega(r2_window, ell)
            )

    def test_sweep_like_block_structure_gives_large_omega(self):
        """High within-flank LD, no cross-flank LD => huge ω."""
        s = 10
        r2 = np.full((s, s), 0.01)
        r2[:5, :5] = 0.9
        r2[5:, 5:] = 0.9
        np.fill_diagonal(r2, 1.0)
        assert omega_at_split(r2, 5) > 20.0

    def test_uniform_ld_gives_omega_one(self):
        s = 8
        r2 = np.full((s, s), 0.5)
        assert omega_at_split(r2, 4) == pytest.approx(1.0)

    def test_nan_pairs_count_as_zero(self):
        r2 = np.full((6, 6), 0.5)
        r2[0, 5] = r2[5, 0] = np.nan
        value = omega_at_split(r2, 3)
        expected = (0.5) / ((0.5 * 8) / 9)  # one cross pair zeroed
        assert value == pytest.approx(expected)

    def test_rejects_bad_split(self, r2_window):
        with pytest.raises(ValueError, match="split"):
            omega_at_split(r2_window, 1)
        with pytest.raises(ValueError, match="split"):
            omega_at_split(r2_window, r2_window.shape[0] - 1)

    def test_rejects_non_square(self):
        with pytest.raises(ValueError, match="square"):
            omega_at_split(np.zeros((3, 4)), 2)

    def test_zero_cross_zero_within(self):
        r2 = np.zeros((6, 6))
        assert omega_at_split(r2, 3) == 0.0

    def test_zero_cross_nonzero_within_is_inf(self):
        r2 = np.zeros((6, 6))
        r2[0, 1] = r2[1, 0] = 0.8
        assert omega_at_split(r2, 3) == float("inf")


class TestOmegaProfile:
    def test_matches_per_split_evaluation(self, r2_window):
        profile = omega_profile(r2_window)
        s = r2_window.shape[0]
        for ell in range(2, s - 1):
            assert profile[ell] == pytest.approx(omega_at_split(r2_window, ell))
        assert np.isnan(profile[0]) and np.isnan(profile[1])
        assert np.isnan(profile[s - 1]) and np.isnan(profile[s])

    def test_small_window_all_nan(self):
        profile = omega_profile(np.ones((3, 3)))
        assert np.all(np.isnan(profile))


class TestOmegaMax:
    def test_finds_planted_split(self):
        s = 12
        r2 = np.full((s, s), 0.02)
        r2[:7, :7] = 0.85
        r2[7:, 7:] = 0.85
        np.fill_diagonal(r2, 1.0)
        omega, ell = omega_max(r2)
        assert ell == 7
        assert omega > 10.0

    def test_tiny_window(self):
        assert omega_max(np.ones((2, 2))) == (0.0, 0)


class TestOmegaScanFromLd:
    def test_window_clipping_at_edges(self, rng):
        dense = rng.integers(0, 2, size=(50, 30)).astype(np.uint8)
        r2 = ld_matrix(dense)
        positions = np.arange(30, dtype=float)
        grid = np.array([0.0, 15.0, 29.0])
        omegas, splits = omega_scan_from_ld(r2, positions, grid, max_window=8)
        assert omegas.shape == (3,) and splits.shape == (3,)
        assert np.all(np.isfinite(omegas) | np.isinf(omegas))

    def test_rejects_shape_mismatch(self):
        with pytest.raises(ValueError, match="does not match"):
            omega_scan_from_ld(np.ones((3, 3)), np.arange(4.0), np.array([1.0]))

    def test_rejects_unsorted_positions(self):
        with pytest.raises(ValueError, match="sorted"):
            omega_scan_from_ld(
                np.ones((3, 3)), np.array([2.0, 1.0, 3.0]), np.array([1.0])
            )
