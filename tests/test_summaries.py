"""Tests for window-level LD summaries (repro.analysis.summaries)."""

import numpy as np
import pytest

from repro.analysis.summaries import kelly_zns, mean_abs_d_prime, walls_b
from repro.core.ldmatrix import ld_matrix


class TestKellyZns:
    def test_matches_manual_mean(self, small_panel):
        zns = kelly_zns(small_panel)
        r2 = ld_matrix(small_panel)
        iu = np.triu_indices(small_panel.shape[1], k=1)
        vals = r2[iu]
        expected = vals[~np.isnan(vals)].mean()
        assert zns == pytest.approx(expected)

    def test_window_bounds(self, small_panel):
        whole = kelly_zns(small_panel, start=10, stop=20)
        sub = kelly_zns(small_panel[:, 10:20])
        assert whole == pytest.approx(sub)

    def test_identical_columns_give_one(self, rng):
        col = rng.integers(0, 2, 60).astype(np.uint8)
        panel = np.stack([col, col, col], axis=1)
        assert kelly_zns(panel) == pytest.approx(1.0)

    def test_single_snp_window_is_nan(self, small_panel):
        assert np.isnan(kelly_zns(small_panel, start=0, stop=1))

    def test_rejects_bad_window(self, small_panel):
        with pytest.raises(ValueError, match="window"):
            kelly_zns(small_panel, start=20, stop=10)
        with pytest.raises(ValueError, match="window"):
            kelly_zns(small_panel, start=0, stop=999)


class TestMeanAbsDPrime:
    def test_in_unit_interval(self, small_panel):
        value = mean_abs_d_prime(small_panel)
        assert 0.0 <= value <= 1.0

    def test_identical_columns_give_one(self, rng):
        col = rng.integers(0, 2, 60).astype(np.uint8)
        panel = np.stack([col, 1 - col], axis=1)
        assert mean_abs_d_prime(panel) == pytest.approx(1.0)

    def test_single_snp_window_is_nan(self, small_panel):
        assert np.isnan(mean_abs_d_prime(small_panel, start=3, stop=4))


class TestWallsB:
    def test_four_gamete_logic(self):
        # Columns engineered so pair (0,1) shows all 4 gametes and pair
        # (1,2) only 2.
        panel = np.array(
            [
                [0, 0, 0],
                [0, 1, 1],
                [1, 0, 0],
                [1, 1, 1],
            ],
            dtype=np.uint8,
        )
        # pair (0,1): 00,01,10,11 all present -> incongruent.
        # pair (1,2): haplotypes 00 and 11 only -> congruent.
        assert walls_b(panel) == pytest.approx(0.5)

    def test_no_recombination_data_scores_one(self, rng):
        """Duplicated SNPs: every adjacent pair has <= 2 haplotypes."""
        col = rng.integers(0, 2, 80).astype(np.uint8)
        panel = np.stack([col] * 5, axis=1)
        assert walls_b(panel) == pytest.approx(1.0)

    def test_matches_brute_force(self, small_panel):
        value = walls_b(small_panel)
        n = small_panel.shape[1]
        congruent = 0
        for i in range(n - 1):
            pairs = {
                (int(a), int(b))
                for a, b in zip(small_panel[:, i], small_panel[:, i + 1])
            }
            if len(pairs) <= 3:
                congruent += 1
        assert value == pytest.approx(congruent / (n - 1))

    def test_single_snp_is_nan(self, small_panel):
        assert np.isnan(walls_b(small_panel, start=0, stop=1))

    def test_sweep_data_scores_higher_than_shuffled(self, rng):
        """Linkage raises B; destroying it per-column lowers B."""
        col = rng.integers(0, 2, 100).astype(np.uint8)
        linked = []
        for _ in range(10):
            noisy = col.copy()
            # ~1 flip per column: adjacent pairs typically show <= 3 of the
            # 4 gametes (the four-gamete test tolerates one-sided flips).
            noisy[rng.random(100) < 0.01] ^= 1
            linked.append(noisy)
        panel = np.stack(linked, axis=1)
        shuffled = panel.copy()
        for c in range(shuffled.shape[1]):
            rng.shuffle(shuffled[:, c])
        assert walls_b(panel) > walls_b(shuffled)
