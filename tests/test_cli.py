"""Tests for the command-line interface (repro.cli)."""

import json

import numpy as np
import pytest

from repro.cli import load_panel, main
from repro.io.msformat import write_ms
from repro.io.vcf import write_vcf


@pytest.fixture
def ms_panel(tmp_path, rng):
    haps = rng.integers(0, 2, size=(40, 60)).astype(np.uint8)
    positions = np.sort(rng.random(60))
    path = tmp_path / "panel.ms"
    write_ms(path, [(haps, positions)])
    return path, haps


class TestLoadPanel:
    def test_loads_ms(self, ms_panel):
        path, haps = ms_panel
        panel, positions = load_panel(path)
        np.testing.assert_array_equal(panel.to_dense(), haps)
        assert positions.size == 60

    def test_loads_vcf(self, tmp_path, rng):
        haps = rng.integers(0, 2, size=(10, 5)).astype(np.uint8)
        path = tmp_path / "panel.vcf"
        write_vcf(path, haps, np.arange(5) + 1)
        panel, positions = load_panel(path)
        np.testing.assert_array_equal(panel.to_dense(), haps)

    def test_loads_fasta(self, tmp_path, rng):
        from repro.io.fasta import write_fasta

        base = rng.choice(list("ACGT"), size=100)
        aln = np.tile(base, (12, 1))
        for col in range(0, 100, 9):
            carriers = rng.random(12) < 0.5
            aln[carriers, col] = "T" if base[col] != "T" else "G"
        path = tmp_path / "aln.fasta"
        write_fasta(path, aln)
        panel, positions = load_panel(path)
        assert panel.n_samples == 12
        assert panel.n_snps == positions.size > 0

    def test_rejects_unknown_format(self, tmp_path):
        path = tmp_path / "panel.xyz"
        path.write_text("")
        with pytest.raises(SystemExit, match="unsupported input"):
            load_panel(path)


class TestSimulateCommand:
    @pytest.mark.parametrize("kind", ["sfs", "coalescent"])
    def test_simulate_to_ms(self, tmp_path, kind, capsys):
        out = tmp_path / "sim.ms"
        code = main([
            "simulate", "--kind", kind, "--samples", "30",
            "--snps", "40", "--seed", "3", "--out", str(out),
        ])
        assert code == 0
        assert out.exists()
        assert "simulate: wrote 30 haplotypes" in capsys.readouterr().out
        panel, _ = load_panel(out)
        assert panel.n_samples == 30

    def test_simulate_to_vcf(self, tmp_path):
        out = tmp_path / "sim.vcf"
        assert main([
            "simulate", "--samples", "20", "--snps", "15",
            "--seed", "1", "--out", str(out),
        ]) == 0
        panel, _ = load_panel(out)
        assert panel.shape == (20, 15)

    def test_simulate_sweep_kind(self, tmp_path):
        out = tmp_path / "sweep.ms"
        assert main([
            "simulate", "--kind", "sweep", "--samples", "30",
            "--snps", "21", "--seed", "2", "--out", str(out),
        ]) == 0
        panel, _ = load_panel(out)
        assert panel.n_samples == 30

    def test_rejects_bad_extension(self, tmp_path):
        with pytest.raises(SystemExit, match="unsupported output"):
            main(["simulate", "--out", str(tmp_path / "x.bin")])


class TestLdCommand:
    def test_full_matrix_npy(self, ms_panel, tmp_path, capsys):
        path, haps = ms_panel
        out = tmp_path / "ld.npy"
        assert main(["ld", str(path), "--out", str(out)]) == 0
        matrix = np.load(out)
        assert matrix.shape == (60, 60)
        from repro.core.ldmatrix import ld_matrix

        np.testing.assert_allclose(
            np.nan_to_num(matrix), np.nan_to_num(ld_matrix(haps))
        )
        assert "full r2 matrix" in capsys.readouterr().out

    def test_banded_tsv(self, ms_panel, tmp_path):
        path, _haps = ms_panel
        out = tmp_path / "band.tsv"
        assert main([
            "ld", str(path), "--window", "5", "--out", str(out),
        ]) == 0
        band = np.loadtxt(out)
        assert band.shape == (60, 6)

    def test_maf_and_monomorphic_filters(self, tmp_path, rng):
        haps = rng.integers(0, 2, size=(40, 20)).astype(np.uint8)
        haps[:, 0] = 0          # monomorphic
        haps[:, 1] = 0
        haps[0, 1] = 1          # singleton (MAF 1/40)
        path = tmp_path / "f.ms"
        write_ms(path, [(haps, np.linspace(0, 1, 20))])
        out = tmp_path / "f.npy"
        assert main([
            "ld", str(path), "--drop-monomorphic", "--maf", "0.1",
            "--out", str(out),
        ]) == 0
        assert np.load(out).shape[0] < 20

    def test_stat_option(self, ms_panel, tmp_path):
        path, haps = ms_panel
        out = tmp_path / "d.npy"
        assert main(["ld", str(path), "--stat", "D", "--out", str(out)]) == 0
        from repro.core.ldmatrix import ld_matrix

        np.testing.assert_allclose(np.load(out), ld_matrix(haps, stat="D"))

    def test_rejects_unknown_output_format(self, ms_panel, tmp_path):
        path, _ = ms_panel
        with pytest.raises(SystemExit, match="unsupported output"):
            main(["ld", str(path), "--out", str(tmp_path / "m.parquet")])

    def test_threads_option(self, ms_panel, tmp_path):
        path, haps = ms_panel
        out = tmp_path / "t.npy"
        assert main([
            "ld", str(path), "--threads", "3", "--out", str(out),
        ]) == 0
        from repro.core.ldmatrix import ld_matrix

        np.testing.assert_allclose(
            np.nan_to_num(np.load(out)), np.nan_to_num(ld_matrix(haps))
        )


class TestLdEngineOption:
    @pytest.mark.parametrize("engine", ["serial", "threads", "processes"])
    def test_engine_matches_in_memory_path(
        self, ms_panel, tmp_path, engine, capsys
    ):
        path, haps = ms_panel
        out = tmp_path / "ld.npy"
        assert main([
            "ld", str(path), "--engine", engine, "--workers", "2",
            "--block-snps", "16", "--out", str(out),
        ]) == 0
        from repro.core.ldmatrix import ld_matrix

        np.testing.assert_array_equal(np.load(out), ld_matrix(haps))
        assert (tmp_path / "ld.npy.manifest").exists()
        assert f"engine={engine}" in capsys.readouterr().out

    def test_resume_skips_journaled_tiles(self, ms_panel, tmp_path, capsys):
        path, haps = ms_panel
        out = tmp_path / "ld.npy"
        args = [
            "ld", str(path), "--engine", "serial", "--block-snps", "16",
            "--out", str(out),
        ]
        assert main(args) == 0
        capsys.readouterr()
        assert main(args + ["--resume"]) == 0
        assert "computed 0/10 tiles (skipped 10 journaled" in capsys.readouterr().out
        from repro.core.ldmatrix import ld_matrix

        np.testing.assert_array_equal(np.load(out), ld_matrix(haps))

    def test_engine_requires_npy_output(self, ms_panel, tmp_path):
        path, _ = ms_panel
        with pytest.raises(SystemExit, match="npy"):
            main([
                "ld", str(path), "--engine", "serial",
                "--out", str(tmp_path / "ld.tsv"),
            ])

    def test_engine_rejects_dprime_and_band_conflicts(
        self, ms_panel, tmp_path
    ):
        path, _ = ms_panel
        out = str(tmp_path / "ld.npy")
        with pytest.raises(SystemExit, match="r2/D/H"):
            main(["ld", str(path), "--engine", "serial", "--stat", "Dprime",
                  "--out", out])
        # --window now runs banded through the engine; what is rejected
        # is combining the two band flavours in one run.
        with pytest.raises(SystemExit, match="not both"):
            main(["ld", str(path), "--engine", "serial", "--window", "5",
                  "--window-kb", "2.5", "--out", out])

    def test_engine_rejects_threads_option(self, ms_panel, tmp_path):
        """Regression: --threads used to be silently ignored with --engine."""
        path, _ = ms_panel
        with pytest.raises(SystemExit, match="use --workers, not --threads"):
            main([
                "ld", str(path), "--engine", "serial", "--threads", "3",
                "--out", str(tmp_path / "ld.npy"),
            ])

    @pytest.mark.parametrize(
        "flag", [["--progress"], ["--metrics-out", "m.json"],
                 ["--trace-out", "t.jsonl"], ["--profile-out", "p.json"]],
        ids=["progress", "metrics-out", "trace-out", "profile-out"],
    )
    def test_instrumentation_flags_require_engine(
        self, ms_panel, tmp_path, flag
    ):
        path, _ = ms_panel
        if len(flag) == 2:
            flag = [flag[0], str(tmp_path / flag[1])]
        with pytest.raises(SystemExit, match="add --engine"):
            main(["ld", str(path), "--out", str(tmp_path / "ld.npy"), *flag])

    def test_metrics_out_agrees_with_engine_report(
        self, ms_panel, tmp_path, capsys
    ):
        import json

        path, haps = ms_panel
        out = tmp_path / "ld.npy"
        metrics = tmp_path / "m.json"
        trace = tmp_path / "trace.jsonl"
        assert main([
            "ld", str(path), "--engine", "processes", "--workers", "2",
            "--block-snps", "16", "--out", str(out), "--progress",
            "--metrics-out", str(metrics), "--trace-out", str(trace),
        ]) == 0
        payload = json.loads(metrics.read_text())
        assert payload["schema"] == "repro-ld-metrics/1"
        assert payload["engine"] == "processes"
        assert payload["n_snps"] == haps.shape[1]
        n_tiles = 10  # 60 SNPs in 16-SNP blocks -> 4 block rows
        assert payload["n_tiles"] == payload["n_computed"] == n_tiles
        assert payload["n_skipped"] == payload["n_retries"] == 0
        from repro.core.engine import enumerate_tiles

        expected_pairs = sum(t.n_pairs for t in enumerate_tiles(60, 16))
        assert payload["pairs_computed"] == expected_pairs
        assert payload["pairs_per_second"] > 0
        # Counters inside the same payload must agree with the top level.
        assert payload["counters"]["engine.tiles_computed"] == n_tiles
        assert payload["timers"]["engine.tile_compute_seconds"]["count"] == n_tiles
        # Complete single-shot run -> measured-vs-modeled section present.
        assert payload["model"]["m"] == haps.shape[1]
        assert payload["model"]["measured_percent_of_peak"] > 0
        # The JSONL trace brackets the run and carries one line per tile.
        kinds = [
            json.loads(line)["kind"]
            for line in trace.read_text().splitlines()
        ]
        assert kinds[0] == "run_start" and kinds[-1] == "run_end"
        assert kinds.count("tile_computed") == n_tiles

    def test_metrics_out_on_resume_counts_skips_and_omits_model(
        self, ms_panel, tmp_path, capsys
    ):
        import json

        path, _ = ms_panel
        out = tmp_path / "ld.npy"
        args = [
            "ld", str(path), "--engine", "serial", "--block-snps", "16",
            "--out", str(out),
        ]
        assert main(args) == 0
        metrics = tmp_path / "resumed.json"
        assert main(args + ["--resume", "--metrics-out", str(metrics)]) == 0
        payload = json.loads(metrics.read_text())
        assert payload["n_computed"] == 0
        assert payload["n_skipped"] == payload["n_tiles"] == 10
        assert payload["counters"]["engine.tiles_skipped"] == 10
        # The wall-clock covered none of the tiles, so a %-of-peak claim
        # would be meaningless; the section must be absent, not wrong.
        assert "model" not in payload

    def test_custom_manifest_path(self, ms_panel, tmp_path):
        path, _ = ms_panel
        out = tmp_path / "ld.npy"
        manifest = tmp_path / "journal.jsonl"
        assert main([
            "ld", str(path), "--engine", "serial", "--block-snps", "16",
            "--manifest", str(manifest), "--out", str(out),
        ]) == 0
        assert manifest.exists()
        assert not (tmp_path / "ld.npy.manifest").exists()


class TestLdFaultToleranceFlags:
    @pytest.mark.parametrize(
        "flag", [
            ["--fault-plan", "plan.json"],
            ["--tile-timeout", "5"],
            ["--max-retries", "3"],
            ["--allow-quarantine"],
        ],
    )
    def test_fault_flags_require_engine(self, ms_panel, tmp_path, flag):
        path, _ = ms_panel
        with pytest.raises(SystemExit, match="add --engine"):
            main(["ld", str(path), "--out", str(tmp_path / "ld.npy"), *flag])

    def test_fault_plan_within_budget_exits_zero(
        self, ms_panel, tmp_path, capsys
    ):
        path, haps = ms_panel
        plan = tmp_path / "plan.json"
        plan.write_text(json.dumps({
            "seed": 7,
            "specs": [{"site": "tile_compute", "action": "raise",
                       "tile": [16, 0], "attempts_below": 2}],
        }))
        out = tmp_path / "ld.npy"
        assert main([
            "ld", str(path), "--engine", "serial", "--block-snps", "16",
            "--fault-plan", str(plan), "--max-retries", "2",
            "--out", str(out),
        ]) == 0
        assert "2 retries" in capsys.readouterr().out
        from repro.core.ldmatrix import ld_matrix

        np.testing.assert_array_equal(np.load(out), ld_matrix(haps))

    def test_quarantine_surfaces_exit_code_three(
        self, ms_panel, tmp_path, capsys
    ):
        path, _ = ms_panel
        plan = tmp_path / "plan.json"
        plan.write_text(json.dumps({
            "specs": [{"site": "tile_deliver", "action": "bitflip",
                       "tile": [16, 0]}],
        }))
        assert main([
            "ld", str(path), "--engine", "serial", "--block-snps", "16",
            "--fault-plan", str(plan), "--max-retries", "1",
            "--allow-quarantine", "--out", str(tmp_path / "ld.npy"),
        ]) == 3
        err = capsys.readouterr().err
        assert "quarantined" in err and "(16, 0)" in err

    def test_missing_and_invalid_fault_plan_files(self, ms_panel, tmp_path):
        path, _ = ms_panel
        base = [
            "ld", str(path), "--engine", "serial",
            "--out", str(tmp_path / "ld.npy"),
        ]
        with pytest.raises(SystemExit, match="not found"):
            main(base + ["--fault-plan", str(tmp_path / "absent.json")])
        bad = tmp_path / "bad.json"
        bad.write_text('{"specs": [{"site": "warp_core"}]}')
        with pytest.raises(SystemExit, match="invalid fault plan"):
            main(base + ["--fault-plan", str(bad)])

    def test_tile_timeout_flag_passes_through(self, ms_panel, tmp_path):
        path, haps = ms_panel
        out = tmp_path / "ld.npy"
        assert main([
            "ld", str(path), "--engine", "serial", "--block-snps", "16",
            "--tile-timeout", "60", "--out", str(out),
        ]) == 0
        from repro.core.ldmatrix import ld_matrix

        np.testing.assert_array_equal(np.load(out), ld_matrix(haps))


class TestAnalysisCommands:
    def test_scan(self, ms_panel, tmp_path, capsys):
        path, _ = ms_panel
        out = tmp_path / "scan.tsv"
        assert main([
            "scan", str(path), "--grid-size", "5", "--max-window", "20",
            "--out", str(out),
        ]) == 0
        table = np.loadtxt(out, skiprows=1)
        assert table.shape == (5, 3)
        assert "peak omega" in capsys.readouterr().out

    def test_prune(self, ms_panel, tmp_path):
        path, _ = ms_panel
        out = tmp_path / "kept.txt"
        assert main([
            "prune", str(path), "--window", "10", "--step", "2",
            "--r2-threshold", "0.5", "--out", str(out),
        ]) == 0
        kept = np.loadtxt(out, dtype=int, ndmin=1)
        assert kept.size >= 1

    def test_blocks(self, tmp_path, rng):
        # Build a panel with one obvious block.
        base = rng.integers(0, 2, 200).astype(np.uint8)
        cols = [base.copy() for _ in range(5)]
        cols += [rng.integers(0, 2, 200).astype(np.uint8) for _ in range(5)]
        haps = np.stack(cols, axis=1)
        path = tmp_path / "b.ms"
        write_ms(path, [(haps, np.linspace(0, 1, 10))])
        out = tmp_path / "blocks.tsv"
        assert main(["blocks", str(path), "--out", str(out)]) == 0
        table = np.loadtxt(out, skiprows=1, ndmin=2)
        assert table.shape[0] >= 1

    def test_decay(self, ms_panel, tmp_path):
        path, _ = ms_panel
        out = tmp_path / "decay.tsv"
        assert main(["decay", str(path), "--bins", "6", "--out", str(out)]) == 0
        table = np.loadtxt(out, skiprows=1)
        assert table.shape == (6, 3)

    def test_model_report(self, capsys):
        assert main(["model", "--snps", "512", "--samples", "2048"]) == 0
        out = capsys.readouterr().out
        assert "% of the 3-ops/cycle" in out
        assert "GPU roofline" in out
        assert "avx512" in out


class TestProfileAndReportCommands:
    def test_ld_profile_out_writes_schema_tagged_payload(
        self, ms_panel, tmp_path
    ):
        path, haps = ms_panel
        profile = tmp_path / "profile.json"
        assert main([
            "ld", str(path), "--engine", "serial", "--block-snps", "16",
            "--out", str(tmp_path / "ld.npy"),
            "--profile-out", str(profile),
        ]) == 0
        payload = json.loads(profile.read_text())
        assert payload["schema"] == "repro-profile/1"
        assert payload["workload"]["n_snps"] == haps.shape[1]
        # Acceptance bar: kernel and driver phases are both attributed,
        # and every phase row is classified against the model.
        assert {"pack_a", "pack_b", "plane_matmul", "mirror",
                "driver.deliver"} <= set(payload["phases"])
        roofline = {row["name"]: row for row in payload["roofline"]}
        for name in ("pack_a", "pack_b", "plane_matmul", "mirror"):
            assert roofline[name]["kind"] in ("compute", "memory")
            assert roofline[name]["modeled_seconds"] > 0

    def test_profile_command_simulates_and_profiles(self, tmp_path, capsys):
        out = tmp_path / "profile.json"
        assert main([
            "profile", "--snps", "96", "--samples", "40", "--seed", "3",
            "--block-snps", "16", "--engine", "threads", "--workers", "2",
            "--out", str(out),
        ]) == 0
        text = capsys.readouterr().out
        assert "profile:" in text and "engine=threads" in text
        payload = json.loads(out.read_text())
        assert payload["schema"] == "repro-profile/1"
        assert payload["workload"]["stat"] == "r2"
        assert {"driver.dispatch", "driver.wait"} <= set(payload["phases"])
        assert payload["timeline"]["workers"]

    def test_profile_command_reads_existing_panel(
        self, ms_panel, tmp_path, capsys
    ):
        path, haps = ms_panel
        out = tmp_path / "profile.json"
        matrix = tmp_path / "ld.npy"
        assert main([
            "profile", "--input", str(path), "--block-snps", "16",
            "--engine", "serial", "--matrix-out", str(matrix),
            "--out", str(out),
        ]) == 0
        payload = json.loads(out.read_text())
        assert payload["workload"]["n_snps"] == haps.shape[1]
        assert np.load(matrix).shape == (haps.shape[1], haps.shape[1])

    def test_report_renders_profile_metrics_and_trace(
        self, ms_panel, tmp_path, capsys
    ):
        path, _ = ms_panel
        metrics = tmp_path / "metrics.json"
        trace = tmp_path / "trace.jsonl"
        profile = tmp_path / "profile.json"
        assert main([
            "ld", str(path), "--engine", "serial", "--block-snps", "16",
            "--out", str(tmp_path / "ld.npy"),
            "--metrics-out", str(metrics), "--trace-out", str(trace),
            "--profile-out", str(profile),
        ]) == 0
        capsys.readouterr()
        assert main([
            "report", str(profile), str(metrics), str(trace),
        ]) == 0
        text = capsys.readouterr().out
        # Multi-file mode labels each rendering with its source path.
        assert text.count("==>") == 3
        assert "repro-profile/1" in text
        assert "repro-ld-metrics/1" in text
        assert "repro-trace/1" in text

    def test_report_rejects_unreadable_file(self, tmp_path, capsys):
        bad = tmp_path / "bad.txt"
        bad.write_text("not json\n")
        assert main(["report", str(bad)]) == 1
        assert "bad.txt" in capsys.readouterr().err


class TestLiveCli:
    """The --live flag, `repro top`, and `repro export`."""

    def _run_live(self, ms_panel, tmp_path, extra=()):
        path, _ = ms_panel
        live = tmp_path / "live.json"
        assert main([
            "ld", str(path), "--engine", "serial", "--block-snps", "16",
            "--out", str(tmp_path / "ld.npy"), "--live", str(live), *extra,
        ]) == 0
        return live

    def test_live_flag_requires_engine(self, ms_panel, tmp_path):
        path, _ = ms_panel
        with pytest.raises(SystemExit, match="add --engine"):
            main(["ld", str(path), "--out", str(tmp_path / "ld.npy"),
                  "--live", str(tmp_path / "live.json")])

    def test_live_run_publishes_final_snapshot(self, ms_panel, tmp_path):
        live = self._run_live(ms_panel, tmp_path)
        snapshot = json.loads(live.read_text())
        assert snapshot["schema"] == "repro-live/1"
        assert snapshot["phase"] == "done"
        assert snapshot["tiles"]["done"] == snapshot["tiles"]["total"] > 0
        assert snapshot["config"]["engine"] == "serial"
        assert snapshot["config"]["n_snps"] == 60

    def test_repro_live_env_activates_without_flag(
        self, ms_panel, tmp_path, monkeypatch
    ):
        path, _ = ms_panel
        live = tmp_path / "env-live.json"
        monkeypatch.setenv("REPRO_LIVE", str(live))
        assert main([
            "ld", str(path), "--engine", "serial", "--block-snps", "16",
            "--out", str(tmp_path / "ld.npy"),
        ]) == 0
        assert json.loads(live.read_text())["phase"] == "done"

    def test_top_renders_snapshot(self, ms_panel, tmp_path, capsys):
        live = self._run_live(ms_panel, tmp_path)
        capsys.readouterr()
        assert main(["top", str(live)]) == 0
        out = capsys.readouterr().out
        assert "engine=serial" in out and "tiles" in out

    def test_top_missing_snapshot_is_exit_1(self, tmp_path, capsys):
        assert main(["top", str(tmp_path / "absent.json")]) == 1
        assert "no snapshot" in capsys.readouterr().err

    def test_top_requires_a_path(self, monkeypatch):
        monkeypatch.delenv("REPRO_LIVE", raising=False)
        with pytest.raises(SystemExit, match="REPRO_LIVE"):
            main(["top"])

    def test_export_prometheus_one_shot(self, ms_panel, tmp_path, capsys):
        live = self._run_live(ms_panel, tmp_path)
        capsys.readouterr()
        assert main(["export", str(live), "--prometheus"]) == 0
        out = capsys.readouterr().out
        assert "# TYPE repro_tiles_done gauge" in out
        assert "repro_pairs_per_second{" in out

    def test_export_requires_format_flag(self, tmp_path):
        with pytest.raises(SystemExit, match="--prometheus"):
            main(["export", str(tmp_path / "live.json")])

    def test_report_renders_live_snapshot(self, ms_panel, tmp_path, capsys):
        live = self._run_live(ms_panel, tmp_path)
        capsys.readouterr()
        assert main(["report", str(live)]) == 0
        assert "engine=serial" in capsys.readouterr().out


class TestReportExitCodes:
    def test_unknown_schema_is_exit_2_with_one_line(self, tmp_path, capsys):
        bogus = tmp_path / "bogus.json"
        bogus.write_text('{"schema": "repro-mystery/7"}\n')
        assert main(["report", str(bogus)]) == 2
        err = capsys.readouterr().err
        assert err.count("\n") == 1
        assert "repro-mystery/7" in err
        assert "repro-trace/1" in err  # names the supported tags

    def test_torn_final_trace_line_tolerated(self, tmp_path, capsys):
        trace = tmp_path / "trace.jsonl"
        trace.write_text(
            '{"schema":"repro-trace/1","seq":0,"kind":"run_start","ts":0.0}\n'
            '{"schema":"repro-trace/1","seq":1,"kind":"tile_comp'
        )
        assert main(["report", str(trace)]) == 0
        out = capsys.readouterr().out
        assert "1 events" in out
        assert "torn final line" in out

    def test_interior_trace_corruption_still_fails(self, tmp_path, capsys):
        trace = tmp_path / "trace.jsonl"
        trace.write_text(
            'garbage here\n'
            '{"schema":"repro-trace/1","seq":0,"kind":"run_start","ts":0.0}\n'
        )
        assert main(["report", str(trace)]) == 1
        assert "line 1" in capsys.readouterr().err
