"""Tests for the I/O substrate (repro.io: ms, VCF, PLINK bed)."""

import numpy as np
import pytest
from hypothesis import HealthCheck, given, settings
from hypothesis import strategies as st
from hypothesis.extra import numpy as hnp

from repro.encoding.genotypes import GenotypeMatrix
from repro.io.msformat import MsReplicate, read_ms, write_ms
from repro.io.plinkbed import read_plink_bed, write_plink_bed
from repro.io.vcf import read_vcf, write_vcf


class TestMsFormat:
    def test_roundtrip(self, tmp_path, rng):
        haps = rng.integers(0, 2, size=(12, 9)).astype(np.uint8)
        pos = np.sort(rng.random(9))
        path = tmp_path / "out.ms"
        write_ms(path, [(haps, pos)])
        reps = read_ms(path)
        assert len(reps) == 1
        np.testing.assert_array_equal(reps[0].haplotypes, haps)
        np.testing.assert_allclose(reps[0].positions, pos, atol=1e-6)

    def test_multiple_replicates_with_empty(self, tmp_path, rng):
        haps = rng.integers(0, 2, size=(5, 3)).astype(np.uint8)
        pos = np.array([0.1, 0.5, 0.9])
        path = tmp_path / "multi.ms"
        write_ms(
            path,
            [
                MsReplicate(haplotypes=haps, positions=pos),
                MsReplicate(
                    haplotypes=np.zeros((0, 0), dtype=np.uint8),
                    positions=np.empty(0),
                ),
            ],
        )
        reps = read_ms(path)
        assert len(reps) == 2
        assert reps[1].segsites == 0

    def test_custom_command_line(self, tmp_path, rng):
        haps = rng.integers(0, 2, size=(4, 2)).astype(np.uint8)
        path = tmp_path / "cmd.ms"
        write_ms(path, [(haps, np.array([0.2, 0.8]))], command="ms 4 1 -t 5.0")
        assert path.read_text().startswith("ms 4 1 -t 5.0\n")

    def test_seed_line(self, tmp_path, rng):
        haps = rng.integers(0, 2, size=(4, 2)).astype(np.uint8)
        path = tmp_path / "seed.ms"
        write_ms(path, [(haps, np.array([0.2, 0.8]))], seeds=(11, 22, 33))
        assert path.read_text().splitlines()[1] == "11 22 33"

    def test_write_rejects_empty(self, tmp_path):
        with pytest.raises(ValueError, match="at least one"):
            write_ms(tmp_path / "x.ms", [])

    def test_write_rejects_position_mismatch(self, tmp_path, rng):
        haps = rng.integers(0, 2, size=(4, 3)).astype(np.uint8)
        with pytest.raises(ValueError, match="positions"):
            write_ms(tmp_path / "x.ms", [(haps, np.array([0.5]))])

    def test_write_rejects_mixed_sample_counts(self, tmp_path, rng):
        a = rng.integers(0, 2, size=(4, 2)).astype(np.uint8)
        b = rng.integers(0, 2, size=(5, 2)).astype(np.uint8)
        pos = np.array([0.1, 0.2])
        with pytest.raises(ValueError, match="same sample count"):
            write_ms(tmp_path / "x.ms", [(a, pos), (b, pos)])

    @pytest.mark.parametrize(
        "body,match",
        [
            ("header\n1 2 3\n", "no '//'"),
            ("h\n\n//\nnonsense\n", "segsites"),
            ("h\n\n//\nsegsites: 2\nnope\n", "positions"),
            ("h\n\n//\nsegsites: 2\npositions: 0.1 0.2\n01\n2X\n", "non-binary"),
            ("h\n\n//\nsegsites: 2\npositions: 0.1 0.2\n011\n", "expected 2"),
            ("h\n\n//\nsegsites: 1\npositions: 0.1 0.2\n", "positions count"),
            ("h\n\n//\nsegsites: 2\npositions: 0.1 0.2\n", "no haplotypes"),
        ],
    )
    def test_reader_rejects_malformed(self, tmp_path, body, match):
        path = tmp_path / "bad.ms"
        path.write_text(body)
        with pytest.raises(ValueError, match=match):
            read_ms(path)


class TestVcf:
    @pytest.mark.parametrize("ploidy", [1, 2])
    def test_roundtrip(self, tmp_path, rng, ploidy):
        n_haps = 12
        haps = rng.integers(0, 2, size=(n_haps, 7)).astype(np.uint8)
        path = tmp_path / "out.vcf"
        write_vcf(path, haps, np.arange(7) * 50 + 1, ploidy=ploidy)
        panel = read_vcf(path)
        assert panel.ploidy == ploidy
        np.testing.assert_array_equal(panel.haplotypes, haps)
        assert np.all(panel.valid)
        np.testing.assert_array_equal(panel.positions, np.arange(7) * 50 + 1)

    def test_missing_data_roundtrip(self, tmp_path, rng):
        haps = rng.integers(0, 2, size=(8, 5)).astype(np.uint8)
        missing = rng.random((8, 5)) < 0.2
        haps[missing] = 0
        path = tmp_path / "m.vcf"
        write_vcf(path, haps, np.arange(5) + 1, missing=missing)
        panel = read_vcf(path)
        np.testing.assert_array_equal(panel.valid, ~missing)
        np.testing.assert_array_equal(panel.haplotypes, haps)

    def test_gzip_roundtrip(self, tmp_path, rng):
        haps = rng.integers(0, 2, size=(10, 6)).astype(np.uint8)
        path = tmp_path / "panel.vcf.gz"
        write_vcf(path, haps, np.arange(6) + 1)
        # The payload really is gzip (magic bytes), and round-trips.
        assert path.read_bytes()[:2] == b"\x1f\x8b"
        panel = read_vcf(path)
        np.testing.assert_array_equal(panel.haplotypes, haps)

    def test_to_bitmatrix_and_mask(self, tmp_path, rng):
        haps = rng.integers(0, 2, size=(6, 4)).astype(np.uint8)
        path = tmp_path / "bm.vcf"
        write_vcf(path, haps, np.arange(4) + 1)
        panel = read_vcf(path)
        np.testing.assert_array_equal(panel.to_bitmatrix().to_dense(), haps)
        assert panel.to_mask().valid_counts().sum() == haps.size

    def test_write_rejects_odd_diploid(self, tmp_path, rng):
        haps = rng.integers(0, 2, size=(5, 3)).astype(np.uint8)
        with pytest.raises(ValueError, match="even number"):
            write_vcf(tmp_path / "x.vcf", haps, np.arange(3) + 1, ploidy=2)

    @pytest.mark.parametrize(
        "record,match",
        [
            ("1\t5\ts\tA\tT,G\t.\tPASS\t.\tGT\t0|0", "multi-allelic"),
            ("1\t5\ts\tAC\tT\t.\tPASS\t.\tGT\t0|0", "SNP records"),
            ("1\t5\ts\tA\tT\t.\tPASS\t.\tDP:GT\t3:0|0", "must be GT"),
            ("1\t5\ts\tA\tT\t.\tPASS\t.\tGT\t0/1", "unphased"),
            ("1\t5\ts\tA\tT\t.\tPASS\t.\tGT\t0|2", "unexpected allele"),
        ],
    )
    def test_reader_rejects_malformed_records(self, tmp_path, record, match):
        path = tmp_path / "bad.vcf"
        path.write_text(
            "##fileformat=VCFv4.2\n"
            "#CHROM\tPOS\tID\tREF\tALT\tQUAL\tFILTER\tINFO\tFORMAT\tsample0\n"
            + record + "\n"
        )
        with pytest.raises(ValueError, match=match):
            read_vcf(path)

    def test_reader_rejects_no_records(self, tmp_path):
        path = tmp_path / "empty.vcf"
        path.write_text(
            "##fileformat=VCFv4.2\n"
            "#CHROM\tPOS\tID\tREF\tALT\tQUAL\tFILTER\tINFO\tFORMAT\ts0\n"
        )
        with pytest.raises(ValueError, match="no variant records"):
            read_vcf(path)

    def test_reader_rejects_data_before_header(self, tmp_path):
        path = tmp_path / "oops.vcf"
        path.write_text("1\t5\ts\tA\tT\t.\tPASS\t.\tGT\t0|0\n")
        with pytest.raises(ValueError, match="before #CHROM"):
            read_vcf(path)


class TestPlinkBed:
    @given(
        genos=hnp.arrays(
            dtype=np.int8,
            shape=st.tuples(
                st.integers(min_value=1, max_value=40),
                st.integers(min_value=1, max_value=8),
            ),
            elements=st.sampled_from([0, 1, 2, -1]),
        )
    )
    @settings(
        max_examples=20,
        deadline=None,
        suppress_health_check=[HealthCheck.function_scoped_fixture],
    )
    def test_roundtrip(self, tmp_path, genos):
        gm = GenotypeMatrix.from_dense(genos)
        prefix = tmp_path / "panel"
        write_plink_bed(prefix, gm)
        ds = read_plink_bed(prefix)
        np.testing.assert_array_equal(ds.genotypes.to_dense(), genos)

    def test_metadata_roundtrip(self, tmp_path, rng):
        genos = rng.integers(0, 3, size=(10, 4)).astype(np.int8)
        gm = GenotypeMatrix.from_dense(genos)
        prefix = tmp_path / "meta"
        write_plink_bed(
            prefix,
            gm,
            positions=np.array([10, 20, 30, 40]),
            variant_ids=["rs1", "rs2", "rs3", "rs4"],
            sample_ids=[f"s{i}" for i in range(10)],
        )
        ds = read_plink_bed(prefix)
        assert ds.variant_ids == ["rs1", "rs2", "rs3", "rs4"]
        np.testing.assert_array_equal(ds.positions, [10, 20, 30, 40])
        assert ds.sample_ids == [f"s{i}" for i in range(10)]

    def test_magic_bytes(self, tmp_path, rng):
        genos = rng.integers(0, 3, size=(6, 2)).astype(np.int8)
        prefix = tmp_path / "magic"
        write_plink_bed(prefix, GenotypeMatrix.from_dense(genos))
        raw = (prefix.with_suffix(".bed")).read_bytes()
        assert raw[:3] == bytes([0x6C, 0x1B, 0x01])
        assert len(raw) == 3 + 2 * ((6 + 3) // 4)

    def test_reader_rejects_bad_magic(self, tmp_path, rng):
        genos = rng.integers(0, 3, size=(6, 2)).astype(np.int8)
        prefix = tmp_path / "bad"
        write_plink_bed(prefix, GenotypeMatrix.from_dense(genos))
        bed = prefix.with_suffix(".bed")
        bed.write_bytes(b"\x00\x00\x00" + bed.read_bytes()[3:])
        with pytest.raises(ValueError, match="magic"):
            read_plink_bed(prefix)

    def test_reader_rejects_truncated_bed(self, tmp_path, rng):
        genos = rng.integers(0, 3, size=(20, 3)).astype(np.int8)
        prefix = tmp_path / "trunc"
        write_plink_bed(prefix, GenotypeMatrix.from_dense(genos))
        bed = prefix.with_suffix(".bed")
        bed.write_bytes(bed.read_bytes()[:-1])
        with pytest.raises(ValueError, match="size"):
            read_plink_bed(prefix)

    def test_write_rejects_metadata_mismatch(self, tmp_path, rng):
        genos = rng.integers(0, 3, size=(6, 2)).astype(np.int8)
        gm = GenotypeMatrix.from_dense(genos)
        with pytest.raises(ValueError, match="positions"):
            write_plink_bed(tmp_path / "x", gm, positions=np.array([1]))
        with pytest.raises(ValueError, match="metadata"):
            write_plink_bed(tmp_path / "x", gm, variant_ids=["one"])

    def test_plink_baseline_runs_on_read_data(self, tmp_path, rng):
        """End-to-end: write bed, read it, run the PLINK-style kernel."""
        from repro.baselines.plink import plink_r2_matrix

        genos = rng.integers(0, 3, size=(40, 6)).astype(np.int8)
        prefix = tmp_path / "e2e"
        write_plink_bed(prefix, GenotypeMatrix.from_dense(genos))
        ds = read_plink_bed(prefix)
        r2 = plink_r2_matrix(ds.genotypes)
        ref = np.corrcoef(genos.astype(float).T) ** 2
        defined = ~np.isnan(r2)
        np.testing.assert_allclose(r2[defined], ref[defined], atol=1e-10)


class TestVcfMalformedInput:
    """Hardening: malformed VCFs fail with messages naming what was found."""

    HEADER = (
        "##fileformat=VCFv4.2\n"
        "#CHROM\tPOS\tID\tREF\tALT\tQUAL\tFILTER\tINFO\tFORMAT\tsample0\n"
    )

    def test_truncated_gzip_names_the_file(self, tmp_path, rng):
        haps = rng.integers(0, 2, size=(4, 3)).astype(np.uint8)
        path = tmp_path / "cut.vcf.gz"
        write_vcf(path, haps, np.arange(3) + 1)
        path.write_bytes(path.read_bytes()[:-5])  # interrupted download
        with pytest.raises(ValueError, match="truncated"):
            read_vcf(path)

    def test_non_gzip_bytes_behind_gz_suffix(self, tmp_path):
        path = tmp_path / "fake.vcf.gz"
        path.write_text("this is not gzip")
        with pytest.raises(ValueError, match="not valid gzip"):
            read_vcf(path)

    def test_error_names_offending_alleles(self, tmp_path):
        path = tmp_path / "indel.vcf"
        path.write_text(self.HEADER + "1\t5\ts\tAC\tT\t.\tPASS\t.\tGT\t0|0\n")
        with pytest.raises(ValueError, match=r"REF='AC' ALT='T'"):
            read_vcf(path)
        path.write_text(self.HEADER + "1\t5\ts\tA\tT,G\t.\tPASS\t.\tGT\t0|0\n")
        with pytest.raises(ValueError, match=r"ALT='T,G'"):
            read_vcf(path)

    def test_ragged_record_names_column_counts(self, tmp_path):
        path = tmp_path / "ragged.vcf"
        path.write_text(self.HEADER + "1\t5\ts\tA\tT\t.\tPASS\t.\tGT\n")
        with pytest.raises(ValueError, match="expected 10 columns, got 9"):
            read_vcf(path)

    def test_non_integer_pos(self, tmp_path):
        path = tmp_path / "pos.vcf"
        path.write_text(self.HEADER + "1\tfive\ts\tA\tT\t.\tPASS\t.\tGT\t0|0\n")
        with pytest.raises(ValueError, match="POS must be an integer"):
            read_vcf(path)


class TestPlinkMalformedInput:
    """Hardening: malformed PLINK filesets fail with actionable messages."""

    def _write_set(self, tmp_path, rng, name="ds"):
        genos = rng.integers(0, 3, size=(9, 4)).astype(np.int8)
        prefix = tmp_path / name
        write_plink_bed(prefix, GenotypeMatrix.from_dense(genos))
        return prefix

    def test_missing_member_file_is_named(self, tmp_path, rng):
        prefix = self._write_set(tmp_path, rng)
        prefix.with_suffix(".fam").unlink()
        with pytest.raises(FileNotFoundError, match=r"\.fam"):
            read_plink_bed(prefix)

    def test_bed_shorter_than_magic(self, tmp_path, rng):
        prefix = self._write_set(tmp_path, rng)
        prefix.with_suffix(".bed").write_bytes(b"\x6c")
        with pytest.raises(ValueError, match="only 1 bytes"):
            read_plink_bed(prefix)

    def test_sample_major_bed_gets_specific_message(self, tmp_path, rng):
        prefix = self._write_set(tmp_path, rng)
        bed = prefix.with_suffix(".bed")
        bed.write_bytes(b"\x6c\x1b\x00" + bed.read_bytes()[3:])
        with pytest.raises(ValueError, match="sample-major"):
            read_plink_bed(prefix)

    def test_truncation_message_reports_both_sizes(self, tmp_path, rng):
        prefix = self._write_set(tmp_path, rng)
        bed = prefix.with_suffix(".bed")
        bed.write_bytes(bed.read_bytes()[:-2])
        with pytest.raises(ValueError, match="truncated.*imply"):
            read_plink_bed(prefix)

    def test_bad_bim_position_names_line_and_value(self, tmp_path, rng):
        prefix = self._write_set(tmp_path, rng)
        bim = prefix.with_suffix(".bim")
        lines = bim.read_text().splitlines()
        lines[2] = lines[2].replace("\t3\t", "\tthree\t")
        bim.write_text("\n".join(lines) + "\n")
        with pytest.raises(ValueError, match=r"bim:3.*'three'"):
            read_plink_bed(prefix)

    def test_short_fam_line_is_rejected(self, tmp_path, rng):
        prefix = self._write_set(tmp_path, rng)
        fam = prefix.with_suffix(".fam")
        lines = fam.read_text().splitlines()
        lines[1] = "lonely"
        fam.write_text("\n".join(lines) + "\n")
        with pytest.raises(ValueError, match="fam:2"):
            read_plink_bed(prefix)
