"""Tests for the LD statistics (repro.core.stats)."""

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.core.stats import (
    d_matrix,
    d_prime_matrix,
    ld_chi2_matrix,
    ld_coefficient,
    r_squared,
    r_squared_adjusted,
    r_squared_matrix,
)
from tests.conftest import assert_allclose_nan, reference_ld


def ld_inputs(dense):
    g = dense.astype(np.float64)
    n = g.shape[0]
    h = (g.T @ g) / n
    p = g.mean(axis=0)
    return h, p


class TestScalarForms:
    def test_ld_coefficient_definition(self):
        assert ld_coefficient(0.5, 0.5, 0.5) == pytest.approx(0.25)
        assert ld_coefficient(0.25, 0.5, 0.5) == pytest.approx(0.0)

    def test_r_squared_perfect_ld(self):
        # P(AB)=P(A)=P(B)=0.5: D=0.25, denom=(0.25)^2 => r2=1.
        assert r_squared(0.5, 0.5, 0.5) == pytest.approx(1.0)

    def test_r_squared_equilibrium(self):
        assert r_squared(0.25, 0.5, 0.5) == pytest.approx(0.0)

    def test_r_squared_monomorphic_is_nan(self):
        assert np.isnan(r_squared(0.0, 0.0, 0.5))
        assert np.isnan(r_squared(1.0, 1.0, 1.0))

    @given(
        p=st.floats(min_value=0.05, max_value=0.95),
        q=st.floats(min_value=0.05, max_value=0.95),
        lam=st.floats(min_value=0.0, max_value=1.0),
    )
    def test_r_squared_bounded(self, p, q, lam):
        """r2 in [0, 1] for any feasible haplotype frequency."""
        lo = max(0.0, p + q - 1.0)
        hi = min(p, q)
        p_ab = lo + lam * (hi - lo)
        value = r_squared(p_ab, p, q)
        assert -1e-9 <= value <= 1.0 + 1e-9


class TestDMatrix:
    def test_matches_reference(self, small_panel):
        h, p = ld_inputs(small_panel)
        expected = reference_ld(small_panel)["d"]
        np.testing.assert_allclose(d_matrix(h, p), expected)

    def test_cross_frequencies(self, rng):
        a = rng.integers(0, 2, size=(50, 4)).astype(float)
        b = rng.integers(0, 2, size=(50, 6)).astype(float)
        h = (a.T @ b) / 50
        d = d_matrix(h, a.mean(0), b.mean(0))
        assert d.shape == (4, 6)
        np.testing.assert_allclose(d, h - np.outer(a.mean(0), b.mean(0)))

    def test_diagonal_is_p_times_one_minus_p(self, small_panel):
        h, p = ld_inputs(small_panel)
        np.testing.assert_allclose(np.diag(d_matrix(h, p)), p * (1 - p))

    def test_validation_errors(self):
        with pytest.raises(ValueError, match="2-D"):
            d_matrix(np.zeros(3), np.zeros(3))
        with pytest.raises(ValueError, match="does not match"):
            d_matrix(np.zeros((2, 2)), np.zeros(3))
        with pytest.raises(ValueError, match="1-D"):
            d_matrix(np.zeros((2, 2)), np.zeros((2, 1)))
        with pytest.raises(ValueError, match=r"\[0, 1\]"):
            d_matrix(np.zeros((1, 1)), np.array([1.5]))


class TestRSquaredMatrix:
    def test_matches_reference(self, small_panel):
        h, p = ld_inputs(small_panel)
        assert_allclose_nan(
            r_squared_matrix(h, p), reference_ld(small_panel)["r2"]
        )

    def test_diagonal_of_polymorphic_is_one(self, small_panel):
        h, p = ld_inputs(small_panel)
        r2 = r_squared_matrix(h, p)
        poly = (p > 0) & (p < 1)
        np.testing.assert_allclose(np.diag(r2)[poly], 1.0)

    def test_undefined_fill(self):
        dense = np.ones((10, 2), dtype=np.uint8)  # both monomorphic
        h, p = ld_inputs(dense)
        r2 = r_squared_matrix(h, p, undefined=0.0)
        np.testing.assert_array_equal(r2, 0.0)

    def test_matches_pearson_correlation(self, rng):
        """r2 equals squared Pearson correlation of the allele indicators."""
        dense = rng.integers(0, 2, size=(400, 5)).astype(float)
        h, p = ld_inputs(dense)
        r2 = r_squared_matrix(h, p)
        corr = np.corrcoef(dense.T) ** 2
        np.testing.assert_allclose(r2, corr, atol=1e-12)


class TestRSquaredAdjusted:
    def test_subtracts_null_expectation(self):
        assert r_squared_adjusted(0.5, 100) == pytest.approx(0.49)
        assert r_squared_adjusted(0.005, 100) == 0.0  # clipped at zero

    def test_nan_passthrough(self):
        out = r_squared_adjusted(np.array([np.nan, 0.2]), 50)
        assert np.isnan(out[0]) and out[1] == pytest.approx(0.18)

    def test_null_expectation_calibration(self, rng):
        """On equilibrium data, mean adjusted r² is far below mean raw r²."""
        dense = rng.integers(0, 2, size=(80, 40)).astype(np.uint8)
        h, p = ld_inputs(dense)
        r2 = r_squared_matrix(h, p)
        iu = np.triu_indices(40, k=1)
        raw = np.nanmean(r2[iu])
        adjusted = np.nanmean(r_squared_adjusted(r2[iu], 80))
        assert adjusted < raw / 2

    def test_rejects_tiny_n(self):
        with pytest.raises(ValueError, match="n_samples"):
            r_squared_adjusted(0.5, 1)


class TestLdChi2Matrix:
    def test_statistic_and_pvalues(self):
        from scipy import stats as sp_stats

        r2 = np.array([[1.0, 0.1], [0.1, 1.0]])
        chi2, p = ld_chi2_matrix(r2, 50)
        np.testing.assert_allclose(chi2, 50 * r2)
        np.testing.assert_allclose(p, sp_stats.chi2.sf(50 * r2, df=1))

    def test_nan_propagation(self):
        chi2, p = ld_chi2_matrix(np.array([np.nan, 0.5]), 20)
        assert np.isnan(chi2[0]) and np.isnan(p[0])
        assert not np.isnan(p[1])

    def test_null_calibration(self, rng):
        """Equilibrium data: ~5 % of pairs significant at alpha = 0.05."""
        dense = rng.integers(0, 2, size=(200, 60)).astype(np.uint8)
        h, p_vec = ld_inputs(dense)
        r2 = r_squared_matrix(h, p_vec)
        iu = np.triu_indices(60, k=1)
        _chi2, p = ld_chi2_matrix(r2[iu], 200)
        defined = p[~np.isnan(p)]
        assert (defined < 0.05).mean() == pytest.approx(0.05, abs=0.04)

    def test_rejects_tiny_n(self):
        with pytest.raises(ValueError, match="n_samples"):
            ld_chi2_matrix(np.array([0.5]), 0)


class TestDPrimeMatrix:
    def test_bounds(self, small_panel):
        h, p = ld_inputs(small_panel)
        dp = d_prime_matrix(h, p)
        finite = dp[~np.isnan(dp)]
        assert np.all(finite <= 1.0 + 1e-9)
        assert np.all(finite >= -1.0 - 1e-9)

    def test_diagonal_is_one_for_polymorphic(self, small_panel):
        h, p = ld_inputs(small_panel)
        dp = d_prime_matrix(h, p)
        poly = (p > 0) & (p < 1)
        np.testing.assert_allclose(np.diag(dp)[poly], 1.0)

    def test_monomorphic_pairs_undefined(self):
        dense = np.zeros((8, 2), dtype=np.uint8)
        dense[:, 1] = [0, 1, 0, 1, 0, 1, 0, 1]
        h, p = ld_inputs(dense)
        dp = d_prime_matrix(h, p)
        assert np.isnan(dp[0, 0]) and np.isnan(dp[0, 1])
        assert not np.isnan(dp[1, 1])

    def test_complete_ld_gives_one(self):
        """Two identical SNPs: |D'| = 1."""
        col = np.array([0, 0, 1, 1, 1, 0, 1, 0], dtype=np.uint8)
        dense = np.stack([col, col], axis=1)
        h, p = ld_inputs(dense)
        dp = d_prime_matrix(h, p)
        np.testing.assert_allclose(dp, 1.0)

    def test_opposite_coupling_gives_minus_one(self):
        col = np.array([0, 0, 1, 1, 1, 0, 1, 0], dtype=np.uint8)
        dense = np.stack([col, 1 - col], axis=1)
        h, p = ld_inputs(dense)
        dp = d_prime_matrix(h, p)
        assert dp[0, 1] == pytest.approx(-1.0)

    @given(seed=st.integers(min_value=0, max_value=2**31))
    @settings(max_examples=20)
    def test_sign_matches_d(self, seed):
        rng = np.random.default_rng(seed)
        dense = rng.integers(0, 2, size=(60, 6)).astype(np.uint8)
        h, p = ld_inputs(dense)
        d = d_matrix(h, p)
        dp = d_prime_matrix(h, p)
        strong = ~np.isnan(dp) & (np.abs(d) > 1e-12)
        np.testing.assert_array_equal(np.sign(dp[strong]), np.sign(d[strong]))
        weak = ~np.isnan(dp) & (np.abs(d) <= 1e-12)
        np.testing.assert_allclose(dp[weak], 0.0, atol=1e-9)
