"""Tests for the sharded tiled execution engine (repro.core.engine)."""

from __future__ import annotations

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.core.engine import (
    ENGINES,
    TileManifest,
    TileTask,
    enumerate_tiles,
    input_fingerprint,
    run_engine,
)
from repro.core.ldmatrix import as_bitmatrix, ld_matrix
from repro.core.streaming import NpyMemmapSink
from repro.faults import FaultPlan, FaultSpec, InjectedFault
from repro.observe import MetricsRecorder


@pytest.fixture
def panel(rng):
    return rng.integers(0, 2, size=(75, 37)).astype(np.uint8)


class TestEnumerateTiles:
    @settings(deadline=None)
    @given(
        n=st.integers(min_value=0, max_value=150),
        block=st.integers(min_value=1, max_value=64),
    )
    def test_tiles_partition_lower_triangle_exactly(self, n, block):
        covered = np.zeros((n, n), dtype=np.int64)
        for t in enumerate_tiles(n, block):
            assert 0 <= t.j0 <= t.i0 and t.i0 < t.i1 <= n and t.j0 < t.j1 <= n
            covered[t.i0 : t.i1, t.j0 : t.j1] += 1
        il = np.tril_indices(n)
        # Every lower-triangle cell exactly once; diagonal blocks spill
        # above the diagonal (block-granular delivery), never twice.
        assert np.all(covered[il] == 1)
        assert np.all(covered <= 1)

    @settings(deadline=None)
    @given(
        n=st.integers(min_value=0, max_value=300),
        block=st.integers(min_value=1, max_value=64),
    )
    def test_block_count(self, n, block):
        n_blocks = -(-n // block)
        assert len(enumerate_tiles(n, block)) == n_blocks * (n_blocks + 1) // 2

    def test_exclude_diagonal(self):
        tiles = enumerate_tiles(50, 8, include_diagonal=False)
        assert all(t.i0 != t.j0 for t in tiles)

    def test_order_matches_streaming_convention(self):
        keys = [t.key for t in enumerate_tiles(20, 8)]
        assert keys == [(0, 0), (8, 0), (8, 8), (16, 0), (16, 8), (16, 16)]

    def test_rejects_bad_args(self):
        with pytest.raises(ValueError, match="block_snps"):
            enumerate_tiles(10, 0)
        with pytest.raises(ValueError, match="n_snps"):
            enumerate_tiles(-1, 4)


class TestTileManifest:
    def test_round_trip(self, tmp_path):
        path = tmp_path / "run.manifest"
        with TileManifest.open(path, "fp-1") as manifest:
            manifest.record(TileTask(0, 8, 0, 8))
            manifest.record(TileTask(8, 16, 0, 8))
        with TileManifest.open(path, "fp-1", resume=True) as reopened:
            assert reopened.completed == {(0, 0), (8, 0)}

    def test_fingerprint_mismatch_refuses_resume(self, tmp_path):
        path = tmp_path / "run.manifest"
        TileManifest.open(path, "fp-1").close()
        with pytest.raises(ValueError, match="fingerprint mismatch"):
            TileManifest.open(path, "fp-2", resume=True)

    def test_without_resume_truncates(self, tmp_path):
        path = tmp_path / "run.manifest"
        with TileManifest.open(path, "fp-1") as manifest:
            manifest.record(TileTask(0, 8, 0, 8))
        with TileManifest.open(path, "fp-1") as manifest:
            assert manifest.completed == set()
        with TileManifest.open(path, "fp-1", resume=True) as manifest:
            assert manifest.completed == set()

    def test_torn_tail_line_is_ignored(self, tmp_path):
        path = tmp_path / "run.manifest"
        with TileManifest.open(path, "fp-1") as manifest:
            manifest.record(TileTask(0, 8, 0, 8))
        with path.open("a") as fh:
            fh.write('{"tile": [8,')  # crash mid-append
        with TileManifest.open(path, "fp-1", resume=True) as manifest:
            assert manifest.completed == {(0, 0)}

    def test_corrupt_header_rejected(self, tmp_path):
        path = tmp_path / "run.manifest"
        path.write_text("not json\n")
        with pytest.raises(ValueError, match="corrupt"):
            TileManifest.open(path, "fp-1", resume=True)

    def test_fingerprint_sensitivity(self, rng):
        dense = rng.integers(0, 2, size=(40, 11)).astype(np.uint8)
        matrix = as_bitmatrix(dense)
        base = input_fingerprint(matrix, stat="r2", block_snps=8)
        assert base == input_fingerprint(matrix, stat="r2", block_snps=8)
        assert base != input_fingerprint(matrix, stat="D", block_snps=8)
        assert base != input_fingerprint(matrix, stat="r2", block_snps=16)
        flipped = dense.copy()
        flipped[0, 0] ^= 1
        assert base != input_fingerprint(
            as_bitmatrix(flipped), stat="r2", block_snps=8
        )


class _AssemblingSink:
    """Collects delivered lower-triangle blocks into a dense matrix."""

    def __init__(self, n: int) -> None:
        self.matrix = np.full((n, n), np.nan)
        self.calls: list[tuple[int, int]] = []

    def __call__(self, i0: int, j0: int, block: np.ndarray) -> None:
        self.calls.append((i0, j0))
        self.matrix[i0 : i0 + block.shape[0], j0 : j0 + block.shape[1]] = block


class TestRunEngine:
    @pytest.mark.parametrize("engine", ENGINES)
    @pytest.mark.parametrize("stat", ["r2", "D", "H"])
    def test_matches_in_memory_pipeline(self, panel, engine, stat):
        n = panel.shape[1]
        sink = _AssemblingSink(n)
        report = run_engine(
            panel, sink, stat=stat, engine=engine, block_snps=9, n_workers=2
        )
        il = np.tril_indices(n)
        expected = ld_matrix(panel, stat=stat)
        np.testing.assert_array_equal(sink.matrix[il], expected[il])
        assert report.n_tiles == len(sink.calls) == report.n_computed
        assert report.n_skipped == 0 and report.complete

    def test_manifest_written_and_resume_skips_everything(self, panel, tmp_path):
        manifest = tmp_path / "run.manifest"
        sink = _AssemblingSink(panel.shape[1])
        first = run_engine(
            panel, sink, block_snps=10, manifest_path=manifest
        )
        assert first.n_computed == first.n_tiles > 0
        again = _AssemblingSink(panel.shape[1])
        second = run_engine(
            panel, again, block_snps=10, manifest_path=manifest, resume=True
        )
        assert second.n_computed == 0
        assert second.n_skipped == second.n_tiles == first.n_tiles
        assert again.calls == []

    def test_resume_requires_manifest(self, panel):
        with pytest.raises(ValueError, match="manifest_path"):
            run_engine(panel, lambda *a: None, resume=True)

    def test_validation(self, panel):
        with pytest.raises(ValueError, match="unknown engine"):
            run_engine(panel, lambda *a: None, engine="gpu")
        with pytest.raises(ValueError, match="unknown LD statistic"):
            run_engine(panel, lambda *a: None, stat="Dprime")
        with pytest.raises(ValueError, match="n_workers"):
            run_engine(panel, lambda *a: None, engine="threads", n_workers=0)
        with pytest.raises(ValueError, match="max_retries"):
            run_engine(panel, lambda *a: None, max_retries=-1)

    @pytest.mark.parametrize("engine", ENGINES)
    def test_memmap_sink_round_trip(self, panel, tmp_path, engine):
        path = tmp_path / "ld.npy"
        n = panel.shape[1]
        with NpyMemmapSink(path, n) as sink:
            run_engine(
                panel, sink, engine=engine, block_snps=8, n_workers=2,
                undefined=0.0,
            )
        np.testing.assert_array_equal(np.load(path), ld_matrix(panel, undefined=0.0))


class TestRetries:
    """Retry behaviour, driven deterministically through FaultPlan.

    The plans key every decision on (tile, attempt), so these tests see
    the exact same failure schedule on every run and every executor — no
    real worker crashes, no counter files, no flakiness.
    """

    @pytest.mark.parametrize("engine", ENGINES)
    def test_transient_failures_are_retried(self, panel, engine):
        plan = FaultPlan(seed=11, specs=(
            FaultSpec(site="tile_compute", tile=(10, 10), attempts_below=2),
        ))
        sink = _AssemblingSink(panel.shape[1])
        recorder = MetricsRecorder(keep_events=True)
        report = run_engine(
            panel, sink, engine=engine, block_snps=10, n_workers=2,
            max_retries=2, retry_backoff=0.0, faults=plan, recorder=recorder,
        )
        assert report.n_retries == 2
        assert report.n_computed == report.n_tiles
        assert report.n_quarantined == 0
        # The recorder sees every retry the report counts, attributed to
        # the injected tile.
        assert recorder.counters["engine.retries"] == report.n_retries
        retry_events = [
            e for e in recorder.events if e["kind"] == "tile_retry"
        ]
        assert len(retry_events) == 2
        assert all(e["tile"] == [10, 10] for e in retry_events)
        assert recorder.event_count("tile_computed") == report.n_computed
        il = np.tril_indices(panel.shape[1])
        np.testing.assert_array_equal(
            sink.matrix[il], ld_matrix(panel)[il]
        )

    @pytest.mark.parametrize("engine", ENGINES)
    def test_persistent_failure_raises_after_retries(self, panel, engine):
        plan = FaultPlan(specs=(
            FaultSpec(site="tile_compute", tile=(0, 0)),
        ))
        with pytest.raises(InjectedFault, match="injected raise"):
            run_engine(
                panel, _AssemblingSink(panel.shape[1]), engine=engine,
                block_snps=10, n_workers=2, max_retries=1,
                retry_backoff=0.0, faults=plan,
            )


class _CrashingSink:
    """Wraps a sink and kills the run after *n_before_crash* deliveries."""

    def __init__(self, inner, n_before_crash: int) -> None:
        self.inner = inner
        self.n_before_crash = n_before_crash
        self.delivered = 0

    def __call__(self, i0: int, j0: int, block: np.ndarray) -> None:
        if self.delivered >= self.n_before_crash:
            raise KeyboardInterrupt("simulated mid-run crash")
        self.inner(i0, j0, block)
        self.delivered += 1

    def flush(self) -> None:
        flush = getattr(self.inner, "flush", None)
        if callable(flush):
            flush()


class TestCrashResume:
    @pytest.mark.parametrize("engine", ENGINES)
    def test_interrupted_run_resumes_bit_identically(
        self, panel, tmp_path, engine
    ):
        """Kill the engine mid-run, restart with resume, compare to clean."""
        n = panel.shape[1]
        clean_path = tmp_path / "clean.npy"
        with NpyMemmapSink(clean_path, n) as sink:
            clean_report = run_engine(
                panel, sink, engine=engine, block_snps=9, n_workers=2
            )
        assert clean_report.n_tiles > 4

        crash_path = tmp_path / "crashy.npy"
        manifest = tmp_path / "crashy.manifest"
        with NpyMemmapSink(crash_path, n) as inner:
            crashing = _CrashingSink(inner, n_before_crash=3)
            with pytest.raises(KeyboardInterrupt):
                run_engine(
                    panel, crashing, engine=engine, block_snps=9,
                    n_workers=2, manifest_path=manifest,
                )
        # The journal holds exactly the tiles delivered before the crash.
        with TileManifest.open(
            manifest,
            input_fingerprint(
                as_bitmatrix(panel), stat="r2", block_snps=9
            ),
            resume=True,
        ) as journal:
            assert len(journal.completed) == 3

        with NpyMemmapSink(crash_path, n, mode="r+") as sink:
            resumed = run_engine(
                panel, sink, engine=engine, block_snps=9, n_workers=2,
                manifest_path=manifest, resume=True,
            )
        assert resumed.n_skipped == 3
        assert resumed.n_computed == clean_report.n_tiles - 3
        clean = np.load(clean_path)
        restarted = np.load(crash_path)
        np.testing.assert_array_equal(restarted, clean)

    def test_resume_after_input_change_is_refused(self, panel, tmp_path):
        manifest = tmp_path / "run.manifest"
        run_engine(panel, lambda *a: None, block_snps=10, manifest_path=manifest)
        changed = panel.copy()
        changed[0, 0] ^= 1
        with pytest.raises(ValueError, match="fingerprint mismatch"):
            run_engine(
                changed, lambda *a: None, block_snps=10,
                manifest_path=manifest, resume=True,
            )


class TestBatchedDispatch:
    """Batched tile units and the shared-memory result arena."""

    @pytest.mark.parametrize("engine", ["threads", "processes"])
    @pytest.mark.parametrize("batch", [1, 2, 3, 100])
    def test_batched_matrix_is_bit_identical(self, panel, engine, batch):
        n = panel.shape[1]
        sink = _AssemblingSink(n)
        report = run_engine(
            panel, sink, engine=engine, block_snps=10, n_workers=2,
            batch_tiles=batch,
        )
        assert report.complete
        n_units = -(-report.n_tiles // batch)
        assert report.n_batches == n_units
        il = np.tril_indices(n)
        np.testing.assert_array_equal(sink.matrix[il], ld_matrix(panel)[il])

    def test_serial_ignores_batching(self, panel):
        report = run_engine(
            panel, _AssemblingSink(panel.shape[1]), engine="serial",
            block_snps=10, batch_tiles=4,
        )
        assert report.complete and report.n_batches == 0

    def test_rejects_nonpositive_batch(self, panel):
        with pytest.raises(ValueError, match="batch_tiles"):
            run_engine(
                panel, lambda *a: None, engine="threads", batch_tiles=0
            )

    @pytest.mark.parametrize("engine", ["threads", "processes"])
    def test_batch_accounting_in_recorder(self, panel, engine):
        recorder = MetricsRecorder()
        report = run_engine(
            panel, _AssemblingSink(panel.shape[1]), engine=engine,
            block_snps=10, n_workers=2, batch_tiles=2, recorder=recorder,
        )
        assert recorder.counters["engine.batches_dispatched"] == report.n_batches
        if engine == "processes":
            # The result arena's footprint is reported once per run.
            assert recorder.counters["engine.arena_bytes"] > 0
        else:
            assert "engine.arena_bytes" not in recorder.counters

    @pytest.mark.parametrize("engine", ["threads", "processes"])
    def test_tile_timeout_forces_singleton_batches(self, panel, engine):
        report = run_engine(
            panel, _AssemblingSink(panel.shape[1]), engine=engine,
            block_snps=10, n_workers=2, batch_tiles=5, tile_timeout=60.0,
        )
        # The per-tile watchdog budget only makes sense with one tile per
        # future, so the requested batch size is overridden.
        assert report.complete
        assert report.n_batches == report.n_tiles

    @pytest.mark.parametrize("engine", ["threads", "processes"])
    def test_transient_failure_inside_batch_retries_only_that_tile(
        self, panel, engine
    ):
        plan = FaultPlan(specs=(
            FaultSpec(site="tile_compute", tile=(10, 10), attempts_below=2),
        ))
        n = panel.shape[1]
        sink = _AssemblingSink(n)
        recorder = MetricsRecorder()
        report = run_engine(
            panel, sink, engine=engine, block_snps=10, n_workers=2,
            batch_tiles=3, max_retries=2, retry_backoff=0.0, faults=plan,
            recorder=recorder,
        )
        assert report.complete
        assert report.n_retries == 2
        retry_events = [e for e in recorder.events if e["event"] == "tile_retry"]
        assert all(e["tile"] == [10, 10] for e in retry_events)
        il = np.tril_indices(n)
        np.testing.assert_array_equal(sink.matrix[il], ld_matrix(panel)[il])

    def test_persistent_failure_in_batch_raises_original_type(self, panel):
        plan = FaultPlan(specs=(
            FaultSpec(site="tile_compute", tile=(0, 0)),
        ))
        with pytest.raises(InjectedFault, match="injected raise"):
            run_engine(
                panel, _AssemblingSink(panel.shape[1]), engine="processes",
                block_snps=10, n_workers=2, batch_tiles=4, max_retries=1,
                retry_backoff=0.0, faults=plan,
            )
