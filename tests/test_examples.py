"""Smoke tests: every shipped example runs to completion.

Each example is executed as a subprocess (the way a user would run it) and
must exit 0; key lines of its narrative output are asserted so a silent
regression in an example's logic — not just a crash — fails the suite.
"""

import subprocess
import sys
from pathlib import Path

import pytest

EXAMPLES_DIR = Path(__file__).resolve().parent.parent / "examples"


def run_example(name: str) -> str:
    result = subprocess.run(
        [sys.executable, str(EXAMPLES_DIR / name)],
        capture_output=True,
        text=True,
        timeout=300,
    )
    assert result.returncode == 0, (
        f"{name} failed:\n{result.stdout}\n{result.stderr}"
    )
    return result.stdout


def test_examples_directory_complete():
    present = {p.name for p in EXAMPLES_DIR.glob("*.py")}
    assert "quickstart.py" in present
    assert len(present) >= 3, "the paper repo ships at least three examples"


def test_quickstart():
    out = run_example("quickstart.py")
    assert "All-pairs r²" in out
    assert "SNPs sharing a genealogy are in LD" in out


def test_sweep_detection():
    out = run_example("sweep_detection.py")
    assert "identical omega values: True" in out
    assert "inferred sweep location" in out


def test_gwas_ld_pruning():
    out = run_example("gwas_ld_pruning.py")
    assert "LD decay" in out
    assert "the input a GWAS association test or PCA would actually use" in out


def test_long_range_ld():
    out = run_example("long_range_ld.py")
    assert "planted pair recovered: True" in out


def test_fingerprint_similarity():
    out = run_example("fingerprint_similarity.py")
    assert "family precision@5" in out
    assert "Leader clustering" in out


def test_msa_to_ld_pipeline():
    out = run_example("msa_to_ld_pipeline.py")
    assert "round-trip exact" in out
    assert "gap-aware LD" in out


def test_chromosome_scan():
    out = run_example("chromosome_scan.py")
    assert "Banded LD" in out
    assert "blocks spanning a hotspot: 0" in out
    assert "Streaming sparse extraction" in out


def test_gwas_case_control():
    out = run_example("gwas_case_control.py")
    assert "LD clumping" in out
    assert "Signals localized near planted causals" in out
