"""Tests for the naive per-pair baseline (repro.baselines.naive)."""

import numpy as np
import pytest

from repro.baselines.naive import naive_ld_matrix, naive_ld_matrix_scalar
from repro.core.ldmatrix import ld_matrix
from repro.encoding.bitmatrix import BitMatrix
from tests.conftest import assert_allclose_nan, reference_ld


class TestNaiveVector:
    @pytest.mark.parametrize("stat", ["r2", "D"])
    def test_matches_gemm(self, small_panel, stat):
        assert_allclose_nan(
            naive_ld_matrix(small_panel, stat=stat),
            ld_matrix(small_panel, stat=stat),
            atol=1e-12,
        )

    def test_accepts_bitmatrix(self, tiny_panel):
        bm = BitMatrix.from_dense(tiny_panel)
        assert_allclose_nan(
            naive_ld_matrix(bm), naive_ld_matrix(tiny_panel), atol=1e-12
        )

    def test_result_symmetric(self, tiny_panel):
        r2 = np.nan_to_num(naive_ld_matrix(tiny_panel))
        np.testing.assert_allclose(r2, r2.T)

    def test_unknown_stat(self, tiny_panel):
        with pytest.raises(ValueError, match="unknown LD statistic"):
            naive_ld_matrix(tiny_panel, stat="H2")

    def test_zero_samples_rejected(self):
        with pytest.raises(ValueError, match="zero samples"):
            naive_ld_matrix(np.zeros((0, 3), dtype=np.uint8))


class TestNaiveScalar:
    @pytest.mark.parametrize("stat", ["r2", "D"])
    def test_matches_reference(self, tiny_panel, stat):
        ref = reference_ld(tiny_panel)
        key = {"r2": "r2", "D": "d"}[stat]
        assert_allclose_nan(
            naive_ld_matrix_scalar(tiny_panel, stat=stat), ref[key], atol=1e-12
        )

    def test_matches_vector_baseline(self, tiny_panel):
        assert_allclose_nan(
            naive_ld_matrix_scalar(tiny_panel),
            naive_ld_matrix(tiny_panel),
            atol=1e-12,
        )

    def test_unknown_stat(self, tiny_panel):
        with pytest.raises(ValueError, match="unknown LD statistic"):
            naive_ld_matrix_scalar(tiny_panel, stat="w")
