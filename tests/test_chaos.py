"""Chaos property tests: seeded fault schedules never change the answer.

The acceptance property of the fault-injection layer: for any seeded
FaultPlan whose failures stay within the retry budget, run_engine — plus
a resume after any injected crash — produces a final r² matrix that is
bit-identical to an uninterrupted fault-free run. Schedules are built
from a seeded RNG over kills, transient raises, bit-flips, delays, and
torn manifest appends, so every run of this suite replays the exact same
failure histories.
"""

from __future__ import annotations

import random

import numpy as np
import pytest

from repro.core.engine import run_engine
from repro.core.executors import stop_pools
from repro.core.streaming import NpyMemmapSink
from repro.faults import FaultPlan, FaultSpec, InjectedCrash
from repro.observe import MetricsRecorder

N_SCHEDULES = 24
MAX_RETRIES = 3


@pytest.fixture(scope="module")
def chaos_panel():
    rng = np.random.default_rng(0xFA17)
    return rng.integers(0, 2, size=(48, 41)).astype(np.uint8)


@pytest.fixture(scope="module")
def clean_matrix(chaos_panel, tmp_path_factory):
    path = tmp_path_factory.mktemp("chaos-ref") / "clean.npy"
    with NpyMemmapSink(path, chaos_panel.shape[1]) as sink:
        report = run_engine(chaos_panel, sink, engine="serial", block_snps=7)
    assert report.complete
    return np.load(path)


def _tile_keys(n_snps: int, block: int) -> list[tuple[int, int]]:
    return [
        (i0, j0)
        for i0 in range(0, n_snps, block)
        for j0 in range(0, i0 + 1, block)
    ]


def _random_schedule(
    seed: int, keys: list[tuple[int, int]], *, with_kills: bool
) -> FaultPlan:
    """A random-but-replayable mix of failures, all within the budget.

    Per tile at most one spec, each with ``attempts_below <= MAX_RETRIES``,
    so every injected failure is retried past; a torn manifest append (a
    simulated power cut) may additionally end the run early, which the
    test recovers from with resume.
    """
    draw = random.Random(seed)
    specs: list[FaultSpec] = []
    victims = draw.sample(keys, k=min(len(keys), draw.randint(2, 5)))
    for key in victims:
        kind = draw.choice(["raise", "bitflip", "delay"])
        if kind == "raise":
            specs.append(FaultSpec(
                site="tile_compute", tile=key,
                attempts_below=draw.randint(1, MAX_RETRIES - 1),
            ))
        elif kind == "bitflip":
            specs.append(FaultSpec(
                site="tile_deliver", action="bitflip", tile=key,
                attempts_below=draw.randint(1, MAX_RETRIES - 1),
            ))
        else:
            specs.append(FaultSpec(
                site="tile_compute", action="delay", tile=key,
                attempts_below=1, delay_seconds=0.01,
            ))
    if with_kills and draw.random() < 0.7:
        specs.append(FaultSpec(
            site="tile_compute", action="kill", tile=draw.choice(keys),
            attempts_below=1,
        ))
    if draw.random() < 0.5:
        specs.append(FaultSpec(
            site="manifest_append", action="torn", tile=draw.choice(keys),
        ))
    return FaultPlan(seed=seed, specs=tuple(specs))


def _run_until_complete(panel, out, manifest, plan, *, engine, n) -> int:
    """Faulted run + resumes until the engine finishes; returns run count.

    The first run executes under the fault plan and may die on an
    injected crash (torn manifest append). Resumes run fault-free — after
    a real crash the operator restarts without the chaos harness — and
    must finish from the journal.
    """
    runs = 0
    mode = "w+"
    faults = plan
    while True:
        runs += 1
        assert runs <= 4, "chaos schedule failed to converge"
        try:
            with NpyMemmapSink(out, n, mode=mode) as sink:
                report = run_engine(
                    panel, sink, engine=engine, block_snps=7, n_workers=2,
                    manifest_path=manifest, resume=(mode == "r+"),
                    max_retries=MAX_RETRIES, retry_backoff=0.0,
                    faults=faults,
                )
            assert report.complete
            assert report.n_quarantined == 0
            return runs
        except InjectedCrash:
            mode = "r+"
            faults = None


class TestChaosSchedules:
    @pytest.mark.parametrize("seed", range(N_SCHEDULES))
    def test_serial_schedule_is_bit_identical(
        self, chaos_panel, clean_matrix, tmp_path, seed
    ):
        n = chaos_panel.shape[1]
        plan = _random_schedule(
            seed, _tile_keys(n, 7), with_kills=False
        )
        out = tmp_path / "chaos.npy"
        _run_until_complete(
            chaos_panel, out, tmp_path / "chaos.manifest", plan,
            engine="serial", n=n,
        )
        np.testing.assert_array_equal(np.load(out), clean_matrix)

    @pytest.mark.parametrize("seed", [101, 102, 103, 104])
    def test_process_schedule_with_kills_is_bit_identical(
        self, chaos_panel, clean_matrix, tmp_path, seed
    ):
        n = chaos_panel.shape[1]
        plan = _random_schedule(
            seed, _tile_keys(n, 7), with_kills=True
        )
        out = tmp_path / "chaos.npy"
        _run_until_complete(
            chaos_panel, out, tmp_path / "chaos.manifest", plan,
            engine="processes", n=n,
        )
        np.testing.assert_array_equal(np.load(out), clean_matrix)

    @pytest.mark.parametrize("seed", [201, 202])
    def test_thread_schedule_is_bit_identical(
        self, chaos_panel, clean_matrix, tmp_path, seed
    ):
        n = chaos_panel.shape[1]
        plan = _random_schedule(
            seed, _tile_keys(n, 7), with_kills=False
        )
        out = tmp_path / "chaos.npy"
        _run_until_complete(
            chaos_panel, out, tmp_path / "chaos.manifest", plan,
            engine="threads", n=n,
        )
        np.testing.assert_array_equal(np.load(out), clean_matrix)


class TestPersistentChaos:
    """Warm-pool fault semantics: workers die, the pool survives."""

    @pytest.fixture(autouse=True)
    def fresh_pools(self):
        stop_pools()
        yield
        stop_pools()

    @pytest.mark.parametrize("seed", [301, 302, 303])
    def test_persistent_schedule_with_kills_is_bit_identical(
        self, chaos_panel, clean_matrix, tmp_path, seed
    ):
        n = chaos_panel.shape[1]
        plan = _random_schedule(
            seed, _tile_keys(n, 7), with_kills=True
        )
        out = tmp_path / "chaos.npy"
        _run_until_complete(
            chaos_panel, out, tmp_path / "chaos.manifest", plan,
            engine="persistent", n=n,
        )
        np.testing.assert_array_equal(np.load(out), clean_matrix)

    def test_kill_mid_batch_respawns_worker_not_pool(
        self, chaos_panel, clean_matrix, tmp_path
    ):
        """A SIGKILLed warm worker is replaced alone; no pool rebuild."""
        n = chaos_panel.shape[1]
        plan = FaultPlan(seed=7, specs=(
            FaultSpec(site="tile_compute", action="kill", tile=(14, 0),
                      attempts_below=1),
        ))
        recorder = MetricsRecorder(keep_events=True)
        out = tmp_path / "killed.npy"
        with NpyMemmapSink(out, n) as sink:
            report = run_engine(
                chaos_panel, sink, engine="persistent", block_snps=7,
                n_workers=2, max_retries=MAX_RETRIES, retry_backoff=0.0,
                faults=plan, recorder=recorder,
            )
        assert report.complete and not report.degraded
        assert report.n_worker_respawns >= 1
        assert recorder.counters["engine.worker_respawns"] >= 1
        # The surviving worker's pool was never torn down and rebuilt.
        assert "engine.pool_restarts" not in recorder.counters
        assert report.n_pool_spawns == 1
        np.testing.assert_array_equal(np.load(out), clean_matrix)

    def test_kill_mid_batch_surfaces_in_live_snapshot(
        self, chaos_panel, clean_matrix, tmp_path
    ):
        """The live bus reflects a mid-batch SIGKILL: the respawn count,
        the recent-respawn log, and the `repro top` render all show it."""
        from repro.observe.live import (
            LivePublisher, read_snapshot, render_top,
        )

        n = chaos_panel.shape[1]
        plan = FaultPlan(seed=7, specs=(
            FaultSpec(site="tile_compute", action="kill", tile=(14, 0),
                      attempts_below=1),
        ))
        live = LivePublisher(
            tmp_path / "live.json", interval=0.01,
            config={"engine": "persistent", "stat": "r2"},
        )
        out = tmp_path / "killed.npy"
        with NpyMemmapSink(out, n) as sink:
            report = run_engine(
                chaos_panel, sink, engine="persistent", block_snps=7,
                n_workers=2, max_retries=MAX_RETRIES, retry_backoff=0.0,
                faults=plan, live=live,
            )
        assert report.complete and report.n_worker_respawns >= 1
        snapshot = read_snapshot(live.path)
        assert snapshot["phase"] == "done"
        assert snapshot["worker_respawns"] >= 1
        assert snapshot["retries"] >= 1
        assert snapshot["recent_respawns"], "respawn log empty"
        assert snapshot["tiles"]["done"] == report.n_computed
        # Worker rows are keyed by pid: the killed worker's row stays
        # (stale heartbeat) alongside its replacement's fresh one.
        assert len(snapshot["workers"]) >= 2
        text = render_top(snapshot)
        assert "1 respawns" in text or "respawns" in text
        assert "respawned worker slot" in text
        np.testing.assert_array_equal(np.load(out), clean_matrix)

    def test_kill_between_runs_respawns_on_next_start(
        self, chaos_panel, clean_matrix, tmp_path
    ):
        """Workers killed while the pool idles are replaced at next use."""
        import os
        import signal
        import time

        from repro.core import executors as executors_mod

        n = chaos_panel.shape[1]
        first = tmp_path / "first.npy"
        with NpyMemmapSink(first, n) as sink:
            cold = run_engine(
                chaos_panel, sink, engine="persistent", block_snps=7,
                n_workers=2,
            )
        assert cold.complete and cold.n_pool_spawns == 1
        pool = next(iter(executors_mod._POOLS.values()))
        victim = pool.workers[0]
        os.kill(victim.pid, signal.SIGKILL)
        victim.join(timeout=5)
        assert not victim.is_alive()

        recorder = MetricsRecorder(keep_events=True)
        second = tmp_path / "second.npy"
        with NpyMemmapSink(second, n) as sink:
            warm = run_engine(
                chaos_panel, sink, engine="persistent", block_snps=7,
                n_workers=2, recorder=recorder,
            )
        assert warm.complete
        # The dead worker was respawned in place; the pool itself — and
        # its shared-memory panel — survived, so no pool spawn happened.
        assert warm.n_pool_spawns == 0
        assert warm.n_worker_respawns >= 1
        assert recorder.counters["engine.worker_respawns"] >= 1
        assert "engine.pool_restarts" not in recorder.counters
        np.testing.assert_array_equal(np.load(second), clean_matrix)

    def test_quarantine_is_journaled_for_persistent_workers(
        self, chaos_panel, tmp_path
    ):
        plan = FaultPlan(seed=9, specs=(
            FaultSpec(site="tile_compute", tile=(7, 7)),
        ))
        manifest = tmp_path / "quarantine.manifest"
        recorder = MetricsRecorder(keep_events=True)
        report = run_engine(
            chaos_panel, lambda *a: None, engine="persistent",
            block_snps=7, n_workers=2, max_retries=1, retry_backoff=0.0,
            allow_quarantine=True, faults=plan, manifest_path=manifest,
            recorder=recorder,
        )
        assert not report.complete
        assert report.n_quarantined == 1
        assert report.quarantined == ((7, 7),)
        assert recorder.event_count("tile_quarantined") == 1
        assert "injected raise" in manifest.read_text()
