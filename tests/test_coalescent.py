"""Tests for the coalescent simulator (repro.simulate.coalescent)."""

import numpy as np
import pytest

from repro.simulate.coalescent import (
    CoalescentSample,
    simulate_chunked_region,
    simulate_coalescent,
)


class TestSimulateCoalescent:
    def test_basic_shape_and_types(self, rng):
        sample = simulate_coalescent(25, theta=12.0, rng=rng, min_snps=3)
        assert sample.n_samples == 25
        assert sample.n_snps >= 3
        assert sample.haplotypes.dtype == np.uint8
        assert set(np.unique(sample.haplotypes)) <= {0, 1}

    def test_positions_sorted_in_range(self, rng):
        sample = simulate_coalescent(
            10, theta=20.0, rng=rng, region_length=500.0, min_snps=5
        )
        assert np.all(np.diff(sample.positions) >= 0)
        assert sample.positions.min() >= 0
        assert sample.positions.max() < 500.0

    def test_every_site_segregates(self, rng):
        """Mutations on non-root branches always split the sample."""
        sample = simulate_coalescent(15, theta=30.0, rng=rng, min_snps=10)
        counts = sample.haplotypes.sum(axis=0)
        assert np.all(counts >= 1)
        assert np.all(counts <= 14)

    def test_tree_height_positive(self, rng):
        sample = simulate_coalescent(8, theta=1.0, rng=rng)
        assert sample.tree_height > 0

    def test_expected_segsites_tracks_theta(self):
        """E[S] = θ·Σ 1/i — check within loose statistical bounds."""
        n, theta, reps = 10, 8.0, 60
        rng = np.random.default_rng(99)
        harmonic = sum(1.0 / i for i in range(1, n))
        expectation = theta * harmonic
        total = sum(
            simulate_coalescent(n, theta, rng=rng).n_snps for _ in range(reps)
        )
        assert total / reps == pytest.approx(expectation, rel=0.3)

    def test_zero_theta_gives_no_sites(self, rng):
        sample = simulate_coalescent(5, theta=0.0, rng=rng)
        assert sample.n_snps == 0
        assert sample.positions.size == 0

    def test_to_bitmatrix(self, rng):
        sample = simulate_coalescent(12, theta=10.0, rng=rng, min_snps=2)
        bm = sample.to_bitmatrix()
        np.testing.assert_array_equal(bm.to_dense(), sample.haplotypes)

    def test_deterministic_with_seed(self):
        a = simulate_coalescent(10, theta=5.0, rng=np.random.default_rng(7))
        b = simulate_coalescent(10, theta=5.0, rng=np.random.default_rng(7))
        np.testing.assert_array_equal(a.haplotypes, b.haplotypes)
        np.testing.assert_array_equal(a.positions, b.positions)

    def test_rejects_too_few_samples(self, rng):
        with pytest.raises(ValueError, match="at least 2"):
            simulate_coalescent(1, theta=1.0, rng=rng)

    def test_rejects_negative_theta(self, rng):
        with pytest.raises(ValueError, match="non-negative"):
            simulate_coalescent(5, theta=-1.0, rng=rng)


class TestChunkedRegion:
    def test_chunk_positions_span_region(self, rng):
        sample = simulate_chunked_region(
            12, n_chunks=5, theta_per_chunk=6.0, rng=rng, chunk_length=100.0
        )
        assert sample.positions.max() < 500.0
        assert isinstance(sample, CoalescentSample)

    def test_within_chunk_ld_exceeds_between_chunk_ld(self):
        """The defining property of the chunked approximation."""
        rng = np.random.default_rng(12)
        sample = simulate_chunked_region(
            60, n_chunks=4, theta_per_chunk=10.0, rng=rng, chunk_length=10.0
        )
        from repro.core.ldmatrix import ld_matrix

        r2 = ld_matrix(sample.haplotypes, undefined=0.0)
        chunk = (sample.positions // 10).astype(int)
        same = np.equal.outer(chunk, chunk)
        iu = np.triu_indices(sample.n_snps, k=1)
        within = r2[iu][same[iu]]
        between = r2[iu][~same[iu]]
        assert within.mean() > 3 * between.mean()

    def test_rejects_bad_chunk_count(self, rng):
        with pytest.raises(ValueError, match="n_chunks"):
            simulate_chunked_region(5, n_chunks=0, theta_per_chunk=1.0, rng=rng)
