"""Executor-conformance battery (repro.core.executors).

One parametrized suite run against every backend — ``serial``,
``threads``, ``processes``, ``persistent`` — so any future execution
strategy gets conformance for free: bit-identical r² versus the serial
oracle, crash/resume to identical manifests, exact retry accounting,
and CRC verification of the shared-memory result arena. Persistent-pool
specifics ride along: warm reuse with zero pool spawns (the whole point
of the backend), registry lifecycle (stop, idle reap, status), and the
shared-memory leak detector for ``run_engine`` exception paths.
"""

from __future__ import annotations

import os
from pathlib import Path

import numpy as np
import pytest

from repro.core import executors as executors_mod
from repro.core.engine import (
    ENGINES,
    TileManifest,
    input_fingerprint,
    run_engine,
)
from repro.core.executors import (
    _ResultArena,
    panel_fingerprint,
    pool_status,
    reap_idle_pools,
    stop_pools,
)
from repro.core.ldmatrix import as_bitmatrix, ld_matrix
from repro.core.streaming import NpyMemmapSink
from repro.faults import FaultPlan, FaultSpec, InjectedFault
from repro.observe import MetricsRecorder, SpanProfiler

#: Awkward differential shapes: word-aligned, fringe bits, wide panels.
CONFORMANCE_SHAPES = [(64, 20), (65, 24), (90, 41), (31, 90)]


@pytest.fixture(autouse=True)
def fresh_pools():
    """Each test starts and ends with no warm pools registered."""
    stop_pools()
    yield
    stop_pools()


@pytest.fixture
def panel(rng):
    return rng.integers(0, 2, size=(75, 37)).astype(np.uint8)


def _assemble(panel, **kwargs):
    """Run the engine into a dense matrix; returns (matrix, report)."""
    n = panel.shape[1]
    out = np.full((n, n), np.nan)

    def sink(i0, j0, block):
        out[i0 : i0 + block.shape[0], j0 : j0 + block.shape[1]] = block

    report = run_engine(panel, sink, **kwargs)
    return out, report


class _CrashAfter:
    """Sink wrapper that raises after a fixed number of deliveries."""

    def __init__(self, inner, n_before_crash: int) -> None:
        self.inner = inner
        self.remaining = n_before_crash

    def __call__(self, i0: int, j0: int, block: np.ndarray) -> None:
        if self.remaining == 0:
            raise KeyboardInterrupt("injected crash")
        self.remaining -= 1
        self.inner(i0, j0, block)

    def flush(self) -> None:
        flush = getattr(self.inner, "flush", None)
        if callable(flush):
            flush()


class TestConformance:
    """The battery every backend must pass identically."""

    @pytest.mark.parametrize("engine", ENGINES)
    @pytest.mark.parametrize("shape", CONFORMANCE_SHAPES)
    def test_bit_identical_r2_vs_oracle(self, engine, shape):
        # The oracle is an in-process single-threaded run; every other
        # backend must reproduce it bit for bit. (No engine name in this
        # test's own name: CI's executor-matrix selects by `-k <backend>`
        # and must only match the parametrized ids.)
        rng = np.random.default_rng(0xE5EC + shape[0])
        panel = rng.integers(0, 2, size=shape).astype(np.uint8)
        panel[:, 0] = 0  # monomorphic column: NaN row every path must share
        oracle, _ = _assemble(panel, engine="serial", block_snps=13)
        got, report = _assemble(
            panel, engine=engine, block_snps=13, n_workers=2
        )
        assert report.complete and not report.degraded
        tri = np.tril_indices(shape[1])
        np.testing.assert_array_equal(got[tri], oracle[tri])

    @pytest.mark.parametrize("engine", ENGINES)
    def test_crash_resume_to_identical_manifest_and_matrix(
        self, engine, panel, tmp_path
    ):
        n = panel.shape[1]
        clean_path = tmp_path / "clean.npy"
        with NpyMemmapSink(clean_path, n) as sink:
            clean = run_engine(
                panel, sink, engine=engine, block_snps=9, n_workers=2
            )
        crash_path = tmp_path / "crash.npy"
        manifest = tmp_path / "crash.manifest"
        with NpyMemmapSink(crash_path, n) as inner:
            with pytest.raises(KeyboardInterrupt):
                run_engine(
                    panel, _CrashAfter(inner, 3), engine=engine,
                    block_snps=9, n_workers=2, manifest_path=manifest,
                )
        fingerprint = input_fingerprint(
            as_bitmatrix(panel), stat="r2", block_snps=9
        )
        with TileManifest.open(manifest, fingerprint, resume=True) as journal:
            # The journal holds exactly the tiles delivered pre-crash.
            assert len(journal.completed) == 3
        with NpyMemmapSink(crash_path, n, mode="r+") as sink:
            resumed = run_engine(
                panel, sink, engine=engine, block_snps=9, n_workers=2,
                manifest_path=manifest, resume=True,
            )
        assert resumed.n_skipped == 3
        assert resumed.n_computed == clean.n_tiles - 3
        np.testing.assert_array_equal(
            np.load(crash_path), np.load(clean_path)
        )

    @pytest.mark.parametrize("engine", ENGINES)
    def test_retry_count_is_exact(self, engine, panel):
        plan = FaultPlan(seed=3, specs=(
            FaultSpec(site="tile_compute", tile=(9, 9), attempts_below=2),
        ))
        recorder = MetricsRecorder(keep_events=True)
        got, report = _assemble(
            panel, engine=engine, block_snps=9, n_workers=2,
            max_retries=2, retry_backoff=0.0, faults=plan, recorder=recorder,
        )
        assert report.complete
        assert report.n_retries == 2
        assert recorder.counters["engine.retries"] == 2
        events = [e for e in recorder.events if e["kind"] == "tile_retry"]
        assert len(events) == 2
        assert all(e["tile"] == [9, 9] for e in events)
        expected = ld_matrix(panel)
        tri = np.tril_indices(panel.shape[1])
        np.testing.assert_array_equal(got[tri], expected[tri])

    @pytest.mark.parametrize("engine", ENGINES)
    def test_arena_crc_catches_bitflip_and_recomputes(self, engine, panel):
        plan = FaultPlan(seed=5, specs=(
            FaultSpec(site="tile_deliver", tile=(18, 9), attempts_below=1,
                      action="bitflip"),
        ))
        recorder = MetricsRecorder(keep_events=True)
        got, report = _assemble(
            panel, engine=engine, block_snps=9, n_workers=2,
            max_retries=2, retry_backoff=0.0, faults=plan, recorder=recorder,
        )
        assert report.complete
        assert recorder.counters["engine.corruptions"] == 1
        assert recorder.event_count("tile_corrupt") == 1
        # The corrupted handoff was recomputed, not delivered.
        expected = ld_matrix(panel)
        tri = np.tril_indices(panel.shape[1])
        np.testing.assert_array_equal(got[tri], expected[tri])

    @pytest.mark.parametrize("engine", ENGINES)
    def test_exhausted_retries_raise_original_error(self, engine, panel):
        plan = FaultPlan(seed=1, specs=(
            FaultSpec(site="tile_compute", tile=(0, 0)),
        ))
        with pytest.raises(InjectedFault, match="injected raise"):
            run_engine(
                panel, lambda *a: None, engine=engine, block_snps=9,
                n_workers=2, max_retries=1, retry_backoff=0.0, faults=plan,
            )


class TestWarmReuse:
    """The point of the persistent backend: the second run is free."""

    def test_second_run_performs_zero_pool_spawns(self, panel):
        cold_rec = MetricsRecorder()
        _, cold = _assemble(
            panel, engine="persistent", block_snps=9, n_workers=2,
            recorder=cold_rec,
        )
        assert cold.complete
        assert cold.n_pool_spawns == 1
        assert cold_rec.counters["engine.pool_spawns"] == 1

        warm_rec = MetricsRecorder()
        profiler = SpanProfiler()
        _, warm = _assemble(
            panel, engine="persistent", block_snps=9, n_workers=2,
            recorder=warm_rec, profiler=profiler,
        )
        assert warm.complete
        assert warm.n_pool_spawns == 0
        assert warm.n_worker_respawns == 0
        assert "engine.pool_spawns" not in warm_rec.counters
        # The span profile must show zero spawn cost on the warm path.
        assert "driver.pool_spawn" not in profiler.totals()
        assert "driver.enqueue" in profiler.totals()

    def test_warm_pool_serves_different_stats_and_blockings(self, panel):
        for stat, block in (("r2", 9), ("D", 9), ("H", 12)):
            got, report = _assemble(
                panel, engine="persistent", stat=stat, block_snps=block,
                n_workers=2,
            )
            assert report.complete
        # One pool was built for all three runs (same panel fingerprint).
        assert len(pool_status()) == 1

    def test_results_identical_across_cold_and_warm_runs(self, panel):
        first, _ = _assemble(
            panel, engine="persistent", block_snps=9, n_workers=2
        )
        second, report = _assemble(
            panel, engine="persistent", block_snps=9, n_workers=2
        )
        assert report.n_pool_spawns == 0
        tri = np.tril_indices(panel.shape[1])
        np.testing.assert_array_equal(first[tri], second[tri])


class TestPoolLifecycle:
    def test_registry_is_keyed_by_panel_fingerprint(self, panel, rng):
        _assemble(panel, engine="persistent", block_snps=9, n_workers=2)
        other = rng.integers(0, 2, size=(60, 29)).astype(np.uint8)
        _assemble(other, engine="persistent", block_snps=9, n_workers=2)
        keys = {entry["key"] for entry in pool_status()}
        assert keys == {
            panel_fingerprint(as_bitmatrix(panel).words,
                              as_bitmatrix(panel).n_samples),
            panel_fingerprint(as_bitmatrix(other).words,
                              as_bitmatrix(other).n_samples),
        }

    def test_stop_pools_kills_workers_and_unlinks_segments(self, panel):
        _assemble(panel, engine="persistent", block_snps=9, n_workers=2)
        entries = pool_status()
        assert len(entries) == 1
        pool = next(iter(executors_mod._POOLS.values()))
        pids = list(pool.pids)
        segments = [pool.panel_shm.name, pool.arena.name]
        assert stop_pools() == 1
        assert pool_status() == []
        for pid in pids:
            # Daemon children: reaped or at least no longer running.
            try:
                os.kill(pid, 0)
            except ProcessLookupError:
                continue
            _, status = os.waitpid(pid, os.WNOHANG)
        for name in segments:
            assert not (Path("/dev/shm") / name.lstrip("/")).exists()

    def test_idle_pools_are_reaped(self, panel, monkeypatch):
        monkeypatch.setenv("REPRO_POOL_IDLE_TIMEOUT", "1")
        _assemble(panel, engine="persistent", block_snps=9, n_workers=2)
        pool = next(iter(executors_mod._POOLS.values()))
        pool.last_used -= 10.0  # simulate the idle window elapsing
        assert reap_idle_pools() == 1
        assert executors_mod._POOLS == {}

    def test_pool_cap_evicts_least_recently_used(self, rng, monkeypatch):
        monkeypatch.setenv("REPRO_POOL_MAX", "2")
        panels = [
            rng.integers(0, 2, size=(50, 17 + i)).astype(np.uint8)
            for i in range(3)
        ]
        for p in panels:
            _assemble(p, engine="persistent", block_snps=7, n_workers=1)
        assert len(executors_mod._POOLS) == 2
        oldest = panel_fingerprint(
            as_bitmatrix(panels[0]).words, as_bitmatrix(panels[0]).n_samples
        )
        assert oldest not in executors_mod._POOLS


def _shm_segments() -> set[str]:
    """Names currently present in /dev/shm (POSIX shared memory)."""
    root = Path("/dev/shm")
    if not root.exists():  # pragma: no cover - non-Linux
        pytest.skip("no /dev/shm on this platform")
    return {p.name for p in root.iterdir()}


class TestShmLeaks:
    """`run_engine` exception paths must release every shm segment."""

    @pytest.mark.parametrize("engine", ["processes", "persistent"])
    def test_crashing_sink_leaks_no_segments(self, engine, panel):
        before = _shm_segments()

        def exploding(i0, j0, block):
            raise KeyboardInterrupt("sink failure")

        with pytest.raises(KeyboardInterrupt):
            run_engine(
                panel, exploding, engine=engine, block_snps=9, n_workers=2
            )
        stop_pools()  # persistent pools legitimately outlive the run
        leaked = _shm_segments() - before
        assert not leaked

    def test_retry_exhaustion_leaks_no_segments(self, panel):
        before = _shm_segments()
        plan = FaultPlan(seed=1, specs=(
            FaultSpec(site="tile_compute", tile=(0, 0)),
        ))
        with pytest.raises(InjectedFault):
            run_engine(
                panel, lambda *a: None, engine="processes", block_snps=9,
                n_workers=2, max_retries=1, retry_backoff=0.0, faults=plan,
            )
        leaked = _shm_segments() - before
        assert not leaked

    def test_panel_segment_released_even_when_arena_close_raises(
        self, panel, monkeypatch
    ):
        # Regression for the pre-existing leak: an arena.close() failure
        # in the cleanup path used to skip the panel unlink entirely.
        before = _shm_segments()
        real_close = _ResultArena.close

        def bad_close(self):
            real_close(self)
            raise OSError("injected close failure")

        monkeypatch.setattr(_ResultArena, "close", bad_close)
        with pytest.raises(OSError, match="injected close failure"):
            run_engine(
                panel, lambda *a: None, engine="processes", block_snps=9,
                n_workers=2,
            )
        leaked = _shm_segments() - before
        assert not leaked

    def test_arena_init_failure_leaks_nothing(self, monkeypatch):
        before = _shm_segments()

        def bad_ndarray(*args, **kwargs):
            raise MemoryError("injected allocation failure")

        monkeypatch.setattr(executors_mod.np, "ndarray", bad_ndarray)
        with pytest.raises(MemoryError):
            _ResultArena(n_slots=2, slot_elems=64)
        leaked = _shm_segments() - before
        assert not leaked
