"""Tests for the forward Wright–Fisher simulator (repro.simulate.wrightfisher)."""

import numpy as np
import pytest

from repro.simulate.wrightfisher import simulate_sweep, simulate_wright_fisher


class TestNeutral:
    def test_shapes_and_segregation(self):
        rng = np.random.default_rng(5)
        result = simulate_wright_fisher(
            30, 60, pop_size=120, generations=200, mut_rate=5e-4, rng=rng
        )
        assert result.haplotypes.shape[0] == 30
        counts = result.haplotypes.sum(axis=0)
        assert np.all((counts > 0) & (counts < 30))
        assert result.positions.size == result.n_snps
        assert np.isnan(result.selected_position)
        assert result.generations == 200

    def test_deterministic_with_seed(self):
        a = simulate_wright_fisher(
            10, 30, pop_size=50, generations=50, rng=np.random.default_rng(3)
        )
        b = simulate_wright_fisher(
            10, 30, pop_size=50, generations=50, rng=np.random.default_rng(3)
        )
        np.testing.assert_array_equal(a.haplotypes, b.haplotypes)

    def test_to_bitmatrix(self):
        result = simulate_wright_fisher(
            10, 40, pop_size=60, generations=100, mut_rate=1e-3,
            rng=np.random.default_rng(8),
        )
        bm = result.to_bitmatrix()
        np.testing.assert_array_equal(bm.to_dense(), result.haplotypes)

    def test_rejects_oversampling(self):
        with pytest.raises(ValueError, match="cannot sample"):
            simulate_wright_fisher(100, 10, pop_size=50)

    def test_rejects_bad_site_count(self):
        with pytest.raises(ValueError, match="n_sites"):
            simulate_wright_fisher(5, 0, pop_size=50)

    def test_zero_mutation_rate_stays_monomorphic(self):
        result = simulate_wright_fisher(
            10, 20, pop_size=40, generations=50, mut_rate=0.0,
            rng=np.random.default_rng(2),
        )
        assert result.n_snps == 0

    def test_recombination_reduces_ld(self):
        """Higher crossover rates must lower average pairwise r²."""
        from repro.core.ldmatrix import ld_matrix

        def mean_r2(recomb, seed):
            result = simulate_wright_fisher(
                40, 40, pop_size=100, generations=300, mut_rate=8e-4,
                recomb_rate=recomb, rng=np.random.default_rng(seed),
            )
            if result.n_snps < 2:
                return np.nan
            r2 = ld_matrix(result.haplotypes, undefined=0.0)
            iu = np.triu_indices(result.n_snps, k=1)
            return float(r2[iu].mean())

        tight = np.nanmean([mean_r2(0.0, s) for s in range(4)])
        loose = np.nanmean([mean_r2(0.05, s) for s in range(4)])
        assert tight > loose


class TestSweep:
    def test_sweep_fixes_and_excludes_selected_site(self):
        rng = np.random.default_rng(1)
        result = simulate_sweep(
            40, 41, pop_size=120, burn_in=150, selection=1.0,
            mut_rate=5e-4, rng=rng,
        )
        assert result.selected_position == 20.0
        # Selected site fixed => monomorphic => not among retained SNPs.
        assert 20.0 not in result.positions.tolist()
        assert result.generations > 150

    def test_rejects_bad_parameters(self):
        with pytest.raises(ValueError, match="cannot sample"):
            simulate_sweep(100, 11, pop_size=50)
        with pytest.raises(ValueError, match="3 sites"):
            simulate_sweep(5, 2, pop_size=50)
        with pytest.raises(ValueError, match="selection"):
            simulate_sweep(5, 11, pop_size=50, selection=0.0)

    def test_fixation_failure_raises(self):
        """Near-neutral allele with one attempt almost surely fails to fix."""
        rng = np.random.default_rng(0)
        with pytest.raises(RuntimeError, match="failed to fix"):
            simulate_sweep(
                10, 11, pop_size=200, burn_in=10, selection=1e-6,
                max_attempts=1, rng=rng,
            )
