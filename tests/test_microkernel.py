"""Tests for the LD micro-kernels (repro.core.microkernel)."""

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st
from hypothesis.extra import numpy as hnp

from repro.core.microkernel import (
    MICRO_KERNELS,
    microkernel_numpy,
    microkernel_scalar,
)


def reference_tile(a_panel: np.ndarray, b_panel: np.ndarray) -> np.ndarray:
    """Direct popcount inner products, no kernel machinery."""
    k, mr = a_panel.shape
    nr = b_panel.shape[1]
    out = np.zeros((mr, nr), dtype=np.int64)
    for i in range(mr):
        for j in range(nr):
            out[i, j] = sum(
                int(a_panel[p, i] & b_panel[p, j]).bit_count() for p in range(k)
            )
    return out


PANEL_PAIR = st.tuples(
    st.integers(min_value=1, max_value=12),  # k_c
    st.integers(min_value=1, max_value=6),   # m_r
    st.integers(min_value=1, max_value=6),   # n_r
).flatmap(
    lambda kmn: st.tuples(
        hnp.arrays(
            np.uint64, (kmn[0], kmn[1]),
            elements=st.integers(min_value=0, max_value=2**64 - 1),
        ),
        hnp.arrays(
            np.uint64, (kmn[0], kmn[2]),
            elements=st.integers(min_value=0, max_value=2**64 - 1),
        ),
    )
)


@pytest.mark.parametrize("name", sorted(MICRO_KERNELS))
@given(panels=PANEL_PAIR)
@settings(max_examples=30)
def test_kernels_match_reference(name, panels):
    a_panel, b_panel = panels
    c = np.zeros((a_panel.shape[1], b_panel.shape[1]), dtype=np.int64)
    MICRO_KERNELS[name](a_panel, b_panel, c)
    np.testing.assert_array_equal(c, reference_tile(a_panel, b_panel))


@pytest.mark.parametrize("name", sorted(MICRO_KERNELS))
def test_kernels_accumulate(name, rng):
    """C += AB semantics: a second invocation doubles the tile."""
    a = rng.integers(0, 2**63, size=(8, 4)).astype(np.uint64)
    b = rng.integers(0, 2**63, size=(8, 4)).astype(np.uint64)
    c = np.zeros((4, 4), dtype=np.int64)
    MICRO_KERNELS[name](a, b, c)
    once = c.copy()
    MICRO_KERNELS[name](a, b, c)
    np.testing.assert_array_equal(c, 2 * once)


def test_kernels_agree_on_large_tile(rng):
    a = rng.integers(0, 2**63, size=(64, 8)).astype(np.uint64)
    b = rng.integers(0, 2**63, size=(64, 8)).astype(np.uint64)
    c1 = np.zeros((8, 8), dtype=np.int64)
    c2 = np.zeros((8, 8), dtype=np.int64)
    microkernel_numpy(a, b, c1)
    microkernel_scalar(a, b, c2)
    np.testing.assert_array_equal(c1, c2)


def test_scalar_kernel_rejects_k_mismatch(rng):
    a = rng.integers(0, 2, size=(4, 2)).astype(np.uint64)
    b = rng.integers(0, 2, size=(5, 2)).astype(np.uint64)
    with pytest.raises(ValueError, match="k mismatch"):
        microkernel_scalar(a, b, np.zeros((2, 2), dtype=np.int64))


def test_zero_padding_is_inert(rng):
    """Zero columns in a panel contribute nothing (fringe-tile guarantee)."""
    a = rng.integers(0, 2**63, size=(16, 4)).astype(np.uint64)
    b = rng.integers(0, 2**63, size=(16, 4)).astype(np.uint64)
    a_padded = np.concatenate([a, np.zeros((16, 2), dtype=np.uint64)], axis=1)
    c_small = np.zeros((4, 4), dtype=np.int64)
    c_big = np.zeros((6, 4), dtype=np.int64)
    microkernel_numpy(a, b, c_small)
    microkernel_numpy(a_padded, b, c_big)
    np.testing.assert_array_equal(c_big[:4], c_small)
    np.testing.assert_array_equal(c_big[4:], 0)
