"""Tests for the PLINK 2-bit genotype encoding (repro.encoding.genotypes)."""

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st
from hypothesis.extra import numpy as hnp

from repro.encoding.genotypes import (
    GENOS_PER_WORD,
    GenotypeMatrix,
    MISSING,
    genotypes_from_haplotypes,
    words_for_individuals,
)

GENOS = hnp.arrays(
    dtype=np.int8,
    shape=st.tuples(
        st.integers(min_value=1, max_value=70),
        st.integers(min_value=1, max_value=12),
    ),
    elements=st.sampled_from([0, 1, 2, MISSING]),
)


class TestRoundtrip:
    @given(dense=GENOS)
    @settings(max_examples=40)
    def test_roundtrip(self, dense):
        gm = GenotypeMatrix.from_dense(dense)
        np.testing.assert_array_equal(gm.to_dense(), dense)

    def test_exact_word_boundary(self):
        dense = np.full((GENOS_PER_WORD * 2, 3), 2, dtype=np.int8)
        gm = GenotypeMatrix.from_dense(dense)
        assert gm.n_words == 2
        np.testing.assert_array_equal(gm.to_dense(), dense)

    def test_rejects_bad_values(self):
        with pytest.raises(ValueError, match="invalid genotype"):
            GenotypeMatrix.from_dense(np.array([[3]], dtype=np.int8))

    def test_rejects_wrong_ndim(self):
        with pytest.raises(ValueError, match="2-D"):
            GenotypeMatrix.from_dense(np.zeros(4, dtype=np.int8))

    def test_shape_properties(self):
        gm = GenotypeMatrix.from_dense(np.zeros((33, 5), dtype=np.int8))
        assert gm.n_individuals == 33
        assert gm.n_variants == 5
        assert gm.n_words == 2
        assert gm.nbytes == 5 * 2 * 8
        assert "n_variants=5" in repr(gm)

    def test_construct_rejects_wrong_word_count(self):
        with pytest.raises(ValueError, match="expected"):
            GenotypeMatrix(words=np.zeros((2, 3), dtype=np.uint64), n_individuals=10)


class TestBitPlanes:
    @given(dense=GENOS)
    @settings(max_examples=40)
    def test_high_bits_mark_carriers(self, dense):
        gm = GenotypeMatrix.from_dense(dense)
        high = gm.high_bits()
        counts = np.bitwise_count(high).sum(axis=1)
        expected = ((dense == 1) | (dense == 2)).sum(axis=0)
        np.testing.assert_array_equal(counts, expected)

    @given(dense=GENOS)
    @settings(max_examples=40)
    def test_low_bits_mark_missing_or_homalt(self, dense):
        gm = GenotypeMatrix.from_dense(dense)
        low = gm.low_bits()
        counts = np.bitwise_count(low).sum(axis=1)
        expected = ((dense == MISSING) | (dense == 2)).sum(axis=0)
        np.testing.assert_array_equal(counts, expected)

    @given(dense=GENOS)
    @settings(max_examples=40)
    def test_plane_bit_positions(self, dense):
        """Bit j of the compacted plane corresponds to individual j."""
        gm = GenotypeMatrix.from_dense(dense)
        high = gm.high_bits()
        n, m = dense.shape
        for variant in range(min(m, 3)):
            for ind in range(min(n, 70)):
                word, bit = divmod(ind, 64)
                got = bool((high[variant, word] >> np.uint64(bit)) & np.uint64(1))
                assert got == (dense[ind, variant] in (1, 2))

    def test_plane_width_matches_bitmatrix_width(self):
        gm = GenotypeMatrix.from_dense(np.zeros((130, 2), dtype=np.int8))
        assert gm.high_bits().shape == (2, (130 + 63) // 64)


class TestWordsForIndividuals:
    @pytest.mark.parametrize(
        "n,expected", [(0, 0), (1, 1), (32, 1), (33, 2), (64, 2), (65, 3)]
    )
    def test_values(self, n, expected):
        assert words_for_individuals(n) == expected

    def test_rejects_negative(self):
        with pytest.raises(ValueError):
            words_for_individuals(-5)


class TestGenotypesFromHaplotypes:
    def test_pairs_consecutive_rows(self):
        haps = np.array([[0, 1], [1, 1], [0, 0], [1, 0]], dtype=np.uint8)
        np.testing.assert_array_equal(
            genotypes_from_haplotypes(haps), [[1, 2], [1, 0]]
        )

    @given(
        haps=hnp.arrays(
            dtype=np.uint8,
            shape=st.tuples(
                st.integers(min_value=1, max_value=20).map(lambda x: 2 * x),
                st.integers(min_value=1, max_value=10),
            ),
            elements=st.integers(min_value=0, max_value=1),
        )
    )
    @settings(max_examples=30)
    def test_dosage_sum(self, haps):
        genos = genotypes_from_haplotypes(haps)
        np.testing.assert_array_equal(
            genos.sum(axis=0), haps.sum(axis=0)
        )
        assert genos.min() >= 0 and genos.max() <= 2

    def test_rejects_odd_rows(self):
        with pytest.raises(ValueError, match="even number"):
            genotypes_from_haplotypes(np.zeros((3, 2), dtype=np.uint8))

    def test_rejects_non_binary(self):
        with pytest.raises(ValueError, match="binary"):
            genotypes_from_haplotypes(np.full((2, 2), 2, dtype=np.uint8))

    def test_rejects_wrong_ndim(self):
        with pytest.raises(ValueError, match="2-D"):
            genotypes_from_haplotypes(np.zeros(4, dtype=np.uint8))
