"""Tests for GEMM-accelerated sweep scans (repro.analysis.sweeps)."""

import numpy as np
import pytest

from repro.analysis.sweeps import SweepScanResult, sweep_scan
from repro.baselines.omegaplus import omegaplus_scan
from repro.simulate.wrightfisher import simulate_sweep


class TestSweepScan:
    def test_agrees_with_omegaplus_baseline(self, rng):
        panel = rng.integers(0, 2, size=(60, 24)).astype(np.uint8)
        ours = sweep_scan(panel, grid_size=5, max_window=10)
        baseline = omegaplus_scan(panel, grid_size=5, max_window=10)
        np.testing.assert_allclose(ours.omegas, baseline.omegas, equal_nan=True)
        np.testing.assert_array_equal(ours.best_splits, baseline.best_splits)

    def test_detects_simulated_sweep(self):
        """The maximizing ω split sits near the selected site on sweep data."""
        rng = np.random.default_rng(1)
        result = simulate_sweep(
            80, 81, pop_size=200, burn_in=400, selection=1.0,
            mut_rate=1e-3, recomb_rate=8e-3, rng=rng,
        )
        scan = sweep_scan(
            result.haplotypes, result.positions, grid_size=9, max_window=60
        )
        best_split = scan.best_splits[int(np.argmax(scan.omegas))]
        split_position = result.positions[best_split]
        span = result.positions[-1] - result.positions[0]
        assert abs(split_position - result.selected_position) <= span * 0.25
        assert scan.peak_omega > 1.0

    def test_candidate_regions_threshold(self):
        scan = SweepScanResult(
            grid=np.arange(6, dtype=float),
            omegas=np.array([0.1, 5.0, 6.0, 0.2, 7.0, 0.1]),
            best_splits=np.zeros(6, dtype=np.int64),
            threshold=1.0,
        )
        assert scan.candidate_regions() == [(1.0, 2.0), (4.0, 4.0)]

    def test_candidate_region_extends_to_end(self):
        scan = SweepScanResult(
            grid=np.arange(4, dtype=float),
            omegas=np.array([0.0, 0.0, 5.0, 6.0]),
            best_splits=np.zeros(4, dtype=np.int64),
            threshold=1.0,
        )
        assert scan.candidate_regions() == [(2.0, 3.0)]

    def test_default_threshold_is_95th_percentile(self, rng):
        panel = rng.integers(0, 2, size=(50, 20)).astype(np.uint8)
        scan = sweep_scan(panel, grid_size=8, max_window=10)
        finite = scan.omegas[np.isfinite(scan.omegas)]
        assert scan.threshold == pytest.approx(np.percentile(finite, 95.0))

    def test_peak_properties(self, rng):
        panel = rng.integers(0, 2, size=(50, 20)).astype(np.uint8)
        scan = sweep_scan(panel, grid_size=6, max_window=10)
        assert scan.peak_omega == np.max(scan.omegas)
        assert scan.peak_position in scan.grid
