"""Tests for haplotype-block partitioning (repro.analysis.haplotype_blocks)."""

import numpy as np
import pytest

from repro.analysis.haplotype_blocks import HaplotypeBlock, find_haplotype_blocks
from repro.core.windowed import banded_ld


def make_block_panel(rng, block_sizes, n_samples=300, noise=0.02):
    """Panel of near-duplicate SNP runs separated by independent SNPs."""
    cols = []
    boundaries = []
    for size in block_sizes:
        base = rng.integers(0, 2, n_samples).astype(np.uint8)
        start = len(cols)
        for _ in range(size):
            copy = base.copy()
            flip = rng.random(n_samples) < noise
            copy[flip] ^= 1
            cols.append(copy)
        boundaries.append((start, len(cols)))
        # Independent spacer SNP between blocks.
        cols.append(rng.integers(0, 2, n_samples).astype(np.uint8))
    return np.stack(cols, axis=1), boundaries


class TestFindHaplotypeBlocks:
    def test_recovers_planted_blocks(self, rng):
        panel, truth = make_block_panel(rng, [5, 4, 6])
        blocks = find_haplotype_blocks(
            panel, window=20, r2_threshold=0.5, min_fraction=0.8
        )
        assert len(blocks) == 3
        for block, (start, stop) in zip(blocks, truth):
            assert block.start == start
            assert block.stop == stop
            assert block.mean_r2 > 0.7

    def test_independent_panel_has_no_blocks(self, rng):
        panel = rng.integers(0, 2, size=(400, 30)).astype(np.uint8)
        blocks = find_haplotype_blocks(
            panel, window=10, r2_threshold=0.5, min_fraction=0.8
        )
        assert blocks == []

    def test_min_block_size_filter(self, rng):
        panel, _ = make_block_panel(rng, [2, 8])
        blocks = find_haplotype_blocks(
            panel, window=20, r2_threshold=0.5, min_fraction=0.8,
            min_block_snps=4,
        )
        assert len(blocks) == 1
        assert blocks[0].n_snps == 8

    def test_blocks_do_not_overlap(self, rng):
        panel, _ = make_block_panel(rng, [4, 4, 4, 4])
        blocks = find_haplotype_blocks(panel, window=20, r2_threshold=0.5)
        for prev, cur in zip(blocks, blocks[1:]):
            assert prev.stop <= cur.start

    def test_accepts_precomputed_band(self, rng):
        panel, _ = make_block_panel(rng, [5, 5])
        band = banded_ld(panel, window=20)
        a = find_haplotype_blocks(panel, window=20, band=band)
        b = find_haplotype_blocks(panel, window=20)
        assert [(x.start, x.stop) for x in a] == [(x.start, x.stop) for x in b]

    def test_rejects_mismatched_band(self, rng):
        panel, _ = make_block_panel(rng, [5])
        band = banded_ld(panel, window=3, stat="D")
        with pytest.raises(ValueError, match="r2 with window"):
            find_haplotype_blocks(panel, window=10, band=band)

    def test_parameter_validation(self, rng):
        panel = rng.integers(0, 2, size=(50, 8)).astype(np.uint8)
        with pytest.raises(ValueError, match="r2_threshold"):
            find_haplotype_blocks(panel, r2_threshold=0.0)
        with pytest.raises(ValueError, match="min_fraction"):
            find_haplotype_blocks(panel, min_fraction=1.5)

    def test_block_dataclass(self):
        block = HaplotypeBlock(start=3, stop=9, mean_r2=0.8)
        assert block.n_snps == 6
