"""Property tests for the machine model's structural sanity.

These pin the *monotonicity* and *consistency* properties the paper's
arguments rely on, across randomized shapes: more work never takes fewer
cycles, more issue resources never hurt, symmetric traversal never exceeds
the full one, the GPU roofline respects both roofs.
"""

import numpy as np
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.core.blocking import MICRO_BLOCKING
from repro.core.gemm import gemm_operation_counts
from repro.machine.cpu import CoreModel
from repro.machine.gpu import GpuSpec, estimate_ld_gpu
from repro.machine.isa import AVX2, SCALAR64
from repro.machine.perfmodel import estimate_gemm_performance

SHAPES = st.tuples(
    st.integers(min_value=1, max_value=600),
    st.integers(min_value=1, max_value=600),
    st.integers(min_value=1, max_value=400),
)


@given(shape=SHAPES)
@settings(max_examples=40, deadline=None)
def test_cycles_monotone_in_k(shape):
    m, n, k = shape
    a = estimate_gemm_performance(m, n, k, params=MICRO_BLOCKING)
    b = estimate_gemm_performance(m, n, k + 16, params=MICRO_BLOCKING)
    assert b.cycles > a.cycles
    assert b.total_ops > a.total_ops


@given(shape=SHAPES)
@settings(max_examples=40, deadline=None)
def test_symmetric_never_exceeds_full(shape):
    m, _n, k = shape
    full = gemm_operation_counts(m, m, k, MICRO_BLOCKING)
    tri = gemm_operation_counts(m, m, k, MICRO_BLOCKING, symmetric=True)
    assert tri.total_ops <= full.total_ops
    assert tri.kernel_calls <= full.kernel_calls
    assert tri.a_pack_words <= full.a_pack_words


@given(shape=SHAPES)
@settings(max_examples=40, deadline=None)
def test_percent_of_peak_bounded(shape):
    m, n, k = shape
    est = estimate_gemm_performance(m, n, k, params=MICRO_BLOCKING)
    assert 0.0 < est.percent_of_peak <= 100.0


@given(
    ops=st.floats(min_value=1.0, max_value=1e9),
    extra_ports=st.integers(min_value=1, max_value=4),
)
@settings(max_examples=40)
def test_more_alu_ports_never_slower(ops, extra_ports):
    narrow = CoreModel(alu_ports=1)
    wide = CoreModel(alu_ports=1 + extra_ports)
    for simd in (SCALAR64, AVX2, AVX2.with_hw_popcount()):
        assert wide.compute_cycles(ops, ops, ops, simd) <= narrow.compute_cycles(
            ops, ops, ops, simd
        )


@given(
    m=st.integers(min_value=64, max_value=4096),
    k=st.integers(min_value=1, max_value=2000),
    bw_factor=st.floats(min_value=1.1, max_value=10.0),
)
@settings(max_examples=40, deadline=None)
def test_gpu_more_bandwidth_never_slower(m, k, bw_factor):
    base = GpuSpec("base", 8, 16, 1e9, 1e11)
    fast = GpuSpec("fast", 8, 16, 1e9, 1e11 * bw_factor)
    a = estimate_ld_gpu(m, m, k, gpu=base)
    b = estimate_ld_gpu(m, m, k, gpu=fast)
    assert b.seconds <= a.seconds + 1e-12
    assert np.isclose(b.compute_seconds, a.compute_seconds)


@given(shape=SHAPES)
@settings(max_examples=40, deadline=None)
def test_gpu_seconds_equals_binding_roof(shape):
    m, n, k = shape
    est = estimate_ld_gpu(m, n, k)
    assert est.seconds == max(est.compute_seconds, est.memory_seconds)
    assert est.bound in ("compute", "memory")
