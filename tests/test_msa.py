"""Tests for the reads → MSA → SNP-calling pipeline (repro.simulate.msa)."""

import numpy as np
import pytest

from repro.simulate.msa import simulate_msa_pipeline


class TestPipeline:
    def test_outputs_are_consistent(self, rng):
        result = simulate_msa_pipeline(20, 400, rng=rng)
        assert result.matrix.n_snps == result.mask.n_snps == result.positions.size
        assert result.matrix.n_samples == result.mask.n_samples == 20
        assert result.consensus.shape == (20, 400)
        # Data bits only where the mask marks a valid call.
        data = result.matrix.to_dense()
        valid = result.mask.bits.to_dense()
        assert not np.any(data & ~valid)

    def test_perfect_sequencing_recovers_truth(self, rng):
        result = simulate_msa_pipeline(
            25, 500, coverage=3, error_rate=0.0, missing_rate=0.0, rng=rng
        )
        assert result.genotype_error_rate == 0.0
        np.testing.assert_array_equal(result.matrix.to_dense(), result.true_matrix)
        # No missing data: the mask is all-valid.
        assert np.all(result.mask.bits.to_dense() == 1)

    def test_errors_increase_with_error_rate(self):
        low = simulate_msa_pipeline(
            30, 600, coverage=3, error_rate=0.001, missing_rate=0.0,
            rng=np.random.default_rng(1),
        )
        high = simulate_msa_pipeline(
            30, 600, coverage=3, error_rate=0.2, missing_rate=0.0,
            rng=np.random.default_rng(1),
        )
        assert high.genotype_error_rate > low.genotype_error_rate

    def test_coverage_suppresses_errors(self):
        thin = simulate_msa_pipeline(
            30, 600, coverage=1, error_rate=0.1, missing_rate=0.0,
            rng=np.random.default_rng(2),
        )
        deep = simulate_msa_pipeline(
            30, 600, coverage=15, error_rate=0.1, missing_rate=0.0,
            rng=np.random.default_rng(2),
        )
        assert deep.genotype_error_rate < thin.genotype_error_rate

    def test_missing_rate_creates_gaps(self):
        result = simulate_msa_pipeline(
            20, 400, missing_rate=0.3, error_rate=0.0,
            rng=np.random.default_rng(3),
        )
        gap_fraction = (result.consensus == "-").mean()
        assert 0.2 < gap_fraction < 0.45

    def test_called_snps_segregate(self, rng):
        result = simulate_msa_pipeline(20, 500, rng=rng)
        data = result.matrix.to_dense()
        valid = result.mask.bits.to_dense().astype(bool)
        for col in range(result.n_snps):
            called = valid[:, col]
            states = data[called, col]
            assert states.min() == 0 and states.max() == 1

    def test_gap_aware_ld_runs_on_pipeline_output(self, rng):
        """End-to-end: pipeline output feeds the masked LD path directly."""
        from repro.analysis.gaps import masked_ld_matrix

        result = simulate_msa_pipeline(30, 300, missing_rate=0.1, rng=rng)
        if result.n_snps >= 2:
            r2 = masked_ld_matrix(result.matrix, result.mask)
            assert r2.shape == (result.n_snps, result.n_snps)

    def test_parameter_validation(self, rng):
        with pytest.raises(ValueError, match="error_rate"):
            simulate_msa_pipeline(5, 100, error_rate=0.7, rng=rng)
        with pytest.raises(ValueError, match="missing_rate"):
            simulate_msa_pipeline(5, 100, missing_rate=1.0, rng=rng)
        with pytest.raises(ValueError, match="coverage"):
            simulate_msa_pipeline(5, 100, coverage=0, rng=rng)
