"""Out-of-core panel streaming: store format, prefetcher, crash/resume.

The acceptance property of the out-of-core mode: an LD sweep over a
packed panel several times larger than the configured memory budget
completes within that budget, produces a bit-identical r² matrix to the
in-core engine, resumes after a mid-sweep crash from the manifest, and
attributes its disk time (``io.prefetch`` / ``io.wait`` spans,
``prefetch.*`` metrics) instead of hiding it inside "compute".
"""

from __future__ import annotations

import numpy as np
import pytest

from repro.core.engine import TileTask, enumerate_tiles, run_engine
from repro.core.prefetch import (
    PanelPrefetcher,
    WarmReader,
    min_memory_budget,
    order_panel_major,
    plan_windows,
)
from repro.core.streaming import NpyMemmapSink, stream_ld_blocks
from repro.encoding.bitmatrix import BitMatrix
from repro.faults import FaultPlan, FaultSpec, InjectedCrash
from repro.io.panelstore import PANEL_MAGIC, PanelStore, pack_panel
from repro.observe import MetricsRecorder, SpanProfiler

BLOCK = 64


@pytest.fixture(scope="module")
def dense_panel():
    rng = np.random.default_rng(0x00C)
    return (rng.random((96, 700)) < 0.3).astype(np.uint8)


@pytest.fixture(scope="module")
def packed(dense_panel):
    return BitMatrix.from_dense(dense_panel)


@pytest.fixture(scope="module")
def store_path(packed, tmp_path_factory):
    path = tmp_path_factory.mktemp("panelstore") / "panel.pnl"
    pack_panel(path, packed).close()
    return path


@pytest.fixture(scope="module")
def clean_matrix(packed, tmp_path_factory):
    path = tmp_path_factory.mktemp("ooc-ref") / "clean.npy"
    with NpyMemmapSink(path, packed.n_snps) as sink:
        report = run_engine(packed, sink, engine="serial", block_snps=BLOCK)
    assert report.complete
    return np.load(path)


def _quarter_budget(path) -> int:
    """A budget ~4x smaller than the panel (never below the floor)."""
    with PanelStore.open(path) as store:
        return max(
            min_memory_budget(BLOCK, store.row_nbytes), store.nbytes // 4
        )


class TestPanelStore:
    def test_round_trip(self, packed, tmp_path):
        path = tmp_path / "p.pnl"
        with pack_panel(path, packed) as store:
            assert store.n_snps == packed.n_snps
            assert store.n_words == packed.n_words
            assert store.n_samples == packed.n_samples
            np.testing.assert_array_equal(store.words, packed.words)
            np.testing.assert_array_equal(
                store.freqs, packed.allele_frequencies()
            )
            np.testing.assert_array_equal(
                store.to_bitmatrix().words, packed.words
            )
            assert store.verify()

    def test_read_rows_copies(self, packed, tmp_path):
        with pack_panel(tmp_path / "p.pnl", packed) as store:
            rows = store.read_rows(10, 74)
            np.testing.assert_array_equal(rows, packed.words[10:74])
            assert rows.base is None or rows.base is not store.words
            out = np.empty((64, store.n_words), dtype=np.uint64)
            got = store.read_rows(10, 74, out=out)
            np.testing.assert_array_equal(got, packed.words[10:74])

    def test_digest_is_content_addressed(self, packed, tmp_path):
        with pack_panel(tmp_path / "a.pnl", packed) as a, \
                pack_panel(tmp_path / "b.pnl", packed) as b:
            assert a.content_digest == b.content_digest
        other = BitMatrix.from_dense(
            np.zeros((4, 8), dtype=np.uint8) + np.eye(4, 8, dtype=np.uint8)
        )
        with pack_panel(tmp_path / "c.pnl", other) as c:
            assert c.content_digest != a.content_digest

    def test_open_rejects_bad_magic(self, tmp_path):
        path = tmp_path / "bad.pnl"
        path.write_bytes(b"NOTAPANEL" + b"\x00" * 64)
        with pytest.raises(ValueError, match="magic"):
            PanelStore.open(path)

    def test_open_rejects_truncated_words(self, packed, tmp_path):
        path = tmp_path / "trunc.pnl"
        pack_panel(path, packed).close()
        data = path.read_bytes()
        path.write_bytes(data[: len(data) - 16])
        with pytest.raises(ValueError, match="truncated|size"):
            PanelStore.open(path)

    def test_verify_catches_corruption(self, packed, tmp_path):
        path = tmp_path / "corrupt.pnl"
        pack_panel(path, packed).close()
        data = bytearray(path.read_bytes())
        data[-1] ^= 0xFF  # flip bits in the last words byte
        path.write_bytes(bytes(data))
        with PanelStore.open(path) as store:
            assert not store.verify()

    def test_pack_is_atomic(self, packed, tmp_path):
        path = tmp_path / "atomic.pnl"
        pack_panel(path, packed).close()
        assert not (tmp_path / "atomic.pnl.packing").exists()
        assert path.read_bytes()[: len(PANEL_MAGIC)] == PANEL_MAGIC

    def test_create_rejects_zero_samples(self, tmp_path):
        empty = BitMatrix.zeros(0, 4)
        with pytest.raises(ValueError, match="zero samples"):
            pack_panel(tmp_path / "z.pnl", empty)


class TestWindowPlanning:
    def test_budget_floor_raises(self):
        floor = min_memory_budget(BLOCK, 16)
        with pytest.raises(ValueError, match="memory budget"):
            plan_windows(700, BLOCK, row_nbytes=16, memory_budget=floor - 1)
        plan_windows(700, BLOCK, row_nbytes=16, memory_budget=floor)

    def test_windows_tile_the_panel(self):
        windows, window_rows = plan_windows(
            700, BLOCK, row_nbytes=16, memory_budget=4096
        )
        assert window_rows % BLOCK == 0
        assert windows[0].start == 0
        assert windows[-1].stop == 700
        for prev, cur in zip(windows, windows[1:]):
            assert cur.start == prev.stop
        # Target-resident windows fit the budget.
        assert 4 * window_rows * 16 <= 4096 or window_rows == BLOCK

    def test_panel_major_order_consumes_window_pairs(self):
        tiles = enumerate_tiles(512, BLOCK)
        ordered = order_panel_major(tiles, 2 * BLOCK)
        pairs = [
            (t.i0 // (2 * BLOCK), t.j0 // (2 * BLOCK)) for t in ordered
        ]
        # Each window pair appears as one contiguous run.
        seen: list[tuple[int, int]] = []
        for pair in pairs:
            if not seen or seen[-1] != pair:
                assert pair not in seen, f"window pair {pair} revisited"
                seen.append(pair)

    def test_order_rejects_straddling_tiles(self):
        bad = [TileTask(i0=96, i1=160, j0=0, j1=64)]
        with pytest.raises(ValueError, match="straddles"):
            order_panel_major(bad, 128)


class TestPrefetcherDirect:
    def test_budget_is_respected_and_views_are_exact(self, store_path):
        budget = _quarter_budget(store_path)
        with PanelStore.open(store_path) as store:
            tiles = enumerate_tiles(store.n_snps, BLOCK)
            ref = np.array(store.words)
            with PanelPrefetcher(
                store, tiles, block_snps=BLOCK, memory_budget=budget
            ) as pf:
                for tile in pf.order:
                    view = pf.acquire(tile)
                    np.testing.assert_array_equal(
                        view[tile.i0 : tile.i1], ref[tile.i0 : tile.i1]
                    )
                    np.testing.assert_array_equal(
                        view[tile.j0 : tile.j1], ref[tile.j0 : tile.j1]
                    )
                    pf.release(tile)
                assert pf.peak_resident_bytes <= budget
                assert pf.bytes_read >= store.nbytes  # every window read
                assert pf.peak_resident_bytes < store.nbytes

    def test_view_rejects_nonresident_rows(self, store_path):
        budget = _quarter_budget(store_path)
        with PanelStore.open(store_path) as store:
            tiles = enumerate_tiles(store.n_snps, BLOCK)
            with PanelPrefetcher(
                store, tiles, block_snps=BLOCK, memory_budget=budget
            ) as pf:
                tile = pf.order[0]
                view = pf.acquire(tile)
                with pytest.raises(IndexError, match="not resident"):
                    view[store.n_snps - 1 : store.n_snps]
                pf.release(tile)

    def test_acquire_after_close_raises(self, store_path):
        with PanelStore.open(store_path) as store:
            tiles = enumerate_tiles(store.n_snps, BLOCK)
            pf = PanelPrefetcher(
                store,
                tiles,
                block_snps=BLOCK,
                memory_budget=_quarter_budget(store_path),
            )
            pf.close()
            with pytest.raises(RuntimeError, match="closed"):
                pf.acquire(tiles[0])

    def test_warm_reader_reads_every_window_once(self, store_path):
        with PanelStore.open(store_path) as store:
            tiles = enumerate_tiles(store.n_snps, BLOCK)
            with WarmReader(
                store,
                tiles,
                block_snps=BLOCK,
                memory_budget=_quarter_budget(store_path),
            ) as warm:
                for _ in warm.order:
                    warm.advance()
                deadline = 200
                while warm.bytes_read < store.nbytes and deadline:
                    deadline -= 1
                    import time

                    time.sleep(0.01)
            assert warm.bytes_read == store.nbytes


class TestOutOfCoreEngines:
    @pytest.mark.parametrize("engine", ["serial", "threads"])
    def test_pull_mode_is_bit_identical(
        self, engine, store_path, clean_matrix, tmp_path
    ):
        budget = _quarter_budget(store_path)
        out = tmp_path / "ooc.npy"
        with NpyMemmapSink(out, clean_matrix.shape[0]) as sink:
            report = run_engine(
                str(store_path), sink, engine=engine, block_snps=BLOCK,
                n_workers=3, manifest_path=tmp_path / "ooc.manifest",
                memory_budget=budget,
            )
        assert report.complete
        np.testing.assert_array_equal(np.load(out), clean_matrix)

    def test_processes_mode_is_bit_identical(
        self, store_path, clean_matrix, tmp_path
    ):
        out = tmp_path / "ooc.npy"
        with NpyMemmapSink(out, clean_matrix.shape[0]) as sink:
            report = run_engine(
                str(store_path), sink, engine="processes", block_snps=BLOCK,
                n_workers=2, manifest_path=tmp_path / "ooc.manifest",
                memory_budget=_quarter_budget(store_path),
            )
        assert report.complete
        assert not report.degraded
        np.testing.assert_array_equal(np.load(out), clean_matrix)

    def test_store_instance_and_unbudgeted_store_work(
        self, store_path, clean_matrix, tmp_path
    ):
        with PanelStore.open(store_path) as store:
            out = tmp_path / "inst.npy"
            with NpyMemmapSink(out, clean_matrix.shape[0]) as sink:
                run_engine(
                    store, sink, engine="serial", block_snps=BLOCK,
                    manifest_path=tmp_path / "inst.manifest",
                )
            np.testing.assert_array_equal(np.load(out), clean_matrix)
            # The caller-supplied store must survive run_engine.
            assert store.words is not None

    def test_budget_requires_store(self, packed, tmp_path):
        with NpyMemmapSink(tmp_path / "x.npy", packed.n_snps) as sink:
            with pytest.raises(ValueError, match="panel-store|panel store"):
                run_engine(
                    packed, sink, engine="serial", block_snps=BLOCK,
                    memory_budget=1 << 20,
                )

    def test_stream_ld_blocks_over_store(self, store_path, clean_matrix):
        n = clean_matrix.shape[0]
        assembled = np.array(clean_matrix)  # start from mirrored oracle
        assembled[np.tril_indices(n)] = np.nan

        def sink(i0, j0, block):
            assembled[i0 : i0 + block.shape[0], j0 : j0 + block.shape[1]] = (
                block
            )

        stream_ld_blocks(
            str(store_path), sink, block_snps=BLOCK,
            memory_budget=_quarter_budget(store_path),
        )
        il = np.tril_indices(n)
        np.testing.assert_array_equal(
            np.nan_to_num(assembled[il]), np.nan_to_num(clean_matrix[il])
        )

    def test_stream_budget_requires_store(self, packed):
        with pytest.raises(ValueError, match="memory_budget"):
            stream_ld_blocks(
                packed, lambda *a: None, block_snps=BLOCK,
                memory_budget=1 << 20,
            )


class TestCrashResume:
    def test_mid_panel_crash_resumes_bit_identically(
        self, store_path, clean_matrix, tmp_path
    ):
        """Kill the sweep mid-panel (torn manifest append), resume from
        the journal, and require bit-identity with the in-core oracle."""
        n = clean_matrix.shape[0]
        tiles = enumerate_tiles(n, BLOCK)
        victim = tiles[len(tiles) // 2].key
        plan = FaultPlan(
            seed=7,
            specs=(
                FaultSpec(site="manifest_append", action="torn", tile=victim),
            ),
        )
        out = tmp_path / "crash.npy"
        manifest = tmp_path / "crash.manifest"
        budget = _quarter_budget(store_path)
        with pytest.raises(InjectedCrash):
            with NpyMemmapSink(out, n) as sink:
                run_engine(
                    str(store_path), sink, engine="serial", block_snps=BLOCK,
                    manifest_path=manifest, memory_budget=budget, faults=plan,
                )
        # Resume fault-free: journaled tiles skip, the rest recompute.
        with NpyMemmapSink(out, n, mode="r+") as sink:
            report = run_engine(
                str(store_path), sink, engine="serial", block_snps=BLOCK,
                manifest_path=manifest, resume=True, memory_budget=budget,
            )
        assert report.complete
        assert report.n_skipped > 0
        np.testing.assert_array_equal(np.load(out), clean_matrix)

    def test_prefetch_chaos_is_bit_identical(
        self, store_path, clean_matrix, tmp_path
    ):
        """Transient prefetch failures and slow reads never change r²."""
        plan = FaultPlan(
            seed=11,
            specs=(
                FaultSpec(site="prefetch", action="raise", rate=0.3,
                          attempts_below=2),
                FaultSpec(site="prefetch", action="delay", rate=0.3,
                          delay_seconds=0.005),
            ),
        )
        out = tmp_path / "chaos.npy"
        n = clean_matrix.shape[0]
        with NpyMemmapSink(out, n) as sink:
            report = run_engine(
                str(store_path), sink, engine="threads", block_snps=BLOCK,
                n_workers=3, manifest_path=tmp_path / "chaos.manifest",
                memory_budget=_quarter_budget(store_path), faults=plan,
            )
        assert report.complete
        np.testing.assert_array_equal(np.load(out), clean_matrix)

    def test_manifest_rejects_different_store(
        self, store_path, packed, tmp_path, dense_panel
    ):
        """A store manifest must not resume against different panel bytes."""
        other = BitMatrix.from_dense(dense_panel[:, ::-1].copy())
        other_path = tmp_path / "other.pnl"
        pack_panel(other_path, other).close()
        out = tmp_path / "m.npy"
        manifest = tmp_path / "m.manifest"
        with NpyMemmapSink(out, packed.n_snps) as sink:
            run_engine(
                str(store_path), sink, engine="serial", block_snps=BLOCK,
                manifest_path=manifest,
            )
        with NpyMemmapSink(out, packed.n_snps, mode="r+") as sink:
            with pytest.raises(ValueError, match="fingerprint"):
                run_engine(
                    str(other_path), sink, engine="serial", block_snps=BLOCK,
                    manifest_path=manifest, resume=True,
                )


class TestPrefetchAttribution:
    def test_spans_and_metrics_attribute_io(self, store_path, tmp_path):
        recorder = MetricsRecorder()
        profiler = SpanProfiler()
        out = tmp_path / "attr.npy"
        with PanelStore.open(store_path) as store:
            n = store.n_snps
        with NpyMemmapSink(out, n) as sink:
            run_engine(
                str(store_path), sink, engine="threads", block_snps=BLOCK,
                n_workers=2, manifest_path=tmp_path / "attr.manifest",
                memory_budget=_quarter_budget(store_path),
                recorder=recorder, profiler=profiler,
            )
        totals = profiler.totals()
        assert "io.prefetch" in totals and totals["io.prefetch"]["count"] > 0
        assert recorder.counters.get("prefetch.bytes_read", 0) > 0
        # The prefetch reads must run on the loader thread — that is the
        # overlap mechanism: disk time on repro-prefetch while the worker
        # threads run gemm spans concurrently.
        threads = {
            r.thread for r in profiler.records() if r.name == "io.prefetch"
        }
        assert any(t.startswith("repro-prefetch") for t in threads)

    def test_profile_payload_reports_io_phase(self, store_path, tmp_path):
        from repro.observe.report import build_profile_payload

        recorder = MetricsRecorder(keep_events=True)
        profiler = SpanProfiler()
        out = tmp_path / "prof.npy"
        with PanelStore.open(store_path) as store:
            n, k_words = store.n_snps, store.n_words
        import time as _time

        start = _time.perf_counter()
        with NpyMemmapSink(out, n) as sink:
            report = run_engine(
                str(store_path), sink, engine="serial", block_snps=BLOCK,
                manifest_path=tmp_path / "prof.manifest",
                memory_budget=_quarter_budget(store_path),
                recorder=recorder, profiler=profiler,
            )
        wall = _time.perf_counter() - start
        payload = build_profile_payload(
            recorder=recorder, profiler=profiler, report=report,
            wall_seconds=wall,
            workload={"n_snps": n, "k_words": k_words},
        )
        assert any(name.startswith("io.") for name in payload["phases"])

    def test_io_bound_anomaly_fires_on_heavy_stall(self):
        from repro.observe.report import _find_anomalies

        class _Report:
            n_retries = 0
            n_quarantined = 0
            degraded = False

        class _Profiler:
            n_dropped = 0

        anomalies = _find_anomalies(
            [], {"workers": []}, {}, _Report(), _Profiler(),
            stall_seconds=0.5, wall_seconds=1.0,
        )
        assert any(a["kind"] == "io_bound" for a in anomalies)
        quiet = _find_anomalies(
            [], {"workers": []}, {}, _Report(), _Profiler(),
            stall_seconds=0.001, wall_seconds=1.0,
        )
        assert not any(a["kind"] == "io_bound" for a in quiet)
