"""Tests for the cache-traffic model (repro.machine.cache)."""

import pytest

from repro.core.blocking import BlockingParams
from repro.core.gemm import gemm_operation_counts
from repro.machine.cache import (
    CacheHierarchy,
    CacheLevel,
    MemoryTraffic,
    charge_blocked_gemm,
)
from repro.machine.cpu import HASWELL

SMALL = BlockingParams(mc=4, nc=4, kc=4, mr=2, nr=2)


class TestCacheLevel:
    def test_validation(self):
        with pytest.raises(ValueError, match="size"):
            CacheLevel("L1", 0, 1.0)
        with pytest.raises(ValueError, match="bandwidth"):
            CacheLevel("L1", 1024, 0.0)


class TestCacheHierarchy:
    def test_rejects_shrinking_levels(self):
        l1 = CacheLevel("L1", 64 * 1024, 8.0)
        l2 = CacheLevel("L2", 32 * 1024, 4.0)
        l3 = CacheLevel("L3", 1 << 20, 2.0)
        with pytest.raises(ValueError, match="non-decreasing"):
            CacheHierarchy(l1=l1, l2=l2, l3=l3, dram_words_per_cycle=1.0)

    def test_rejects_bad_dram(self):
        l1 = CacheLevel("L1", 1024, 8.0)
        with pytest.raises(ValueError, match="DRAM"):
            CacheHierarchy(l1=l1, l2=l1, l3=l1, dram_words_per_cycle=0.0)


class TestStallCycles:
    def test_linear_in_traffic(self):
        hierarchy = HASWELL.caches
        t1 = MemoryTraffic(0, 100, 0, 0, 0)
        t2 = MemoryTraffic(0, 200, 0, 0, 0)
        assert t2.stall_cycles(hierarchy) == pytest.approx(
            2 * t1.stall_cycles(hierarchy)
        )

    def test_l1_traffic_is_free(self):
        hierarchy = HASWELL.caches
        assert MemoryTraffic(1e9, 0, 0, 0, 0).stall_cycles(hierarchy) == 0.0

    def test_stores_share_dram(self):
        hierarchy = HASWELL.caches
        loads = MemoryTraffic(0, 0, 0, 100, 0).stall_cycles(hierarchy)
        both = MemoryTraffic(0, 0, 0, 100, 100).stall_cycles(hierarchy)
        assert both == pytest.approx(2 * loads)


class TestChargeBlockedGemm:
    def test_well_blocked_charges(self):
        counts = gemm_operation_counts(16, 16, 8, SMALL)
        traffic = charge_blocked_gemm(
            counts, SMALL, HASWELL.caches, output_words=16 * 16
        )
        assert traffic.l1_words == counts.b_load_words
        assert traffic.l2_words == (
            counts.a_load_words + 2 * counts.c_update_words + counts.a_pack_words
        )
        assert traffic.l3_words == counts.b_pack_words
        assert traffic.dram_words == counts.a_pack_words + counts.b_pack_words
        assert traffic.store_words == 16 * 16

    def test_oversized_a_block_spills_to_l3(self):
        counts = gemm_operation_counts(16, 16, 8, SMALL)
        tiny_l2 = CacheHierarchy(
            l1=CacheLevel("L1", 16, 8.0),
            l2=CacheLevel("L2", 32, 4.0),
            l3=CacheLevel("L3", 1 << 30, 2.0),
            dram_words_per_cycle=1.0,
        )
        traffic = charge_blocked_gemm(counts, SMALL, tiny_l2)
        assert traffic.l3_words >= counts.a_load_words

    def test_oversized_b_panel_spills_to_dram(self):
        counts = gemm_operation_counts(16, 16, 8, SMALL)
        # SMALL's B panel is kc*nc*8 = 128 bytes; L3 of 100 forces the spill.
        tiny_l3 = CacheHierarchy(
            l1=CacheLevel("L1", 16, 8.0),
            l2=CacheLevel("L2", 64, 4.0),
            l3=CacheLevel("L3", 100, 2.0),
            dram_words_per_cycle=1.0,
        )
        traffic = charge_blocked_gemm(counts, SMALL, tiny_l3)
        well = charge_blocked_gemm(counts, SMALL, HASWELL.caches)
        assert traffic.dram_words > well.dram_words
