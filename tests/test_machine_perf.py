"""Tests for the performance model, SIMD analysis, and multicore scaling."""

import numpy as np
import pytest

from repro.core.blocking import MICRO_BLOCKING
from repro.machine.cpu import HASWELL, IVY_BRIDGE_2S
from repro.machine.isa import AVX2, AVX512, PRESETS, SCALAR64, SSE
from repro.machine.multicore import (
    ImplementationProfile,
    MulticoreModel,
    scaling_curve,
)
from repro.machine.perfmodel import (
    estimate_gemm_performance,
    estimate_gemm_phases,
)
from repro.machine.simd import analyze_simd_benefit


class TestPhaseEstimates:
    def test_non_mirror_phases_sum_to_aggregate_estimate(self):
        for shape in ((4096, 4096, 128), (1024, 2048, 32), (220, 220, 2)):
            m, n, k = shape
            aggregate = estimate_gemm_performance(m, n, k)
            phases = estimate_gemm_phases(m, n, k)
            total = sum(p.cycles for p in phases if p.name != "mirror")
            assert total == pytest.approx(aggregate.cycles, rel=1e-12), shape

    def test_phase_names_and_kinds(self):
        phases = {p.name: p for p in estimate_gemm_phases(
            4096, 4096, 128, symmetric=True
        )}
        assert set(phases) == {"pack_a", "pack_b", "plane_matmul",
                               "copy_out", "mirror", "overhead"}
        assert phases["pack_a"].kind == "memory"
        assert phases["pack_b"].kind == "memory"
        assert phases["copy_out"].kind == "memory"
        assert phases["overhead"].kind == "overhead"
        # At the paper's shapes the plane matmul is compute-bound.
        assert phases["plane_matmul"].kind == "compute"

    def test_mirror_only_for_symmetric(self):
        names = {p.name for p in estimate_gemm_phases(512, 512, 16)}
        assert "mirror" not in names
        names = {p.name for p in estimate_gemm_phases(
            512, 512, 16, symmetric=True
        )}
        assert "mirror" in names

    def test_seconds_match_cycles_at_clock(self):
        for phase in estimate_gemm_phases(1024, 1024, 64):
            assert phase.seconds == pytest.approx(
                phase.cycles / HASWELL.frequency_hz
            )
            assert phase.cycles >= 0


class TestPerfModel:
    def test_figure3_band(self):
        """The paper's headline: 84-90 % of scalar peak across the k sweep."""
        for k_samples in (2048, 4096, 8192, 16384, 25000):
            est = estimate_gemm_performance(4096, 4096, (k_samples + 63) // 64)
            assert 84.0 <= est.percent_of_peak <= 91.0

    def test_performance_rises_with_k(self):
        small = estimate_gemm_performance(4096, 4096, 32)
        large = estimate_gemm_performance(4096, 4096, 256)
        assert large.percent_of_peak > small.percent_of_peak

    def test_snp_count_agnostic(self):
        """Figure 3's second claim: %peak barely moves from 4096 to 16384 SNPs."""
        k = 128
        values = [
            estimate_gemm_performance(m, m, k).percent_of_peak
            for m in (4096, 8192, 16384)
        ]
        assert max(values) - min(values) < 2.0

    def test_cross_matrix_performance_consistent(self):
        """Figure 4: two-input GEMM stays in the same band."""
        est = estimate_gemm_performance(4096, 8192, 128)
        assert 84.0 <= est.percent_of_peak <= 91.0

    def test_symmetric_halves_time(self):
        full = estimate_gemm_performance(4096, 4096, 128)
        tri = estimate_gemm_performance(4096, 4096, 128, symmetric=True)
        assert tri.cycles < 0.6 * full.cycles

    def test_seconds_at_clock(self):
        est = estimate_gemm_performance(512, 512, 64)
        assert est.seconds == pytest.approx(est.cycles / 3.5e9)

    def test_simd_without_hw_popcount_is_slower(self):
        scalar = estimate_gemm_performance(1024, 1024, 64, simd=SCALAR64)
        simd = estimate_gemm_performance(1024, 1024, 64, simd=AVX2)
        assert simd.cycles > scalar.cycles

    def test_hw_popcount_speeds_up(self):
        scalar = estimate_gemm_performance(1024, 1024, 64, simd=SCALAR64)
        hw = estimate_gemm_performance(
            1024, 1024, 64, simd=AVX512.with_hw_popcount()
        )
        assert hw.cycles < scalar.cycles

    def test_custom_machine(self):
        est = estimate_gemm_performance(
            1024, 1024, 64, machine=IVY_BRIDGE_2S, params=MICRO_BLOCKING
        )
        assert est.seconds == pytest.approx(est.cycles / 2.1e9)


class TestSimdAnalysis:
    def test_no_benefit_theorem(self):
        """Section V: no real SIMD configuration beats scalar."""
        for analysis in analyze_simd_benefit(include_hw_popcount=False):
            assert analysis.speedup_vs_scalar <= 1.0 + 1e-12

    def test_hw_popcount_gives_v_speedup(self):
        results = {a.config.name: a for a in analyze_simd_benefit()}
        assert results["sse+hwpopcnt"].speedup_vs_scalar == pytest.approx(2.0)
        assert results["avx2+hwpopcnt"].speedup_vs_scalar == pytest.approx(4.0)
        assert results["avx512+hwpopcnt"].speedup_vs_scalar == pytest.approx(8.0)

    def test_increasing_gap_with_width(self):
        """The paper's 'diverging gap': attainable fraction of the vector
        peak strictly decreases as registers widen (without HW popcount)."""
        fractions = [
            a.fraction_of_vector_peak
            for a in analyze_simd_benefit(include_hw_popcount=False)
        ]
        assert fractions == sorted(fractions, reverse=True)
        assert fractions[0] == pytest.approx(1.0)
        assert fractions[-1] < 0.1  # AVX-512: below 10 % of its would-be peak

    def test_scalar_baseline_first(self):
        results = analyze_simd_benefit()
        assert results[0].config == SCALAR64
        assert results[0].speedup_vs_scalar == 1.0

    def test_custom_config_list(self):
        results = analyze_simd_benefit(configs=[SCALAR64, SSE])
        names = [a.config.name for a in results]
        assert names == ["scalar64", "sse", "sse+hwpopcnt"]


GEMM_PROFILE = ImplementationProfile("GEMM", utilization=0.88, bandwidth_cap=39.0)
PLINK_PROFILE = ImplementationProfile("PLINK", utilization=0.20, bandwidth_cap=9.5)
OMEGA_PROFILE = ImplementationProfile("OmegaPlus", utilization=0.45, bandwidth_cap=92.0)


class TestMulticore:
    @pytest.fixture
    def model(self):
        return MulticoreModel(machine=IVY_BRIDGE_2S)

    def test_single_thread_is_unity(self, model):
        for profile in (GEMM_PROFILE, PLINK_PROFILE, OMEGA_PROFILE):
            assert model.speedup(1, profile) == pytest.approx(1.0)

    def test_speedup_bounded_by_threads(self, model):
        for t in (2, 4, 8, 12):
            for profile in (GEMM_PROFILE, PLINK_PROFILE, OMEGA_PROFILE):
                assert model.speedup(t, profile) <= t + 1e-9

    def test_gemm_saturates_at_physical_cores(self, model):
        """Figure 5: GEMM throughput diminishes past 12 threads."""
        at_cores = model.speedup(12, GEMM_PROFILE)
        beyond = model.speedup(24, GEMM_PROFILE)
        assert beyond < at_cores

    def test_baselines_improve_past_physical_cores(self, model):
        """Figure 5: PLINK and OmegaPlus keep improving via SMT."""
        for profile in (PLINK_PROFILE, OMEGA_PROFILE):
            assert model.speedup(24, profile) > model.speedup(12, profile)

    def test_gemm_scales_better_than_plink_below_cores(self, model):
        """Tables I-III: GEMM's 12-thread speedup exceeds PLINK's."""
        assert model.speedup(12, GEMM_PROFILE) > model.speedup(12, PLINK_PROFILE)

    def test_oversubscription_penalty(self, model):
        hw_contexts = 12 * IVY_BRIDGE_2S.smt_per_core
        at_limit = model.speedup(hw_contexts, PLINK_PROFILE)
        over = model.speedup(hw_contexts + 8, PLINK_PROFILE)
        assert over < at_limit

    def test_sync_overhead_hurts_small_problems(self, model):
        noisy = ImplementationProfile(
            "GEMM-small", utilization=0.88, bandwidth_cap=39.0, sync_overhead=0.06
        )
        assert model.speedup(12, noisy) < model.speedup(12, GEMM_PROFILE)

    def test_time_at_inverts_speedup(self, model):
        t12 = model.time_at(12, GEMM_PROFILE, 48.0)
        assert t12 == pytest.approx(48.0 / model.speedup(12, GEMM_PROFILE))
        with pytest.raises(ValueError, match="positive"):
            model.time_at(2, GEMM_PROFILE, 0.0)

    def test_scaling_curve(self, model):
        curve = scaling_curve(model, OMEGA_PROFILE, 2.0, [1, 2, 4])
        assert curve[0] == pytest.approx(2.0)
        assert curve[2] > curve[1] > curve[0]
        with pytest.raises(ValueError, match="positive"):
            scaling_curve(model, OMEGA_PROFILE, 0.0, [1])

    def test_profile_validation(self):
        with pytest.raises(ValueError, match="utilization"):
            ImplementationProfile("x", utilization=0.0)
        with pytest.raises(ValueError, match="bandwidth"):
            ImplementationProfile("x", utilization=0.5, bandwidth_cap=0.0)
        with pytest.raises(ValueError, match="sync"):
            ImplementationProfile("x", utilization=0.5, sync_overhead=-0.1)

    def test_rejects_bad_thread_count(self, model):
        with pytest.raises(ValueError, match="n_threads"):
            model.issue_capacity(0, GEMM_PROFILE)

    def test_paper_table3_gemm_shape(self, model):
        """GEMM on dataset C: ~2x at 2 threads, ~9x at 12 (paper: 1.9/9.2)."""
        assert model.speedup(2, GEMM_PROFILE) == pytest.approx(1.92, abs=0.15)
        assert model.speedup(12, GEMM_PROFILE) == pytest.approx(9.2, abs=1.0)
