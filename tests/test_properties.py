"""Property-based invariance tests for the LD pipeline.

These pin down mathematical invariances of LD that any correct
implementation must satisfy, independent of the reference comparison:

- sample-permutation invariance (LD is a set statistic over samples);
- allele-relabeling invariance of r² (swapping ancestral/derived at any
  SNP cannot change squared correlation);
- duplicated SNPs are in complete LD (r² = 1);
- r² lies in [0, 1] wherever defined;
- blocked GEMM is exact integer arithmetic: results are identical for any
  blocking parameters and any kernel.
"""

import numpy as np
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.core.blocking import BlockingParams
from repro.core.gemm import popcount_gemm
from repro.core.ldmatrix import ld_matrix
from repro.encoding.bitmatrix import pack_bits

PANEL = st.tuples(
    st.integers(min_value=3, max_value=120),
    st.integers(min_value=2, max_value=12),
    st.integers(min_value=0, max_value=2**31),
).map(
    lambda args: np.random.default_rng(args[2]).integers(
        0, 2, size=(args[0], args[1])
    ).astype(np.uint8)
)

BLOCKINGS = st.tuples(
    st.sampled_from([1, 2, 3, 4]),   # mr
    st.sampled_from([1, 2, 3, 4]),   # nr
    st.integers(min_value=1, max_value=4),  # mc multiplier
    st.integers(min_value=1, max_value=4),  # nc multiplier
    st.integers(min_value=1, max_value=8),  # kc
).map(
    lambda t: BlockingParams(
        mc=t[0] * t[2], nc=t[1] * t[3], kc=t[4], mr=t[0], nr=t[1]
    )
)


@given(panel=PANEL, seed=st.integers(min_value=0, max_value=2**31))
@settings(max_examples=30, deadline=None)
def test_sample_permutation_invariance(panel, seed):
    rng = np.random.default_rng(seed)
    perm = rng.permutation(panel.shape[0])
    a = ld_matrix(panel, undefined=-1.0)
    b = ld_matrix(panel[perm], undefined=-1.0)
    np.testing.assert_allclose(a, b, atol=1e-12)


@given(panel=PANEL, seed=st.integers(min_value=0, max_value=2**31))
@settings(max_examples=30, deadline=None)
def test_allele_relabeling_invariance_of_r2(panel, seed):
    rng = np.random.default_rng(seed)
    flip = rng.integers(0, 2, size=panel.shape[1]).astype(np.uint8)
    relabeled = panel ^ flip[None, :]
    a = ld_matrix(panel, undefined=-1.0)
    b = ld_matrix(relabeled, undefined=-1.0)
    np.testing.assert_allclose(a, b, atol=1e-9)


@given(panel=PANEL)
@settings(max_examples=30, deadline=None)
def test_duplicated_snp_in_complete_ld(panel):
    doubled = np.concatenate([panel, panel[:, :1]], axis=1)
    r2 = ld_matrix(doubled)
    counts = panel[:, 0].sum()
    if 0 < counts < panel.shape[0]:  # polymorphic
        np.testing.assert_allclose(r2[0, -1], 1.0, atol=1e-9)
    else:
        assert np.isnan(r2[0, -1])


@given(panel=PANEL)
@settings(max_examples=30, deadline=None)
def test_r2_bounds(panel):
    r2 = ld_matrix(panel)
    finite = r2[~np.isnan(r2)]
    assert np.all(finite >= -1e-12)
    assert np.all(finite <= 1.0 + 1e-9)


@given(panel=PANEL)
@settings(max_examples=30, deadline=None)
def test_symmetry(panel):
    r2 = np.nan_to_num(ld_matrix(panel), nan=-1.0)
    np.testing.assert_allclose(r2, r2.T, atol=1e-12)


@given(panel=PANEL, params=BLOCKINGS)
@settings(max_examples=30, deadline=None)
def test_blocking_invariance(panel, params):
    """Any blocking produces bit-identical counts (integer arithmetic)."""
    words = pack_bits(panel)
    baseline = popcount_gemm(words, words)
    np.testing.assert_array_equal(
        popcount_gemm(words, words, params=params), baseline
    )


@given(panel=PANEL)
@settings(max_examples=10, deadline=None)
def test_kernel_invariance(panel):
    """Scalar reference kernel and numpy kernel are bit-identical."""
    words = pack_bits(panel)
    params = BlockingParams(mc=4, nc=4, kc=2, mr=2, nr=2)
    np.testing.assert_array_equal(
        popcount_gemm(words, words, params=params, kernel="scalar"),
        popcount_gemm(words, words, params=params, kernel="numpy"),
    )


@given(panel=PANEL)
@settings(max_examples=30, deadline=None)
def test_subsetting_consistency(panel):
    """LD of a SNP subset equals the corresponding submatrix."""
    full = ld_matrix(panel, undefined=-1.0)
    half = panel.shape[1] // 2
    sub = ld_matrix(panel[:, :half], undefined=-1.0) if half >= 1 else None
    if sub is not None:
        np.testing.assert_allclose(sub, full[:half, :half], atol=1e-12)
