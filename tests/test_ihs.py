"""Tests for the iHS statistic (repro.analysis.ihs)."""

import numpy as np
import pytest

from repro.analysis.ihs import ihs_scan, unstandardized_ihs


def make_partial_sweep_panel(rng, n=120, width=41, carriers=50):
    """Derived allele at the centre rides one long shared haplotype."""
    dense = rng.integers(0, 2, size=(n, width)).astype(np.uint8)
    core = width // 2
    swept = rng.integers(0, 2, width).astype(np.uint8)
    chosen = rng.choice(n, size=carriers, replace=False)
    dense[chosen] = swept
    dense[:, core] = 0
    dense[chosen, core] = 1
    return dense, core


class TestUnstandardizedIhs:
    def test_negative_for_swept_derived_allele(self, rng):
        dense, core = make_partial_sweep_panel(rng)
        score = unstandardized_ihs(dense, core, max_distance=15)
        # Long derived haplotype => iHH_D >> iHH_A => ln(A/D) < 0.
        assert score < -0.5

    def test_symmetric_alleles_near_zero(self, rng):
        """On exchangeable random data, uiHS has no systematic sign."""
        values = []
        for seed in range(12):
            local = np.random.default_rng(seed)
            dense = local.integers(0, 2, size=(100, 31)).astype(np.uint8)
            # Force the core near 50 % so both classes are large.
            dense[:50, 15] = 1
            dense[50:, 15] = 0
            score = unstandardized_ihs(dense, 15, max_distance=10)
            if not np.isnan(score):
                values.append(score)
        assert abs(np.mean(values)) < 0.5

    def test_undefined_for_singleton_core(self, rng):
        dense = rng.integers(0, 2, size=(40, 11)).astype(np.uint8)
        dense[:, 5] = 0
        dense[0, 5] = 1  # one derived carrier
        assert np.isnan(unstandardized_ihs(dense, 5, max_distance=4))


class TestIhsScan:
    def test_scan_flags_the_sweep(self, rng):
        dense, core = make_partial_sweep_panel(rng, n=150)
        result = ihs_scan(dense, maf_min=0.05, max_distance=15, n_freq_bins=4)
        assert core in result.snps
        idx = int(np.flatnonzero(result.snps == core)[0])
        defined = result.ihs[~np.isnan(result.ihs)]
        if not np.isnan(result.ihs[idx]) and defined.size >= 10:
            # The swept core should sit in the negative tail.
            assert result.ihs[idx] < np.percentile(defined, 20)
        # At minimum the raw score marks it.
        assert result.uihs[idx] < 0

    def test_maf_filter(self, rng):
        dense = rng.integers(0, 2, size=(100, 20)).astype(np.uint8)
        dense[:, 3] = 0
        dense[0, 3] = 1  # MAF 0.01
        result = ihs_scan(dense, maf_min=0.05, max_distance=5)
        assert 3 not in result.snps

    def test_standardized_scores_are_zscores(self, rng):
        dense = rng.integers(0, 2, size=(120, 60)).astype(np.uint8)
        result = ihs_scan(
            dense, maf_min=0.1, max_distance=10, n_freq_bins=3, min_bin_size=5
        )
        defined = result.ihs[~np.isnan(result.ihs)]
        if defined.size >= 20:
            assert abs(defined.mean()) < 0.5
            assert 0.5 < defined.std() < 2.0

    def test_extreme_threshold(self, rng):
        dense = rng.integers(0, 2, size=(80, 30)).astype(np.uint8)
        result = ihs_scan(dense, maf_min=0.1, max_distance=8)
        extreme = result.extreme(threshold=1.0)
        for snp in extreme:
            idx = int(np.flatnonzero(result.snps == snp)[0])
            assert abs(result.ihs[idx]) > 1.0

    def test_validation(self, rng):
        dense = rng.integers(0, 2, size=(40, 10)).astype(np.uint8)
        with pytest.raises(ValueError, match="maf_min"):
            ihs_scan(dense, maf_min=0.7)
        with pytest.raises(ValueError, match="n_freq_bins"):
            ihs_scan(dense, n_freq_bins=0)
