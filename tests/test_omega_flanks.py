"""Tests for flank-extent ω maximization (omega_max_flanks) and kinship."""

import numpy as np
import pytest

from repro.analysis.kinship import kinship_matrix
from repro.analysis.omega import omega_at_split, omega_max_flanks
from repro.core.ldmatrix import ld_matrix


def brute_force_flank_omega(clean, center, l, r):
    left = range(center - l, center)
    right = range(center, center + r)
    wl = sum(clean[i, j] for i in left for j in left if i < j)
    wr = sum(clean[i, j] for i in right for j in right if i < j)
    cross = sum(clean[i, j] for i in left for j in right)
    n_within = l * (l - 1) // 2 + r * (r - 1) // 2
    numer = (wl + wr) / n_within
    denom = cross / (l * r)
    if denom == 0.0:
        return 0.0 if numer == 0.0 else float("inf")
    return numer / denom


class TestOmegaMaxFlanks:
    def test_matches_brute_force_over_all_combinations(self, rng):
        panel = rng.integers(0, 2, size=(60, 14)).astype(np.uint8)
        r2 = ld_matrix(panel)
        clean = np.nan_to_num(r2)
        center = 7
        best, best_l, best_r = omega_max_flanks(r2, center, max_flank=5)
        brute = max(
            (brute_force_flank_omega(clean, center, l, r), l, r)
            for l in range(2, 6)
            for r in range(2, 6)
        )
        assert best == pytest.approx(brute[0])
        assert (best_l, best_r) == (brute[1], brute[2])

    def test_equal_flanks_match_split_form(self, rng):
        """With flanks forced to exhaust the window, ω equals omega_at_split."""
        panel = rng.integers(0, 2, size=(50, 10)).astype(np.uint8)
        r2 = ld_matrix(panel)
        center = 4
        # Evaluate at exactly l = 4, r = 6 by brute force helper, compare
        # to the split formulation of the same partition.
        clean = np.nan_to_num(r2)
        flank = brute_force_flank_omega(clean, center, 4, 6)
        split = omega_at_split(r2, 4)
        assert flank == pytest.approx(split)

    def test_flanks_stay_inside_planted_blocks(self):
        """A sweep-like pattern with asymmetric flanks is localized: the
        maximizing flanks never extend past the strong blocks (uniform
        blocks make all within-block extents tie, so exact sizes are not
        pinned — the boundary containment is)."""
        s = 16
        r2 = np.full((s, s), 0.02)
        center = 6
        r2[2:6, 2:6] = 0.9    # left block: 4 strong SNPs
        r2[6:13, 6:13] = 0.9  # right block: 7 strong SNPs
        np.fill_diagonal(r2, 1.0)
        omega, l, r = omega_max_flanks(r2, center, max_flank=8)
        assert omega > 5.0
        assert 2 <= l <= 4
        assert 2 <= r <= 7
        # Extending past the blocks strictly lowers omega.
        clean = np.nan_to_num(r2)
        overgrown = brute_force_flank_omega(clean, center, 5, 8)
        assert overgrown < omega

    def test_too_small_window_returns_zero(self, rng):
        panel = rng.integers(0, 2, size=(30, 6)).astype(np.uint8)
        r2 = ld_matrix(panel)
        assert omega_max_flanks(r2, 1) == (0.0, 0, 0)
        assert omega_max_flanks(r2, 5) == (0.0, 0, 0)

    def test_validation(self, rng):
        panel = rng.integers(0, 2, size=(30, 6)).astype(np.uint8)
        r2 = ld_matrix(panel)
        with pytest.raises(ValueError, match="center"):
            omega_max_flanks(r2, 99)
        with pytest.raises(ValueError, match="min_flank"):
            omega_max_flanks(r2, 3, min_flank=1)


class TestFlanksSearchInScans:
    def test_baseline_and_gemm_paths_agree(self, rng):
        from repro.analysis.sweeps import sweep_scan
        from repro.baselines.omegaplus import omegaplus_scan

        panel = rng.integers(0, 2, size=(60, 24)).astype(np.uint8)
        ours = sweep_scan(panel, grid_size=5, max_window=8, search="flanks")
        baseline = omegaplus_scan(
            panel, grid_size=5, max_window=8, search="flanks"
        )
        np.testing.assert_allclose(
            ours.omegas, baseline.omegas, equal_nan=True
        )
        np.testing.assert_array_equal(ours.best_splits, baseline.best_splits)

    def test_flanks_boundary_is_the_grid_position(self, rng):
        """With search='flanks' the reported split sits at the grid point's
        SNP boundary, not wherever the window's best split lands."""
        from repro.analysis.omega import omega_scan_from_ld
        from repro.core.ldmatrix import ld_matrix

        panel = rng.integers(0, 2, size=(50, 30)).astype(np.uint8)
        r2 = ld_matrix(panel)
        positions = np.arange(30, dtype=float)
        grid = np.array([15.0])
        _omegas, splits = omega_scan_from_ld(
            r2, positions, grid, max_window=10, search="flanks"
        )
        mid = int(np.searchsorted(positions, 15.0))
        assert splits[0] in (-1, mid - 1)

    def test_unknown_search_rejected(self, rng):
        from repro.analysis.omega import omega_scan_from_ld
        from repro.core.ldmatrix import ld_matrix

        panel = rng.integers(0, 2, size=(30, 10)).astype(np.uint8)
        with pytest.raises(ValueError, match="unknown search"):
            omega_scan_from_ld(
                ld_matrix(panel), np.arange(10.0), np.array([5.0]),
                search="zigzag",
            )


class TestKinship:
    def test_matches_float_reference(self, rng):
        dense = rng.integers(0, 2, size=(25, 300)).astype(np.uint8)
        k = kinship_matrix(dense)
        # Float reference straight from the definition.
        poly = dense[:, (dense.sum(0) > 0) & (dense.sum(0) < 25)]
        p = poly.mean(axis=0)
        centered = poly.astype(float) - p[None, :]
        ref = centered @ centered.T / (p * (1 - p)).sum()
        np.testing.assert_allclose(k, ref, atol=1e-10)

    def test_diagonal_near_one_for_unrelated(self, rng):
        dense = rng.integers(0, 2, size=(40, 2000)).astype(np.uint8)
        k = kinship_matrix(dense)
        assert np.diag(k).mean() == pytest.approx(1.0, abs=0.15)
        off = k[~np.eye(40, dtype=bool)]
        assert abs(off.mean()) < 0.1

    def test_duplicated_sample_has_high_kinship(self, rng):
        dense = rng.integers(0, 2, size=(30, 500)).astype(np.uint8)
        dense[1] = dense[0]  # identical "twins"
        k = kinship_matrix(dense)
        assert k[0, 1] == pytest.approx(k[0, 0], abs=1e-9)
        others = k[0, 2:]
        assert k[0, 1] > others.max() + 0.3

    def test_symmetric(self, rng):
        dense = rng.integers(0, 2, size=(20, 200)).astype(np.uint8)
        k = kinship_matrix(dense)
        np.testing.assert_allclose(k, k.T, atol=1e-12)

    def test_rejects_degenerate_input(self):
        with pytest.raises(ValueError, match="zero"):
            kinship_matrix(np.zeros((10, 5), dtype=np.uint8))

    def test_pca_separates_planted_populations(self, rng):
        """End-to-end: kinship eigenvectors recover population labels."""
        n_per, m = 20, 800
        p1 = rng.uniform(0.1, 0.9, m)
        shift = rng.choice([-0.3, 0.3], m)
        p2 = np.clip(p1 + shift, 0.05, 0.95)
        pop1 = (rng.random((n_per, m)) < p1).astype(np.uint8)
        pop2 = (rng.random((n_per, m)) < p2).astype(np.uint8)
        dense = np.vstack([pop1, pop2])
        k = kinship_matrix(dense)
        _vals, vecs = np.linalg.eigh(k)
        pc1 = vecs[:, -1]
        side = pc1 > np.median(pc1)
        # PC1 splits the two populations (up to sign/labeling).
        agreement = max(side[:n_per].mean(), 1 - side[:n_per].mean())
        assert agreement > 0.9
        agreement2 = max(side[n_per:].mean(), 1 - side[n_per:].mean())
        assert agreement2 > 0.9
