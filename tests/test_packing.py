"""Tests for GotoBLAS-style operand packing (repro.core.packing)."""

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st
from hypothesis.extra import numpy as hnp

from repro.core.packing import (
    micropanel_a,
    micropanel_b,
    pack_block_a,
    pack_panel_b,
)

WORDS = hnp.arrays(
    dtype=np.uint64,
    shape=st.tuples(
        st.integers(min_value=1, max_value=40),
        st.integers(min_value=1, max_value=40),
    ),
    elements=st.integers(min_value=0, max_value=2**64 - 1),
)


class TestPackBlockA:
    @given(a=WORDS, mr=st.sampled_from([1, 2, 4, 8]))
    @settings(max_examples=40)
    def test_contents_and_padding(self, a, mr):
        m, k = a.shape
        packed = pack_block_a(a, mr)
        n_slivers = (m + mr - 1) // mr
        assert packed.shape == (n_slivers, k, mr)
        for s in range(n_slivers):
            rows = a[s * mr : (s + 1) * mr]
            np.testing.assert_array_equal(packed[s, :, : rows.shape[0]], rows.T)
            # Fringe padding is zero (inert under AND/POPCNT).
            np.testing.assert_array_equal(
                packed[s, :, rows.shape[0] :], 0
            )

    def test_rejects_wrong_ndim(self):
        with pytest.raises(ValueError, match="2-D"):
            pack_block_a(np.zeros(4, dtype=np.uint64), 2)

    def test_micropanel_view(self):
        a = np.arange(12, dtype=np.uint64).reshape(6, 2)
        packed = pack_block_a(a, 2)
        np.testing.assert_array_equal(micropanel_a(packed, 1), a[2:4].T)


class TestPackPanelB:
    @given(b=WORDS, nr=st.sampled_from([1, 2, 4, 8]))
    @settings(max_examples=40)
    def test_contents_and_padding(self, b, nr):
        k, n = b.shape
        packed = pack_panel_b(b, nr)
        n_slivers = (n + nr - 1) // nr
        assert packed.shape == (n_slivers, k, nr)
        for s in range(n_slivers):
            cols = b[:, s * nr : (s + 1) * nr]
            np.testing.assert_array_equal(packed[s, :, : cols.shape[1]], cols)
            np.testing.assert_array_equal(packed[s, :, cols.shape[1] :], 0)

    def test_rejects_wrong_ndim(self):
        with pytest.raises(ValueError, match="2-D"):
            pack_panel_b(np.zeros(4, dtype=np.uint64), 2)

    def test_micropanel_view(self):
        b = np.arange(12, dtype=np.uint64).reshape(2, 6)
        packed = pack_panel_b(b, 4)
        np.testing.assert_array_equal(micropanel_b(packed, 0), b[:, :4])


class TestPackInto:
    """The allocation-free `_into` variants and the contiguous B skip."""

    @given(a=WORDS, mr=st.sampled_from([1, 2, 4, 8]))
    @settings(max_examples=25)
    def test_pack_block_a_into_matches_allocating_path(self, a, mr):
        from repro.core.packing import pack_block_a_into

        m, k = a.shape
        n_slivers = (m + mr - 1) // mr
        # Oversized scratch, poisoned so stale contents would be caught.
        scratch = np.full((n_slivers + 2, k + 3, mr), ~np.uint64(0))
        packed = pack_block_a_into(a, mr, scratch)
        np.testing.assert_array_equal(packed, pack_block_a(a, mr))
        assert packed.base is not None  # a view of the scratch, not a copy

    @given(b=WORDS, nr=st.sampled_from([1, 2, 4, 8]))
    @settings(max_examples=25)
    def test_pack_panel_b_into_matches_allocating_path(self, b, nr):
        from repro.core.packing import pack_panel_b_into

        k, n = b.shape
        n_slivers = (n + nr - 1) // nr
        scratch = np.full((n_slivers + 1, k + 2, nr), ~np.uint64(0))
        packed = pack_panel_b_into(b, nr, scratch)
        np.testing.assert_array_equal(packed, pack_panel_b(b, nr))

    def test_contiguous_single_sliver_b_is_a_view(self):
        # A full-width contiguous panel is already in micro-panel order:
        # no copy, the result aliases the input.
        b = np.arange(24, dtype=np.uint64).reshape(6, 4)
        packed = pack_panel_b(b, 4)
        assert np.shares_memory(packed, b)
        np.testing.assert_array_equal(packed[0], b)
        from repro.core.packing import pack_panel_b_into

        scratch = np.zeros((1, 6, 4), dtype=np.uint64)
        packed2 = pack_panel_b_into(b, 4, scratch)
        assert np.shares_memory(packed2, b)
        assert not scratch.any()  # the scratch was never touched

    def test_strided_single_sliver_b_is_copied(self):
        # A non-contiguous slice must take the copy path.
        wide = np.arange(48, dtype=np.uint64).reshape(6, 8)
        b = wide[:, ::2]  # strided view, 4 columns
        packed = pack_panel_b(b, 4)
        assert not np.shares_memory(packed, b)
        np.testing.assert_array_equal(packed[0], b)
