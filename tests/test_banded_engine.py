"""Differential battery for the band-aware tiled engine.

The band contract: ``run_engine(band=...)`` must deliver every in-band
pair bit-identically to a dense run's band slice — on every executor,
in-core and out-of-core, through crashes and resumes — while never
enumerating tiles that lie entirely outside the band. The oracle is the
single-call :func:`repro.core.ldmatrix.ld_matrix` path (a different code
path end to end), compared exactly on power-of-two sample counts where
``counts / n`` admits no rounding slack.
"""

from __future__ import annotations

import numpy as np
import pytest

from repro.core.banding import (
    BandSpec,
    dense_pair_cells,
    dense_tile_count,
    genomic_index_width,
)
from repro.core.engine import ENGINES, enumerate_tiles, run_engine
from repro.core.executors import stop_pools
from repro.core.ldmatrix import ld_matrix
from repro.core.prefetch import min_memory_budget
from repro.core.streaming import BandedNpySink, NpyMemmapSink
from repro.core.windowed import banded_ld, write_banded_block
from repro.encoding.bitmatrix import BitMatrix
from repro.faults import FaultPlan, FaultSpec, InjectedCrash
from repro.io.panelstore import pack_panel
from repro.observe import MetricsRecorder, ProgressReporter

#: Power-of-two sample count: ``counts / n`` is exact, so every code
#: path computing the same statistic must agree to the last bit.
N_SAMPLES = 64
N_SNPS = 120
WINDOW = 15
BLOCK = 8


@pytest.fixture(scope="module")
def dense_panel():
    rng = np.random.default_rng(0xBA2D)
    return rng.integers(0, 2, size=(N_SAMPLES, N_SNPS)).astype(np.uint8)


@pytest.fixture(scope="module")
def packed(dense_panel):
    return BitMatrix.from_dense(dense_panel)


@pytest.fixture(scope="module")
def dense_band(packed, tmp_path_factory):
    """Band slice of a dense serial engine run (the engine-side reference)."""
    path = tmp_path_factory.mktemp("band-ref") / "dense.npy"
    with NpyMemmapSink(path, N_SNPS) as sink:
        report = run_engine(packed, sink, engine="serial", block_snps=BLOCK)
    assert report.complete and report.n_pruned == 0 and report.band_pairs == 0
    full = np.load(path)
    values = np.full((N_SNPS, WINDOW + 1), np.nan)
    for i in range(N_SNPS):
        for d in range(min(WINDOW, N_SNPS - 1 - i) + 1):
            values[i, d] = full[i + d, i]
    return values


def _banded_values(panel, *, engine="serial", window=WINDOW, block=BLOCK,
                   n_snps=None, **kwargs):
    n = n_snps if n_snps is not None else panel.n_snps
    values = np.full((n, window + 1), np.nan)
    report = run_engine(
        panel,
        lambda i0, j0, blk: write_banded_block(values, window, i0, j0, blk),
        engine=engine, block_snps=block, band=window, **kwargs,
    )
    return values, report


class TestBandGeometry:
    def test_enumeration_skips_exactly_the_outside_tiles(self):
        band = BandSpec(window=WINDOW)
        tiles = enumerate_tiles(N_SNPS, BLOCK, band=band)
        assert all(band.classify(t) != "outside" for t in tiles)
        dense = enumerate_tiles(N_SNPS, BLOCK)
        skipped = {(t.i0, t.j0) for t in dense} - {(t.i0, t.j0) for t in tiles}
        by_key = {(t.i0, t.j0): t for t in dense}
        assert skipped and all(
            band.classify(by_key[key]) == "outside" for key in skipped
        )
        assert len(tiles) == dense_tile_count(N_SNPS, BLOCK) - len(skipped)

    def test_every_in_band_pair_is_covered_exactly_once(self):
        band = BandSpec(window=WINDOW)
        tiles = enumerate_tiles(N_SNPS, BLOCK, band=band)
        covered = np.zeros((N_SNPS, N_SNPS), dtype=int)
        for t in tiles:
            mask = band.mask(t)
            covered[t.i0:t.i1, t.j0:t.j1] += mask.astype(int)
        for i in range(N_SNPS):
            for j in range(i + 1):
                expected = 1 if i - j <= WINDOW else 0
                assert covered[i, j] == expected, (i, j)

    @pytest.mark.parametrize("window", [1, 7, 64, 119, 400])
    def test_classify_and_mask_match_brute_force(self, window):
        band = BandSpec(window=window)
        for tile in enumerate_tiles(N_SNPS, 17, band=band):
            rows = np.arange(tile.i0, tile.i1)[:, None]
            cols = np.arange(tile.j0, tile.j1)[None, :]
            brute = np.abs(rows - cols) <= window
            lower = rows >= cols
            kind = band.classify(tile)
            if kind == "full":
                assert (brute | ~lower).all()
            else:
                assert kind == "partial"
                assert not brute[lower].all()
            np.testing.assert_array_equal(band.mask(tile), brute)
            assert band.pairs_in(tile) == int(brute.sum())

    def test_genomic_classify_and_mask_match_brute_force(self):
        rng = np.random.default_rng(11)
        positions = np.sort(rng.uniform(0, 5e4, size=N_SNPS))
        dist = 2500.0
        band = BandSpec(max_distance=dist, positions=positions)
        tiles = enumerate_tiles(N_SNPS, 17, band=band)
        assert len(tiles) < dense_tile_count(N_SNPS, 17)
        for tile in tiles:
            rows = positions[tile.i0:tile.i1][:, None]
            cols = positions[tile.j0:tile.j1][None, :]
            brute = np.abs(rows - cols) <= dist
            np.testing.assert_array_equal(band.mask(tile), brute)
        width = band.index_width(N_SNPS)
        assert width == genomic_index_width(positions, dist)
        gaps = [
            i - j
            for i in range(N_SNPS)
            for j in range(i + 1)
            if positions[i] - positions[j] <= dist
        ]
        assert width == max(gaps)

    def test_dense_pair_cells_matches_enumeration(self):
        tiles = enumerate_tiles(N_SNPS, BLOCK)
        assert dense_pair_cells(N_SNPS, BLOCK) == sum(t.n_pairs for t in tiles)


class TestBandedCorrectness:
    def test_wrapper_matches_oracle_bitwise(self, dense_panel, packed):
        """banded_ld == the single-call ld_matrix band, to the last bit."""
        band = banded_ld(dense_panel, window=WINDOW, block_snps=BLOCK)
        full = ld_matrix(packed)
        for i in range(N_SNPS):
            for d in range(min(WINDOW, N_SNPS - 1 - i) + 1):
                a, b = band.values[i, d], full[i, i + d]
                assert (np.isnan(a) and np.isnan(b)) or a == b, (i, d)

    def test_wrapper_matches_dense_engine_band(self, packed, dense_band):
        band = banded_ld(packed, window=WINDOW, block_snps=BLOCK)
        np.testing.assert_array_equal(band.values, dense_band)

    @pytest.mark.parametrize("stat", ["r2", "D", "H"])
    def test_stats_match_dense_engine_band(self, packed, stat):
        """Each statistic's banded run equals its dense band slice."""
        dense = np.full((N_SNPS, N_SNPS), np.nan)

        def sink(i0, j0, blk):
            dense[i0:i0 + blk.shape[0], j0:j0 + blk.shape[1]] = blk

        report = run_engine(packed, sink, stat=stat, engine="serial",
                            block_snps=BLOCK)
        assert report.complete
        band = banded_ld(packed, window=WINDOW, stat=stat, block_snps=BLOCK)
        for i in range(N_SNPS):
            for d in range(min(WINDOW, N_SNPS - 1 - i) + 1):
                a, b = band.values[i, d], dense[i + d, i]
                assert (np.isnan(a) and np.isnan(b)) or a == b, (i, d)

    def test_outside_band_is_undefined(self, packed):
        values, report = _banded_values(packed)
        assert report.complete
        for i in range(N_SNPS):
            past_end = np.arange(WINDOW + 1) + i >= N_SNPS
            assert np.all(np.isnan(values[i, past_end]))
        # A window+1 store of a window-W run keeps the extra diagonal NaN.
        wide, _ = _banded_values(packed, window=WINDOW)
        store = np.full((N_SNPS, WINDOW + 2), np.nan)
        run_engine(
            packed,
            lambda i0, j0, blk: write_banded_block(
                store, WINDOW + 1, i0, j0, blk
            ),
            engine="serial", block_snps=BLOCK, band=WINDOW,
        )
        assert np.all(np.isnan(store[: N_SNPS - WINDOW - 1, WINDOW + 1]))

    def test_report_band_accounting(self, packed):
        band = BandSpec(window=WINDOW)
        tiles = enumerate_tiles(N_SNPS, BLOCK, band=band)
        recorder = MetricsRecorder()
        values, report = _banded_values(packed, recorder=recorder)
        assert report.n_tiles == len(tiles)
        assert report.n_pruned == dense_tile_count(N_SNPS, BLOCK) - len(tiles)
        assert report.n_pruned > 0
        assert report.n_partial == sum(
            1 for t in tiles if band.classify(t) == "partial"
        )
        assert report.band_pairs == sum(band.pairs_in(t) for t in tiles)
        assert recorder.counters["engine.tiles_pruned"] == report.n_pruned

    def test_genomic_band_matches_dense_slice(self, packed):
        rng = np.random.default_rng(13)
        positions = np.sort(rng.uniform(0, 4e4, size=N_SNPS))
        dist = 3000.0
        band = BandSpec(max_distance=dist, positions=positions)
        width = band.index_width(N_SNPS)
        dense = np.full((N_SNPS, N_SNPS), np.nan)

        def dense_sink(i0, j0, blk):
            dense[i0:i0 + blk.shape[0], j0:j0 + blk.shape[1]] = blk

        run_engine(packed, dense_sink, engine="serial", block_snps=BLOCK)
        values = np.full((N_SNPS, width + 1), np.nan)
        report = run_engine(
            packed,
            lambda i0, j0, blk: write_banded_block(
                values, width, i0, j0, blk
            ),
            engine="serial", block_snps=BLOCK, band=band,
        )
        assert report.complete and report.n_pruned > 0
        for i in range(N_SNPS):
            for d in range(min(width, N_SNPS - 1 - i) + 1):
                a, b = values[i, d], dense[i + d, i]
                if positions[i + d] - positions[i] <= dist:
                    assert (np.isnan(a) and np.isnan(b)) or a == b, (i, d)
                else:
                    assert np.isnan(a), (i, d)


class TestBandedExecutors:
    @pytest.fixture(autouse=True)
    def fresh_pools(self):
        yield
        stop_pools()

    @pytest.mark.parametrize("engine", ENGINES)
    def test_every_executor_matches_dense_band(
        self, packed, dense_band, engine
    ):
        values, report = _banded_values(packed, engine=engine, n_workers=2)
        assert report.complete
        assert report.n_pruned > 0
        np.testing.assert_array_equal(values, dense_band)


class TestBandedAcceptance:
    """The ISSUE's acceptance shape: W = n/8 prunes >= 70% of tiles."""

    N, B, W = 512, 8, 64

    def test_tile_count_is_under_thirty_percent_of_dense(self):
        dense = dense_tile_count(self.N, self.B)
        banded = enumerate_tiles(self.N, self.B, band=BandSpec(window=self.W))
        assert len(banded) <= 0.30 * dense

    def test_all_executors_match_dense_band_slice(self, tmp_path):
        rng = np.random.default_rng(0xACC)
        panel = BitMatrix.from_dense(
            rng.integers(0, 2, size=(64, self.N)).astype(np.uint8)
        )
        out = tmp_path / "dense.npy"
        with NpyMemmapSink(out, self.N) as sink:
            assert run_engine(
                panel, sink, engine="serial", block_snps=self.B
            ).complete
        full = np.load(out)
        reference = np.full((self.N, self.W + 1), np.nan)
        write_banded_block(reference, self.W, 0, 0, full)
        try:
            for engine in ENGINES:
                values, report = _banded_values(
                    panel, engine=engine, window=self.W, block=self.B,
                    n_workers=2,
                )
                assert report.complete
                np.testing.assert_array_equal(values, reference)
        finally:
            stop_pools()


class TestBandedOutOfCore:
    @pytest.fixture(scope="class")
    def store_path(self, tmp_path_factory):
        rng = np.random.default_rng(0x00CB)
        packed = BitMatrix.from_dense(
            (rng.random((96, 700)) < 0.3).astype(np.uint8)
        )
        path = tmp_path_factory.mktemp("banded-store") / "panel.pnl"
        pack_panel(path, packed).close()
        return path, packed

    def test_banded_floor_is_below_dense_floor(self):
        assert min_memory_budget(64, 16, banded=True) < min_memory_budget(
            64, 16
        )

    def test_banded_completes_under_the_dense_floor(self, store_path):
        """A budget the dense planner rejects still runs a banded sweep."""
        path, packed = store_path
        block, window = 64, 96
        row_nbytes = packed.n_words * 8
        budget = int(2.5 * block * row_nbytes)
        assert budget < min_memory_budget(block, row_nbytes)
        with pytest.raises(ValueError, match="memory budget"):
            run_engine(str(path), lambda *a: None, engine="serial",
                       block_snps=block, memory_budget=budget)
        values, report = _banded_values(
            str(path), window=window, block=block, memory_budget=budget,
            n_snps=packed.n_snps,
        )
        assert report.complete and report.n_pruned > 0
        reference = banded_ld(packed, window=window, block_snps=block)
        np.testing.assert_array_equal(values, reference.values)


class TestBandedResume:
    def test_torn_manifest_then_resume_is_bit_identical(
        self, packed, dense_band, tmp_path
    ):
        plan = FaultPlan(seed=7, specs=(
            FaultSpec(site="manifest_append", action="torn", tile=(56, 48)),
        ))
        out = tmp_path / "band.npy"
        manifest = tmp_path / "band.manifest"
        with pytest.raises(InjectedCrash):
            with BandedNpySink(out, N_SNPS, WINDOW) as sink:
                run_engine(packed, sink, engine="serial", block_snps=BLOCK,
                           band=WINDOW, manifest_path=manifest, faults=plan,
                           retry_backoff=0.0)
        with BandedNpySink(out, N_SNPS, WINDOW, mode="r+") as sink:
            report = run_engine(packed, sink, engine="serial",
                                block_snps=BLOCK, band=WINDOW,
                                manifest_path=manifest, resume=True)
        assert report.complete
        assert report.n_skipped > 0
        np.testing.assert_array_equal(np.load(out), dense_band)

    def test_kill_mid_run_then_resume_on_processes(
        self, packed, dense_band, tmp_path
    ):
        plan = FaultPlan(seed=9, specs=(
            FaultSpec(site="manifest_append", action="torn", tile=(40, 40)),
        ))
        out = tmp_path / "band.npy"
        manifest = tmp_path / "band.manifest"
        try:
            with pytest.raises(InjectedCrash):
                with BandedNpySink(out, N_SNPS, WINDOW) as sink:
                    run_engine(packed, sink, engine="processes", n_workers=2,
                               block_snps=BLOCK, band=WINDOW,
                               manifest_path=manifest, faults=plan,
                               retry_backoff=0.0)
            with BandedNpySink(out, N_SNPS, WINDOW, mode="r+") as sink:
                report = run_engine(packed, sink, engine="processes",
                                    n_workers=2, block_snps=BLOCK,
                                    band=WINDOW, manifest_path=manifest,
                                    resume=True)
        finally:
            stop_pools()
        assert report.complete and report.n_skipped > 0
        np.testing.assert_array_equal(np.load(out), dense_band)

    def test_band_change_invalidates_the_manifest(self, packed, tmp_path):
        manifest = tmp_path / "band.manifest"
        _banded_values(packed, manifest_path=manifest)
        with pytest.raises(ValueError, match="fingerprint mismatch"):
            _banded_values(packed, window=WINDOW + 1,
                           manifest_path=manifest, resume=True)
        with pytest.raises(ValueError, match="fingerprint mismatch"):
            run_engine(packed, lambda *a: None, engine="serial",
                       block_snps=BLOCK, manifest_path=manifest, resume=True)


class TestBandedProgress:
    def test_progress_totals_use_in_band_pairs(self, packed):
        """The bar must reach exactly 100% of the *banded* pair count."""
        band = BandSpec(window=WINDOW)
        tiles = enumerate_tiles(N_SNPS, BLOCK, band=band)
        pairs_total = sum(band.pairs_in(t) for t in tiles)
        assert pairs_total < dense_pair_cells(N_SNPS, BLOCK)
        progress = ProgressReporter(len(tiles), pairs_total, stream=None)
        _, report = _banded_values(packed, progress=progress)
        assert report.complete
        assert progress.tiles_done == len(tiles)
        assert progress.pairs_done == pairs_total
        assert progress.snapshot().eta_seconds == 0.0


class TestBandedSink:
    def test_round_trip_matches_wrapper(self, packed, tmp_path):
        out = tmp_path / "band.npy"
        with BandedNpySink(out, N_SNPS, WINDOW) as sink:
            report = run_engine(packed, sink, engine="serial",
                                block_snps=BLOCK, band=WINDOW)
        assert report.complete
        stored = np.load(out)
        assert stored.shape == (N_SNPS, WINDOW + 1)
        reference = banded_ld(packed, window=WINDOW, block_snps=BLOCK)
        np.testing.assert_array_equal(stored, reference.values)

    def test_reopen_requires_existing_matching_file(self, tmp_path):
        with pytest.raises(ValueError, match="rerun without resume"):
            BandedNpySink(tmp_path / "missing.npy", 10, 5, mode="r+")
        out = tmp_path / "band.npy"
        BandedNpySink(out, 10, 5).close()
        with pytest.raises(ValueError, match="delete it or rerun"):
            BandedNpySink(out, 10, 6, mode="r+")
        reopened = BandedNpySink(out, 10, 5, mode="r+")
        assert np.all(np.isnan(reopened._memmap))
        reopened.close()

    def test_rejects_bad_construction(self, tmp_path):
        with pytest.raises(ValueError):
            BandedNpySink(tmp_path / "x.npy", 0, 5)
        with pytest.raises(ValueError):
            BandedNpySink(tmp_path / "x.npy", 10, -1)
        with pytest.raises(ValueError):
            BandedNpySink(tmp_path / "x.npy", 10, 5, mode="a+")
