"""Tests for thread-level GEMM parallelization (repro.core.parallel)."""

import numpy as np
import pytest
from hypothesis import given
from hypothesis import strategies as st

from repro.core.parallel import (
    partition_ranges,
    partition_triangle_rows,
    popcount_gemm_parallel,
)
from repro.encoding.bitmatrix import pack_bits
from tests.conftest import reference_counts


class TestPartitionRanges:
    @given(
        total=st.integers(min_value=0, max_value=500),
        parts=st.integers(min_value=1, max_value=20),
    )
    def test_covers_exactly_once(self, total, parts):
        ranges = partition_ranges(total, parts)
        covered = [i for lo, hi in ranges for i in range(lo, hi)]
        assert covered == list(range(total))

    @given(
        total=st.integers(min_value=1, max_value=500),
        parts=st.integers(min_value=1, max_value=20),
    )
    def test_balanced(self, total, parts):
        sizes = [hi - lo for lo, hi in partition_ranges(total, parts)]
        assert max(sizes) - min(sizes) <= 1

    def test_rejects_bad_args(self):
        with pytest.raises(ValueError):
            partition_ranges(10, 0)
        with pytest.raises(ValueError):
            partition_ranges(-1, 2)


class TestPartitionTriangleRows:
    @given(
        m=st.integers(min_value=0, max_value=500),
        parts=st.integers(min_value=1, max_value=16),
    )
    def test_covers_exactly_once(self, m, parts):
        ranges = partition_triangle_rows(m, parts)
        covered = [i for lo, hi in ranges for i in range(lo, hi)]
        assert covered == list(range(m))

    def test_balances_triangle_area(self):
        m, parts = 1000, 4
        ranges = partition_triangle_rows(m, parts)
        areas = [sum(i + 1 for i in range(lo, hi)) for lo, hi in ranges]
        total = m * (m + 1) // 2
        for area in areas:
            assert area == pytest.approx(total / parts, rel=0.15)

    @given(
        m=st.integers(min_value=0, max_value=2000),
        parts=st.integers(min_value=1, max_value=16),
    )
    def test_ranges_sorted_and_disjoint(self, m, parts):
        ranges = partition_triangle_rows(m, parts)
        assert all(lo < hi for lo, hi in ranges)
        assert all(prev[1] == nxt[0] for prev, nxt in zip(ranges, ranges[1:]))

    @given(
        m=st.integers(min_value=1, max_value=2000),
        parts=st.integers(min_value=1, max_value=16),
    )
    def test_balance_bounded_by_one_row(self, m, parts):
        """No part exceeds the ideal area by more than ~2 boundary rows.

        Boundaries are rounded to whole rows, so the worst-case excess per
        part is one row of at most m entries at each end.
        """
        ranges = partition_triangle_rows(m, parts)
        ideal = m * (m + 1) / 2 / parts
        for lo, hi in ranges:
            area = (hi * (hi + 1) - lo * (lo + 1)) // 2
            assert area <= ideal + 2 * m + 1

    def test_rejects_bad_args(self):
        with pytest.raises(ValueError):
            partition_triangle_rows(10, 0)
        with pytest.raises(ValueError):
            partition_triangle_rows(-1, 1)


class TestPopcountGemmParallel:
    @pytest.mark.parametrize("n_threads", [1, 2, 3, 7])
    def test_symmetric_matches_serial(self, rng, n_threads):
        dense = rng.integers(0, 2, size=(130, 23)).astype(np.uint8)
        words = pack_bits(dense)
        got = popcount_gemm_parallel(words, None, n_threads=n_threads)
        np.testing.assert_array_equal(got, reference_counts(dense))

    @pytest.mark.parametrize("n_threads", [1, 2, 5])
    def test_cross_matches_serial(self, rng, n_threads):
        a = rng.integers(0, 2, size=(100, 17)).astype(np.uint8)
        b = rng.integers(0, 2, size=(100, 9)).astype(np.uint8)
        got = popcount_gemm_parallel(
            pack_bits(a), pack_bits(b), n_threads=n_threads
        )
        expected = np.rint(a.astype(float).T @ b.astype(float)).astype(np.int64)
        np.testing.assert_array_equal(got, expected)

    def test_more_threads_than_rows(self, rng):
        dense = rng.integers(0, 2, size=(64, 3)).astype(np.uint8)
        got = popcount_gemm_parallel(pack_bits(dense), None, n_threads=16)
        np.testing.assert_array_equal(got, reference_counts(dense))

    def test_rejects_non_positive_threads(self, rng):
        words = pack_bits(rng.integers(0, 2, size=(64, 3)).astype(np.uint8))
        with pytest.raises(ValueError, match="positive"):
            popcount_gemm_parallel(words, None, n_threads=0)

    def test_worker_exceptions_propagate(self):
        bad = np.zeros((4, 2), dtype=np.uint64)
        worse = np.zeros((4, 3), dtype=np.uint64)
        with pytest.raises(ValueError, match="word counts differ"):
            popcount_gemm_parallel(bad, worse, n_threads=2)
