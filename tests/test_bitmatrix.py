"""Tests for the bit-packed genomic matrix (repro.encoding.bitmatrix)."""

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st
from hypothesis.extra import numpy as hnp

from repro.encoding.bitmatrix import (
    WORD_BITS,
    BitMatrix,
    pack_bits,
    unpack_bits,
    words_for_samples,
)

DENSE = hnp.arrays(
    dtype=np.uint8,
    shape=st.tuples(
        st.integers(min_value=1, max_value=140),
        st.integers(min_value=1, max_value=20),
    ),
    elements=st.integers(min_value=0, max_value=1),
)


class TestPackRoundtrip:
    @given(dense=DENSE)
    @settings(max_examples=60)
    def test_roundtrip(self, dense):
        packed = pack_bits(dense)
        np.testing.assert_array_equal(unpack_bits(packed, dense.shape[0]), dense)

    @given(dense=DENSE)
    @settings(max_examples=60)
    def test_padding_bits_are_zero(self, dense):
        packed = pack_bits(dense)
        n_samples = dense.shape[0]
        total = packed.shape[1] * WORD_BITS
        counts = np.bitwise_count(packed).sum(axis=1)
        np.testing.assert_array_equal(counts, dense.sum(axis=0))
        assert total >= n_samples

    def test_exact_word_boundary(self):
        dense = np.ones((128, 3), dtype=np.uint8)
        packed = pack_bits(dense)
        assert packed.shape == (3, 2)
        assert np.all(packed == np.uint64(0xFFFFFFFFFFFFFFFF))

    def test_bit_order_is_little_endian(self):
        dense = np.zeros((70, 1), dtype=np.uint8)
        dense[0, 0] = 1   # sample 0 -> bit 0 of word 0
        dense[65, 0] = 1  # sample 65 -> bit 1 of word 1
        packed = pack_bits(dense)
        assert packed[0, 0] == 1
        assert packed[0, 1] == 2

    def test_rejects_non_binary(self):
        with pytest.raises(ValueError, match="0/1"):
            pack_bits(np.array([[0, 2]], dtype=np.uint8))

    def test_rejects_wrong_ndim(self):
        with pytest.raises(ValueError, match="2-D"):
            pack_bits(np.zeros(5, dtype=np.uint8))

    def test_unpack_rejects_bad_sample_count(self):
        packed = np.zeros((2, 1), dtype=np.uint64)
        with pytest.raises(ValueError, match="incompatible"):
            unpack_bits(packed, 65)


class TestWordsForSamples:
    @pytest.mark.parametrize(
        "n,expected", [(0, 0), (1, 1), (63, 1), (64, 1), (65, 2), (128, 2), (129, 3)]
    )
    def test_values(self, n, expected):
        assert words_for_samples(n) == expected

    def test_rejects_negative(self):
        with pytest.raises(ValueError):
            words_for_samples(-1)


class TestBitMatrix:
    def test_from_dense_shape(self, small_panel):
        bm = BitMatrix.from_dense(small_panel)
        assert bm.shape == small_panel.shape
        assert bm.n_samples == 137
        assert bm.n_snps == 53
        assert bm.n_words == 3
        assert bm.nbytes == 53 * 3 * 8

    def test_to_dense_roundtrip(self, small_panel):
        bm = BitMatrix.from_dense(small_panel)
        np.testing.assert_array_equal(bm.to_dense(), small_panel)

    def test_from_snp_vectors(self, small_panel):
        bm = BitMatrix.from_snp_vectors(small_panel.T)
        assert bm == BitMatrix.from_dense(small_panel)

    def test_snp_accessor(self, small_panel):
        bm = BitMatrix.from_dense(small_panel)
        for idx in (0, 25, 52):
            np.testing.assert_array_equal(bm.snp(idx), small_panel[:, idx])

    def test_allele_counts_and_frequencies(self, small_panel):
        bm = BitMatrix.from_dense(small_panel)
        np.testing.assert_array_equal(bm.allele_counts(), small_panel.sum(axis=0))
        np.testing.assert_allclose(
            bm.allele_frequencies(), small_panel.mean(axis=0)
        )

    def test_is_polymorphic_and_drop(self):
        dense = np.zeros((10, 4), dtype=np.uint8)
        dense[:, 1] = 1                  # fixed derived -> monomorphic
        dense[:5, 2] = 1                 # segregating
        dense[0, 3] = 1                  # singleton -> segregating
        bm = BitMatrix.from_dense(dense)
        np.testing.assert_array_equal(
            bm.is_polymorphic(), [False, False, True, True]
        )
        dropped = bm.drop_monomorphic()
        assert dropped.n_snps == 2
        np.testing.assert_array_equal(dropped.to_dense(), dense[:, 2:])

    def test_select_and_slice(self, small_panel):
        bm = BitMatrix.from_dense(small_panel)
        sel = bm.select(np.array([5, 1, 20]))
        np.testing.assert_array_equal(sel.to_dense(), small_panel[:, [5, 1, 20]])
        sl = bm.slice_snps(10, 20)
        np.testing.assert_array_equal(sl.to_dense(), small_panel[:, 10:20])

    def test_concat_snps(self, small_panel):
        bm = BitMatrix.from_dense(small_panel)
        joined = bm.slice_snps(0, 10).concat_snps(bm.slice_snps(10, 53))
        assert joined == bm

    def test_concat_rejects_mismatched_samples(self, small_panel):
        a = BitMatrix.from_dense(small_panel)
        b = BitMatrix.from_dense(small_panel[:100])
        with pytest.raises(ValueError, match="sample counts differ"):
            a.concat_snps(b)

    def test_zeros(self):
        bm = BitMatrix.zeros(100, 7)
        assert bm.shape == (100, 7)
        assert bm.allele_counts().sum() == 0

    def test_filter_maf(self):
        dense = np.zeros((20, 3), dtype=np.uint8)
        dense[:10, 0] = 1      # MAF 0.5
        dense[0, 1] = 1        # MAF 0.05
        dense[:4, 2] = 1       # MAF 0.2
        bm = BitMatrix.from_dense(dense)
        kept = bm.filter_maf(0.1)
        np.testing.assert_array_equal(kept.to_dense(), dense[:, [0, 2]])
        assert bm.filter_maf(0.0).n_snps == 3

    def test_filter_maf_rejects_bad_threshold(self, small_panel):
        bm = BitMatrix.from_dense(small_panel)
        with pytest.raises(ValueError, match="min_maf"):
            bm.filter_maf(0.6)

    def test_rejects_dirty_padding(self):
        words = np.full((1, 2), np.uint64(0xFFFFFFFFFFFFFFFF))
        with pytest.raises(ValueError, match="padding"):
            BitMatrix(words=words, n_samples=70)

    def test_rejects_dirty_padding_whole_word(self):
        words = np.zeros((1, 2), dtype=np.uint64)
        words[0, 1] = 1
        with pytest.raises(ValueError, match="padding"):
            BitMatrix(words=words, n_samples=64)

    def test_rejects_oversized_n_samples(self):
        with pytest.raises(ValueError, match="fit"):
            BitMatrix(words=np.zeros((1, 1), dtype=np.uint64), n_samples=65)

    def test_equality(self, small_panel):
        a = BitMatrix.from_dense(small_panel)
        b = BitMatrix.from_dense(small_panel)
        assert a == b
        flipped = small_panel.copy()
        flipped[0, 0] ^= 1
        assert a != BitMatrix.from_dense(flipped)
        assert a.__eq__(42) is NotImplemented

    def test_repr(self, small_panel):
        text = repr(BitMatrix.from_dense(small_panel))
        assert "n_samples=137" in text and "n_snps=53" in text

    def test_zero_sample_frequencies_rejected(self):
        bm = BitMatrix(words=np.zeros((3, 0), dtype=np.uint64), n_samples=0)
        with pytest.raises(ValueError, match="zero samples"):
            bm.allele_frequencies()
