"""Tests for recombination maps (repro.simulate.recombination)."""

import numpy as np
import pytest

from repro.simulate.recombination import RecombinationMap, simulate_region_with_map


class TestRecombinationMap:
    def test_uniform_genetic_distance(self):
        rec_map = RecombinationMap.uniform(1000.0, rate=2.0)
        assert rec_map.genetic_distance(0.0, 500.0) == pytest.approx(1000.0)
        assert rec_map.total_genetic_length() == pytest.approx(2000.0)
        assert rec_map.length == 1000.0

    def test_hotspot_concentrates_genetic_length(self):
        rec_map = RecombinationMap.with_hotspot(
            1000.0, hotspot_center=500.0, hotspot_width=20.0,
            hotspot_rate=100.0, background_rate=1.0,
        )
        hot = rec_map.genetic_distance(490.0, 510.0)
        cold = rec_map.genetic_distance(100.0, 120.0)
        assert hot == pytest.approx(2000.0)
        assert cold == pytest.approx(20.0)

    def test_genetic_distance_symmetric(self):
        rec_map = RecombinationMap.uniform(100.0)
        assert rec_map.genetic_distance(10.0, 60.0) == rec_map.genetic_distance(
            60.0, 10.0
        )

    def test_position_at_genetic_inverts_distance(self):
        rec_map = RecombinationMap.with_hotspot(
            1000.0, hotspot_center=300.0, hotspot_width=10.0,
            hotspot_rate=50.0,
        )
        for frac in (0.0, 0.2, 0.5, 0.9, 1.0):
            g = frac * rec_map.total_genetic_length()
            pos = rec_map.position_at_genetic(g)
            assert rec_map.genetic_distance(0.0, pos) == pytest.approx(
                g, abs=1e-6
            )

    def test_validation(self):
        with pytest.raises(ValueError, match="strictly increasing"):
            RecombinationMap(np.array([0.0, 0.0]), np.array([1.0]))
        with pytest.raises(ValueError, match="rates"):
            RecombinationMap(np.array([0.0, 1.0]), np.array([1.0, 2.0]))
        with pytest.raises(ValueError, match="non-negative"):
            RecombinationMap(np.array([0.0, 1.0]), np.array([-1.0]))
        with pytest.raises(ValueError, match="inside the region"):
            RecombinationMap.with_hotspot(
                100.0, hotspot_center=99.0, hotspot_width=10.0, hotspot_rate=5.0
            )
        rec_map = RecombinationMap.uniform(10.0)
        with pytest.raises(ValueError, match="outside the map"):
            rec_map.genetic_distance(0.0, 11.0)
        with pytest.raises(ValueError, match="outside the map"):
            rec_map.position_at_genetic(99.0)


class TestSimulateWithMap:
    def test_positions_within_region(self):
        rng = np.random.default_rng(20)
        rec_map = RecombinationMap.uniform(500.0)
        sample = simulate_region_with_map(
            30, rec_map, n_chunks=5, theta_per_chunk=6.0, rng=rng
        )
        assert sample.positions.min() >= 0.0
        assert sample.positions.max() <= 500.0
        assert np.all(np.diff(sample.positions) >= 0)

    def test_hotspot_breaks_ld(self):
        """Equal physical distance: lower LD across the hotspot than within
        a cold region — the module's behavioural anchor."""
        rng = np.random.default_rng(21)
        rec_map = RecombinationMap.with_hotspot(
            1000.0, hotspot_center=500.0, hotspot_width=10.0,
            hotspot_rate=500.0, background_rate=0.2,
        )
        from repro.core.ldmatrix import ld_matrix

        across_vals, within_vals = [], []
        for _rep in range(8):
            sample = simulate_region_with_map(
                60, rec_map, n_chunks=8, theta_per_chunk=8.0, rng=rng
            )
            if sample.n_snps < 4:
                continue
            r2 = ld_matrix(sample.haplotypes, undefined=0.0)
            pos = sample.positions
            iu = np.triu_indices(sample.n_snps, k=1)
            dist = np.abs(pos[iu[0]] - pos[iu[1]])
            crosses = (pos[iu[0]] < 495.0) & (pos[iu[1]] > 505.0) | (
                pos[iu[1]] < 495.0
            ) & (pos[iu[0]] > 505.0)
            near = dist < 300.0
            across_vals.extend(r2[iu][crosses & near].tolist())
            same_side = ~crosses
            within_vals.extend(r2[iu][same_side & near].tolist())
        assert np.mean(within_vals) > 1.5 * np.mean(across_vals)

    def test_validation(self):
        rec_map = RecombinationMap.uniform(10.0)
        with pytest.raises(ValueError, match="n_chunks"):
            simulate_region_with_map(5, rec_map, n_chunks=0)
