"""Tests for genotype-domain GEMM r² (repro.core.genotype_ld)."""

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.baselines.plink import plink_r2_matrix
from repro.core.genotype_ld import genotype_r2_matrix
from repro.encoding.genotypes import GenotypeMatrix, genotypes_from_haplotypes
from tests.conftest import assert_allclose_nan


@pytest.fixture
def genotypes(rng):
    haps = rng.integers(0, 2, size=(140, 12)).astype(np.uint8)
    return GenotypeMatrix.from_dense(genotypes_from_haplotypes(haps))


class TestGenotypeR2Matrix:
    def test_matches_plink_baseline(self, genotypes):
        gemm_r2 = genotype_r2_matrix(genotypes)
        plink_r2 = plink_r2_matrix(genotypes)
        assert_allclose_nan(gemm_r2, plink_r2, atol=1e-10)

    def test_matches_plink_with_missing(self, rng):
        genos = genotypes_from_haplotypes(
            rng.integers(0, 2, size=(160, 10)).astype(np.uint8)
        ).astype(np.int8)
        genos[rng.random(genos.shape) < 0.15] = -1
        gm = GenotypeMatrix.from_dense(genos)
        assert_allclose_nan(
            genotype_r2_matrix(gm), plink_r2_matrix(gm), atol=1e-10
        )

    @given(seed=st.integers(min_value=0, max_value=2**31))
    @settings(max_examples=15, deadline=None)
    def test_property_equivalence(self, seed):
        rng = np.random.default_rng(seed)
        genos = rng.integers(0, 3, size=(50, 7)).astype(np.int8)
        genos[rng.random(genos.shape) < 0.1] = -1
        gm = GenotypeMatrix.from_dense(genos)
        assert_allclose_nan(
            genotype_r2_matrix(gm), plink_r2_matrix(gm), atol=1e-9
        )

    def test_matches_numpy_corrcoef_without_missing(self, genotypes):
        dense = genotypes.to_dense().astype(float)
        r2 = genotype_r2_matrix(genotypes)
        ref = np.corrcoef(dense.T) ** 2
        defined = ~np.isnan(r2)
        np.testing.assert_allclose(r2[defined], ref[defined], atol=1e-10)

    def test_symmetric_with_unit_diagonal(self, genotypes):
        r2 = genotype_r2_matrix(genotypes, undefined=0.0)
        np.testing.assert_allclose(r2, r2.T, atol=1e-12)
        dense = genotypes.to_dense()
        poly = dense.std(axis=0) > 0
        np.testing.assert_allclose(np.diag(r2)[poly], 1.0)

    def test_undefined_fill(self):
        genos = np.zeros((12, 2), dtype=np.int8)  # both monomorphic
        gm = GenotypeMatrix.from_dense(genos)
        r2 = genotype_r2_matrix(gm, undefined=-3.0)
        np.testing.assert_array_equal(r2, -3.0)

    def test_scalar_kernel_path(self, rng):
        from repro.core.blocking import MICRO_BLOCKING

        genos = rng.integers(0, 3, size=(40, 5)).astype(np.int8)
        gm = GenotypeMatrix.from_dense(genos)
        assert_allclose_nan(
            genotype_r2_matrix(gm, params=MICRO_BLOCKING, kernel="scalar"),
            genotype_r2_matrix(gm),
            atol=1e-12,
        )
