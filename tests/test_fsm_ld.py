"""Tests for finite-sites LD (repro.analysis.fsm_ld)."""

import numpy as np
import pytest

from repro.analysis.fsm_ld import fsm_ld_matrix, fsm_ld_pair
from repro.core.ldmatrix import ld_matrix
from repro.encoding.fsm import FiniteSitesMatrix


@pytest.fixture
def alignment(rng):
    return rng.choice(list("ACGT-"), size=(60, 8), p=[0.3, 0.3, 0.2, 0.15, 0.05])


class TestPairVsMatrix:
    def test_matrix_matches_pairs(self, alignment):
        fsm = FiniteSitesMatrix.from_characters(alignment)
        matrix = fsm_ld_matrix(fsm)
        for i in range(8):
            for j in range(8):
                pair = fsm_ld_pair(fsm, i, j)
                if np.isnan(pair):
                    assert np.isnan(matrix[i, j])
                else:
                    assert matrix[i, j] == pytest.approx(pair, abs=1e-9)

    def test_matrix_symmetric(self, alignment):
        fsm = FiniteSitesMatrix.from_characters(alignment)
        t = np.nan_to_num(fsm_ld_matrix(fsm))
        np.testing.assert_allclose(t, t.T, atol=1e-9)


class TestBiallelicReduction:
    def test_reduces_to_n_times_r2_for_two_states(self, rng):
        """Biallelic gap-free data: T = n·r² (v_i=v_j=2, 4 equal r² terms...).

        For two states the four (a, b) state-pair r² values satisfy
        r²_AA = r²_AC = r²_CA = r²_CC (complement symmetry), so
        Σ r² = 4 r² and T = (1·1·n)/(2·2) · 4 r² = n·r².
        """
        binary = rng.integers(0, 2, size=(50, 6)).astype(np.uint8)
        chars = np.where(binary == 1, "C", "A")
        fsm = FiniteSitesMatrix.from_characters(chars)
        t = fsm_ld_matrix(fsm)
        r2 = ld_matrix(binary)
        n = 50
        defined = ~np.isnan(r2)
        np.testing.assert_allclose(t[defined], n * r2[defined], atol=1e-8)


class TestUndefinedCases:
    def test_monomorphic_snp_is_nan(self):
        chars = np.array([["A", "A"], ["A", "C"], ["A", "C"], ["A", "A"]])
        fsm = FiniteSitesMatrix.from_characters(chars)
        t = fsm_ld_matrix(fsm)
        assert np.isnan(t[0, 0]) and np.isnan(t[0, 1])
        assert not np.isnan(t[1, 1])
        assert np.isnan(fsm_ld_pair(fsm, 0, 1))

    def test_disjoint_gap_patterns_no_valid_pairs(self):
        chars = np.array([["A", "-"], ["C", "-"], ["-", "G"], ["-", "T"]])
        fsm = FiniteSitesMatrix.from_characters(chars)
        assert np.isnan(fsm_ld_pair(fsm, 0, 1))
        t = fsm_ld_matrix(fsm)
        assert np.isnan(t[0, 1])

    def test_undefined_fill(self):
        chars = np.array([["A", "A"], ["A", "A"]])
        fsm = FiniteSitesMatrix.from_characters(chars)
        t = fsm_ld_matrix(fsm, undefined=-1.0)
        np.testing.assert_array_equal(t, -1.0)


class TestFourStateBehaviour:
    def test_perfectly_associated_four_state_snps(self, rng):
        """Two identical 4-state SNPs give the maximal T for their v."""
        states = rng.choice(list("ACGT"), size=60)
        chars = np.stack([states, states], axis=1)
        fsm = FiniteSitesMatrix.from_characters(chars)
        t = fsm_ld_matrix(fsm)
        # Self-pair and cross-pair are identical columns: equal T.
        assert t[0, 1] == pytest.approx(t[0, 0], abs=1e-9)
        assert t[0, 1] > 0

    def test_independent_four_state_snps_lower_t(self, rng):
        states_a = rng.choice(list("ACGT"), size=400)
        states_b = rng.choice(list("ACGT"), size=400)
        chars = np.stack([states_a, states_a, states_b], axis=1)
        fsm = FiniteSitesMatrix.from_characters(chars)
        t = fsm_ld_matrix(fsm)
        assert t[0, 1] > t[0, 2]  # identical pair far above independent pair
