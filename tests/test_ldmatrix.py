"""Tests for the public LD API (repro.core.ldmatrix, repro.core.frequencies)."""

import numpy as np
import pytest

from repro.core.blocking import MICRO_BLOCKING
from repro.core.frequencies import (
    allele_frequencies,
    haplotype_frequencies,
    haplotype_frequencies_cross,
)
from repro.core.ldmatrix import (
    LDResult,
    as_bitmatrix,
    compute_ld,
    ld_cross,
    ld_matrix,
    ld_pairs,
)
from repro.encoding.bitmatrix import BitMatrix
from tests.conftest import assert_allclose_nan, reference_ld, reference_ld_cross


class TestFrequencies:
    def test_allele_frequencies(self, small_panel):
        bm = BitMatrix.from_dense(small_panel)
        np.testing.assert_allclose(
            allele_frequencies(bm), small_panel.mean(axis=0)
        )

    def test_haplotype_frequencies(self, small_panel):
        bm = BitMatrix.from_dense(small_panel)
        np.testing.assert_allclose(
            haplotype_frequencies(bm), reference_ld(small_panel)["h"]
        )

    def test_haplotype_frequencies_cross(self, rng):
        a = rng.integers(0, 2, size=(90, 7)).astype(np.uint8)
        b = rng.integers(0, 2, size=(90, 5)).astype(np.uint8)
        got = haplotype_frequencies_cross(
            BitMatrix.from_dense(a), BitMatrix.from_dense(b)
        )
        np.testing.assert_allclose(got, reference_ld_cross(a, b)["h"])

    def test_cross_rejects_sample_mismatch(self, rng):
        a = BitMatrix.from_dense(rng.integers(0, 2, (10, 3)).astype(np.uint8))
        b = BitMatrix.from_dense(rng.integers(0, 2, (12, 3)).astype(np.uint8))
        with pytest.raises(ValueError, match="sample counts differ"):
            haplotype_frequencies_cross(a, b)

    def test_zero_samples_rejected(self):
        bm = BitMatrix(words=np.zeros((2, 0), dtype=np.uint64), n_samples=0)
        with pytest.raises(ValueError, match="zero samples"):
            haplotype_frequencies(bm)


class TestLdMatrix:
    @pytest.mark.parametrize("stat", ["r2", "D", "H"])
    def test_matches_reference(self, small_panel, stat):
        ref = reference_ld(small_panel)
        got = ld_matrix(small_panel, stat=stat)
        key = {"r2": "r2", "D": "d", "H": "h"}[stat]
        assert_allclose_nan(got, ref[key], atol=1e-12)

    def test_accepts_bitmatrix(self, small_panel):
        bm = BitMatrix.from_dense(small_panel)
        assert_allclose_nan(ld_matrix(bm), ld_matrix(small_panel))

    def test_dprime_stat_dispatch(self, small_panel):
        dp = ld_matrix(small_panel, stat="Dprime")
        finite = dp[~np.isnan(dp)]
        assert np.all(np.abs(finite) <= 1.0 + 1e-9)

    def test_unknown_stat_rejected(self, small_panel):
        with pytest.raises(ValueError, match="unknown LD statistic"):
            ld_matrix(small_panel, stat="zeta")

    def test_undefined_fill(self):
        dense = np.zeros((20, 3), dtype=np.uint8)
        dense[:10, 0] = 1  # SNP 0 polymorphic; 1, 2 monomorphic
        r2 = ld_matrix(dense, undefined=-7.0)
        assert r2[0, 1] == -7.0 and r2[1, 2] == -7.0
        assert r2[0, 0] == pytest.approx(1.0)

    def test_scalar_kernel_path(self, tiny_panel):
        assert_allclose_nan(
            ld_matrix(tiny_panel, params=MICRO_BLOCKING, kernel="scalar"),
            ld_matrix(tiny_panel),
        )

    def test_threaded_path(self, small_panel):
        assert_allclose_nan(
            ld_matrix(small_panel, n_threads=3), ld_matrix(small_panel)
        )

    def test_zero_samples_rejected(self):
        bm = BitMatrix(words=np.zeros((2, 0), dtype=np.uint64), n_samples=0)
        with pytest.raises(ValueError, match="zero samples"):
            ld_matrix(bm)


class TestLdCross:
    def test_matches_reference(self, rng):
        a = rng.integers(0, 2, size=(150, 9)).astype(np.uint8)
        b = rng.integers(0, 2, size=(150, 4)).astype(np.uint8)
        ref = reference_ld_cross(a, b)
        assert_allclose_nan(ld_cross(a, b), ref["r2"], atol=1e-12)
        np.testing.assert_allclose(ld_cross(a, b, stat="D"), ref["d"])

    def test_rejects_sample_mismatch(self, rng):
        a = rng.integers(0, 2, size=(10, 3)).astype(np.uint8)
        b = rng.integers(0, 2, size=(12, 3)).astype(np.uint8)
        with pytest.raises(ValueError, match="sample counts differ"):
            ld_cross(a, b)

    def test_cross_equals_full_matrix_block(self, small_panel):
        """Cross-LD of two slices equals the corresponding block of full LD."""
        left, right = small_panel[:, :20], small_panel[:, 20:]
        full = ld_matrix(small_panel)
        block = ld_cross(left, right)
        assert_allclose_nan(block, full[:20, 20:], atol=1e-12)


class TestLdPairs:
    def test_matches_matrix_entries(self, small_panel):
        full = ld_matrix(small_panel)
        pairs = np.array([[0, 1], [5, 40], [12, 12], [52, 0]])
        vals = ld_pairs(small_panel, pairs)
        assert_allclose_nan(vals, full[pairs[:, 0], pairs[:, 1]], atol=1e-12)

    @pytest.mark.parametrize("stat", ["D", "H", "Dprime"])
    def test_stats_match_matrix(self, small_panel, stat):
        full = ld_matrix(small_panel, stat=stat)
        pairs = np.array([[3, 7], [11, 2]])
        assert_allclose_nan(
            ld_pairs(small_panel, pairs, stat=stat),
            full[pairs[:, 0], pairs[:, 1]],
            atol=1e-12,
        )

    def test_rejects_bad_pairs_shape(self, small_panel):
        with pytest.raises(ValueError, match=r"\(n_pairs, 2\)"):
            ld_pairs(small_panel, np.array([1, 2, 3]))

    def test_rejects_out_of_range(self, small_panel):
        with pytest.raises(ValueError, match="out of range"):
            ld_pairs(small_panel, np.array([[0, 999]]))

    def test_unknown_stat(self, small_panel):
        with pytest.raises(ValueError, match="unknown LD statistic"):
            ld_pairs(small_panel, np.array([[0, 1]]), stat="nope")

    def test_empty_pairs(self, small_panel):
        assert ld_pairs(small_panel, np.empty((0, 2), dtype=int)).size == 0


class TestLDResult:
    def test_lazy_h_computed_once(self, small_panel):
        result = compute_ld(small_panel)
        h1 = result.h
        assert result.h is h1  # cached

    def test_all_statistics_available(self, small_panel):
        result = compute_ld(small_panel)
        ref = reference_ld(small_panel)
        np.testing.assert_allclose(result.d, ref["d"], atol=1e-12)
        assert_allclose_nan(result.r2(), ref["r2"], atol=1e-12)
        assert result.d_prime().shape == ref["r2"].shape
        assert_allclose_nan(result.stat("r2"), ref["r2"], atol=1e-12)

    def test_stat_dispatch_unknown(self, small_panel):
        with pytest.raises(ValueError, match="unknown LD statistic"):
            compute_ld(small_panel).stat("w")

    def test_counts_are_integers(self, small_panel):
        result = compute_ld(small_panel)
        assert result.counts.dtype == np.int64


class TestAsBitmatrix:
    def test_passthrough(self, small_panel):
        bm = BitMatrix.from_dense(small_panel)
        assert as_bitmatrix(bm) is bm

    def test_converts_dense(self, small_panel):
        assert as_bitmatrix(small_panel) == BitMatrix.from_dense(small_panel)
