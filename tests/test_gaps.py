"""Tests for gap-aware LD (repro.analysis.gaps)."""

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.analysis.gaps import masked_ld_matrix, masked_ld_pair
from repro.core.ldmatrix import ld_matrix
from repro.encoding.masks import ValidityMask
from tests.conftest import assert_allclose_nan


def brute_force_masked_r2(data, valid, i, j):
    """Per-pair masked r² straight from the definitions."""
    both = (valid[:, i] & valid[:, j]).astype(bool)
    n = int(both.sum())
    if n == 0:
        return float("nan")
    si = data[both, i].astype(float)
    sj = data[both, j].astype(float)
    p, q = si.mean(), sj.mean()
    denom = p * q * (1 - p) * (1 - q)
    if denom == 0:
        return float("nan")
    d = (si * sj).mean() - p * q
    return d * d / denom


@pytest.fixture
def gapped(rng):
    data = rng.integers(0, 2, size=(90, 12)).astype(np.uint8)
    valid = (rng.random((90, 12)) > 0.15).astype(np.uint8)
    return data, valid


class TestMaskedLdPair:
    def test_matches_brute_force(self, gapped):
        data, valid = gapped
        mask = ValidityMask.from_dense(valid)
        for i, j in [(0, 1), (3, 9), (5, 5), (11, 0)]:
            got = masked_ld_pair(data * valid, mask, i, j)
            expected = brute_force_masked_r2(data, valid, i, j)
            if np.isnan(expected):
                assert np.isnan(got)
            else:
                assert got == pytest.approx(expected)

    def test_all_valid_equals_plain(self, small_panel):
        mask = ValidityMask.all_valid(*small_panel.shape)
        plain = ld_matrix(small_panel)
        for i, j in [(0, 1), (10, 40)]:
            got = masked_ld_pair(small_panel, mask, i, j)
            assert got == pytest.approx(plain[i, j], abs=1e-12)

    def test_rejects_shape_mismatch(self, small_panel):
        mask = ValidityMask.all_valid(10, 5)
        with pytest.raises(ValueError, match="does not match"):
            masked_ld_pair(small_panel, mask, 0, 1)


class TestMaskedLdMatrix:
    @pytest.mark.parametrize("stat", ["r2", "D", "H"])
    def test_matrix_matches_pairs(self, gapped, stat):
        data, valid = gapped
        mask = ValidityMask.from_dense(valid)
        clean = data * valid
        matrix = masked_ld_matrix(clean, mask, stat=stat)
        for i in range(0, 12, 3):
            for j in range(0, 12, 4):
                pair = masked_ld_pair(clean, mask, i, j, stat=stat)
                if np.isnan(pair):
                    assert np.isnan(matrix[i, j])
                else:
                    assert matrix[i, j] == pytest.approx(pair)

    def test_all_valid_equals_plain_ld(self, small_panel):
        mask = ValidityMask.all_valid(*small_panel.shape)
        assert_allclose_nan(
            masked_ld_matrix(small_panel, mask),
            ld_matrix(small_panel),
            atol=1e-12,
        )

    @given(seed=st.integers(min_value=0, max_value=2**31), gap_rate=st.floats(0.0, 0.5))
    @settings(max_examples=15, deadline=None)
    def test_property_random_gap_patterns(self, seed, gap_rate):
        rng = np.random.default_rng(seed)
        data = rng.integers(0, 2, size=(50, 6)).astype(np.uint8)
        valid = (rng.random((50, 6)) > gap_rate).astype(np.uint8)
        mask = ValidityMask.from_dense(valid)
        matrix = masked_ld_matrix(data * valid, mask)
        for i in range(6):
            for j in range(6):
                expected = brute_force_masked_r2(data, valid, i, j)
                if np.isnan(expected):
                    assert np.isnan(matrix[i, j])
                else:
                    assert matrix[i, j] == pytest.approx(expected, abs=1e-9)

    def test_gap_cells_do_not_leak_into_result(self, gapped):
        """Data bits under gaps must not affect the statistic."""
        data, valid = gapped
        mask = ValidityMask.from_dense(valid)
        scrambled = data.copy()
        gaps = valid == 0
        scrambled[gaps] ^= 1  # flip every hidden cell
        a = masked_ld_matrix(data * valid, mask)
        b = masked_ld_matrix((scrambled * valid), mask)
        assert_allclose_nan(a, b, atol=1e-12)

    def test_unknown_stat(self, gapped):
        data, valid = gapped
        mask = ValidityMask.from_dense(valid)
        with pytest.raises(ValueError, match="unknown LD statistic"):
            masked_ld_matrix(data * valid, mask, stat="Dprime")

    def test_rejects_shape_mismatch(self, small_panel):
        mask = ValidityMask.all_valid(10, 5)
        with pytest.raises(ValueError, match="does not match"):
            masked_ld_matrix(small_panel, mask)
