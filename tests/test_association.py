"""Tests for the mini-GWAS module (repro.analysis.association)."""

import numpy as np
import pytest
from scipy import stats as sp_stats

from repro.analysis.association import (
    association_scan,
    ld_clump,
    simulate_phenotype,
)


@pytest.fixture
def panel(rng):
    return rng.integers(0, 2, size=(400, 30)).astype(np.uint8)


class TestSimulatePhenotype:
    def test_prevalence_respected(self, panel, rng):
        is_case = simulate_phenotype(
            panel, np.array([3]), np.array([1.0]), prevalence=0.3, rng=rng
        )
        assert is_case.shape == (400,)
        assert is_case.mean() == pytest.approx(0.3, abs=0.05)

    def test_causal_allele_enriched_in_cases(self, panel, rng):
        is_case = simulate_phenotype(
            panel, np.array([5]), np.array([3.0]), noise_sd=0.5, rng=rng
        )
        case_freq = panel[is_case, 5].mean()
        control_freq = panel[~is_case, 5].mean()
        assert case_freq > control_freq + 0.2

    def test_validation(self, panel, rng):
        with pytest.raises(ValueError, match="matching 1-D"):
            simulate_phenotype(panel, np.array([1, 2]), np.array([1.0]), rng=rng)
        with pytest.raises(ValueError, match="out of range"):
            simulate_phenotype(panel, np.array([99]), np.array([1.0]), rng=rng)
        with pytest.raises(ValueError, match="prevalence"):
            simulate_phenotype(
                panel, np.array([1]), np.array([1.0]), prevalence=0.0, rng=rng
            )


class TestAssociationScan:
    def test_matches_scipy_contingency(self, panel, rng):
        is_case = rng.random(400) < 0.5
        result = association_scan(panel, is_case)
        for snp in (0, 7, 29):
            table = np.array(
                [
                    [panel[is_case, snp].sum(), (~panel[is_case, snp].astype(bool)).sum()],
                    [panel[~is_case, snp].sum(), (~panel[~is_case, snp].astype(bool)).sum()],
                ]
            )
            chi2, p, _dof, _exp = sp_stats.chi2_contingency(
                table, correction=False
            )
            assert result.chi2[snp] == pytest.approx(chi2)
            assert result.p_values[snp] == pytest.approx(p)

    def test_causal_snp_is_top_hit(self, panel, rng):
        causal = 12
        is_case = simulate_phenotype(
            panel, np.array([causal]), np.array([4.0]), noise_sd=0.3, rng=rng
        )
        result = association_scan(panel, is_case)
        assert int(np.nanargmax(result.chi2)) == causal
        hits = result.hits(alpha=1e-3)
        assert hits.size >= 1 and hits[0] == causal

    def test_null_p_values_roughly_uniform(self, rng):
        panel = rng.integers(0, 2, size=(600, 200)).astype(np.uint8)
        is_case = rng.random(600) < 0.5
        result = association_scan(panel, is_case)
        defined = result.p_values[~np.isnan(result.p_values)]
        # Under the null, ~5 % of tests land below 0.05.
        assert (defined < 0.05).mean() == pytest.approx(0.05, abs=0.04)

    def test_monomorphic_snp_is_nan(self, rng):
        panel = rng.integers(0, 2, size=(100, 3)).astype(np.uint8)
        panel[:, 1] = 0
        is_case = rng.random(100) < 0.5
        result = association_scan(panel, is_case)
        assert np.isnan(result.chi2[1])
        assert np.isnan(result.p_values[1])

    def test_frequencies_reported(self, panel, rng):
        is_case = rng.random(400) < 0.5
        result = association_scan(panel, is_case)
        np.testing.assert_allclose(
            result.case_freq, panel[is_case].mean(axis=0)
        )
        np.testing.assert_allclose(
            result.control_freq, panel[~is_case].mean(axis=0)
        )

    def test_validation(self, panel):
        with pytest.raises(ValueError, match="shape"):
            association_scan(panel, np.zeros(10, dtype=bool))
        with pytest.raises(ValueError, match="at least one case"):
            association_scan(panel, np.zeros(400, dtype=bool))


class TestLdClump:
    def test_clumps_absorb_ld_partners(self, rng):
        n = 500
        causal = rng.integers(0, 2, n).astype(np.uint8)
        shadow = causal.copy()
        shadow[rng.random(n) < 0.05] ^= 1  # high-LD partner
        independent = rng.integers(0, 2, (n, 3)).astype(np.uint8)
        panel = np.column_stack([causal, shadow, independent])
        p_values = np.array([1e-10, 1e-7, 0.5, 0.5, 0.5])
        clumps = ld_clump(panel, p_values, p_threshold=1e-4, r2_threshold=0.5)
        assert len(clumps) == 1
        index, members = clumps[0]
        assert index == 0
        assert members.tolist() == [1]

    def test_independent_hits_form_separate_clumps(self, rng):
        panel = rng.integers(0, 2, size=(500, 6)).astype(np.uint8)
        p_values = np.array([1e-9, 0.9, 1e-6, 0.9, 0.9, 1e-5])
        clumps = ld_clump(panel, p_values, p_threshold=1e-4)
        indexes = [c[0] for c in clumps]
        assert indexes == [0, 2, 5]  # significance order
        for _idx, members in clumps:
            assert members.size == 0

    def test_window_limits_claiming(self, rng):
        n = 400
        causal = rng.integers(0, 2, n).astype(np.uint8)
        cols = [causal]
        cols += [rng.integers(0, 2, n).astype(np.uint8) for _ in range(10)]
        cols.append(causal)  # perfect LD but 11 positions away
        panel = np.stack(cols, axis=1)
        p_values = np.full(12, 0.9)
        p_values[0] = 1e-9
        p_values[11] = 1e-8
        clumps = ld_clump(
            panel, p_values, p_threshold=1e-4, r2_threshold=0.5, window=5
        )
        # Outside the window: two separate clumps despite perfect LD.
        assert [c[0] for c in clumps] == [0, 11]

    def test_nan_p_values_ignored(self, rng):
        panel = rng.integers(0, 2, size=(100, 3)).astype(np.uint8)
        p_values = np.array([np.nan, 1e-9, np.nan])
        clumps = ld_clump(panel, p_values)
        assert [c[0] for c in clumps] == [1]

    def test_validation(self, rng):
        panel = rng.integers(0, 2, size=(50, 4)).astype(np.uint8)
        with pytest.raises(ValueError, match="shape"):
            ld_clump(panel, np.zeros(3))
        with pytest.raises(ValueError, match="r2_threshold"):
            ld_clump(panel, np.zeros(4), r2_threshold=0.0)

    def test_end_to_end_gwas(self, rng):
        """Simulate, scan, clump: the causal SNP leads its clump."""
        n = 600
        causal_col = 8
        base = rng.integers(0, 2, size=(n, 20)).astype(np.uint8)
        # Give the causal SNP two LD shadows.
        for offset in (1, 2):
            shadow = base[:, causal_col].copy()
            shadow[rng.random(n) < 0.08] ^= 1
            base[:, causal_col + offset] = shadow
        is_case = simulate_phenotype(
            base, np.array([causal_col]), np.array([3.0]),
            noise_sd=0.4, rng=rng,
        )
        result = association_scan(base, is_case)
        clumps = ld_clump(
            base, result.p_values, p_threshold=1e-4, r2_threshold=0.4
        )
        assert clumps, "the planted signal must reach significance"
        index, members = clumps[0]
        assert index == causal_col
        assert set(members.tolist()) >= {causal_col + 1, causal_col + 2}
