"""Tests for the blocked popcount-GEMM driver (repro.core.gemm)."""

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st
from hypothesis.extra import numpy as hnp

from repro.core.blocking import BlockingParams
from repro.core.gemm import (
    gemm_operation_counts,
    popcount_gemm,
    popcount_gemm_flat,
    popcount_gram,
)
from repro.encoding.bitmatrix import pack_bits
from tests.conftest import reference_counts

# Tiny blocking so a small problem exercises every loop boundary and fringe.
TINY = BlockingParams(mc=4, nc=6, kc=3, mr=2, nr=3)
ODD = BlockingParams(mc=5, nc=10, kc=2, mr=5, nr=5)


def packed_panel(rng, n_samples, n_snps):
    dense = rng.integers(0, 2, size=(n_samples, n_snps)).astype(np.uint8)
    return dense, pack_bits(dense)


class TestPopcountGemm:
    @pytest.mark.parametrize("params", [TINY, ODD])
    @pytest.mark.parametrize("shape", [(7, 11), (8, 8), (1, 1), (13, 3)])
    def test_matches_float_reference(self, rng, params, shape):
        m, n = shape
        a_dense, a = packed_panel(rng, 130, m)
        b_dense, b = packed_panel(rng, 130, n)
        expected = np.rint(
            a_dense.astype(float).T @ b_dense.astype(float)
        ).astype(np.int64)
        np.testing.assert_array_equal(
            popcount_gemm(a, b, params=params), expected
        )

    @given(
        n_samples=st.integers(min_value=1, max_value=200),
        m=st.integers(min_value=1, max_value=10),
        n=st.integers(min_value=1, max_value=10),
        seed=st.integers(min_value=0, max_value=2**31),
    )
    @settings(max_examples=25, deadline=None)
    def test_property_matches_reference(self, n_samples, m, n, seed):
        rng = np.random.default_rng(seed)
        a_dense = rng.integers(0, 2, size=(n_samples, m)).astype(np.uint8)
        b_dense = rng.integers(0, 2, size=(n_samples, n)).astype(np.uint8)
        got = popcount_gemm(pack_bits(a_dense), pack_bits(b_dense), params=TINY)
        expected = np.rint(
            a_dense.astype(float).T @ b_dense.astype(float)
        ).astype(np.int64)
        np.testing.assert_array_equal(got, expected)

    def test_scalar_kernel_agrees(self, rng):
        _, a = packed_panel(rng, 70, 7)
        _, b = packed_panel(rng, 70, 5)
        np.testing.assert_array_equal(
            popcount_gemm(a, b, params=TINY, kernel="scalar"),
            popcount_gemm(a, b, params=TINY, kernel="numpy"),
        )

    def test_rejects_word_mismatch(self, rng):
        _, a = packed_panel(rng, 64, 3)
        _, b = packed_panel(rng, 128, 3)
        with pytest.raises(ValueError, match="word counts differ"):
            popcount_gemm(a, b)

    def test_rejects_wrong_dtype(self):
        a = np.zeros((2, 2), dtype=np.int64)
        with pytest.raises(TypeError, match="uint64"):
            popcount_gemm(a, a)

    def test_rejects_wrong_ndim(self):
        a = np.zeros(4, dtype=np.uint64)
        with pytest.raises(ValueError, match="2-D"):
            popcount_gemm(a, a)

    def test_empty_dimensions(self, rng):
        _, a = packed_panel(rng, 64, 3)
        empty = np.zeros((0, 1), dtype=np.uint64)
        assert popcount_gemm(a, empty).shape == (3, 0)
        assert popcount_gemm(empty, a).shape == (0, 3)


class TestPopcountGram:
    @pytest.mark.parametrize("params", [TINY, ODD])
    @pytest.mark.parametrize("n_snps", [1, 4, 7, 12, 17])
    def test_matches_full_gemm(self, rng, params, n_snps):
        dense, a = packed_panel(rng, 97, n_snps)
        np.testing.assert_array_equal(
            popcount_gram(a, params=params), reference_counts(dense)
        )

    def test_result_is_symmetric(self, rng):
        _, a = packed_panel(rng, 200, 15)
        c = popcount_gram(a, params=TINY)
        np.testing.assert_array_equal(c, c.T)

    def test_diagonal_is_allele_count(self, rng):
        dense, a = packed_panel(rng, 150, 9)
        c = popcount_gram(a, params=TINY)
        np.testing.assert_array_equal(np.diag(c), dense.sum(axis=0))


class TestPopcountGemmFlat:
    def test_matches_blocked(self, rng):
        _, a = packed_panel(rng, 321, 19)
        _, b = packed_panel(rng, 321, 8)
        np.testing.assert_array_equal(
            popcount_gemm_flat(a, b), popcount_gemm(a, b, params=TINY)
        )

    def test_row_chunking_boundary(self, rng):
        """Force a multi-chunk pass via a tiny temp budget."""
        _, a = packed_panel(rng, 128, 10)
        _, b = packed_panel(rng, 128, 6)
        chunked = popcount_gemm_flat(a, b, max_temp_bytes=b.shape[0] * 2 * 8 * 6)
        np.testing.assert_array_equal(chunked, popcount_gemm_flat(a, b))

    def test_empty(self):
        empty = np.zeros((0, 2), dtype=np.uint64)
        other = np.zeros((3, 2), dtype=np.uint64)
        assert popcount_gemm_flat(empty, other).shape == (0, 3)


class TestOperationCounts:
    @pytest.mark.parametrize("params", [TINY, ODD])
    @pytest.mark.parametrize("shape", [(7, 11, 5), (8, 6, 3), (1, 1, 1)])
    def test_triple_counts_include_padding(self, params, shape):
        m, n, k = shape
        counts = gemm_operation_counts(m, n, k, params)
        mr, nr = params.mr, params.nr
        # Every kernel call does kc_eff * mr * nr of each op; totals must be
        # >= the unpadded mnk and equal across the three op classes.
        assert counts.and_ops == counts.popcnt_ops == counts.add_ops
        assert counts.and_ops >= m * n * k
        assert counts.total_ops == 3 * counts.and_ops

    def test_kernel_calls_formula(self):
        params = BlockingParams(mc=4, nc=4, kc=2, mr=2, nr=2)
        counts = gemm_operation_counts(8, 8, 4, params)
        # jc: 2 panels, pc: 2 chunks, ic: 2 blocks, per block 2x2 slivers.
        assert counts.kernel_calls == 2 * 2 * 2 * 2 * 2

    def test_symmetric_does_less_work(self):
        full = gemm_operation_counts(32, 32, 8, TINY)
        tri = gemm_operation_counts(32, 32, 8, TINY, symmetric=True)
        assert tri.total_ops < full.total_ops
        # Must still cover at least the lower triangle.
        assert tri.and_ops >= 32 * 33 // 2 * 8

    def test_counts_mirror_executed_gram(self, rng):
        """The symbolic walk matches what popcount_gram actually computes."""
        dense, a = packed_panel(rng, 100, 13)
        counts = gemm_operation_counts(13, 13, a.shape[1], TINY, symmetric=True)
        # Execute and verify correctness — the structural proxy for "the
        # symbolic walk visited the same tiles the driver did".
        np.testing.assert_array_equal(
            popcount_gram(a, params=TINY), reference_counts(dense)
        )
        assert counts.kernel_calls > 0

    def test_pack_word_accounting(self):
        params = BlockingParams(mc=4, nc=4, kc=4, mr=2, nr=2)
        counts = gemm_operation_counts(4, 4, 4, params)
        # One B panel (4x4 padded to nr multiples: 2 slivers x 4 x 2) and one
        # A block (2 slivers x 4 x 2).
        assert counts.b_pack_words == 16
        assert counts.a_pack_words == 16
        assert counts.c_update_words == counts.kernel_calls * 4

    def test_rejects_negative_dims(self):
        with pytest.raises(ValueError, match="non-negative"):
            gemm_operation_counts(-1, 2, 2, TINY)

    def test_load_counts_scale_with_k(self):
        small = gemm_operation_counts(16, 16, 4, TINY)
        big = gemm_operation_counts(16, 16, 8, TINY)
        assert big.a_load_words == 2 * small.a_load_words
        assert big.b_load_words == 2 * small.b_load_words
