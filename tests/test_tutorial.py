"""Execute the tutorial's Python blocks in order.

docs/TUTORIAL.md is the narrative map from the paper's equations to the
API; this test runs its code blocks cumulatively in one namespace so any
API drift breaks the build, not the reader.
"""

import re
from pathlib import Path

TUTORIAL = Path(__file__).resolve().parent.parent / "docs" / "TUTORIAL.md"


def python_blocks(text: str) -> list[str]:
    return re.findall(r"```python\n(.*?)```", text, flags=re.DOTALL)


def test_tutorial_blocks_execute_in_order():
    text = TUTORIAL.read_text()
    blocks = python_blocks(text)
    assert len(blocks) >= 8, "tutorial should keep its worked examples"
    namespace: dict = {}
    for idx, block in enumerate(blocks):
        try:
            exec(compile(block, f"tutorial-block-{idx}", "exec"), namespace)
        except Exception as exc:  # pragma: no cover - failure reporting
            raise AssertionError(
                f"tutorial block {idx} failed: {exc}\n---\n{block}"
            ) from exc
    # Spot-check that the narrative claims executed as stated.
    assert namespace["est"].percent_of_peak > 84.0
    assert namespace["scan"].ld_evaluations > 0
