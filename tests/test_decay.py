"""Tests for LD decay curves (repro.analysis.decay)."""

import numpy as np
import pytest

from repro.analysis.decay import DecayCurve, ld_decay_curve
from repro.simulate.coalescent import simulate_chunked_region


class TestLdDecayCurve:
    def test_bin_accounting(self, rng):
        panel = rng.integers(0, 2, size=(60, 15)).astype(np.uint8)
        positions = np.arange(15.0) * 10
        curve = ld_decay_curve(panel, positions, n_bins=7)
        n_pairs = 15 * 14 // 2
        # NaN pairs (monomorphic SNPs) are excluded; the rest land in bins.
        assert curve.counts.sum() <= n_pairs
        assert curve.bin_edges.size == 8
        assert curve.mean_r2.size == 7

    def test_mean_values_match_manual_binning(self, rng):
        panel = rng.integers(0, 2, size=(100, 10)).astype(np.uint8)
        positions = np.linspace(0, 90, 10)
        curve = ld_decay_curve(panel, positions, n_bins=3, max_distance=90.0)
        from repro.core.ldmatrix import ld_matrix

        r2 = ld_matrix(panel)
        iu = np.triu_indices(10, k=1)
        dist = np.abs(positions[iu[0]] - positions[iu[1]])
        vals = r2[iu]
        ok = ~np.isnan(vals)
        # Same half-open convention as the implementation: bin b covers
        # [edges[b], edges[b+1]), with max_distance folded into the last bin.
        width = 90.0 / 3
        which = np.minimum((dist / width).astype(int), 2)
        for b in range(3):
            sel = ok & (which == b) & (dist <= 90.0)
            assert curve.counts[b] == sel.sum()
            if curve.counts[b]:
                assert curve.mean_r2[b] == pytest.approx(
                    vals[sel].mean(), rel=1e-6
                )

    def test_decay_on_linked_blocks(self):
        """Chunked-coalescent data: within-chunk LD >> between-chunk LD."""
        rng = np.random.default_rng(11)
        sample = simulate_chunked_region(
            50, n_chunks=6, theta_per_chunk=8.0, rng=rng, chunk_length=100.0
        )
        curve = ld_decay_curve(
            sample.haplotypes, sample.positions, n_bins=6, max_distance=600.0
        )
        populated = curve.counts > 0
        first = curve.mean_r2[populated][0]
        last = curve.mean_r2[populated][-1]
        assert first > last  # LD decays with distance

    def test_half_decay_distance(self):
        curve = DecayCurve(
            bin_edges=np.array([0.0, 1.0, 2.0, 3.0]),
            mean_r2=np.array([0.8, 0.5, 0.3]),
            counts=np.array([5, 5, 5]),
        )
        assert curve.half_decay_distance() == pytest.approx(2.5)

    def test_half_decay_nan_when_no_drop(self):
        curve = DecayCurve(
            bin_edges=np.array([0.0, 1.0, 2.0]),
            mean_r2=np.array([0.8, 0.7]),
            counts=np.array([5, 5]),
        )
        assert np.isnan(curve.half_decay_distance())

    def test_bin_centers(self):
        curve = DecayCurve(
            bin_edges=np.array([0.0, 2.0, 4.0]),
            mean_r2=np.array([0.5, 0.4]),
            counts=np.array([1, 1]),
        )
        np.testing.assert_allclose(curve.bin_centers, [1.0, 3.0])

    def test_validation(self, rng):
        panel = rng.integers(0, 2, size=(30, 5)).astype(np.uint8)
        with pytest.raises(ValueError, match="positions"):
            ld_decay_curve(panel, np.arange(4.0))
        with pytest.raises(ValueError, match="n_bins"):
            ld_decay_curve(panel, np.arange(5.0), n_bins=0)
        with pytest.raises(ValueError, match="max_distance"):
            ld_decay_curve(panel, np.arange(5.0), max_distance=-1.0)
        with pytest.raises(ValueError, match="at least 2"):
            ld_decay_curve(panel[:, :1], np.arange(1.0))
