"""Tests for extended haplotype homozygosity (repro.analysis.ehh)."""

import numpy as np
import pytest

from repro.analysis.ehh import ehh_decay, integrated_ehh



def brute_force_ehh(dense, core, distance, allele, direction=+1):
    """EHH from the definition: identical extended haplotypes."""
    carriers = np.flatnonzero(dense[:, core] == allele)
    n = carriers.size
    if n < 2:
        return float("nan")
    lo = min(core, core + direction * distance)
    hi = max(core, core + direction * distance)
    segment = dense[carriers, lo : hi + 1]
    _, counts = np.unique(segment, axis=0, return_counts=True)
    pairs = (counts * (counts - 1) // 2).sum()
    return pairs / (n * (n - 1) // 2)


@pytest.fixture
def panel(rng):
    return rng.integers(0, 2, size=(60, 25)).astype(np.uint8)


class TestEhhDecay:
    def test_matches_brute_force(self, panel):
        core = 10
        curve = ehh_decay(panel, core, max_distance=8)
        for idx, distance in enumerate(curve.distances):
            for allele, values in (
                (1, curve.ehh_derived),
                (0, curve.ehh_ancestral),
            ):
                expected = brute_force_ehh(panel, core, int(distance), allele)
                got = values[idx]
                if np.isnan(expected):
                    assert np.isnan(got)
                else:
                    assert got == pytest.approx(expected)

    def test_leftward_direction(self, panel):
        core = 20
        curve = ehh_decay(panel, core, max_distance=6, direction=-1)
        for idx, distance in enumerate(curve.distances):
            expected = brute_force_ehh(
                panel, core, int(distance), 1, direction=-1
            )
            got = curve.ehh_derived[idx]
            if np.isnan(expected):
                assert np.isnan(got)
            else:
                assert got == pytest.approx(expected)

    def test_starts_at_one_and_decreases(self, panel):
        curve = ehh_decay(panel, 5, max_distance=10)
        assert curve.ehh_derived[0] == pytest.approx(1.0)
        assert curve.ehh_ancestral[0] == pytest.approx(1.0)
        # Monotone non-increasing: refinement can only split classes.
        assert np.all(np.diff(curve.ehh_derived) <= 1e-12)
        assert np.all(np.diff(curve.ehh_ancestral) <= 1e-12)

    def test_clipped_at_region_edge(self, panel):
        curve = ehh_decay(panel, 22, max_distance=10)
        assert curve.distances[-1] == 2  # only 2 SNPs to the right

    def test_identical_haplotypes_hold_ehh_at_one(self):
        dense = np.tile(np.array([0, 1, 1, 0, 1], dtype=np.uint8), (10, 1))
        curve = ehh_decay(dense, 1, max_distance=3)
        np.testing.assert_allclose(curve.ehh_derived, 1.0)

    def test_swept_allele_shows_slow_decay(self):
        """The statistic's purpose: a derived allele riding one extended
        haplotype keeps EHH high; the ancestral background does not."""
        rng = np.random.default_rng(5)
        n, width = 80, 21
        core = width // 2
        background = rng.integers(0, 2, size=(n, width)).astype(np.uint8)
        swept_haplotype = rng.integers(0, 2, width).astype(np.uint8)
        carriers = rng.choice(n, size=30, replace=False)
        dense = background
        dense[carriers] = swept_haplotype  # carriers share one haplotype
        dense[:, core] = 0
        dense[carriers, core] = 1
        curve = ehh_decay(dense, core, max_distance=8)
        ihh_derived, ihh_ancestral = integrated_ehh(curve, cutoff=0.0)
        np.testing.assert_allclose(curve.ehh_derived, 1.0)  # perfect sharing
        assert ihh_derived > 2.0 * ihh_ancestral

    def test_validation(self, panel):
        with pytest.raises(ValueError, match="out of range"):
            ehh_decay(panel, 99)
        with pytest.raises(ValueError, match="direction"):
            ehh_decay(panel, 5, direction=0)
        with pytest.raises(ValueError, match="max_distance"):
            ehh_decay(panel, 5, max_distance=-1)


class TestIntegratedEhh:
    def test_trapezoid_value(self, panel):
        curve = ehh_decay(panel, 10, max_distance=6)
        ihh_d, ihh_a = integrated_ehh(curve, cutoff=0.0)
        expected_d = np.trapezoid(
            np.nan_to_num(curve.ehh_derived), curve.distances
        )
        assert ihh_d == pytest.approx(expected_d)
        assert ihh_a >= 0.0

    def test_cutoff_truncates(self, panel):
        curve = ehh_decay(panel, 10, max_distance=10)
        full, _ = integrated_ehh(curve, cutoff=0.0)
        truncated, _ = integrated_ehh(curve, cutoff=0.9)
        assert truncated <= full

    def test_validation(self, panel):
        curve = ehh_decay(panel, 10, max_distance=4)
        with pytest.raises(ValueError, match="cutoff"):
            integrated_ehh(curve, cutoff=1.5)
