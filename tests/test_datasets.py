"""Tests for the benchmark dataset generators (repro.simulate.datasets)."""

import numpy as np
import pytest

from repro.encoding.bitmatrix import BitMatrix
from repro.simulate.datasets import (
    DATASET_SHAPES,
    dataset_A,
    dataset_B,
    dataset_C,
    neutral_sfs_frequencies,
    simulate_sfs_panel,
)


class TestSfsPanel:
    def test_packed_shape(self, rng):
        panel = simulate_sfs_panel(100, 40, rng=rng)
        assert isinstance(panel, BitMatrix)
        assert panel.shape == (100, 40)

    def test_dense_variant(self, rng):
        dense = simulate_sfs_panel(50, 20, rng=rng, as_bitmatrix=False)
        assert dense.shape == (50, 20)
        assert set(np.unique(dense)) <= {0, 1}

    def test_mostly_polymorphic(self, rng):
        panel = simulate_sfs_panel(500, 300, rng=rng)
        counts = panel.allele_counts()
        poly = ((counts > 0) & (counts < 500)).mean()
        assert poly > 0.9

    def test_sfs_is_singleton_heavy(self):
        """Neutral SFS: rare variants dominate (mean frequency well below 0.5)."""
        rng = np.random.default_rng(123)
        freqs = neutral_sfs_frequencies(5000, 1000, rng)
        assert freqs.mean() < 0.25
        assert (freqs < 0.1).mean() > 0.5

    def test_packed_frequencies_follow_target(self):
        """The blockwise packed generator honours the drawn frequencies."""
        rng = np.random.default_rng(7)
        panel = simulate_sfs_panel(2000, 600, rng=rng)
        freqs = panel.allele_frequencies()
        target = neutral_sfs_frequencies(600, 2000, np.random.default_rng(7))
        # Same generator state ordering isn't guaranteed; compare the
        # distributions instead of per-site values.
        assert abs(freqs.mean() - target.mean()) < 0.05

    def test_rejects_bad_shape(self, rng):
        with pytest.raises(ValueError, match=">= 2 samples"):
            simulate_sfs_panel(1, 10, rng=rng)
        with pytest.raises(ValueError, match=">= 2 samples"):
            simulate_sfs_panel(10, 0, rng=rng)

    def test_word_boundary_sample_counts(self, rng):
        for n in (63, 64, 65, 128):
            panel = simulate_sfs_panel(n, 10, rng=rng)
            assert panel.n_samples == n
            # Padding invariant holds (BitMatrix constructor enforces it).
            assert panel.allele_counts().max() <= n


class TestPaperDatasets:
    def test_shapes_registry(self):
        assert DATASET_SHAPES["A"] == (2504, 10000)
        assert DATASET_SHAPES["B"] == (10000, 10000)
        assert DATASET_SHAPES["C"] == (100000, 10000)

    @pytest.mark.parametrize(
        "factory,samples", [(dataset_A, 2504), (dataset_B, 10000), (dataset_C, 100000)]
    )
    def test_scaled_generation(self, factory, samples):
        panel = factory(scale=0.01)
        assert panel.n_samples == max(2, round(samples * 0.01))
        assert panel.n_snps == 100

    def test_deterministic_by_seed(self):
        a = dataset_A(scale=0.005)
        b = dataset_A(scale=0.005)
        assert a == b

    def test_different_seeds_differ(self):
        a = dataset_A(scale=0.005, seed=1)
        b = dataset_A(scale=0.005, seed=2)
        assert a != b

    def test_rejects_bad_scale(self):
        with pytest.raises(ValueError, match="scale"):
            dataset_A(scale=0.0)
        with pytest.raises(ValueError, match="scale"):
            dataset_B(scale=1.5)
