"""Tests for the hierarchical span profiler and its hot-path hooks.

Covers repro.observe.spans itself (self/inclusive accounting, per-thread
buffers, overflow behaviour, the null singleton, install/restore) and the
instrumentation wired through the kernels and the engine: phase spans in
popcount_gemm/popcount_gram, per-tile phase_seconds shipped back through
TileResult, the driver.* spans, and composition with fault injection and
batched dispatch.
"""

from __future__ import annotations

import threading
import time

import numpy as np
import pytest

from repro.core.engine import run_engine
from repro.core.gemm import popcount_gemm, popcount_gram
from repro.core.ldmatrix import ld_matrix
from repro.core.streaming import NpyMemmapSink
from repro.faults import FaultPlan, FaultSpec
from repro.observe import MetricsRecorder
from repro.observe.spans import (
    NULL_PROFILER,
    SpanProfiler,
    current_profiler,
    install_profiler,
    profiling,
    span,
)


@pytest.fixture
def panel(rng):
    return rng.integers(0, 2, size=(60, 29)).astype(np.uint8)


def _phases_of(recorder: MetricsRecorder) -> dict[str, float]:
    return {
        key[len("phase."):]: hist.total
        for key, hist in recorder.timers.items()
        if key.startswith("phase.")
    }


class TestSpanProfiler:
    def test_self_time_excludes_children(self):
        profiler = SpanProfiler()
        with profiler.span("parent"):
            time.sleep(0.01)
            with profiler.span("child"):
                time.sleep(0.02)
        totals = profiler.totals()
        assert set(totals) == {"parent", "child"}
        parent, child = totals["parent"], totals["child"]
        assert child["seconds"] >= 0.015
        assert parent["inclusive_seconds"] >= (
            parent["seconds"] + child["seconds"]
        ) * 0.99
        # Self times are disjoint: they sum to the root's inclusive time.
        assert parent["seconds"] + child["seconds"] == pytest.approx(
            parent["inclusive_seconds"], rel=0.02
        )

    def test_records_carry_depth_and_thread(self):
        profiler = SpanProfiler()
        with profiler.span("outer"):
            with profiler.span("inner"):
                pass
        records = profiler.records()
        by_name = {r.name: r for r in records}
        assert by_name["inner"].depth == 1
        assert by_name["outer"].depth == 0
        # Children exit (and record) before their parents.
        assert records[0].name == "inner"
        assert all(r.thread == threading.current_thread().name
                   for r in records)
        assert all(r.self_seconds <= r.inclusive_seconds + 1e-12
                   for r in records)

    def test_mark_collect_window_is_per_thread_and_disjoint(self):
        profiler = SpanProfiler()
        with profiler.span("before"):
            pass
        mark = profiler.mark()
        with profiler.span("a"):
            with profiler.span("b"):
                pass
        with profiler.span("a"):
            pass
        window = profiler.collect(mark)
        assert set(window) == {"a", "b"}
        assert window["a"] >= 0 and window["b"] >= 0
        # A later mark starts an empty window.
        assert profiler.collect(profiler.mark()) == {}

    def test_threads_record_into_separate_buffers(self):
        profiler = SpanProfiler()

        def work(name: str) -> None:
            for _ in range(5):
                with profiler.span(name):
                    pass

        threads = [threading.Thread(target=work, args=(f"t{i}",))
                   for i in range(3)]
        for t in threads:
            t.start()
        for t in threads:
            t.join()
        totals = profiler.totals()
        assert {f"t{i}" for i in range(3)} <= set(totals)
        assert all(totals[f"t{i}"]["count"] == 5 for i in range(3))

    def test_capacity_overflow_drops_and_counts(self):
        profiler = SpanProfiler(capacity=4)
        for _ in range(10):
            with profiler.span("x"):
                pass
        assert profiler.n_dropped == 6
        assert profiler.totals()["x"]["count"] == 4

    def test_span_closes_on_exception(self):
        profiler = SpanProfiler()
        with pytest.raises(RuntimeError):
            with profiler.span("boom"):
                raise RuntimeError("injected")
        assert profiler.totals()["boom"]["count"] == 1
        assert profiler.mark() == 1  # nothing left open on the stack

    def test_rejects_nonpositive_capacity(self):
        with pytest.raises(ValueError, match="capacity"):
            SpanProfiler(capacity=0)


class TestNullProfilerAndInstall:
    def test_default_is_null_and_noop(self):
        assert current_profiler() is NULL_PROFILER
        assert not NULL_PROFILER.enabled
        with span("anything"):
            pass
        assert NULL_PROFILER.totals() == {}
        assert NULL_PROFILER.records() == []
        assert NULL_PROFILER.collect(NULL_PROFILER.mark()) == {}

    def test_null_span_is_one_shared_object(self):
        assert NULL_PROFILER.span("a") is NULL_PROFILER.span("b")

    def test_install_returns_previous_and_none_means_off(self):
        profiler = SpanProfiler()
        previous = install_profiler(profiler)
        try:
            assert previous is NULL_PROFILER
            assert current_profiler() is profiler
        finally:
            assert install_profiler(None) is profiler
        assert current_profiler() is NULL_PROFILER

    def test_profiling_context_installs_and_restores(self):
        with profiling() as profiler:
            assert current_profiler() is profiler
            with span("inside"):
                pass
        assert current_profiler() is NULL_PROFILER
        assert profiler.totals()["inside"]["count"] == 1


class TestKernelSpans:
    def test_gram_records_all_kernel_phases(self, rng):
        a = rng.integers(0, 2**60, size=(96, 3), dtype=np.uint64)
        with profiling() as profiler:
            popcount_gram(a)
        totals = profiler.totals()
        assert {"gram", "pack_a", "pack_b", "plane_matmul", "copy_out",
                "mirror"} <= set(totals)
        # Self times are disjoint, so the children cannot exceed the root.
        children = sum(
            entry["seconds"] for name, entry in totals.items()
            if name != "gram"
        )
        root = totals["gram"]
        assert children <= root["inclusive_seconds"] * 1.01
        assert root["inclusive_seconds"] == pytest.approx(
            root["seconds"] + children, rel=0.02
        )

    def test_gemm_records_under_gemm_root(self, rng):
        a = rng.integers(0, 2**60, size=(40, 2), dtype=np.uint64)
        b = rng.integers(0, 2**60, size=(30, 2), dtype=np.uint64)
        with profiling() as profiler:
            popcount_gemm(a, b)
        totals = profiler.totals()
        assert "gemm" in totals and "mirror" not in totals
        assert {"pack_a", "pack_b", "plane_matmul", "copy_out"} <= set(totals)

    def test_results_identical_with_and_without_profiling(self, rng):
        a = rng.integers(0, 2**60, size=(50, 3), dtype=np.uint64)
        bare = popcount_gram(a)
        with profiling():
            profiled = popcount_gram(a)
        np.testing.assert_array_equal(bare, profiled)


class TestEngineSpans:
    @pytest.mark.parametrize("engine", ["serial", "threads", "processes"])
    def test_phase_seconds_ship_back_from_every_engine(self, panel, engine):
        recorder = MetricsRecorder(keep_events=True)
        profiler = SpanProfiler()
        report = run_engine(
            panel, lambda i, j, b: None, engine=engine, block_snps=8,
            n_workers=2, recorder=recorder, profiler=profiler,
        )
        assert report.complete
        phases = _phases_of(recorder)
        assert {"tile", "stat", "gemm", "pack_a", "pack_b",
                "plane_matmul", "copy_out"} <= set(phases)
        # The caller's profiler is uninstalled again after the run.
        assert current_profiler() is NULL_PROFILER

    def test_per_tile_phases_sum_to_compute_seconds(self, panel):
        # Acceptance bar: the per-tile phase breakdown attributes the
        # tile's measured wall-clock to within 10%.
        recorder = MetricsRecorder(keep_events=True)
        report = run_engine(
            panel, lambda i, j, b: None, engine="serial", block_snps=8,
            recorder=recorder, profiler=SpanProfiler(),
        )
        assert report.complete
        events = [e for e in recorder.events if e["kind"] == "tile_computed"]
        assert events
        for event in events:
            assert "phases" in event
            attributed = sum(event["phases"].values())
            assert attributed == pytest.approx(
                event["compute_s"], rel=0.10
            )

    def test_driver_spans_and_sink_mirror(self, panel, tmp_path):
        recorder = MetricsRecorder()
        profiler = SpanProfiler()
        with NpyMemmapSink(tmp_path / "ld.npy", panel.shape[1]) as sink:
            report = run_engine(
                panel, sink, engine="threads", block_snps=8, n_workers=2,
                manifest_path=tmp_path / "ld.manifest",
                recorder=recorder, profiler=profiler,
            )
        assert report.complete
        totals = profiler.totals()
        assert {"driver.dispatch", "driver.wait", "driver.deliver",
                "driver.manifest_append", "mirror"} <= set(totals)
        assert totals["driver.deliver"]["count"] == report.n_computed
        matrix = np.load(tmp_path / "ld.npy")
        np.testing.assert_array_equal(matrix, ld_matrix(panel))

    def test_no_phases_attached_when_profiling_off(self, panel):
        recorder = MetricsRecorder(keep_events=True)
        report = run_engine(
            panel, lambda i, j, b: None, engine="serial", block_snps=8,
            recorder=recorder,
        )
        assert report.complete
        assert not any(
            "phases" in e for e in recorder.events
            if e["kind"] == "tile_computed"
        )
        assert not _phases_of(recorder)

    def test_spans_compose_with_faults_and_batched_dispatch(self, panel):
        # Satellite: spans must survive fault injection (retries, backoff)
        # and batched dispatch without losing attribution or correctness.
        plan = FaultPlan(seed=11, specs=(
            FaultSpec(site="tile_compute", tile=(8, 0), attempts_below=1),
        ))
        recorder = MetricsRecorder(keep_events=True)
        profiler = SpanProfiler()
        blocks: dict[tuple[int, int], np.ndarray] = {}
        report = run_engine(
            panel, lambda i, j, b: blocks.__setitem__((i, j), b.copy()),
            engine="threads", block_snps=8, n_workers=2, batch_tiles=2,
            max_retries=2, retry_backoff=0.0, faults=plan,
            recorder=recorder, profiler=profiler,
        )
        assert report.complete and report.n_retries == 1
        assert report.n_batches >= 1
        assert recorder.event_count("tile_retry") == 1
        phases = _phases_of(recorder)
        assert {"tile", "plane_matmul", "stat"} <= set(phases)
        # Every computed tile shipped its phase breakdown, retried or not.
        events = [e for e in recorder.events if e["kind"] == "tile_computed"]
        assert len(events) == report.n_computed
        assert all("phases" in e for e in events)
        expected = ld_matrix(panel)
        for (i, j), block in blocks.items():
            np.testing.assert_array_equal(
                block, expected[i:i + block.shape[0], j:j + block.shape[1]]
            )
