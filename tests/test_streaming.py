"""Tests for out-of-core streaming LD (repro.core.streaming)."""

import numpy as np
import pytest

from repro.core.ldmatrix import ld_matrix
from repro.core.streaming import (
    NpyMemmapSink,
    ThresholdCollector,
    stream_ld_blocks,
)


@pytest.fixture
def panel(rng):
    return rng.integers(0, 2, size=(80, 37)).astype(np.uint8)


class TestStreamLdBlocks:
    @pytest.mark.parametrize("block_snps", [5, 16, 37, 100])
    @pytest.mark.parametrize("stat", ["r2", "D", "H"])
    def test_blocks_reassemble_full_matrix(self, panel, block_snps, stat):
        n = panel.shape[1]
        assembled = np.full((n, n), np.nan)

        def sink(i0, j0, block):
            assembled[i0 : i0 + block.shape[0], j0 : j0 + block.shape[1]] = block

        delivered = stream_ld_blocks(
            panel, sink, stat=stat, block_snps=block_snps
        )
        full = ld_matrix(panel, stat=stat)
        il = np.tril_indices(n)
        np.testing.assert_allclose(
            np.nan_to_num(assembled[il]), np.nan_to_num(full[il]), atol=1e-12
        )
        n_blocks = -(-n // block_snps)
        assert delivered == n_blocks * (n_blocks + 1) // 2

    def test_skip_diagonal_blocks(self, panel):
        seen = []
        stream_ld_blocks(
            panel,
            lambda i0, j0, b: seen.append((i0, j0)),
            block_snps=10,
            include_diagonal_blocks=False,
        )
        assert all(i0 != j0 for i0, j0 in seen)

    def test_validation(self, panel):
        with pytest.raises(ValueError, match="unknown LD statistic"):
            stream_ld_blocks(panel, lambda *a: None, stat="Dprime")
        with pytest.raises(ValueError, match="block_snps"):
            stream_ld_blocks(panel, lambda *a: None, block_snps=0)


class TestNpyMemmapSink:
    def test_full_matrix_on_disk(self, panel, tmp_path):
        n = panel.shape[1]
        path = tmp_path / "ld.npy"
        sink = NpyMemmapSink(path, n)
        stream_ld_blocks(panel, sink, stat="r2", block_snps=8, undefined=0.0)
        sink.close()
        on_disk = np.load(path)
        full = ld_matrix(panel, undefined=0.0)
        np.testing.assert_allclose(on_disk, full, atol=1e-12)
        # Symmetric including mirrored diagonal blocks.
        np.testing.assert_allclose(on_disk, on_disk.T)

    def test_rejects_bad_size(self, tmp_path):
        with pytest.raises(ValueError, match="positive"):
            NpyMemmapSink(tmp_path / "x.npy", 0)

    def test_context_manager_flushes_deterministically(self, panel, tmp_path):
        """Regression: blocks must be on disk the moment the sink closes.

        The old sink relied on the memmap finalizer running at garbage
        collection, so a resumed run reopening the file could read stale
        tiles; `with` + explicit flush/close makes durability deterministic.
        """
        n = panel.shape[1]
        path = tmp_path / "ld.npy"
        with NpyMemmapSink(path, n) as sink:
            stream_ld_blocks(panel, sink, block_snps=8, undefined=0.0)
            sink.flush()
            # Readable mid-run by an independent open, without closing.
            np.testing.assert_allclose(
                np.load(path, mmap_mode="r"),
                ld_matrix(panel, undefined=0.0),
                atol=1e-12,
            )
        assert sink._memmap is None  # released, not waiting on GC
        np.testing.assert_allclose(
            np.load(path), ld_matrix(panel, undefined=0.0), atol=1e-12
        )

    def test_close_is_idempotent_and_write_after_close_fails(
        self, panel, tmp_path
    ):
        sink = NpyMemmapSink(tmp_path / "ld.npy", panel.shape[1])
        sink.close()
        sink.close()
        sink.flush()  # no-op after close
        with pytest.raises(ValueError, match="closed"):
            sink(0, 0, np.zeros((2, 2)))

    def test_reopen_mode_preserves_existing_tiles(self, panel, tmp_path):
        """`mode="r+"` reopens in place — the resume path's requirement."""
        n = panel.shape[1]
        path = tmp_path / "ld.npy"
        with NpyMemmapSink(path, n) as sink:
            stream_ld_blocks(panel, sink, block_snps=8, undefined=0.0)
        before = np.load(path).copy()
        with NpyMemmapSink(path, n, mode="r+") as sink:
            pass  # write nothing: reopening must not truncate
        np.testing.assert_array_equal(np.load(path), before)

    def test_reopen_rejects_shape_mismatch(self, panel, tmp_path):
        path = tmp_path / "ld.npy"
        with NpyMemmapSink(path, 10):
            pass
        with pytest.raises(ValueError, match="shape"):
            NpyMemmapSink(path, 12, mode="r+")

    def test_reopen_shape_mismatch_message_is_actionable(self, tmp_path):
        """Regression: the r+ error must name both shapes and a way out."""
        path = tmp_path / "ld.npy"
        with NpyMemmapSink(path, 10):
            pass
        with pytest.raises(ValueError) as excinfo:
            NpyMemmapSink(path, 12, mode="r+")
        message = str(excinfo.value)
        assert "(10, 10)" in message and "(12, 12)" in message
        assert "rerun without resume" in message

    def test_reopen_rejects_missing_file(self, tmp_path):
        """Regression: r+ on a nonexistent path must not silently create it."""
        path = tmp_path / "never_written.npy"
        with pytest.raises(ValueError, match="does not exist"):
            NpyMemmapSink(path, 8, mode="r+")
        assert not path.exists()

    def test_reopen_rejects_wrong_dtype(self, tmp_path):
        path = tmp_path / "ld.npy"
        np.save(path, np.zeros((6, 6), dtype=np.float32))
        with pytest.raises(ValueError, match="float64"):
            NpyMemmapSink(path, 6, mode="r+")

    def test_reopen_rejects_non_npy_file(self, tmp_path):
        path = tmp_path / "ld.npy"
        path.write_bytes(b"this is not a numpy file")
        with pytest.raises(ValueError, match="not a readable .npy file"):
            NpyMemmapSink(path, 6, mode="r+")

    def test_reopen_rejects_fortran_order(self, tmp_path):
        path = tmp_path / "ld.npy"
        np.save(path, np.asfortranarray(np.zeros((6, 6))))
        with pytest.raises(ValueError, match="Fortran"):
            NpyMemmapSink(path, 6, mode="r+")

    def test_rejects_unknown_mode(self, tmp_path):
        with pytest.raises(ValueError, match="mode"):
            NpyMemmapSink(tmp_path / "x.npy", 5, mode="a+")


class TestThresholdCollector:
    def test_collects_each_pair_once(self, panel):
        collector = ThresholdCollector(threshold=0.2)
        stream_ld_blocks(
            panel, collector, stat="r2", block_snps=7, undefined=0.0
        )
        full = ld_matrix(panel, undefined=0.0)
        il = np.tril_indices(panel.shape[1], k=-1)
        expected = {
            (int(i), int(j))
            for i, j in zip(*il)
            if full[i, j] >= 0.2
        }
        got = {(i, j) for i, j, _v in collector.pairs}
        assert got == expected
        assert len(collector.pairs) == len(got)  # no duplicates

    def test_values_match_matrix(self, panel):
        collector = ThresholdCollector(threshold=0.1)
        stream_ld_blocks(panel, collector, block_snps=9, undefined=0.0)
        full = ld_matrix(panel, undefined=0.0)
        for i, j, value in collector.pairs:
            assert value == pytest.approx(full[i, j], abs=1e-12)

    def test_no_self_pairs(self, panel):
        collector = ThresholdCollector(threshold=0.0)
        stream_ld_blocks(panel, collector, block_snps=6, undefined=0.0)
        assert all(i != j for i, j, _v in collector.pairs)

    def test_redelivery_is_idempotent(self, panel):
        """Regression: a re-delivered tile must not duplicate its pairs.

        The engine's retry/resume machinery can deliver the same tile
        more than once (a retried batch, a torn-manifest replay). The
        old list-append collector accumulated a duplicate ``(i, j, v)``
        triple per redelivery; keyed-by-tile storage makes delivery
        idempotent.
        """
        collector = ThresholdCollector(threshold=0.1)
        stream_ld_blocks(panel, collector, block_snps=9, undefined=0.0)
        before = collector.pairs
        full = ld_matrix(panel, undefined=0.0)
        # Redeliver two tiles (one diagonal, one off-diagonal), twice.
        for _ in range(2):
            collector(0, 0, full[0:9, 0:9])
            collector(18, 9, full[18:27, 9:18])
        assert collector.pairs == before

    def test_pairs_order_is_deterministic(self, panel):
        """Tile-keyed assembly must equal serial streaming order even
        when tiles arrive shuffled (parallel engines deliver on finish)."""
        serial = ThresholdCollector(threshold=0.1)
        stream_ld_blocks(panel, serial, block_snps=9, undefined=0.0)
        shuffled = ThresholdCollector(threshold=0.1)
        deliveries = []
        stream_ld_blocks(
            panel,
            lambda i0, j0, b: deliveries.append((i0, j0, b.copy())),
            block_snps=9,
            undefined=0.0,
        )
        for i0, j0, block in reversed(deliveries):
            shuffled(i0, j0, block)
        assert shuffled.pairs == serial.pairs

    def test_pairs_are_python_scalars(self, panel):
        collector = ThresholdCollector(threshold=0.1)
        stream_ld_blocks(panel, collector, block_snps=9, undefined=0.0)
        assert collector.pairs
        for i, j, value in collector.pairs:
            assert type(i) is int and type(j) is int
            assert type(value) is float


class TestDiagonalMirror:
    def test_masked_mirror_matches_tril_reference(self, rng, tmp_path):
        """Regression: the index-free diagonal mirror is bit-identical to
        the old ``tril_indices`` fancy-indexed assignment."""
        for size in (1, 2, 7, 16):
            block = rng.random((size, size))
            with NpyMemmapSink(tmp_path / f"new{size}.npy", size) as sink:
                sink(0, 0, block)
                got = np.array(sink._memmap)
            # The historical implementation, verbatim.
            ref = np.zeros((size, size))
            ref[0:size, 0:size] = block
            il = np.tril_indices(size, k=-1)
            ref[0 + il[1], 0 + il[0]] = block[il]
            np.testing.assert_array_equal(got, ref)
