"""Tests for Tanimoto fingerprint similarity (repro.analysis.tanimoto)."""

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st
from hypothesis.extra import numpy as hnp

from repro.analysis.tanimoto import pack_fingerprints, tanimoto_matrix, tanimoto_pair

FPS = hnp.arrays(
    dtype=np.uint8,
    shape=st.tuples(
        st.integers(min_value=1, max_value=10),
        st.integers(min_value=1, max_value=200),
    ),
    elements=st.integers(min_value=0, max_value=1),
)


class TestTanimotoPair:
    def test_known_values(self):
        a = np.array([1, 1, 0, 0])
        b = np.array([1, 0, 1, 0])
        # x=1, p=2, q=2 -> 1/3
        assert tanimoto_pair(a, b) == pytest.approx(1 / 3)

    def test_identical_is_one(self, rng):
        fp = rng.integers(0, 2, 64)
        assert tanimoto_pair(fp, fp) == pytest.approx(1.0) or fp.sum() == 0

    def test_disjoint_is_zero(self):
        a = np.array([1, 1, 0, 0])
        b = np.array([0, 0, 1, 1])
        assert tanimoto_pair(a, b) == 0.0

    def test_both_empty_is_one(self):
        z = np.zeros(8)
        assert tanimoto_pair(z, z) == 1.0

    def test_empty_vs_nonempty_is_zero(self):
        assert tanimoto_pair(np.zeros(8), np.ones(8)) == 0.0

    def test_rejects_mismatched_lengths(self):
        with pytest.raises(ValueError, match="equal length"):
            tanimoto_pair(np.zeros(4), np.zeros(5))


class TestTanimotoMatrix:
    @given(fps=FPS)
    @settings(max_examples=25, deadline=None)
    def test_matches_pairwise(self, fps):
        matrix = tanimoto_matrix(fps)
        n = fps.shape[0]
        for a in range(n):
            for b in range(n):
                assert matrix[a, b] == pytest.approx(
                    tanimoto_pair(fps[a], fps[b]), abs=1e-12
                )

    @given(fps=FPS)
    @settings(max_examples=25, deadline=None)
    def test_bounds_symmetry_diagonal(self, fps):
        matrix = tanimoto_matrix(fps)
        assert np.all(matrix >= 0.0) and np.all(matrix <= 1.0)
        np.testing.assert_allclose(matrix, matrix.T)
        np.testing.assert_allclose(np.diag(matrix), 1.0)

    def test_cross_matrix(self, rng):
        db = rng.integers(0, 2, size=(8, 128)).astype(np.uint8)
        queries = rng.integers(0, 2, size=(3, 128)).astype(np.uint8)
        cross = tanimoto_matrix(db, queries)
        assert cross.shape == (8, 3)
        for i in range(8):
            for j in range(3):
                assert cross[i, j] == pytest.approx(
                    tanimoto_pair(db[i], queries[j]), abs=1e-12
                )

    def test_accepts_packed_input(self, rng):
        fps = rng.integers(0, 2, size=(5, 100)).astype(np.uint8)
        packed = pack_fingerprints(fps)
        np.testing.assert_allclose(
            tanimoto_matrix(packed), tanimoto_matrix(fps)
        )

    def test_rejects_width_mismatch(self, rng):
        a = rng.integers(0, 2, size=(3, 64)).astype(np.uint8)
        b = rng.integers(0, 2, size=(3, 128)).astype(np.uint8)
        with pytest.raises(ValueError, match="widths differ"):
            tanimoto_matrix(a, b)
