"""Tests for the GPU roofline projection (repro.machine.gpu)."""

import pytest

from repro.machine.gpu import GpuSpec, TESLA_K40, estimate_ld_gpu


class TestGpuSpec:
    def test_word_ops_rate(self):
        gpu = GpuSpec("x", n_sms=10, lanes_per_sm=32, frequency_hz=1e9,
                      mem_bandwidth_bytes=1e11)
        assert gpu.word_ops_per_second == 10 * 32 * 1e9

    def test_validation(self):
        with pytest.raises(ValueError, match=">= 1"):
            GpuSpec("x", n_sms=0, lanes_per_sm=1, frequency_hz=1e9,
                    mem_bandwidth_bytes=1e9)
        with pytest.raises(ValueError, match="positive"):
            GpuSpec("x", n_sms=1, lanes_per_sm=1, frequency_hz=0,
                    mem_bandwidth_bytes=1e9)


class TestEstimate:
    def test_future_work_claim_speedup(self):
        """The paper expects 'significant' GPU speedups; the K40-era
        projection against the Haswell scalar model delivers >5x."""
        est = estimate_ld_gpu(10000, 10000, 1563)  # dataset C shape
        assert est.speedup_vs_cpu > 5.0

    def test_memory_bound_at_small_k(self):
        """Thin problems (few words/SNP) are bandwidth-bound — the paper's
        'LD computations are memory-bound' premise."""
        est = estimate_ld_gpu(10000, 10000, 2, gpu=TESLA_K40)
        assert est.bound == "memory"

    def test_compute_bound_with_tiny_bandwidth(self):
        slow_mem = GpuSpec("slow", n_sms=15, lanes_per_sm=32,
                           frequency_hz=745e6, mem_bandwidth_bytes=1e6)
        est = estimate_ld_gpu(1000, 1000, 100, gpu=slow_mem)
        assert est.bound == "memory"
        fast_mem = GpuSpec("fast", n_sms=1, lanes_per_sm=1,
                           frequency_hz=1e6, mem_bandwidth_bytes=1e12)
        est2 = estimate_ld_gpu(1000, 1000, 100, gpu=fast_mem)
        assert est2.bound == "compute"

    def test_seconds_is_max_of_roofs(self):
        est = estimate_ld_gpu(2000, 2000, 64)
        assert est.seconds == max(est.compute_seconds, est.memory_seconds)

    def test_larger_tile_reduces_memory_time(self):
        small_tile = GpuSpec("a", 15, 32, 745e6, 288e9, shared_tile=16)
        big_tile = GpuSpec("b", 15, 32, 745e6, 288e9, shared_tile=128)
        a = estimate_ld_gpu(4096, 4096, 64, gpu=small_tile)
        b = estimate_ld_gpu(4096, 4096, 64, gpu=big_tile)
        assert b.memory_seconds < a.memory_seconds

    def test_rejects_bad_shape(self):
        with pytest.raises(ValueError, match="positive"):
            estimate_ld_gpu(0, 10, 10)
