"""Tests for FASTA I/O and alignment SNP calling (repro.io.fasta)."""

import numpy as np
import pytest

from repro.io.fasta import (
    call_snps_from_alignment,
    read_fasta,
    write_fasta,
)


class TestFastaRoundtrip:
    def test_roundtrip(self, tmp_path, rng):
        chars = rng.choice(list("ACGT-"), size=(6, 150))
        path = tmp_path / "aln.fasta"
        write_fasta(path, chars, names=[f"s{i}" for i in range(6)])
        back, names = read_fasta(path)
        np.testing.assert_array_equal(back, chars)
        assert names == [f"s{i}" for i in range(6)]

    def test_line_wrapping(self, tmp_path, rng):
        chars = rng.choice(list("ACGT"), size=(2, 200))
        path = tmp_path / "wrap.fa"
        write_fasta(path, chars, line_width=50)
        lines = path.read_text().splitlines()
        assert max(len(x) for x in lines if not x.startswith(">")) == 50
        back, _ = read_fasta(path)
        np.testing.assert_array_equal(back, chars)

    def test_default_names(self, tmp_path, rng):
        chars = rng.choice(list("ACGT"), size=(3, 10))
        path = tmp_path / "n.fasta"
        write_fasta(path, chars)
        _, names = read_fasta(path)
        assert names == ["seq0", "seq1", "seq2"]

    def test_write_rejects_bad_args(self, tmp_path):
        with pytest.raises(ValueError, match="2-D"):
            write_fasta(tmp_path / "x.fa", np.array(list("ACGT")))
        with pytest.raises(ValueError, match="names"):
            write_fasta(
                tmp_path / "x.fa",
                np.array([["A"], ["C"]]),
                names=["only-one"],
            )

    def test_read_rejects_malformed(self, tmp_path):
        path = tmp_path / "bad.fa"
        path.write_text("ACGT\n")
        with pytest.raises(ValueError, match="before any"):
            read_fasta(path)
        path.write_text("")
        with pytest.raises(ValueError, match="no FASTA records"):
            read_fasta(path)
        path.write_text(">a\nACGT\n>b\nAC\n")
        with pytest.raises(ValueError, match="unaligned"):
            read_fasta(path)


class TestSnpCalling:
    def test_biallelic_extraction(self):
        chars = np.array(
            [
                list("AACGA"),
                list("AACGC"),
                list("ATCGA"),
                list("ATCGC"),
            ]
        )
        # col 0: monomorphic A; col 1: A/T biallelic; col 2, 3: monomorphic;
        # col 4: A/C biallelic.
        calls = call_snps_from_alignment(chars)
        np.testing.assert_array_equal(calls.positions, [1, 4])
        assert calls.matrix.n_snps == 2
        assert calls.multiallelic is None
        # Minority convention: equal counts -> argmin picks the first; the
        # column is a valid 0/1 split either way.
        col = calls.matrix.to_dense()[:, 0]
        assert sorted(col.tolist()) == [0, 0, 1, 1]

    def test_minority_state_coded_one(self):
        chars = np.array([["A"], ["A"], ["A"], ["G"]])
        calls = call_snps_from_alignment(chars)
        np.testing.assert_array_equal(calls.matrix.to_dense()[:, 0], [0, 0, 0, 1])

    def test_gaps_masked_not_counted(self):
        chars = np.array([["A"], ["G"], ["-"], ["N"]])
        calls = call_snps_from_alignment(chars)
        assert calls.matrix.n_snps == 1
        np.testing.assert_array_equal(
            calls.mask.bits.to_dense()[:, 0], [1, 1, 0, 0]
        )

    def test_multiallelic_routed_to_fsm(self):
        chars = np.array([["A", "A"], ["C", "G"], ["G", "A"], ["A", "G"]])
        # col 0 has 3 states -> FSM; col 1 has 2 -> biallelic.
        calls = call_snps_from_alignment(chars)
        assert calls.matrix.n_snps == 1
        assert calls.multiallelic is not None
        assert calls.multiallelic.n_snps == 1
        np.testing.assert_array_equal(calls.multiallelic_positions, [0])

    def test_end_to_end_with_masked_ld(self, tmp_path, rng):
        """FASTA -> SNP calls -> gap-aware LD, through the file system."""
        from repro.analysis.gaps import masked_ld_matrix

        base = rng.choice(list("ACGT"), size=200)
        aln = np.tile(base, (20, 1))
        # Plant biallelic variation and some gaps.
        for col in range(0, 200, 7):
            carriers = rng.random(20) < 0.4
            alt = "T" if base[col] != "T" else "G"
            aln[carriers, col] = alt
        gaps = rng.random(aln.shape) < 0.03
        aln[gaps] = "-"
        path = tmp_path / "pipeline.fasta"
        write_fasta(path, aln)
        chars, _ = read_fasta(path)
        calls = call_snps_from_alignment(chars)
        assert calls.matrix.n_snps > 5
        r2 = masked_ld_matrix(calls.matrix, calls.mask)
        assert r2.shape == (calls.matrix.n_snps,) * 2

    def test_rejects_wrong_ndim(self):
        with pytest.raises(ValueError, match="2-D"):
            call_snps_from_alignment(np.array(list("ACGT")))
