#!/usr/bin/env python3
"""Case/control GWAS end to end: phenotype, association scan, LD clumping.

The paper's opening use case (Section I): LD is what turns a list of
associated SNPs into localized association *signals* — without it, one
causal variant shows up as a smear of correlated hits. Workflow:

1. simulate a structured panel (linkage blocks) and plant two causal SNPs;
2. liability-threshold case/control phenotype;
3. per-SNP allelic chi-square scan;
4. LD clumping (PLINK ``--clump``) collapses each smear to its index SNP.

Run: ``python examples/gwas_case_control.py``
"""

import numpy as np

from repro.analysis.association import (
    association_scan,
    ld_clump,
    simulate_phenotype,
)
from repro.simulate.coalescent import simulate_chunked_region


def main() -> None:
    rng = np.random.default_rng(1926)  # Fisher publishes the liability model

    print("Simulating 500 haplotypes over 10 linkage blocks...")
    sample = simulate_chunked_region(
        500, n_chunks=10, theta_per_chunk=10.0, rng=rng, chunk_length=10_000.0
    )
    panel = sample.haplotypes
    # Keep common variants (GWAS arrays do the same).
    freqs = panel.mean(axis=0)
    common = np.flatnonzero(np.minimum(freqs, 1 - freqs) >= 0.1)
    panel = panel[:, common]
    n_snps = panel.shape[1]
    print(f"  -> {n_snps} common SNPs after MAF >= 0.1 filter")

    causal = np.array([n_snps // 4, 3 * n_snps // 4])
    effects = np.array([1.2, 0.9])
    print(f"  planted causal SNPs: {causal.tolist()} "
          f"(effects {effects.tolist()})")

    is_case = simulate_phenotype(
        panel, causal, effects, prevalence=0.5, noise_sd=1.0, rng=rng
    )
    print(f"  cases: {is_case.sum()}, controls: {(~is_case).sum()}")

    result = association_scan(panel, is_case)
    alpha = 1e-4
    hits = result.hits(alpha=alpha)
    print(f"\nAssociation scan: {hits.size} SNPs below p < {alpha:g}")
    for snp in hits[:8]:
        mark = " <== causal" if snp in causal else ""
        print(f"  SNP {snp:4d}: chi2={result.chi2[snp]:7.2f} "
              f"p={result.p_values[snp]:.2e} "
              f"freq case/ctrl {result.case_freq[snp]:.2f}/"
              f"{result.control_freq[snp]:.2f}{mark}")

    clumps = ld_clump(
        panel, result.p_values, p_threshold=alpha,
        r2_threshold=0.3, window=100,
    )
    print(f"\nLD clumping: {hits.size} raw hits -> {len(clumps)} clumps")
    recovered = []
    for index_snp, members in clumps:
        is_causal = index_snp in causal
        near_causal = any(abs(index_snp - c) <= 30 for c in causal)
        if is_causal or near_causal:
            recovered.append(index_snp)
        tag = "causal" if is_causal else (
            "near-causal" if near_causal else "spurious"
        )
        print(f"  index SNP {index_snp:4d} (+{members.size} LD partners) "
              f"p={result.p_values[index_snp]:.2e}  [{tag}]")
    print(f"\nSignals localized near planted causals: "
          f"{len(recovered)}/{len(clumps)} clumps")
    assert recovered, "at least one planted signal must be recovered"


if __name__ == "__main__":
    main()
