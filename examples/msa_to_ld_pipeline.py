#!/usr/bin/env python3
"""The full Section I workflow: reads → MSA → SNP calling → gap-aware LD.

The paper's introduction describes the preprocessing every LD analysis
sits on: sequence the individuals, align reads to a reference, call SNPs
(monomorphic columns are non-informative for LD and are dropped). Real
pipelines produce *gaps* — missing calls — which the paper's Section VII
handles with per-SNP validity vectors and masked popcounts.

This example runs that pipeline end to end on simulated sequencing data,
computes gap-aware LD (four popcount GEMMs), contrasts it with the naive
treat-gaps-as-ancestral shortcut, and round-trips the call set through VCF.

Run: ``python examples/msa_to_ld_pipeline.py``
"""

import tempfile
from pathlib import Path

import numpy as np

from repro.analysis.gaps import masked_ld_matrix
from repro.core.ldmatrix import ld_matrix
from repro.io.vcf import read_vcf, write_vcf
from repro.simulate.msa import simulate_msa_pipeline


def main() -> None:
    rng = np.random.default_rng(88)

    print("Step 1-3: sequencing 40 samples at 6x coverage, 1% error, "
          "8% dropout; aligning; calling consensus...")
    result = simulate_msa_pipeline(
        40, 1500, coverage=6, error_rate=0.01, missing_rate=0.08, rng=rng
    )
    gap_fraction = 1.0 - result.mask.valid_counts().sum() / (
        40 * result.n_snps
    )
    print(f"  called {result.n_snps} SNPs from 1500 reference positions")
    print(f"  genotype error rate vs truth: {result.genotype_error_rate:.4f}")
    print(f"  missing-call fraction at SNPs: {gap_fraction:.2%}")

    print("\nStep 4a: gap-aware LD (c_ij = c_i & c_j masked popcounts, "
          "four GEMMs)...")
    masked_r2 = masked_ld_matrix(result.matrix, result.mask, undefined=0.0)

    print("Step 4b: naive LD treating gaps as ancestral (one GEMM)...")
    naive_r2 = ld_matrix(result.matrix, undefined=0.0)

    iu = np.triu_indices(result.n_snps, k=1)
    diff = np.abs(masked_r2[iu] - naive_r2[iu])
    print(f"  |masked − naive| r²: mean {diff.mean():.4f}, "
          f"max {diff.max():.4f}")
    worst = int(np.argmax(diff))
    i, j = iu[0][worst], iu[1][worst]
    print(f"  largest distortion at pair ({i}, {j}): "
          f"masked {masked_r2[i, j]:.3f} vs naive {naive_r2[i, j]:.3f}")
    print("  -> ignoring gaps biases LD; the masked path fixes it at the "
          "cost of 4 GEMMs instead of 1.")

    print("\nStep 5: exporting the call set as VCF and re-importing...")
    with tempfile.TemporaryDirectory() as tmp:
        path = Path(tmp) / "calls.vcf"
        haps = result.matrix.to_dense()
        missing = result.mask.bits.to_dense() == 0
        write_vcf(path, haps, result.positions.astype(int), ploidy=1,
                  missing=missing)
        panel = read_vcf(path)
        assert np.array_equal(panel.haplotypes, haps)
        assert np.array_equal(panel.valid, ~missing)
        size_kb = path.stat().st_size / 1024
        print(f"  {path.name}: {size_kb:.1f} KiB, round-trip exact")

    print("\nPipeline complete: sequencing -> alignment -> SNP map -> "
          "packed bit-matrix -> gap-aware LD.")


if __name__ == "__main__":
    main()
