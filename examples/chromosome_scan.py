#!/usr/bin/env python3
"""Chromosome-scale workflow: banded LD, haplotype blocks, streaming, EHH.

Production LD tooling never materializes the full matrix for a long
region. This example simulates a "chromosome" with recombination hotspots
and a recent population expansion, then runs the scalable paths:

1. banded LD (all pairs within a SNP window) — O(n·W) kernel work;
2. haplotype-block partition on the band — blocks should end at hotspots;
3. streaming high-LD pair extraction (sparse sink, bounded memory);
4. EHH decay from the strongest block's core.

Run: ``python examples/chromosome_scan.py``
"""

import numpy as np

from repro.analysis.ehh import ehh_decay, integrated_ehh
from repro.analysis.haplotype_blocks import find_haplotype_blocks
from repro.core.streaming import ThresholdCollector, stream_ld_blocks
from repro.core.windowed import banded_ld
from repro.simulate.recombination import RecombinationMap, simulate_region_with_map
from repro.util.timing import Timer


def main() -> None:
    rng = np.random.default_rng(404)

    print("Simulating a 1 Mb region with two recombination hotspots...")
    # Each 5 kb hotspot carries as much genetic length as ~500 kb of
    # background, so chunk boundaries concentrate there without collapsing
    # the whole map into the hotspots.
    rec_map = RecombinationMap(
        boundaries=np.array([0.0, 330e3, 335e3, 660e3, 665e3, 1e6]),
        rates=np.array([0.2, 20.0, 0.2, 20.0, 0.2]),
    )
    sample = simulate_region_with_map(
        120, rec_map, n_chunks=12, theta_per_chunk=15.0, rng=rng
    )
    panel = sample.to_bitmatrix()
    print(f"  -> {panel.n_snps} SNPs x {panel.n_samples} haplotypes")

    window = 40
    timer = Timer()
    with timer:
        band = banded_ld(panel, window=window)
    full_pairs = panel.n_snps * (panel.n_snps + 1) // 2
    print(f"\nBanded LD (window {window} SNPs): {band.n_pairs():,} pairs in "
          f"{timer.elapsed * 1e3:.1f} ms "
          f"(full matrix would be {full_pairs:,} pairs)")
    decay = band.mean_by_distance()
    print(f"  mean r² at distance 1 / {window}: "
          f"{decay[1]:.3f} / {decay[window]:.3f}")

    blocks = find_haplotype_blocks(
        panel, window=window, r2_threshold=0.4, min_fraction=0.6, band=band
    )
    print(f"\nHaplotype blocks ({len(blocks)} found):")
    hotspots = (332.5e3, 662.5e3)
    for block in blocks[:10]:
        lo = sample.positions[block.start]
        hi = sample.positions[block.stop - 1]
        spans_hotspot = any(lo < h < hi for h in hotspots)
        note = "  ! spans a hotspot" if spans_hotspot else ""
        print(f"  SNPs [{block.start:4d},{block.stop:4d})  "
              f"{lo / 1e3:7.1f}-{hi / 1e3:7.1f} kb  "
              f"mean r²={block.mean_r2:.2f}{note}")
    crossers = sum(
        1 for b in blocks
        if any(sample.positions[b.start] < h < sample.positions[b.stop - 1]
               for h in hotspots)
    )
    print(f"  blocks spanning a hotspot: {crossers} "
          "(hotspots break linkage, so few or none should)")

    collector = ThresholdCollector(threshold=0.8)
    n_blocks = stream_ld_blocks(
        panel, collector, stat="r2", block_snps=128, undefined=0.0
    )
    print(f"\nStreaming sparse extraction: {len(collector.pairs)} pairs with "
          f"r² >= 0.8, from {n_blocks} streamed blocks "
          "(peak memory one 128x128 tile)")

    if blocks:
        strongest = max(blocks, key=lambda b: b.mean_r2)
        core = (strongest.start + strongest.stop) // 2
        curve = ehh_decay(panel, core, max_distance=15)
        ihh_d, ihh_a = integrated_ehh(curve)
        print(f"\nEHH from SNP {core} (inside the strongest block): "
              f"iHH derived={ihh_d:.2f}, ancestral={ihh_a:.2f}")

    # Window-level summaries on both sides of the first hotspot.
    from repro.analysis.summaries import kelly_zns, walls_b

    left_stop = int(np.searchsorted(sample.positions, 330e3))
    right_start = int(np.searchsorted(sample.positions, 335e3))
    zns_left = kelly_zns(panel, start=0, stop=left_stop)
    zns_right = kelly_zns(panel, start=right_start, stop=panel.n_snps)
    b_left = walls_b(panel, start=0, stop=left_stop)
    print(f"\nWindow summaries: Kelly ZnS left/right of hotspot 1 = "
          f"{zns_left:.4f}/{zns_right:.4f}; Wall's B (left) = {b_left:.2f}")


if __name__ == "__main__":
    main()
