#!/usr/bin/env python3
"""Chemical-informatics reuse: Tanimoto similarity on the LD kernel (§VII).

The paper's cross-domain adaptation: 2D chemical fingerprints are binary
vectors, and the Tanimoto coefficient x / (p + q − x) needs exactly the
AND/POPCNT inner products the LD GEMM mass-produces. This example builds a
small virtual-screening workflow: a fingerprint database with planted
structural families, an all-pairs similarity matrix, family retrieval for a
query, and a similarity-threshold clustering pass.

Run: ``python examples/fingerprint_similarity.py``
"""

import numpy as np

from repro.analysis.tanimoto import tanimoto_matrix, tanimoto_pair
from repro.util.timing import Timer

FP_BITS = 1024
FAMILIES = 8
PER_FAMILY = 64


def make_database(rng: np.random.Generator) -> tuple[np.ndarray, np.ndarray]:
    """Fingerprints in structural families: shared scaffold bits + noise."""
    fingerprints = []
    labels = []
    for family in range(FAMILIES):
        scaffold = rng.random(FP_BITS) < 0.08
        for _member in range(PER_FAMILY):
            fp = scaffold.copy()
            fp ^= rng.random(FP_BITS) < 0.02  # substituent variation
            fingerprints.append(fp)
            labels.append(family)
    return np.array(fingerprints, dtype=np.uint8), np.array(labels)


def main() -> None:
    rng = np.random.default_rng(1912)  # Tanimoto's kanji would not fit
    db, labels = make_database(rng)
    print(f"Database: {db.shape[0]} compounds x {FP_BITS}-bit fingerprints, "
          f"{FAMILIES} structural families")

    timer = Timer()
    with timer:
        sim = tanimoto_matrix(db)
    print(f"All-pairs Tanimoto: {sim.size:,} comparisons in "
          f"{timer.elapsed * 1e3:.1f} ms "
          f"({sim.size / timer.elapsed / 1e6:.1f} M cmp/s)")

    same = np.equal.outer(labels, labels)
    np.fill_diagonal(same, False)
    within = sim[same].mean()
    between = sim[~same & ~np.eye(len(labels), dtype=bool)].mean()
    print(f"  mean similarity within families:  {within:.3f}")
    print(f"  mean similarity between families: {between:.3f}")

    # Virtual screening: nearest neighbours of one query compound.
    query = 10
    neighbours = np.argsort(sim[query])[::-1][1:6]
    print(f"\nTop-5 neighbours of compound {query} "
          f"(family {labels[query]}):")
    for rank, idx in enumerate(neighbours, start=1):
        check = tanimoto_pair(db[query], db[idx])
        assert abs(check - sim[query, idx]) < 1e-12
        print(f"  #{rank}: compound {idx:4d}  T = {sim[query, idx]:.3f}  "
              f"family {labels[idx]}")
    recovered = (labels[neighbours] == labels[query]).mean()
    print(f"  family precision@5: {recovered:.0%}")

    # Leader-style clustering at T >= 0.6.
    threshold = 0.6
    unassigned = set(range(len(labels)))
    clusters = []
    while unassigned:
        leader = min(unassigned)
        members = {j for j in unassigned if sim[leader, j] >= threshold}
        clusters.append(members)
        unassigned -= members
    sizes = sorted((len(c) for c in clusters), reverse=True)
    print(f"\nLeader clustering at T >= {threshold}: {len(clusters)} clusters, "
          f"sizes {sizes[:10]}{'...' if len(sizes) > 10 else ''}")
    print(f"(planted: {FAMILIES} families of {PER_FAMILY})")


if __name__ == "__main__":
    main()
