#!/usr/bin/env python3
"""Selective-sweep detection: the ω statistic on the GEMM LD matrix.

Reproduces the paper's flagship application (Sections I and VI): OmegaPlus
detects selective sweeps from the LD pattern around a swept site — high LD
*within* each flank, low LD *across* the site. This example:

1. forward-simulates a hard selective sweep (Wright–Fisher with selection,
   conditioned on fixation);
2. scans the region with ω using the GEMM-accelerated path (one blocked
   GEMM, then cheap reductions);
3. runs the OmegaPlus-style demand-driven baseline on the same data and
   compares results and work done.

Run: ``python examples/sweep_detection.py``
"""

import numpy as np

from repro.analysis.sweeps import sweep_scan
from repro.baselines.omegaplus import omegaplus_scan
from repro.simulate.wrightfisher import simulate_sweep
from repro.util.timing import Timer


def main() -> None:
    rng = np.random.default_rng(1)

    print("Simulating a hard selective sweep (s = 1.0, midpoint site)...")
    data = simulate_sweep(
        80, 81, pop_size=200, burn_in=400, selection=1.0,
        mut_rate=1e-3, recomb_rate=8e-3, rng=rng,
    )
    print(f"  fixed after {data.generations} generations; "
          f"{data.n_snps} SNPs retained")
    print(f"  true sweep location: position {data.selected_position:.0f}")

    print("\nGEMM-accelerated omega scan (compute_ld once, then reductions):")
    gemm_timer = Timer()
    with gemm_timer:
        scan = sweep_scan(
            data.haplotypes, data.positions, grid_size=17, max_window=60
        )
    best_split = scan.best_splits[int(np.argmax(scan.omegas))]
    inferred = data.positions[best_split]
    print(f"  peak omega = {scan.peak_omega:.2f} "
          f"(threshold {scan.threshold:.2f})")
    print(f"  inferred sweep location: position {inferred:.0f} "
          f"(truth: {data.selected_position:.0f})")
    for lo, hi in scan.candidate_regions():
        print(f"  candidate region: [{lo:.0f}, {hi:.0f}]")
    print(f"  time: {gemm_timer.elapsed * 1e3:.1f} ms")

    print("\nOmegaPlus-style baseline (per-pair LD on demand):")
    base_timer = Timer()
    with base_timer:
        baseline = omegaplus_scan(
            data.haplotypes, data.positions, grid_size=17, max_window=60
        )
    agree = np.allclose(baseline.omegas, scan.omegas, equal_nan=True)
    n_pairs = data.n_snps * (data.n_snps - 1) // 2
    print(f"  identical omega values: {agree}")
    print(f"  pairwise LD evaluations: {baseline.ld_evaluations:,} "
          f"of {n_pairs:,} possible")
    print(f"  time: {base_timer.elapsed * 1e3:.1f} ms "
          f"({base_timer.elapsed / max(gemm_timer.elapsed, 1e-9):.1f}x the GEMM path)")

    # For a profile that varies along the region, scan with a window
    # narrower than the region (the wide window above sees the whole
    # region from every grid point, so its profile is flat).
    local = sweep_scan(
        data.haplotypes, data.positions, grid_size=17, max_window=15
    )
    print("\nLocal-window omega profile (one bar per grid point):")
    finite = np.where(np.isfinite(local.omegas), local.omegas, 0.0)
    top = finite.max() or 1.0
    for pos, omega in zip(local.grid, finite):
        bar = "#" * int(40 * omega / top)
        marker = " <== sweep" if abs(pos - data.selected_position) <= 5 else ""
        print(f"  pos {pos:5.0f} | {bar}{marker}")


if __name__ == "__main__":
    main()
