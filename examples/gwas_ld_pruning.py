#!/usr/bin/env python3
"""GWAS preprocessing: LD pruning driven by the GEMM kernel.

The paper motivates LD computation with genome-wide association studies
(Section I). A standard GWAS preprocessing step thins the SNP set so no
retained pair exceeds an r² threshold (PLINK's ``--indep-pairwise``) —
a pure consumer of pairwise LD values, which the blocked GEMM mass-
produces. This example simulates a panel with realistic block structure,
prunes it at several thresholds, and verifies the guarantee.

Run: ``python examples/gwas_ld_pruning.py``
"""

import numpy as np

from repro.analysis.decay import ld_decay_curve
from repro.analysis.ldprune import ld_prune
from repro.core.ldmatrix import ld_matrix
from repro.simulate.coalescent import simulate_chunked_region


def main() -> None:
    rng = np.random.default_rng(7)

    print("Simulating 200 haplotypes over 8 linkage blocks...")
    sample = simulate_chunked_region(
        200, n_chunks=8, theta_per_chunk=12.0, rng=rng, chunk_length=50_000.0
    )
    panel = sample.haplotypes
    n_snps = panel.shape[1]
    print(f"  -> {n_snps} SNPs across {sample.positions.max() / 1e3:.0f} kb")

    curve = ld_decay_curve(panel, sample.positions, n_bins=8)
    print("\nLD decay (mean r² by distance bin):")
    for center, mean, count in zip(curve.bin_centers, curve.mean_r2, curve.counts):
        if count:
            print(f"  {center / 1e3:7.1f} kb: {mean:.4f}  ({count} pairs)")

    print("\nPruning at three thresholds (window=50 SNPs, step=5):")
    print(f"{'r² cut':>8} | {'kept':>5} | {'removed':>7} | max retained r²")
    for threshold in (0.8, 0.5, 0.2):
        kept = ld_prune(panel, window=50, step=5, r2_threshold=threshold)
        r2 = ld_matrix(panel[:, kept], undefined=0.0)
        np.fill_diagonal(r2, 0.0)
        # Check the within-window guarantee over the kept set.
        worst = 0.0
        for start in range(0, len(kept), 5):
            idx = np.arange(start, min(start + 50, len(kept)))
            if idx.size >= 2:
                block = r2[np.ix_(idx, idx)]
                worst = max(worst, float(block.max()))
        print(f"{threshold:>8.1f} | {len(kept):>5} | {n_snps - len(kept):>7} | "
              f"{worst:.3f}")

    kept = ld_prune(panel, window=50, step=5, r2_threshold=0.2)
    print(f"\nAt r² < 0.2 the panel thins from {n_snps} to {len(kept)} SNPs — "
          "roughly one tag SNP per linkage block plus low-LD singletons,")
    print("the input a GWAS association test or PCA would actually use.")


if __name__ == "__main__":
    main()
