#!/usr/bin/env python3
"""Quickstart: all-pairs LD as one blocked popcount GEMM.

Simulates a small neutral panel, packs it into the paper's bit-matrix
layout (Figure 2), and computes every pairwise LD statistic the library
offers — r², D, D', and the raw haplotype-frequency matrix H — via the
DLA pipeline of the paper's Section II-B:

    H = (1/N) GᵀG        (blocked popcount GEMM)
    D = H − p pᵀ          (rank-1 update)

Run: ``python examples/quickstart.py``
"""

import numpy as np

from repro import BitMatrix, ld_matrix, ld_pairs
from repro.core.ldmatrix import compute_ld
from repro.simulate.coalescent import simulate_chunked_region


def main() -> None:
    rng = np.random.default_rng(2016)

    print("Simulating 100 haplotypes over a 5-locus region...")
    sample = simulate_chunked_region(
        100, n_chunks=5, theta_per_chunk=10.0, rng=rng, chunk_length=1000.0
    )
    print(f"  -> {sample.n_snps} segregating sites")

    # Pack into the SNP-major 64-bit layout the kernels operate on.
    panel = BitMatrix.from_dense(sample.haplotypes)
    print(f"  packed: {panel.n_words} words/SNP, {panel.nbytes / 1024:.1f} KiB "
          f"(dense would be {sample.haplotypes.nbytes / 1024:.1f} KiB)")

    # One call: the full r-squared matrix.
    r2 = ld_matrix(panel)
    iu = np.triu_indices(panel.n_snps, k=1)
    values = r2[iu]
    values = values[~np.isnan(values)]
    print(f"\nAll-pairs r²: {panel.n_snps}x{panel.n_snps} matrix, "
          f"{values.size} defined pairs")
    print(f"  mean r² = {values.mean():.4f}, max r² = {values.max():.4f}")
    print(f"  pairs in strong LD (r² > 0.8): {(values > 0.8).sum()}")

    # The LDResult object exposes every intermediate without recomputation.
    result = compute_ld(panel)
    print("\nIntermediates from one GEMM:")
    print(f"  allele frequencies p: min {result.p.min():.3f}, "
          f"max {result.p.max():.3f}")
    print(f"  haplotype frequencies H: diagonal mean {np.diag(result.h).mean():.3f}")
    print(f"  D matrix: |D| mean {np.abs(result.d[iu]).mean():.4f}")
    print(f"  D' matrix: defined fraction "
          f"{np.mean(~np.isnan(result.d_prime()[iu])):.2f}")

    # Spot-check individual pairs without forming the matrix.
    pairs = np.array([[0, 1], [0, panel.n_snps - 1]])
    spot = ld_pairs(panel, pairs)
    print(f"\nSpot checks via ld_pairs: r²(0,1) = {spot[0]:.4f}, "
          f"r²(0,{panel.n_snps - 1}) = {spot[1]:.4f}")

    # LD structure follows the genealogy: SNPs on the same locus (chunk)
    # share a tree, SNPs on different loci are independent.
    chunk = (sample.positions // 1000.0).astype(int)
    same_chunk = np.equal.outer(chunk, chunk)[iu]
    linked = np.nan_to_num(r2[iu])[same_chunk].mean()
    unlinked = np.nan_to_num(r2[iu])[~same_chunk].mean()
    print(f"mean r² within a locus:   {linked:.4f}")
    print(f"mean r² between loci:     {unlinked:.4f}")
    print("SNPs sharing a genealogy are in LD; unlinked SNPs are not.")


if __name__ == "__main__":
    main()
