#!/usr/bin/env python3
"""Long-range LD between two genomic regions (the paper's Figure 4 case).

The two-input GEMM computes all m x n LD values between SNPs of *different*
regions — the paper's "association studies between distant genes" and
"long-range LD" use case, where no symmetry exists to exploit. This example
plants a pair of coevolving loci in otherwise-independent regions and finds
them with one rectangular cross-LD GEMM.

Run: ``python examples/long_range_ld.py``
"""

import numpy as np

from repro import ld_cross
from repro.simulate.coalescent import simulate_chunked_region
from repro.util.timing import Timer


def main() -> None:
    rng = np.random.default_rng(40)
    n_samples = 150

    print("Simulating two unlinked regions (e.g. two chromosomes)...")
    def simulate_region() -> np.ndarray:
        haps = simulate_chunked_region(
            n_samples, n_chunks=4, theta_per_chunk=10.0, rng=rng
        ).haplotypes
        # Standard association-study filter: drop rare variants. Singletons
        # trivially reach r² = 1 with any other singleton on the same
        # carrier, which would swamp the scan with spurious perfect LD.
        freqs = haps.mean(axis=0)
        maf = np.minimum(freqs, 1.0 - freqs)
        return haps[:, maf >= 0.1]

    region_a = simulate_region()
    region_b = simulate_region()

    # Plant a coevolving pair: a SNP in region B that mirrors one in A
    # (epistatic interaction maintained by selection, per Rohlfs et al.).
    source = 5
    planted = region_a[:, source].copy()
    noise = rng.random(n_samples) < 0.05
    planted[noise] ^= 1
    region_b = np.concatenate([region_b, planted[:, None]], axis=1)
    target = region_b.shape[1] - 1
    print(f"  region A: {region_a.shape[1]} SNPs, "
          f"region B: {region_b.shape[1]} SNPs")
    print(f"  planted interaction: A[{source}] <-> B[{target}] "
          "(95% concordant)")

    timer = Timer()
    with timer:
        cross = ld_cross(region_a, region_b, undefined=0.0)
    n_values = cross.size
    print(f"\nCross-LD GEMM: {cross.shape[0]} x {cross.shape[1]} = "
          f"{n_values:,} LD values in {timer.elapsed * 1e3:.1f} ms "
          f"({n_values / timer.elapsed / 1e6:.1f} M LDs/s)")

    flat = cross.ravel()
    order = np.argsort(flat)[::-1]
    print("\nTop 5 cross-region pairs by r²:")
    found = False
    for rank, idx in enumerate(order[:5], start=1):
        i, j = divmod(int(idx), cross.shape[1])
        hit = " <== planted pair" if (i, j) == (source, target) else ""
        if hit:
            found = True
        print(f"  #{rank}: A[{i}] x B[{j}]  r² = {flat[idx]:.4f}{hit}")

    background = np.delete(flat, source * cross.shape[1] + target)
    print(f"\nbackground cross-region r²: mean {background.mean():.4f}, "
          f"99.9th pct {np.percentile(background, 99.9):.4f}")
    print("planted pair recovered:" , found)
    assert found, "the planted coevolving pair should rank first"


if __name__ == "__main__":
    main()
