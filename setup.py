"""Legacy setup shim.

This container has no network access and no ``wheel`` package, so pip's
PEP 660 editable install cannot build. ``pip install -e . --no-build-isolation``
works through this shim via setuptools' legacy ``develop`` path; all project
metadata lives in ``pyproject.toml``.
"""

from setuptools import setup

setup()
