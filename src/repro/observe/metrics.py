"""Structured metrics for the hot paths: counters, timers, events.

The paper's claims are *measurements* — %-of-peak (Figs. 3–4), thread
scaling (Fig. 5), wall-clock vs PLINK (Tables I–III) — so the execution
layers need first-class instrumentation rather than ad-hoc prints. This
module provides the recording half of :mod:`repro.observe`:

- :class:`MetricsRecorder` accumulates named counters, timers, and value
  histograms, and emits structured *events* (one dict per occurrence:
  tile completed, tile retried, worker pool rebuilt, ...). Every event
  bumps an ``events.<kind>`` counter, so aggregate accounting survives
  even when the full event stream is not retained.
- :class:`JsonlTraceSink` streams events to a JSON-lines file for
  post-hoc analysis (one object per line, monotonic ``ts`` seconds since
  the recorder was created) — the trace format the out-of-core GEMM
  literature uses to attribute wall-clock to compute vs. I/O overlap.
- :class:`Histogram` is the bounded summary behind timers and value
  distributions: count / total / min / max, never per-sample storage, so
  a million-tile run costs O(1) memory.

The hot paths take ``recorder: MetricsRecorder | None = None`` and guard
every emission with ``if recorder is not None`` — the disabled default is
a branch on ``None`` per tile, not a method call, so instrumentation is
zero-cost unless switched on.
"""

from __future__ import annotations

import json
import math
import time
from contextlib import contextmanager
from dataclasses import dataclass, field
from pathlib import Path
from typing import Iterator

__all__ = ["Histogram", "JsonlTraceSink", "MetricsRecorder"]


@dataclass
class Histogram:
    """Bounded running summary of a value stream (no per-sample storage)."""

    count: int = 0
    total: float = 0.0
    min: float = math.inf
    max: float = -math.inf

    def observe(self, value: float) -> None:
        """Fold one sample into the summary."""
        value = float(value)
        self.count += 1
        self.total += value
        if value < self.min:
            self.min = value
        if value > self.max:
            self.max = value

    @property
    def mean(self) -> float:
        """Arithmetic mean of the observed samples (0.0 when empty)."""
        return self.total / self.count if self.count else 0.0

    def summary(self) -> dict:
        """JSON-serializable summary dict."""
        return {
            "count": self.count,
            "total": self.total,
            "mean": self.mean,
            "min": self.min if self.count else None,
            "max": self.max if self.count else None,
        }


class JsonlTraceSink:
    """Append-only JSON-lines event trace (one compact object per line).

    The sink is deliberately dumb: it serializes whatever dict it is
    handed. Interpretation (which kinds exist, which fields they carry)
    belongs to the emitters; ``docs/TUTORIAL.md`` documents the engine's
    event vocabulary.
    """

    def __init__(self, path: str | Path) -> None:
        self.path = Path(path)
        self._fh = self.path.open("w", encoding="utf-8")
        self.n_written = 0

    def write(self, event: dict) -> None:
        if self._fh is None:
            raise ValueError(f"trace sink for {self.path} is closed")
        self._fh.write(json.dumps(event, separators=(",", ":")) + "\n")
        self.n_written += 1

    def close(self) -> None:
        if self._fh is not None:
            self._fh.close()
            self._fh = None

    def __enter__(self) -> "JsonlTraceSink":
        return self

    def __exit__(self, *exc_info: object) -> None:
        self.close()


@dataclass
class MetricsRecorder:
    """Accumulates counters, timers, histograms, and structured events.

    Parameters
    ----------
    trace:
        Optional :class:`JsonlTraceSink` (or any object with a
        ``write(dict)`` method); every :meth:`event` is streamed to it
        with a monotonic ``ts`` field.
    keep_events:
        Retain the full event list in memory (``self.events``). Off by
        default — per-tile events on a biobank-scale run would exhaust
        memory; the counters/timers aggregate them regardless.
    """

    trace: JsonlTraceSink | None = None
    keep_events: bool = False
    counters: dict[str, int] = field(default_factory=dict)
    timers: dict[str, Histogram] = field(default_factory=dict)
    histograms: dict[str, Histogram] = field(default_factory=dict)
    events: list[dict] = field(default_factory=list)
    _t0: float = field(default_factory=time.perf_counter, repr=False)

    def inc(self, name: str, value: int = 1) -> None:
        """Add *value* to counter *name* (created at zero on first use)."""
        self.counters[name] = self.counters.get(name, 0) + value

    def observe(self, name: str, value: float) -> None:
        """Fold one sample into histogram *name*."""
        hist = self.histograms.get(name)
        if hist is None:
            hist = self.histograms[name] = Histogram()
        hist.observe(value)

    def observe_time(self, name: str, seconds: float) -> None:
        """Fold an externally measured duration into timer *name*."""
        hist = self.timers.get(name)
        if hist is None:
            hist = self.timers[name] = Histogram()
        hist.observe(seconds)

    @contextmanager
    def time(self, name: str) -> Iterator[None]:
        """Time the enclosed block into timer *name* (accumulating)."""
        start = time.perf_counter()
        try:
            yield
        finally:
            self.observe_time(name, time.perf_counter() - start)

    def event(self, kind: str, **fields: object) -> None:
        """Record one structured occurrence of *kind*.

        Bumps the ``events.<kind>`` counter, appends to ``self.events``
        when retention is on, and streams ``{"kind", "ts", **fields}`` to
        the trace sink when one is attached.
        """
        self.inc(f"events.{kind}")
        if self.keep_events or self.trace is not None:
            record = {"kind": kind, "ts": time.perf_counter() - self._t0}
            record.update(fields)
            if self.keep_events:
                self.events.append(record)
            if self.trace is not None:
                self.trace.write(record)

    def event_count(self, kind: str) -> int:
        """Occurrences of *kind* recorded so far."""
        return self.counters.get(f"events.{kind}", 0)

    def summary(self) -> dict:
        """JSON-serializable snapshot of everything accumulated."""
        return {
            "counters": dict(sorted(self.counters.items())),
            "timers": {k: v.summary() for k, v in sorted(self.timers.items())},
            "histograms": {
                k: v.summary() for k, v in sorted(self.histograms.items())
            },
        }

    def write_json(self, path: str | Path, *, extra: dict | None = None) -> None:
        """Write :meth:`summary` (plus *extra* top-level keys) to *path*."""
        payload = dict(extra) if extra else {}
        payload.update(self.summary())
        Path(path).write_text(
            json.dumps(payload, indent=2, sort_keys=False) + "\n",
            encoding="utf-8",
        )

    def close(self) -> None:
        """Close the attached trace sink, if any; idempotent."""
        if self.trace is not None:
            self.trace.close()

    def __enter__(self) -> "MetricsRecorder":
        return self

    def __exit__(self, *exc_info: object) -> None:
        self.close()
