"""Structured metrics for the hot paths: counters, timers, events.

The paper's claims are *measurements* — %-of-peak (Figs. 3–4), thread
scaling (Fig. 5), wall-clock vs PLINK (Tables I–III) — so the execution
layers need first-class instrumentation rather than ad-hoc prints. This
module provides the recording half of :mod:`repro.observe`:

- :class:`MetricsRecorder` accumulates named counters, timers, and value
  histograms, and emits structured *events* (one dict per occurrence:
  tile completed, tile retried, worker pool rebuilt, ...). Every event
  bumps an ``events.<kind>`` counter, so aggregate accounting survives
  even when the full event stream is not retained.
- :class:`JsonlTraceSink` streams events to a JSON-lines file for
  post-hoc analysis (one object per line, monotonic ``ts`` seconds since
  the recorder was created) — the trace format the out-of-core GEMM
  literature uses to attribute wall-clock to compute vs. I/O overlap.
- :class:`Histogram` is the bounded summary behind timers and value
  distributions: count / total / min / max plus streaming p50/p95/p99
  estimates (Jain & Chlamtac's P² algorithm — five markers per
  quantile), never per-sample storage, so a million-tile run costs O(1)
  memory and the quantiles stay unbiased by any sample cap.

The hot paths take ``recorder: MetricsRecorder | None = None`` and guard
every emission with ``if recorder is not None`` — the disabled default is
a branch on ``None`` per tile, not a method call, so instrumentation is
zero-cost unless switched on.
"""

from __future__ import annotations

import json
import math
import os
import time
from contextlib import contextmanager
from dataclasses import dataclass, field
from pathlib import Path
from typing import Iterator

__all__ = ["Histogram", "JsonlTraceSink", "MetricsRecorder"]

#: Quantiles every Histogram tracks, as (json key, probability).
_QUANTILES = (("p50", 0.50), ("p95", 0.95), ("p99", 0.99))


class _P2Quantile:
    """Streaming quantile estimate via the P² algorithm (Jain & Chlamtac
    1985): five markers whose heights track [min, lower, target, upper,
    max] order statistics, adjusted by parabolic interpolation — O(1)
    memory regardless of stream length, exact for the first 5 samples.
    """

    __slots__ = ("p", "heights", "positions", "desired", "increments")

    def __init__(self, p: float) -> None:
        self.p = p
        self.heights: list[float] = []
        self.positions = [1.0, 2.0, 3.0, 4.0, 5.0]
        self.desired = [1.0, 1.0 + 2.0 * p, 1.0 + 4.0 * p, 3.0 + 2.0 * p, 5.0]
        self.increments = [0.0, p / 2.0, p, (1.0 + p) / 2.0, 1.0]

    def observe(self, value: float) -> None:
        heights = self.heights
        if len(heights) < 5:
            heights.append(value)
            heights.sort()
            return
        if value < heights[0]:
            heights[0] = value
            cell = 0
        elif value >= heights[4]:
            heights[4] = value
            cell = 3
        else:
            cell = 0
            while value >= heights[cell + 1]:
                cell += 1
        positions = self.positions
        for i in range(cell + 1, 5):
            positions[i] += 1.0
        desired = self.desired
        for i in range(5):
            desired[i] += self.increments[i]
        # Adjust the three interior markers toward their desired
        # positions, parabolic (P²) when the neighbor gap allows it,
        # linear otherwise.
        for i in (1, 2, 3):
            delta = desired[i] - positions[i]
            if (delta >= 1.0 and positions[i + 1] - positions[i] > 1.0) or (
                delta <= -1.0 and positions[i - 1] - positions[i] < -1.0
            ):
                sign = 1.0 if delta >= 0 else -1.0
                candidate = self._parabolic(i, sign)
                if heights[i - 1] < candidate < heights[i + 1]:
                    heights[i] = candidate
                else:
                    heights[i] = self._linear(i, sign)
                positions[i] += sign

    def _parabolic(self, i: int, d: float) -> float:
        q, n = self.heights, self.positions
        return q[i] + d / (n[i + 1] - n[i - 1]) * (
            (n[i] - n[i - 1] + d) * (q[i + 1] - q[i]) / (n[i + 1] - n[i])
            + (n[i + 1] - n[i] - d) * (q[i] - q[i - 1]) / (n[i] - n[i - 1])
        )

    def _linear(self, i: int, d: float) -> float:
        q, n = self.heights, self.positions
        j = i + int(d)
        return q[i] + d * (q[j] - q[i]) / (n[j] - n[i])

    def value(self) -> float | None:
        """Current estimate (``None`` before any sample)."""
        heights = self.heights
        if not heights:
            return None
        if len(heights) < 5:
            # Exact small-sample quantile (nearest-rank on the sorted
            # buffer the initialization phase keeps anyway).
            rank = max(0, math.ceil(self.p * len(heights)) - 1)
            return heights[rank]
        return heights[2]


@dataclass
class Histogram:
    """Bounded running summary of a value stream (no per-sample storage).

    Beyond count/total/min/max, each histogram keeps streaming P²
    estimators for the :data:`_QUANTILES` set, so ``summary()`` reports
    p50/p95/p99 without retaining samples — a cumulative mean hides tail
    latency, and a capped sample buffer would bias long runs.
    """

    count: int = 0
    total: float = 0.0
    min: float = math.inf
    max: float = -math.inf
    _quantiles: tuple[_P2Quantile, ...] = field(
        default_factory=lambda: tuple(_P2Quantile(p) for _, p in _QUANTILES),
        repr=False,
    )

    def observe(self, value: float) -> None:
        """Fold one sample into the summary."""
        value = float(value)
        self.count += 1
        self.total += value
        if value < self.min:
            self.min = value
        if value > self.max:
            self.max = value
        for estimator in self._quantiles:
            estimator.observe(value)

    @property
    def mean(self) -> float:
        """Arithmetic mean of the observed samples (0.0 when empty)."""
        return self.total / self.count if self.count else 0.0

    def quantile(self, p: float) -> float | None:
        """Streaming estimate for tracked probability *p* (else KeyError)."""
        for (_, prob), estimator in zip(_QUANTILES, self._quantiles):
            if prob == p:
                return estimator.value()
        raise KeyError(f"quantile {p} is not tracked; have "
                       f"{[prob for _, prob in _QUANTILES]}")

    def summary(self) -> dict:
        """JSON-serializable summary dict."""
        out = {
            "count": self.count,
            "total": self.total,
            "mean": self.mean,
            "min": self.min if self.count else None,
            "max": self.max if self.count else None,
        }
        for (key, _), estimator in zip(_QUANTILES, self._quantiles):
            out[key] = estimator.value()
        return out


class JsonlTraceSink:
    """Append-only JSON-lines event trace (one compact object per line).

    Every line carries ``schema: "repro-trace/1"`` and a monotonic
    ``seq`` (0-based write index), so a truncated or interleaved trace
    is detectable post hoc and ``repro report`` can identify the format
    without sniffing. The sink otherwise stays deliberately dumb: it
    serializes whatever dict it is handed, coercing any value
    ``json.dumps`` cannot encode via ``repr`` — an exotic field (say, an
    exception object on a retry event) must not crash a run mid-flight.
    Interpretation (which kinds exist, which fields they carry) belongs
    to the emitters; ``docs/TUTORIAL.md`` documents the engine's event
    vocabulary.

    Durability: with ``flush_on_write`` every line reaches the OS as it
    is written (a crashed run loses at most the torn final line, which
    ``repro report`` tolerates); either way ``close`` flushes and
    fsyncs so a completed run's trace is durable on disk.
    """

    SCHEMA = "repro-trace/1"

    def __init__(
        self, path: str | Path, *, flush_on_write: bool = False
    ) -> None:
        self.path = Path(path)
        self.flush_on_write = flush_on_write
        self._fh = self.path.open("w", encoding="utf-8")
        self.n_written = 0

    def write(self, event: dict) -> None:
        if self._fh is None:
            raise ValueError(f"trace sink for {self.path} is closed")
        record = {"schema": self.SCHEMA, "seq": self.n_written}
        record.update(event)
        self._fh.write(
            json.dumps(record, separators=(",", ":"), default=repr) + "\n"
        )
        if self.flush_on_write:
            self._fh.flush()
        self.n_written += 1

    def close(self) -> None:
        if self._fh is not None:
            self._fh.flush()
            os.fsync(self._fh.fileno())
            self._fh.close()
            self._fh = None

    def __enter__(self) -> "JsonlTraceSink":
        return self

    def __exit__(self, *exc_info: object) -> None:
        self.close()


@dataclass
class MetricsRecorder:
    """Accumulates counters, timers, histograms, and structured events.

    Parameters
    ----------
    trace:
        Optional :class:`JsonlTraceSink` (or any object with a
        ``write(dict)`` method); every :meth:`event` is streamed to it
        with a monotonic ``ts`` field.
    keep_events:
        Retain the full event list in memory (``self.events``). Off by
        default — per-tile events on a biobank-scale run would exhaust
        memory; the counters/timers aggregate them regardless.
    """

    trace: JsonlTraceSink | None = None
    keep_events: bool = False
    counters: dict[str, int] = field(default_factory=dict)
    timers: dict[str, Histogram] = field(default_factory=dict)
    histograms: dict[str, Histogram] = field(default_factory=dict)
    events: list[dict] = field(default_factory=list)
    _t0: float = field(default_factory=time.perf_counter, repr=False)

    def inc(self, name: str, value: int = 1) -> None:
        """Add *value* to counter *name* (created at zero on first use)."""
        self.counters[name] = self.counters.get(name, 0) + value

    def observe(self, name: str, value: float) -> None:
        """Fold one sample into histogram *name*."""
        hist = self.histograms.get(name)
        if hist is None:
            hist = self.histograms[name] = Histogram()
        hist.observe(value)

    def observe_time(self, name: str, seconds: float) -> None:
        """Fold an externally measured duration into timer *name*."""
        hist = self.timers.get(name)
        if hist is None:
            hist = self.timers[name] = Histogram()
        hist.observe(seconds)

    @contextmanager
    def time(self, name: str) -> Iterator[None]:
        """Time the enclosed block into timer *name* (accumulating)."""
        start = time.perf_counter()
        try:
            yield
        finally:
            self.observe_time(name, time.perf_counter() - start)

    def event(self, kind: str, **fields: object) -> None:
        """Record one structured occurrence of *kind*.

        Bumps the ``events.<kind>`` counter, appends to ``self.events``
        when retention is on, and streams ``{"kind", "ts", **fields}`` to
        the trace sink when one is attached.
        """
        self.inc(f"events.{kind}")
        if self.keep_events or self.trace is not None:
            record = {"kind": kind, "ts": time.perf_counter() - self._t0}
            record.update(fields)
            if self.keep_events:
                self.events.append(record)
            if self.trace is not None:
                self.trace.write(record)

    def event_count(self, kind: str) -> int:
        """Occurrences of *kind* recorded so far."""
        return self.counters.get(f"events.{kind}", 0)

    def summary(self) -> dict:
        """JSON-serializable snapshot of everything accumulated."""
        return {
            "counters": dict(sorted(self.counters.items())),
            "timers": {k: v.summary() for k, v in sorted(self.timers.items())},
            "histograms": {
                k: v.summary() for k, v in sorted(self.histograms.items())
            },
        }

    def write_json(self, path: str | Path, *, extra: dict | None = None) -> None:
        """Write :meth:`summary` (plus *extra* top-level keys) to *path*."""
        payload = dict(extra) if extra else {}
        payload.update(self.summary())
        Path(path).write_text(
            json.dumps(payload, indent=2, sort_keys=False) + "\n",
            encoding="utf-8",
        )

    def close(self) -> None:
        """Close the attached trace sink, if any; idempotent."""
        if self.trace is not None:
            self.trace.close()

    def __enter__(self) -> "MetricsRecorder":
        return self

    def __exit__(self, *exc_info: object) -> None:
        self.close()
