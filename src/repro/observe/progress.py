"""Live progress reporting for tiled LD runs (tiles/s, pairs/s, ETA).

A multi-hour out-of-core run that prints nothing until the final tile
count is indistinguishable from a hung one. :class:`ProgressReporter`
tracks delivered tiles and matrix cells against the known totals and
renders a single self-overwriting status line::

    ld: 37/120 tiles (30.8%)  14.2 Mpairs/s  3.1 tiles/s  eta 27s

The displayed rates come from a sliding window (default 20 s) of recent
completions, not the cumulative average — on a long run the cumulative
number converges to a constant and stops reflecting what the machine is
doing *now* (a stalled pool would keep showing a healthy rate for
minutes). The ETA uses the same windowed rate, falling back to the
cumulative one until the window has two samples.

Rendering is rate-limited (default: at most ~10 lines/s) and entirely
separate from accounting, so :meth:`snapshot` is usable headless — the
engine tests assert on snapshots without any terminal involved.
"""

from __future__ import annotations

import sys
import time
from collections import deque
from dataclasses import dataclass

from repro.util.timing import format_seconds

__all__ = ["ProgressReporter", "ProgressSnapshot"]


@dataclass(frozen=True)
class ProgressSnapshot:
    """Point-in-time progress accounting."""

    tiles_done: int
    tiles_total: int
    pairs_done: int
    pairs_total: int
    elapsed_seconds: float
    #: Sliding-window rates (0.0 until the window holds two samples);
    #: cumulative-rate properties below are always available.
    window_tiles_per_second: float = 0.0
    window_pairs_per_second: float = 0.0

    @property
    def fraction(self) -> float:
        """Completed fraction by pairs (the honest unit: tiles vary in size)."""
        return self.pairs_done / self.pairs_total if self.pairs_total else 1.0

    @property
    def tiles_per_second(self) -> float:
        return self.tiles_done / self.elapsed_seconds if self.elapsed_seconds > 0 else 0.0

    @property
    def pairs_per_second(self) -> float:
        return self.pairs_done / self.elapsed_seconds if self.elapsed_seconds > 0 else 0.0

    @property
    def eta_seconds(self) -> float:
        """Remaining wall-clock at the observed pair rate (inf if unknown).

        Prefers the windowed rate (what the run is doing now) and falls
        back to the cumulative one while the window is still warming up.
        """
        rate = self.window_pairs_per_second or self.pairs_per_second
        remaining = self.pairs_total - self.pairs_done
        if remaining <= 0:
            return 0.0
        return remaining / rate if rate > 0 else float("inf")


class ProgressReporter:
    """Tracks tile/pair completion and optionally renders a stderr line.

    Parameters
    ----------
    tiles_total, pairs_total:
        Totals for the run (skipped tiles count as done — a resumed run
        starts partway along the bar, matching the work actually left).
    stream:
        Where to render; ``None`` disables rendering but keeps the
        accounting (headless mode). Defaults to ``sys.stderr``.
    min_interval:
        Minimum seconds between rendered lines (the final line on
        :meth:`close` always renders).
    label:
        Prefix of the status line.
    window_seconds:
        Width of the sliding window behind the displayed rates and ETA.
    """

    def __init__(
        self,
        tiles_total: int,
        pairs_total: int,
        *,
        stream=sys.stderr,
        min_interval: float = 0.1,
        label: str = "ld",
        window_seconds: float = 20.0,
    ) -> None:
        if tiles_total < 0 or pairs_total < 0:
            raise ValueError("totals must be non-negative")
        if window_seconds <= 0:
            raise ValueError("window_seconds must be positive")
        self.tiles_total = tiles_total
        self.pairs_total = pairs_total
        self.stream = stream
        self.min_interval = min_interval
        self.label = label
        self.window_seconds = window_seconds
        self.tiles_done = 0
        self.pairs_done = 0
        self._start = time.perf_counter()
        #: (timestamp, tiles_done, pairs_done) samples inside the window;
        #: the oldest sample anchors the rate, so it is only evicted once
        #: a younger sample has itself aged past the window.
        self._window: deque[tuple[float, int, int]] = deque()
        self._window.append((self._start, 0, 0))
        self._last_render = float("-inf")
        self._rendered = False

    def advance(self, n_pairs: int, *, skipped: bool = False) -> None:
        """Account one finished tile covering *n_pairs* matrix cells.

        *skipped* tiles (journaled by a previous run) advance the bar
        identically — the distinction lives in the metrics events, not in
        completion accounting.
        """
        self.tiles_done += 1
        self.pairs_done += n_pairs
        now = time.perf_counter()
        window = self._window
        window.append((now, self.tiles_done, self.pairs_done))
        horizon = now - self.window_seconds
        while len(window) > 2 and window[1][0] <= horizon:
            window.popleft()
        self._maybe_render()

    def _window_rates(self) -> tuple[float, float]:
        """(tiles/s, pairs/s) over the sliding window; (0, 0) if empty."""
        window = self._window
        if len(window) < 2:
            return 0.0, 0.0
        t0, tiles0, pairs0 = window[0]
        t1, tiles1, pairs1 = window[-1]
        span = t1 - t0
        if span <= 0:
            return 0.0, 0.0
        return (tiles1 - tiles0) / span, (pairs1 - pairs0) / span

    def snapshot(self) -> ProgressSnapshot:
        """Current accounting, independent of rendering."""
        window_tps, window_pps = self._window_rates()
        return ProgressSnapshot(
            tiles_done=self.tiles_done,
            tiles_total=self.tiles_total,
            pairs_done=self.pairs_done,
            pairs_total=self.pairs_total,
            elapsed_seconds=time.perf_counter() - self._start,
            window_tiles_per_second=window_tps,
            window_pairs_per_second=window_pps,
        )

    def format_line(self) -> str:
        """Render the current status as one line (no trailing newline)."""
        snap = self.snapshot()
        eta = snap.eta_seconds
        # eta == 0.0 means "nothing left" (finished, or resume skipped
        # everything) — render "--" like the unknown case, never "eta 0s".
        if eta == 0.0 or eta == float("inf"):
            eta_text = "--"
        else:
            eta_text = format_seconds(eta)
        pairs_rate = snap.window_pairs_per_second or snap.pairs_per_second
        tiles_rate = snap.window_tiles_per_second or snap.tiles_per_second
        return (
            f"{self.label}: {snap.tiles_done}/{snap.tiles_total} tiles "
            f"({100.0 * snap.fraction:.1f}%)  "
            f"{pairs_rate / 1e6:.2f} Mpairs/s  "
            f"{tiles_rate:.1f} tiles/s  eta {eta_text}"
        )

    def _maybe_render(self, *, force: bool = False) -> None:
        if self.stream is None:
            return
        now = time.perf_counter()
        if not force and now - self._last_render < self.min_interval:
            return
        self._last_render = now
        self.stream.write("\r" + self.format_line())
        self.stream.flush()
        self._rendered = True

    def close(self) -> None:
        """Render the final line and terminate it with a newline."""
        if self.stream is not None:
            self._maybe_render(force=True)
            if self._rendered:
                self.stream.write("\n")
                self.stream.flush()

    def __enter__(self) -> "ProgressReporter":
        return self

    def __exit__(self, *exc_info: object) -> None:
        self.close()
