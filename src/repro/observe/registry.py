"""Cross-run registry: a durable JSONL ledger of every engine run.

The live bus (:mod:`repro.observe.live`) is a window into *one* run;
this module is the memory *across* runs — the regression story. Every
``repro ld --engine`` invocation appends one ``repro-run/1`` summary
record (identity, config, wall, pairs/s, %-of-peak, anomaly kinds,
artifact paths) to a ledger, and ``repro runs list|show|diff`` reads it
back. ``diff`` flags throughput regressions beyond a threshold between
runs, warning when their *shape fingerprints* differ (comparing a
4096-SNP banded sweep against a 512-SNP smoke run is not a regression,
it is a category error).

Durability discipline mirrors the tile manifest (v2):

- appends take a best-effort ``fcntl`` advisory lock, write one
  newline-terminated line, and fsync — concurrent runs on one host
  interleave whole records, never bytes;
- loading tolerates (and counts) a *torn final line* — an unterminated
  tail from a run killed mid-append — but treats interior corruption as
  an error, exactly the manifest's crash-consistency contract;
- the ledger path defaults to ``~/.cache/repro/runs.jsonl`` (honouring
  ``XDG_CACHE_HOME``) and is overridable via ``REPRO_RUNS_PATH`` so
  tests and multi-project setups stay isolated.

No :mod:`repro.core` imports here — the module is reader-side plumbing
(:mod:`repro.observe.report` renders through it lazily).
"""

from __future__ import annotations

import hashlib
import json
import os
import time
from pathlib import Path

__all__ = [
    "RUN_SCHEMA",
    "append_run",
    "diff_runs",
    "find_run",
    "load_runs",
    "render_diff",
    "render_run",
    "render_runs_list",
    "runs_path",
    "shape_fingerprint",
]

RUN_SCHEMA = "repro-run/1"

#: Environment override for the ledger path.
RUNS_PATH_ENV = "REPRO_RUNS_PATH"

#: Default regression threshold: a run this much slower (in pairs/s)
#: than its baseline is flagged.
DEFAULT_REGRESSION_THRESHOLD = 0.30


def runs_path() -> Path:
    """The ledger path: ``$REPRO_RUNS_PATH`` or ``~/.cache/repro/runs.jsonl``."""
    override = os.environ.get(RUNS_PATH_ENV)
    if override:
        return Path(override)
    cache = os.environ.get("XDG_CACHE_HOME")
    base = Path(cache) if cache else Path.home() / ".cache"
    return base / "repro" / "runs.jsonl"


def shape_fingerprint(
    *,
    stat: str,
    n_snps: int,
    n_samples: int,
    block_snps: int,
    band: object = None,
) -> str:
    """Identity of the *problem*, not the execution.

    Engine/workers/budget are deliberately excluded: a persistent-pool
    run and a serial run over the same panel and band are comparable
    throughput-wise — that comparison is the point of ``runs diff``.
    """
    token = json.dumps(
        {
            "stat": stat,
            "n_snps": int(n_snps),
            "n_samples": int(n_samples),
            "block_snps": int(block_snps),
            "band": band,
        },
        sort_keys=True,
        separators=(",", ":"),
        default=repr,
    )
    return hashlib.blake2b(token.encode(), digest_size=8).hexdigest()


def append_run(record: dict, path: str | Path | None = None) -> Path:
    """Append one ``repro-run/1`` record to the ledger (locked, fsynced)."""
    if record.get("schema") != RUN_SCHEMA:
        raise ValueError(
            f"run record schema must be {RUN_SCHEMA!r}, "
            f"got {record.get('schema')!r}"
        )
    target = Path(path) if path is not None else runs_path()
    target.parent.mkdir(parents=True, exist_ok=True)
    line = json.dumps(record, separators=(",", ":"), default=repr) + "\n"
    with open(target, "a", encoding="utf-8") as fh:
        _flock(fh, lock=True)
        try:
            fh.write(line)
            fh.flush()
            os.fsync(fh.fileno())
        finally:
            _flock(fh, lock=False)
    return target


def _flock(fh, *, lock: bool) -> None:
    """Advisory whole-file lock; best-effort (NFS etc. may lack flock)."""
    try:
        import fcntl
    except ImportError:  # pragma: no cover - non-POSIX
        return
    try:
        fcntl.flock(fh.fileno(), fcntl.LOCK_EX if lock else fcntl.LOCK_UN)
    except OSError:  # pragma: no cover - filesystem without lock support
        pass


def load_runs(
    path: str | Path | None = None,
) -> tuple[list[dict], int]:
    """Load the ledger; returns ``(records, n_torn)``.

    A final line missing its newline terminator that fails to parse is
    a torn append from a killed run: dropped and counted, same as
    manifest v2. Any other unparseable line raises — interior corruption
    is not survivable silently.
    """
    target = Path(path) if path is not None else runs_path()
    try:
        text = target.read_text(encoding="utf-8")
    except FileNotFoundError:
        return [], 0
    records: list[dict] = []
    n_torn = 0
    lines = text.splitlines()
    last_index = len(lines) - 1
    for index, line in enumerate(lines):
        stripped = line.strip()
        if not stripped:
            continue
        try:
            record = json.loads(stripped)
        except json.JSONDecodeError as exc:
            if index == last_index and not text.endswith("\n"):
                n_torn += 1
                continue
            raise ValueError(
                f"{target}: line {index + 1} is corrupt mid-ledger ({exc}); "
                "refusing to skip interior records"
            ) from exc
        if not isinstance(record, dict) or record.get("schema") != RUN_SCHEMA:
            raise ValueError(
                f"{target}: line {index + 1} is not a {RUN_SCHEMA} record "
                f"(schema {record.get('schema') if isinstance(record, dict) else type(record).__name__!r})"
            )
        records.append(record)
    return records, n_torn


def find_run(records: list[dict], ref: str) -> dict:
    """Resolve *ref* to one record: an index into the list (negative from
    the end, as listed by ``runs list``) or a run-id prefix."""
    try:
        index = int(ref)
    except ValueError:
        pass
    else:
        try:
            return records[index]
        except IndexError:
            raise ValueError(
                f"run index {index} out of range (ledger holds "
                f"{len(records)} runs)"
            ) from None
    matches = [
        r for r in records if str(r.get("run_id", "")).startswith(ref)
    ]
    if not matches:
        raise ValueError(f"no run matches {ref!r}")
    if len({r.get("run_id") for r in matches}) > 1:
        ids = ", ".join(sorted(str(r.get("run_id")) for r in matches)[:4])
        raise ValueError(f"run ref {ref!r} is ambiguous ({ids}, ...)")
    return matches[-1]


def diff_runs(
    baseline: dict,
    candidate: dict,
    *,
    threshold: float = DEFAULT_REGRESSION_THRESHOLD,
) -> dict:
    """Compare two run records; flag a throughput regression.

    ``regression`` is the fractional pairs/s drop from *baseline* to
    *candidate* (negative when the candidate is faster); the diff is
    ``flagged`` when the drop meets *threshold* — but only a
    fingerprint-matched pair makes that claim, otherwise the diff
    reports the shape mismatch instead of a bogus regression.
    """
    if not 0.0 < threshold < 1.0:
        raise ValueError(
            f"threshold must be a fraction in (0, 1), got {threshold}"
        )
    base_pps = float(baseline.get("pairs_per_second") or 0.0)
    cand_pps = float(candidate.get("pairs_per_second") or 0.0)
    regression = 1.0 - cand_pps / base_pps if base_pps > 0 else 0.0
    same_shape = (
        baseline.get("fingerprint") is not None
        and baseline.get("fingerprint") == candidate.get("fingerprint")
    )
    return {
        "baseline": baseline.get("run_id"),
        "candidate": candidate.get("run_id"),
        "fingerprint_match": same_shape,
        "threshold": threshold,
        "baseline_pairs_per_second": base_pps,
        "candidate_pairs_per_second": cand_pps,
        "regression": regression,
        "flagged": bool(same_shape and regression >= threshold),
        "wall_seconds": [
            baseline.get("wall_seconds"), candidate.get("wall_seconds"),
        ],
        "percent_of_peak": [
            baseline.get("percent_of_peak"), candidate.get("percent_of_peak"),
        ],
        "anomalies": [
            baseline.get("anomalies", []), candidate.get("anomalies", []),
        ],
    }


def matching_baseline(
    records: list[dict], candidate: dict
) -> dict | None:
    """Most recent earlier record sharing *candidate*'s shape fingerprint."""
    fingerprint = candidate.get("fingerprint")
    if fingerprint is None:
        return None
    for record in reversed(records):
        if record is candidate:
            continue
        if (
            record.get("fingerprint") == fingerprint
            and record.get("run_id") != candidate.get("run_id")
        ):
            return record
    return None


# ---------------------------------------------------------------------------
# Rendering (the report.py renderer family dispatches here).
# ---------------------------------------------------------------------------


def _fmt_when(record: dict) -> str:
    stamp = record.get("timestamp_unix")
    if stamp is None:
        return "?"
    return time.strftime("%Y-%m-%d %H:%M:%S", time.localtime(float(stamp)))


def _fmt_shape(record: dict) -> str:
    cfg = record.get("config", {})
    shape = f"{cfg.get('n_snps', '?')}x{cfg.get('n_samples', '?')}"
    if cfg.get("band"):
        shape += " banded"
    return shape


def render_runs_list(records: list[dict], *, n_torn: int = 0) -> str:
    """The ``repro runs list`` table (also ``repro report runs.jsonl``)."""
    lines = [
        f"runs ({RUN_SCHEMA}): {len(records)} recorded"
        + (f" | WARNING: {n_torn} torn final record dropped "
           "(run killed mid-append)" if n_torn else "")
    ]
    if not records:
        lines.append("(empty ledger — run `repro ld --engine ...` first)")
        return "\n".join(lines)
    lines.append(
        f"{'#':>3} {'run id':<22} {'when':<19} {'engine':<10} "
        f"{'shape':<14} {'fingerprint':<16} {'wall s':>8} {'pairs/s':>12} "
        f"{'%peak':>6} {'flags':>5}"
    )
    for index, record in enumerate(records):
        peak = record.get("percent_of_peak")
        lines.append(
            f"{index:>3} {str(record.get('run_id', '?')):<22} "
            f"{_fmt_when(record):<19} "
            f"{str(record.get('config', {}).get('engine', '?')):<10} "
            f"{_fmt_shape(record):<14} "
            f"{str(record.get('fingerprint', '?')):<16} "
            f"{record.get('wall_seconds', 0.0):>8.3f} "
            f"{record.get('pairs_per_second', 0.0):>12,.0f} "
            f"{'--' if peak is None else format(peak, '.1f'):>6} "
            f"{len(record.get('anomalies', [])):>5}"
        )
    return "\n".join(lines)


def render_run(record: dict) -> str:
    """One record in full — ``repro runs show``."""
    cfg = record.get("config", {})
    tiles = record.get("tiles", {})
    peak = record.get("percent_of_peak")
    lines = [
        f"run {record.get('run_id', '?')} ({RUN_SCHEMA}) at "
        f"{_fmt_when(record)} on {record.get('host', '?')}",
        f"  fingerprint {record.get('fingerprint', '?')} | "
        f"engine={cfg.get('engine', '?')} workers={cfg.get('workers', '?')} "
        f"stat={cfg.get('stat', '?')} {cfg.get('n_snps', '?')} SNPs x "
        f"{cfg.get('n_samples', '?')} samples "
        f"block={cfg.get('block_snps', '?')}"
        + (f" band={cfg['band']}" if cfg.get("band") else "")
        + (f" budget={cfg['memory_budget']}" if cfg.get("memory_budget")
           else ""),
        f"  wall {record.get('wall_seconds', 0.0):.3f} s | "
        f"{record.get('pairs_computed', 0):,} pairs | "
        f"{record.get('pairs_per_second', 0.0):,.0f} pairs/s | "
        f"{'--' if peak is None else format(peak, '.2f') + '%'} of peak",
        f"  tiles {tiles.get('computed', '?')}/{tiles.get('total', '?')} "
        f"computed ({tiles.get('skipped', 0)} skipped, "
        f"{tiles.get('pruned', 0)} pruned, "
        f"{tiles.get('quarantined', 0)} quarantined, "
        f"{tiles.get('retries', 0)} retries)",
    ]
    anomalies = record.get("anomalies", [])
    lines.append(
        "  anomalies: " + (", ".join(anomalies) if anomalies else "none")
    )
    artifacts = {
        k: v for k, v in (record.get("artifacts") or {}).items() if v
    }
    if artifacts:
        lines.append("  artifacts:")
        for key, value in sorted(artifacts.items()):
            lines.append(f"    {key}: {value}")
    return "\n".join(lines)


def render_diff(diff: dict) -> str:
    """The ``repro runs diff A B`` verdict."""
    base_pps = diff["baseline_pairs_per_second"]
    cand_pps = diff["candidate_pairs_per_second"]
    walls = diff.get("wall_seconds", [None, None])
    lines = [
        f"diff baseline {diff.get('baseline', '?')} -> candidate "
        f"{diff.get('candidate', '?')} "
        f"(threshold {diff['threshold']:.0%})",
        f"  pairs/s {base_pps:,.0f} -> {cand_pps:,.0f} "
        f"({-diff['regression']:+.1%})",
    ]
    if walls[0] is not None and walls[1] is not None:
        lines.append(f"  wall    {walls[0]:.3f} s -> {walls[1]:.3f} s")
    peaks = diff.get("percent_of_peak", [None, None])
    if peaks[0] is not None and peaks[1] is not None:
        lines.append(f"  %-peak  {peaks[0]:.2f} -> {peaks[1]:.2f}")
    base_anoms, cand_anoms = diff.get("anomalies", [[], []])
    new_anoms = sorted(set(cand_anoms) - set(base_anoms))
    if new_anoms:
        lines.append(f"  new anomalies: {', '.join(new_anoms)}")
    if not diff["fingerprint_match"]:
        lines.append(
            "  NOTE: shape fingerprints differ — throughput is not "
            "comparable; no regression verdict"
        )
    elif diff["flagged"]:
        lines.append(
            f"  REGRESSION: candidate is {diff['regression']:.1%} slower "
            f"than baseline (>= {diff['threshold']:.0%})"
        )
    else:
        lines.append("  ok: no throughput regression beyond threshold")
    return "\n".join(lines)
