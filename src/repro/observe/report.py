"""Attribution reports: where the cycles went, against where they should.

The span profiler (:mod:`repro.observe.spans`) and metrics recorder
(:mod:`repro.observe.metrics`) answer *what happened*; this module turns
their raw output into the two run artifacts ``repro profile`` and
``repro report`` exchange:

- :func:`build_profile_payload` assembles the ``repro-profile/1`` JSON:
  the per-phase time table (worker phases shipped back through
  ``TileResult.phase_seconds`` joined with the driver's own spans), the
  per-worker utilization timeline, the per-phase roofline
  (measured-vs-modeled via :func:`repro.observe.modelcheck.
  compare_phases_to_model`), the aggregate %-of-peak, and an anomaly
  list flagging the failure smells the out-of-core GEMM literature
  warns about (packing dominating compute, idle workers, unattributed
  time, fault-path churn).
- :func:`render_report` renders any of the repo's instrumentation
  artifacts as text: ``repro-profile/1``, the ``repro-ld-metrics/1``
  payload of ``ld --metrics-out``, a ``repro-trace/1`` (or pre-schema)
  JSONL event trace, the ``repro-bench-gemm/1`` /
  ``repro-bench-engine/1`` benchmark reports, and the accumulated
  ``BENCH_history.jsonl``. :func:`render_file` sniffs JSON vs JSONL so
  the CLI needs no format flag.

The anomaly thresholds are deliberately coarse — the report flags what a
performance engineer would double-take at, not statistical outliers.
"""

from __future__ import annotations

import json
import math
from pathlib import Path

from repro.core.blocking import BlockingParams, DEFAULT_BLOCKING
from repro.observe.modelcheck import compare_phases_to_model, compare_to_model

__all__ = [
    "PROFILE_SCHEMA",
    "UnknownSchemaError",
    "build_profile_payload",
    "load_report_payload",
    "render_file",
    "render_report",
]

PROFILE_SCHEMA = "repro-profile/1"


class UnknownSchemaError(ValueError):
    """An artifact carries a schema tag no renderer understands.

    Distinguished from plain :class:`ValueError` (malformed file,
    empty document) so the CLI can map it to its own exit code: an
    unknown tag usually means a version skew between the writer and
    this reader, which deserves a distinct, scriptable signal.
    """

#: A worker idle more than this fraction of the run is flagged.
IDLE_THRESHOLD = 0.15
#: Span self-times must cover at least this share of measured tile compute.
COVERAGE_FLOOR = 0.90
#: Packing's measured share above this multiple of its modelled share flags.
PACKING_RATIO = 2.0
#: Prefetch stall above this share of the wall-clock flags an I/O-bound run.
STALL_THRESHOLD = 0.10

#: Span names recorded on the driver thread (plus the sink's ``mirror``);
#: everything else in a profile's phase table arrived via the per-tile
#: ``phase.*`` timers, so taking only these from the driver profiler keeps
#: the serial/threads engines (where worker spans land in the same
#: profiler) from being counted twice.
_DRIVER_PREFIX = "driver."

#: Event kinds that indicate the fault-tolerance machinery fired.
_FAULT_KINDS = (
    "tile_retry",
    "tile_corrupt",
    "tile_timeout",
    "tile_quarantined",
    "pool_restart",
    "pool_spawn_failed",
    "executor_degraded",
)


# ---------------------------------------------------------------------------
# Payload assembly
# ---------------------------------------------------------------------------


def _phase_table(recorder, profiler) -> dict[str, dict]:
    """Merge worker phase timers with the driver profiler's own spans."""
    phases: dict[str, dict] = {}
    for key, hist in recorder.timers.items():
        if key.startswith("phase."):
            phases[key[len("phase."):]] = {
                "seconds": hist.total,
                "count": hist.count,
                "where": "worker",
            }
    for name, entry in profiler.totals().items():
        # ``io.*`` spans are the out-of-core prefetcher's disk reads
        # (loader thread) and acquire stalls (compute threads) — driver
        # process time, same double-count-free status as driver.* spans.
        if not (name.startswith(_DRIVER_PREFIX) or name == "mirror"
                or name.startswith("io.")):
            continue
        row = phases.setdefault(
            name, {"seconds": 0.0, "count": 0, "where": "driver"}
        )
        row["seconds"] += entry["seconds"]
        row["count"] += entry["count"]
    total = sum(row["seconds"] for row in phases.values())
    for row in phases.values():
        row["share"] = row["seconds"] / total if total > 0 else 0.0
    return phases


def _worker_timeline(events: list[dict], wall_seconds: float) -> dict:
    """Per-worker busy/idle accounting from retained ``tile_computed`` events.

    ``ts`` is the driver-side delivery timestamp, so ``ts - compute_s``
    approximates when the worker started the tile — good enough for
    utilization and imbalance, which is what the report needs.
    """
    per: dict[str, dict] = {}
    for event in events:
        if event.get("kind") != "tile_computed":
            continue
        worker = str(event.get("worker", "?"))
        ts = float(event.get("ts", 0.0))
        compute = float(event.get("compute_s", 0.0))
        row = per.setdefault(worker, {
            "worker": worker,
            "n_tiles": 0,
            "busy_seconds": 0.0,
            "first_ts": math.inf,
            "last_ts": 0.0,
        })
        row["n_tiles"] += 1
        row["busy_seconds"] += compute
        row["first_ts"] = min(row["first_ts"], ts - compute)
        row["last_ts"] = max(row["last_ts"], ts)
    rows = sorted(per.values(), key=lambda r: r["worker"])
    busy = [row["busy_seconds"] for row in rows]
    for row in rows:
        row["first_ts"] = max(0.0, row["first_ts"])
        row["idle_fraction"] = (
            max(0.0, 1.0 - row["busy_seconds"] / wall_seconds)
            if wall_seconds > 0 else 0.0
        )
    mean_busy = sum(busy) / len(busy) if busy else 0.0
    return {
        "workers": rows,
        "utilization": (
            sum(busy) / (len(busy) * wall_seconds)
            if busy and wall_seconds > 0 else 0.0
        ),
        "imbalance": max(busy) / mean_busy if mean_busy > 0 else 1.0,
        "max_idle_fraction": (
            max(row["idle_fraction"] for row in rows) if rows else 0.0
        ),
    }


def _find_anomalies(
    roofline: list[dict],
    timeline: dict,
    tiles: dict,
    report,
    profiler,
    stall_seconds: float = 0.0,
    wall_seconds: float = 0.0,
    workload: dict | None = None,
) -> list[dict]:
    """Flag the run's attribution smells, worst first by convention."""
    out: list[dict] = []
    band = (workload or {}).get("band") or {}
    band_width = band.get("window") or band.get("index_width") or 0
    n_snps = int((workload or {}).get("n_snps") or 0)
    if band_width and n_snps and band_width >= n_snps:
        out.append({
            "kind": "band_wasteful",
            "detail": (
                f"band window {band_width} covers the whole "
                f"{n_snps}-SNP triangle — no tiles can be pruned; "
                "drop --window/--window-kb and run dense"
            ),
        })
    if wall_seconds > 0 and stall_seconds > STALL_THRESHOLD * wall_seconds:
        out.append({
            "kind": "io_bound",
            "detail": (
                f"compute stalled {stall_seconds:.3g} s waiting on panel "
                f"prefetch ({stall_seconds / wall_seconds:.0%} of wall, "
                f"threshold {STALL_THRESHOLD:.0%}) — disk bandwidth is the "
                "bottleneck; raise --memory-budget or use faster storage"
            ),
        })
    by_name = {row["name"]: row for row in roofline}
    packing = [by_name[n] for n in ("pack_a", "pack_b") if n in by_name]
    pack_measured = sum(row["measured_share"] or 0.0 for row in packing)
    pack_modeled = sum(row["modeled_share"] for row in packing)
    if pack_modeled > 0 and pack_measured > PACKING_RATIO * pack_modeled:
        out.append({
            "kind": "packing_heavy",
            "detail": (
                f"operand packing took {pack_measured:.0%} of measured "
                f"phase time vs {pack_modeled:.0%} modelled "
                f"(>{PACKING_RATIO:.0f}x) — reuse below model assumptions; "
                "check blocking parameters against cache sizes"
            ),
        })
    coverage = tiles.get("phase_coverage")
    if coverage is not None and coverage < COVERAGE_FLOOR:
        out.append({
            "kind": "span_coverage_low",
            "detail": (
                f"phase spans attribute only {coverage:.0%} of measured "
                f"tile compute time (floor {COVERAGE_FLOOR:.0%}); the "
                "remainder is unattributed"
            ),
        })
    for row in timeline["workers"]:
        if len(timeline["workers"]) > 1 and (
            row["idle_fraction"] > IDLE_THRESHOLD
        ):
            out.append({
                "kind": "worker_idle",
                "detail": (
                    f"worker {row['worker']} idle "
                    f"{row['idle_fraction']:.0%} of the run "
                    f"(threshold {IDLE_THRESHOLD:.0%}) — tile imbalance "
                    "or dispatch starvation"
                ),
            })
    if report.n_retries > 0:
        out.append({
            "kind": "tile_retries",
            "detail": (
                f"{report.n_retries} tile retr"
                f"{'y' if report.n_retries == 1 else 'ies'} — retry "
                "backoff time is in the driver.backoff phase"
            ),
        })
    if report.n_quarantined > 0:
        out.append({
            "kind": "tiles_quarantined",
            "detail": (
                f"{report.n_quarantined} tile(s) quarantined; the matrix "
                "has holes and the wall-clock excludes their work"
            ),
        })
    if report.degraded:
        out.append({
            "kind": "executor_degraded",
            "detail": (
                f"executor degraded {report.engine} -> "
                f"{report.engine_used}; worker timeline reflects the "
                "fallback executor"
            ),
        })
    if profiler.n_dropped > 0:
        out.append({
            "kind": "spans_dropped",
            "detail": (
                f"{profiler.n_dropped} span(s) dropped on buffer "
                "overflow; raise SpanProfiler(capacity=...) for full "
                "attribution"
            ),
        })
    return out


def build_profile_payload(
    *,
    recorder,
    profiler,
    report,
    wall_seconds: float,
    workload: dict,
    params: BlockingParams | None = None,
) -> dict:
    """Assemble the ``repro-profile/1`` attribution payload for one run.

    Parameters
    ----------
    recorder:
        The :class:`~repro.observe.metrics.MetricsRecorder` the engine
        ran with. Worker-side phase times arrive here (the ``phase.*``
        timers fed from each tile's ``TileResult.phase_seconds``); the
        per-worker timeline needs ``keep_events=True`` so
        ``tile_computed`` events are retained (without it the timeline
        is empty, not wrong).
    profiler:
        The driver-side :class:`~repro.observe.spans.SpanProfiler`
        passed to :func:`repro.core.engine.run_engine` — ``driver.*``
        spans and the output sink's ``mirror`` spans live here.
    report:
        The run's :class:`~repro.core.engine.EngineReport`.
    wall_seconds:
        Driver wall-clock of the run (must be positive).
    workload:
        Problem description. ``n_snps`` and ``k_words`` are required —
        they fix the roofline's GEMM shape — everything else (engine,
        workers, stat, samples, block size) is carried through verbatim.
    params:
        Blocking the run executed (default ``DEFAULT_BLOCKING``), so the
        model charges the fringe padding that actually ran.
    """
    if wall_seconds <= 0:
        raise ValueError(f"wall_seconds must be positive, got {wall_seconds}")
    for key in ("n_snps", "k_words"):
        if key not in workload:
            raise ValueError(f"workload must carry {key!r}")
    blocking = params if params is not None else DEFAULT_BLOCKING
    n_snps = int(workload["n_snps"])
    k_words = int(workload["k_words"])

    phases = _phase_table(recorder, profiler)
    compute_hist = recorder.timers.get("engine.tile_compute_seconds")
    worker_seconds = sum(
        row["seconds"] for row in phases.values() if row["where"] == "worker"
    )
    tiles = {
        "n_tiles": report.n_tiles,
        "n_computed": report.n_computed,
        "n_skipped": report.n_skipped,
        "n_retries": report.n_retries,
        "n_quarantined": report.n_quarantined,
        "n_batches": report.n_batches,
        "compute_seconds": (
            compute_hist.summary() if compute_hist is not None else None
        ),
        # Fraction of measured tile compute the spans account for; the
        # acceptance bar is that self-times sum to within 10% of the
        # per-tile wall-clock they decompose.
        "phase_coverage": (
            worker_seconds / compute_hist.total
            if compute_hist is not None and compute_hist.total > 0 else None
        ),
    }
    timeline = _worker_timeline(recorder.events, wall_seconds)
    measured = {name: row["seconds"] for name, row in phases.items()}
    roofline = [
        cmp.as_dict()
        for cmp in compare_phases_to_model(
            measured, n_snps, n_snps, k_words,
            params=blocking, symmetric=True,
        )
    ]
    model = None
    if report.complete and report.n_skipped == 0:
        model = compare_to_model(
            n_snps, n_snps, k_words, wall_seconds,
            params=blocking, symmetric=True,
        ).as_dict()
    payload = {
        "schema": PROFILE_SCHEMA,
        "workload": dict(workload),
        "wall_seconds": wall_seconds,
        "engine": report.engine,
        "engine_used": report.engine_used or report.engine,
        "workers": report.n_workers,
        "phases": phases,
        "tiles": tiles,
        "timeline": timeline,
        "roofline": roofline,
        "spans_dropped": profiler.n_dropped,
    }
    if model is not None:
        payload["model"] = model
    stall_hist = recorder.timers.get("prefetch.stall_seconds")
    payload["anomalies"] = _find_anomalies(
        roofline, timeline, tiles, report, profiler,
        stall_seconds=stall_hist.total if stall_hist is not None else 0.0,
        wall_seconds=wall_seconds,
        workload=workload,
    )
    return payload


# ---------------------------------------------------------------------------
# Rendering
# ---------------------------------------------------------------------------


def _fmt_seconds(seconds: float | None) -> str:
    return "--" if seconds is None else f"{seconds:.4g}"


def _fmt_share(share: float | None) -> str:
    return "--" if share is None else f"{100.0 * share:5.1f}%"


def _fmt_ratio(ratio: float | None) -> str:
    return "--" if ratio is None else f"{ratio:.2f}x"


def _render_profile(payload: dict) -> str:
    work = payload.get("workload", {})
    band = work.get("band") or {}
    band_note = ""
    if band.get("window"):
        band_note = f" | band {band['window']} SNPs"
    elif band.get("window_kb") is not None:
        band_note = f" | band {band['window_kb']:g} kb"
    lines = [
        f"profile ({payload['schema']}): engine={payload.get('engine', '?')} "
        f"workers={payload.get('workers', '?')} "
        f"stat={work.get('stat', '?')} "
        f"{work.get('n_snps', '?')} SNPs x {work.get('n_samples', '?')} "
        f"samples ({work.get('k_words', '?')} words/SNP)" + band_note,
    ]
    tiles = payload.get("tiles", {})
    coverage = tiles.get("phase_coverage")
    lines.append(
        f"wall {payload['wall_seconds']:.3f} s | "
        f"{tiles.get('n_computed', '?')}/{tiles.get('n_tiles', '?')} tiles "
        f"computed ({tiles.get('n_skipped', 0)} skipped, "
        f"{tiles.get('n_retries', 0)} retries, "
        f"{tiles.get('n_quarantined', 0)} quarantined) | "
        f"span coverage "
        f"{'--' if coverage is None else f'{coverage:.1%}'}"
    )
    lines.append("")
    lines.append(f"{'phase':<22} {'where':>6} {'seconds':>10} "
                 f"{'share':>7} {'count':>8}")
    phases = payload.get("phases", {})
    for name, row in sorted(
        phases.items(), key=lambda kv: -kv[1]["seconds"]
    ):
        lines.append(
            f"{name:<22} {row['where']:>6} {row['seconds']:>10.4g} "
            f"{_fmt_share(row.get('share')):>7} {row['count']:>8}"
        )
    roofline = payload.get("roofline", [])
    if roofline:
        lines.append("")
        lines.append("roofline (shares of each side's own total):")
        lines.append(f"  {'phase':<22} {'kind':>8} {'measured':>9} "
                     f"{'modeled':>9} {'x model':>8}")
        for row in roofline:
            lines.append(
                f"  {row['name']:<22} {row['kind']:>8} "
                f"{_fmt_share(row['measured_share']):>9} "
                f"{_fmt_share(row['modeled_share']):>9} "
                f"{_fmt_ratio(row['measured_vs_modeled']):>8}"
            )
    timeline = payload.get("timeline", {})
    workers = timeline.get("workers", [])
    if workers:
        lines.append("")
        lines.append(
            f"workers: utilization {timeline['utilization']:.1%}, "
            f"imbalance {timeline['imbalance']:.2f}x, "
            f"max idle {timeline['max_idle_fraction']:.1%}"
        )
        lines.append(f"  {'worker':<18} {'tiles':>6} {'busy s':>9} "
                     f"{'idle':>7} {'first..last s':>16}")
        for row in workers:
            lines.append(
                f"  {row['worker']:<18} {row['n_tiles']:>6} "
                f"{row['busy_seconds']:>9.4g} "
                f"{row['idle_fraction']:>6.1%} "
                f"{row['first_ts']:>7.2f}..{row['last_ts']:<.2f}"
            )
    else:
        lines.append("")
        lines.append("workers: no tile_computed events retained "
                     "(recorder ran without keep_events)")
    model = payload.get("model")
    if model is not None:
        lines.append("")
        lines.append(
            f"model: measured {model['measured_percent_of_peak']:.2f}% of "
            f"peak vs modeled {model['modeled_percent_of_peak']:.2f}% "
            f"({model['measured_vs_modeled']:.2f}x model)"
        )
    anomalies = payload.get("anomalies", [])
    lines.append("")
    if anomalies:
        lines.append(f"anomalies ({len(anomalies)}):")
        for anomaly in anomalies:
            lines.append(f"  - {anomaly['kind']}: {anomaly['detail']}")
    else:
        lines.append("anomalies: none")
    return "\n".join(lines)


def _render_metrics(payload: dict) -> str:
    lines = [
        f"metrics ({payload['schema']}): engine={payload.get('engine', '?')} "
        f"workers={payload.get('workers', '?')} "
        f"stat={payload.get('stat', '?')} "
        f"{payload.get('n_snps', '?')} SNPs x "
        f"{payload.get('n_samples', '?')} samples",
        f"wall {payload.get('wall_seconds', 0.0):.3f} s | "
        f"{payload.get('n_computed', '?')}/{payload.get('n_tiles', '?')} "
        f"tiles ({payload.get('n_skipped', 0)} skipped, "
        f"{payload.get('n_retries', 0)} retries, "
        f"{payload.get('n_quarantined', 0)} quarantined) | "
        f"{payload.get('pairs_per_second', 0.0):,.0f} pairs/s",
    ]
    counters = payload.get("counters", {})
    events = {k: v for k, v in counters.items() if k.startswith("events.")}
    if events:
        lines.append("")
        lines.append("events:")
        for key, count in sorted(events.items()):
            lines.append(f"  {key[len('events.'):]:<22} {count:>8}")
    timers = payload.get("timers", {})
    if timers:
        lines.append("")
        lines.append(f"  {'timer':<32} {'count':>7} {'total s':>10} "
                     f"{'mean s':>10} {'p50':>9} {'p95':>9} {'p99':>9}")
        for name, summary in sorted(timers.items()):
            lines.append(
                f"  {name:<32} {summary['count']:>7} "
                f"{summary['total']:>10.4g} {summary['mean']:>10.4g} "
                f"{_fmt_seconds(summary.get('p50')):>9} "
                f"{_fmt_seconds(summary.get('p95')):>9} "
                f"{_fmt_seconds(summary.get('p99')):>9}"
            )
    band = payload.get("band")
    if band is not None:
        if band.get("window"):
            extent = f"window {band['window']} SNPs"
        else:
            extent = (
                f"window {band.get('max_distance', 0.0):g} bp "
                f"(index width {band.get('index_width', '?')})"
            )
        speedup = band.get("predicted_speedup")
        lines.append("")
        lines.append(
            f"band: {extent} | tiles {band.get('tiles_pruned', 0)} pruned / "
            f"{band.get('tiles_partial', 0)} partial / "
            f"{band.get('tiles_full', 0)} full of "
            f"{band.get('tiles_dense', '?')} dense | "
            f"{band.get('pairs_in_band', 0):,} of "
            f"{band.get('pairs_dense', 0):,} pair cells "
            f"(predicted speedup "
            f"{'--' if speedup is None else format(speedup, '.2f') + 'x'})"
        )
    model = payload.get("model")
    if model is not None:
        lines.append("")
        lines.append(
            f"model: measured {model['measured_percent_of_peak']:.2f}% of "
            f"peak vs modeled {model['modeled_percent_of_peak']:.2f}% "
            f"({model['measured_vs_modeled']:.2f}x model)"
        )
    return "\n".join(lines)


def _render_trace(records: list[dict]) -> str:
    kinds: dict[str, int] = {}
    last_ts = 0.0
    seq_gap = False
    n_torn = getattr(records, "n_torn", 0)
    for i, record in enumerate(records):
        kinds[str(record.get("kind", "?"))] = (
            kinds.get(str(record.get("kind", "?")), 0) + 1
        )
        last_ts = max(last_ts, float(record.get("ts", 0.0)))
        if "seq" in record and record["seq"] != i:
            seq_gap = True
    schema = records[0].get("schema", "pre-schema") if records else "?"
    lines = [
        f"trace ({schema}): {len(records)} events over {last_ts:.3f} s"
        + (" | WARNING: seq gaps (truncated or interleaved trace)"
           if seq_gap else "")
        + (f" | WARNING: {n_torn} torn final line dropped (crashed or "
           "still-running writer)" if n_torn else ""),
        "",
        "event counts:",
    ]
    for kind, count in sorted(kinds.items(), key=lambda kv: -kv[1]):
        lines.append(f"  {kind:<22} {count:>8}")
    faults = [r for r in records if r.get("kind") in _FAULT_KINDS]
    if faults:
        lines.append("")
        lines.append(f"fault-path events ({len(faults)}):")
        for record in faults[:20]:
            detail = {
                k: v for k, v in record.items()
                if k not in ("schema", "seq", "kind", "ts")
            }
            lines.append(
                f"  [{record.get('ts', 0.0):9.3f}s] "
                f"{record.get('kind'):<18} {json.dumps(detail, default=repr)}"
            )
        if len(faults) > 20:
            lines.append(f"  ... and {len(faults) - 20} more")
    return "\n".join(lines)


def _render_bench_gemm(payload: dict) -> str:
    lines = [
        f"bench ({payload['schema']}): {payload.get('model', '')}",
        f"  {'shape':>18} | {'kernel':>7} | {'seconds':>8} | "
        f"{'Gword/s':>8} | {'% peak':>6}",
    ]
    for row in payload.get("results", []):
        shape = f"{row['m']}x{row['n']}x{row['k_words']}"
        lines.append(
            f"  {shape:>18} | {row['kernel']:>7} | {row['seconds']:>8.3f} | "
            f"{row['words_per_second'] / 1e9:>8.2f} | "
            f"{row['measured_percent_of_peak']:>6.2f}"
        )
    return "\n".join(lines)


def _render_bench_banded(payload: dict) -> str:
    lines = [
        f"bench ({payload['schema']}): {payload.get('model', '')}",
        f"  {'snps':>6} | {'window':>6} | {'mode':>6} | {'seconds':>8} | "
        f"{'Gword/s':>8} | {'tiles':>6} | {'pruned':>6} | {'speedup':>7}",
    ]
    for row in payload.get("results", []):
        speedup = row.get("speedup_vs_dense")
        lines.append(
            f"  {row['n_snps']:>6} | {row['window']:>6} | "
            f"{row['mode']:>6} | {row['seconds']:>8.3f} | "
            f"{row['words_per_second'] / 1e9:>8.2f} | "
            f"{row['n_tiles']:>6} | {row.get('tiles_pruned', 0):>6} | "
            f"{'--' if speedup is None else format(speedup, '.2f') + 'x':>7}"
        )
    return "\n".join(lines)


def _render_bench_engine(payload: dict) -> str:
    lines = [
        f"bench ({payload['schema']}): {payload.get('model', '')}",
        f"  {'snps':>6} | {'engine':>10} | {'workers':>7} | "
        f"{'seconds':>8} | {'Mpairs/s':>8} | {'% peak':>6}",
    ]
    for row in payload.get("results", []):
        lines.append(
            f"  {row['n_snps']:>6} | {row['engine']:>10} | "
            f"{row['workers']:>7} | {row['seconds']:>8.3f} | "
            f"{row['pairs_per_second'] / 1e6:>8.2f} | "
            f"{row['measured_percent_of_peak']:>6.2f}"
        )
    return "\n".join(lines)


def _render_live(payload: dict) -> str:
    # Lazy: live.py is importable without report.py and vice versa.
    from repro.observe.live import render_top

    return render_top(payload)


def _render_run(payload: dict) -> str:
    from repro.observe.registry import render_run

    return render_run(payload)


_RENDERERS = {
    "repro-profile/1": _render_profile,
    "repro-ld-metrics/1": _render_metrics,
    "repro-bench-gemm/1": _render_bench_gemm,
    "repro-bench-banded/1": _render_bench_banded,
    "repro-bench-engine/1": _render_bench_engine,
    "repro-live/1": _render_live,
    "repro-run/1": _render_run,
}


def render_report(payload: dict | list) -> str:
    """Render any instrumentation artifact as text, dispatched by schema.

    Accepts a single payload dict (``repro-profile/1``,
    ``repro-ld-metrics/1``, ``repro-bench-gemm/1``,
    ``repro-bench-engine/1``) or a list of JSONL records — an event
    trace (``repro-trace/1``, or the pre-schema traces earlier runs
    wrote: anything whose records carry ``kind``) or a bench history
    (one bench payload per line, newest rendered last).
    """
    if isinstance(payload, list):
        if not payload:
            raise ValueError("empty JSONL document; nothing to render")
        first = payload[0]
        if not isinstance(first, dict):
            raise ValueError(
                f"JSONL records must be objects, got {type(first).__name__}"
            )
        if first.get("schema") == "repro-trace/1" or "kind" in first:
            return _render_trace(payload)
        if first.get("schema") == "repro-run/1":
            from repro.observe.registry import render_runs_list

            return render_runs_list(
                payload, n_torn=getattr(payload, "n_torn", 0)
            )
        parts = [f"history: {len(payload)} entries", ""]
        for record in payload:
            stamp = record.get("timestamp")
            if stamp is not None:
                parts.append(f"-- entry at unix {stamp} --")
            parts.append(render_report(record))
            parts.append("")
        return "\n".join(parts).rstrip()
    if not isinstance(payload, dict):
        raise ValueError(
            f"cannot render a {type(payload).__name__}; expected a dict "
            "payload or a list of JSONL records"
        )
    schema = payload.get("schema")
    renderer = _RENDERERS.get(schema)
    if renderer is None:
        known = ", ".join(sorted(_RENDERERS) + ["repro-trace/1"])
        raise UnknownSchemaError(
            f"unknown schema {schema!r}; renderable schemas: {known}"
        )
    return renderer(payload)


class _JsonlRecords(list):
    """JSONL records plus how many torn trailing lines were dropped."""

    n_torn: int = 0


def load_report_payload(path: str | Path) -> dict | list:
    """Load *path* as one JSON payload, falling back to JSONL records.

    A torn *final* line (the writer crashed or is still mid-write) is
    dropped and counted on the returned list's ``n_torn`` attribute —
    the same tolerance the tile manifest extends to its own tail.
    Corruption anywhere else still raises: an interior bad line means
    the file is damaged, not merely unfinished.
    """
    text = Path(path).read_text(encoding="utf-8")
    try:
        return json.loads(text)
    except json.JSONDecodeError:
        pass
    records = _JsonlRecords()
    lines = text.splitlines()
    last_lineno = max(
        (i for i, line in enumerate(lines, start=1) if line.strip()),
        default=0,
    )
    for lineno, line in enumerate(lines, start=1):
        line = line.strip()
        if not line:
            continue
        try:
            records.append(json.loads(line))
        except json.JSONDecodeError as exc:
            if lineno == last_lineno and not text.endswith("\n"):
                records.n_torn += 1
                continue
            raise ValueError(
                f"{path}: line {lineno} is neither part of a JSON document "
                f"nor a JSONL record ({exc})"
            ) from exc
    if not records:
        raise ValueError(f"{path}: empty document; nothing to render")
    return records


def render_file(path: str | Path) -> str:
    """Render the artifact at *path* (JSON or JSONL, schema-dispatched)."""
    return render_report(load_report_payload(path))
