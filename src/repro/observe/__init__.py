"""Observability for the tiled LD engine: metrics, progress, %-of-peak.

The paper's headline results are measurements, and the out-of-core GEMM
literature (Fabregat-Traver & Bientinesi's petaflops-over-terabytes
pipelines, Beyer & Bientinesi's HDD→GPU streaming) is unambiguous that
multi-stage pipelines live or die on per-stage instrumentation of
compute vs. delivery overlap. This package is that instrumentation
layer, threaded through :func:`repro.core.engine.run_engine`,
:func:`repro.core.streaming.stream_ld_blocks`, and the blocked
:func:`repro.core.gemm.popcount_gemm` drivers:

- :class:`MetricsRecorder` — counters, timers, histograms, and
  structured per-tile events, with a zero-cost disabled default;
- :class:`JsonlTraceSink` — streaming JSON-lines event trace for
  post-hoc analysis;
- :class:`ProgressReporter` — live tiles/s, pairs/s, and ETA;
- :func:`compare_to_model` — measured throughput converted to effective
  ops/cycle and placed against :mod:`repro.machine.perfmodel`'s
  prediction, reproducing the paper's %-of-peak framing (Figs. 3–4) as
  a first-class artifact.

The engine's fault-tolerance machinery reports through the same channel:
``tile_retry`` events carry the specific failure (plus ``tile_corrupt``
for handoff-checksum mismatches and ``tile_timeout`` for watchdog
evictions), ``tile_quarantined`` marks a poison tile taken out of the
run, ``pool_spawn_failed`` / ``pool_restart`` track worker-pool churn,
and ``executor_degraded`` records a processes → threads → serial
fallback — with matching ``engine.corruptions`` / ``engine.timeouts`` /
``engine.tiles_quarantined`` / ``engine.spawn_failures`` /
``engine.degradations`` counters.
"""

from repro.observe.metrics import Histogram, JsonlTraceSink, MetricsRecorder
from repro.observe.modelcheck import PeakComparison, compare_to_model
from repro.observe.progress import ProgressReporter, ProgressSnapshot

__all__ = [
    "Histogram",
    "JsonlTraceSink",
    "MetricsRecorder",
    "PeakComparison",
    "ProgressReporter",
    "ProgressSnapshot",
    "compare_to_model",
]
