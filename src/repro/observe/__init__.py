"""Observability for the tiled LD engine: metrics, spans, %-of-peak.

The paper's headline results are measurements, and the out-of-core GEMM
literature (Fabregat-Traver & Bientinesi's petaflops-over-terabytes
pipelines, Beyer & Bientinesi's HDD→GPU streaming) is unambiguous that
multi-stage pipelines live or die on per-stage instrumentation of
compute vs. delivery overlap. This package is that instrumentation
layer, threaded through :func:`repro.core.engine.run_engine`,
:func:`repro.core.streaming.stream_ld_blocks`, and the blocked
:func:`repro.core.gemm.popcount_gemm` drivers:

- :class:`MetricsRecorder` — counters, timers, histograms, and
  structured per-tile events, with a zero-cost disabled default;
- :class:`JsonlTraceSink` — streaming JSON-lines event trace
  (``repro-trace/1``: schema-tagged, monotonic ``seq``) for post-hoc
  analysis;
- :class:`ProgressReporter` — live tiles/s, pairs/s, and ETA;
- :class:`SpanProfiler` — hierarchical phase spans (pack-A, pack-B,
  plane-matmul, mirror, driver dispatch/deliver, ...) with self-time
  attribution, a no-op singleton when disabled;
- :func:`compare_to_model` / :func:`compare_phases_to_model` — measured
  throughput (aggregate, and per phase) placed against
  :mod:`repro.machine.perfmodel`'s prediction, reproducing the paper's
  %-of-peak framing (Figs. 3–4) as a first-class artifact;
- :func:`build_profile_payload` / :func:`render_report` — the
  ``repro-profile/1`` attribution artifact (phase table, worker
  timelines, roofline classification, anomalies) and the text renderer
  behind ``repro report``.

The engine's fault-tolerance machinery reports through the same channel:
``tile_retry`` events carry the specific failure (plus ``tile_corrupt``
for handoff-checksum mismatches and ``tile_timeout`` for watchdog
evictions), ``tile_quarantined`` marks a poison tile taken out of the
run, ``pool_spawn_failed`` / ``pool_restart`` track worker-pool churn,
and ``executor_degraded`` records a processes → threads → serial
fallback — with matching ``engine.corruptions`` / ``engine.timeouts`` /
``engine.tiles_quarantined`` / ``engine.spawn_failures`` /
``engine.degradations`` counters.

Import layering: the model-facing halves (``modelcheck``, ``report``)
import :mod:`repro.core.gemm` for operation counts, while the core
layers import :mod:`repro.observe.spans` for instrumentation — so those
names resolve lazily (PEP 562) to keep the package importable from
either direction without a cycle.
"""

from repro.observe.metrics import Histogram, JsonlTraceSink, MetricsRecorder
from repro.observe.progress import ProgressReporter, ProgressSnapshot
from repro.observe.spans import (
    NULL_PROFILER,
    SpanProfiler,
    SpanRecord,
    current_profiler,
    install_profiler,
    profiling,
    span,
)

__all__ = [
    "Histogram",
    "JsonlTraceSink",
    "MetricsRecorder",
    "NULL_PROFILER",
    "PeakComparison",
    "PhaseComparison",
    "ProgressReporter",
    "ProgressSnapshot",
    "SpanProfiler",
    "SpanRecord",
    "build_profile_payload",
    "compare_phases_to_model",
    "compare_to_model",
    "current_profiler",
    "install_profiler",
    "profiling",
    "render_file",
    "render_report",
    "span",
]

#: Lazily resolved names → defining submodule. These submodules import
#: repro.core / repro.machine, which in turn import repro.observe.spans;
#: resolving them eagerly here would close the cycle mid-import.
_LAZY = {
    "PeakComparison": "repro.observe.modelcheck",
    "compare_to_model": "repro.observe.modelcheck",
    "PhaseComparison": "repro.observe.modelcheck",
    "compare_phases_to_model": "repro.observe.modelcheck",
    "build_profile_payload": "repro.observe.report",
    "render_file": "repro.observe.report",
    "render_report": "repro.observe.report",
}


def __getattr__(name: str):
    module_name = _LAZY.get(name)
    if module_name is None:
        raise AttributeError(
            f"module {__name__!r} has no attribute {name!r}"
        )
    import importlib

    value = getattr(importlib.import_module(module_name), name)
    globals()[name] = value
    return value


def __dir__() -> list[str]:
    return sorted(set(globals()) | set(__all__))
