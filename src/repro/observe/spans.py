"""Hierarchical span profiler: phase-level attribution for the hot paths.

The run-level counters of :mod:`repro.observe.metrics` answer *how fast*
a run was; they cannot say *where* the cycles went — whether the fused
GEMM loses time packing operands, in the bit-plane matmul, mirroring, or
in the driver's dispatch/deliver machinery. PLINK 2 and the
GWAS-at-scale pipelines of Fabregat-Traver & Bientinesi both sustain
hardware speed by exactly this per-phase accounting; this module is that
measurement layer.

Design constraints, in order:

1. **Near-zero overhead when disabled.** The hot layers call the
   module-level :func:`span` helper, which dispatches to the installed
   profiler. The default is :data:`NULL_PROFILER`, a stateless no-op
   singleton whose ``span()`` returns one reusable null context manager
   — the disabled cost is a global load, a method call, and an empty
   ``with`` block per *phase* (a handful per cache block, never per
   micro-tile).
2. **No hot-loop allocation when enabled.** Each thread records into
   preallocated flat numpy buffers (name id, depth, start, inclusive
   seconds, self seconds); entering a span appends to a plain-list
   stack, exiting writes one row. Overflowing the per-thread capacity
   drops spans (counted in :attr:`SpanProfiler.n_dropped`) rather than
   growing.
3. **Self-time attribution.** Every record carries both inclusive and
   *self* (exclusive) seconds — a parent's self time is its inclusive
   time minus its children's — so per-phase totals are disjoint and sum
   to the root spans' wall-clock, which is what lets the attribution
   engine (:mod:`repro.observe.report`) check coverage against each
   tile's measured compute seconds.

Worker processes cannot share the driver's profiler; the engine installs
a fresh profiler per worker (see
:func:`repro.core.executors._init_worker`) and ships each tile's
per-phase self-seconds back inside
:class:`~repro.core.engine.TileResult`.
"""

from __future__ import annotations

import threading
import time
from contextlib import contextmanager
from dataclasses import dataclass
from typing import Iterator

import numpy as np

__all__ = [
    "NULL_PROFILER",
    "SpanProfiler",
    "SpanRecord",
    "current_profiler",
    "install_profiler",
    "profiling",
    "span",
]


@dataclass(frozen=True)
class SpanRecord:
    """One completed span: where time went, and under what parent depth."""

    name: str
    thread: str
    depth: int
    start: float
    inclusive_seconds: float
    self_seconds: float


class _NullSpan:
    """Reusable no-op context manager (the disabled ``with`` body)."""

    __slots__ = ()

    def __enter__(self) -> "_NullSpan":
        return self

    def __exit__(self, *exc_info: object) -> bool:
        return False


_NULL_SPAN = _NullSpan()


class _NullProfiler:
    """Stateless no-op profiler: every operation is a constant.

    Installed by default so the hot layers can call :func:`span`
    unconditionally — profiling off means this singleton, not ``None``
    checks threaded through every kernel signature.
    """

    __slots__ = ()

    enabled = False
    n_dropped = 0

    def span(self, name: str) -> _NullSpan:
        return _NULL_SPAN

    def mark(self) -> int:
        return 0

    def collect(self, mark: int) -> dict[str, float]:
        return {}

    def totals(self) -> dict[str, dict]:
        return {}

    def records(self) -> list[SpanRecord]:
        return []


#: The shared disabled singleton (identity-comparable).
NULL_PROFILER = _NullProfiler()


class _ThreadBuffer:
    """One thread's preallocated span storage plus its open-span stack."""

    __slots__ = ("name_ids", "depths", "starts", "incl", "self_s", "pos",
                 "stack", "thread_name")

    def __init__(self, capacity: int, thread_name: str) -> None:
        self.name_ids = np.empty(capacity, dtype=np.int32)
        self.depths = np.empty(capacity, dtype=np.int32)
        self.starts = np.empty(capacity, dtype=np.float64)
        self.incl = np.empty(capacity, dtype=np.float64)
        self.self_s = np.empty(capacity, dtype=np.float64)
        self.pos = 0
        #: Open spans: [name_id, start_seconds, child_inclusive_accum].
        self.stack: list[list] = []
        self.thread_name = thread_name


class _SpanExit:
    """Context manager half of :meth:`SpanProfiler.span` (enter happened
    at the ``span()`` call itself; one shared instance per profiler)."""

    __slots__ = ("_profiler",)

    def __init__(self, profiler: "SpanProfiler") -> None:
        self._profiler = profiler

    def __enter__(self) -> "_SpanExit":
        return self

    def __exit__(self, *exc_info: object) -> bool:
        self._profiler._exit()
        return False


class SpanProfiler:
    """Hierarchical wall-clock span profiler with per-thread buffers.

    Parameters
    ----------
    capacity:
        Spans retained per thread. Overflow drops the span (counted in
        :attr:`n_dropped`); at the engine's phase granularity the default
        holds >1000 tiles per worker thread.

    Usage::

        profiler = SpanProfiler()
        with profiler.span("pack_a"):
            ...

    or, for the hot layers that must not know whether profiling is on,
    install it and use the module-level helper::

        install_profiler(profiler)
        with span("pack_a"):
            ...
    """

    enabled = True

    def __init__(self, capacity: int = 1 << 16) -> None:
        if capacity < 1:
            raise ValueError(f"capacity must be positive, got {capacity}")
        self.capacity = capacity
        self.n_dropped = 0
        self.t0 = time.perf_counter()
        self._local = threading.local()
        self._lock = threading.Lock()
        self._name_ids: dict[str, int] = {}
        self._names: list[str] = []
        self._buffers: list[_ThreadBuffer] = []
        self._exit_ctx = _SpanExit(self)

    # -- recording ---------------------------------------------------------

    def _buffer(self) -> _ThreadBuffer:
        buf = getattr(self._local, "buf", None)
        if buf is None:
            buf = _ThreadBuffer(self.capacity, threading.current_thread().name)
            self._local.buf = buf
            with self._lock:
                self._buffers.append(buf)
        return buf

    def _name_id(self, name: str) -> int:
        nid = self._name_ids.get(name)
        if nid is None:
            with self._lock:
                nid = self._name_ids.get(name)
                if nid is None:
                    nid = len(self._names)
                    self._names.append(name)
                    self._name_ids[name] = nid
        return nid

    def span(self, name: str) -> _SpanExit:
        """Open span *name* now; close it when the returned context exits."""
        buf = self._buffer()
        buf.stack.append([self._name_id(name), time.perf_counter(), 0.0])
        return self._exit_ctx

    def _exit(self) -> None:
        end = time.perf_counter()
        buf = self._buffer()
        name_id, start, child_accum = buf.stack.pop()
        inclusive = end - start
        if buf.stack:
            buf.stack[-1][2] += inclusive
        pos = buf.pos
        if pos >= self.capacity:
            self.n_dropped += 1
            return
        buf.name_ids[pos] = name_id
        buf.depths[pos] = len(buf.stack)
        buf.starts[pos] = start - self.t0
        buf.incl[pos] = inclusive
        buf.self_s[pos] = inclusive - child_accum
        buf.pos = pos + 1

    # -- querying ----------------------------------------------------------

    def mark(self) -> int:
        """Current record position of the calling thread's buffer.

        Pass the value to :meth:`collect` to aggregate only the spans
        recorded in between (the per-tile collection window).
        """
        return self._buffer().pos

    def collect(self, mark: int) -> dict[str, float]:
        """Per-name *self* seconds recorded on this thread since *mark*.

        Self times are disjoint by construction, so the dict's values sum
        to the wall-clock covered by the root spans in the window — the
        per-tile phase breakdown shipped in ``TileResult.phase_seconds``.
        """
        buf = self._buffer()
        out: dict[str, float] = {}
        names = self._names
        for i in range(mark, buf.pos):
            name = names[buf.name_ids[i]]
            out[name] = out.get(name, 0.0) + float(buf.self_s[i])
        return out

    def totals(self) -> dict[str, dict]:
        """Aggregate over every thread: per-name seconds/count/inclusive."""
        out: dict[str, dict] = {}
        with self._lock:
            buffers = list(self._buffers)
        for buf in buffers:
            pos = buf.pos
            for i in range(pos):
                name = self._names[buf.name_ids[i]]
                entry = out.get(name)
                if entry is None:
                    entry = out[name] = {
                        "seconds": 0.0, "count": 0, "inclusive_seconds": 0.0,
                    }
                entry["seconds"] += float(buf.self_s[i])
                entry["count"] += 1
                entry["inclusive_seconds"] += float(buf.incl[i])
        return out

    def records(self) -> list[SpanRecord]:
        """Every completed span across all threads, in per-thread order."""
        out: list[SpanRecord] = []
        with self._lock:
            buffers = list(self._buffers)
        for buf in buffers:
            for i in range(buf.pos):
                out.append(SpanRecord(
                    name=self._names[buf.name_ids[i]],
                    thread=buf.thread_name,
                    depth=int(buf.depths[i]),
                    start=float(buf.starts[i]),
                    inclusive_seconds=float(buf.incl[i]),
                    self_seconds=float(buf.self_s[i]),
                ))
        return out


# ---------------------------------------------------------------------------
# The installed profiler: what the hot layers see.
# ---------------------------------------------------------------------------

_ACTIVE: SpanProfiler | _NullProfiler = NULL_PROFILER


def current_profiler() -> SpanProfiler | _NullProfiler:
    """The profiler the hot layers are currently recording into."""
    return _ACTIVE


def install_profiler(
    profiler: SpanProfiler | _NullProfiler | None,
) -> SpanProfiler | _NullProfiler:
    """Install *profiler* as the active one; returns the previous.

    ``None`` installs :data:`NULL_PROFILER` (profiling off). The engine
    installs the caller's profiler for the duration of a run and restores
    the previous one afterwards; worker processes install their own in
    the pool initializer.
    """
    global _ACTIVE
    previous = _ACTIVE
    _ACTIVE = profiler if profiler is not None else NULL_PROFILER
    return previous


@contextmanager
def profiling(
    profiler: SpanProfiler | None = None,
) -> Iterator[SpanProfiler]:
    """Install a profiler (a fresh one by default) for the enclosed block."""
    active = profiler if profiler is not None else SpanProfiler()
    previous = install_profiler(active)
    try:
        yield active
    finally:
        install_profiler(previous)


def span(name: str):
    """Open a span on the active profiler (no-op when profiling is off)."""
    return _ACTIVE.span(name)
