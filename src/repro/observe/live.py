"""Live run-status bus: a crash-safe snapshot file the engine publishes.

Post-hoc artifacts (metrics/trace/profile) answer *what happened*; this
module answers *what is happening* — the sustained-throughput monitoring
the out-of-core GEMM literature treats as table stakes ("Computing
Petaflops over Terabytes of Data"; "Streaming Data from HDD to GPUs for
Sustained Peak Performance": a 2-hour sweep that went I/O-bound at
minute 3 must say so at minute 3, not in the post-mortem).

The design is a single-writer status file, not a socket:

- :class:`LivePublisher` holds the run's mutable state (tile/pair
  progress, per-worker heartbeats, respawn/retry accounting) fed by the
  engine's delivery hooks, and serializes it as one versioned JSON blob
  (``repro-live/1``) on a throttled cadence (~2 Hz by default).
- Every publish is an **atomic replace**: the blob is written to a
  sibling temp file and ``os.replace``-d over the target, so a reader
  polling concurrently — ``repro top``, the Prometheus exporter, a
  human with ``watch cat`` — always sees a complete JSON document,
  never a torn write. A crash leaves the last good snapshot behind.
- Disabled is free: the engine guards every hook with
  ``if live is not None`` (the same discipline as ``recorder`` and
  ``NULL_PROFILER``), so a run without ``--live`` pays one pointer
  comparison per tile.

Reader-side helpers live here too: :func:`read_snapshot` (tolerant
load), :func:`render_top` (the ``repro top`` terminal dashboard with
per-worker rows and a throughput sparkline), :func:`prometheus_text`
(text-format exposition mapping the snapshot to gauges/counters — the
metric surface the future LD query service daemon will reuse), and
:func:`serve_prometheus` (a stdlib HTTP exporter for ``repro export
--serve``).

Live anomaly flags reuse :mod:`repro.observe.report`'s thresholds
(``io_bound``, ``worker_idle``, ``packing_heavy``) so the dashboard and
the post-hoc report never disagree about what counts as a smell; the
imports resolve lazily because report/modelcheck pull in
:mod:`repro.core` (the cycle :mod:`repro.observe`'s ``__init__``
documents).
"""

from __future__ import annotations

import json
import math
import os
import time
from collections import deque
from pathlib import Path

__all__ = [
    "LIVE_SCHEMA",
    "LivePublisher",
    "new_run_id",
    "prometheus_text",
    "read_snapshot",
    "render_top",
    "serve_prometheus",
]

LIVE_SCHEMA = "repro-live/1"

#: Minimum seconds between published snapshots (~2 Hz).
DEFAULT_INTERVAL = 0.5

#: Published rate samples retained for the dashboard sparkline.
RATE_HISTORY = 32

#: A worker whose last heartbeat is older than this many publish
#: intervals renders as idle (heartbeats arrive on tile delivery, so
#: the scale is tiles, not milliseconds).
_IDLE_AFTER_INTERVALS = 4.0

_SPARK_CHARS = "▁▂▃▄▅▆▇█"


def new_run_id() -> str:
    """A sortable, collision-resistant run identifier."""
    return time.strftime("%Y%m%d-%H%M%S") + "-" + os.urandom(3).hex()


class LivePublisher:
    """Single-writer publisher of the ``repro-live/1`` snapshot file.

    Parameters
    ----------
    path:
        Snapshot target. Each publish atomically replaces it.
    run_id:
        Identity shared with the run-registry record (default: a fresh
        :func:`new_run_id`).
    config:
        Static run description carried verbatim into every snapshot
        (engine, stat, shape, band, memory budget, ...). When it names
        ``n_snps``/``k_words`` and no band, snapshots include a running
        %-of-peak estimate from the perfmodel.
    recorder:
        Optional :class:`~repro.observe.metrics.MetricsRecorder` to pull
        prefetch/phase/counter state from at publish time. The
        publisher never writes to it.
    interval:
        Throttle for :meth:`maybe_publish` (seconds; ~2 Hz default).
    """

    def __init__(
        self,
        path: str | Path,
        *,
        run_id: str | None = None,
        config: dict | None = None,
        recorder=None,
        interval: float = DEFAULT_INTERVAL,
    ) -> None:
        if interval <= 0:
            raise ValueError(f"interval must be positive, got {interval}")
        self.path = Path(path)
        self.run_id = run_id if run_id is not None else new_run_id()
        self.config = dict(config) if config else {}
        self.recorder = recorder
        self.interval = float(interval)
        self.phase = "starting"
        self.n_published = 0
        # Progress state, fed by the engine hooks.
        self.tiles_total = 0
        self.tiles_done = 0
        self.tiles_skipped = 0
        self.tiles_pruned = 0
        self.tiles_quarantined = 0
        self.pairs_total = 0
        self.pairs_done = 0
        self.pairs_skipped = 0
        self.retries = 0
        self.pool_restarts = 0
        self.worker_respawns = 0
        self.workers: dict[str, dict] = {}
        self._respawn_log: deque[dict] = deque(maxlen=8)
        self._t0 = time.monotonic()
        self._started_unix = time.time()
        self._next_due = 0.0  # first maybe_publish always fires
        # (monotonic ts, pairs_done) samples taken at publish time; the
        # window rate spans the deque, so ~8 s at the default cadence.
        self._rate_samples: deque[tuple[float, int]] = deque(maxlen=16)
        self._rate_history: deque[float] = deque(maxlen=RATE_HISTORY)
        self.last_anomalies: list[dict] = []

    # -- engine-facing hooks (cheap; no I/O) ------------------------------

    def begin(
        self, *, n_tiles: int, pairs_total: int, n_pruned: int = 0
    ) -> None:
        """Record the run's totals and force the first snapshot out."""
        self.tiles_total = n_tiles
        self.pairs_total = pairs_total
        self.tiles_pruned = n_pruned
        self.phase = "running"
        self._t0 = time.monotonic()
        self._started_unix = time.time()
        self.publish()

    def tile_done(
        self, *, worker: str, pairs: int, compute_s: float = 0.0
    ) -> None:
        """One tile delivered: progress plus the worker's heartbeat."""
        self.tiles_done += 1
        self.pairs_done += pairs
        row = self.workers.get(worker)
        if row is None:
            row = self.workers[worker] = {
                "worker": worker, "n_tiles": 0, "busy_seconds": 0.0,
                "last_seen": 0.0,
            }
        row["n_tiles"] += 1
        row["busy_seconds"] += float(compute_s)
        row["last_seen"] = time.monotonic()

    def tile_skipped(self, pairs: int) -> None:
        self.tiles_skipped += 1
        self.pairs_skipped += pairs

    def tile_quarantined(self) -> None:
        self.tiles_quarantined += 1

    def tile_retry(self) -> None:
        self.retries += 1

    def pool_restart(self) -> None:
        self.pool_restarts += 1

    def worker_respawn(self, worker: int) -> None:
        self.worker_respawns += 1
        self._respawn_log.append({
            "worker": int(worker),
            "elapsed_seconds": time.monotonic() - self._t0,
        })

    def finish(self) -> None:
        """Mark the run done and force the final snapshot out."""
        self.phase = "done"
        self.publish()

    # -- publication ------------------------------------------------------

    def maybe_publish(self) -> bool:
        """Publish if the throttle interval elapsed; the engine hot path.

        One monotonic-clock read and a comparison when throttled — cheap
        enough for the drive loop to call once per drain round.
        """
        now = time.monotonic()
        if now < self._next_due:
            return False
        self.publish(now=now)
        return True

    def publish(self, *, now: float | None = None) -> None:
        """Assemble and atomically replace the snapshot file."""
        if now is None:
            now = time.monotonic()
        self._next_due = now + self.interval
        snapshot = self._snapshot(now)
        tmp = self.path.with_name(self.path.name + ".tmp")
        tmp.write_text(
            json.dumps(snapshot, separators=(",", ":"), default=repr) + "\n",
            encoding="utf-8",
        )
        os.replace(tmp, self.path)
        self.n_published += 1

    def _snapshot(self, now: float) -> dict:
        elapsed = max(now - self._t0, 1e-9)
        self._rate_samples.append((now, self.pairs_done))
        t_old, pairs_old = self._rate_samples[0]
        window = (
            (self.pairs_done - pairs_old) / (now - t_old)
            if now > t_old else 0.0
        )
        self._rate_history.append(window)
        idle_after = max(2.0, _IDLE_AFTER_INTERVALS * self.interval)
        worker_rows = []
        for row in sorted(self.workers.values(), key=lambda r: r["worker"]):
            age = now - row["last_seen"]
            worker_rows.append({
                "worker": row["worker"],
                "n_tiles": row["n_tiles"],
                "busy_seconds": row["busy_seconds"],
                "last_seen_seconds": age,
                "state": (
                    "busy" if (self.phase == "running" and age < idle_after)
                    else "idle"
                ),
            })
        prefetch = {"bytes_read": 0, "stall_seconds": 0.0}
        if self.recorder is not None:
            prefetch["bytes_read"] = self.recorder.counters.get(
                "prefetch.bytes_read", 0
            )
            stall = self.recorder.timers.get("prefetch.stall_seconds")
            if stall is not None:
                prefetch["stall_seconds"] = stall.total
        percent_of_peak = self._percent_of_peak(elapsed)
        self.last_anomalies = self._anomalies(
            elapsed, worker_rows, prefetch["stall_seconds"]
        )
        return {
            "schema": LIVE_SCHEMA,
            "run_id": self.run_id,
            "pid": os.getpid(),
            "seq": self.n_published,
            "phase": self.phase,
            "updated_unix": time.time(),
            "started_unix": self._started_unix,
            "elapsed_seconds": elapsed,
            "config": self.config,
            "tiles": {
                "total": self.tiles_total,
                "done": self.tiles_done,
                "skipped": self.tiles_skipped,
                "pruned": self.tiles_pruned,
                "quarantined": self.tiles_quarantined,
            },
            "pairs": {
                "total": self.pairs_total,
                "done": self.pairs_done,
                "skipped": self.pairs_skipped,
                "per_second": self.pairs_done / elapsed,
                "window_per_second": window,
            },
            "percent_of_peak": percent_of_peak,
            "workers": worker_rows,
            "worker_respawns": self.worker_respawns,
            "recent_respawns": list(self._respawn_log),
            "retries": self.retries,
            "pool_restarts": self.pool_restarts,
            "prefetch": prefetch,
            "anomalies": self.last_anomalies,
            "rate_history": [round(r, 3) for r in self._rate_history],
        }

    def _percent_of_peak(self, elapsed: float) -> float | None:
        """Running %-of-peak estimate from the perfmodel hooks.

        Projects the run's end-to-end time at the current average rate
        and scores the *whole* problem at that pace — the same currency
        as the post-hoc metrics artifact. Banded runs are skipped (the
        model prices the dense triangle) and so are runs whose config
        does not carry the GEMM shape.
        """
        n_snps = self.config.get("n_snps")
        k_words = self.config.get("k_words")
        if (
            not n_snps or not k_words or self.config.get("band")
            or self.pairs_done <= 0 or self.pairs_total <= 0
        ):
            return None
        projected = elapsed * self.pairs_total / self.pairs_done
        from repro.observe.modelcheck import compare_to_model

        return compare_to_model(
            int(n_snps), int(n_snps), int(k_words), projected, symmetric=True
        ).measured_percent_of_peak

    def _anomalies(
        self, elapsed: float, worker_rows: list[dict], stall_seconds: float
    ) -> list[dict]:
        """Live smells, judged by report.py's thresholds."""
        from repro.observe import report as _report

        out: list[dict] = []
        if (
            elapsed > 0
            and stall_seconds > _report.STALL_THRESHOLD * elapsed
        ):
            out.append({
                "kind": "io_bound",
                "detail": (
                    f"compute stalled {stall_seconds:.3g} s on panel "
                    f"prefetch ({stall_seconds / elapsed:.0%} of elapsed, "
                    f"threshold {_report.STALL_THRESHOLD:.0%}) — raise "
                    "--memory-budget"
                ),
            })
        if self.phase == "running" and len(worker_rows) > 1 and elapsed > 2.0:
            for row in worker_rows:
                idle = max(0.0, 1.0 - row["busy_seconds"] / elapsed)
                if idle > _report.IDLE_THRESHOLD and row["state"] == "idle":
                    out.append({
                        "kind": "worker_idle",
                        "detail": (
                            f"worker {row['worker']} idle {idle:.0%} of the "
                            f"run so far (threshold "
                            f"{_report.IDLE_THRESHOLD:.0%})"
                        ),
                    })
        out.extend(self._packing_anomaly())
        return out

    def _packing_anomaly(self) -> list[dict]:
        n_snps = self.config.get("n_snps")
        k_words = self.config.get("k_words")
        if self.recorder is None or not n_snps or not k_words:
            return []
        measured = {
            key[len("phase."):]: hist.total
            for key, hist in self.recorder.timers.items()
            if key.startswith("phase.")
        }
        if not any(name in measured for name in ("pack_a", "pack_b")):
            return []
        from repro.observe import report as _report
        from repro.observe.modelcheck import compare_phases_to_model

        rows = {
            cmp.name: cmp
            for cmp in compare_phases_to_model(
                measured, int(n_snps), int(n_snps), int(k_words),
                symmetric=True,
            )
        }
        packing = [rows[n] for n in ("pack_a", "pack_b") if n in rows]
        pack_measured = sum(r.measured_share or 0.0 for r in packing)
        pack_modeled = sum(r.modeled_share for r in packing)
        if (
            pack_modeled > 0
            and pack_measured > _report.PACKING_RATIO * pack_modeled
        ):
            return [{
                "kind": "packing_heavy",
                "detail": (
                    f"operand packing at {pack_measured:.0%} of measured "
                    f"phase time vs {pack_modeled:.0%} modelled "
                    f"(>{_report.PACKING_RATIO:.0f}x)"
                ),
            }]
        return []


# ---------------------------------------------------------------------------
# Reader side: repro top, the Prometheus exporter.
# ---------------------------------------------------------------------------


def read_snapshot(path: str | Path) -> dict | None:
    """Load a live snapshot; ``None`` when the file does not exist yet.

    The writer's atomic replace means a present file is always one
    complete JSON document — a parse error here is a real corruption
    (or not a snapshot file at all) and raises.
    """
    try:
        text = Path(path).read_text(encoding="utf-8")
    except FileNotFoundError:
        return None
    payload = json.loads(text)
    if payload.get("schema") != LIVE_SCHEMA:
        raise ValueError(
            f"{path}: schema {payload.get('schema')!r} is not {LIVE_SCHEMA!r}"
        )
    return payload


def sparkline(values: list[float]) -> str:
    """Unicode block sparkline of *values* (empty string when empty)."""
    if not values:
        return ""
    top = max(values)
    if top <= 0:
        return _SPARK_CHARS[0] * len(values)
    steps = len(_SPARK_CHARS) - 1
    return "".join(
        _SPARK_CHARS[min(steps, int(v / top * steps + 0.5))] for v in values
    )


def _fmt_age(seconds: float) -> str:
    if seconds < 60.0:
        return f"{seconds:.1f}s ago"
    return f"{seconds / 60.0:.1f}m ago"


def render_top(snapshot: dict) -> str:
    """Render one live snapshot as the ``repro top`` dashboard."""
    cfg = snapshot.get("config", {})
    tiles = snapshot.get("tiles", {})
    pairs = snapshot.get("pairs", {})
    bits = [
        f"run {snapshot.get('run_id', '?')} [{snapshot.get('phase', '?')}]",
        f"engine={cfg.get('engine', '?')}",
    ]
    if cfg.get("workers"):
        bits.append(f"workers={cfg['workers']}")
    bits.append(
        f"{cfg.get('stat', '?')} {cfg.get('n_snps', '?')} SNPs x "
        f"{cfg.get('n_samples', '?')} samples"
    )
    if cfg.get("band"):
        bits.append(f"band {cfg['band']}")
    if cfg.get("memory_budget"):
        bits.append(f"budget {cfg['memory_budget']}")
    lines = [" | ".join(bits)]
    lines.append(
        f"tiles {tiles.get('done', 0)}/{tiles.get('total', 0)} done "
        f"({tiles.get('skipped', 0)} skipped, {tiles.get('pruned', 0)} "
        f"pruned, {tiles.get('quarantined', 0)} quarantined) | "
        f"elapsed {snapshot.get('elapsed_seconds', 0.0):.1f} s"
    )
    peak = snapshot.get("percent_of_peak")
    lines.append(
        f"pairs {pairs.get('done', 0):,}/{pairs.get('total', 0):,} | "
        f"{pairs.get('window_per_second', 0.0):,.0f} pairs/s now, "
        f"{pairs.get('per_second', 0.0):,.0f} avg"
        + (f" | {peak:.1f}% of peak" if peak is not None else "")
    )
    history = snapshot.get("rate_history", [])
    if history:
        lines.append(f"rate {sparkline(history)}")
    prefetch = snapshot.get("prefetch", {})
    if prefetch.get("bytes_read"):
        lines.append(
            f"prefetch {prefetch['bytes_read'] / 1e6:.1f} MB read, "
            f"{prefetch.get('stall_seconds', 0.0):.3g} s stalled"
        )
    workers = snapshot.get("workers", [])
    n_busy = sum(1 for w in workers if w.get("state") == "busy")
    lines.append("")
    lines.append(
        f"workers: {n_busy} busy, {len(workers) - n_busy} idle | "
        f"{snapshot.get('worker_respawns', 0)} respawns, "
        f"{snapshot.get('retries', 0)} retries, "
        f"{snapshot.get('pool_restarts', 0)} pool restarts"
    )
    if workers:
        lines.append(f"  {'worker':<20} {'state':>6} {'tiles':>6} "
                     f"{'busy s':>9} {'last seen':>12}")
        for row in workers:
            lines.append(
                f"  {row.get('worker', '?'):<20} {row.get('state', '?'):>6} "
                f"{row.get('n_tiles', 0):>6} "
                f"{row.get('busy_seconds', 0.0):>9.4g} "
                f"{_fmt_age(row.get('last_seen_seconds', 0.0)):>12}"
            )
    for event in snapshot.get("recent_respawns", []):
        lines.append(
            f"  respawned worker slot {event.get('worker')} at "
            f"{event.get('elapsed_seconds', 0.0):.1f} s"
        )
    anomalies = snapshot.get("anomalies", [])
    lines.append("")
    if anomalies:
        lines.append(f"anomalies ({len(anomalies)}):")
        for anomaly in anomalies:
            lines.append(f"  - {anomaly['kind']}: {anomaly['detail']}")
    else:
        lines.append("anomalies: none")
    return "\n".join(lines)


def _prom_escape(value: str) -> str:
    return (
        str(value).replace("\\", r"\\").replace('"', r'\"').replace("\n", r"\n")
    )


def prometheus_text(snapshot: dict) -> str:
    """Map one snapshot to Prometheus text exposition format (0.0.4).

    Progress quantities export as gauges (a resumed run restarts them),
    monotone totals as counters. Every series carries the ``run_id``
    label so a long-lived scraper can tell runs apart.
    """
    run = _prom_escape(snapshot.get("run_id", "unknown"))
    label = f'{{run_id="{run}"}}'
    tiles = snapshot.get("tiles", {})
    pairs = snapshot.get("pairs", {})
    prefetch = snapshot.get("prefetch", {})

    def num(value: object) -> str:
        if value is None:
            return "NaN"
        value = float(value)
        if math.isnan(value):
            return "NaN"
        return format(value, ".10g")

    lines: list[str] = []

    def gauge(name: str, help_: str, value: object, labels: str = "") -> None:
        lines.append(f"# HELP {name} {help_}")
        lines.append(f"# TYPE {name} gauge")
        lines.append(f"{name}{labels or label} {num(value)}")

    def counter(name: str, help_: str, value: object) -> None:
        lines.append(f"# HELP {name} {help_}")
        lines.append(f"# TYPE {name} counter")
        lines.append(f"{name}{label} {num(value)}")

    gauge("repro_live_up",
          "1 while the engine run is publishing (0 once done)",
          1.0 if snapshot.get("phase") == "running" else 0.0)
    gauge("repro_elapsed_seconds", "Wall-clock seconds since run start",
          snapshot.get("elapsed_seconds"))
    for key in ("total", "done", "skipped", "pruned", "quarantined"):
        gauge(f"repro_tiles_{key}", f"Tiles {key} in the current run",
              tiles.get(key, 0))
    gauge("repro_pairs_total", "Pair cells the run will deliver",
          pairs.get("total", 0))
    gauge("repro_pairs_done", "Pair cells delivered so far",
          pairs.get("done", 0))
    gauge("repro_pairs_per_second",
          "Average delivered pair throughput since run start",
          pairs.get("per_second", 0.0))
    gauge("repro_pairs_per_second_window",
          "Delivered pair throughput over the recent sample window",
          pairs.get("window_per_second", 0.0))
    gauge("repro_percent_of_peak",
          "Running %-of-peak estimate vs the machine model (NaN if n/a)",
          snapshot.get("percent_of_peak"))
    counter("repro_retries_total", "Tile retries", snapshot.get("retries", 0))
    counter("repro_worker_respawns_total", "Workers respawned in place",
            snapshot.get("worker_respawns", 0))
    counter("repro_pool_restarts_total", "Full worker-pool restarts",
            snapshot.get("pool_restarts", 0))
    counter("repro_prefetch_bytes_read_total",
            "Panel bytes staged by the prefetcher",
            prefetch.get("bytes_read", 0))
    counter("repro_prefetch_stall_seconds_total",
            "Seconds compute spent blocked on prefetch",
            prefetch.get("stall_seconds", 0.0))
    workers = snapshot.get("workers", [])
    if workers:
        lines.append("# HELP repro_worker_busy 1 if the worker heartbeat is "
                     "fresh, 0 if idle")
        lines.append("# TYPE repro_worker_busy gauge")
        for row in workers:
            wlabel = (f'{{run_id="{run}",'
                      f'worker="{_prom_escape(row.get("worker", "?"))}"}}')
            busy = 1.0 if row.get("state") == "busy" else 0.0
            lines.append(f"repro_worker_busy{wlabel} {num(busy)}")
        lines.append("# HELP repro_worker_tiles_total Tiles delivered per "
                     "worker")
        lines.append("# TYPE repro_worker_tiles_total counter")
        for row in workers:
            wlabel = (f'{{run_id="{run}",'
                      f'worker="{_prom_escape(row.get("worker", "?"))}"}}')
            lines.append(
                f"repro_worker_tiles_total{wlabel} "
                f"{num(row.get('n_tiles', 0))}"
            )
    anomalies = snapshot.get("anomalies", [])
    lines.append("# HELP repro_anomaly 1 per live anomaly flag currently "
                 "raised")
    lines.append("# TYPE repro_anomaly gauge")
    if anomalies:
        for anomaly in anomalies:
            alabel = (f'{{run_id="{run}",'
                      f'kind="{_prom_escape(anomaly.get("kind", "?"))}"}}')
            lines.append(f"repro_anomaly{alabel} 1")
    else:
        lines.append(f'repro_anomaly{{run_id="{run}",kind="none"}} 0')
    return "\n".join(lines) + "\n"


def serve_prometheus(
    snapshot_path: str | Path, port: int, *, host: str = "127.0.0.1"
):
    """An HTTP server exposing the snapshot at ``/metrics`` (stdlib only).

    Returns the configured :class:`http.server.ThreadingHTTPServer`
    without starting it — the caller owns ``serve_forever()`` (the CLI
    blocks on it; tests drive it from a thread and ``shutdown()`` it).
    The snapshot file is re-read per scrape, so a long-lived exporter
    follows the run without restarting.
    """
    from http.server import BaseHTTPRequestHandler, ThreadingHTTPServer

    target = Path(snapshot_path)

    class _Handler(BaseHTTPRequestHandler):
        def do_GET(self) -> None:  # noqa: N802 - http.server API
            if self.path.split("?", 1)[0] not in ("/metrics", "/"):
                self.send_error(404)
                return
            try:
                snapshot = read_snapshot(target)
            except (OSError, ValueError, json.JSONDecodeError):
                snapshot = None
            if snapshot is None:
                self.send_error(503, "no live snapshot")
                return
            body = prometheus_text(snapshot).encode("utf-8")
            self.send_response(200)
            self.send_header(
                "Content-Type", "text/plain; version=0.0.4; charset=utf-8"
            )
            self.send_header("Content-Length", str(len(body)))
            self.end_headers()
            self.wfile.write(body)

        def log_message(self, *args: object) -> None:  # quiet by default
            pass

    return ThreadingHTTPServer((host, port), _Handler)
