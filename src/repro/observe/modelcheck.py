"""Measured-vs-modeled performance: the paper's %-of-peak as an artifact.

Figures 3–4 plot *achieved fraction of a redefined theoretical peak* —
the paper's whole argument is that the blocked popcount GEMM lands close
to what the hardware admits. DESIGN.md substitutes an analytical Haswell
model (:mod:`repro.machine`) for the paper's testbed; this module closes
the loop by converting a *measured* GEMM (or tiled-engine) wall-clock
into effective ops/cycle on that model and placing it next to the
model's own prediction for the same shape and blocking:

>>> from repro.observe import compare_to_model
>>> cmp = compare_to_model(220, 220, 2, measured_seconds=0.05, symmetric=True)
>>> 0 < cmp.measured_percent_of_peak
True

``measured_percent_of_peak`` answers "how fast was this run in the
model's currency"; ``modeled_percent_of_peak`` answers "how fast does
the model say this shape *can* go"; their ratio says how honest the
model is about this machine — the first-class measured-vs-modeled
report the benchmarks serialize into ``BENCH_engine.json``.
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.core.blocking import BlockingParams, MICRO_BLOCKING
from repro.core.gemm import gemm_operation_counts
from repro.machine.cpu import HASWELL, MachineSpec
from repro.machine.isa import SCALAR64, SimdConfig
from repro.machine.perfmodel import (
    estimate_gemm_performance,
    estimate_gemm_phases,
    measured_ops_per_cycle,
)

__all__ = [
    "PeakComparison",
    "PhaseComparison",
    "compare_phases_to_model",
    "compare_to_model",
]


@dataclass(frozen=True)
class PeakComparison:
    """One measured execution placed against the analytical model.

    Attributes
    ----------
    m, n, k_words:
        GEMM shape (SNPs × SNPs over packed 64-bit words per SNP).
    symmetric:
        Whether the lower-triangle Gram traversal was modeled.
    total_ops:
        Logical AND+POPCNT+ADD operations of the blocked execution
        (padding included — the unit of Figures 3–4).
    measured_seconds:
        Observed wall-clock of the run being scored.
    measured_ops_per_cycle, modeled_ops_per_cycle, peak_ops_per_cycle:
        Throughputs in the model's currency.
    modeled_seconds:
        The model's predicted wall-clock at the machine's frequency.
    """

    m: int
    n: int
    k_words: int
    symmetric: bool
    total_ops: int
    measured_seconds: float
    measured_ops_per_cycle: float
    modeled_ops_per_cycle: float
    peak_ops_per_cycle: float
    modeled_seconds: float

    @property
    def measured_percent_of_peak(self) -> float:
        """Measured throughput vs the Section IV-B theoretical peak."""
        return 100.0 * self.measured_ops_per_cycle / self.peak_ops_per_cycle

    @property
    def modeled_percent_of_peak(self) -> float:
        """Model-predicted throughput vs the same peak (Fig. 3/4 y-axis)."""
        return 100.0 * self.modeled_ops_per_cycle / self.peak_ops_per_cycle

    @property
    def measured_vs_modeled(self) -> float:
        """Ratio measured/modeled throughput (1.0 = model exactly honest)."""
        return self.measured_ops_per_cycle / self.modeled_ops_per_cycle

    def as_dict(self) -> dict:
        """JSON-serializable record (the ``BENCH_engine.json`` row shape)."""
        return {
            "m": self.m,
            "n": self.n,
            "k_words": self.k_words,
            "symmetric": self.symmetric,
            "total_ops": self.total_ops,
            "measured_seconds": self.measured_seconds,
            "modeled_seconds": self.modeled_seconds,
            "measured_ops_per_cycle": self.measured_ops_per_cycle,
            "modeled_ops_per_cycle": self.modeled_ops_per_cycle,
            "peak_ops_per_cycle": self.peak_ops_per_cycle,
            "measured_percent_of_peak": self.measured_percent_of_peak,
            "modeled_percent_of_peak": self.modeled_percent_of_peak,
            "measured_vs_modeled": self.measured_vs_modeled,
        }


@dataclass(frozen=True)
class PhaseComparison:
    """One execution phase: measured seconds against the model's share.

    The per-phase counterpart of :class:`PeakComparison` — instead of
    one aggregate %-of-peak, each phase of the blocked execution
    (pack-A, pack-B, plane matmul, copy-out, mirror, overhead) is
    scored on where its time *should* go (the roofline ``kind``:
    compute-bound, memory-bound, or overhead) and how the measured
    share of wall-clock compares to the modelled share.

    Attributes
    ----------
    name:
        Phase name (matches the span vocabulary of the hot paths).
    kind:
        Roofline classification from the model: ``"compute"``,
        ``"memory"``, or ``"overhead"``. Measured phases the model has
        no estimate for (``stat``, ``driver.*``, ...) are classified
        ``"overhead"`` with ``modeled_seconds = 0``.
    measured_seconds:
        Summed self-time of the phase's spans across all workers
        (CPU-seconds, the same currency as single-core model cycles);
        ``None`` when the phase was modelled but never measured.
    modeled_seconds:
        The model's prediction for the phase at the machine frequency.
    measured_share, modeled_share:
        Each side normalized by its own total, so the two distributions
        are comparable even when absolute throughput differs from the
        model.
    """

    name: str
    kind: str
    measured_seconds: float | None
    modeled_seconds: float
    measured_share: float | None
    modeled_share: float

    @property
    def measured_vs_modeled(self) -> float | None:
        """Ratio of measured to modelled seconds (None when unmeasurable)."""
        if self.measured_seconds is None or self.modeled_seconds <= 0:
            return None
        return self.measured_seconds / self.modeled_seconds

    def as_dict(self) -> dict:
        """JSON-serializable record (the ``repro-profile/1`` roofline row)."""
        return {
            "name": self.name,
            "kind": self.kind,
            "measured_seconds": self.measured_seconds,
            "modeled_seconds": self.modeled_seconds,
            "measured_share": self.measured_share,
            "modeled_share": self.modeled_share,
            "measured_vs_modeled": self.measured_vs_modeled,
        }


def compare_phases_to_model(
    measured: dict[str, float],
    m: int,
    n: int,
    k_words: int,
    *,
    params: BlockingParams = MICRO_BLOCKING,
    machine: MachineSpec = HASWELL,
    simd: SimdConfig = SCALAR64,
    symmetric: bool = False,
) -> list[PhaseComparison]:
    """Join measured per-phase seconds against the model's phase schedule.

    Parameters
    ----------
    measured:
        Phase name → summed self-seconds (e.g. a profiler's totals, or
        the engine's ``phase.*`` timers summed across tiles). Names the
        model knows (``pack_a``, ``pack_b``, ``plane_matmul``,
        ``copy_out``, ``mirror``, ``overhead``) are scored against their
        estimates; unknown names are carried through as unmodelled
        overhead so the report never silently drops measured time.
    m, n, k_words, params, machine, simd, symmetric:
        The executed problem, as for :func:`compare_to_model`.

    Returns the union of modelled and measured phases, modelled order
    first, sorted within the unmodelled remainder by descending
    measured time.
    """
    for name, seconds in measured.items():
        if seconds < 0:
            raise ValueError(
                f"measured seconds must be non-negative, got "
                f"{name}={seconds}"
            )
    estimates = estimate_gemm_phases(
        m, n, k_words, params=params, machine=machine, simd=simd,
        symmetric=symmetric,
    )
    modeled_total = sum(e.seconds for e in estimates)
    measured_total = sum(measured.values())
    out: list[PhaseComparison] = []
    for est in estimates:
        secs = measured.get(est.name)
        out.append(PhaseComparison(
            name=est.name,
            kind=est.kind,
            measured_seconds=secs,
            modeled_seconds=est.seconds,
            measured_share=(
                secs / measured_total
                if secs is not None and measured_total > 0 else None
            ),
            modeled_share=(
                est.seconds / modeled_total if modeled_total > 0 else 0.0
            ),
        ))
    known = {est.name for est in estimates}
    extras = sorted(
        ((name, secs) for name, secs in measured.items() if name not in known),
        key=lambda item: -item[1],
    )
    for name, secs in extras:
        out.append(PhaseComparison(
            name=name,
            kind="overhead",
            measured_seconds=secs,
            modeled_seconds=0.0,
            measured_share=(
                secs / measured_total if measured_total > 0 else None
            ),
            modeled_share=0.0,
        ))
    return out


def compare_to_model(
    m: int,
    n: int,
    k_words: int,
    measured_seconds: float,
    *,
    params: BlockingParams = MICRO_BLOCKING,
    machine: MachineSpec = HASWELL,
    simd: SimdConfig = SCALAR64,
    symmetric: bool = False,
) -> PeakComparison:
    """Score a measured GEMM-shaped execution against the machine model.

    Parameters
    ----------
    m, n, k_words:
        Shape of the executed problem. For a full lower-triangle LD run
        over ``N`` SNPs, pass ``m = n = N`` with ``symmetric=True``.
    measured_seconds:
        Observed wall-clock for that problem.
    params, machine, simd:
        Blocking and hardware description to model against — use the
        same blocking the run executed so the operation counts (and the
        fringe padding they charge) match what actually ran.
    """
    if measured_seconds <= 0:
        raise ValueError(
            f"measured_seconds must be positive, got {measured_seconds}"
        )
    counts = gemm_operation_counts(m, n, k_words, params, symmetric=symmetric)
    estimate = estimate_gemm_performance(
        m, n, k_words, params=params, machine=machine, simd=simd,
        symmetric=symmetric,
    )
    achieved = measured_ops_per_cycle(
        counts.total_ops, measured_seconds, machine=machine
    )
    return PeakComparison(
        m=m,
        n=n,
        k_words=k_words,
        symmetric=symmetric,
        total_ops=counts.total_ops,
        measured_seconds=measured_seconds,
        measured_ops_per_cycle=achieved,
        modeled_ops_per_cycle=estimate.ops_per_cycle,
        peak_ops_per_cycle=estimate.peak_ops_per_cycle,
        modeled_seconds=estimate.seconds,
    )
