"""Empirical blocking autotuner with a persistent per-machine profile.

The analytical rules in :func:`repro.core.blocking.select_blocking` (and the
measured defaults) encode one machine's cache hierarchy; the paper's "no
tuning needed" claim holds for its C kernel, but the numpy/BLAS realization
shifts the optimum with BLAS build, core count, and cache sizes. This module
closes the loop empirically:

- :func:`candidate_blockings` builds a small kc/mc/nc (and, for the micro
  kernels, mr/nr) candidate grid seeded by ``select_blocking``;
- :func:`autotune` times each candidate on a representative popcount-GEMM
  shape (best-of-``repeats``, deterministic operands) and returns a
  :class:`TuningResult`;
- :func:`save_profile` / :func:`load_tuned_blocking` persist the winner to a
  JSON profile keyed by a machine fingerprint, so later runs (``ld
  --autotune``) reload it transparently.

Profile location: ``$REPRO_TUNING_PROFILE`` if set, else
``~/.cache/repro/tuning.json`` (see :func:`profile_path`). Schema::

    {"schema": "repro-tuning/1",
     "profiles": {"<fingerprint>": {"<kernel>": {
         "params": {"mc":..., "nc":..., "kc":..., "mr":..., "nr":...},
         "words_per_second": ..., "shape": [m, n, k], "tuned_at": ...}}}}
"""

from __future__ import annotations

import json
import os
import platform
from dataclasses import dataclass
from pathlib import Path

import numpy as np

from repro.core.blocking import (
    DEFAULT_BLOCKING,
    FUSED_BLOCKING,
    BlockingParams,
    select_blocking,
)
from repro.core.gemm import DEFAULT_KERNEL, FUSED_KERNELS, GEMM_KERNELS

__all__ = [
    "CandidateTiming",
    "TuningResult",
    "autotune",
    "candidate_blockings",
    "load_tuned_blocking",
    "machine_fingerprint",
    "profile_path",
    "save_profile",
    "tuned_blocking",
]

PROFILE_SCHEMA = "repro-tuning/1"
PROFILE_ENV = "REPRO_TUNING_PROFILE"

#: Default timing shape: large enough that per-call overhead is amortized,
#: small enough that a full grid search stays in single-digit seconds.
DEFAULT_TUNE_SHAPE = (1024, 1024, 32)


def machine_fingerprint() -> str:
    """A stable identifier for "this machine, this numpy" profiles.

    Combines CPU architecture, OS, logical core count, and the numpy version
    (the BLAS build travels with it) — the factors that move the blocking
    optimum. Deliberately excludes hostname so identical containers share
    profiles.
    """
    parts = (
        platform.machine() or "unknown",
        platform.system() or "unknown",
        str(os.cpu_count() or 0),
        f"numpy-{np.__version__}",
    )
    return "-".join(parts).lower()


def profile_path() -> Path:
    """Where the tuning profile lives (env override, else user cache)."""
    override = os.environ.get(PROFILE_ENV)
    if override:
        return Path(override)
    return Path.home() / ".cache" / "repro" / "tuning.json"


@dataclass(frozen=True)
class CandidateTiming:
    """One timed candidate: parameters and best-of-repeats throughput."""

    params: BlockingParams
    seconds: float
    words_per_second: float


@dataclass(frozen=True)
class TuningResult:
    """Outcome of one :func:`autotune` search."""

    kernel: str
    params: BlockingParams
    words_per_second: float
    shape: tuple[int, int, int]
    fingerprint: str
    candidates: tuple[CandidateTiming, ...]


def candidate_blockings(
    kernel: str = DEFAULT_KERNEL,
    *,
    seed: BlockingParams | None = None,
) -> list[BlockingParams]:
    """The candidate grid for *kernel*, seeded by the analytical model.

    Fused macro-kernels sweep the cache-block shape (mc, nc, kc) — they have
    no register tile of their own; the micro kernels sweep kc and the
    "virtual register" tile mr = nr. The analytical ``select_blocking``
    answer and the shipped default are always included, so tuning can never
    pick something worse than the defaults on the tuning shape.
    """
    if kernel not in GEMM_KERNELS:
        raise ValueError(
            f"unknown kernel {kernel!r}; expected one of {', '.join(GEMM_KERNELS)}"
        )
    candidates: list[BlockingParams] = []

    def add(params: BlockingParams) -> None:
        if params not in candidates:
            candidates.append(params)

    if kernel in FUSED_KERNELS:
        add(FUSED_BLOCKING)
        analytical = seed if seed is not None else select_blocking()
        add(analytical)
        mr, nr = FUSED_BLOCKING.mr, FUSED_BLOCKING.nr
        for mc in (512, 1024, 2048):
            for nc in (2048, 4096):
                for kc in (32, 64, 128):
                    add(BlockingParams(mc=mc, nc=nc, kc=kc, mr=mr, nr=nr))
    else:
        add(DEFAULT_BLOCKING)
        analytical = seed if seed is not None else select_blocking(mr=64, nr=64)
        add(analytical)
        for tile in (64, 128, 256):
            for kc in (256, 512):
                add(
                    BlockingParams(
                        mc=max(tile, 256 // tile * tile),
                        nc=2048 // tile * tile or tile,
                        kc=kc,
                        mr=tile,
                        nr=tile,
                    )
                )
    return candidates


def autotune(
    kernel: str = DEFAULT_KERNEL,
    *,
    shape: tuple[int, int, int] = DEFAULT_TUNE_SHAPE,
    repeats: int = 2,
    candidates: list[BlockingParams] | None = None,
    budget_seconds: float | None = None,
) -> TuningResult:
    """Time the candidate grid on *shape* and return the fastest blocking.

    Operands are deterministic (seeded RNG) so repeated tunes on the same
    machine see the same work. ``budget_seconds`` caps the search: once
    exceeded, remaining candidates are skipped (the already-timed prefix
    always includes the shipped default, which is first in the grid).
    """
    import time

    from repro.core.gemm import popcount_gemm
    from repro.core.macrokernel import GemmWorkspace

    m, n, k = shape
    if min(m, n, k) <= 0:
        raise ValueError(f"tuning shape must be positive, got {shape}")
    grid = candidates if candidates is not None else candidate_blockings(kernel)
    if not grid:
        raise ValueError("empty candidate grid")
    rng = np.random.default_rng(20160516)  # IPPS'16 — deterministic operands
    a = rng.integers(0, 2**63, size=(m, k), dtype=np.int64).astype(np.uint64)
    b = rng.integers(0, 2**63, size=(n, k), dtype=np.int64).astype(np.uint64)
    words = 3 * m * n * k
    workspace = GemmWorkspace()
    timings: list[CandidateTiming] = []
    search_start = time.perf_counter()
    for params in grid:
        if (
            budget_seconds is not None
            and timings
            and time.perf_counter() - search_start > budget_seconds
        ):
            break
        best = float("inf")
        for _ in range(max(1, repeats)):
            start = time.perf_counter()
            popcount_gemm(a, b, params=params, kernel=kernel, workspace=workspace)
            best = min(best, time.perf_counter() - start)
        timings.append(
            CandidateTiming(
                params=params, seconds=best, words_per_second=words / best
            )
        )
    winner = min(timings, key=lambda t: t.seconds)
    return TuningResult(
        kernel=kernel,
        params=winner.params,
        words_per_second=winner.words_per_second,
        shape=(m, n, k),
        fingerprint=machine_fingerprint(),
        candidates=tuple(timings),
    )


def _params_to_json(params: BlockingParams) -> dict:
    return {
        "mc": params.mc,
        "nc": params.nc,
        "kc": params.kc,
        "mr": params.mr,
        "nr": params.nr,
    }


def _params_from_json(payload: dict) -> BlockingParams:
    return BlockingParams(
        mc=int(payload["mc"]),
        nc=int(payload["nc"]),
        kc=int(payload["kc"]),
        mr=int(payload["mr"]),
        nr=int(payload["nr"]),
    )


def _load_profile_file(path: Path) -> dict:
    try:
        payload = json.loads(path.read_text())
    except (OSError, json.JSONDecodeError):
        return {"schema": PROFILE_SCHEMA, "profiles": {}}
    if (
        not isinstance(payload, dict)
        or payload.get("schema") != PROFILE_SCHEMA
        or not isinstance(payload.get("profiles"), dict)
    ):
        return {"schema": PROFILE_SCHEMA, "profiles": {}}
    return payload


def save_profile(result: TuningResult, *, path: Path | None = None) -> Path:
    """Merge *result* into the JSON profile (atomic replace) and return it."""
    import datetime

    target = path if path is not None else profile_path()
    target.parent.mkdir(parents=True, exist_ok=True)
    payload = _load_profile_file(target)
    entry = payload["profiles"].setdefault(result.fingerprint, {})
    entry[result.kernel] = {
        "params": _params_to_json(result.params),
        "words_per_second": result.words_per_second,
        "shape": list(result.shape),
        "tuned_at": datetime.datetime.now(datetime.timezone.utc).isoformat(),
    }
    tmp = target.with_suffix(target.suffix + ".tmp")
    tmp.write_text(json.dumps(payload, indent=2, sort_keys=True) + "\n")
    os.replace(tmp, target)
    return target


def load_tuned_blocking(
    kernel: str = DEFAULT_KERNEL,
    *,
    path: Path | None = None,
    fingerprint: str | None = None,
) -> BlockingParams | None:
    """The persisted tuned blocking for this machine, or ``None``.

    Malformed profiles, foreign fingerprints, and invalid parameter records
    all return ``None`` — a stale profile can never break a run, only fail
    to accelerate it.
    """
    target = path if path is not None else profile_path()
    payload = _load_profile_file(target)
    fp = fingerprint if fingerprint is not None else machine_fingerprint()
    record = payload["profiles"].get(fp, {}).get(kernel)
    if not isinstance(record, dict) or "params" not in record:
        return None
    try:
        return _params_from_json(record["params"])
    except (KeyError, TypeError, ValueError):
        return None


def tuned_blocking(
    kernel: str = DEFAULT_KERNEL,
    *,
    path: Path | None = None,
    shape: tuple[int, int, int] = DEFAULT_TUNE_SHAPE,
    repeats: int = 2,
    budget_seconds: float | None = None,
) -> BlockingParams:
    """Load the tuned blocking, tuning (and persisting) first if absent.

    This is the ``ld --autotune`` entry point: the first run pays the
    timed search, every later run reloads the identical parameters.
    """
    params = load_tuned_blocking(kernel, path=path)
    if params is not None:
        return params
    result = autotune(
        kernel, shape=shape, repeats=repeats, budget_seconds=budget_seconds
    )
    save_profile(result, path=path)
    return result.params
