"""Pluggable executor backends for the tiled LD engine.

:func:`repro.core.engine.run_engine` schedules tiles; *how* a batch of
tiles turns into computed blocks is this module's job. Every execution
strategy implements the same small :class:`ExecutorBackend` protocol —
``start`` / ``submit_batch`` / ``drain`` / ``shutdown`` — and the one
generic :func:`drive` loop supplies retry, backoff, quarantine, CRC
verification, and the hung-worker watchdog on top. Adding an executor
means writing a backend, not re-deriving the fault discipline.

Four backends ship:

- :class:`SerialBackend` — in-process loop; compute happens inside
  ``submit_batch`` so delivery stays interleaved with computation (a
  crash mid-run journals exactly the tiles delivered so far).
- :class:`ThreadsBackend` — a per-run ``ThreadPoolExecutor`` of
  GIL-released numpy workers.
- :class:`ProcessesBackend` — a per-run ``ProcessPoolExecutor`` whose
  workers attach the packed panel via ``multiprocessing.shared_memory``
  and stage result blocks through a CRC-verified :class:`_ResultArena`.
- :class:`PersistentBackend` — the warm pool. Workers are spawned
  *once*, attach the shared panel and arena a single time, then pull
  batches from per-worker ``multiprocessing`` pipes (raw connections —
  no queue feeder threads, so warm dispatch latency is a single pipe
  round trip) and survive across ``run_engine`` calls. Pools live in a module-level registry keyed by
  a panel fingerprint, are reaped after an idle timeout, capped by
  ``REPRO_POOL_MAX``, and can be listed/stopped cross-process via
  ``repro pool`` (worker pids and segment names are journaled to a
  state file). A worker that dies (``SIGKILL``, fault injection, an
  external ``repro pool stop``) is respawned alone — its batch is
  charged a retry — instead of rebuilding the whole pool, so the warm
  panel mapping is never paid for twice.

The division of labour with the engine: ``engine.py`` owns tile
enumeration, the manifest, fingerprints, metrics, and the public
``run_engine`` API; this module owns worker processes, pools, shared
memory, and the dispatch loop. ``engine`` imports this module lazily
inside ``run_engine`` so the import graph stays acyclic.
"""

from __future__ import annotations

import atexit
import errno
import hashlib
import itertools
import json
import os
import select
import tempfile
import threading
import time
from collections import OrderedDict, deque
from collections.abc import Callable
from concurrent.futures import (
    FIRST_COMPLETED,
    Executor,
    ProcessPoolExecutor,
    ThreadPoolExecutor,
    wait,
)
from concurrent.futures.process import BrokenProcessPool
from dataclasses import dataclass
from multiprocessing import get_all_start_methods, get_context, shared_memory
from multiprocessing import connection as mp_connection
from pathlib import Path
from typing import TYPE_CHECKING, Protocol, runtime_checkable

import numpy as np

from repro.core.blocking import BlockingParams
from repro.core.engine import (
    TileCorruptionError,
    TileResult,
    TileTask,
    TileTimeoutError,
    _crc32_array,
    compute_tile,
)
from repro.faults import FaultPlan
from repro.observe.spans import (
    SpanProfiler,
    current_profiler,
    install_profiler,
    span,
)

if TYPE_CHECKING:
    from repro.observe.live import LivePublisher
    from repro.observe.metrics import MetricsRecorder

__all__ = [
    "BatchDone",
    "BatchHandle",
    "ExecutorBackend",
    "ExecutorBroken",
    "PersistentBackend",
    "PersistentPool",
    "ProcessesBackend",
    "RetryContext",
    "SerialBackend",
    "ThreadsBackend",
    "WorkerCrashError",
    "drive",
    "panel_fingerprint",
    "panel_store_key",
    "pool_status",
    "reap_idle_pools",
    "stop_pools",
]


# ---------------------------------------------------------------------------
# Errors.
# ---------------------------------------------------------------------------


class ExecutorBroken(Exception):
    """The executor's worker pool cannot be kept alive; degrade or die."""

    def __init__(self, cause: BaseException) -> None:
        super().__init__(str(cause))
        self.cause = cause


class WorkerCrashError(RuntimeError):
    """A persistent worker died mid-batch; its tiles are charged a retry."""


class _WorkersLost(Exception):
    """A pool-level loss: the driver must re-chunk pending work.

    Raised by backends whose failure mode takes the *whole* pool down
    (``BrokenProcessPool``, the hung-pool watchdog). ``charged`` lists
    in-flight handles whose tiles must be charged a timeout; the epoch
    base advances so seeded kill faults do not re-fire on the retry.
    """

    def __init__(
        self, cause: BaseException, charged: tuple["BatchHandle", ...] = ()
    ) -> None:
        super().__init__(str(cause))
        self.cause = cause
        self.charged = charged


# ---------------------------------------------------------------------------
# Batch transport: per-tile outcomes and the shared-memory result arena.
# ---------------------------------------------------------------------------


@dataclass(frozen=True)
class _TileOutcome:
    """One tile's result within a batched dispatch unit.

    Exactly one of ``result``/``error`` is set. Batched dispatch reports
    per-tile failures in-band (the original exception instance, pickled
    across the pool boundary exactly as ``future.exception()`` used to
    be) rather than failing the whole unit, so batch-mates still land.
    When the block traveled through the shared-memory arena,
    ``result.block`` is ``None`` and ``arena_offset``/``shape`` locate
    the payload inside the batch's slot.
    """

    index: int
    result: TileResult | None
    error: BaseException | None
    arena_offset: int | None = None
    shape: tuple[int, int] | None = None


@dataclass(frozen=True)
class _BatchOutcome:
    """Return value of one batched dispatch unit."""

    items: tuple[_TileOutcome, ...]


def _with_block(result: TileResult, block: np.ndarray | None) -> TileResult:
    """*result* with its payload swapped for *block*.

    Equivalent to ``dataclasses.replace(result, block=block)`` but
    without the per-call field introspection — this runs once per tile
    on both sides of the arena handoff, where ``replace`` is a
    measurable slice of a warm run.
    """
    return TileResult(
        block=block,
        compute_seconds=result.compute_seconds,
        worker=result.worker,
        checksum=result.checksum,
        phase_seconds=result.phase_seconds,
    )


def _close_and_unlink(shm: shared_memory.SharedMemory) -> None:
    """Release a segment without letting either step mask the other.

    ``unlink`` runs even when ``close`` raises (a retained buffer export
    can make ``close`` fail on some platforms); a segment that cannot be
    closed must still disappear from ``/dev/shm``.
    """
    try:
        shm.close()
    finally:
        try:
            shm.unlink()
        except FileNotFoundError:
            pass


class _ResultArena:
    """Driver-owned shared-memory staging for pool-worker result blocks.

    One slot per in-flight batch: workers write each tile's statistic
    block into their batch's slot (float64, tiles packed back to back)
    and send back only offsets + CRC32s, so result payloads never travel
    through pickle. Slots are recycled as batches complete; the driver
    reads a slot *before* releasing it, and verification (the same CRC32
    handshake as before) happens on the driver's view of the bytes.
    """

    def __init__(self, n_slots: int, slot_elems: int) -> None:
        self.n_slots = max(1, int(n_slots))
        self.slot_elems = max(1, int(slot_elems))
        nbytes = self.n_slots * self.slot_elems * 8
        self._shm = shared_memory.SharedMemory(create=True, size=max(1, nbytes))
        try:
            self._flat = np.ndarray(
                (self.n_slots * self.slot_elems,), dtype=np.float64,
                buffer=self._shm.buf,
            )
        except BaseException:
            # Partial construction must not leak the just-created segment.
            _close_and_unlink(self._shm)
            raise
        self._free: list[int] = list(range(self.n_slots))

    @property
    def name(self) -> str:
        """Shared-memory segment name (workers attach by it)."""
        return self._shm.name

    @property
    def nbytes(self) -> int:
        """Total arena footprint in bytes."""
        return self.n_slots * self.slot_elems * 8

    def acquire(self) -> int | None:
        """A free slot index, or ``None`` when all are in flight."""
        return self._free.pop() if self._free else None

    def release(self, slot: int) -> None:
        """Return *slot* to the free pool."""
        self._free.append(slot)

    def reset(self) -> None:
        """Free every slot (after a pool teardown orphans in-flight work)."""
        self._free = list(range(self.n_slots))

    def read(self, slot: int, offset: int, shape: tuple[int, int]) -> np.ndarray:
        """The driver's view of one tile block inside *slot* (no copy)."""
        base = slot * self.slot_elems + offset
        count = int(shape[0]) * int(shape[1])
        return self._flat[base : base + count].reshape(shape)

    def close(self) -> None:
        """Release and unlink the segment (never skips the unlink)."""
        self._flat = None
        _close_and_unlink(self._shm)


# ---------------------------------------------------------------------------
# Worker-side entry points (run inside pool processes).
# ---------------------------------------------------------------------------

#: Per-process state installed by the pool initializer (worker side).
_WORKER_STATE: dict = {}


def _attach_panel(
    shm_name: str | None,
    words_shape: tuple[int, int],
    panel_path: str | None,
):
    """Worker-side panel attach: shared memory by name, or store by path.

    Returns ``(shm, words)`` — ``shm`` is ``None`` for the by-path case,
    where the words are a read-only memmap of the packed-panel store
    (each worker maps the same file; the page cache is the shared
    copy, so out-of-core panels never materialize in a segment).
    """
    if panel_path is not None:
        from repro.io.panelstore import PanelStore

        store = PanelStore.open(panel_path)
        if tuple(store.words.shape) != tuple(words_shape):
            raise ValueError(
                f"panel store {panel_path} has shape {store.words.shape}, "
                f"driver expected {tuple(words_shape)}"
            )
        return None, store.words
    shm = shared_memory.SharedMemory(name=shm_name)
    return shm, np.ndarray(words_shape, dtype=np.uint64, buffer=shm.buf)


def _init_worker(
    shm_name: str | None,
    words_shape: tuple[int, int],
    freqs: np.ndarray,
    n_samples: int,
    stat: str,
    params: BlockingParams | None,
    kernel: str,
    undefined: float,
    faults: FaultPlan | None,
    arena_name: str | None = None,
    arena_n_slots: int = 0,
    arena_slot_elems: int = 0,
    profile: bool = False,
    panel_path: str | None = None,
) -> None:
    """Attach the shared words (and result arena) once per worker process."""
    _set_worker_profile(profile)
    shm, words = _attach_panel(shm_name, words_shape, panel_path)
    arena_shm = None
    arena = None
    if arena_name is not None:
        arena_shm = shared_memory.SharedMemory(name=arena_name)
        arena = np.ndarray(
            (arena_n_slots * arena_slot_elems,), dtype=np.float64,
            buffer=arena_shm.buf,
        )
    _WORKER_STATE.update(
        shm=shm,
        words=words,
        freqs=freqs,
        n_samples=n_samples,
        stat=stat,
        params=params,
        kernel=kernel,
        undefined=undefined,
        faults=faults,
        arena_shm=arena_shm,
        arena=arena,
        arena_slot_elems=arena_slot_elems,
    )


def _set_worker_profile(profile: bool) -> None:
    """Install (or remove) the worker's private span profiler.

    Each profiled worker records into its own profiler; per-tile phase
    breakdowns travel back in ``TileResult.phase_seconds``. Persistent
    workers flip this per batch, since a warm pool can serve profiled
    and unprofiled runs back to back.
    """
    enabled = current_profiler().enabled
    if profile and not enabled:
        install_profiler(SpanProfiler())
    elif not profile and enabled:
        install_profiler(None)


def _run_tile_in_worker(
    tile: TileTask, epoch: int, arena_out: np.ndarray | None = None
) -> TileResult:
    """Pool task: compute one tile against the attached shared words.

    *epoch* is the driver's attempt counter for this tile (per-tile
    failures plus pool restarts) — the deterministic clock fault
    injection keys on, and the reason a seeded schedule fires
    identically regardless of which worker draws the tile.

    With *arena_out* set, the block is staged into that shared-memory
    view; the CRC32 (and any injected corruption) applies to the arena
    bytes the driver will verify, exactly as it did to pickled payloads.
    """
    state = _WORKER_STATE
    plan: FaultPlan | None = state.get("faults")
    if plan is not None:
        plan.fire("tile_compute", tile.key, epoch, can_kill=True)
    prof = current_profiler()
    mark = prof.mark()
    start = time.perf_counter()
    with prof.span("tile"):  # root: phase self-times sum to its wall-clock
        block = compute_tile(
            state["words"],
            state["freqs"],
            state["n_samples"],
            tile,
            stat=state["stat"],
            params=state["params"],
            kernel=state["kernel"],
            undefined=state["undefined"],
        )
        if arena_out is not None:
            with prof.span("arena_copy_out"):
                arena_out[...] = block
            block = arena_out
    elapsed = time.perf_counter() - start
    phases = prof.collect(mark) or None
    if plan is not None:
        plan.fire("tile_deliver", tile.key, epoch)
    checksum = _crc32_array(block)
    if plan is not None:
        # Post-checksum, so the flip models corruption on the handoff
        # and the driver-side verification is what must catch it.
        plan.corrupt("tile_deliver", tile.key, epoch, block)
    return TileResult(
        block=block,
        compute_seconds=elapsed,
        worker=f"pid-{os.getpid()}",
        checksum=checksum,
        phase_seconds=phases,
    )


def _run_batch_in_worker(
    unit: tuple[TileTask, ...], epochs: tuple[int, ...], slot: int | None
) -> _BatchOutcome:
    """Pool task: compute a batch of tiles, reporting per-tile outcomes.

    A tile that raises is reported in-band (its batch-mates are
    unaffected) so the driver can charge the attempt to that tile alone
    and resubmit it as a singleton. Kill faults still take down the whole
    future — that is the worker-crash path, handled at pool level.
    """
    state = _WORKER_STATE
    arena: np.ndarray | None = state.get("arena")
    slot_elems = state.get("arena_slot_elems", 0)
    items: list[_TileOutcome] = []
    offset = 0
    for index, (tile, epoch) in enumerate(zip(unit, epochs)):
        rows = tile.i1 - tile.i0
        cols = tile.j1 - tile.j0
        out = None
        if arena is not None and slot is not None:
            base = slot * slot_elems + offset
            out = arena[base : base + rows * cols].reshape(rows, cols)
        try:
            result = _run_tile_in_worker(tile, epoch, arena_out=out)
        except Exception as error:  # noqa: BLE001 - reported in-band
            items.append(_TileOutcome(index=index, result=None, error=error))
        else:
            if out is not None:
                items.append(
                    _TileOutcome(
                        index=index,
                        result=_with_block(result, None),
                        error=None,
                        arena_offset=offset,
                        shape=(rows, cols),
                    )
                )
            else:
                items.append(
                    _TileOutcome(index=index, result=result, error=None)
                )
        offset += rows * cols
    return _BatchOutcome(items=tuple(items))


def _persistent_worker_main(
    worker_index: int,
    shm_name: str | None,
    words_shape: tuple[int, int],
    freqs: np.ndarray,
    n_samples: int,
    arena_name: str,
    arena_n_slots: int,
    arena_slot_elems: int,
    task_conn,
    result_conn,
    panel_path: str | None = None,
) -> None:
    """Main loop of one warm worker: attach once, then serve batches forever.

    The panel and arena segments are mapped exactly once, at startup —
    the whole point of the persistent pool. Messages arrive on a raw
    pipe connection (no queue feeder thread, so a warm batch costs one
    pipe round trip). A batch message carries the run's configuration
    (stat, kernel, fault plan, profiling) piggybacked on the *first*
    batch each run sends this worker — installed before computing, so
    one warm pool serves successive ``run_engine`` calls with different
    parameters against the same panel without any extra message. Idle
    time between messages is measured and shipped back for the
    ``worker.idle`` phase. A ``None`` message (or a closed pipe) shuts
    the worker down cleanly.
    """
    shm, words = _attach_panel(shm_name, words_shape, panel_path)
    arena_shm = shared_memory.SharedMemory(name=arena_name)
    arena = np.ndarray(
        (arena_n_slots * arena_slot_elems,), dtype=np.float64,
        buffer=arena_shm.buf,
    )
    base_state = dict(
        shm=shm,
        words=words,
        freqs=freqs,
        n_samples=n_samples,
        arena_shm=arena_shm,
        arena=arena,
        arena_slot_elems=arena_slot_elems,
    )
    try:
        while True:
            idle_start = time.perf_counter()
            try:
                message = task_conn.recv()
            except (EOFError, OSError):
                break
            idle_seconds = time.perf_counter() - idle_start
            if message is None:
                break
            batch_id, unit, epochs, slot, config = message
            if config is not None:
                stat, params, kernel, undefined, faults, profile = config
                _set_worker_profile(profile)
                _WORKER_STATE.clear()
                _WORKER_STATE.update(
                    base_state,
                    stat=stat,
                    params=params,
                    kernel=kernel,
                    undefined=undefined,
                    faults=faults,
                )
            outcome = None
            error = None
            try:
                outcome = _run_batch_in_worker(unit, epochs, slot)
            except Exception as exc:  # noqa: BLE001 - shipped in-band
                error = exc
            try:
                result_conn.send(
                    (batch_id, worker_index, outcome, error, idle_seconds)
                )
            except (BrokenPipeError, OSError):
                break  # driver replaced this worker's pipes (respawn race)
    finally:
        if shm is not None:
            shm.close()
        arena_shm.close()


# ---------------------------------------------------------------------------
# Scheduling helpers and driver-side policy.
# ---------------------------------------------------------------------------


def _largest_first(tiles: list[TileTask]) -> list[TileTask]:
    """Schedule big tiles first (LPT rule) so fringe slivers fill the tail.

    The same load-balancing idea as :func:`repro.core.parallel.
    partition_triangle_rows`, applied to a discrete tile list: the only
    imbalance left is at most one tile per worker.
    """
    return sorted(tiles, key=lambda t: (-t.n_pairs, t.i0, t.j0))


def _chunk_batches(
    order: list[TileTask], pending: set[TileTask], batch_size: int
) -> "deque[tuple[TileTask, ...]]":
    """Chunk still-pending tiles (in schedule order) into dispatch units."""
    queue: deque[tuple[TileTask, ...]] = deque()
    chunk: list[TileTask] = []
    for tile in order:
        if tile not in pending:
            continue
        chunk.append(tile)
        if len(chunk) >= batch_size:
            queue.append(tuple(chunk))
            chunk = []
    if chunk:
        queue.append(tuple(chunk))
    return queue


@dataclass
class RetryContext:
    """Driver-side policy + callbacks shared by every backend."""

    max_retries: int
    tile_timeout: float | None
    backoff_base: float
    backoff_cap: float
    allow_quarantine: bool
    deliver: Callable[[TileTask, TileResult], None]
    quarantine: Callable[[TileTask, BaseException], None]
    recorder: "MetricsRecorder | None" = None
    live: "LivePublisher | None" = None

    def verify(self, tile: TileTask, result: TileResult) -> None:
        """Check the payload CRC taken in the worker; raise on mismatch."""
        if result.checksum is None:
            return
        actual = _crc32_array(result.block)
        if actual != result.checksum:
            raise TileCorruptionError(
                f"tile {tile.key} failed its handoff checksum "
                f"(worker {result.checksum:#010x}, driver {actual:#010x}); "
                "payload corrupted in transit"
            )

    def backoff_seconds(self, key: tuple[int, int], attempt: int) -> float:
        """Exponential backoff with deterministic jitter in [0.5, 1.5)x."""
        if self.backoff_base <= 0.0 or attempt < 1:
            return 0.0
        base = min(self.backoff_cap, self.backoff_base * 2 ** (attempt - 1))
        import zlib

        jitter = zlib.crc32(f"{key[0]},{key[1]}|{attempt}".encode()) / 2**32
        return base * (0.5 + jitter)

    def note_failure(self, tile: TileTask, error: BaseException) -> None:
        if self.live is not None:
            self.live.tile_retry()
        if self.recorder is None:
            return
        self.recorder.inc("engine.retries")
        self.recorder.event(
            "tile_retry", tile=[tile.i0, tile.j0], error=repr(error)
        )
        if isinstance(error, TileCorruptionError):
            self.recorder.inc("engine.corruptions")
            self.recorder.event("tile_corrupt", tile=[tile.i0, tile.j0])
        elif isinstance(error, TileTimeoutError):
            self.recorder.inc("engine.timeouts")
            self.recorder.event(
                "tile_timeout", tile=[tile.i0, tile.j0],
                timeout_s=self.tile_timeout,
            )

    def note_restart(self, error: BaseException) -> None:
        if self.live is not None:
            self.live.pool_restart()
        if self.recorder is not None:
            self.recorder.inc("engine.pool_restarts")
            self.recorder.event("pool_restart", error=repr(error))

    def note_spawn_failure(self, error: BaseException) -> None:
        if self.recorder is not None:
            self.recorder.inc("engine.spawn_failures")
            self.recorder.event("pool_spawn_failed", error=repr(error))

    def note_pool_spawn(self, backend: str) -> None:
        if self.recorder is not None:
            self.recorder.inc("engine.pool_spawns")
            self.recorder.event("pool_spawn", backend=backend)

    def note_worker_respawn(self, worker: int) -> None:
        if self.live is not None:
            self.live.worker_respawn(worker)
        if self.recorder is not None:
            self.recorder.inc("engine.worker_respawns")
            self.recorder.event("worker_respawn", worker=worker)


# ---------------------------------------------------------------------------
# The backend protocol and its handle types.
# ---------------------------------------------------------------------------


@dataclass(eq=False)
class BatchHandle:
    """Driver-side identity of one in-flight dispatch unit."""

    unit: tuple[TileTask, ...]
    epochs: tuple[int, ...]
    started: float
    batch_id: int = -1
    slot: int | None = None
    worker: int | None = None
    future: object | None = None


@dataclass(eq=False)
class BatchDone:
    """One completed unit as surfaced by ``drain``.

    Either ``outcome`` holds per-tile results or ``error`` holds a
    unit-level failure (worker death, a raising task) charged to every
    tile in the unit.
    """

    handle: BatchHandle
    outcome: _BatchOutcome | None
    error: BaseException | None = None


@runtime_checkable
class ExecutorBackend(Protocol):
    """What :func:`drive` needs from an execution strategy.

    ``start`` readies the pool (may raise: spawn failure, counted
    against the restart budget), ``submit_batch`` dispatches one unit or
    returns ``None`` when the backend is at capacity, ``drain`` blocks
    until at least one unit completes (or the timeout lapses) and
    returns them, ``shutdown`` releases everything the backend owns for
    this run. The remaining hooks let the generic loop stay generic:
    ``cancel_overdue`` implements the watchdog's removal semantics,
    ``materialize`` turns an in-band outcome into a :class:`TileResult`
    (reading the shared-memory arena where applicable), ``release``
    recycles per-unit resources, and ``finish_run`` runs once per
    scheduling round (pool teardown for per-run pools, in-flight
    abort for persistent ones).
    """

    name: str
    counts_batches: bool
    preemptive_timeout: bool
    orphans_on_cancel: bool

    def start(self) -> None: ...

    def submit_batch(
        self, unit: tuple[TileTask, ...], epochs: tuple[int, ...]
    ) -> BatchHandle | None: ...

    def drain(self, timeout: float | None) -> list[BatchDone]: ...

    def cancel_overdue(self, handles: list[BatchHandle]) -> None: ...

    def materialize(self, handle: BatchHandle, item: _TileOutcome) -> TileResult: ...

    def release(self, handle: BatchHandle) -> None: ...

    def finish_run(self, *, abandoned: bool) -> None: ...

    def shutdown(self) -> None: ...


# ---------------------------------------------------------------------------
# Serial backend.
# ---------------------------------------------------------------------------


class SerialBackend:
    """In-process execution behind the same interface as the pools.

    ``submit_batch`` computes inline with capacity one, so the driver
    delivers each tile before the next is computed — the property the
    crash/resume tests pin (a crash after N deliveries journals exactly
    N tiles). The serial engine cannot preempt a running tile, so
    ``tile_timeout`` is enforced post-hoc: a tile that took too long is
    reported as a timeout outcome and charged a failed attempt.
    """

    name = "serial"
    counts_batches = False
    preemptive_timeout = False
    orphans_on_cancel = False

    def __init__(
        self,
        task: Callable[[TileTask, int], TileResult],
        ctx: RetryContext,
    ) -> None:
        self._task = task
        self._ctx = ctx
        self._ready: list[BatchDone] = []

    def start(self) -> None:
        return None

    def submit_batch(
        self, unit: tuple[TileTask, ...], epochs: tuple[int, ...]
    ) -> BatchHandle | None:
        if self._ready:
            return None
        handle = BatchHandle(
            unit=unit, epochs=epochs, started=time.perf_counter()
        )
        items: list[_TileOutcome] = []
        for index, (tile, epoch) in enumerate(zip(unit, epochs)):
            start = time.perf_counter()
            try:
                result = self._task(tile, epoch)
                elapsed = time.perf_counter() - start
                budget = self._ctx.tile_timeout
                if budget is not None and elapsed > budget:
                    raise TileTimeoutError(
                        f"tile {tile.key} took {elapsed:.3f}s "
                        f"(budget {budget}s)"
                    )
            except Exception as error:  # noqa: BLE001 - in-band report
                items.append(_TileOutcome(index=index, result=None, error=error))
            else:
                items.append(_TileOutcome(index=index, result=result, error=None))
        self._ready.append(
            BatchDone(handle=handle, outcome=_BatchOutcome(tuple(items)))
        )
        return handle

    def drain(self, timeout: float | None) -> list[BatchDone]:
        ready, self._ready = self._ready, []
        return ready

    def cancel_overdue(self, handles: list[BatchHandle]) -> None:
        return None  # pragma: no cover - preemptive_timeout is False

    def materialize(self, handle: BatchHandle, item: _TileOutcome) -> TileResult:
        return item.result

    def release(self, handle: BatchHandle) -> None:
        return None

    def finish_run(self, *, abandoned: bool) -> None:
        self._ready = []

    def shutdown(self) -> None:
        self._ready = []


# ---------------------------------------------------------------------------
# Per-run thread pool.
# ---------------------------------------------------------------------------


class ThreadsBackend:
    """A per-run ``ThreadPoolExecutor`` of GIL-released numpy workers.

    Threads cannot be killed, so the watchdog *orphans* an overdue
    future — it is removed from tracking, its eventual result discarded,
    and the pool is shut down without waiting at the end of the round.
    """

    name = "threads"
    counts_batches = True
    preemptive_timeout = True
    orphans_on_cancel = True

    def __init__(
        self,
        batch_task: Callable[
            [tuple[TileTask, ...], tuple[int, ...], int | None], _BatchOutcome
        ],
        n_workers: int,
        ctx: RetryContext,
    ) -> None:
        self._task = batch_task
        self._n_workers = n_workers
        self._ctx = ctx
        self._pool: ThreadPoolExecutor | None = None
        self._futures: dict = {}
        self.spawns_this_run = 0
        self.respawns_this_run = 0

    def start(self) -> None:
        if self._pool is None:
            with span("driver.pool_spawn"):
                self._pool = ThreadPoolExecutor(max_workers=self._n_workers)
            self.spawns_this_run += 1
            self._ctx.note_pool_spawn(self.name)

    def submit_batch(
        self, unit: tuple[TileTask, ...], epochs: tuple[int, ...]
    ) -> BatchHandle | None:
        with span("driver.dispatch"):
            future = self._pool.submit(self._task, unit, epochs, None)
        handle = BatchHandle(
            unit=unit, epochs=epochs, started=time.perf_counter(),
            future=future,
        )
        self._futures[future] = handle
        return handle

    def drain(self, timeout: float | None) -> list[BatchDone]:
        done, _ = wait(
            set(self._futures), timeout=timeout, return_when=FIRST_COMPLETED
        )
        completed: list[BatchDone] = []
        for future in done:
            handle = self._futures.pop(future)
            error = future.exception()
            if error is None:
                completed.append(BatchDone(handle=handle, outcome=future.result()))
            else:
                completed.append(
                    BatchDone(handle=handle, outcome=None, error=error)
                )
        return completed

    def cancel_overdue(self, handles: list[BatchHandle]) -> None:
        # Threads cannot be killed: orphan the future (its result will
        # be discarded) and let the driver recycle the tiles through the
        # ordinary failure path.
        for handle in handles:
            self._futures.pop(handle.future, None)

    def materialize(self, handle: BatchHandle, item: _TileOutcome) -> TileResult:
        return item.result

    def release(self, handle: BatchHandle) -> None:
        return None

    def finish_run(self, *, abandoned: bool) -> None:
        if self._pool is not None:
            self._pool.shutdown(wait=not abandoned, cancel_futures=True)
            self._pool = None
        self._futures = {}

    def shutdown(self) -> None:
        self.finish_run(abandoned=False)


# ---------------------------------------------------------------------------
# Per-run process pool (shared-memory panel + result arena).
# ---------------------------------------------------------------------------


def _kill_pool_workers(pool: Executor) -> None:
    """Best-effort SIGKILL of a process pool's workers (hung-pool watchdog)."""
    processes = getattr(pool, "_processes", None) or {}
    for proc in list(processes.values()):
        try:
            proc.kill()
        except Exception:  # pragma: no cover - already-dead workers
            pass


def _mp_context():
    """Fork where available: worker startup is cheap and initargs are
    inherited rather than pickled. Everything passed is spawn-safe too."""
    if "fork" in get_all_start_methods():
        return get_context("fork")
    return get_context()  # pragma: no cover - non-POSIX fallback


class ProcessesBackend:
    """A per-run ``ProcessPoolExecutor`` with both directions in shared memory.

    The driver copies the packed word matrix into one
    ``multiprocessing.shared_memory`` segment; each worker maps it via
    the pool initializer, so task submission pickles only
    :class:`TileTask` keys (four ints each) plus attempt epochs. Results
    flow back through a driver-owned :class:`_ResultArena`: workers
    write statistic blocks straight into their batch's shared-memory
    slot and pickle only offsets, shapes, and CRC32s — result payloads
    never cross the pipe. Submission is windowed by the arena's slot
    count. A broken pool surfaces as :class:`_WorkersLost` so the driver
    rebuilds it; the segments themselves live for the whole run and are
    released (close *and* unlink, each step guarded) in ``shutdown``.
    """

    name = "processes"
    counts_batches = True
    preemptive_timeout = True
    orphans_on_cancel = False

    def __init__(
        self,
        *,
        words: np.ndarray,
        freqs: np.ndarray,
        n_samples: int,
        stat: str,
        params: BlockingParams | None,
        kernel: str,
        undefined: float,
        faults: FaultPlan | None,
        n_workers: int,
        batch_size: int,
        max_tile_elems: int,
        n_units: int,
        profile: bool,
        ctx: RetryContext,
        panel_path: str | None = None,
    ) -> None:
        self._ctx = ctx
        self._faults = faults
        self._n_workers = n_workers
        self._mp = _mp_context()
        self._pool: ProcessPoolExecutor | None = None
        self._futures: dict = {}
        self._spawn_index = 0
        self.spawns_this_run = 0
        self.respawns_this_run = 0
        self._shm = None
        words_shape = tuple(words.shape)
        if panel_path is None:
            # In-core handoff: copy the packed words into one segment
            # every worker maps via the pool initializer.
            words = np.ascontiguousarray(words, dtype=np.uint64)
            self._shm = shared_memory.SharedMemory(
                create=True, size=max(1, words.nbytes)
            )
        self._arena: _ResultArena | None = None
        try:
            if self._shm is not None:
                panel = np.ndarray(
                    words.shape, dtype=np.uint64, buffer=self._shm.buf
                )
                panel[:] = words
                del panel
            # A slot must hold the largest possible unit; keep a couple
            # of spare slots beyond the worker count so completed
            # batches can be drained while fresh units are already
            # queued.
            self._arena = _ResultArena(
                n_slots=min(max(1, n_units), 2 * n_workers + 2),
                slot_elems=batch_size * max_tile_elems,
            )
        except BaseException:
            # Partial construction must not leak the panel segment.
            self.shutdown()
            raise
        self._initargs = (
            self._shm.name if self._shm is not None else None,
            words_shape,
            freqs,
            n_samples,
            stat,
            params,
            kernel,
            undefined,
            faults,
            self._arena.name,
            self._arena.n_slots,
            self._arena.slot_elems,
            profile,
            panel_path,
        )
        if ctx.recorder is not None:
            ctx.recorder.inc("engine.arena_bytes", self._arena.nbytes)

    def start(self) -> None:
        if self._pool is not None:
            return
        index = self._spawn_index
        self._spawn_index += 1
        if self._faults is not None:
            self._faults.fire("pool_spawn", (-1, -1), index)
        with span("driver.pool_spawn"):
            self._pool = ProcessPoolExecutor(
                max_workers=self._n_workers,
                mp_context=self._mp,
                initializer=_init_worker,
                initargs=self._initargs,
            )
        self.spawns_this_run += 1
        self._ctx.note_pool_spawn(self.name)
        # A pool teardown orphans whatever was in flight; those slots
        # can never be released by their (dead) futures.
        self._arena.reset()
        self._futures = {}

    def submit_batch(
        self, unit: tuple[TileTask, ...], epochs: tuple[int, ...]
    ) -> BatchHandle | None:
        slot = self._arena.acquire()
        if slot is None:
            return None
        try:
            with span("driver.dispatch"):
                future = self._pool.submit(
                    _run_batch_in_worker, unit, epochs, slot
                )
        except BrokenProcessPool as error:
            self._arena.release(slot)
            raise _WorkersLost(error) from error
        handle = BatchHandle(
            unit=unit, epochs=epochs, started=time.perf_counter(),
            slot=slot, future=future,
        )
        self._futures[future] = handle
        return handle

    def drain(self, timeout: float | None) -> list[BatchDone]:
        done, _ = wait(
            set(self._futures), timeout=timeout, return_when=FIRST_COMPLETED
        )
        completed: list[BatchDone] = []
        for future in done:
            handle = self._futures.pop(future)
            error = future.exception()
            if error is None:
                completed.append(BatchDone(handle=handle, outcome=future.result()))
            elif isinstance(error, BrokenProcessPool):
                raise _WorkersLost(error) from error
            else:
                completed.append(
                    BatchDone(handle=handle, outcome=None, error=error)
                )
        return completed

    def cancel_overdue(self, handles: list[BatchHandle]) -> None:
        # A hung process worker is SIGKILLed and the whole pool rebuilt;
        # the driver charges the overdue tiles and re-chunks the rest.
        _kill_pool_workers(self._pool)
        cause = TileTimeoutError(
            f"{len(handles)} unit(s) exceeded the tile timeout"
        )
        raise _WorkersLost(cause, charged=tuple(handles))

    def materialize(self, handle: BatchHandle, item: _TileOutcome) -> TileResult:
        if handle.slot is not None and item.shape is not None:
            return _with_block(
                item.result,
                self._arena.read(handle.slot, item.arena_offset, item.shape),
            )
        return item.result  # pragma: no cover - arena always on here

    def release(self, handle: BatchHandle) -> None:
        if handle.slot is not None:
            self._arena.release(handle.slot)

    def finish_run(self, *, abandoned: bool) -> None:
        if self._pool is not None:
            self._pool.shutdown(wait=not abandoned, cancel_futures=True)
            self._pool = None
        self._futures = {}

    def shutdown(self) -> None:
        """Tear down the pool and release both segments.

        Every step is guarded so an arena that fails to close can never
        leave the panel segment behind in ``/dev/shm`` — the pre-existing
        leak this interface closes.
        """
        try:
            self.finish_run(abandoned=False)
        finally:
            try:
                if self._arena is not None:
                    self._arena.close()
                    self._arena = None
            finally:
                if self._shm is not None:
                    _close_and_unlink(self._shm)
                    self._shm = None


# ---------------------------------------------------------------------------
# Persistent warm-worker pool.
# ---------------------------------------------------------------------------


def panel_fingerprint(words: np.ndarray, n_samples: int) -> str:
    """Identity of one packed panel (the persistent-pool registry key).

    Unlike :func:`repro.core.engine.input_fingerprint` this covers only
    the panel itself — not stat/blocking parameters — because one warm
    pool serves any run against the same words (per-run configuration
    travels with each batch message).
    """
    words = np.ascontiguousarray(words, dtype=np.uint64)
    digest = hashlib.blake2b(digest_size=16)
    digest.update(f"panel|{words.shape[0]}x{words.shape[1]}|{n_samples}".encode())
    digest.update(words)
    return digest.hexdigest()


def panel_store_key(panel_path: str) -> str:
    """Registry key for a disk-backed panel: built from the store's
    pack-time content digest, so keying an out-of-core panel never
    re-reads it (hashing the memmapped words would fault in the whole
    file — the exact scan out-of-core mode exists to avoid)."""
    from repro.io.panelstore import PanelStore

    with PanelStore.open(panel_path) as store:
        digest = hashlib.blake2b(digest_size=16)
        digest.update(
            f"panelstore|{store.content_digest}|{store.n_samples}".encode()
        )
        return digest.hexdigest()


class PersistentPool:
    """A warm worker pool bound to one shared-memory panel.

    Spawned once per panel: the packed words are copied into a segment,
    a CRC-verified result arena is created next to it, and ``n_workers``
    processes attach both exactly one time. Work travels over
    *per-worker* raw pipe connections in both directions (a SIGKILLed
    worker can never poison a shared queue lock, and there is no queue
    feeder thread adding latency; a respawn simply replaces the dead
    worker's pipes). Replies are tagged with pool-global batch ids, so
    a stale reply from an aborted run can never be mistaken for a live
    one — and since a respawn closes the old pipes, stale replies die
    with them.
    """

    def __init__(
        self,
        key: str,
        words: np.ndarray,
        freqs: np.ndarray,
        n_samples: int,
        *,
        n_workers: int,
        slot_elems: int,
        panel_path: str | None = None,
    ) -> None:
        self.key = key
        self.n_workers = n_workers
        # One coherent pair of birth stamps: the *monotonic* one drives
        # every age computation (idle reaping here, `repro pool list`
        # ages in the CLI) so a wall-clock jump — NTP step, suspend —
        # can never age a pool backwards or reap a fresh one; the
        # wall-clock twin exists only for humans reading the state file.
        self.created = time.time()
        self.created_monotonic = time.monotonic()
        self.last_used = time.monotonic()
        self.in_use = 0
        self.spawns = 0
        self.batch_ids = itertools.count()
        self._mp = _mp_context()
        self._freqs = np.ascontiguousarray(freqs)
        self._n_samples = n_samples
        self._panel_path = panel_path
        self._words_shape = tuple(words.shape)
        self.panel_shm = None
        if panel_path is None:
            words = np.ascontiguousarray(words, dtype=np.uint64)
            self.panel_shm = shared_memory.SharedMemory(
                create=True, size=max(1, words.nbytes)
            )
        self.arena: _ResultArena | None = None
        self.workers: list = []
        self.task_conns: list = []
        self.result_conns: list = []
        try:
            if self.panel_shm is not None:
                panel = np.ndarray(
                    words.shape, dtype=np.uint64, buffer=self.panel_shm.buf
                )
                panel[:] = words
                del panel
            self.arena = _ResultArena(
                n_slots=2 * n_workers + 2, slot_elems=slot_elems
            )
            for index in range(n_workers):
                self.workers.append(None)
                self.task_conns.append(None)
                self.result_conns.append(None)
                self._spawn_worker(index)
        except BaseException:
            self.stop()
            raise

    def _spawn_worker(self, index: int) -> None:
        """(Re)spawn worker *index* with fresh private pipes."""
        task_recv, task_send = self._mp.Pipe(duplex=False)
        result_recv, result_send = self._mp.Pipe(duplex=False)
        proc = self._mp.Process(
            target=_persistent_worker_main,
            args=(
                index,
                self.panel_shm.name if self.panel_shm is not None else None,
                self._words_shape,
                self._freqs,
                self._n_samples,
                self.arena.name,
                self.arena.n_slots,
                self.arena.slot_elems,
                task_recv,
                result_send,
                self._panel_path,
            ),
            daemon=True,
            name=f"repro-pool-{self.key[:8]}-w{index}",
        )
        proc.start()
        # The child holds its own copies now; the driver keeps only the
        # send side of tasks and the recv side of results.
        task_recv.close()
        result_send.close()
        _close_conn(self.task_conns[index])
        _close_conn(self.result_conns[index])
        self.task_conns[index] = task_send
        self.result_conns[index] = result_recv
        self.workers[index] = proc
        self.spawns += 1

    def respawn(self, index: int) -> None:
        """Replace one dead (or killed) worker without touching the rest."""
        proc = self.workers[index]
        if proc is not None and proc.is_alive():
            proc.kill()
        if proc is not None:
            proc.join(timeout=5)
        with span("driver.pool_spawn"):
            self._spawn_worker(index)

    def ensure_workers(self) -> int:
        """Respawn any dead workers (kill-between-runs); return how many."""
        respawned = 0
        for index, proc in enumerate(self.workers):
            if proc is None or not proc.is_alive():
                with span("driver.pool_spawn"):
                    self._spawn_worker(index)
                respawned += 1
        return respawned

    def fits(self, n_workers: int, slot_elems: int) -> bool:
        """Whether this pool can serve a run with the given demands."""
        return (
            n_workers <= self.n_workers
            and self.arena is not None
            and slot_elems <= self.arena.slot_elems
        )

    @property
    def pids(self) -> list[int]:
        return [p.pid for p in self.workers if p is not None and p.pid]

    def stop(self) -> None:
        """Shut down workers and release every owned resource.

        Safe to call on a half-built pool and idempotent; each release
        step is guarded so no failure can leak a later segment.
        """
        for conn in self.task_conns:
            if conn is None:
                continue
            try:
                conn.send(None)
            except Exception:  # pragma: no cover - dead worker / closed pipe
                pass
        deadline = time.monotonic() + 2.0
        for proc in self.workers:
            if proc is None:
                continue
            proc.join(timeout=max(0.0, deadline - time.monotonic()))
            if proc.is_alive():
                proc.kill()
                proc.join(timeout=1.0)
        self.workers = []
        for conn in self.task_conns + self.result_conns:
            _close_conn(conn)
        self.task_conns = []
        self.result_conns = []
        try:
            if self.arena is not None:
                self.arena.close()
                self.arena = None
        finally:
            if self.panel_shm is not None:
                _close_and_unlink(self.panel_shm)
                self.panel_shm = None


def _close_conn(conn) -> None:
    """Close one pipe end, tolerating ``None`` and already-closed."""
    if conn is None:
        return
    try:
        conn.close()
    except Exception:  # pragma: no cover - already closed
        pass


class PersistentBackend:
    """Warm-pool execution: batches go to already-running workers.

    ``start`` acquires (or builds) the registry pool for this panel and
    respawns any workers that died between runs; ``submit_batch`` sends
    to the least-loaded live worker over its private pipe (bounded
    outstanding per worker, windowed by arena slots), shipping the
    run's config once per worker before its first batch; ``drain``
    multiplexes the per-worker reply pipes with
    ``multiprocessing.connection.wait`` — results wake it immediately,
    and silence + a dead worker means a worker crash: that worker alone
    is respawned and its batch charged a retry, never a whole-pool
    rebuild. ``shutdown`` leaves the pool warm for the next run.
    """

    name = "persistent"
    counts_batches = True
    preemptive_timeout = True
    orphans_on_cancel = False

    #: Seconds between result-queue polls (liveness checks interleave).
    _POLL = 0.05

    def __init__(
        self,
        *,
        words: np.ndarray,
        freqs: np.ndarray,
        n_samples: int,
        stat: str,
        params: BlockingParams | None,
        kernel: str,
        undefined: float,
        faults: FaultPlan | None,
        n_workers: int,
        batch_size: int,
        max_tile_elems: int,
        profile: bool,
        ctx: RetryContext,
        panel_path: str | None = None,
    ) -> None:
        self._words = words
        self._freqs = freqs
        self._n_samples = n_samples
        self._panel_path = panel_path
        self._config = (stat, params, kernel, undefined, faults, profile)
        self._profile = profile
        self._faults = faults
        self._ctx = ctx
        self._n_workers = n_workers
        self._slot_elems = batch_size * max_tile_elems
        # One outstanding batch per worker under a timeout (a watchdog
        # kill must have no collateral); two otherwise so the queue hides
        # dispatch latency.
        self._max_per_worker = 1 if ctx.tile_timeout is not None else 2
        self._pool: PersistentPool | None = None
        self._outstanding: dict[int, BatchHandle] = {}
        self._loads: dict[int, int] = {}
        #: Workers that already hold this run's config (resent after a
        #: respawn, and never assumed from a previous run).
        self._configured: set[int] = set()
        self._poller = None
        self._fd_map: dict[int, int] = {}
        self._spawn_index = 0
        self.spawns_this_run = 0
        self.respawns_this_run = 0

    # -- lifecycle ---------------------------------------------------------

    def start(self) -> None:
        if self._pool is None:
            if self._panel_path is not None:
                key = panel_store_key(self._panel_path)
            else:
                key = panel_fingerprint(self._words, self._n_samples)

            def build() -> PersistentPool:
                index = self._spawn_index
                self._spawn_index += 1
                if self._faults is not None:
                    self._faults.fire("pool_spawn", (-1, -1), index)
                with span("driver.pool_spawn"):
                    pool = PersistentPool(
                        key,
                        self._words,
                        self._freqs,
                        self._n_samples,
                        n_workers=self._n_workers,
                        slot_elems=self._slot_elems,
                        panel_path=self._panel_path,
                    )
                self.spawns_this_run += 1
                self._ctx.note_pool_spawn(self.name)
                if self._ctx.recorder is not None:
                    self._ctx.recorder.inc(
                        "engine.arena_bytes", pool.arena.nbytes
                    )
                return pool

            self._pool = _acquire_pool(
                key, self._n_workers, self._slot_elems, build
            )
            self._pool.in_use += 1
        # Workers killed between runs (chaos, `repro pool stop` from
        # outside) are respawned here — the pool object survives.
        respawned = self._pool.ensure_workers()
        for _ in range(respawned):
            self.respawns_this_run += 1
            self._ctx.note_worker_respawn(-1)
        self._loads = {i: 0 for i in range(self._n_workers)}
        self._configured = set()
        self._rebuild_poller()

    def shutdown(self) -> None:
        """End of run: leave the pool warm, release only run-local state."""
        if self._pool is not None:
            self._pool.last_used = time.monotonic()
            self._pool.in_use = max(0, self._pool.in_use - 1)
            self._pool = None
        self._outstanding = {}
        self._loads = {}
        self._poller = None
        self._fd_map = {}

    def _rebuild_poller(self) -> None:
        """(Re)register every live reply pipe with one reusable poller.

        ``multiprocessing.connection.wait`` builds a fresh selector on
        every call; at warm-dispatch latencies that construction is a
        measurable fraction of a whole batch, so the backend keeps a
        single ``select.poll`` for the run and re-registers only when a
        respawn replaces a worker's pipes (``wait`` remains the
        fallback where ``select.poll`` does not exist).
        """
        self._fd_map = {}
        if not hasattr(select, "poll"):  # pragma: no cover - non-POSIX
            self._poller = None
            return
        self._poller = select.poll()
        for index, conn in enumerate(self._pool.result_conns):
            if conn is not None and not conn.closed:
                self._poller.register(conn.fileno(), select.POLLIN)
                self._fd_map[conn.fileno()] = index

    def _ready_conns(self, timeout_s: float) -> list:
        """Reply pipes with data (or a hangup) ready, within *timeout_s*."""
        if self._poller is None:  # pragma: no cover - non-POSIX fallback
            conns = [
                c for c in self._pool.result_conns
                if c is not None and not c.closed
            ]
            return mp_connection.wait(conns, timeout=timeout_s) if conns else []
        ready = []
        millis = int(timeout_s * 1000 + 0.999) if timeout_s > 0 else 0
        for fd, _events in self._poller.poll(millis):
            index = self._fd_map.get(fd)
            if index is None:  # pragma: no cover - stale fd after respawn
                continue
            conn = self._pool.result_conns[index]
            if conn is not None and not conn.closed:
                ready.append(conn)
        return ready

    # -- dispatch ----------------------------------------------------------

    def submit_batch(
        self, unit: tuple[TileTask, ...], epochs: tuple[int, ...]
    ) -> BatchHandle | None:
        worker = self._pick_worker()
        if worker is None:
            return None
        slot = self._pool.arena.acquire()
        if slot is None:
            return None
        batch_id = next(self._pool.batch_ids)
        conn = self._pool.task_conns[worker]
        config = None if worker in self._configured else self._config
        with span("driver.enqueue"):
            try:
                conn.send((batch_id, unit, epochs, slot, config))
            except (BrokenPipeError, OSError):
                # The worker died under us; hand the slot back and let
                # drain's liveness sweep (or the next start) respawn it.
                self._pool.arena.release(slot)
                return None
        self._configured.add(worker)
        handle = BatchHandle(
            unit=unit, epochs=epochs, started=time.perf_counter(),
            batch_id=batch_id, slot=slot, worker=worker,
        )
        self._outstanding[batch_id] = handle
        self._loads[worker] += 1
        return handle

    def _pick_worker(self) -> int | None:
        """Least-loaded live worker with spare capacity, or ``None``."""
        best = None
        best_load = self._max_per_worker
        for index in range(self._n_workers):
            load = self._loads.get(index, 0)
            if load < best_load:
                best = index
                best_load = load
        return best

    def drain(self, timeout: float | None) -> list[BatchDone]:
        completed: list[BatchDone] = []
        deadline = (
            None if timeout is None else time.perf_counter() + timeout
        )
        while True:
            slice_s = self._POLL
            if deadline is not None:
                slice_s = min(slice_s, max(0.0, deadline - time.perf_counter()))
            ready = self._ready_conns(slice_s)
            for conn in ready:
                # Sweep every reply already buffered on this pipe.
                try:
                    while True:
                        done = self._admit(conn.recv())
                        if done is not None:
                            completed.append(done)
                        if not conn.poll(0):
                            break
                except (EOFError, OSError):
                    # Closed pipe end: the worker died — the liveness
                    # sweep below turns that into a charged batch.
                    pass
            if not ready or not completed:
                completed.extend(self._collect_dead())
            if completed:
                return completed
            if deadline is not None and time.perf_counter() >= deadline:
                return completed

    def _admit(self, message) -> BatchDone | None:
        """Match one reply to an in-flight handle; drop stale replies."""
        batch_id, worker, outcome, error, idle_seconds = message
        handle = self._outstanding.pop(batch_id, None)
        if handle is None:
            # A reply from a batch this run no longer tracks (aborted
            # round, watchdog kill that lost the race). Its slot has
            # already been recycled; CRC verification covers any writer
            # race on the arena bytes.
            return None
        if worker in self._loads:
            self._loads[worker] = max(0, self._loads[worker] - 1)
        if (
            idle_seconds > 0
            and self._profile
            and self._ctx.recorder is not None
        ):
            self._ctx.recorder.observe_time("phase.worker.idle", idle_seconds)
        return BatchDone(handle=handle, outcome=outcome, error=error)

    def _collect_dead(self) -> list[BatchDone]:
        """Turn dead workers into charged batches + single respawns."""
        lost: list[BatchDone] = []
        respawned = False
        for index in range(self._n_workers):
            proc = self._pool.workers[index]
            if proc is not None and proc.is_alive():
                continue
            exitcode = None if proc is None else proc.exitcode
            error = WorkerCrashError(
                f"persistent worker {index} died (exitcode {exitcode}); "
                "respawned in place"
            )
            for handle in [
                h for h in self._outstanding.values() if h.worker == index
            ]:
                self._outstanding.pop(handle.batch_id, None)
                lost.append(BatchDone(handle=handle, outcome=None, error=error))
            self._pool.respawn(index)
            self._loads[index] = 0
            self._configured.discard(index)
            respawned = True
            self.respawns_this_run += 1
            self._ctx.note_worker_respawn(index)
        if respawned:
            self._rebuild_poller()
        return lost

    def cancel_overdue(self, handles: list[BatchHandle]) -> None:
        """Watchdog: kill only the stuck workers, respawn them in place."""
        killed: set[int] = set()
        for handle in handles:
            self._outstanding.pop(handle.batch_id, None)
            self._pool.arena.release(handle.slot)
            if handle.worker in killed:
                continue  # pragma: no cover - one outstanding under timeout
            killed.add(handle.worker)
            self._pool.respawn(handle.worker)
            self._loads[handle.worker] = 0
            self._configured.discard(handle.worker)
            self.respawns_this_run += 1
            self._ctx.note_worker_respawn(handle.worker)
        if killed:
            self._rebuild_poller()

    def materialize(self, handle: BatchHandle, item: _TileOutcome) -> TileResult:
        if handle.slot is not None and item.shape is not None:
            return _with_block(
                item.result,
                self._pool.arena.read(
                    handle.slot, item.arena_offset, item.shape
                ),
            )
        return item.result  # pragma: no cover - arena always on here

    def release(self, handle: BatchHandle) -> None:
        if handle.slot is not None:
            self._pool.arena.release(handle.slot)

    def finish_run(self, *, abandoned: bool) -> None:
        """End of one scheduling round: abort whatever is still in flight.

        On a clean round nothing is outstanding and this only drains
        stale replies. On an exception escape (a crashing sink, an
        injected torn-manifest crash) the workers holding outstanding
        batches are killed and respawned — deterministic, and it
        guarantees no stale writer touches an arena slot the next round
        hands out.
        """
        if self._pool is None:  # pragma: no cover - defensive
            return
        if self._outstanding:
            for index in {
                h.worker for h in self._outstanding.values()
            }:
                self._pool.respawn(index)
                self._loads[index] = 0
                self._configured.discard(index)
            for handle in self._outstanding.values():
                self._pool.arena.release(handle.slot)
            self._outstanding = {}
            self._rebuild_poller()
        # Drop any replies already buffered from batches this round no
        # longer tracks (a respawn closed the aborted workers' pipes,
        # so only already-delivered stragglers can remain).
        for conn in self._ready_conns(0):
            try:
                while True:
                    conn.recv()
                    if not conn.poll(0):
                        break
            except (EOFError, OSError):  # pragma: no cover - dying worker
                pass


# ---------------------------------------------------------------------------
# Persistent-pool registry: keyed by panel, LRU-capped, idle-reaped.
# ---------------------------------------------------------------------------

_POOLS: "OrderedDict[str, PersistentPool]" = OrderedDict()
_POOLS_LOCK = threading.RLock()
_REAPER: threading.Thread | None = None
_ATEXIT_INSTALLED = False


def _max_pools() -> int:
    try:
        return max(1, int(os.environ.get("REPRO_POOL_MAX", "2")))
    except ValueError:  # pragma: no cover - bad env
        return 2


def _idle_timeout() -> float:
    try:
        return max(1.0, float(os.environ.get("REPRO_POOL_IDLE_TIMEOUT", "300")))
    except ValueError:  # pragma: no cover - bad env
        return 300.0


def _acquire_pool(
    key: str,
    n_workers: int,
    slot_elems: int,
    build: Callable[[], PersistentPool],
) -> PersistentPool:
    """The registry pool for *key*, reusing a warm one when it fits.

    A pool too small for this run (fewer workers, smaller arena slots)
    is stopped and rebuilt — honest spawn accounting, never a silent
    under-provisioned reuse. Acquiring also sweeps idle pools and
    enforces the LRU cap.
    """
    with _POOLS_LOCK:
        _reap_locked()
        pool = _POOLS.get(key)
        if pool is not None:
            if pool.fits(n_workers, slot_elems):
                _POOLS.move_to_end(key)
                pool.last_used = time.monotonic()
                return pool
            _drop_pool_locked(key)
        pool = build()
        _POOLS[key] = pool
        _POOLS.move_to_end(key)
        _state_record(pool)
        while len(_POOLS) > _max_pools():
            oldest = next(iter(_POOLS))
            if oldest == key:  # pragma: no cover - cap >= 1 keeps newest
                break
            _drop_pool_locked(oldest)
        _install_atexit()
        _ensure_reaper()
        return pool


def _drop_pool_locked(key: str) -> None:
    pool = _POOLS.pop(key, None)
    if pool is None:
        return
    try:
        pool.stop()
    finally:
        _state_forget(key)


def _reap_locked(now: float | None = None) -> int:
    now = time.monotonic() if now is None else now
    idle = _idle_timeout()
    stale = [
        key for key, pool in _POOLS.items()
        if pool.in_use == 0 and now - pool.last_used > idle
    ]
    for key in stale:
        _drop_pool_locked(key)
    return len(stale)


def reap_idle_pools() -> int:
    """Stop warm pools idle past ``REPRO_POOL_IDLE_TIMEOUT``; return count."""
    with _POOLS_LOCK:
        return _reap_locked()


def _reaper_loop() -> None:
    while True:
        time.sleep(max(1.0, _idle_timeout() / 4.0))
        with _POOLS_LOCK:
            _reap_locked()
            if not _POOLS:
                return


def _ensure_reaper() -> None:
    global _REAPER
    if _REAPER is not None and _REAPER.is_alive():
        return
    _REAPER = threading.Thread(
        target=_reaper_loop, name="repro-pool-reaper", daemon=True
    )
    _REAPER.start()


def _install_atexit() -> None:
    global _ATEXIT_INSTALLED
    if not _ATEXIT_INSTALLED:
        atexit.register(stop_pools)
        _ATEXIT_INSTALLED = True


def stop_pools(key: str | None = None, *, cross_process: bool = False) -> int:
    """Stop warm pools; returns how many were stopped.

    With *key* only that pool is stopped; otherwise all of them. With
    ``cross_process=True`` pools journaled to the state file by *other*
    processes are also torn down (worker pids killed, segments
    unlinked) — the ``repro pool stop`` path for leaked or orphaned
    pools.
    """
    stopped = 0
    with _POOLS_LOCK:
        targets = [key] if key is not None else list(_POOLS)
        for target in targets:
            if target in _POOLS:
                _drop_pool_locked(target)
                stopped += 1
    if cross_process:
        stopped += _state_stop_foreign(key)
    return stopped


# ---------------------------------------------------------------------------
# On-disk pool state: lets `repro pool list/stop` see other processes.
# ---------------------------------------------------------------------------


def _state_path() -> Path:
    override = os.environ.get("REPRO_POOL_STATE")
    if override:
        return Path(override)
    uid = getattr(os, "getuid", lambda: "na")()
    return Path(tempfile.gettempdir()) / f"repro-pools-{uid}.json"


def _state_update(mutate) -> list[dict]:
    """Locked read-modify-write of the pool state file (best effort)."""
    path = _state_path()
    try:
        with open(path, "a+", encoding="utf-8") as fh:
            try:
                import fcntl

                fcntl.flock(fh, fcntl.LOCK_EX)
            except (ImportError, OSError):  # pragma: no cover - non-POSIX
                pass
            fh.seek(0)
            raw = fh.read()
            try:
                entries = json.loads(raw) if raw.strip() else []
            except ValueError:
                entries = []
            entries = mutate(entries)
            fh.seek(0)
            fh.truncate()
            json.dump(entries, fh, indent=0)
        return entries
    except OSError:  # pragma: no cover - unwritable tempdir
        return []


def _state_record(pool: PersistentPool) -> None:
    entry = {
        "key": pool.key,
        "owner_pid": os.getpid(),
        # Wall clock for humans; the monotonic stamp (CLOCK_MONOTONIC is
        # system-wide on Linux, so other processes can subtract it from
        # their own time.monotonic()) for age math that survives
        # wall-clock jumps.
        "created": pool.created,
        "created_monotonic": pool.created_monotonic,
        "n_workers": pool.n_workers,
        "worker_pids": pool.pids,
        "panel_shm": pool.panel_shm.name if pool.panel_shm else None,
        "arena_shm": pool.arena.name,
    }

    def mutate(entries: list[dict]) -> list[dict]:
        entries = [
            e for e in entries
            if not (e.get("key") == pool.key
                    and e.get("owner_pid") == os.getpid())
        ]
        entries.append(entry)
        return entries

    _state_update(mutate)


def _state_forget(key: str) -> None:
    def mutate(entries: list[dict]) -> list[dict]:
        return [
            e for e in entries
            if not (e.get("key") == key and e.get("owner_pid") == os.getpid())
        ]

    _state_update(mutate)


def _pid_alive(pid: int) -> bool:
    try:
        os.kill(pid, 0)
    except ProcessLookupError:
        return False
    except PermissionError:  # pragma: no cover - other-user pid
        return True
    except OSError as error:  # pragma: no cover - exotic errnos
        return error.errno != errno.ESRCH
    return True


def pool_status() -> list[dict]:
    """Every journaled pool (this process and others), liveness-annotated."""
    entries = _state_update(lambda e: e)
    status = []
    for entry in entries:
        owner = int(entry.get("owner_pid", -1))
        workers = [int(p) for p in entry.get("worker_pids", [])]
        status.append(
            {
                **entry,
                "owner_alive": _pid_alive(owner),
                "workers_alive": sum(1 for p in workers if _pid_alive(p)),
                "own": owner == os.getpid(),
            }
        )
    return status


def _state_stop_foreign(key: str | None) -> int:
    """Tear down pools journaled by other processes (or dead owners)."""
    import signal

    stopped = 0
    remaining: list[dict] = []
    entries = _state_update(lambda e: e)
    for entry in entries:
        owner = int(entry.get("owner_pid", -1))
        if owner == os.getpid():
            # Live entries for this process are managed by the registry;
            # anything still listed here was already stopped above.
            if entry.get("key") in _POOLS:
                remaining.append(entry)
            continue
        if key is not None and entry.get("key") != key:
            remaining.append(entry)
            continue
        for pid in entry.get("worker_pids", []):
            pid = int(pid)
            if _pid_alive(pid):
                try:
                    os.kill(pid, signal.SIGTERM)
                except OSError:  # pragma: no cover - raced exit
                    pass
        for name in (entry.get("panel_shm"), entry.get("arena_shm")):
            if not name:
                continue
            try:
                seg = shared_memory.SharedMemory(name=name)
                _close_and_unlink(seg)
            except FileNotFoundError:
                pass
            except OSError:  # pragma: no cover - raced unlink
                pass
        stopped += 1
    _state_update(lambda _e: remaining)
    return stopped


# ---------------------------------------------------------------------------
# The generic dispatch loop.
# ---------------------------------------------------------------------------


def drive(
    backend: ExecutorBackend,
    tiles: list[TileTask],
    ctx: RetryContext,
    *,
    batch_size: int = 1,
) -> tuple[int, int]:
    """Drive batched tile units through *backend* with retry and watchdog.

    Tiles are dispatched ``batch_size`` per unit (amortizing dispatch
    overhead); each unit reports per-tile outcomes, so a failing tile is
    charged an attempt and resubmitted as a singleton while its
    batch-mates land normally. Past ``max_retries`` a tile is
    quarantined (when allowed) or the run aborts with the original
    error. A backend that loses its whole pool raises
    :class:`_WorkersLost`; the pool is restarted and pending work
    re-chunked, with the epoch base advanced so seeded kill faults do
    not re-fire. When the pool cannot be (re)started within the restart
    budget, :class:`ExecutorBroken` escapes so the caller can degrade to
    a simpler executor. Returns ``(retries, units_submitted)``.

    The watchdog: with ``ctx.tile_timeout`` set and a backend that
    supports preemption, a unit running past its wall-clock budget is
    cancelled via ``backend.cancel_overdue`` — SIGKILL + single respawn
    for persistent workers, orphaning for threads, a full pool rebuild
    for per-run processes — and its tiles are charged a timeout.
    """
    retries = 0
    submissions = 0
    resets = 0
    attempts = dict.fromkeys(tiles, 0)
    pending = set(tiles)
    order = list(tiles)

    def handle_failure(
        tile: TileTask, error: BaseException, requeue: deque | None
    ) -> None:
        nonlocal retries
        attempts[tile] += 1
        retries += 1
        ctx.note_failure(tile, error)
        if attempts[tile] > ctx.max_retries:
            if ctx.allow_quarantine:
                ctx.quarantine(tile, error)
                pending.discard(tile)
                return
            raise error
        delay = ctx.backoff_seconds(tile.key, attempts[tile])
        if delay > 0:
            with span("driver.backoff"):
                time.sleep(delay)
        if requeue is not None:
            requeue.append((tile,))

    while pending:
        try:
            backend.start()
        except Exception as error:
            resets += 1
            ctx.note_spawn_failure(error)
            if resets > ctx.max_retries:
                raise ExecutorBroken(error) from error
            continue
        queue = _chunk_batches(order, pending, batch_size)
        inflight: set[BatchHandle] = set()
        abandoned = False

        def try_submit(unit: tuple[TileTask, ...]) -> bool:
            nonlocal submissions
            epochs = tuple(attempts[t] + resets for t in unit)
            handle = backend.submit_batch(unit, epochs)
            if handle is None:
                return False
            inflight.add(handle)
            submissions += 1
            return True

        def pump() -> None:
            while queue and try_submit(queue[0]):
                queue.popleft()

        try:
            pump()
            while inflight or queue:
                if not inflight:
                    pump()
                    if not inflight:  # pragma: no cover - defensive
                        break
                slack = None
                if (
                    ctx.tile_timeout is not None
                    and backend.preemptive_timeout
                ):
                    now = time.perf_counter()
                    overdue = [
                        h for h in inflight
                        if now - h.started >= ctx.tile_timeout
                    ]
                    if overdue:
                        backend.cancel_overdue(overdue)  # may raise
                        abandoned = abandoned or backend.orphans_on_cancel
                        for handle in overdue:
                            inflight.discard(handle)
                            for tile in handle.unit:
                                if tile in pending:
                                    handle_failure(
                                        tile,
                                        TileTimeoutError(
                                            f"tile {tile.key} exceeded the "
                                            f"{ctx.tile_timeout}s budget"
                                        ),
                                        queue,
                                    )
                        pump()
                        continue
                    deadline = min(
                        h.started + ctx.tile_timeout for h in inflight
                    )
                    slack = max(0.0, deadline - now) + 1e-3
                with span("driver.wait"):
                    completed = backend.drain(slack)
                for done in completed:
                    handle = done.handle
                    if handle not in inflight:  # pragma: no cover - stale
                        continue
                    inflight.discard(handle)
                    if done.error is not None:
                        for tile in handle.unit:
                            if tile in pending:
                                handle_failure(tile, done.error, queue)
                    else:
                        for item in done.outcome.items:
                            tile = handle.unit[item.index]
                            if tile not in pending:
                                continue
                            if item.error is not None:
                                handle_failure(tile, item.error, queue)
                                continue
                            result = backend.materialize(handle, item)
                            try:
                                ctx.verify(tile, result)
                            except TileCorruptionError as corrupt:
                                handle_failure(tile, corrupt, queue)
                                continue
                            # An arena-backed block is only valid until
                            # the slot is released; deliver consumes it
                            # now.
                            ctx.deliver(tile, result)
                            pending.discard(tile)
                    backend.release(handle)
                    pump()
                if ctx.live is not None:
                    ctx.live.maybe_publish()
        except _WorkersLost as lost:
            resets += 1
            for handle in lost.charged:
                for tile in handle.unit:
                    if tile in pending:
                        handle_failure(
                            tile,
                            TileTimeoutError(
                                f"tile {tile.key} exceeded the "
                                f"{ctx.tile_timeout}s budget (worker killed)"
                            ),
                            None,
                        )
            ctx.note_restart(lost.cause)
            if resets > ctx.max_retries:
                raise ExecutorBroken(lost.cause) from lost.cause
        finally:
            backend.finish_run(abandoned=abandoned)
    return retries, submissions
