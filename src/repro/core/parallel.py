"""Thread-level parallelization of the blocked LD GEMM.

BLIS obtains multithreaded GEMM by parallelizing loops *around* the
micro-kernel; the standard choice for rank-k shapes is the jc/ic macro loops,
which need no synchronization because threads own disjoint tiles of C
(Section IV's "leverage existing efficient parallelization schemes"). We
parallelize the m dimension: each thread runs the full blocked driver over a
contiguous row range of A into its own C rows.

For the symmetric ``GᵀG`` case the lower-triangle work grows quadratically
with the row index, so row ranges are split on the triangle's area rather
than uniformly (:func:`partition_triangle_rows`).

Threads (not processes) are the right vehicle here: the numpy bitwise
ufuncs release the GIL, matching the paper's shared-memory Pthreads setup.
On hardware with fewer cores than requested threads the result is still
correct — the thread-scaling *figures* are produced by the machine model
(:mod:`repro.machine.multicore`), not by this module.

The partition helpers below are the in-memory counterpart of the sharded
tile scheduler in :mod:`repro.core.engine`: both balance the quadratic
lower-triangle workload, here as contiguous row ranges owned by threads,
there as an explicit restartable tile list spread over worker pools.
"""

from __future__ import annotations

import math
from concurrent.futures import ThreadPoolExecutor

import numpy as np

from repro.core.blocking import BlockingParams
from repro.core.gemm import DEFAULT_KERNEL, popcount_gemm

__all__ = ["partition_ranges", "partition_triangle_rows", "popcount_gemm_parallel"]


def partition_ranges(total: int, parts: int) -> list[tuple[int, int]]:
    """Split ``range(total)`` into *parts* contiguous near-equal ranges.

    Empty ranges are dropped, so fewer than *parts* ranges come back when
    ``total < parts``.
    """
    if parts <= 0:
        raise ValueError(f"parts must be positive, got {parts}")
    if total < 0:
        raise ValueError(f"total must be non-negative, got {total}")
    base, extra = divmod(total, parts)
    ranges = []
    start = 0
    for i in range(parts):
        size = base + (1 if i < extra else 0)
        if size:
            ranges.append((start, start + size))
        start += size
    return ranges


def partition_triangle_rows(m: int, parts: int) -> list[tuple[int, int]]:
    """Split rows of an ``m × m`` lower triangle into load-balanced ranges.

    Row *i* of the lower triangle holds ``i + 1`` entries, so the work of
    rows ``[0, r)`` is ~``r²/2``; boundaries sit at ``m·sqrt(t/parts)``.
    """
    if parts <= 0:
        raise ValueError(f"parts must be positive, got {parts}")
    if m < 0:
        raise ValueError(f"m must be non-negative, got {m}")
    boundaries = [round(m * math.sqrt(t / parts)) for t in range(parts + 1)]
    boundaries[0], boundaries[-1] = 0, m
    ranges = []
    for lo, hi in zip(boundaries, boundaries[1:]):
        if hi > lo:
            ranges.append((lo, hi))
    return ranges


def popcount_gemm_parallel(
    a_words: np.ndarray,
    b_words: np.ndarray | None = None,
    *,
    n_threads: int = 1,
    params: BlockingParams | None = None,
    kernel: str = DEFAULT_KERNEL,
) -> np.ndarray:
    """Multithreaded all-pairs popcount inner products.

    Parameters
    ----------
    a_words:
        Packed ``(m, k)`` word matrix.
    b_words:
        Packed ``(n, k)`` word matrix, or ``None`` for the symmetric
        ``A Aᵀ`` case (computed over the lower triangle and mirrored).
    n_threads:
        Worker threads; each owns a disjoint row range of C.
    """
    if n_threads <= 0:
        raise ValueError(f"n_threads must be positive, got {n_threads}")
    symmetric = b_words is None
    b = a_words if symmetric else b_words
    m = a_words.shape[0]
    n = b.shape[0]
    c = np.zeros((m, n), dtype=np.int64)

    if symmetric:
        ranges = partition_triangle_rows(m, n_threads)

        def run(row_range: tuple[int, int]) -> None:
            lo, hi = row_range
            # Rows [lo, hi) of the lower triangle need columns [0, hi).
            c[lo:hi, :hi] = popcount_gemm(
                a_words[lo:hi], b[:hi], params=params, kernel=kernel
            )

    else:
        ranges = partition_ranges(m, n_threads)

        def run(row_range: tuple[int, int]) -> None:
            lo, hi = row_range
            c[lo:hi] = popcount_gemm(
                a_words[lo:hi], b, params=params, kernel=kernel
            )

    if len(ranges) <= 1:
        for r in ranges:
            run(r)
    else:
        with ThreadPoolExecutor(max_workers=len(ranges)) as pool:
            # Materialize results so worker exceptions propagate.
            list(pool.map(run, ranges))

    if symmetric:
        lower = np.tril(c)
        return lower + np.tril(lower, -1).T
    return c
