"""Public high-level API for GEMM-based LD computation.

The typical call is one line::

    r2 = ld_matrix(G)                      # all-pairs r², Equation 2
    d  = ld_matrix(G, stat="D")            # all-pairs D,  Equation 1
    x  = ld_cross(G_left, G_right)         # long-range / two-region LD (Fig. 4)

``G`` may be a dense binary ``(n_samples, n_snps)`` array or an
already-packed :class:`~repro.encoding.bitmatrix.BitMatrix`. Internally the
pipeline is exactly the paper's DLA sequence (Section II-B)::

    H = (1/N_seq) GᵀG        (blocked popcount GEMM — the O(n³) term)
    D = H − p pᵀ             (rank-1 update — the O(n²) term)
    r²/D' = elementwise maps of D and p

:class:`LDResult` exposes every intermediate (counts, H, p, D, r², D') so
applications like the ω statistic or LD pruning can reuse the expensive GEMM
output without recomputation.
"""

from __future__ import annotations

from dataclasses import dataclass, field

import numpy as np

from repro.core.blocking import BlockingParams
from repro.core.gemm import DEFAULT_KERNEL
from repro.core.parallel import popcount_gemm_parallel
from repro.core.stats import d_matrix, d_prime_matrix, r_squared_matrix
from repro.encoding.bitmatrix import BitMatrix

__all__ = ["LDResult", "as_bitmatrix", "ld_cross", "ld_matrix", "ld_pairs"]

_STATS = ("r2", "D", "Dprime", "H")


def as_bitmatrix(data: BitMatrix | np.ndarray) -> BitMatrix:
    """Coerce a dense binary ``(n_samples, n_snps)`` array to a :class:`BitMatrix`."""
    if isinstance(data, BitMatrix):
        return data
    return BitMatrix.from_dense(np.asarray(data))


@dataclass
class LDResult:
    """All intermediates of one LD computation, with lazy derived statistics.

    Attributes
    ----------
    counts:
        Shared-derived-allele count matrix ``GᵀG`` (int64) — the raw GEMM
        output before normalization.
    p, q:
        Allele-frequency vectors of the row / column SNP sets (identical
        object in the single-matrix case).
    n_samples:
        Sample count used for normalization.
    """

    counts: np.ndarray
    p: np.ndarray
    q: np.ndarray
    n_samples: int
    _h: np.ndarray | None = field(default=None, repr=False)

    @property
    def h(self) -> np.ndarray:
        """Haplotype-frequency matrix ``H`` (Equation 4, all pairs)."""
        if self._h is None:
            self._h = self.counts / float(self.n_samples)
        return self._h

    @property
    def d(self) -> np.ndarray:
        """LD coefficient matrix ``D = H − p qᵀ`` (Equation 5)."""
        return d_matrix(self.h, self.p, self.q)

    def r2(self, *, undefined: float = np.nan) -> np.ndarray:
        """r² matrix (Equation 2); *undefined* fills monomorphic pairs."""
        return r_squared_matrix(self.h, self.p, self.q, undefined=undefined)

    def d_prime(self, *, undefined: float = np.nan) -> np.ndarray:
        """Lewontin's D' matrix; *undefined* fills monomorphic pairs."""
        return d_prime_matrix(self.h, self.p, self.q, undefined=undefined)

    def stat(self, name: str, *, undefined: float = np.nan) -> np.ndarray:
        """Dispatch by statistic name: ``"r2"``, ``"D"``, ``"Dprime"``, ``"H"``."""
        if name == "r2":
            return self.r2(undefined=undefined)
        if name == "D":
            return self.d
        if name == "Dprime":
            return self.d_prime(undefined=undefined)
        if name == "H":
            return self.h
        raise ValueError(f"unknown LD statistic {name!r}; choose from {_STATS}")


def compute_ld(
    data: BitMatrix | np.ndarray,
    other: BitMatrix | np.ndarray | None = None,
    *,
    params: BlockingParams | None = None,
    kernel: str = DEFAULT_KERNEL,
    n_threads: int = 1,
) -> LDResult:
    """Run the GEMM pipeline and return the full :class:`LDResult`.

    With *other* omitted this is the symmetric single-region case (Fig. 3);
    with *other* given, the two-region cross case (Fig. 4).
    """
    a = as_bitmatrix(data)
    if a.n_samples == 0:
        raise ValueError("LD undefined for zero samples")
    if other is None:
        counts = popcount_gemm_parallel(
            a.words, None, n_threads=n_threads, params=params, kernel=kernel
        )
        p = a.allele_frequencies()
        return LDResult(counts=counts, p=p, q=p, n_samples=a.n_samples)
    b = as_bitmatrix(other)
    if b.n_samples != a.n_samples:
        raise ValueError(
            f"sample counts differ: {a.n_samples} vs {b.n_samples}; "
            "cross-LD requires one shared sample set"
        )
    counts = popcount_gemm_parallel(
        a.words, b.words, n_threads=n_threads, params=params, kernel=kernel
    )
    return LDResult(
        counts=counts,
        p=a.allele_frequencies(),
        q=b.allele_frequencies(),
        n_samples=a.n_samples,
    )


def ld_matrix(
    data: BitMatrix | np.ndarray,
    stat: str = "r2",
    *,
    params: BlockingParams | None = None,
    kernel: str = DEFAULT_KERNEL,
    n_threads: int = 1,
    undefined: float = np.nan,
) -> np.ndarray:
    """All-pairs LD matrix over one SNP region (the headline operation).

    Parameters
    ----------
    data:
        Dense binary ``(n_samples, n_snps)`` matrix or packed
        :class:`BitMatrix`.
    stat:
        ``"r2"`` (default, Equation 2), ``"D"`` (Equation 1), ``"Dprime"``,
        or ``"H"`` (raw haplotype frequencies).
    params, kernel, n_threads:
        GEMM engine knobs (blocking parameters, micro-kernel, threads).
    undefined:
        Fill value for pairs involving monomorphic SNPs (r²/D' only).
    """
    return compute_ld(
        data, params=params, kernel=kernel, n_threads=n_threads
    ).stat(stat, undefined=undefined)


def ld_cross(
    a: BitMatrix | np.ndarray,
    b: BitMatrix | np.ndarray,
    stat: str = "r2",
    *,
    params: BlockingParams | None = None,
    kernel: str = DEFAULT_KERNEL,
    n_threads: int = 1,
    undefined: float = np.nan,
) -> np.ndarray:
    """LD between SNPs of two regions/matrices over the same samples (Fig. 4).

    Computes the full ``m × n`` rectangle (no symmetry), supporting the
    paper's long-range-LD and distant-gene-association use case.
    """
    return compute_ld(
        a, b, params=params, kernel=kernel, n_threads=n_threads
    ).stat(stat, undefined=undefined)


def ld_pairs(
    data: BitMatrix | np.ndarray,
    pairs: np.ndarray,
    stat: str = "r2",
    *,
    undefined: float = np.nan,
) -> np.ndarray:
    """LD for an explicit list of SNP pairs, without forming the full matrix.

    This is the vector-operation path the paper's Section II-B pseudocode
    describes (and that OmegaPlus-style region-restricted scans need): each
    pair costs one AND+POPCNT pass over the packed words.

    Parameters
    ----------
    pairs:
        Integer array of shape ``(n_pairs, 2)`` of SNP index pairs.
    """
    matrix = as_bitmatrix(data)
    pairs = np.asarray(pairs)
    if pairs.ndim != 2 or pairs.shape[1] != 2:
        raise ValueError(f"pairs must have shape (n_pairs, 2), got {pairs.shape}")
    if pairs.size and (pairs.min() < 0 or pairs.max() >= matrix.n_snps):
        raise ValueError("pair indices out of range")
    n = float(matrix.n_samples)
    left = matrix.words[pairs[:, 0]]
    right = matrix.words[pairs[:, 1]]
    joint = np.bitwise_count(left & right).sum(axis=1, dtype=np.int64)
    freqs = matrix.allele_frequencies()
    p = freqs[pairs[:, 0]]
    q = freqs[pairs[:, 1]]
    h = joint / n
    d = h - p * q
    if stat == "D":
        return d
    if stat == "H":
        return h
    if stat == "r2":
        denom = p * q * (1.0 - p) * (1.0 - q)
        with np.errstate(divide="ignore", invalid="ignore"):
            return np.where(denom > 0.0, d * d / denom, undefined)
    if stat == "Dprime":
        pos_max = np.minimum(p * (1.0 - q), (1.0 - p) * q)
        neg_max = np.minimum(p * q, (1.0 - p) * (1.0 - q))
        d_max = np.where(d >= 0.0, pos_max, neg_max)
        polymorphic = (p > 0) & (p < 1) & (q > 0) & (q < 1)
        with np.errstate(divide="ignore", invalid="ignore"):
            d_prime = np.where(d_max > 0.0, d / d_max, 0.0)
        return np.where(polymorphic, d_prime, undefined)
    raise ValueError(f"unknown LD statistic {stat!r}; choose from {_STATS}")
