"""Allele and haplotype frequencies as linear-algebra operations (Section II-A).

Equations 3 and 4 of the paper:

    P_i   = s_iᵀ s_i / N_seq          (allele frequency; popcount of SNP i)
    P_ij  = s_iᵀ s_j / N_seq          (haplotype frequency; joint popcount)

Over the bit-packed representation both reduce to popcounts of AND-ed word
streams; the all-pairs haplotype-frequency matrix ``H = (1/N_seq) GᵀG`` is
the GEMM of Section II-B, delegated to :mod:`repro.core.gemm`.
"""

from __future__ import annotations

import numpy as np

from repro.core.blocking import DEFAULT_BLOCKING, BlockingParams
from repro.core.gemm import popcount_gemm, popcount_gram
from repro.encoding.bitmatrix import BitMatrix

__all__ = [
    "allele_frequencies",
    "haplotype_frequencies",
    "haplotype_frequencies_cross",
]


def allele_frequencies(matrix: BitMatrix) -> np.ndarray:
    """Per-SNP derived-allele frequencies ``p`` (Equation 3)."""
    return matrix.allele_frequencies()


def haplotype_frequencies(
    matrix: BitMatrix,
    *,
    params: BlockingParams = DEFAULT_BLOCKING,
    kernel: str = "numpy",
) -> np.ndarray:
    """All-pairs haplotype-frequency matrix ``H = (1/N_seq) GᵀG`` (Section II-B).

    Exploits symmetry: only the N(N+1)/2 lower-triangle counts are computed
    and mirrored.
    """
    if matrix.n_samples == 0:
        raise ValueError("haplotype frequencies undefined for zero samples")
    counts = popcount_gram(matrix.words, params=params, kernel=kernel)
    return counts / float(matrix.n_samples)


def haplotype_frequencies_cross(
    a: BitMatrix,
    b: BitMatrix,
    *,
    params: BlockingParams = DEFAULT_BLOCKING,
    kernel: str = "numpy",
) -> np.ndarray:
    """Haplotype frequencies between SNPs of two genomic matrices.

    The two-input case of the paper's Figure 4 (long-range LD, distant-gene
    association): all ``m × n`` frequencies are computed, with no symmetry to
    exploit. Both matrices must cover the same samples.
    """
    if a.n_samples != b.n_samples:
        raise ValueError(
            f"sample counts differ: {a.n_samples} vs {b.n_samples}; "
            "cross-LD requires the same sample set"
        )
    if a.n_samples == 0:
        raise ValueError("haplotype frequencies undefined for zero samples")
    counts = popcount_gemm(a.words, b.words, params=params, kernel=kernel)
    return counts / float(a.n_samples)
