"""Operand packing for the blocked LD GEMM (GotoBLAS layers, Figure 1).

GotoBLAS packs each cache block of A and each cache panel of B into
contiguous buffers laid out in *micro-panel* order, so that the micro-kernel
streams both operands with unit stride:

- the packed A block stores ``mr``-row slivers back to back: element order is
  ``(row-sliver, k, row-within-sliver)``;
- the packed B panel stores ``nr``-column slivers back to back: element order
  is ``(col-sliver, k, col-within-sliver)``.

Slivers at the fringe (when the block size is not a multiple of ``mr``/``nr``)
are zero-padded to full width — zero words are inert under AND/POPCNT, so the
micro-kernel never needs a fringe case, mirroring how BLIS handles edge tiles.

Elements here are ``uint64`` packed-allele words; the layout math is identical
to the double-precision original.
"""

from __future__ import annotations

import numpy as np

__all__ = ["pack_block_a", "pack_panel_b", "micropanel_a", "micropanel_b"]


def pack_block_a(a_words: np.ndarray, mr: int) -> np.ndarray:
    """Pack an ``(m, k)`` block of A into micro-panel order.

    Returns an array of shape ``(ceil(m / mr), k, mr)`` — sliver-major,
    then k, then row-within-sliver — zero-padded in the last sliver.
    The micro-kernel reads ``packed[s, p, :]`` as the ``mr`` A-words of
    rank-1-update step ``p``; those reads are unit-stride.
    """
    a_words = np.asarray(a_words, dtype=np.uint64)
    if a_words.ndim != 2:
        raise ValueError(f"A block must be 2-D, got shape {a_words.shape}")
    m, k = a_words.shape
    n_slivers = (m + mr - 1) // mr
    packed = np.zeros((n_slivers, k, mr), dtype=np.uint64)
    for s in range(n_slivers):
        rows = a_words[s * mr : (s + 1) * mr]
        packed[s, :, : rows.shape[0]] = rows.T
    return packed


def pack_panel_b(b_words: np.ndarray, nr: int) -> np.ndarray:
    """Pack a ``(k, n)`` panel of B into micro-panel order.

    Returns shape ``(ceil(n / nr), k, nr)`` — sliver-major, then k, then
    column-within-sliver — zero-padded in the last sliver.
    """
    b_words = np.asarray(b_words, dtype=np.uint64)
    if b_words.ndim != 2:
        raise ValueError(f"B panel must be 2-D, got shape {b_words.shape}")
    k, n = b_words.shape
    n_slivers = (n + nr - 1) // nr
    packed = np.zeros((n_slivers, k, nr), dtype=np.uint64)
    for s in range(n_slivers):
        cols = b_words[:, s * nr : (s + 1) * nr]
        packed[s, :, : cols.shape[1]] = cols
    return packed


def micropanel_a(packed_a: np.ndarray, sliver: int) -> np.ndarray:
    """The ``(k, mr)`` A micro-panel for one row sliver."""
    return packed_a[sliver]


def micropanel_b(packed_b: np.ndarray, sliver: int) -> np.ndarray:
    """The ``(k, nr)`` B micro-panel for one column sliver."""
    return packed_b[sliver]
