"""Operand packing for the blocked LD GEMM (GotoBLAS layers, Figure 1).

GotoBLAS packs each cache block of A and each cache panel of B into
contiguous buffers laid out in *micro-panel* order, so that the micro-kernel
streams both operands with unit stride:

- the packed A block stores ``mr``-row slivers back to back: element order is
  ``(row-sliver, k, row-within-sliver)``;
- the packed B panel stores ``nr``-column slivers back to back: element order
  is ``(col-sliver, k, col-within-sliver)``.

Slivers at the fringe (when the block size is not a multiple of ``mr``/``nr``)
are zero-padded to full width — zero words are inert under AND/POPCNT, so the
micro-kernel never needs a fringe case, mirroring how BLIS handles edge tiles.

Packing is vectorized: full slivers move through one view-preserving
``reshape``/``transpose`` assignment instead of a per-sliver Python loop, and
the ``*_into`` variants write into caller-owned scratch (see
:class:`repro.core.macrokernel.GemmWorkspace`) so the hot loop performs no
allocation. When a B sliver is already contiguous in micro-panel order the
copy is skipped entirely and a view is returned.

Elements here are ``uint64`` packed-allele words; the layout math is identical
to the double-precision original.
"""

from __future__ import annotations

import numpy as np

__all__ = [
    "pack_block_a",
    "pack_block_a_into",
    "pack_panel_b",
    "pack_panel_b_into",
    "micropanel_a",
    "micropanel_b",
]


def _pack_rows_into(words: np.ndarray, mr: int, out: np.ndarray) -> np.ndarray:
    """Pack row-major ``(m, k)`` *words* into ``out[:ceil(m/mr), :k, :mr]``.

    Full slivers are written through a single transposed-view assignment
    (no temporaries); only the fringe sliver takes a separate (still
    vectorized) path. Returns the trimmed ``(n_slivers, k, mr)`` view.
    """
    m, k = words.shape
    n_full = m // mr
    n_slivers = (m + mr - 1) // mr
    packed = out[:n_slivers, :k]
    if n_full:
        # (n_full, k, mr) viewed as (n_full, mr, k): axis-0 split keeps the
        # source a view, so the assignment is one strided copy.
        packed[:n_full].transpose(0, 2, 1)[...] = words[: n_full * mr].reshape(
            n_full, mr, k
        )
    rem = m - n_full * mr
    if rem:
        packed[n_full, :, :rem] = words[n_full * mr :].T
        packed[n_full, :, rem:] = 0
    return packed


def pack_block_a_into(
    a_words: np.ndarray, mr: int, out: np.ndarray
) -> np.ndarray:
    """Pack an ``(m, k)`` block of A into preallocated micro-panel scratch.

    ``out`` must be a ``uint64`` buffer of shape at least
    ``(ceil(m / mr), k, mr)``; the trimmed packed view is returned. Layout
    matches :func:`pack_block_a` exactly.
    """
    a_words = np.asarray(a_words, dtype=np.uint64)
    if a_words.ndim != 2:
        raise ValueError(f"A block must be 2-D, got shape {a_words.shape}")
    return _pack_rows_into(a_words, mr, out)


def pack_block_a(a_words: np.ndarray, mr: int) -> np.ndarray:
    """Pack an ``(m, k)`` block of A into micro-panel order.

    Returns an array of shape ``(ceil(m / mr), k, mr)`` — sliver-major,
    then k, then row-within-sliver — zero-padded in the last sliver.
    The micro-kernel reads ``packed[s, p, :]`` as the ``mr`` A-words of
    rank-1-update step ``p``; those reads are unit-stride.
    """
    a_words = np.asarray(a_words, dtype=np.uint64)
    if a_words.ndim != 2:
        raise ValueError(f"A block must be 2-D, got shape {a_words.shape}")
    m, k = a_words.shape
    n_slivers = (m + mr - 1) // mr
    packed = np.empty((n_slivers, k, mr), dtype=np.uint64)
    return _pack_rows_into(a_words, mr, packed)


def pack_panel_b_into(
    b_words: np.ndarray, nr: int, out: np.ndarray
) -> np.ndarray:
    """Pack a ``(k, n)`` panel of B into preallocated micro-panel scratch.

    When the panel is a single full sliver (``n == nr``) and already
    C-contiguous, it *is* its own micro-panel: the copy is skipped and a
    reshaped view of the input is returned instead of touching ``out``.
    """
    b_words = np.asarray(b_words, dtype=np.uint64)
    if b_words.ndim != 2:
        raise ValueError(f"B panel must be 2-D, got shape {b_words.shape}")
    k, n = b_words.shape
    if n == nr and b_words.flags.c_contiguous:
        return b_words.reshape(1, k, nr)
    n_slivers = (n + nr - 1) // nr
    n_full = n // nr
    packed = out[:n_slivers, :k]
    if n_full:
        # Splitting the unit-stride column axis keeps the source a view, so
        # the assignment is one strided copy with no temporary.
        src = b_words[:, : n_full * nr].reshape(k, n_full, nr)
        packed[:n_full][...] = src.transpose(1, 0, 2)
    rem = n - n_full * nr
    if rem:
        packed[n_full, :, :rem] = b_words[:, n_full * nr :]
        packed[n_full, :, rem:] = 0
    return packed


def pack_panel_b(b_words: np.ndarray, nr: int) -> np.ndarray:
    """Pack a ``(k, n)`` panel of B into micro-panel order.

    Returns shape ``(ceil(n / nr), k, nr)`` — sliver-major, then k, then
    column-within-sliver — zero-padded in the last sliver. Contiguous
    single-sliver panels are returned as views without copying.
    """
    b_words = np.asarray(b_words, dtype=np.uint64)
    if b_words.ndim != 2:
        raise ValueError(f"B panel must be 2-D, got shape {b_words.shape}")
    k, n = b_words.shape
    if n == nr and b_words.flags.c_contiguous:
        return b_words.reshape(1, k, nr)
    n_slivers = (n + nr - 1) // nr
    packed = np.empty((n_slivers, k, nr), dtype=np.uint64)
    return pack_panel_b_into(b_words, nr, packed)


def micropanel_a(packed_a: np.ndarray, sliver: int) -> np.ndarray:
    """The ``(k, mr)`` A micro-panel for one row sliver."""
    return packed_a[sliver]


def micropanel_b(packed_b: np.ndarray, sliver: int) -> np.ndarray:
    """The ``(k, nr)`` B micro-panel for one column sliver."""
    return packed_b[sliver]
