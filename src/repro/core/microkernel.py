"""LD micro-kernels: the innermost AND/POPCNT/ADD loop (paper Section IV-A).

The BLIS micro-kernel computes ``C += A·B`` for an ``m_r × n_r`` tile of C as
``k_c`` successive rank-1 updates. For LD, one "multiply-add" becomes

    C[i, j] += POPCNT(a_word[i] & b_word[j])

over packed 64-bit allele words (the paper's key kernel substitution). Two
interchangeable implementations are provided:

``microkernel_scalar``
    A pure-Python transcription of the paper's C micro-kernel: the explicit
    ``k_c``-deep loop of rank-1 updates over an ``m_r × n_r`` accumulator
    block. It exists as the executable specification — the numpy kernel and
    the machine model are both validated against it — and is deliberately
    *not* vectorized.

``microkernel_numpy``
    The production kernel: one broadcast ``bitwise_and`` + ``bitwise_count``
    + sum over the k axis. With the enlarged "virtual register tile"
    (:data:`repro.core.blocking.DEFAULT_BLOCKING`) the interpreter overhead
    per invocation is amortized the same way a hardware kernel amortizes
    loop-control overhead.

Both consume the packed micro-panels produced by :mod:`repro.core.packing`:
``a_panel`` of shape ``(k_c, m_r)`` and ``b_panel`` of shape ``(k_c, n_r)``,
and accumulate into a ``(m_r, n_r)`` ``int64`` tile of C.
"""

from __future__ import annotations

from collections.abc import Callable

import numpy as np

__all__ = ["MICRO_KERNELS", "microkernel_numpy", "microkernel_scalar"]


def microkernel_numpy(
    a_panel: np.ndarray, b_panel: np.ndarray, c_tile: np.ndarray
) -> None:
    """Vectorized micro-kernel: ``C += Σ_k POPCNT(a[k,:,None] & b[k,None,:])``.

    Parameters
    ----------
    a_panel:
        ``(k_c, m_r)`` packed A micro-panel (uint64 words).
    b_panel:
        ``(k_c, n_r)`` packed B micro-panel (uint64 words).
    c_tile:
        ``(m_r, n_r)`` int64 accumulator, updated in place.
    """
    # Broadcast to (k_c, m_r, n_r); sum over k first to keep one pass.
    joint = a_panel[:, :, None] & b_panel[:, None, :]
    c_tile += np.bitwise_count(joint).sum(axis=0, dtype=np.int64)


def microkernel_scalar(
    a_panel: np.ndarray, b_panel: np.ndarray, c_tile: np.ndarray
) -> None:
    """Pure-Python reference micro-kernel (executable specification).

    Mirrors the paper's kernel structure instruction-for-instruction: for
    each of the ``k_c`` steps, load ``m_r`` A-words and ``n_r`` B-words, and
    perform ``m_r · n_r`` AND / POPCNT / ADD triples into the accumulator
    tile held in "registers" (a Python list of lists).
    """
    k_c, m_r = a_panel.shape
    n_r = b_panel.shape[1]
    if b_panel.shape[0] != k_c:
        raise ValueError(
            f"panel k mismatch: A has k_c={k_c}, B has k_c={b_panel.shape[0]}"
        )
    # Accumulators live in Python ints for the duration of the kernel, the
    # analogue of keeping the C micro-tile in registers.
    acc = [[0] * n_r for _ in range(m_r)]
    a_list = a_panel.tolist()
    b_list = b_panel.tolist()
    for p in range(k_c):
        a_words = a_list[p]
        b_words = b_list[p]
        for i in range(m_r):
            a_word = a_words[i]
            row = acc[i]
            for j in range(n_r):
                row[j] += (a_word & b_words[j]).bit_count()
    c_tile += np.asarray(acc, dtype=np.int64)


MICRO_KERNELS: dict[str, Callable[[np.ndarray, np.ndarray, np.ndarray], None]] = {
    "numpy": microkernel_numpy,
    "scalar": microkernel_scalar,
}
