"""Genotype-domain r² as popcount GEMMs (closing the paper's PLINK gap).

The paper's comparison notes a scope difference: "the focus of PLINK 1.9
is on genotypes, whereas the focus of OmegaPlus and GEMM is on alleles"
(Section VI) — and then beats PLINK on *allele*-domain work. This module
shows the gap is not fundamental: PLINK's own statistic — the squared
Pearson correlation of diploid dosages X, Y ∈ {0, 1, 2} — also reduces to
popcount GEMMs over the 2-bit genotype encoding's bit planes.

With per-variant planes (one bit per individual)

    C = carrier  (dosage ≥ 1 :  het or hom-alt)
    H = hom-alt  (dosage = 2)
    V = valid    (genotype present)

and dosage ``X = C + H`` as an integer identity on indicator bits, every
moment the correlation needs is a joint popcount over a pair's jointly
valid samples:

    n      = |V_i ∧ V_j|                                gram(V)
    ΣX     = |C_i ∧ V_j| + |H_i ∧ V_j|                  gemm(C,V), gemm(H,V)
    ΣX²    = |C_i ∧ V_j| + 3·|H_i ∧ V_j|                (X² = C + 3H)
    ΣXY    = |C_i∧C_j| + |C_i∧H_j| + |H_i∧C_j| + |H_i∧H_j|
                                                        gram(C), gemm(C,H), gram(H)

— six distinct GEMMs for the full N(N+1)/2 genotype-r² matrix, versus
PLINK's per-pair traversal. The masking trick mirrors the paper's own
gap-aware extension (Section VII): planes are pre-ANDed with V, so
``C_i ∧ V_j = C_i ∧ (V_i ∧ V_j)`` automatically.
"""

from __future__ import annotations

import numpy as np

from repro.baselines.plink import PlinkPlanes, prepare_planes
from repro.core.blocking import BlockingParams
from repro.core.gemm import DEFAULT_KERNEL, popcount_gemm, popcount_gram
from repro.encoding.genotypes import GenotypeMatrix

__all__ = ["genotype_r2_matrix"]


def genotype_r2_matrix(
    genotypes: GenotypeMatrix,
    *,
    params: BlockingParams | None = None,
    kernel: str = DEFAULT_KERNEL,
    undefined: float = np.nan,
) -> np.ndarray:
    """All-pairs genotype (dosage) r² via six blocked popcount GEMMs.

    Numerically identical to the per-pair PLINK baseline
    (:func:`repro.baselines.plink.plink_r2_matrix`), including
    missing-data handling: every moment is computed over each pair's
    jointly valid individuals.

    Parameters
    ----------
    genotypes:
        Packed 2-bit genotype matrix.
    undefined:
        Fill for pairs with zero dosage variance on either side (or no
        jointly valid individuals).
    """
    planes: PlinkPlanes = prepare_planes(genotypes)
    c = planes.carrier  # already masked by validity
    h = planes.homalt
    v = planes.valid

    def gemm(a, b):
        return popcount_gemm(a, b, params=params, kernel=kernel).astype(
            np.float64
        )

    def gram(a):
        return popcount_gram(a, params=params, kernel=kernel).astype(np.float64)

    n = gram(v)
    cv = gemm(c, v)   # cv[i, j] = |C_i ∧ V_j| = Σ over joint-valid of (X_i ≥ 1)
    hv = gemm(h, v)
    cc = gram(c)
    hh = gram(h)
    ch = gemm(c, h)   # ch[i, j] = |C_i ∧ H_j|

    sum_x = cv + hv              # row variant's dosage sum, per column pair
    sum_y = cv.T + hv.T          # column variant's dosage sum
    sum_x2 = cv + 3.0 * hv       # X² = C + 3H on indicator bits
    sum_y2 = cv.T + 3.0 * hv.T
    sum_xy = cc + ch + ch.T + hh  # (C_i+H_i)(C_j+H_j) expanded

    with np.errstate(divide="ignore", invalid="ignore"):
        mean_x = sum_x / n
        mean_y = sum_y / n
        var_x = sum_x2 / n - mean_x**2
        var_y = sum_y2 / n - mean_y**2
        cov = sum_xy / n - mean_x * mean_y
        denom = var_x * var_y
        r2 = np.where((n > 0) & (denom > 0), cov * cov / denom, undefined)
    return r2
