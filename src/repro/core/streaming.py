"""Out-of-core LD: stream the matrix block by block to a sink.

At the paper's Dataset scale a full r² matrix is 10,000² × 8 bytes =
800 MB — fine — but a million-SNP chromosome would need 8 TB, so
production use streams results instead of materializing them. This module
runs the same blocked GEMM engine tile by tile and hands each finished
block of the (lower-triangle) statistic matrix to a caller-supplied sink:

- :class:`NpyMemmapSink` writes into a disk-backed ``.npy`` memmap (the
  full-matrix-on-disk mode);
- :class:`ThresholdCollector` keeps only pairs above a threshold (the
  sparse "report interesting pairs" mode PLINK's ``--r2`` output uses);
- any callable ``sink(i0, j0, block)`` works.

Tile geometry and per-tile computation are shared with the sharded
execution engine (:mod:`repro.core.engine`): this module is the simple
single-pass driver over :func:`repro.core.engine.enumerate_tiles`, while
:func:`repro.core.engine.run_engine` schedules the same tiles over worker
pools with checkpoint/resume.

Peak memory is one ``block × block`` tile plus the packed inputs,
independent of the number of SNPs.
"""

from __future__ import annotations

import time
from dataclasses import dataclass, field
from pathlib import Path
from typing import TYPE_CHECKING

import numpy as np

from repro.core.blocking import BlockingParams
from repro.core.gemm import DEFAULT_KERNEL
from repro.core.engine import (
    TileCorruptionError,
    _crc32_array,
    compute_tile,
    enumerate_tiles,
)
from repro.core.ldmatrix import as_bitmatrix
from repro.core.windowed import write_banded_block
from repro.encoding.bitmatrix import BitMatrix
from repro.faults import FaultPlan
from repro.observe.spans import span

if TYPE_CHECKING:  # imported lazily to keep core free of observe at runtime
    from repro.observe.metrics import MetricsRecorder
    from repro.observe.progress import ProgressReporter

__all__ = [
    "BandedNpySink",
    "NpyMemmapSink",
    "ThresholdCollector",
    "stream_ld_blocks",
]

#: Strict-upper-triangle boolean masks by block size, for mirroring
#: diagonal blocks. A run sees at most two sizes (full blocks plus one
#: fringe), so caching removes the O(block²) index-array allocation the
#: old ``tril_indices`` mirror paid on *every* diagonal tile.
_UPPER_MASKS: dict[int, np.ndarray] = {}


def _upper_mask(size: int) -> np.ndarray:
    mask = _UPPER_MASKS.get(size)
    if mask is None:
        mask = np.triu(np.ones((size, size), dtype=bool), k=1)
        _UPPER_MASKS[size] = mask
    return mask


@dataclass
class NpyMemmapSink:
    """Sink writing blocks into a disk-backed full matrix (``.npy``).

    The lower-triangle blocks delivered by :func:`stream_ld_blocks` are
    mirrored on write, so the finished file holds the full symmetric
    matrix.

    The sink is a context manager; leaving the ``with`` block flushes and
    releases the memmap deterministically (CPython's memmap finalizer only
    flushes at garbage-collection time, which is too late for a resumed
    run that reopens the file to read completed tiles back).

    Parameters
    ----------
    path:
        Output ``.npy`` path.
    n_snps:
        Matrix side length.
    mode:
        ``"w+"`` (default) creates/truncates the file; ``"r+"`` reopens an
        existing matrix in place — the mode checkpoint/resume runs use so
        previously completed tiles survive the reopen.
    """

    path: str | Path
    n_snps: int
    mode: str = "w+"
    _memmap: np.memmap | None = field(default=None, repr=False)

    def __post_init__(self) -> None:
        if self.n_snps <= 0:
            raise ValueError(f"n_snps must be positive, got {self.n_snps}")
        if self.mode not in ("w+", "r+"):
            raise ValueError(f"mode must be 'w+' or 'r+', got {self.mode!r}")
        shape = (self.n_snps, self.n_snps)
        if self.mode == "r+":
            # A resumed run reopens whatever is on disk and then writes
            # through it, so refuse anything that is not exactly the
            # matrix a previous run of this shape would have produced —
            # silently memmapping a mismatched file would scatter tiles
            # into garbage offsets.
            try:
                memmap = np.lib.format.open_memmap(str(self.path), mode="r+")
            except FileNotFoundError as exc:
                raise ValueError(
                    f"cannot reopen {self.path} with mode='r+': file does "
                    "not exist (rerun without resume to create it)"
                ) from exc
            except ValueError as exc:
                raise ValueError(
                    f"cannot reopen {self.path} with mode='r+': not a "
                    f"readable .npy file ({exc}); delete it or rerun "
                    "without resume"
                ) from exc
            if memmap.shape != shape or memmap.dtype != np.float64:
                found_shape, found_dtype = memmap.shape, memmap.dtype
                del memmap  # release before raising
                raise ValueError(
                    f"existing matrix at {self.path} has shape "
                    f"{found_shape} dtype {found_dtype}; expected "
                    f"{shape} float64 — it was not produced by an "
                    "equivalent run; delete it or rerun without resume"
                )
            if not memmap.flags["C_CONTIGUOUS"]:
                del memmap
                raise ValueError(
                    f"existing matrix at {self.path} is Fortran-ordered; "
                    f"expected C-ordered {shape} float64 — delete it or "
                    "rerun without resume"
                )
            self._memmap = memmap
        else:
            self._memmap = np.lib.format.open_memmap(
                str(self.path), mode="w+", dtype=np.float64, shape=shape,
            )

    def __call__(self, i0: int, j0: int, block: np.ndarray) -> None:
        if self._memmap is None:
            raise ValueError(f"sink for {self.path} is closed")
        mm = self._memmap
        mm[i0 : i0 + block.shape[0], j0 : j0 + block.shape[1]] = block
        with span("mirror"):
            if i0 != j0:
                mm[j0 : j0 + block.shape[1], i0 : i0 + block.shape[0]] = (
                    block.T
                )
            else:
                # Diagonal block: fill its strict upper triangle with the
                # transpose of the computed lower triangle. A masked
                # transposed write touches exactly the cells the old
                # fancy-indexed assignment did (bit-identical), without
                # allocating per-call index arrays.
                size = block.shape[0]
                sub = mm[i0 : i0 + size, j0 : j0 + size]
                np.copyto(sub, block.T, where=_upper_mask(size))

    def flush(self) -> None:
        """Force written blocks to disk (no-op once closed)."""
        if self._memmap is not None:
            self._memmap.flush()

    def close(self) -> None:
        """Flush and release the memmap; idempotent."""
        if self._memmap is not None:
            self._memmap.flush()
            self._memmap = None

    def __enter__(self) -> "NpyMemmapSink":
        return self

    def __exit__(self, *exc_info: object) -> None:
        self.close()


@dataclass
class BandedNpySink:
    """Sink writing banded runs into a diagonal-major ``.npy`` memmap.

    The on-disk array is the ``(n_snps, window + 1)`` layout
    :class:`repro.core.windowed.BandedLDMatrix` defines — ``values[i, d]``
    holds the statistic for pair ``(i, i + d)`` — so a banded engine run
    writes O(n·W) bytes instead of the O(n²) a dense memmap would cost.
    Out-of-band cells of delivered tiles are ignored on write; slots the
    band never covers (trailing diagonals past the last SNP, genomic
    bands narrower than *window* at some loci) stay NaN.

    Same contract as :class:`NpyMemmapSink`: a context manager with
    deterministic flush/close, ``"w+"`` to create (NaN-filled) and
    ``"r+"`` to reopen for checkpoint/resume, with the same refuse-loudly
    validation of a mismatched existing file.

    Parameters
    ----------
    path:
        Output ``.npy`` path.
    n_snps:
        Number of SNPs (first dimension).
    window:
        Maximum stored index distance; the second dimension is
        ``window + 1``. For genomic bands pass the band's
        ``index_width(n_snps)``.
    mode:
        ``"w+"`` (default) creates/truncates; ``"r+"`` reopens in place.
    """

    path: str | Path
    n_snps: int
    window: int
    mode: str = "w+"
    _memmap: np.memmap | None = field(default=None, repr=False)

    def __post_init__(self) -> None:
        if self.n_snps <= 0:
            raise ValueError(f"n_snps must be positive, got {self.n_snps}")
        if self.window < 0:
            raise ValueError(
                f"window must be non-negative, got {self.window}"
            )
        if self.mode not in ("w+", "r+"):
            raise ValueError(f"mode must be 'w+' or 'r+', got {self.mode!r}")
        shape = (self.n_snps, self.window + 1)
        if self.mode == "r+":
            try:
                memmap = np.lib.format.open_memmap(str(self.path), mode="r+")
            except FileNotFoundError as exc:
                raise ValueError(
                    f"cannot reopen {self.path} with mode='r+': file does "
                    "not exist (rerun without resume to create it)"
                ) from exc
            except ValueError as exc:
                raise ValueError(
                    f"cannot reopen {self.path} with mode='r+': not a "
                    f"readable .npy file ({exc}); delete it or rerun "
                    "without resume"
                ) from exc
            if memmap.shape != shape or memmap.dtype != np.float64:
                found_shape, found_dtype = memmap.shape, memmap.dtype
                del memmap  # release before raising
                raise ValueError(
                    f"existing banded matrix at {self.path} has shape "
                    f"{found_shape} dtype {found_dtype}; expected "
                    f"{shape} float64 — it was not produced by an "
                    "equivalent run; delete it or rerun without resume"
                )
            if not memmap.flags["C_CONTIGUOUS"]:
                del memmap
                raise ValueError(
                    f"existing banded matrix at {self.path} is "
                    f"Fortran-ordered; expected C-ordered {shape} float64 "
                    "— delete it or rerun without resume"
                )
            self._memmap = memmap
        else:
            memmap = np.lib.format.open_memmap(
                str(self.path), mode="w+", dtype=np.float64, shape=shape,
            )
            # NaN is the band's "never covered" value (the BandedLDMatrix
            # convention); a fresh zero-filled memmap would read as r²=0.
            memmap[:] = np.nan
            self._memmap = memmap

    def __call__(self, i0: int, j0: int, block: np.ndarray) -> None:
        if self._memmap is None:
            raise ValueError(f"sink for {self.path} is closed")
        write_banded_block(self._memmap, self.window, i0, j0, block)

    def flush(self) -> None:
        """Force written blocks to disk (no-op once closed)."""
        if self._memmap is not None:
            self._memmap.flush()

    def close(self) -> None:
        """Flush and release the memmap; idempotent."""
        if self._memmap is not None:
            self._memmap.flush()
            self._memmap = None

    def __enter__(self) -> "BandedNpySink":
        return self

    def __exit__(self, *exc_info: object) -> None:
        self.close()


@dataclass
class ThresholdCollector:
    """Sink keeping only pairs with statistic ≥ threshold (sparse mode).

    Collects each qualifying unordered SNP pair exactly once, as
    ``(i, j, value)`` with ``i > j``; self-pairs are excluded.

    Delivery is *idempotent per tile*: results are keyed by the tile's
    ``(i0, j0)`` corner, and a re-delivered tile (a retried engine batch,
    a resumed run recomputing an unjournaled tile, a torn-manifest
    replay) replaces its previous hits instead of appending duplicates.
    Hit extraction is vectorized — no per-hit Python loop.
    """

    threshold: float
    _tiles: dict[tuple[int, int], tuple] = field(
        default_factory=dict, repr=False
    )

    def __call__(self, i0: int, j0: int, block: np.ndarray) -> None:
        bi, bj = np.nonzero(block >= self.threshold)
        i, j = bi + i0, bj + j0
        keep = i > j  # strict lower triangle only (dedup + no self-pairs)
        self._tiles[(i0, j0)] = (
            i[keep],
            j[keep],
            block[bi[keep], bj[keep]].astype(np.float64, copy=False),
        )

    @property
    def pairs(self) -> list[tuple[int, int, float]]:
        """Collected ``(i, j, value)`` pairs, in tile-then-row-major order.

        Deterministic regardless of delivery order (parallel engines
        deliver tiles as they finish), and matches the historical
        serial-streaming order exactly.
        """
        out: list[tuple[int, int, float]] = []
        for key in sorted(self._tiles):
            ii, jj, vv = self._tiles[key]
            out.extend(zip(ii.tolist(), jj.tolist(), vv.tolist()))
        return out


def stream_ld_blocks(
    data: "BitMatrix | np.ndarray | str | Path",
    sink,
    *,
    stat: str = "r2",
    block_snps: int = 512,
    params: BlockingParams | None = None,
    kernel: str = DEFAULT_KERNEL,
    undefined: float = np.nan,
    include_diagonal_blocks: bool = True,
    memory_budget: int | None = None,
    faults: FaultPlan | None = None,
    recorder: "MetricsRecorder | None" = None,
    progress: "ProgressReporter | None" = None,
) -> int:
    """Stream the lower-triangle LD matrix through *sink* block by block.

    For every block pair ``(I, J)`` with ``I >= J`` the statistic block is
    computed with one rectangular GEMM and passed as ``sink(i0, j0,
    block)``. Returns the number of blocks delivered.

    Parameters
    ----------
    data:
        Dense binary ``(n_samples, n_snps)`` matrix, packed
        :class:`BitMatrix`, a :class:`repro.io.panelstore.PanelStore`, or
        a path to a packed panel file (out-of-core mode).
    sink:
        Callable ``(i0, j0, block) -> None``.
    stat:
        ``"r2"``, ``"D"``, or ``"H"``.
    block_snps:
        Block side in SNPs; peak temporary memory is
        ``block_snps² × 8`` bytes.
    include_diagonal_blocks:
        Deliver the ``I == J`` blocks (contain the trivial diagonal).
    memory_budget:
        Driver-RAM byte budget for resident panel rows; only valid when
        *data* is a packed panel store (or a path to one). The run then
        streams SNP-row windows from disk through a double-buffered
        :class:`repro.core.prefetch.PanelPrefetcher` instead of holding
        the whole panel in RAM, visiting tiles panel-major so each
        loaded window is fully consumed before eviction.
    faults:
        Optional :class:`repro.faults.FaultPlan`, consulted at the
        ``tile_compute`` and ``tile_deliver`` sites of every block. The
        streaming loop has no retry machinery, so an injected failure
        propagates to the caller; an injected ``bitflip`` is caught by a
        payload checksum and raised as
        :class:`repro.core.engine.TileCorruptionError` rather than
        silently delivered. ``None`` (default) costs one comparison per
        block.
    recorder:
        Optional :class:`repro.observe.MetricsRecorder`; one
        ``tile_computed`` event per delivered block (compute vs. deliver
        seconds, bytes), same vocabulary as the engine. ``None`` (the
        default) costs one comparison per block.
    progress:
        Optional :class:`repro.observe.ProgressReporter`, advanced per
        delivered block.
    """
    if stat not in ("r2", "D", "H"):
        raise ValueError(f"unknown LD statistic {stat!r}; choose r2/D/H")
    from repro.core.engine import _resolve_store

    store = _resolve_store(data)
    if store is not None:
        matrix = store.to_bitmatrix()
        freqs = store.freqs
    else:
        if memory_budget is not None:
            raise ValueError(
                "memory_budget requires a packed panel store (pass a "
                "PanelStore or a path to one); in-RAM inputs are already "
                "resident"
            )
        matrix = as_bitmatrix(data)
        freqs = None
    if matrix.n_samples == 0:
        raise ValueError("LD undefined for zero samples")
    if freqs is None:
        freqs = matrix.allele_frequencies()
    tiles = enumerate_tiles(
        matrix.n_snps, block_snps, include_diagonal=include_diagonal_blocks
    )
    prefetcher = None
    if store is not None:
        from repro.core import prefetch as _pf

        # Panel-major visit order: every tile of a window pair before the
        # next pair, so each loaded window is fully consumed before
        # eviction. With no budget the whole panel "window" is the memmap
        # itself and plain tile order is fine.
        window_rows = block_snps
        if memory_budget is not None:
            _, window_rows = _pf.plan_windows(
                matrix.n_snps,
                block_snps,
                row_nbytes=store.row_nbytes,
                memory_budget=memory_budget,
            )
            prefetcher = _pf.PanelPrefetcher(
                store,
                tiles,
                block_snps=block_snps,
                memory_budget=memory_budget,
                faults=faults,
                recorder=recorder,
            )
        tiles = _pf.order_panel_major(tiles, window_rows)
    try:
        for tile in tiles:
            if faults is not None:
                faults.fire("tile_compute", tile.key, 0)
            source = (
                prefetcher.acquire(tile)
                if prefetcher is not None
                else matrix.words
            )
            try:
                # Acquired before the compute clock starts, so prefetch
                # stall time never masquerades as tile compute time.
                start = time.perf_counter()
                block = compute_tile(
                    source, freqs, matrix.n_samples, tile,
                    stat=stat, params=params, kernel=kernel,
                    undefined=undefined,
                )
            finally:
                if prefetcher is not None:
                    prefetcher.release(tile)
            if faults is not None:
                faults.fire("tile_deliver", tile.key, 0)
                checksum = _crc32_array(block)
                faults.corrupt("tile_deliver", tile.key, 0, block)
                if _crc32_array(block) != checksum:
                    raise TileCorruptionError(
                        f"tile {tile.key} payload corrupted before delivery "
                        "(checksum mismatch); refusing to write it"
                    )
            mid = time.perf_counter() if recorder is not None else 0.0
            sink(tile.i0, tile.j0, block)
            if recorder is not None:
                end = time.perf_counter()
                recorder.inc("stream.tiles_computed")
                recorder.inc("stream.pairs_computed", tile.n_pairs)
                recorder.inc("stream.bytes_delivered", int(block.nbytes))
                recorder.observe_time(
                    "stream.tile_compute_seconds", mid - start
                )
                recorder.observe_time(
                    "stream.tile_deliver_seconds", end - mid
                )
                recorder.event(
                    "tile_computed",
                    tile=[tile.i0, tile.j0],
                    pairs=tile.n_pairs,
                    compute_s=mid - start,
                    deliver_s=end - mid,
                    bytes=int(block.nbytes),
                    worker="driver",
                )
            if progress is not None:
                progress.advance(tile.n_pairs)
    finally:
        if prefetcher is not None:
            prefetcher.close()
        if store is not None and store is not data:
            # Opened here from a path; caller-supplied stores stay open.
            store.close()
    return len(tiles)
