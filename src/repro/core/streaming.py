"""Out-of-core LD: stream the matrix block by block to a sink.

At the paper's Dataset scale a full r² matrix is 10,000² × 8 bytes =
800 MB — fine — but a million-SNP chromosome would need 8 TB, so
production use streams results instead of materializing them. This module
runs the same blocked GEMM engine tile by tile and hands each finished
block of the (lower-triangle) statistic matrix to a caller-supplied sink:

- :class:`NpyMemmapSink` writes into a disk-backed ``.npy`` memmap (the
  full-matrix-on-disk mode);
- :class:`ThresholdCollector` keeps only pairs above a threshold (the
  sparse "report interesting pairs" mode PLINK's ``--r2`` output uses);
- any callable ``sink(i0, j0, block)`` works.

Peak memory is one ``block × block`` tile plus the packed inputs,
independent of the number of SNPs.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from pathlib import Path

import numpy as np

from repro.core.blocking import DEFAULT_BLOCKING, BlockingParams
from repro.core.gemm import popcount_gemm
from repro.core.ldmatrix import as_bitmatrix
from repro.core.stats import r_squared_matrix
from repro.encoding.bitmatrix import BitMatrix

__all__ = ["NpyMemmapSink", "ThresholdCollector", "stream_ld_blocks"]


@dataclass
class NpyMemmapSink:
    """Sink writing blocks into a disk-backed full matrix (``.npy``).

    The lower-triangle blocks delivered by :func:`stream_ld_blocks` are
    mirrored on write, so the finished file holds the full symmetric
    matrix.
    """

    path: str | Path
    n_snps: int
    _memmap: np.memmap | None = field(default=None, repr=False)

    def __post_init__(self) -> None:
        if self.n_snps <= 0:
            raise ValueError(f"n_snps must be positive, got {self.n_snps}")
        self._memmap = np.lib.format.open_memmap(
            str(self.path), mode="w+", dtype=np.float64,
            shape=(self.n_snps, self.n_snps),
        )

    def __call__(self, i0: int, j0: int, block: np.ndarray) -> None:
        assert self._memmap is not None
        mm = self._memmap
        mm[i0 : i0 + block.shape[0], j0 : j0 + block.shape[1]] = block
        if i0 != j0:
            mm[j0 : j0 + block.shape[1], i0 : i0 + block.shape[0]] = block.T
        else:
            # Diagonal block: mirror its strict upper triangle from the
            # computed lower triangle.
            size = block.shape[0]
            il = np.tril_indices(size, k=-1)
            mm[i0 + il[1], j0 + il[0]] = block[il]

    def close(self) -> None:
        """Flush and release the memmap."""
        if self._memmap is not None:
            self._memmap.flush()
            self._memmap = None


@dataclass
class ThresholdCollector:
    """Sink keeping only pairs with statistic ≥ threshold (sparse mode).

    Collects each qualifying unordered SNP pair exactly once, as
    ``(i, j, value)`` with ``i > j``; self-pairs are excluded.
    """

    threshold: float
    pairs: list[tuple[int, int, float]] = field(default_factory=list)

    def __call__(self, i0: int, j0: int, block: np.ndarray) -> None:
        hits = np.argwhere(block >= self.threshold)
        for bi, bj in hits:
            i, j = i0 + int(bi), j0 + int(bj)
            if i <= j:  # strict lower triangle only (dedup + no self-pairs)
                continue
            self.pairs.append((i, j, float(block[bi, bj])))


def stream_ld_blocks(
    data: BitMatrix | np.ndarray,
    sink,
    *,
    stat: str = "r2",
    block_snps: int = 512,
    params: BlockingParams = DEFAULT_BLOCKING,
    kernel: str = "numpy",
    undefined: float = np.nan,
    include_diagonal_blocks: bool = True,
) -> int:
    """Stream the lower-triangle LD matrix through *sink* block by block.

    For every block pair ``(I, J)`` with ``I >= J`` the statistic block is
    computed with one rectangular GEMM and passed as ``sink(i0, j0,
    block)``. Returns the number of blocks delivered.

    Parameters
    ----------
    data:
        Dense binary ``(n_samples, n_snps)`` matrix or packed
        :class:`BitMatrix`.
    sink:
        Callable ``(i0, j0, block) -> None``.
    stat:
        ``"r2"``, ``"D"``, or ``"H"``.
    block_snps:
        Block side in SNPs; peak temporary memory is
        ``block_snps² × 8`` bytes.
    include_diagonal_blocks:
        Deliver the ``I == J`` blocks (contain the trivial diagonal).
    """
    if stat not in ("r2", "D", "H"):
        raise ValueError(f"unknown LD statistic {stat!r}; choose r2/D/H")
    if block_snps < 1:
        raise ValueError(f"block_snps must be >= 1, got {block_snps}")
    matrix = as_bitmatrix(data)
    if matrix.n_samples == 0:
        raise ValueError("LD undefined for zero samples")
    n = matrix.n_snps
    inv_n = 1.0 / matrix.n_samples
    freqs = matrix.allele_frequencies()
    delivered = 0
    for i0 in range(0, n, block_snps):
        i1 = min(i0 + block_snps, n)
        for j0 in range(0, i0 + 1, block_snps):
            j1 = min(j0 + block_snps, n)
            if j0 == i0 and not include_diagonal_blocks:
                continue
            counts = popcount_gemm(
                matrix.words[i0:i1], matrix.words[j0:j1],
                params=params, kernel=kernel,
            )
            h = counts * inv_n
            p, q = freqs[i0:i1], freqs[j0:j1]
            if stat == "H":
                block = h
            elif stat == "D":
                block = h - np.outer(p, q)
            else:
                block = r_squared_matrix(h, p, q, undefined=undefined)
            sink(i0, j0, block)
            delivered += 1
    return delivered
