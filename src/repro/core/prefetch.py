"""Double-buffered panel prefetching for out-of-core LD sweeps.

The out-of-core pipeline follows Fabregat-Traver & Bientinesi ("Computing
Petaflops over Terabytes of Data") and Beyer & Bientinesi ("Streaming
Data from HDD to GPUs", both in PAPERS.md): a panel far larger than RAM
is sliced into SNP-row *windows*, tiles are reordered *panel-major* so
every loaded window is fully consumed before it is evicted, and a
background thread loads the next window pair from disk while the fused
GEMM computes against the current one — double buffering that hides disk
latency behind compute, with any residual exposed I/O measured as stall
time instead of silently inflating "compute".

Two cooperation modes, matching how the executors acquire their inputs:

- **Pull mode** (:class:`PanelPrefetcher`, used by the serial and threads
  engines): windows are explicit driver-RAM buffers under a hard byte
  budget. Workers ``acquire(tile)`` an atomic view over the tile's A/B
  windows (blocking — and recording ``io.wait`` stall time — only when
  the loader has not stayed ahead) and ``release(tile)`` when done;
  eviction prefers fully-consumed windows, so the budget is a real
  ceiling on resident panel bytes (``peak_resident_bytes`` proves it).
- **Warm mode** (:class:`WarmReader`, used by the processes and
  persistent engines): each worker maps the store read-only by path, so
  there is no driver-RAM window to manage — the prefetch thread instead
  reads windows sequentially ahead of the delivery frontier into one
  scratch buffer, priming the page cache the workers' memmaps will hit.

Both modes record ``io.prefetch`` spans around every disk read plus
``prefetch.bytes_read`` / ``prefetch.stall_seconds`` metrics, which the
roofline report uses to flag I/O-bound runs.
"""

from __future__ import annotations

import threading
import time
from dataclasses import dataclass
from typing import TYPE_CHECKING

import numpy as np

from repro.core.engine import TileTask
from repro.faults import FaultPlan, InjectedFault
from repro.observe.spans import span

if TYPE_CHECKING:
    from repro.io.panelstore import PanelStore
    from repro.observe.metrics import MetricsRecorder

__all__ = [
    "PanelPrefetcher",
    "PanelWindow",
    "WarmReader",
    "min_memory_budget",
    "order_panel_major",
    "plan_windows",
]

#: Windows the planner aims to keep resident at once: the A/B pair under
#: compute plus the double-buffered next pair.
_TARGET_RESIDENT = 4
#: Pull mode needs the current A/B pair plus one window in flight.
_MIN_RESIDENT = 3
#: A banded sweep only touches window pairs that meet the band, so its
#: frontier never strays far from the diagonal: the A/B pair alone is
#: enough to make progress (the next load stages as soon as either is
#: released; an occasional reload of a hot window is counted, not fatal).
_MIN_RESIDENT_BANDED = 2
#: Transient prefetch faults retried before the load is declared dead
#: (deterministic plans use ``attempts_below`` to stop firing earlier).
_MAX_LOAD_ATTEMPTS = 16


@dataclass(frozen=True)
class PanelWindow:
    """One contiguous run of SNP rows, the unit of disk I/O and eviction."""

    index: int
    start: int
    stop: int

    @property
    def rows(self) -> int:
        return self.stop - self.start


def min_memory_budget(
    block_snps: int, row_nbytes: int, *, banded: bool = False
) -> int:
    """Smallest workable pull-mode budget for the given geometry.

    Banded sweeps get a lower floor (two resident windows instead of
    three): their window-pair frontier hugs the diagonal, so the next
    load can wait for a release instead of needing a standing third slot.
    """
    resident = _MIN_RESIDENT_BANDED if banded else _MIN_RESIDENT
    return resident * block_snps * row_nbytes


def plan_windows(
    n_snps: int,
    block_snps: int,
    *,
    row_nbytes: int,
    memory_budget: int,
    banded: bool = False,
) -> tuple[list[PanelWindow], int]:
    """Slice *n_snps* rows into equal windows fitting *memory_budget*.

    Window height is a multiple of ``block_snps`` (so a tile never
    straddles a window boundary) and is sized so ``_TARGET_RESIDENT``
    windows fit the budget. Returns ``(windows, window_rows)``. A budget
    that cannot hold even ``_MIN_RESIDENT`` single-block windows raises:
    out-of-core execution needs two resident panels plus one in flight.
    With ``banded=True`` the floor drops to ``_MIN_RESIDENT_BANDED``
    windows — band-pruned sweeps stay near the diagonal, so an A/B pair
    alone keeps the pipeline moving.
    """
    if n_snps < 0:
        raise ValueError(f"n_snps must be non-negative, got {n_snps}")
    if block_snps < 1:
        raise ValueError(f"block_snps must be >= 1, got {block_snps}")
    if row_nbytes < 1:
        raise ValueError(f"row_nbytes must be positive, got {row_nbytes}")
    floor = min_memory_budget(block_snps, row_nbytes, banded=banded)
    min_resident = _MIN_RESIDENT_BANDED if banded else _MIN_RESIDENT
    if memory_budget < floor:
        raise ValueError(
            f"memory budget {memory_budget} bytes cannot hold "
            f"{min_resident} windows of {block_snps} packed SNP rows "
            f"({floor} bytes); raise the budget or lower block_snps"
        )
    per_window = memory_budget // (_TARGET_RESIDENT * row_nbytes)
    window_rows = max(block_snps, per_window // block_snps * block_snps)
    windows = [
        PanelWindow(index=i, start=start, stop=min(start + window_rows, n_snps))
        for i, start in enumerate(range(0, n_snps, window_rows))
    ]
    return windows, window_rows


def order_panel_major(
    tiles: list[TileTask], window_rows: int
) -> list[TileTask]:
    """Reorder tiles so each window pair is fully consumed before moving on.

    Sorts by ``(A-window, B-window)`` of each tile, row-major within the
    pair — the classic out-of-core triangular sweep: the A window stays
    resident for its whole stripe while B windows stream past. Tiles
    straddling a window boundary are rejected (they would need two A or
    two B windows resident at once, breaking the budget math).
    """
    for tile in tiles:
        wi, wj = tile.i0 // window_rows, tile.j0 // window_rows
        if tile.i1 > (wi + 1) * window_rows or tile.j1 > (wj + 1) * window_rows:
            raise ValueError(
                f"tile {tile} straddles a {window_rows}-row window "
                "boundary; window_rows must be a multiple of the tile size"
            )
    return sorted(
        tiles,
        key=lambda t: (
            t.i0 // window_rows,
            t.j0 // window_rows,
            t.i0,
            t.j0,
        ),
    )


class _PanelView:
    """Absolute-row slicing over the resident windows of one tile.

    Duck-types the only operation :func:`repro.core.engine.compute_tile`
    performs on the words array — ``words[i0:i1]`` — resolving absolute
    SNP-row slices against the window buffers holding them, so the
    compute path is byte-identical in-core and out-of-core.
    """

    __slots__ = ("_spans",)

    def __init__(self, spans: list[tuple[int, int, np.ndarray]]) -> None:
        self._spans = spans

    def __getitem__(self, key: slice) -> np.ndarray:
        start, stop = key.start, key.stop
        for wstart, wstop, buf in self._spans:
            if wstart <= start and stop <= wstop:
                return buf[start - wstart : stop - wstart]
        raise IndexError(
            f"rows [{start}, {stop}) not resident in this tile's windows"
        )


class PanelPrefetcher:
    """Pull-mode double buffering: budgeted windows + a loader thread.

    The loader walks the panel-major tile order at most one window pair
    ahead of the consumers' ``acquire`` frontier, reading windows from
    the store under ``io.prefetch`` spans. ``acquire(tile)`` returns an
    atomic view over both of the tile's windows — on the fast path the
    loader has already staged them and no lock is waited on; on the slow
    path the caller loads inline, and the time spent is recorded as
    ``io.wait`` / ``prefetch.stall_seconds`` (the number the roofline
    report flags I/O-bound runs by).

    Deadlock-free by construction: ``acquire`` takes references on both
    windows or none, so every blocked thread holds zero references and
    eviction can always make progress; the budget floor of three windows
    guarantees an A/B pair plus one load in flight always fit.
    """

    def __init__(
        self,
        store: "PanelStore",
        tiles: list[TileTask],
        *,
        block_snps: int,
        memory_budget: int,
        faults: FaultPlan | None = None,
        recorder: "MetricsRecorder | None" = None,
        banded: bool = False,
    ) -> None:
        self._store = store
        self._row_nbytes = store.row_nbytes
        self._budget = memory_budget
        self._faults = faults
        self._recorder = recorder
        self.windows, self._window_rows = plan_windows(
            store.n_snps,
            block_snps,
            row_nbytes=store.row_nbytes,
            memory_budget=memory_budget,
            banded=banded,
        )
        self.order = order_panel_major(tiles, self._window_rows)
        self._order_index = {t.key: i for i, t in enumerate(self.order)}
        # Loader look-ahead: the tiles of one full window pair — "load
        # the next pair while the current one computes", no further.
        blocks_per_window = max(1, self._window_rows // block_snps)
        self._ahead_tiles = blocks_per_window * blocks_per_window

        self._cond = threading.Condition()
        self._buffers: dict[int, np.ndarray] = {}
        self._loading: set[int] = set()
        self._refs: dict[int, int] = {}
        self._uses = [0] * len(self.windows)
        for tile in self.order:
            for w in self._tile_windows(tile):
                self._uses[w] += 1
        self._touched: set[int] = set()
        self._wanted: dict[int, int] = {}
        #: Blocked acquirers by panel-major order index -> needed windows.
        #: Eviction never touches the earliest waiter's windows, so the
        #: frontier tile always completes — concurrent consumers cannot
        #: livelock by evicting each other's loads under a tight budget.
        self._waiters: dict[int, tuple[int, ...]] = {}
        self._clock = 0
        self._lru: dict[int, int] = {}
        self._acquired = 0
        self._resident_bytes = 0
        self._closed = False
        self._error: BaseException | None = None

        self.peak_resident_bytes = 0
        self.bytes_read = 0
        self.stall_seconds = 0.0
        self.reloads = 0

        self._loader = threading.Thread(
            target=self._loader_main, name="repro-prefetch", daemon=True
        )
        self._loader.start()

    # -- consumer side -----------------------------------------------------

    def acquire(self, tile: TileTask) -> _PanelView:
        """Block until both of *tile*'s windows are resident; pin and view.

        All-or-nothing: references on the A and B windows are taken under
        one lock pass, never one without the other.
        """
        needed = self._tile_windows(tile)
        order_idx = self._order_index.get(tile.key)
        with self._cond:
            self._raise_if_dead()
            self._acquired += 1
            self._cond.notify_all()
            if all(w in self._buffers for w in needed):
                return self._pin(needed)
            for w in needed:
                self._wanted[w] = self._wanted.get(w, 0) + 1
            if order_idx is not None:
                self._waiters[order_idx] = needed
        stall_start = time.perf_counter()
        try:
            with span("io.wait"):
                while True:
                    for w in needed:
                        self._ensure_resident(w, prefetch=False)
                    with self._cond:
                        self._raise_if_dead()
                        if all(w in self._buffers for w in needed):
                            return self._pin(needed)
        finally:
            with self._cond:
                if order_idx is not None:
                    self._waiters.pop(order_idx, None)
                for w in needed:
                    if self._wanted.get(w, 0) <= 1:
                        self._wanted.pop(w, None)
                    else:
                        self._wanted[w] -= 1
                self._cond.notify_all()
            stall = time.perf_counter() - stall_start
            self.stall_seconds += stall
            if self._recorder is not None:
                self._recorder.observe_time("prefetch.stall_seconds", stall)

    def release(self, tile: TileTask) -> None:
        """Drop the references ``acquire`` took and count the tile done."""
        with self._cond:
            for w in self._tile_windows(tile):
                self._refs[w] = max(0, self._refs.get(w, 0) - 1)
                self._uses[w] = max(0, self._uses[w] - 1)
            self._cond.notify_all()

    def close(self) -> None:
        """Stop the loader and free every window buffer (idempotent)."""
        with self._cond:
            self._closed = True
            self._buffers.clear()
            self._refs.clear()
            self._resident_bytes = 0
            self._cond.notify_all()
        self._loader.join(timeout=5.0)

    def __enter__(self) -> "PanelPrefetcher":
        return self

    def __exit__(self, *exc_info: object) -> None:
        self.close()

    # -- internals ---------------------------------------------------------

    def _tile_windows(self, tile: TileTask) -> tuple[int, ...]:
        wi = tile.i0 // self._window_rows
        wj = tile.j0 // self._window_rows
        return (wi,) if wi == wj else (wi, wj)

    def _raise_if_dead(self) -> None:
        if self._error is not None:
            raise RuntimeError("panel prefetcher failed") from self._error
        if self._closed:
            raise RuntimeError("panel prefetcher is closed")

    def _pin(self, needed: tuple[int, ...]) -> _PanelView:
        """Take references and build the view (caller holds the lock)."""
        spans = []
        for w in needed:
            self._refs[w] = self._refs.get(w, 0) + 1
            self._touched.add(w)
            self._clock += 1
            self._lru[w] = self._clock
            win = self.windows[w]
            spans.append((win.start, win.stop, self._buffers[w]))
        return _PanelView(spans)

    def _window_nbytes(self, w: int) -> int:
        return self.windows[w].rows * self._row_nbytes

    def _evict_for(self, nbytes: int, *, loader: bool) -> bool:
        """Free refs-zero windows until *nbytes* fit (lock held).

        The loader may only evict consumed or already-served windows — a
        staged-but-unread window is exactly the double buffer, and
        evicting it to stage another would ping-pong under tight
        budgets. Inline (consumer) loads may evict any unreferenced
        window, preferring consumed, then already-served, then LRU, and
        leave windows another ``acquire`` is blocked on for last.
        """
        while self._resident_bytes + nbytes > self._budget:
            candidates = [
                w
                for w in self._buffers
                if self._refs.get(w, 0) == 0
                and (self._uses[w] <= 0 or w in self._touched)
            ]
            if not loader:
                # The earliest blocked acquirer's windows are off-limits
                # to every evictor: the frontier tile always finishes, so
                # concurrent consumers under a tight budget make global
                # progress instead of evicting each other's loads forever.
                protected: tuple[int, ...] = ()
                if self._waiters:
                    protected = self._waiters[min(self._waiters)]
                spare = [
                    w
                    for w in self._buffers
                    if self._refs.get(w, 0) == 0 and w not in candidates
                ]
                unwanted = [w for w in candidates if w not in self._wanted]
                candidates = (
                    [w for w in unwanted if w not in protected]
                    or [w for w in candidates if w not in protected]
                    or [w for w in spare if w not in protected]
                )
            else:
                candidates = [w for w in candidates if w not in self._wanted]
            if not candidates:
                return False
            victim = min(
                candidates,
                key=lambda w: (self._uses[w] > 0, self._lru.get(w, 0)),
            )
            del self._buffers[victim]
            self._refs.pop(victim, None)
            self._resident_bytes -= self._window_nbytes(victim)
            self._cond.notify_all()
        return True

    def _ensure_resident(self, w: int, *, prefetch: bool) -> None:
        """Load window *w* unless already resident (or being loaded).

        In prefetch mode the loader never waits on another thread's load
        and never evicts the double buffer; in inline mode the consumer
        waits for whatever space or load it needs.
        """
        nbytes = self._window_nbytes(w)
        while True:
            with self._cond:
                if self._closed or self._error is not None:
                    return
                if w in self._buffers:
                    self._clock += 1
                    self._lru[w] = self._clock
                    return
                if w in self._loading:
                    if prefetch:
                        return
                    self._cond.wait(0.1)
                    continue
                if self._evict_for(nbytes, loader=prefetch):
                    self._loading.add(w)
                    # Reserve the window's bytes while the read is in
                    # flight: a loader prefetch and an inline consumer
                    # load running concurrently must not each pass the
                    # budget check against the same resident total and
                    # jointly overshoot it.
                    self._resident_bytes += nbytes
                    self.peak_resident_bytes = max(
                        self.peak_resident_bytes, self._resident_bytes
                    )
                    break
                self._cond.wait(0.1)
        window = self.windows[w]
        try:
            data = self._read_window(window)
        except BaseException as exc:
            with self._cond:
                self._loading.discard(w)
                if not self._closed:
                    self._resident_bytes -= nbytes
                if self._error is None:
                    self._error = exc
                self._cond.notify_all()
            if not prefetch:
                raise
            return
        with self._cond:
            self._loading.discard(w)
            if self._closed:
                return
            self._buffers[w] = data
            if w in self._touched:
                self.reloads += 1
                if self._recorder is not None:
                    self._recorder.inc("prefetch.reloads")
            self._clock += 1
            self._lru[w] = self._clock
            self._cond.notify_all()

    def _read_window(self, window: PanelWindow) -> np.ndarray:
        """One disk read, with the ``prefetch`` fault site applied.

        An injected :class:`InjectedFault` is retried (fresh attempt
        number, so deterministic plans converge); a ``delay`` action
        sleeps inside ``fire`` and simply surfaces as prefetch latency.
        """
        key = (window.start, window.stop)
        attempt = 0
        while True:
            try:
                if self._faults is not None:
                    self._faults.fire("prefetch", key, attempt)
                with span("io.prefetch"):
                    data = self._store.read_rows(window.start, window.stop)
                break
            except InjectedFault:
                attempt += 1
                if attempt >= _MAX_LOAD_ATTEMPTS:
                    raise
        self.bytes_read += data.nbytes
        if self._recorder is not None:
            self._recorder.inc("prefetch.bytes_read", int(data.nbytes))
        return data

    def _loader_main(self) -> None:
        try:
            for index, tile in enumerate(self.order):
                with self._cond:
                    while (
                        not self._closed
                        and self._error is None
                        and index > self._acquired + self._ahead_tiles
                    ):
                        self._cond.wait(0.1)
                    if self._closed or self._error is not None:
                        return
                for w in self._tile_windows(tile):
                    self._ensure_resident(w, prefetch=True)
                    with self._cond:
                        if self._closed or self._error is not None:
                            return
        except BaseException as exc:  # pragma: no cover - defensive
            with self._cond:
                if self._error is None:
                    self._error = exc
                self._cond.notify_all()


class WarmReader:
    """Warm-mode prefetch: prime the page cache ahead of pool workers.

    Process-pool workers map the store by path, so the OS page cache is
    the shared buffer; this thread reads windows sequentially (into one
    reused scratch buffer) at most one window pair ahead of the delivery
    frontier, which the driver advances via :meth:`advance` from its
    deliver hook. Reads record ``io.prefetch`` spans and
    ``prefetch.bytes_read``, so the profile attributes warm-mode I/O the
    same way pull-mode loads are attributed.
    """

    def __init__(
        self,
        store: "PanelStore",
        tiles: list[TileTask],
        *,
        block_snps: int,
        memory_budget: int,
        faults: FaultPlan | None = None,
        recorder: "MetricsRecorder | None" = None,
        banded: bool = False,
    ) -> None:
        self._store = store
        self._faults = faults
        self._recorder = recorder
        self.windows, self._window_rows = plan_windows(
            store.n_snps,
            block_snps,
            row_nbytes=store.row_nbytes,
            memory_budget=memory_budget,
            banded=banded,
        )
        self.order = order_panel_major(tiles, self._window_rows)
        blocks_per_window = max(1, self._window_rows // block_snps)
        self._ahead_tiles = blocks_per_window * blocks_per_window
        self._cond = threading.Condition()
        self._delivered = 0
        self._closed = False
        self.bytes_read = 0
        self.stall_seconds = 0.0
        max_rows = max((w.rows for w in self.windows), default=0)
        self._scratch = np.empty((max_rows, store.n_words), dtype=np.uint64)
        self._thread = threading.Thread(
            target=self._main, name="repro-warm-prefetch", daemon=True
        )
        self._thread.start()

    def advance(self, count: int = 1) -> None:
        """Move the delivery frontier forward by *count* tiles."""
        with self._cond:
            self._delivered += count
            self._cond.notify_all()

    def close(self) -> None:
        with self._cond:
            self._closed = True
            self._cond.notify_all()
        self._thread.join(timeout=5.0)

    def __enter__(self) -> "WarmReader":
        return self

    def __exit__(self, *exc_info: object) -> None:
        self.close()

    def _main(self) -> None:
        warmed: set[int] = set()
        try:
            for index, tile in enumerate(self.order):
                with self._cond:
                    while (
                        not self._closed
                        and index > self._delivered + self._ahead_tiles
                    ):
                        self._cond.wait(0.1)
                    if self._closed:
                        return
                wi = tile.i0 // self._window_rows
                wj = tile.j0 // self._window_rows
                for w in (wi,) if wi == wj else (wi, wj):
                    if w in warmed:
                        continue
                    window = self.windows[w]
                    attempt = 0
                    while True:
                        try:
                            if self._faults is not None:
                                self._faults.fire(
                                    "prefetch",
                                    (window.start, window.stop),
                                    attempt,
                                )
                            with span("io.prefetch"):
                                self._store.read_rows(
                                    window.start,
                                    window.stop,
                                    out=self._scratch,
                                )
                            break
                        except InjectedFault:
                            attempt += 1
                            if attempt >= _MAX_LOAD_ATTEMPTS:
                                raise
                    warmed.add(w)
                    nbytes = window.rows * self._store.row_nbytes
                    self.bytes_read += nbytes
                    if self._recorder is not None:
                        self._recorder.inc("prefetch.bytes_read", nbytes)
        except BaseException:  # pragma: no cover - cache warming is advisory
            return
