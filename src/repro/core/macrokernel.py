"""Fused macro-kernels: whole cache blocks per call, zero hot-loop allocation.

The micro-kernel layer (:mod:`repro.core.microkernel`) pays interpreter and
allocator overhead per ``m_r × n_r`` tile. This module raises the unit of
work to an entire ``m_c × n_c`` cache block (one *macro-kernel* call per
block, chunked over k), with every temporary carved from a caller-owned
:class:`GemmWorkspace` — after warm-up the hot loop performs **zero**
allocations.

Two macro-kernels are provided:

``macrokernel_fused``
    The production path. Each k-chunk of packed words is expanded to ±0/1
    *bit planes* in float32 and the block is contracted with one BLAS
    ``sgemm`` (``np.matmul``). This is exact, not approximate: every partial
    product is 0 or 1 and every partial sum is an integer bounded by
    ``64 · k_chunk ≤ 2²⁴``, below the float32 integer-exactness limit, so the
    result is bit-identical to the popcount formulation regardless of BLAS
    summation order or threading. It restates the paper's thesis — LD *is*
    dense linear algebra — by handing the inner loop to the best dense
    kernel on the machine.

``macrokernel_popcount``
    The same block walk in the AND/POPCNT/SUM instruction mix of the paper's
    kernel, vectorized over short k-chunks with preallocated ``out=``
    buffers. Slower than the bit-plane path in pure numpy but allocation-free
    and structurally identical to :func:`repro.core.gemm.gemm_operation_counts`,
    which the machine model prices.

Both operate on SNP-major operands: ``a_words (m, k)`` and ``b_rows (n, k)``
uint64, accumulating into an exact ``(m, n_c)`` int64 column strip of C —
no full padded C matrix exists anywhere (fringe padding lives only in the
workspace-carved packed slivers / accumulator block).
"""

from __future__ import annotations

import threading

import numpy as np

from repro.core.blocking import BlockingParams
from repro.core.packing import pack_block_a_into
from repro.observe.spans import span

__all__ = [
    "GemmWorkspace",
    "shared_workspace",
    "macrokernel_fused",
    "macrokernel_popcount",
    "mirror_lower_inplace",
]

#: Bit positions within one byte, LSB first (numpy uint64 is little-endian in
#: memory, so byte b, bit s of a word is allele index 8·b + s — both operands
#: use the same order, and the contraction is order-invariant anyway).
_SHIFTS = np.arange(8, dtype=np.uint8)

#: Exactness cap: one k-chunk may contribute at most 64 · kc counts to a
#: float32 partial sum, which must stay ≤ 2²⁴ (the float32 integer limit).
_EXACT_KC_WORDS = 1 << 18

#: Memory guard: the expanded float32 bit-plane panel for one operand is
#: ``rows · kstep · 64 · 4`` bytes; cap the per-operand panel at
#: ``_PANEL_BUDGET_WORDS · 64`` bits (= 128 MiB of float32) regardless of how
#: large a ``kc`` the caller requests.
_PANEL_BUDGET_WORDS = 1 << 19

#: Inner k-chunk (words) for the popcount macro-kernel: short chunks keep the
#: (chunk, mr, nr) joint/popcount temporaries L1/L2-resident (measured best
#: on the reference machine; see benchmarks/BENCH_gemm.json).
_POPCOUNT_K_CHUNK = 8


class GemmWorkspace:
    """Grow-only scratch pools for the blocked GEMM drivers.

    ``carve(name, dtype, shape)`` returns a contiguous view of a named flat
    pool, growing the pool only when the request exceeds its current size.
    After the first block of a steady-state shape every carve is a pure view
    — no allocation — which is what the zero-allocation acceptance test
    pins. One workspace serves any mix of shapes, kernels, and blocking
    parameters because pools are keyed by role, not by geometry.

    Not thread-safe by design: each thread gets its own instance via
    :func:`shared_workspace` (the engine's ``threads`` executor runs one
    GEMM per tile per thread).
    """

    __slots__ = ("_pools", "n_allocations", "n_reuses", "bytes_allocated")

    def __init__(self) -> None:
        self._pools: dict[tuple[str, str], np.ndarray] = {}
        self.n_allocations = 0
        self.n_reuses = 0
        self.bytes_allocated = 0

    def carve(
        self, name: str, dtype: np.dtype | type, shape: tuple[int, ...]
    ) -> np.ndarray:
        """A ``shape`` view of the pool *name*, allocating only on growth."""
        dt = np.dtype(dtype)
        n = 1
        for extent in shape:
            n *= int(extent)
        key = (name, dt.char)
        pool = self._pools.get(key)
        if pool is None or pool.size < n:
            pool = np.empty(max(n, 1), dtype=dt)
            self._pools[key] = pool
            self.n_allocations += 1
            self.bytes_allocated += pool.nbytes
        else:
            self.n_reuses += 1
        return pool[:n].reshape(shape)

    @property
    def pool_bytes(self) -> int:
        """Current total footprint of all pools."""
        return sum(p.nbytes for p in self._pools.values())

    def release(self) -> None:
        """Drop all pools (memory returns to the allocator)."""
        self._pools.clear()


_THREAD_LOCAL = threading.local()


def shared_workspace() -> GemmWorkspace:
    """The calling thread's persistent :class:`GemmWorkspace`.

    Allocated on first use per thread and reused for every subsequent GEMM
    call on that thread, so repeated calls at a steady shape do no scratch
    allocation at all.
    """
    ws = getattr(_THREAD_LOCAL, "workspace", None)
    if ws is None:
        ws = GemmWorkspace()
        _THREAD_LOCAL.workspace = ws
    return ws


def _unpack_bits_f32(
    workspace: GemmWorkspace,
    tag: str,
    words: np.ndarray,
    out_f32: np.ndarray,
) -> None:
    """Expand ``(rows, kw)`` uint64 words into ``(rows, kw·64)`` 0/1 float32.

    All temporaries are workspace-carved: the strided word slice is staged
    contiguous, viewed as bytes, shifted against the 8 bit positions with an
    ``out=`` broadcast, masked in place, and cast-assigned into the float32
    bit-plane panel.
    """
    rows, kw = words.shape
    staged = workspace.carve(tag + ".words", np.uint64, (rows, kw))
    staged[...] = words
    as_bytes = staged.view(np.uint8)  # (rows, kw·8)
    bits = workspace.carve(tag + ".bits", np.uint8, (rows, kw * 8, 8))
    np.right_shift(as_bytes[:, :, None], _SHIFTS[None, None, :], out=bits)
    np.bitwise_and(bits, 1, out=bits)
    out_f32[...] = bits.reshape(rows, kw * 64)


def _fused_k_step(kc: int, rows_max: int) -> int:
    """k-chunk (words) honouring both the exactness cap and memory budget."""
    step = min(kc, _EXACT_KC_WORDS)
    if rows_max > 0:
        step = min(step, max(1, _PANEL_BUDGET_WORDS // rows_max))
    return max(1, step)


def macrokernel_fused(
    a_words: np.ndarray,
    b_rows: np.ndarray,
    c_strip: np.ndarray,
    params: BlockingParams,
    workspace: GemmWorkspace,
    *,
    row_offset: int = 0,
    col_offset: int = 0,
    symmetric: bool = False,
) -> None:
    """Accumulate ``C_strip += A · Bᵀ`` over one n_c column strip, exactly.

    Parameters
    ----------
    a_words:
        ``(m, k)`` uint64 — all A rows for this strip.
    b_rows:
        ``(n_eff, k)`` uint64 — the strip's B rows (SNP-major, same
        orientation as A; the contraction transposes implicitly).
    c_strip:
        ``(m, n_eff)`` int64 view of the exact output, updated in place.
    row_offset, col_offset:
        Global coordinates of ``c_strip[0, 0]``; with ``symmetric=True``,
        ``m_c`` row blocks strictly above the diagonal are skipped (the
        Gram traversal of Section VI).
    """
    m, k = a_words.shape
    n_eff = b_rows.shape[0]
    if m == 0 or n_eff == 0 or k == 0:
        return
    mc = params.mc
    kstep = _fused_k_step(params.kc, max(min(mc, m), n_eff))
    for pc in range(0, k, kstep):
        kc_eff = min(kstep, k - pc)
        kb = kc_eff * 64
        with span("pack_b"):
            b_f32 = workspace.carve("fused.b_f32", np.float32, (n_eff, kb))
            _unpack_bits_f32(
                workspace, "fused.b", b_rows[:, pc : pc + kc_eff], b_f32
            )
        for ic in range(0, m, mc):
            mc_eff = min(mc, m - ic)
            if symmetric and row_offset + ic + mc_eff <= col_offset:
                continue
            with span("pack_a"):
                a_f32 = workspace.carve("fused.a_f32", np.float32, (mc_eff, kb))
                _unpack_bits_f32(
                    workspace, "fused.a",
                    a_words[ic : ic + mc_eff, pc : pc + kc_eff], a_f32,
                )
            with span("plane_matmul"):
                c_f32 = workspace.carve(
                    "fused.c_f32", np.float32, (mc_eff, n_eff)
                )
                np.matmul(a_f32, b_f32.T, out=c_f32)
            with span("copy_out"):
                block = c_strip[ic : ic + mc_eff]
                np.add(block, c_f32, out=block, casting="unsafe")


def macrokernel_popcount(
    a_words: np.ndarray,
    b_rows: np.ndarray,
    c_strip: np.ndarray,
    params: BlockingParams,
    workspace: GemmWorkspace,
    *,
    row_offset: int = 0,
    col_offset: int = 0,
    symmetric: bool = False,
) -> int:
    """AND/POPCNT/SUM macro-kernel over one column strip, allocation-free.

    Walks the same jc-strip × pc × ic × (jr, ir) structure that
    :func:`repro.core.gemm.gemm_operation_counts` prices (including the
    symmetric tile-skip rule), with packed slivers, joint/popcount
    temporaries, and the padded C accumulator all carved from *workspace*.
    Returns the number of micro-tile visits (one per tile per pc chunk) so
    drivers can cross-check the operation-count model.
    """
    m, k = a_words.shape
    n_eff = b_rows.shape[0]
    if m == 0 or n_eff == 0 or k == 0:
        return 0
    mc, kc, mr, nr = params.mc, params.kc, params.mr, params.nr
    sb_max = (n_eff + nr - 1) // nr
    tile_visits = 0
    joint = workspace.carve(
        "pop.joint", np.uint64, (_POPCOUNT_K_CHUNK, mr, nr)
    )
    pop = workspace.carve("pop.pop", np.uint8, (_POPCOUNT_K_CHUNK, mr, nr))
    tsum = workspace.carve("pop.tsum", np.int64, (mr, nr))
    for pc in range(0, k, kc):
        kc_eff = min(kc, k - pc)
        with span("pack_b"):
            pb_pool = workspace.carve(
                "pop.b_pack", np.uint64, (sb_max, kc_eff, nr)
            )
            packed_b = pack_block_a_into(
                b_rows[:, pc : pc + kc_eff], nr, pb_pool
            )
        for ic in range(0, m, mc):
            mc_eff = min(mc, m - ic)
            if symmetric and row_offset + ic + mc_eff <= col_offset:
                continue
            with span("pack_a"):
                sa = (mc_eff + mr - 1) // mr
                pa_pool = workspace.carve(
                    "pop.a_pack", np.uint64, (sa, kc_eff, mr)
                )
                packed_a = pack_block_a_into(
                    a_words[ic : ic + mc_eff, pc : pc + kc_eff], mr, pa_pool
                )
            # One span per (pc, ic) block, not per micro-tile: the tile
            # loop is the hot path the zero-allocation test pins.
            with span("pop_kernel"):
                c_pad = workspace.carve(
                    "pop.c_pad", np.int64, (sa * mr, packed_b.shape[0] * nr)
                )
                c_pad[...] = 0
                for jr in range(packed_b.shape[0]):
                    j0 = jr * nr
                    b_micro = packed_b[jr]
                    for ir in range(sa):
                        i0 = ir * mr
                        if symmetric and row_offset + ic + i0 + mr <= col_offset + j0:
                            continue
                        tile_visits += 1
                        c_tile = c_pad[i0 : i0 + mr, j0 : j0 + nr]
                        for p0 in range(0, kc_eff, _POPCOUNT_K_CHUNK):
                            width = min(_POPCOUNT_K_CHUNK, kc_eff - p0)
                            np.bitwise_and(
                                packed_a[ir][p0 : p0 + width, :, None],
                                b_micro[p0 : p0 + width, None, :],
                                out=joint[:width],
                            )
                            np.bitwise_count(joint[:width], out=pop[:width])
                            np.sum(
                                pop[:width], axis=0, dtype=np.int64, out=tsum
                            )
                            c_tile += tsum
            with span("copy_out"):
                block = c_strip[ic : ic + mc_eff]
                np.add(block, c_pad[:mc_eff, :n_eff], out=block)
    return tile_visits


def mirror_lower_inplace(c: np.ndarray, *, block: int = 256) -> np.ndarray:
    """Reflect the lower triangle of square *c* onto the upper, in place.

    Replaces the ``np.tril(c) + np.tril(c, -1).T`` idiom, which materializes
    two full ``m × m`` copies; this walks diagonal blocks with bounded
    ``block × block`` staging (off-diagonal strips are disjoint transposed
    assignments with no staging at all).
    """
    m = c.shape[0]
    if c.ndim != 2 or c.shape[1] != m:
        raise ValueError(f"expected a square matrix, got shape {c.shape}")
    with span("mirror"):
        for j0 in range(0, m, block):
            j1 = min(j0 + block, m)
            # Strip to the right of the diagonal block: rows j0:j1 above
            # columns j1:, sourced from the disjoint lower region below
            # the block.
            c[j0:j1, j1:] = c[j1:, j0:j1].T
            diag = c[j0:j1, j0:j1]
            low = np.tril_indices(j1 - j0, -1)
            diag.T[low] = diag[low]
    return c
