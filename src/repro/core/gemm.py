"""Blocked popcount-GEMM driver (the GotoBLAS five-loop nest, Figure 1).

This is the paper's computational core: the haplotype-count matrix

    C[i, j] = Σ_w POPCNT(A[i, w] & B[j, w])

computed with the GotoBLAS/BLIS layered algorithm. Loop structure (outermost
to innermost), identical to dense GEMM with elements = packed uint64 words:

    loop 5: jc over n      in steps of n_c   (B panel selection)
    loop 4: pc over k      in steps of k_c   -> pack B panel  (L3 resident)
    loop 3: ic over m      in steps of m_c   -> pack A block  (L2 resident)
    loop 2: jr over n_c    in steps of n_r   (B micro-panel,   L1 resident)
    loop 1: ir over m_c    in steps of m_r   (A micro-panel streamed)
    micro-kernel: m_r × n_r tile of C, k_c rank-1 AND/POPCNT/ADD updates

Because the genomic matrix arrives SNP-major (rows are SNPs, columns are
packed words — Figure 2), computing ``GᵀG`` is already the rank-k update
shape GotoBLAS optimizes (Section III-B): both inputs here are ``(snps,
words)`` and the contraction runs over words.

Four interchangeable kernels drive the nest (:data:`GEMM_KERNELS`):

- ``"fused"`` (default): the bit-plane BLAS macro-kernel
  (:func:`repro.core.macrokernel.macrokernel_fused`) — whole cache blocks
  per call, zero hot-loop allocation, exact by the float32 integer-range
  argument documented there.
- ``"fused-popcount"``: the allocation-free AND/POPCNT/SUM macro-kernel,
  same instruction mix the machine model prices.
- ``"numpy"`` / ``"scalar"``: the original per-micro-tile kernels from
  :mod:`repro.core.microkernel`, kept as the executable specification and
  differential-test oracles.

Edge handling follows BLIS: packed fringe slivers are zero-padded, and zero
words are inert under AND/POPCNT, so kernels need no fringe cases. The
output C is allocated at its exact ``(m, n)`` shape — fringe padding lives
only in workspace scratch, never in a full padded C.

:func:`gemm_operation_counts` walks the same loop bounds without executing
the kernels, producing the exact instruction/traffic counts the machine model
(:mod:`repro.machine`) converts into cycles.
"""

from __future__ import annotations

import time
from dataclasses import dataclass
from typing import TYPE_CHECKING

import numpy as np

from repro.core.blocking import DEFAULT_BLOCKING, FUSED_BLOCKING, BlockingParams
from repro.core.macrokernel import (
    GemmWorkspace,
    macrokernel_fused,
    macrokernel_popcount,
    shared_workspace,
)
from repro.core.microkernel import MICRO_KERNELS
from repro.core.packing import pack_block_a, pack_panel_b
from repro.observe.spans import span

if TYPE_CHECKING:  # recorder typing only; spans above resolve lazily in
    # repro.observe.__init__, so no modelcheck→gemm import cycle forms
    from repro.observe.metrics import MetricsRecorder

__all__ = [
    "DEFAULT_KERNEL",
    "FUSED_KERNELS",
    "GEMM_KERNELS",
    "GemmCounts",
    "popcount_gemm",
    "popcount_gemm_flat",
    "popcount_gram",
    "gemm_operation_counts",
    "resolve_blocking",
]

#: Macro-kernel-driven kernels (block-at-a-time, workspace scratch).
FUSED_KERNELS = ("fused", "fused-popcount")

#: All kernels accepted by the blocked drivers, fastest first.
GEMM_KERNELS = FUSED_KERNELS + tuple(MICRO_KERNELS)

#: Production default: the bit-plane BLAS macro-kernel.
DEFAULT_KERNEL = "fused"


def resolve_blocking(
    params: BlockingParams | None, kernel: str = DEFAULT_KERNEL
) -> BlockingParams:
    """The blocking to use for *kernel* when the caller passed ``None``.

    Fused macro-kernels want large ``mc``/``nc`` blocks and short ``kc``
    chunks (:data:`repro.core.blocking.FUSED_BLOCKING`); the per-tile micro
    kernels keep the historical :data:`~repro.core.blocking.DEFAULT_BLOCKING`.
    A tuned profile (see :mod:`repro.core.tuning`) is *not* consulted here —
    tuning is opt-in via ``repro tune`` / ``ld --autotune``.
    """
    if params is not None:
        return params
    return FUSED_BLOCKING if kernel in FUSED_KERNELS else DEFAULT_BLOCKING


def _check_operands(a_words: np.ndarray, b_words: np.ndarray) -> tuple[int, int, int]:
    a_words = np.asarray(a_words)
    b_words = np.asarray(b_words)
    if a_words.dtype != np.uint64 or b_words.dtype != np.uint64:
        raise TypeError("operands must be packed uint64 word matrices")
    if a_words.ndim != 2 or b_words.ndim != 2:
        raise ValueError("operands must be 2-D (snps, words)")
    if a_words.shape[1] != b_words.shape[1]:
        raise ValueError(
            f"word counts differ: A has {a_words.shape[1]}, B has {b_words.shape[1]} "
            "(inputs must be packed over the same sample set width)"
        )
    return a_words.shape[0], b_words.shape[0], a_words.shape[1]


def _check_kernel(kernel: str) -> None:
    if kernel not in GEMM_KERNELS:
        raise ValueError(
            f"unknown kernel {kernel!r}; expected one of {', '.join(GEMM_KERNELS)}"
        )


def _gemm_micro(
    a_words: np.ndarray,
    b_words: np.ndarray,
    c: np.ndarray,
    params: BlockingParams,
    kernel: str,
    workspace: GemmWorkspace,
    *,
    symmetric: bool = False,
) -> int:
    """Legacy per-micro-tile driver for the ``numpy``/``scalar`` kernels.

    Accumulates into the exact ``(m, n)`` output: interior tiles update C
    views directly; fringe tiles stage through a workspace-carved padded
    tile and add back the valid region. Returns micro-tile visits.
    """
    m, n = c.shape
    k = a_words.shape[1]
    micro = MICRO_KERNELS[kernel]
    mr, nr = params.mr, params.nr
    b_kn = np.ascontiguousarray(b_words.T)  # (k, n) panel orientation
    tile_visits = 0
    fringe = workspace.carve("micro.c_fringe", np.int64, (mr, nr))
    for jc in range(0, n, params.nc):
        nc_eff = min(params.nc, n - jc)
        for pc in range(0, k, params.kc):
            kc_eff = min(params.kc, k - pc)
            packed_b = pack_panel_b(b_kn[pc : pc + kc_eff, jc : jc + nc_eff], nr)
            for ic in range(0, m, params.mc):
                mc_eff = min(params.mc, m - ic)
                if symmetric and ic + mc_eff <= jc:
                    continue
                packed_a = pack_block_a(
                    a_words[ic : ic + mc_eff, pc : pc + kc_eff], mr
                )
                for jr_sliver in range(packed_b.shape[0]):
                    j0 = jc + jr_sliver * nr
                    cols = min(nr, n - j0)
                    b_micro = packed_b[jr_sliver]
                    for ir_sliver in range(packed_a.shape[0]):
                        i0 = ic + ir_sliver * mr
                        if symmetric and i0 + mr <= j0:
                            continue
                        tile_visits += 1
                        rows = min(mr, m - i0)
                        if rows == mr and cols == nr:
                            micro(
                                packed_a[ir_sliver],
                                b_micro,
                                c[i0 : i0 + mr, j0 : j0 + nr],
                            )
                        else:
                            fringe[...] = 0
                            micro(packed_a[ir_sliver], b_micro, fringe)
                            c[i0 : i0 + rows, j0 : j0 + cols] += fringe[
                                :rows, :cols
                            ]
    return tile_visits


def _run_kernel(
    a_words: np.ndarray,
    b_rows: np.ndarray,
    c: np.ndarray,
    params: BlockingParams,
    kernel: str,
    workspace: GemmWorkspace,
    *,
    symmetric: bool,
) -> int:
    """Dispatch one full GEMM over column strips; returns tile visits."""
    m, n = c.shape
    if kernel in MICRO_KERNELS:
        return _gemm_micro(
            a_words, b_rows, c, params, kernel, workspace, symmetric=symmetric
        )
    macro = macrokernel_fused if kernel == "fused" else macrokernel_popcount
    tile_visits = 0
    for jc in range(0, n, params.nc):
        nc_eff = min(params.nc, n - jc)
        visits = macro(
            a_words,
            b_rows[jc : jc + nc_eff],
            c[:, jc : jc + nc_eff],
            params,
            workspace,
            row_offset=0,
            col_offset=jc,
            symmetric=symmetric,
        )
        tile_visits += visits or 0
    return tile_visits


def popcount_gemm(
    a_words: np.ndarray,
    b_words: np.ndarray,
    *,
    params: BlockingParams | None = None,
    kernel: str = DEFAULT_KERNEL,
    recorder: "MetricsRecorder | None" = None,
    workspace: GemmWorkspace | None = None,
) -> np.ndarray:
    """All-pairs popcount inner products via the blocked GotoBLAS nest.

    Parameters
    ----------
    a_words, b_words:
        Packed SNP-major word matrices of shapes ``(m, k)`` and ``(n, k)``
        (``k`` = words per SNP). The result contracts over words.
    params:
        Blocking parameters (cache/register tile sizes); ``None`` selects
        the per-kernel default via :func:`resolve_blocking`.
    kernel:
        One of :data:`GEMM_KERNELS` — ``"fused"`` (bit-plane BLAS macro,
        default), ``"fused-popcount"``, ``"numpy"``, or ``"scalar"``. All
        produce bit-identical results.
    recorder:
        Optional :class:`repro.observe.MetricsRecorder`; when set, the
        call emits one ``gemm`` event (shape, kernel, seconds) and
        accumulates ``gemm.*`` counters/timers, including workspace
        allocation/reuse deltas. ``None`` costs a single comparison.
    workspace:
        Scratch pools to carve from; ``None`` uses the calling thread's
        persistent :func:`~repro.core.macrokernel.shared_workspace`.

    Returns
    -------
    ``(m, n)`` ``int64`` matrix of shared-derived-allele counts
    ``C[i, j] = s_iᵀ s_j``.
    """
    m, n, k = _check_operands(a_words, b_words)
    _check_kernel(kernel)
    params = resolve_blocking(params, kernel)
    ws = shared_workspace() if workspace is None else workspace
    start = time.perf_counter() if recorder is not None else 0.0
    allocs0, reuses0 = ws.n_allocations, ws.n_reuses
    with span("gemm"):  # parent span; self-time = driver overhead
        c = np.zeros((m, n), dtype=np.int64)
        tile_visits = _run_kernel(
            a_words, b_words, c, params, kernel, ws, symmetric=False
        )
    if recorder is not None:
        _record_gemm_call(
            recorder, "gemm", m, n, k, kernel, start, ws, allocs0, reuses0,
            tile_visits,
        )
    return c


def _record_gemm_call(
    recorder: "MetricsRecorder",
    name: str,
    m: int,
    n: int,
    k: int,
    kernel: str,
    start: float,
    workspace: GemmWorkspace | None = None,
    allocs0: int = 0,
    reuses0: int = 0,
    tile_visits: int = 0,
) -> None:
    """Aggregate one blocked-driver invocation into *recorder*."""
    seconds = time.perf_counter() - start
    recorder.inc(f"{name}.calls")
    recorder.inc(f"{name}.word_ops", 3 * m * n * k)
    recorder.observe_time(f"{name}.seconds", seconds)
    if workspace is not None:
        recorder.inc(
            f"{name}.workspace_allocations", workspace.n_allocations - allocs0
        )
        recorder.inc(f"{name}.workspace_reuses", workspace.n_reuses - reuses0)
    if tile_visits:
        recorder.inc(f"{name}.tile_visits", tile_visits)
    recorder.event(name, m=m, n=n, k=k, kernel=kernel, seconds=seconds)


def popcount_gram(
    a_words: np.ndarray,
    *,
    params: BlockingParams | None = None,
    kernel: str = DEFAULT_KERNEL,
    recorder: "MetricsRecorder | None" = None,
    workspace: GemmWorkspace | None = None,
) -> np.ndarray:
    """Symmetric case ``C = A Aᵀ`` (the ``GᵀG`` of Equation 5).

    Skips blocks and micro-tiles strictly above the diagonal and mirrors the
    lower triangle in place afterwards — the N(N+1)/2 pairwise-count
    traversal the paper reports for the GEMM implementation (Section VI),
    without the two full ``m × m`` temporaries the old ``np.tril`` mirror
    allocated. *recorder* behaves as in :func:`popcount_gemm`, emitting
    ``gram`` events/counters.
    """
    from repro.core.macrokernel import mirror_lower_inplace

    a_words = np.asarray(a_words)
    m, _, k = _check_operands(a_words, a_words)
    _check_kernel(kernel)
    params = resolve_blocking(params, kernel)
    ws = shared_workspace() if workspace is None else workspace
    start = time.perf_counter() if recorder is not None else 0.0
    allocs0, reuses0 = ws.n_allocations, ws.n_reuses
    with span("gram"):  # parent span; self-time = driver overhead
        c = np.zeros((m, m), dtype=np.int64)
        tile_visits = _run_kernel(
            a_words, a_words, c, params, kernel, ws, symmetric=True
        )
        mirror_lower_inplace(c)
    if recorder is not None:
        _record_gemm_call(
            recorder, "gram", m, m, k, kernel, start, ws, allocs0, reuses0,
            tile_visits,
        )
    return c


def popcount_gemm_flat(
    a_words: np.ndarray,
    b_words: np.ndarray,
    *,
    max_temp_bytes: int = 1 << 26,
) -> np.ndarray:
    """Un-blocked baseline: one broadcast pass, row-chunked only for memory.

    This is the "no cache blocking" ablation partner of
    :func:`popcount_gemm`: it performs the identical AND/POPCNT/ADD work but
    streams the full B operand for every row chunk, so its memory traffic
    grows with ``m·n·k`` instead of being amortized by packing.
    """
    m, n, k = _check_operands(a_words, b_words)
    c = np.empty((m, n), dtype=np.int64)
    if m == 0 or n == 0:
        return c
    per_row_bytes = max(1, n * k * 8)
    chunk = max(1, min(m, max_temp_bytes // per_row_bytes))
    for i0 in range(0, m, chunk):
        a_chunk = a_words[i0 : i0 + chunk]
        joint = a_chunk[:, None, :] & b_words[None, :, :]
        c[i0 : i0 + chunk] = np.bitwise_count(joint).sum(axis=2, dtype=np.int64)
    return c


@dataclass(frozen=True)
class GemmCounts:
    """Exact operation and traffic counts for one blocked GEMM execution.

    All word-level counts include fringe zero-padding, exactly as executed
    by the popcount-formulation kernels — the machine model charges padded
    work the way real silicon would. (The ``"fused"`` BLAS kernel performs
    the same logical contraction through bit planes; the model prices the
    popcount instruction mix, which is the paper's cost unit.)

    Attributes
    ----------
    and_ops, popcnt_ops, add_ops:
        Word-level AND / POPCNT / accumulate operations in the micro-kernels.
    kernel_calls:
        Micro-kernel invocations (micro-tile visits × pc chunks).
    a_pack_words, b_pack_words:
        Words moved (read+write once each) while packing A blocks / B panels.
    a_load_words, b_load_words:
        Words streamed into the micro-kernels from the packed buffers.
    c_update_words:
        C-tile elements written back across all kernel calls.
    """

    and_ops: int
    popcnt_ops: int
    add_ops: int
    kernel_calls: int
    a_pack_words: int
    b_pack_words: int
    a_load_words: int
    b_load_words: int
    c_update_words: int

    @property
    def total_ops(self) -> int:
        """Total AND+POPCNT+ADD operations (the paper's 3-ops-per-step unit)."""
        return self.and_ops + self.popcnt_ops + self.add_ops


def gemm_operation_counts(
    m: int,
    n: int,
    k: int,
    params: BlockingParams = DEFAULT_BLOCKING,
    *,
    symmetric: bool = False,
) -> GemmCounts:
    """Walk the blocked loop nest symbolically and return exact counts.

    Mirrors the popcount drivers block for block (including fringe padding
    and the symmetric block- and tile-skipping rules) without touching
    data — ``kernel_calls`` equals the ``*.tile_visits`` counter the
    restructured drivers record (one visit per micro-tile per pc chunk),
    and tests pin that equivalence against the executing driver.

    The walk is closed-form over the pc loop and the ir sliver loop (their
    contributions are arithmetic in the loop bounds), so paper-scale shapes
    (m = n = 16384) evaluate in milliseconds rather than walking ~10⁷ tiles.
    """
    if min(m, n, k) < 0:
        raise ValueError("dimensions must be non-negative")
    mr, nr = params.mr, params.nr
    kernel_calls = 0
    triple_ops = 0  # per-class AND (= POPCNT = ADD) operations
    a_pack = b_pack = 0
    a_load = b_load = c_update = 0
    # The pc loop only modulates kc_eff; its aggregates are sum(kc_eff) = k
    # and the chunk count.
    n_pc_chunks = (k + params.kc - 1) // params.kc if k else 0
    for jc in range(0, n, params.nc):
        nc_eff = min(params.nc, n - jc)
        n_slivers_b = (nc_eff + nr - 1) // nr
        b_pack += n_slivers_b * nr * k
        for ic in range(0, m, params.mc):
            mc_eff = min(params.mc, m - ic)
            if symmetric and ic + mc_eff <= jc:
                continue
            n_slivers_a = (mc_eff + mr - 1) // mr
            a_pack += n_slivers_a * mr * k
            if not symmetric:
                tiles = n_slivers_a * n_slivers_b
            else:
                # Count (ir, jr) sliver pairs whose tile touches the lower
                # triangle: ic + (ir+1)*mr > jc + jr*nr.
                tiles = 0
                for jr_sliver in range(n_slivers_b):
                    j0 = jc + jr_sliver * nr
                    # smallest ir with ic + (ir+1)*mr > j0:
                    ir_min = max(0, -(-(j0 - ic - mr + 1) // mr))
                    tiles += max(0, n_slivers_a - min(n_slivers_a, ir_min))
            kernel_calls += tiles * n_pc_chunks
            triple_ops += tiles * mr * nr * k
            a_load += tiles * mr * k
            b_load += tiles * nr * k
            c_update += tiles * n_pc_chunks * mr * nr
    and_ops = popcnt_ops = add_ops = triple_ops
    return GemmCounts(
        and_ops=and_ops,
        popcnt_ops=popcnt_ops,
        add_ops=add_ops,
        kernel_calls=kernel_calls,
        a_pack_words=a_pack,
        b_pack_words=b_pack,
        a_load_words=a_load,
        b_load_words=b_load,
        c_update_words=c_update,
    )
