"""Banded (windowed) LD: all pairs within a SNP-distance window.

Whole-chromosome LD matrices are never stored dense — LD decays with
distance, so production tools (PLINK's windowed modes, OmegaPlus's region
bounds) compute only pairs ``|i − j| <= W``. The blocked GEMM serves this
directly: the band of the output is covered by rectangular cross-GEMMs
between consecutive row blocks and their right-neighbourhoods, so the
windowed computation keeps the full kernel efficiency while doing
``O(n·W)`` instead of ``O(n²)`` work.

Storage is diagonal-major: ``values[i, d]`` holds the statistic for the
pair ``(i, i + d)``, ``d = 0..W`` — the natural layout for decay analyses
and sliding-window consumers.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from repro.core.blocking import BlockingParams
from repro.core.gemm import DEFAULT_KERNEL
from repro.core.ldmatrix import as_bitmatrix
from repro.encoding.bitmatrix import BitMatrix

__all__ = ["BandedLDMatrix", "banded_ld", "write_banded_block"]

_STATS = ("r2", "D", "H")


@dataclass(frozen=True)
class BandedLDMatrix:
    """LD values for all SNP pairs within a window, diagonal-major.

    Attributes
    ----------
    values:
        ``(n_snps, window + 1)`` array; ``values[i, d]`` is the statistic
        for pair ``(i, i + d)``. Entries running past the last SNP are NaN.
    window:
        Maximum index distance stored.
    stat:
        Which statistic the values hold.
    """

    values: np.ndarray
    window: int
    stat: str

    @property
    def n_snps(self) -> int:
        """Number of SNPs covered."""
        return self.values.shape[0]

    def get(self, i: int, j: int) -> float:
        """Value for pair ``(i, j)``; raises if the pair is outside the band."""
        lo, hi = (i, j) if i <= j else (j, i)
        if not 0 <= lo <= hi < self.n_snps:
            raise IndexError(f"pair ({i}, {j}) out of range")
        d = hi - lo
        if d > self.window:
            raise IndexError(
                f"pair ({i}, {j}) is {d} apart, outside the {self.window}-SNP band"
            )
        return float(self.values[lo, d])

    def to_dense(self, fill: float = np.nan) -> np.ndarray:
        """Materialize the symmetric dense matrix with *fill* off the band."""
        n = self.n_snps
        dense = np.full((n, n), fill, dtype=np.float64)
        for d in range(min(self.window, n - 1) + 1):
            diag = self.values[: n - d, d]
            idx = np.arange(n - d)
            dense[idx, idx + d] = diag
            dense[idx + d, idx] = diag
        return dense

    def n_pairs(self) -> int:
        """Number of stored (i <= j) pairs, diagonal included."""
        n, w = self.n_snps, self.window
        return sum(min(w, n - 1 - i) + 1 for i in range(n))

    def mean_by_distance(self) -> np.ndarray:
        """Mean statistic per index distance ``d = 0..window`` (NaN-aware)."""
        with np.errstate(invalid="ignore"):
            return np.nanmean(self.values, axis=0)


def write_banded_block(
    values: np.ndarray, window: int, i0: int, j0: int, block: np.ndarray
) -> None:
    """Scatter one lower-triangle tile into a diagonal-major band store.

    The statistic for pair ``(i, j)`` with ``i >= j`` lands at
    ``values[j, i - j]``; cells of *block* outside the band or above the
    diagonal (the mirrored half of diagonal tiles — same value for
    symmetric stats) are ignored. This is the shared translation between
    the engine's ``(i0, j0, block)`` sink protocol and the ``(n, W+1)``
    layout :class:`BandedLDMatrix` defines.
    """
    rows, cols = block.shape
    for b in range(cols):
        j = j0 + b
        lo = max(i0, j)
        hi = min(i0 + rows - 1, j + window)
        if hi < lo:
            continue
        d0 = lo - j
        values[j, d0 : d0 + hi - lo + 1] = block[lo - i0 : hi - i0 + 1, b]


def banded_ld(
    data: BitMatrix | np.ndarray,
    window: int,
    stat: str = "r2",
    *,
    params: BlockingParams | None = None,
    kernel: str = DEFAULT_KERNEL,
    undefined: float = np.nan,
    block_snps: int | None = None,
) -> BandedLDMatrix:
    """LD for all pairs within *window* SNPs of each other.

    A thin wrapper over the band-aware tiled engine
    (:func:`repro.core.engine.run_engine` with ``band=window``): the band
    is covered by square lower-triangle tiles whose fully-outside members
    are never enumerated, so every in-band pair is computed by exactly
    one kernel-efficient GEMM call and total work stays O(n·window). The
    results are bit-identical to a dense engine run's band slice —
    callers needing resume, multi-worker executors, out-of-core panels,
    or fault injection use ``run_engine(band=...)`` directly.

    Parameters
    ----------
    data:
        Dense binary ``(n_samples, n_snps)`` matrix or packed
        :class:`BitMatrix`.
    window:
        Maximum SNP-index distance (≥ 1).
    stat:
        ``"r2"``, ``"D"``, or ``"H"``.
    block_snps:
        Tile size of the engine tiling; the default (``max(window,
        128)``) keeps each block row to a handful of tiles, so total
        work stays O(n·window) while the tiles remain large enough for
        kernel efficiency.
    """
    if window < 1:
        raise ValueError(f"window must be >= 1 SNP, got {window}")
    if stat not in _STATS:
        raise ValueError(f"unknown LD statistic {stat!r}; choose from {_STATS}")
    matrix = as_bitmatrix(data)
    if matrix.n_samples == 0:
        raise ValueError("LD undefined for zero samples")
    block = block_snps if block_snps is not None else max(window, 128)
    if block < 1:
        raise ValueError(f"block_snps must be >= 1, got {block}")
    # Engine imported lazily: this module defines the banded *layout* and
    # is imported by sinks the engine's callers use.
    from repro.core.engine import run_engine

    n = matrix.n_snps
    values = np.full((n, window + 1), np.nan, dtype=np.float64)

    def sink(i0: int, j0: int, tile_block: np.ndarray) -> None:
        write_banded_block(values, window, i0, j0, tile_block)

    run_engine(
        matrix,
        sink,
        stat=stat,
        block_snps=block,
        engine="serial",
        band=window,
        params=params,
        kernel=kernel,
        undefined=undefined,
    )
    return BandedLDMatrix(values=values, window=window, stat=stat)
