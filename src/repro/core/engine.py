"""Sharded tiled LD execution engine: restartable out-of-core ``GᵀG``.

The blocked popcount-GEMM (Figure 1) and the streaming loop
(:mod:`repro.core.streaming`) already express the r² matrix as independent
lower-triangle tiles; this module turns that observation into an execution
layer that scales past one process and survives interruption — the shard-
and-restart discipline second-generation PLINK uses to reach biobank sizes:

- :func:`enumerate_tiles` decomposes the lower triangle into an explicit
  list of :class:`TileTask` units (the shared enumeration the streaming
  loop also uses);
- :func:`run_engine` schedules those tiles over one of three executors —
  ``serial`` (in-process loop), ``threads`` (GIL-released numpy workers),
  or ``processes`` (a ``ProcessPoolExecutor`` whose workers attach the
  packed words via ``multiprocessing.shared_memory``, so the genomic
  matrix is mapped once instead of pickled per task);
- :class:`TileManifest` journals every completed tile to disk (JSON lines
  with an input fingerprint), so an interrupted run restarted with
  ``resume=True`` recomputes only the missing tiles;
- failed tiles are retried (and a crashed worker pool is rebuilt) up to
  ``max_retries`` times before the run is abandoned.

Results are always delivered to the caller's sink in the driver process,
so any :mod:`repro.core.streaming` sink works unchanged and needs no
locking. Tiles may arrive in any order under ``threads``/``processes``.
"""

from __future__ import annotations

import hashlib
import json
import os
import threading
import time
from collections.abc import Callable
from concurrent.futures import (
    FIRST_COMPLETED,
    Executor,
    ProcessPoolExecutor,
    ThreadPoolExecutor,
    wait,
)
from concurrent.futures.process import BrokenProcessPool
from dataclasses import dataclass, field
from multiprocessing import get_all_start_methods, get_context, shared_memory
from pathlib import Path
from typing import TYPE_CHECKING

import numpy as np

from repro.core.blocking import DEFAULT_BLOCKING, BlockingParams
from repro.core.gemm import popcount_gemm
from repro.core.ldmatrix import as_bitmatrix
from repro.core.stats import r_squared_matrix
from repro.encoding.bitmatrix import BitMatrix

if TYPE_CHECKING:  # imported lazily to keep core free of observe at runtime
    from repro.observe.metrics import MetricsRecorder
    from repro.observe.progress import ProgressReporter

__all__ = [
    "ENGINES",
    "EngineReport",
    "TileManifest",
    "TileResult",
    "TileTask",
    "compute_tile",
    "enumerate_tiles",
    "input_fingerprint",
    "run_engine",
]

#: Supported execution strategies, in increasing order of isolation.
ENGINES = ("serial", "threads", "processes")

_ENGINE_STATS = ("r2", "D", "H")


@dataclass(frozen=True, order=True)
class TileTask:
    """One schedulable unit: the statistic block ``[i0:i1, j0:j1]``.

    Tiles produced by :func:`enumerate_tiles` satisfy ``j0 <= i0`` (lower
    triangle) and carry their exclusive end indices so workers need no
    knowledge of the global blocking.
    """

    i0: int
    i1: int
    j0: int
    j1: int

    @property
    def key(self) -> tuple[int, int]:
        """Manifest identity of the tile (its top-left corner)."""
        return (self.i0, self.j0)

    @property
    def n_pairs(self) -> int:
        """Matrix cells this tile covers (work estimate for scheduling)."""
        return (self.i1 - self.i0) * (self.j1 - self.j0)


def enumerate_tiles(
    n_snps: int, block_snps: int, *, include_diagonal: bool = True
) -> list[TileTask]:
    """Lower-triangle block decomposition shared by streaming and the engine.

    Row-major over block rows, so sequential consumption matches the order
    :func:`repro.core.streaming.stream_ld_blocks` has always delivered.
    """
    if n_snps < 0:
        raise ValueError(f"n_snps must be non-negative, got {n_snps}")
    if block_snps < 1:
        raise ValueError(f"block_snps must be >= 1, got {block_snps}")
    tiles = []
    for i0 in range(0, n_snps, block_snps):
        i1 = min(i0 + block_snps, n_snps)
        for j0 in range(0, i0 + 1, block_snps):
            if j0 == i0 and not include_diagonal:
                continue
            tiles.append(
                TileTask(i0=i0, i1=i1, j0=j0, j1=min(j0 + block_snps, n_snps))
            )
    return tiles


def compute_tile(
    words: np.ndarray,
    freqs: np.ndarray,
    n_samples: int,
    tile: TileTask,
    *,
    stat: str = "r2",
    params: BlockingParams = DEFAULT_BLOCKING,
    kernel: str = "numpy",
    undefined: float = np.nan,
    recorder: "MetricsRecorder | None" = None,
) -> np.ndarray:
    """Compute one statistic block from the packed words (pure function).

    This is the whole per-tile work unit — one rectangular popcount GEMM
    plus the elementwise statistic — factored out so the serial loop,
    thread workers, and shared-memory process workers run byte-identical
    code. An optional *recorder* is forwarded to the blocked GEMM driver
    (in-process callers only; pool workers compute without one and their
    timings travel back in :class:`TileResult`).
    """
    if stat not in _ENGINE_STATS:
        raise ValueError(f"unknown LD statistic {stat!r}; choose r2/D/H")
    counts = popcount_gemm(
        words[tile.i0 : tile.i1],
        words[tile.j0 : tile.j1],
        params=params,
        kernel=kernel,
        recorder=recorder,
    )
    # Divide (rather than multiply by a reciprocal) so tiles are
    # bit-identical to the in-memory pipeline's H = counts / N.
    h = counts / float(n_samples)
    p, q = freqs[tile.i0 : tile.i1], freqs[tile.j0 : tile.j1]
    if stat == "H":
        return h
    if stat == "D":
        return h - np.outer(p, q)
    return r_squared_matrix(h, p, q, undefined=undefined)


@dataclass(frozen=True)
class TileResult:
    """One computed tile plus its provenance (who computed it, how long).

    The transport unit between workers and the driver: the statistic
    block itself, the compute wall-clock measured *inside* the worker
    (so pool scheduling latency is excluded), and a worker identity —
    thread name in-process, ``pid-<n>`` for pool processes. This is what
    lets the per-tile metrics events attribute time to compute vs.
    delivery, the split the out-of-core GEMM literature says decides
    whether an overlap pipeline is actually overlapping.
    """

    block: np.ndarray
    compute_seconds: float
    worker: str


# ---------------------------------------------------------------------------
# Manifest: a crash-safe journal of completed tiles.
# ---------------------------------------------------------------------------


def input_fingerprint(
    matrix: BitMatrix,
    *,
    stat: str,
    block_snps: int,
    undefined: float = np.nan,
) -> str:
    """Digest identifying one (input, parameters) combination.

    Covers the packed words bit-for-bit plus every parameter that changes
    tile contents or tile geometry, so a manifest can refuse to resume a
    run whose inputs silently changed.
    """
    digest = hashlib.sha256()
    header = (
        f"repro-engine-v1|{matrix.n_samples}|{matrix.n_snps}|{matrix.n_words}"
        f"|{stat}|{block_snps}|{undefined!r}"
    )
    digest.update(header.encode())
    digest.update(np.ascontiguousarray(matrix.words).tobytes())
    return digest.hexdigest()


@dataclass
class TileManifest:
    """Append-only JSON-lines journal of completed tiles.

    Line 1 is a header carrying the input fingerprint; each subsequent line
    records one completed tile's ``(i0, j0)`` corner. Records are flushed
    and fsynced per tile, so after a crash the journal holds exactly the
    tiles whose sink delivery finished. A torn final line (the crash
    happened mid-write) is ignored on load.
    """

    path: Path
    fingerprint: str
    completed: set[tuple[int, int]] = field(default_factory=set)
    _fh: object | None = field(default=None, repr=False)

    MAGIC = "repro-tile-manifest"
    VERSION = 1

    @classmethod
    def open(
        cls, path: str | Path, fingerprint: str, *, resume: bool = False
    ) -> "TileManifest":
        """Open a manifest for writing, optionally resuming an existing one.

        With ``resume=True`` and an existing journal, the completed-tile set
        is loaded and appending continues; a fingerprint mismatch raises
        ``ValueError`` (the inputs or parameters changed, so the old tiles
        cannot be trusted). Without ``resume``, any existing journal is
        truncated.
        """
        path = Path(path)
        if resume and path.exists() and path.stat().st_size > 0:
            completed = cls._load_completed(path, fingerprint)
            manifest = cls(path=path, fingerprint=fingerprint, completed=completed)
            manifest._fh = path.open("a", encoding="utf-8")
            return manifest
        manifest = cls(path=path, fingerprint=fingerprint)
        manifest._fh = path.open("w", encoding="utf-8")
        manifest._write_line(
            {"magic": cls.MAGIC, "version": cls.VERSION, "fingerprint": fingerprint}
        )
        return manifest

    @classmethod
    def _load_completed(
        cls, path: Path, fingerprint: str
    ) -> set[tuple[int, int]]:
        lines = path.read_text(encoding="utf-8").splitlines()
        try:
            header = json.loads(lines[0])
        except (json.JSONDecodeError, IndexError) as exc:
            raise ValueError(f"corrupt tile manifest header in {path}") from exc
        if header.get("magic") != cls.MAGIC or header.get("version") != cls.VERSION:
            raise ValueError(f"{path} is not a version-{cls.VERSION} tile manifest")
        if header.get("fingerprint") != fingerprint:
            raise ValueError(
                f"manifest {path} was written for different inputs/parameters "
                "(fingerprint mismatch); rerun without resume"
            )
        completed = set()
        for line in lines[1:]:
            try:
                record = json.loads(line)
            except json.JSONDecodeError:
                # Torn tail from a crash mid-append: that tile will rerun.
                continue
            tile = record.get("tile")
            if isinstance(tile, list) and len(tile) == 2:
                completed.add((int(tile[0]), int(tile[1])))
        return completed

    def _write_line(self, record: dict) -> None:
        assert self._fh is not None
        self._fh.write(json.dumps(record, separators=(",", ":")) + "\n")
        self._fh.flush()
        os.fsync(self._fh.fileno())

    def record(self, tile: TileTask) -> None:
        """Journal *tile* as durably completed (flush + fsync)."""
        self._write_line({"tile": [tile.i0, tile.j0]})
        self.completed.add(tile.key)

    def close(self) -> None:
        if self._fh is not None:
            self._fh.close()
            self._fh = None

    def __enter__(self) -> "TileManifest":
        return self

    def __exit__(self, *exc_info: object) -> None:
        self.close()


# ---------------------------------------------------------------------------
# Executors.
# ---------------------------------------------------------------------------

#: Per-process state installed by the pool initializer (worker side).
_WORKER_STATE: dict = {}


def _init_worker(
    shm_name: str,
    words_shape: tuple[int, int],
    freqs: np.ndarray,
    n_samples: int,
    stat: str,
    params: BlockingParams,
    kernel: str,
    undefined: float,
    fault_hook: Callable[[tuple[int, int]], None] | None,
) -> None:
    """Attach the shared words segment once per worker process."""
    shm = shared_memory.SharedMemory(name=shm_name)
    words = np.ndarray(words_shape, dtype=np.uint64, buffer=shm.buf)
    _WORKER_STATE.update(
        shm=shm,
        words=words,
        freqs=freqs,
        n_samples=n_samples,
        stat=stat,
        params=params,
        kernel=kernel,
        undefined=undefined,
        fault_hook=fault_hook,
    )


def _run_tile_in_worker(tile: TileTask) -> TileResult:
    """Pool task: compute one tile against the attached shared words."""
    state = _WORKER_STATE
    if state.get("fault_hook") is not None:
        state["fault_hook"](tile.key)
    start = time.perf_counter()
    block = compute_tile(
        state["words"],
        state["freqs"],
        state["n_samples"],
        tile,
        stat=state["stat"],
        params=state["params"],
        kernel=state["kernel"],
        undefined=state["undefined"],
    )
    return TileResult(
        block=block,
        compute_seconds=time.perf_counter() - start,
        worker=f"pid-{os.getpid()}",
    )


def _largest_first(tiles: list[TileTask]) -> list[TileTask]:
    """Schedule big tiles first (LPT rule) so fringe slivers fill the tail.

    The same load-balancing idea as :func:`repro.core.parallel.
    partition_triangle_rows`, applied to a discrete tile list: the only
    imbalance left is at most one tile per worker.
    """
    return sorted(tiles, key=lambda t: (-t.n_pairs, t.i0, t.j0))


def _execute_pooled(
    pool_factory: Callable[[], Executor],
    task: Callable[[TileTask], TileResult],
    tiles: list[TileTask],
    deliver: Callable[[TileTask, TileResult], None],
    max_retries: int,
    on_retry: Callable[[TileTask, BaseException], None] | None = None,
    on_restart: Callable[[BaseException], None] | None = None,
) -> int:
    """Drive *task* over an executor with per-tile retry and pool rebuild.

    Results are delivered in the driver thread as they complete. A tile
    whose task raises is resubmitted up to *max_retries* times; a broken
    process pool (worker killed) is rebuilt up to *max_retries* times, with
    every undelivered tile resubmitted to the fresh pool. Returns the
    number of retries performed. *on_retry*/*on_restart* are observability
    hooks, invoked in the driver thread once per retry increment.
    """
    retries = 0
    restarts = 0
    attempts = dict.fromkeys(tiles, 0)
    remaining = list(tiles)
    while remaining:
        pool = pool_factory()
        submitted = remaining
        remaining = []
        delivered_now: set[TileTask] = set()
        try:
            futures = {pool.submit(task, tile): tile for tile in submitted}
            while futures:
                done, _ = wait(set(futures), return_when=FIRST_COMPLETED)
                for future in done:
                    tile = futures.pop(future)
                    error = future.exception()
                    if error is None:
                        deliver(tile, future.result())
                        delivered_now.add(tile)
                    elif isinstance(error, BrokenProcessPool):
                        raise error
                    else:
                        attempts[tile] += 1
                        retries += 1
                        if on_retry is not None:
                            on_retry(tile, error)
                        if attempts[tile] > max_retries:
                            raise error
                        futures[pool.submit(task, tile)] = tile
        except BrokenProcessPool as error:
            restarts += 1
            retries += 1
            if on_restart is not None:
                on_restart(error)
            if restarts > max_retries:
                raise
            remaining = [t for t in submitted if t not in delivered_now]
        finally:
            pool.shutdown(wait=True, cancel_futures=True)
    return retries


@dataclass(frozen=True)
class EngineReport:
    """Outcome summary of one :func:`run_engine` invocation."""

    engine: str
    n_workers: int
    n_tiles: int
    n_computed: int
    n_skipped: int
    n_retries: int

    @property
    def complete(self) -> bool:
        """All tiles accounted for (computed now or journaled earlier)."""
        return self.n_computed + self.n_skipped == self.n_tiles


def run_engine(
    data: BitMatrix | np.ndarray,
    sink: Callable[[int, int, np.ndarray], None],
    *,
    stat: str = "r2",
    block_snps: int = 512,
    engine: str = "serial",
    n_workers: int | None = None,
    params: BlockingParams = DEFAULT_BLOCKING,
    kernel: str = "numpy",
    undefined: float = np.nan,
    include_diagonal_blocks: bool = True,
    manifest_path: str | Path | None = None,
    resume: bool = False,
    max_retries: int = 2,
    fault_hook: Callable[[tuple[int, int]], None] | None = None,
    recorder: "MetricsRecorder | None" = None,
    progress: "ProgressReporter | None" = None,
) -> EngineReport:
    """Compute the lower-triangle LD matrix tile by tile into *sink*.

    Parameters
    ----------
    data:
        Dense binary ``(n_samples, n_snps)`` matrix or packed
        :class:`BitMatrix`.
    sink:
        Callable ``(i0, j0, block)``; always invoked in the driver process
        (single-threaded), in arbitrary tile order under ``threads``/
        ``processes``.
    stat:
        ``"r2"``, ``"D"``, or ``"H"``.
    engine:
        ``"serial"`` (in-process loop), ``"threads"`` (GIL-released numpy
        workers), or ``"processes"`` (shared-memory worker pool).
    n_workers:
        Worker count for ``threads``/``processes`` (default: CPU count).
    manifest_path:
        Path of the tile journal. Required for ``resume``; when set, every
        delivered tile is durably recorded so a later run can skip it.
    resume:
        Skip tiles already journaled in *manifest_path* for identical
        inputs and parameters (fingerprint-checked).
    max_retries:
        Times a failing tile is recomputed (and a crashed worker pool
        rebuilt) before the run is abandoned.
    fault_hook:
        Fault-injection point for tests: called as ``hook((i0, j0))`` in
        the worker before each tile is computed.
    recorder:
        Optional :class:`repro.observe.MetricsRecorder`. When set, the
        run emits structured events — ``run_start``, one
        ``tile_computed`` per delivered tile (tile key, compute seconds,
        deliver/flush seconds, bytes written, worker id), one
        ``tile_skipped`` per journaled tile honoured on resume,
        ``tile_retry`` / ``pool_restart`` per recovery action, and
        ``run_end`` — plus matching ``engine.*`` counters and timers.
        The default ``None`` costs one pointer comparison per tile.
    progress:
        Optional :class:`repro.observe.ProgressReporter`; advanced once
        per delivered or skipped tile by that tile's pair count.

    Returns
    -------
    :class:`EngineReport` with tile/retry accounting.
    """
    if engine not in ENGINES:
        raise ValueError(f"unknown engine {engine!r}; choose from {ENGINES}")
    if stat not in _ENGINE_STATS:
        raise ValueError(f"unknown LD statistic {stat!r}; choose r2/D/H")
    if max_retries < 0:
        raise ValueError(f"max_retries must be non-negative, got {max_retries}")
    if resume and manifest_path is None:
        raise ValueError("resume=True requires a manifest_path")
    matrix = as_bitmatrix(data)
    if matrix.n_samples == 0:
        raise ValueError("LD undefined for zero samples")
    if n_workers is None:
        n_workers = os.cpu_count() or 1
    if n_workers <= 0:
        raise ValueError(f"n_workers must be positive, got {n_workers}")

    tiles = enumerate_tiles(
        matrix.n_snps, block_snps, include_diagonal=include_diagonal_blocks
    )
    freqs = matrix.allele_frequencies()
    words = matrix.words

    manifest: TileManifest | None = None
    if manifest_path is not None:
        fingerprint = input_fingerprint(
            matrix, stat=stat, block_snps=block_snps, undefined=undefined
        )
        manifest = TileManifest.open(manifest_path, fingerprint, resume=resume)
    run_start = time.perf_counter()
    try:
        if manifest is not None and manifest.completed:
            todo = [t for t in tiles if t.key not in manifest.completed]
        else:
            todo = list(tiles)
        n_skipped = len(tiles) - len(todo)
        n_computed = 0

        if recorder is not None:
            recorder.event(
                "run_start",
                engine=engine,
                stat=stat,
                n_snps=matrix.n_snps,
                n_samples=matrix.n_samples,
                k_words=matrix.n_words,
                block_snps=block_snps,
                n_tiles=len(tiles),
                n_todo=len(todo),
            )
        if (recorder is not None or progress is not None) and n_skipped:
            for tile in tiles:
                if tile.key in manifest.completed:
                    if recorder is not None:
                        recorder.inc("engine.tiles_skipped")
                        recorder.inc("engine.pairs_skipped", tile.n_pairs)
                        recorder.event(
                            "tile_skipped",
                            tile=[tile.i0, tile.j0],
                            pairs=tile.n_pairs,
                        )
                    if progress is not None:
                        progress.advance(tile.n_pairs, skipped=True)

        def deliver(tile: TileTask, result: TileResult) -> None:
            nonlocal n_computed
            deliver_start = time.perf_counter()
            sink(tile.i0, tile.j0, result.block)
            if manifest is not None:
                # Make the sink's effects durable before journaling the
                # tile, so resume never trusts an unflushed block.
                flush = getattr(sink, "flush", None)
                if callable(flush):
                    flush()
                manifest.record(tile)
            n_computed += 1
            if recorder is not None:
                deliver_seconds = time.perf_counter() - deliver_start
                recorder.inc("engine.tiles_computed")
                recorder.inc("engine.pairs_computed", tile.n_pairs)
                recorder.inc("engine.bytes_delivered", int(result.block.nbytes))
                recorder.observe_time(
                    "engine.tile_compute_seconds", result.compute_seconds
                )
                recorder.observe_time(
                    "engine.tile_deliver_seconds", deliver_seconds
                )
                recorder.event(
                    "tile_computed",
                    tile=[tile.i0, tile.j0],
                    pairs=tile.n_pairs,
                    compute_s=result.compute_seconds,
                    deliver_s=deliver_seconds,
                    bytes=int(result.block.nbytes),
                    worker=result.worker,
                )
            if progress is not None:
                progress.advance(tile.n_pairs)

        def on_retry(tile: TileTask, error: BaseException) -> None:
            if recorder is not None:
                recorder.inc("engine.retries")
                recorder.event(
                    "tile_retry", tile=[tile.i0, tile.j0], error=repr(error)
                )

        def on_restart(error: BaseException) -> None:
            if recorder is not None:
                recorder.inc("engine.pool_restarts")
                recorder.event("pool_restart", error=repr(error))

        def local_task(tile: TileTask) -> TileResult:
            if fault_hook is not None:
                fault_hook(tile.key)
            start = time.perf_counter()
            block = compute_tile(
                words,
                freqs,
                matrix.n_samples,
                tile,
                stat=stat,
                params=params,
                kernel=kernel,
                undefined=undefined,
            )
            return TileResult(
                block=block,
                compute_seconds=time.perf_counter() - start,
                worker=threading.current_thread().name,
            )

        if not todo:
            retries = 0
        elif engine == "serial":
            retries = 0
            for tile in todo:
                for attempt in range(max_retries + 1):
                    try:
                        result = local_task(tile)
                        break
                    except Exception as error:
                        retries += 1
                        on_retry(tile, error)
                        if attempt == max_retries:
                            raise
                deliver(tile, result)
        elif engine == "threads":
            workers = min(n_workers, len(todo))
            retries = _execute_pooled(
                lambda: ThreadPoolExecutor(max_workers=workers),
                local_task,
                _largest_first(todo),
                deliver,
                max_retries,
                on_retry=on_retry,
                on_restart=on_restart,
            )
        else:  # processes
            retries = _run_process_engine(
                words=words,
                freqs=freqs,
                n_samples=matrix.n_samples,
                todo=_largest_first(todo),
                deliver=deliver,
                n_workers=min(n_workers, len(todo)),
                stat=stat,
                params=params,
                kernel=kernel,
                undefined=undefined,
                max_retries=max_retries,
                fault_hook=fault_hook,
                on_retry=on_retry,
                on_restart=on_restart,
            )
    finally:
        if manifest is not None:
            manifest.close()

    if recorder is not None:
        run_seconds = time.perf_counter() - run_start
        recorder.observe_time("engine.run_seconds", run_seconds)
        recorder.event(
            "run_end",
            n_computed=n_computed,
            n_skipped=n_skipped,
            n_retries=retries,
            seconds=run_seconds,
        )
    return EngineReport(
        engine=engine,
        n_workers=1 if engine == "serial" else min(n_workers, max(len(todo), 1)),
        n_tiles=len(tiles),
        n_computed=n_computed,
        n_skipped=n_skipped,
        n_retries=retries,
    )


def _run_process_engine(
    *,
    words: np.ndarray,
    freqs: np.ndarray,
    n_samples: int,
    todo: list[TileTask],
    deliver: Callable[[TileTask, TileResult], None],
    n_workers: int,
    stat: str,
    params: BlockingParams,
    kernel: str,
    undefined: float,
    max_retries: int,
    fault_hook: Callable[[tuple[int, int]], None] | None,
    on_retry: Callable[[TileTask, BaseException], None] | None = None,
    on_restart: Callable[[BaseException], None] | None = None,
) -> int:
    """Process-pool execution with the packed words in shared memory.

    The driver copies the packed word matrix into one
    ``multiprocessing.shared_memory`` segment; each worker maps it via the
    pool initializer, so task submission pickles only a :class:`TileTask`
    (four ints) and the result block travels back once per tile.
    """
    # Prefer fork where available: worker startup is cheap and initargs are
    # inherited rather than pickled. Everything passed is spawn-safe too.
    if "fork" in get_all_start_methods():
        ctx = get_context("fork")
    else:  # pragma: no cover - non-POSIX fallback
        ctx = get_context()
    words = np.ascontiguousarray(words, dtype=np.uint64)
    shm = shared_memory.SharedMemory(create=True, size=max(1, words.nbytes))
    try:
        shared = np.ndarray(words.shape, dtype=np.uint64, buffer=shm.buf)
        shared[:] = words

        def pool_factory() -> ProcessPoolExecutor:
            return ProcessPoolExecutor(
                max_workers=n_workers,
                mp_context=ctx,
                initializer=_init_worker,
                initargs=(
                    shm.name,
                    words.shape,
                    freqs,
                    n_samples,
                    stat,
                    params,
                    kernel,
                    undefined,
                    fault_hook,
                ),
            )

        return _execute_pooled(
            pool_factory, _run_tile_in_worker, todo, deliver, max_retries,
            on_retry=on_retry, on_restart=on_restart,
        )
    finally:
        shm.close()
        try:
            shm.unlink()
        except FileNotFoundError:  # pragma: no cover - already reclaimed
            pass
