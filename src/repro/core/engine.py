"""Sharded tiled LD execution engine: restartable out-of-core ``GᵀG``.

The blocked popcount-GEMM (Figure 1) and the streaming loop
(:mod:`repro.core.streaming`) already express the r² matrix as independent
lower-triangle tiles; this module turns that observation into an execution
layer that scales past one process and survives interruption — the shard-
and-restart discipline second-generation PLINK uses to reach biobank sizes:

- :func:`enumerate_tiles` decomposes the lower triangle into an explicit
  list of :class:`TileTask` units (the shared enumeration the streaming
  loop also uses);
- :func:`run_engine` schedules those tiles over one of four executors —
  ``serial`` (in-process loop), ``threads`` (GIL-released numpy workers),
  ``processes`` (a per-run ``ProcessPoolExecutor`` whose workers attach
  the packed words via ``multiprocessing.shared_memory``, so the genomic
  matrix is mapped once instead of pickled per task), or ``persistent``
  (a warm worker pool from :mod:`repro.core.executors` that outlives the
  run, so successive calls against the same panel pay zero spawn or
  attach cost). The execution strategies themselves live behind the
  :class:`repro.core.executors.ExecutorBackend` interface;
- :class:`TileManifest` journals every completed tile to disk (JSON lines
  with an input fingerprint and a per-record CRC32), so an interrupted run
  restarted with ``resume=True`` recomputes only the missing tiles;
- failures are survived, not just reported: failing tiles are retried
  with exponential backoff and deterministic jitter, a crashed worker
  pool is rebuilt, a pool that cannot be (re)spawned degrades
  ``processes → threads → serial``, tiles stuck past ``tile_timeout``
  trip a hung-worker watchdog, corrupted tile payloads are caught by a
  CRC32 on the worker→driver handoff and recomputed, and a tile that
  exhausts ``max_retries`` can be *quarantined* (journaled, reported,
  never written to the sink) instead of aborting the run.

Deterministic fault injection for all of the above lives in
:mod:`repro.faults`; pass a :class:`repro.faults.FaultPlan` as
``faults=`` to rehearse any failure schedule. Results are always
delivered to the caller's sink in the driver process, so any
:mod:`repro.core.streaming` sink works unchanged and needs no locking.
Tiles may arrive in any order under ``threads``/``processes``.
"""

from __future__ import annotations

import hashlib
import json
import os
import threading
import time
import zlib
from collections.abc import Callable
from dataclasses import dataclass, field
from pathlib import Path
from typing import TYPE_CHECKING

import numpy as np

from repro.core.banding import BandSpec, dense_tile_count
from repro.core.blocking import BlockingParams
from repro.core.gemm import DEFAULT_KERNEL, popcount_gemm
from repro.core.ldmatrix import as_bitmatrix
from repro.core.stats import r_squared_matrix
from repro.encoding.bitmatrix import BitMatrix
from repro.faults import FaultPlan, InjectedCrash
from repro.observe.spans import (
    SpanProfiler,
    current_profiler,
    install_profiler,
    span,
)

if TYPE_CHECKING:  # recorder/progress typing only (observe.metrics pulls in
    # nothing from core; spans resolves eagerly above without a cycle)
    from repro.observe.live import LivePublisher
    from repro.observe.metrics import MetricsRecorder
    from repro.observe.progress import ProgressReporter

__all__ = [
    "ENGINES",
    "EngineReport",
    "TileCorruptionError",
    "TileManifest",
    "TileResult",
    "TileTask",
    "TileTimeoutError",
    "compute_tile",
    "enumerate_tiles",
    "input_fingerprint",
    "run_engine",
    "store_fingerprint",
]

#: Supported execution strategies, in increasing order of isolation.
ENGINES = ("serial", "threads", "processes", "persistent")

#: Degradation chain: where each executor falls back to when its worker
#: pool repeatedly fails to (re)spawn.
_FALLBACK = {
    "persistent": "threads",
    "processes": "threads",
    "threads": "serial",
    "serial": None,
}

_ENGINE_STATS = ("r2", "D", "H")


class TileCorruptionError(RuntimeError):
    """A tile payload failed its CRC32 on the worker→driver handoff."""


class TileTimeoutError(RuntimeError):
    """A tile exceeded the per-tile wall-clock budget (``tile_timeout``)."""


@dataclass(frozen=True, order=True)
class TileTask:
    """One schedulable unit: the statistic block ``[i0:i1, j0:j1]``.

    Tiles produced by :func:`enumerate_tiles` satisfy ``j0 <= i0`` (lower
    triangle) and carry their exclusive end indices so workers need no
    knowledge of the global blocking.
    """

    i0: int
    i1: int
    j0: int
    j1: int

    @property
    def key(self) -> tuple[int, int]:
        """Manifest identity of the tile (its top-left corner)."""
        return (self.i0, self.j0)

    @property
    def n_pairs(self) -> int:
        """Matrix cells this tile covers (work estimate for scheduling)."""
        return (self.i1 - self.i0) * (self.j1 - self.j0)


def enumerate_tiles(
    n_snps: int,
    block_snps: int,
    *,
    include_diagonal: bool = True,
    band: "BandSpec | None" = None,
) -> list[TileTask]:
    """Lower-triangle block decomposition shared by streaming and the engine.

    Row-major over block rows, so sequential consumption matches the order
    :func:`repro.core.streaming.stream_ld_blocks` has always delivered.

    With a *band*, each block row starts at the first tile column that can
    meet the band instead of column 0 — tiles entirely outside the band
    are never materialized, which is the engine's O(n·W) work bound. Every
    in-band pair stays covered: a tile's closest pair is ``(i0, j1-1)``,
    so any tile holding an in-band pair also meets the band itself.
    """
    if n_snps < 0:
        raise ValueError(f"n_snps must be non-negative, got {n_snps}")
    if block_snps < 1:
        raise ValueError(f"block_snps must be >= 1, got {block_snps}")
    if band is not None:
        band.validate_for(n_snps)
    tiles = []
    for i0 in range(0, n_snps, block_snps):
        i1 = min(i0 + block_snps, n_snps)
        j_start = 0 if band is None else band.first_block_col(i0, block_snps)
        for j0 in range(j_start, i0 + 1, block_snps):
            if j0 == i0 and not include_diagonal:
                continue
            tiles.append(
                TileTask(i0=i0, i1=i1, j0=j0, j1=min(j0 + block_snps, n_snps))
            )
    return tiles


def compute_tile(
    words: np.ndarray,
    freqs: np.ndarray,
    n_samples: int,
    tile: TileTask,
    *,
    stat: str = "r2",
    params: BlockingParams | None = None,
    kernel: str = DEFAULT_KERNEL,
    undefined: float = np.nan,
    recorder: "MetricsRecorder | None" = None,
) -> np.ndarray:
    """Compute one statistic block from the packed words (pure function).

    This is the whole per-tile work unit — one rectangular popcount GEMM
    plus the elementwise statistic — factored out so the serial loop,
    thread workers, and shared-memory process workers run byte-identical
    code. An optional *recorder* is forwarded to the blocked GEMM driver
    (in-process callers only; pool workers compute without one and their
    timings travel back in :class:`TileResult`).
    """
    if stat not in _ENGINE_STATS:
        raise ValueError(f"unknown LD statistic {stat!r}; choose r2/D/H")
    counts = popcount_gemm(
        words[tile.i0 : tile.i1],
        words[tile.j0 : tile.j1],
        params=params,
        kernel=kernel,
        recorder=recorder,
    )
    # Divide (rather than multiply by a reciprocal) so tiles are
    # bit-identical to the in-memory pipeline's H = counts / N.
    with span("stat"):
        h = counts / float(n_samples)
        p, q = freqs[tile.i0 : tile.i1], freqs[tile.j0 : tile.j1]
        if stat == "H":
            return h
        if stat == "D":
            return h - np.outer(p, q)
        return r_squared_matrix(h, p, q, undefined=undefined)


def _crc32_array(block: np.ndarray) -> int:
    """CRC32 over a block's payload bytes (contiguous view, no copy)."""
    return zlib.crc32(memoryview(np.ascontiguousarray(block)).cast("B"))


@dataclass(frozen=True)
class TileResult:
    """One computed tile plus its provenance (who computed it, how long).

    The transport unit between workers and the driver: the statistic
    block itself, the compute wall-clock measured *inside* the worker
    (so pool scheduling latency is excluded), a worker identity —
    thread name in-process, ``pid-<n>`` for pool processes — and an
    optional CRC32 of the payload taken in the worker, verified in the
    driver before the sink sees the block. The checksum is always on for
    the ``processes`` handoff (shared memory + pickle is the corruption
    surface) and whenever a fault plan is active.

    With span profiling enabled, ``phase_seconds`` carries the tile's
    per-phase self-time breakdown (``pack_a``, ``pack_b``,
    ``plane_matmul``, ``stat``, ...) collected from the worker's
    profiler — the transport by which per-worker attribution reaches
    the driver across the process boundary.
    """

    block: np.ndarray
    compute_seconds: float
    worker: str
    checksum: int | None = None
    phase_seconds: dict | None = None


# ---------------------------------------------------------------------------
# Manifest: a crash-safe journal of completed tiles.
# ---------------------------------------------------------------------------


def input_fingerprint(
    matrix: BitMatrix,
    *,
    stat: str,
    block_snps: int,
    undefined: float = np.nan,
    band: BandSpec | None = None,
) -> str:
    """Digest identifying one (input, parameters) combination.

    Covers the packed words bit-for-bit plus every parameter that changes
    tile contents or tile geometry, so a manifest can refuse to resume a
    run whose inputs silently changed. A band changes both (tiles are
    pruned and straddling tiles masked), so its token joins the header —
    appended only when a band is set, keeping pre-band manifests valid.
    """
    digest = hashlib.sha256()
    header = (
        f"repro-engine-v1|{matrix.n_samples}|{matrix.n_snps}|{matrix.n_words}"
        f"|{stat}|{block_snps}|{undefined!r}"
    )
    if band is not None:
        header += f"|{band.token()}"
    digest.update(header.encode())
    digest.update(np.ascontiguousarray(matrix.words).tobytes())
    return digest.hexdigest()


def store_fingerprint(
    store,
    *,
    stat: str,
    block_snps: int,
    undefined: float = np.nan,
    band: BandSpec | None = None,
) -> str:
    """Manifest fingerprint for a disk-backed panel store.

    Same role as :func:`input_fingerprint` but built from the store's
    pack-time content digest instead of re-reading the words — a resumed
    out-of-core sweep must not scan terabytes just to check identity.
    (The two fingerprints deliberately differ: a manifest written for an
    in-RAM run does not resume a store-backed one, and vice versa, since
    the store's digest — not the driver's RAM — is what was verified.)
    """
    digest = hashlib.sha256()
    header = (
        f"repro-engine-store-v1|{store.n_samples}|{store.n_snps}"
        f"|{store.n_words}|{stat}|{block_snps}|{undefined!r}"
    )
    if band is not None:
        header += f"|{band.token()}"
    digest.update(header.encode())
    digest.update(store.content_digest.encode())
    return digest.hexdigest()


def _resolve_store(data):
    """A :class:`repro.io.panelstore.PanelStore` for *data*, or ``None``.

    Accepts an already-open store or a filesystem path to one; every
    other input (dense array, BitMatrix) stays on the in-core path.
    """
    from repro.io.panelstore import PanelStore

    if isinstance(data, PanelStore):
        return data
    if isinstance(data, (str, Path)):
        return PanelStore.open(data)
    return None


def _record_crc(record: dict) -> int:
    """CRC32 of a manifest record's canonical serialization (sans crc)."""
    return zlib.crc32(
        json.dumps(record, separators=(",", ":"), sort_keys=True).encode()
    )


@dataclass
class TileManifest:
    """Append-only JSON-lines journal of completed and quarantined tiles.

    Line 1 is a header carrying the input fingerprint; each subsequent line
    records one tile outcome — completed (``{"tile": [i0, j0]}``) or
    quarantined (``{"tile": ..., "status": "quarantined", "error": ...}``).
    Version 2 adds a ``crc`` field to every line (CRC32 of the record's
    canonical serialization), so a bit-flipped or otherwise corrupted
    record is *detected* on load instead of silently trusted or skipped.

    Records are flushed and fsynced per tile, so after a crash the journal
    holds exactly the tiles whose sink delivery finished. A torn final
    line — the crash happened mid-append, so the line has no terminating
    newline — is tolerated on load (that tile simply reruns) and truncated
    away before appending resumes; a corrupt *interior* record raises,
    because it means the journal can no longer be trusted.
    """

    path: Path
    fingerprint: str
    completed: set[tuple[int, int]] = field(default_factory=set)
    quarantined: dict[tuple[int, int], str] = field(default_factory=dict)
    _fh: object | None = field(default=None, repr=False)

    MAGIC = "repro-tile-manifest"
    VERSION = 2
    #: Versions this loader still reads (v1 lacked per-record CRCs).
    SUPPORTED_VERSIONS = (1, 2)

    @classmethod
    def open(
        cls, path: str | Path, fingerprint: str, *, resume: bool = False
    ) -> "TileManifest":
        """Open a manifest for writing, optionally resuming an existing one.

        With ``resume=True`` and an existing journal, the completed- and
        quarantined-tile sets are loaded and appending continues (after
        truncating any torn final line); a fingerprint mismatch raises
        ``ValueError`` (the inputs or parameters changed, so the old tiles
        cannot be trusted). Without ``resume``, any existing journal is
        truncated.
        """
        path = Path(path)
        if resume and path.exists() and path.stat().st_size > 0:
            completed, quarantined, keep_bytes = cls._load(path, fingerprint)
            if keep_bytes < path.stat().st_size:
                # Drop the torn tail so the next append starts on a fresh
                # line instead of concatenating into the partial record.
                with path.open("r+b") as raw:
                    raw.truncate(keep_bytes)
            manifest = cls(
                path=path,
                fingerprint=fingerprint,
                completed=completed,
                quarantined=quarantined,
            )
            manifest._fh = path.open("a", encoding="utf-8")
            return manifest
        manifest = cls(path=path, fingerprint=fingerprint)
        manifest._fh = path.open("w", encoding="utf-8")
        manifest._write_line(
            {"magic": cls.MAGIC, "version": cls.VERSION, "fingerprint": fingerprint}
        )
        return manifest

    @classmethod
    def _load(
        cls, path: Path, fingerprint: str
    ) -> tuple[set[tuple[int, int]], dict[tuple[int, int], str], int]:
        """Parse a journal; returns (completed, quarantined, good bytes)."""
        raw = path.read_bytes()
        text = raw.decode("utf-8", errors="replace")
        keep_bytes = len(raw)
        if text and not text.endswith("\n"):
            # Unterminated final line: a crash mid-append. Everything
            # after the last newline is the torn tail; ignore it (that
            # tile reruns) and remember where the good prefix ends.
            cut = text.rfind("\n") + 1
            keep_bytes = len(text[:cut].encode("utf-8"))
            text = text[:cut]
        lines = text.splitlines()
        try:
            header = json.loads(lines[0])
            if not isinstance(header, dict):
                raise ValueError("header is not an object")
        except (json.JSONDecodeError, IndexError, ValueError) as exc:
            raise ValueError(f"corrupt tile manifest header in {path}") from exc
        version = header.get("version")
        if header.get("magic") != cls.MAGIC or version not in cls.SUPPORTED_VERSIONS:
            raise ValueError(
                f"{path} is not a version-{'/'.join(map(str, cls.SUPPORTED_VERSIONS))}"
                " tile manifest"
            )
        if version >= 2:
            cls._check_crc(header, path, 1)
        if header.get("fingerprint") != fingerprint:
            raise ValueError(
                f"manifest {path} was written for different inputs/parameters "
                "(fingerprint mismatch); rerun without resume"
            )
        completed: set[tuple[int, int]] = set()
        quarantined: dict[tuple[int, int], str] = {}
        for lineno, line in enumerate(lines[1:], start=2):
            try:
                record = json.loads(line)
                if not isinstance(record, dict):
                    raise ValueError("record is not an object")
            except (json.JSONDecodeError, ValueError) as exc:
                raise ValueError(
                    f"corrupt manifest record at {path}:{lineno} ({exc}); "
                    "the journal cannot be trusted — rerun without resume"
                ) from exc
            if version >= 2:
                cls._check_crc(record, path, lineno)
            tile = record.get("tile")
            if not (isinstance(tile, list) and len(tile) == 2):
                raise ValueError(
                    f"corrupt manifest record at {path}:{lineno} "
                    f"(no tile key in {record!r}); rerun without resume"
                )
            key = (int(tile[0]), int(tile[1]))
            if record.get("status") == "quarantined":
                if key not in completed:
                    quarantined[key] = str(record.get("error", ""))
            else:
                completed.add(key)
                quarantined.pop(key, None)
        return completed, quarantined, keep_bytes

    @classmethod
    def _check_crc(cls, record: dict, path: Path, lineno: int) -> None:
        stored = record.pop("crc", None)
        actual = _record_crc(record)
        if stored != actual:
            raise ValueError(
                f"manifest record checksum mismatch at {path}:{lineno} "
                f"(stored {stored!r}, computed {actual}); the journal is "
                "corrupt — rerun without resume"
            )

    def _write_line(self, record: dict, *, torn: bool = False) -> None:
        assert self._fh is not None
        payload = dict(record)
        payload["crc"] = _record_crc(record)
        line = json.dumps(payload, separators=(",", ":"))
        if torn:
            line = line[: max(1, len(line) // 2)]
        else:
            line += "\n"
        self._fh.write(line)
        self._fh.flush()
        os.fsync(self._fh.fileno())

    def record(self, tile: TileTask) -> None:
        """Journal *tile* as durably completed (flush + fsync)."""
        self._write_line({"tile": [tile.i0, tile.j0]})
        self.completed.add(tile.key)
        self.quarantined.pop(tile.key, None)

    def record_quarantine(self, tile: TileTask, error: str) -> None:
        """Journal *tile* as quarantined (retries exhausted; never written)."""
        self._write_line(
            {"tile": [tile.i0, tile.j0], "status": "quarantined", "error": error}
        )
        self.quarantined[tile.key] = error

    def record_torn(self, tile: TileTask) -> None:
        """Write a deliberately truncated record (fault injection only).

        Simulates a crash mid-append: half a record, no newline, flushed
        to disk. The caller raises :class:`repro.faults.InjectedCrash`
        immediately after; a resumed run must tolerate the torn tail.
        """
        self._write_line({"tile": [tile.i0, tile.j0]}, torn=True)

    def close(self) -> None:
        if self._fh is not None:
            self._fh.close()
            self._fh = None

    def __enter__(self) -> "TileManifest":
        return self

    def __exit__(self, *exc_info: object) -> None:
        self.close()


@dataclass(frozen=True)
class EngineReport:
    """Outcome summary of one :func:`run_engine` invocation."""

    engine: str
    n_workers: int
    n_tiles: int
    n_computed: int
    n_skipped: int
    n_retries: int
    engine_used: str = ""
    n_quarantined: int = 0
    quarantined: tuple[tuple[int, int], ...] = ()
    n_batches: int = 0
    n_pool_spawns: int = 0
    n_worker_respawns: int = 0
    #: Band accounting (zero on dense runs): tiles the band enumeration
    #: never materialized, tiles straddling the band edge (masked on
    #: delivery), and the in-band pair-cell count the run delivers.
    n_pruned: int = 0
    n_partial: int = 0
    band_pairs: int = 0

    @property
    def complete(self) -> bool:
        """All tiles accounted for (computed now or journaled earlier).

        Quarantined tiles are neither, so a run with quarantines is
        never complete — the matrix has holes the caller must not trust.
        """
        return self.n_computed + self.n_skipped == self.n_tiles

    @property
    def degraded(self) -> bool:
        """True when the run finished on a weaker executor than requested."""
        return bool(self.engine_used) and self.engine_used != self.engine


def run_engine(
    data: "BitMatrix | np.ndarray | str | Path",
    sink: Callable[[int, int, np.ndarray], None],
    *,
    stat: str = "r2",
    block_snps: int = 512,
    engine: str = "serial",
    n_workers: int | None = None,
    memory_budget: int | None = None,
    batch_tiles: int | None = None,
    params: BlockingParams | None = None,
    kernel: str = DEFAULT_KERNEL,
    undefined: float = np.nan,
    include_diagonal_blocks: bool = True,
    band: "int | BandSpec | None" = None,
    manifest_path: str | Path | None = None,
    resume: bool = False,
    max_retries: int = 2,
    tile_timeout: float | None = None,
    retry_backoff: float = 0.05,
    retry_backoff_cap: float = 2.0,
    allow_quarantine: bool = False,
    faults: FaultPlan | None = None,
    recorder: "MetricsRecorder | None" = None,
    progress: "ProgressReporter | None" = None,
    profiler: SpanProfiler | None = None,
    live: "LivePublisher | None" = None,
) -> EngineReport:
    """Compute the lower-triangle LD matrix tile by tile into *sink*.

    Parameters
    ----------
    data:
        Dense binary ``(n_samples, n_snps)`` matrix, packed
        :class:`BitMatrix`, an open
        :class:`repro.io.panelstore.PanelStore`, or a filesystem path to
        one (produced by ``repro pack``). Store-backed inputs run
        *out-of-core*: no engine copies the panel into RAM or shared
        memory — serial/threads compute against budgeted prefetch
        windows, and process-pool workers map the store read-only by
        path.
    memory_budget:
        Byte ceiling for resident panel windows (store-backed inputs
        only). Enables the double-buffered prefetch pipeline
        (:mod:`repro.core.prefetch`): a loader thread stages the next
        tile's A/B windows from disk while the fused GEMM computes the
        current one, with ``io.prefetch``/``io.wait`` spans and
        ``prefetch.*`` metrics attributing the I/O. ``None`` (default)
        reads the memmap on demand with no explicit windowing.
    sink:
        Callable ``(i0, j0, block)``; always invoked in the driver process
        (single-threaded), in arbitrary tile order under ``threads``/
        ``processes``.
    stat:
        ``"r2"``, ``"D"``, or ``"H"``.
    engine:
        ``"serial"`` (in-process loop), ``"threads"`` (GIL-released numpy
        workers), ``"processes"`` (per-run shared-memory worker pool), or
        ``"persistent"`` (a warm worker pool that survives across
        ``run_engine`` calls — see :mod:`repro.core.executors`; a second
        run against the same panel performs zero pool spawns). When a
        worker pool repeatedly fails to spawn, execution degrades
        ``persistent/processes → threads → serial`` rather than
        aborting; the executor that finished is reported as
        ``engine_used``.
    n_workers:
        Worker count for ``threads``/``processes`` (default: CPU count).
    batch_tiles:
        Tiles dispatched per pool future under ``threads``/``processes``
        (amortizes submission and result overhead; failures within a
        batch are isolated per tile). ``None`` (default) picks a size
        from the tile count and worker count, and a ``tile_timeout``
        forces batches of 1 so the watchdog budget stays per-tile. The
        serial engine ignores it.
    band:
        Optional distance band: an ``int`` window (pairs with
        ``i - j <= band`` SNPs) or a :class:`repro.core.banding.BandSpec`
        (index or genomic). Tiles entirely outside the band are never
        enumerated (reported as ``n_pruned`` and the
        ``engine.tiles_pruned`` counter); tiles straddling the band edge
        compute the full tile GEMM — the rectangular product is what
        keeps the kernel at full efficiency — but out-of-band cells are
        overwritten with *undefined* before the sink sees the block. The
        band is folded into the manifest fingerprint, so resume /
        quarantine / chaos semantics carry over unchanged; out-of-core
        runs prefetch only the window pairs that meet the band.
    manifest_path:
        Path of the tile journal. Required for ``resume``; when set, every
        delivered tile is durably recorded so a later run can skip it.
    resume:
        Skip tiles already journaled in *manifest_path* for identical
        inputs and parameters (fingerprint-checked). Tiles journaled as
        *quarantined* are retried, not skipped.
    max_retries:
        Times a failing tile is recomputed (and a crashed worker pool
        rebuilt) before the tile is quarantined or the run abandoned.
    tile_timeout:
        Per-tile wall-clock budget in seconds. Under ``processes`` a
        hung worker is SIGKILLed and the pool rebuilt; under
        ``persistent`` only the stuck worker is killed and respawned in
        place; under ``threads`` the stuck future is orphaned and the
        tile resubmitted; the serial loop checks post-hoc. ``None``
        (default) disables the watchdog.
    retry_backoff / retry_backoff_cap:
        Base and cap (seconds) of the exponential backoff between retry
        attempts; jitter is deterministic per (tile, attempt). Set the
        base to 0 to retry immediately.
    allow_quarantine:
        After ``max_retries``, journal the poison tile as quarantined and
        finish the run (reporting it in :class:`EngineReport`) instead of
        aborting. The sink never receives a quarantined tile.
    faults:
        Optional :class:`repro.faults.FaultPlan` — deterministic fault
        injection at the ``tile_compute`` / ``tile_deliver`` /
        ``manifest_append`` / ``pool_spawn`` sites. ``None`` (default)
        costs one pointer comparison per site.
    recorder:
        Optional :class:`repro.observe.MetricsRecorder`. When set, the
        run emits structured events — ``run_start``, one
        ``tile_computed`` per delivered tile (tile key, compute seconds,
        deliver/flush seconds, bytes written, worker id), one
        ``tile_skipped`` per journaled tile honoured on resume,
        ``tile_retry`` / ``pool_restart`` per recovery action plus
        ``tile_corrupt`` / ``tile_timeout`` / ``tile_quarantined`` /
        ``pool_spawn_failed`` / ``executor_degraded`` for the hardened
        paths, and ``run_end`` — plus matching ``engine.*`` counters and
        timers. The default ``None`` costs one pointer comparison per
        tile.
    progress:
        Optional :class:`repro.observe.ProgressReporter`; advanced once
        per delivered or skipped tile by that tile's pair count.
    profiler:
        Optional :class:`repro.observe.SpanProfiler`. When set, it is
        installed as the active profiler for the duration of the run
        (restored afterwards): driver phases (``driver.dispatch``,
        ``driver.wait``, ``driver.deliver``, ``driver.manifest_append``,
        ``driver.backoff``) record into it directly, in-process tiles
        record their GEMM phase spans into it per thread, and
        ``processes`` workers install their own profiler and ship each
        tile's phase breakdown back in ``TileResult.phase_seconds``
        (surfacing as ``phase.*`` timers and the ``phases`` field of
        ``tile_computed`` events when a recorder is attached). The
        default ``None`` leaves the no-op profiler active.
    live:
        Optional :class:`repro.observe.live.LivePublisher`. When set,
        the run publishes a crash-safe ``repro-live/1`` status snapshot
        (atomic tmp-rename) on a throttled cadence from the generic
        drive loop — tile/pair progress, per-worker heartbeats,
        retries/respawns, prefetch state, live anomaly flags — which
        ``repro top`` and ``repro export --prometheus`` consume while
        the run is still in flight. The default ``None`` costs one
        pointer comparison per hook, same as *recorder*.

    Returns
    -------
    :class:`EngineReport` with tile/retry/quarantine accounting.
    """
    if engine not in ENGINES:
        raise ValueError(f"unknown engine {engine!r}; choose from {ENGINES}")
    if stat not in _ENGINE_STATS:
        raise ValueError(f"unknown LD statistic {stat!r}; choose r2/D/H")
    if max_retries < 0:
        raise ValueError(f"max_retries must be non-negative, got {max_retries}")
    if tile_timeout is not None and tile_timeout <= 0:
        raise ValueError(f"tile_timeout must be positive, got {tile_timeout}")
    if retry_backoff < 0:
        raise ValueError(f"retry_backoff must be non-negative, got {retry_backoff}")
    if batch_tiles is not None and batch_tiles < 1:
        raise ValueError(f"batch_tiles must be positive, got {batch_tiles}")
    if resume and manifest_path is None:
        raise ValueError("resume=True requires a manifest_path")
    band_spec: BandSpec | None
    if band is None or isinstance(band, BandSpec):
        band_spec = band
    else:
        band_spec = BandSpec(window=int(band))
    store = _resolve_store(data)
    if store is not None:
        matrix = store.to_bitmatrix()
    else:
        matrix = as_bitmatrix(data)
    if memory_budget is not None and store is None:
        raise ValueError(
            "memory_budget applies to panel-store inputs only; pack the "
            "panel first (repro pack) and pass the store path"
        )
    if matrix.n_samples == 0:
        raise ValueError("LD undefined for zero samples")
    if n_workers is None:
        n_workers = os.cpu_count() or 1
    if n_workers <= 0:
        raise ValueError(f"n_workers must be positive, got {n_workers}")

    tiles = enumerate_tiles(
        matrix.n_snps,
        block_snps,
        include_diagonal=include_diagonal_blocks,
        band=band_spec,
    )
    n_pruned = 0
    n_partial = 0
    band_pairs = 0
    if band_spec is not None:
        n_pruned = dense_tile_count(
            matrix.n_snps, block_snps, include_diagonal_blocks
        ) - len(tiles)
        for tile in tiles:
            if band_spec.classify(tile) == "partial":
                n_partial += 1
            band_pairs += band_spec.pairs_in(tile)

    def tile_pairs(tile: TileTask) -> int:
        """Pairs a tile *delivers* — in-band cells under a band, the
        full rectangle otherwise — the unit all pair accounting
        (counters, events, progress) shares."""
        if band_spec is None:
            return tile.n_pairs
        return band_spec.pairs_in(tile)

    # Store-backed runs never scan the memmap for frequencies — they were
    # computed once at pack time and live in the header.
    freqs = store.freqs if store is not None else matrix.allele_frequencies()
    words = matrix.words
    window_rows = block_snps
    if store is not None and memory_budget is not None:
        # Validate the budget geometry up front (before any manifest is
        # opened), and size the windows all prefetchers will use.
        from repro.core import prefetch as _pf

        _, window_rows = _pf.plan_windows(
            matrix.n_snps,
            block_snps,
            row_nbytes=store.row_nbytes,
            memory_budget=memory_budget,
            banded=band_spec is not None,
        )
    # Checksum the handoff whenever results cross a process boundary, and
    # under any fault plan (so injected bit-flips are detectable on every
    # engine). In-process engines skip it otherwise: there is no
    # transport to corrupt, and the CRC is not free.
    checksum_local = faults is not None
    # Lazy: executors imports this module at its top level, so the
    # dependency must point one way at import time.
    from repro.core import executors as _ex

    manifest: TileManifest | None = None
    if manifest_path is not None:
        if store is not None:
            fingerprint = store_fingerprint(
                store, stat=stat, block_snps=block_snps, undefined=undefined,
                band=band_spec,
            )
        else:
            fingerprint = input_fingerprint(
                matrix, stat=stat, block_snps=block_snps, undefined=undefined,
                band=band_spec,
            )
        manifest = TileManifest.open(manifest_path, fingerprint, resume=resume)
    previous_profiler = (
        install_profiler(profiler) if profiler is not None else None
    )
    run_start = time.perf_counter()
    try:
        if manifest is not None and manifest.completed:
            todo = [t for t in tiles if t.key not in manifest.completed]
        else:
            todo = list(tiles)
        if store is not None:
            # Panel-major consumption order: every loaded window pair is
            # fully used before the sweep moves on, so out-of-core runs
            # evict windows exactly once (no budget, same locality win).
            from repro.core import prefetch as _pf

            todo = _pf.order_panel_major(todo, window_rows)
        n_skipped = len(tiles) - len(todo)
        #: Round-scoped prefetchers (out-of-core, budgeted runs only).
        pull_prefetcher = None
        warm_reader = None
        n_computed = 0
        quarantined: list[tuple[TileTask, str]] = []
        done_keys: set[tuple[int, int]] = set()

        if live is not None:
            live.begin(
                n_tiles=len(tiles),
                pairs_total=sum(tile_pairs(t) for t in tiles),
                n_pruned=n_pruned,
            )
        if recorder is not None:
            band_extra = {}
            if band_spec is not None:
                recorder.inc("engine.tiles_pruned", n_pruned)
                band_extra = {
                    "band": band_spec.describe(),
                    "tiles_pruned": n_pruned,
                    "tiles_partial": n_partial,
                    "band_pairs": band_pairs,
                }
            recorder.event(
                "run_start",
                engine=engine,
                stat=stat,
                n_snps=matrix.n_snps,
                n_samples=matrix.n_samples,
                k_words=matrix.n_words,
                block_snps=block_snps,
                n_tiles=len(tiles),
                n_todo=len(todo),
                **band_extra,
            )
        if (
            recorder is not None or progress is not None or live is not None
        ) and n_skipped:
            for tile in tiles:
                if tile.key in manifest.completed:
                    pairs = tile_pairs(tile)
                    if recorder is not None:
                        recorder.inc("engine.tiles_skipped")
                        recorder.inc("engine.pairs_skipped", pairs)
                        recorder.event(
                            "tile_skipped",
                            tile=[tile.i0, tile.j0],
                            pairs=pairs,
                        )
                    if progress is not None:
                        progress.advance(pairs, skipped=True)
                    if live is not None:
                        live.tile_skipped(pairs)

        def deliver(tile: TileTask, result: TileResult) -> None:
            nonlocal n_computed
            deliver_start = time.perf_counter()
            # Straddling tiles computed the full rectangle (that is what
            # keeps the GEMM dense); only in-band cells reach the sink.
            # Masked here, in the driver, *after* the CRC verification on
            # the worker handoff — so it is executor-agnostic and the
            # checksum still covers the raw computed payload. A masked
            # copy, not in-place: process results can alias arena memory.
            block = result.block
            if band_spec is not None and band_spec.classify(tile) == "partial":
                block = np.where(band_spec.mask(tile), block, undefined)
            with span("driver.deliver"):
                sink(tile.i0, tile.j0, block)
                if manifest is not None:
                    # Make the sink's effects durable before journaling
                    # the tile, so resume never trusts an unflushed block.
                    flush = getattr(sink, "flush", None)
                    if callable(flush):
                        flush()
            if manifest is not None:
                with span("driver.manifest_append"):
                    if faults is not None:
                        if faults.should_tear(tile.key):
                            manifest.record_torn(tile)
                            raise InjectedCrash(
                                "injected torn manifest append, tile "
                                f"{tile.key}"
                            )
                        faults.fire("manifest_append", tile.key, 0)
                    manifest.record(tile)
            n_computed += 1
            done_keys.add(tile.key)
            if warm_reader is not None:
                warm_reader.advance()
            if recorder is not None:
                deliver_seconds = time.perf_counter() - deliver_start
                recorder.inc("engine.tiles_computed")
                recorder.inc("engine.pairs_computed", tile_pairs(tile))
                recorder.inc("engine.bytes_delivered", int(block.nbytes))
                recorder.observe_time(
                    "engine.tile_compute_seconds", result.compute_seconds
                )
                recorder.observe_time(
                    "engine.tile_deliver_seconds", deliver_seconds
                )
                if result.phase_seconds:
                    for phase_name, secs in result.phase_seconds.items():
                        recorder.observe_time(f"phase.{phase_name}", secs)
                extra = (
                    {"phases": result.phase_seconds}
                    if result.phase_seconds else {}
                )
                recorder.event(
                    "tile_computed",
                    tile=[tile.i0, tile.j0],
                    pairs=tile_pairs(tile),
                    compute_s=result.compute_seconds,
                    deliver_s=deliver_seconds,
                    bytes=int(block.nbytes),
                    worker=result.worker,
                    **extra,
                )
            if progress is not None:
                progress.advance(tile_pairs(tile))
            if live is not None:
                live.tile_done(
                    worker=result.worker,
                    pairs=tile_pairs(tile),
                    compute_s=result.compute_seconds,
                )

        def quarantine_tile(tile: TileTask, error: BaseException) -> None:
            quarantined.append((tile, repr(error)))
            done_keys.add(tile.key)
            if manifest is not None:
                manifest.record_quarantine(tile, repr(error))
            if recorder is not None:
                recorder.inc("engine.tiles_quarantined")
                recorder.event(
                    "tile_quarantined",
                    tile=[tile.i0, tile.j0],
                    error=repr(error),
                )
            if live is not None:
                live.tile_quarantined()

        ctx = _ex.RetryContext(
            max_retries=max_retries,
            tile_timeout=tile_timeout,
            backoff_base=retry_backoff,
            backoff_cap=retry_backoff_cap,
            allow_quarantine=allow_quarantine,
            deliver=deliver,
            quarantine=quarantine_tile,
            recorder=recorder,
            live=live,
        )

        def local_task(tile: TileTask, epoch: int) -> TileResult:
            if faults is not None:
                faults.fire("tile_compute", tile.key, epoch)
            prof = current_profiler()
            # Budgeted out-of-core runs compute against the prefetcher's
            # resident windows (acquire blocks — and records io.wait —
            # only when the loader has not stayed ahead); everything
            # else reads the in-RAM or memmapped words directly.
            # Acquired before the compute clock starts, so stall time
            # never masquerades as tile compute time.
            source = (
                pull_prefetcher.acquire(tile)
                if pull_prefetcher is not None
                else words
            )
            mark = prof.mark()
            start = time.perf_counter()
            try:
                with prof.span("tile"):
                    block = compute_tile(
                        source,
                        freqs,
                        matrix.n_samples,
                        tile,
                        stat=stat,
                        params=params,
                        kernel=kernel,
                        undefined=undefined,
                    )
            finally:
                if pull_prefetcher is not None:
                    pull_prefetcher.release(tile)
            elapsed = time.perf_counter() - start
            phases = prof.collect(mark) or None
            if faults is not None:
                faults.fire("tile_deliver", tile.key, epoch)
            checksum = _crc32_array(block) if checksum_local else None
            if faults is not None:
                faults.corrupt("tile_deliver", tile.key, epoch, block)
            return TileResult(
                block=block,
                compute_seconds=elapsed,
                worker=threading.current_thread().name,
                checksum=checksum,
                phase_seconds=phases,
            )

        def local_batch(
            unit: tuple[TileTask, ...],
            epochs: tuple[int, ...],
            slot: int | None,
        ) -> "_ex._BatchOutcome":
            # Thread-pool twin of executors._run_batch_in_worker:
            # per-tile outcomes so a failing tile cannot sink its
            # batch-mates. No arena — thread workers share the driver's
            # address space already.
            items = []
            for index, (tile, epoch) in enumerate(zip(unit, epochs)):
                try:
                    result = local_task(tile, epoch)
                except Exception as error:  # noqa: BLE001 - in-band report
                    items.append(
                        _ex._TileOutcome(index=index, result=None, error=error)
                    )
                else:
                    items.append(
                        _ex._TileOutcome(index=index, result=result, error=None)
                    )
            return _ex._BatchOutcome(items=tuple(items))

        def resolve_batch_size(
            n_tiles: int, workers: int, current: str
        ) -> int:
            # A timeout is a per-tile budget: batching would let one slow
            # tile spend its batch-mates' allowance.
            if tile_timeout is not None:
                return 1
            if batch_tiles is not None:
                return batch_tiles
            if current == "persistent":
                # Warm dispatch is latency-bound (one pipe round trip
                # per unit): cover small runs in one unit per worker;
                # the 8-tile cap still splits large runs into many
                # units, where the LPT schedule balances load and the
                # per-worker outstanding window pipelines the trips.
                return max(1, min(8, -(-n_tiles // workers)))
            return max(1, min(8, n_tiles // (4 * workers)))

        def make_backend(
            current: str, work: list[TileTask]
        ) -> tuple["_ex.ExecutorBackend", list[TileTask], int]:
            """Backend + schedule + batch size for one dispatch round."""
            if current == "serial":
                return _ex.SerialBackend(local_task, ctx), list(work), 1
            workers = min(n_workers, len(work))
            bsize = resolve_batch_size(len(work), workers, current)
            # Out-of-core sweeps keep the panel-major order (window
            # locality beats LPT balance when windows cost disk reads);
            # in-core runs schedule largest-first as before.
            schedule = (
                list(work) if store is not None else _ex._largest_first(work)
            )
            if current == "threads":
                return _ex.ThreadsBackend(local_batch, workers, ctx), schedule, bsize
            shared = dict(
                words=words,
                freqs=freqs,
                n_samples=matrix.n_samples,
                stat=stat,
                params=params,
                kernel=kernel,
                undefined=undefined,
                faults=faults,
                n_workers=workers,
                batch_size=bsize,
                max_tile_elems=max(t.n_pairs for t in work),
                profile=current_profiler().enabled,
                ctx=ctx,
                # Store-backed runs hand workers the store *path*: each
                # worker maps it read-only, so no panel-sized
                # shared-memory copy is ever made.
                panel_path=str(store.path) if store is not None else None,
            )
            if current == "processes":
                backend = _ex.ProcessesBackend(
                    n_units=-(-len(work) // bsize), **shared
                )
            else:  # persistent
                backend = _ex.PersistentBackend(**shared)
            return backend, schedule, bsize

        def start_prefetch(current: str, work: list[TileTask]) -> None:
            """Stand up the round's prefetcher (budgeted store runs only)."""
            nonlocal pull_prefetcher, warm_reader
            if store is None or memory_budget is None or not work:
                return
            from repro.core import prefetch as _pf

            if current in ("serial", "threads"):
                pull_prefetcher = _pf.PanelPrefetcher(
                    store,
                    work,
                    block_snps=block_snps,
                    memory_budget=memory_budget,
                    faults=faults,
                    recorder=recorder,
                    banded=band_spec is not None,
                )
            else:
                warm_reader = _pf.WarmReader(
                    store,
                    work,
                    block_snps=block_snps,
                    memory_budget=memory_budget,
                    faults=faults,
                    recorder=recorder,
                    banded=band_spec is not None,
                )

        def stop_prefetch() -> None:
            nonlocal pull_prefetcher, warm_reader
            if pull_prefetcher is not None:
                pull_prefetcher.close()
                pull_prefetcher = None
            if warm_reader is not None:
                warm_reader.close()
                warm_reader = None

        retries = 0
        batches = 0
        pool_spawns = 0
        worker_respawns = 0
        current = engine
        work = todo
        while work:
            try:
                backend, schedule, bsize = make_backend(current, work)
                start_prefetch(current, schedule)
                try:
                    delta, subs = _ex.drive(
                        backend, schedule, ctx, batch_size=bsize
                    )
                    retries += delta
                    if backend.counts_batches:
                        batches += subs
                finally:
                    backend.shutdown()
                    stop_prefetch()
                    pool_spawns += getattr(backend, "spawns_this_run", 0)
                    worker_respawns += getattr(
                        backend, "respawns_this_run", 0
                    )
                break
            except _ex.ExecutorBroken as broken:
                fallback = _FALLBACK[current]
                if fallback is None:  # pragma: no cover - serial never breaks
                    raise RuntimeError(
                        "serial executor broke; cannot degrade further"
                    ) from broken.cause
                if recorder is not None:
                    recorder.inc("engine.degradations")
                    recorder.event(
                        "executor_degraded",
                        from_engine=current,
                        to_engine=fallback,
                        error=repr(broken.cause),
                    )
                current = fallback
                work = [t for t in work if t.key not in done_keys]
    finally:
        if profiler is not None:
            install_profiler(previous_profiler)
        if manifest is not None:
            manifest.close()
        if store is not None and store is not data:
            # Opened here from a path, so closed here; caller-supplied
            # PanelStore instances stay open (the caller owns them).
            store.close()

    if live is not None:
        live.finish()
    if recorder is not None:
        run_seconds = time.perf_counter() - run_start
        recorder.observe_time("engine.run_seconds", run_seconds)
        if batches:
            recorder.inc("engine.batches_dispatched", batches)
        recorder.event(
            "run_end",
            n_computed=n_computed,
            n_skipped=n_skipped,
            n_retries=retries,
            n_quarantined=len(quarantined),
            n_batches=batches,
            seconds=run_seconds,
        )
    return EngineReport(
        engine=engine,
        n_workers=1 if engine == "serial" else min(n_workers, max(len(todo), 1)),
        n_tiles=len(tiles),
        n_computed=n_computed,
        n_skipped=n_skipped,
        n_retries=retries,
        engine_used=current,
        n_quarantined=len(quarantined),
        quarantined=tuple(sorted(t.key for t, _ in quarantined)),
        n_batches=batches,
        n_pool_spawns=pool_spawns,
        n_worker_respawns=worker_respawns,
        n_pruned=n_pruned,
        n_partial=n_partial,
        band_pairs=band_pairs,
    )
