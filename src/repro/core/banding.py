"""Distance-band geometry for the tiled LD engine.

LD decays with distance, so production sweeps restrict pairs to a band:
pair ``(i, j)`` with ``i >= j`` is *in band* when ``i - j <= W`` (an
index band of ``W`` SNPs) or ``pos[i] - pos[j] <= D`` (a genomic band of
``D`` base pairs resolved against sorted variant positions).

:class:`BandSpec` classifies engine tiles against the band so the
enumerator can skip tiles that lie entirely outside it, the driver can
mask the out-of-band corner of straddling tiles, and planners can
predict how many pairs a banded run actually delivers.  All of the
geometry lives here — the engine only asks three questions: *where does
this tile row start*, *is this tile outside/partial/full*, and *which
cells of this tile are in band*.
"""

from __future__ import annotations

import hashlib

import numpy as np

__all__ = [
    "BandSpec",
    "dense_pair_cells",
    "dense_tile_count",
    "genomic_index_width",
]


def dense_tile_count(n_snps: int, block_snps: int,
                     include_diagonal: bool = True) -> int:
    """Tiles a dense lower-triangle enumeration would produce."""
    nb = (n_snps + block_snps - 1) // block_snps
    count = nb * (nb + 1) // 2
    if not include_diagonal:
        count -= nb
    return count


def dense_pair_cells(n_snps: int, block_snps: int,
                     include_diagonal: bool = True) -> int:
    """Tile cells a dense enumeration would dispatch (the engine's
    "pairs" currency: full tile rectangles, including the upper-triangle
    cells of diagonal tiles)."""
    total = 0
    for i0 in range(0, n_snps, block_snps):
        i1 = min(i0 + block_snps, n_snps)
        stop = i0 + 1 if include_diagonal else i0
        for j0 in range(0, stop, block_snps):
            j1 = min(j0 + block_snps, n_snps)
            total += (i1 - i0) * (j1 - j0)
    return total


def genomic_index_width(positions: np.ndarray, max_distance: float) -> int:
    """Widest index gap any genomic-band pair can span.

    This is the ``W`` a diagonal-major ``(n, W+1)`` store needs to hold
    every in-band pair of a ``pos[i] - pos[j] <= max_distance`` band.
    """
    pos = np.asarray(positions, dtype=np.float64)
    if pos.size == 0:
        return 0
    hi = np.searchsorted(pos, pos + max_distance, side="right") - 1
    return int(np.max(hi - np.arange(pos.size)))


class BandSpec:
    """A distance band over the lower triangle of SNP pairs.

    Exactly one of *window* (index band: ``i - j <= window``) or
    *max_distance* (genomic band: ``pos[i] - pos[j] <= max_distance``,
    requiring sorted *positions*) must be given.  Instances cache the
    edge masks of straddling tiles, so one spec should be shared across
    a whole run.
    """

    def __init__(self, *, window: int | None = None,
                 max_distance: float | None = None,
                 positions: np.ndarray | None = None) -> None:
        if (window is None) == (max_distance is None):
            raise ValueError(
                "exactly one of window/max_distance must be given"
            )
        if window is not None:
            window = int(window)
            if window < 1:
                raise ValueError(f"window must be >= 1, got {window}")
            if positions is not None:
                raise ValueError("positions only apply to genomic bands")
        else:
            max_distance = float(max_distance)
            if max_distance <= 0:
                raise ValueError(
                    f"max_distance must be positive, got {max_distance}"
                )
            if positions is None:
                raise ValueError("a genomic band requires positions")
            positions = np.ascontiguousarray(positions, dtype=np.float64)
            if positions.ndim != 1:
                raise ValueError("positions must be one-dimensional")
            if positions.size > 1 and np.any(np.diff(positions) < 0):
                raise ValueError("positions must be sorted ascending")
        self.window = window
        self.max_distance = max_distance
        self.positions = positions
        self._masks: dict = {}
        self._pair_counts: dict = {}

    # -- validation -------------------------------------------------------

    def validate_for(self, n_snps: int) -> None:
        """Check the spec can cover a panel of *n_snps* SNPs."""
        if self.positions is not None and len(self.positions) != n_snps:
            raise ValueError(
                f"band positions cover {len(self.positions)} SNPs "
                f"but the panel has {n_snps}"
            )

    # -- geometry ---------------------------------------------------------

    def _first_col(self, i0: int) -> int:
        """Smallest column index that can pair in-band with row *i0*.

        Rows below ``i0`` in the same tile only reach *further* columns,
        so a tile whose column range ends before this index is entirely
        outside the band.
        """
        if self.window is not None:
            return max(0, i0 - self.window)
        pos = self.positions
        return int(np.searchsorted(pos, pos[i0] - self.max_distance, "left"))

    def first_block_col(self, i0: int, block_snps: int) -> int:
        """First tile column start ``j0`` whose tile can meet the band
        for the row block starting at *i0*."""
        q = self._first_col(i0)
        first = max(0, q - block_snps + 1)
        return (first + block_snps - 1) // block_snps * block_snps

    def classify(self, tile) -> str:
        """``"outside"`` / ``"full"`` / ``"partial"`` for an engine tile.

        The closest pair of a lower-triangle tile is ``(i0, j1-1)`` and
        the farthest is ``(i1-1, j0)``; distance is monotone in both
        coordinates, so those two pairs bound every cell.
        """
        i0, i1, j0, j1 = tile.i0, tile.i1, tile.j0, tile.j1
        if self.window is not None:
            if i0 - (j1 - 1) > self.window:
                return "outside"
            if (i1 - 1) - j0 <= self.window:
                return "full"
            return "partial"
        pos, dist = self.positions, self.max_distance
        if pos[i0] - pos[j1 - 1] > dist:
            return "outside"
        if pos[i1 - 1] - pos[j0] <= dist:
            return "full"
        return "partial"

    def mask(self, tile) -> np.ndarray:
        """Boolean ``(rows, cols)`` mask of in-band cells of *tile*.

        Uses absolute distance so the upper-triangle cells of diagonal
        tiles (which mirror the lower triangle for symmetric stats) are
        kept exactly when their mirrored pair is in band.
        """
        i0, i1, j0, j1 = tile.i0, tile.i1, tile.j0, tile.j1
        if self.window is not None:
            # The mask depends only on the diagonal offset and shape, so
            # interior tile rows of a big panel all share one array.
            key = (i0 - j0, i1 - i0, j1 - j0)
        else:
            key = (i0, j0, i1, j1)
        cached = self._masks.get(key)
        if cached is not None:
            return cached
        if self.window is not None:
            rows = np.arange(i0, i1)[:, None]
            cols = np.arange(j0, j1)[None, :]
            mask = np.abs(rows - cols) <= self.window
        else:
            rows = self.positions[i0:i1][:, None]
            cols = self.positions[j0:j1][None, :]
            mask = np.abs(rows - cols) <= self.max_distance
        mask.setflags(write=False)
        self._masks[key] = mask
        return mask

    def pairs_in(self, tile) -> int:
        """In-band cells of *tile* — the banded "pairs" a tile delivers."""
        kind = self.classify(tile)
        if kind == "outside":
            return 0
        if kind == "full":
            return tile.n_pairs
        key = (tile.i0, tile.j0)
        cached = self._pair_counts.get(key)
        if cached is None:
            cached = int(self.mask(tile).sum())
            self._pair_counts[key] = cached
        return cached

    def index_width(self, n_snps: int) -> int:
        """Max index gap of any in-band pair — the ``W`` of a diagonal-
        major ``(n_snps, W+1)`` store covering this band."""
        if self.window is not None:
            return min(self.window, max(n_snps - 1, 0))
        return genomic_index_width(self.positions, self.max_distance)

    # -- identity ---------------------------------------------------------

    def token(self) -> str:
        """Fingerprint fragment identifying this band exactly.

        Genomic bands hash the positions array: the same distance over
        different coordinates selects different pairs.
        """
        if self.window is not None:
            return f"band=w{self.window}"
        digest = hashlib.sha256(self.positions.tobytes()).hexdigest()[:16]
        return f"band=d{self.max_distance!r}:p{digest}"

    def describe(self) -> str:
        if self.window is not None:
            return f"window {self.window} SNPs"
        return f"window {self.max_distance:g} bp"

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        if self.window is not None:
            return f"BandSpec(window={self.window})"
        return (f"BandSpec(max_distance={self.max_distance}, "
                f"positions=<{len(self.positions)}>)")
