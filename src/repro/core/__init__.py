"""Core contribution: LD computation as dense linear algebra (GEMM).

This package implements the paper's central idea (Sections II–IV):

- the haplotype-frequency matrix is ``H = (1/N_seq) GᵀG`` — a rank-k GEMM
  over the bit-packed genomic matrix, with multiply/add replaced by
  AND/POPCNT/ADD over 64-bit words;
- the LD matrix is ``D = H − p pᵀ`` (rank-1 update) and ``r²`` follows
  elementwise (Equation 2);
- the GEMM is realised with the GotoBLAS/BLIS layered algorithm: a five-loop
  blocked nest around a small ``m_r × n_r`` micro-kernel, with both operand
  panels packed into contiguous buffers (Figure 1).

Public entry points live in :mod:`repro.core.ldmatrix`.
"""

from repro.core.banding import (
    BandSpec,
    dense_pair_cells,
    dense_tile_count,
    genomic_index_width,
)
from repro.core.blocking import (
    BlockingParams,
    DEFAULT_BLOCKING,
    MICRO_BLOCKING,
    select_blocking,
)
from repro.core.gemm import (
    GemmCounts,
    popcount_gemm,
    popcount_gemm_flat,
    popcount_gram,
    gemm_operation_counts,
)
from repro.core.engine import (
    ENGINES,
    EngineReport,
    TileCorruptionError,
    TileManifest,
    TileResult,
    TileTask,
    TileTimeoutError,
    enumerate_tiles,
    run_engine,
    store_fingerprint,
)
from repro.core.executors import (
    ExecutorBackend,
    panel_fingerprint,
    panel_store_key,
    pool_status,
    reap_idle_pools,
    stop_pools,
)
from repro.core.prefetch import (
    PanelPrefetcher,
    PanelWindow,
    WarmReader,
    min_memory_budget,
    order_panel_major,
    plan_windows,
)
from repro.core.genotype_ld import genotype_r2_matrix
from repro.core.frequencies import (
    allele_frequencies,
    haplotype_frequencies,
    haplotype_frequencies_cross,
)
from repro.core.ldmatrix import LDResult, ld_cross, ld_matrix, ld_pairs
from repro.core.microkernel import (
    MICRO_KERNELS,
    microkernel_numpy,
    microkernel_scalar,
)
from repro.core.parallel import (
    popcount_gemm_parallel,
    partition_ranges,
    partition_triangle_rows,
)
from repro.core.streaming import (
    BandedNpySink,
    NpyMemmapSink,
    ThresholdCollector,
    stream_ld_blocks,
)
from repro.core.windowed import BandedLDMatrix, banded_ld, write_banded_block
from repro.core.stats import (
    d_matrix,
    d_prime_matrix,
    ld_chi2_matrix,
    ld_coefficient,
    r_squared,
    r_squared_adjusted,
    r_squared_matrix,
)

__all__ = [
    "BandSpec",
    "dense_pair_cells",
    "dense_tile_count",
    "genomic_index_width",
    "BlockingParams",
    "DEFAULT_BLOCKING",
    "MICRO_BLOCKING",
    "select_blocking",
    "GemmCounts",
    "popcount_gemm",
    "popcount_gemm_flat",
    "popcount_gram",
    "gemm_operation_counts",
    "ENGINES",
    "EngineReport",
    "TileCorruptionError",
    "TileManifest",
    "TileResult",
    "TileTask",
    "TileTimeoutError",
    "enumerate_tiles",
    "run_engine",
    "store_fingerprint",
    "ExecutorBackend",
    "panel_fingerprint",
    "panel_store_key",
    "pool_status",
    "reap_idle_pools",
    "stop_pools",
    "PanelPrefetcher",
    "PanelWindow",
    "WarmReader",
    "min_memory_budget",
    "order_panel_major",
    "plan_windows",
    "genotype_r2_matrix",
    "allele_frequencies",
    "haplotype_frequencies",
    "haplotype_frequencies_cross",
    "LDResult",
    "ld_cross",
    "ld_matrix",
    "ld_pairs",
    "MICRO_KERNELS",
    "microkernel_numpy",
    "microkernel_scalar",
    "popcount_gemm_parallel",
    "partition_ranges",
    "partition_triangle_rows",
    "BandedLDMatrix",
    "banded_ld",
    "write_banded_block",
    "BandedNpySink",
    "NpyMemmapSink",
    "ThresholdCollector",
    "stream_ld_blocks",
    "d_matrix",
    "d_prime_matrix",
    "ld_chi2_matrix",
    "ld_coefficient",
    "r_squared",
    "r_squared_adjusted",
    "r_squared_matrix",
]
