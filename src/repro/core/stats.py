"""LD statistics: D, D', and r² (paper Section II, Equations 1–2).

Given allele frequencies ``p`` and the haplotype-frequency matrix ``H``:

    D    = H − p pᵀ                                    (Equation 1 / 5)
    r²   = D² / (p_i p_j (1 − p_i)(1 − p_j))           (Equation 2)
    D'   = D / D_max   (Lewontin's normalization)

``D − p pᵀ`` is the O(n²) rank-1 update the paper notes is dominated by the
O(n³) GEMM. Monomorphic SNPs make the r²/D' denominators zero; the functions
return NaN there by default (the statistic is undefined), with an option to
substitute 0.0 as PLINK-style tools do when pruning.
"""

from __future__ import annotations

import numpy as np

__all__ = [
    "d_matrix",
    "d_prime_matrix",
    "ld_chi2_matrix",
    "ld_coefficient",
    "r_squared",
    "r_squared_adjusted",
    "r_squared_matrix",
]


def _check_freqs(h: np.ndarray, p: np.ndarray, q: np.ndarray | None) -> tuple[
    np.ndarray, np.ndarray, np.ndarray
]:
    h = np.asarray(h, dtype=np.float64)
    p = np.asarray(p, dtype=np.float64)
    q = p if q is None else np.asarray(q, dtype=np.float64)
    if h.ndim != 2:
        raise ValueError(f"H must be 2-D, got shape {h.shape}")
    if p.ndim != 1 or q.ndim != 1:
        raise ValueError("allele-frequency vectors must be 1-D")
    if h.shape != (p.size, q.size):
        raise ValueError(
            f"H shape {h.shape} does not match frequency vectors ({p.size}, {q.size})"
        )
    if np.any((p < 0) | (p > 1)) or np.any((q < 0) | (q > 1)):
        raise ValueError("allele frequencies must lie in [0, 1]")
    return h, p, q


def ld_coefficient(p_ab: float, p_a: float, p_b: float) -> float:
    """Scalar ``D = P(AB) − P(A) P(B)`` (Equation 1)."""
    return float(p_ab) - float(p_a) * float(p_b)


def r_squared(p_ab: float, p_a: float, p_b: float) -> float:
    """Scalar squared Pearson coefficient (Equation 2); NaN if undefined."""
    denom = p_a * p_b * (1.0 - p_a) * (1.0 - p_b)
    if denom == 0.0:
        return float("nan")
    d = ld_coefficient(p_ab, p_a, p_b)
    return d * d / denom


def d_matrix(
    h: np.ndarray, p: np.ndarray, q: np.ndarray | None = None
) -> np.ndarray:
    """LD coefficient matrix ``D = H − p qᵀ`` (Equation 5's rank-1 update).

    ``q`` defaults to ``p`` (single-matrix case); pass the second matrix's
    frequencies for cross-LD.
    """
    h, p, q = _check_freqs(h, p, q)
    return h - np.outer(p, q)


def r_squared_matrix(
    h: np.ndarray,
    p: np.ndarray,
    q: np.ndarray | None = None,
    *,
    undefined: float = np.nan,
) -> np.ndarray:
    """Elementwise r² matrix (Equation 2).

    Parameters
    ----------
    h:
        Haplotype-frequency matrix.
    p, q:
        Allele-frequency vectors (``q`` defaults to ``p``).
    undefined:
        Value for pairs whose denominator is zero (a monomorphic SNP on
        either side). NaN marks the statistic undefined; pass ``0.0`` for
        PLINK-compatible behaviour.
    """
    h, p, q = _check_freqs(h, p, q)
    d = h - np.outer(p, q)
    denom = np.outer(p * (1.0 - p), q * (1.0 - q))
    with np.errstate(divide="ignore", invalid="ignore"):
        r2 = np.where(denom > 0.0, (d * d) / denom, undefined)
    return r2


def r_squared_adjusted(
    r2: np.ndarray | float, n_samples: int
) -> np.ndarray | float:
    """Sampling-bias-adjusted r²: ``max(r² − 1/n, 0)``.

    Even in perfect linkage equilibrium the *sample* r² has expectation
    ≈ 1/n (Hill & Weir); LD-decay baselines and r̄² summaries subtract it.
    NaNs pass through.
    """
    if n_samples < 2:
        raise ValueError(f"need n_samples >= 2, got {n_samples}")
    return np.maximum(np.asarray(r2, dtype=np.float64) - 1.0 / n_samples, 0.0)


def ld_chi2_matrix(
    r2: np.ndarray, n_samples: int
) -> tuple[np.ndarray, np.ndarray]:
    """Per-pair LD significance: χ² = n·r² with 1 df, and its p-values.

    The classic two-locus allelic test (the statistic PLINK reports as
    ``CHISQ`` for haploid/phased data). Returns ``(chi2, p_values)``;
    NaN r² entries stay NaN.
    """
    from scipy import stats as sp_stats

    if n_samples < 2:
        raise ValueError(f"need n_samples >= 2, got {n_samples}")
    r2 = np.asarray(r2, dtype=np.float64)
    chi2 = n_samples * r2
    with np.errstate(invalid="ignore"):
        p_values = np.where(np.isnan(chi2), np.nan, sp_stats.chi2.sf(chi2, df=1))
    return chi2, p_values


def d_prime_matrix(
    h: np.ndarray,
    p: np.ndarray,
    q: np.ndarray | None = None,
    *,
    undefined: float = np.nan,
) -> np.ndarray:
    """Lewontin's normalized ``D' = D / D_max`` matrix.

    ``D_max = min(p_i (1−p_j), (1−p_i) p_j)`` when ``D > 0`` and
    ``min(p_i p_j, (1−p_i)(1−p_j))`` when ``D < 0``; pairs with ``D = 0``
    yield 0, and monomorphic pairs yield *undefined*.
    """
    h, p, q = _check_freqs(h, p, q)
    d = h - np.outer(p, q)
    pos_max = np.minimum(np.outer(p, 1.0 - q), np.outer(1.0 - p, q))
    neg_max = np.minimum(np.outer(p, q), np.outer(1.0 - p, 1.0 - q))
    d_max = np.where(d >= 0.0, pos_max, neg_max)
    polymorphic = np.outer((p > 0) & (p < 1), (q > 0) & (q < 1))
    with np.errstate(divide="ignore", invalid="ignore"):
        d_prime = np.where(d_max > 0.0, d / d_max, 0.0)
    return np.where(polymorphic, d_prime, undefined)
