"""Cache-blocking parameters for the GotoBLAS-style LD GEMM.

The GotoBLAS algorithm (Section III-A, Figure 1) partitions the operands so
that each level of the loop nest streams from one level of the memory
hierarchy:

- a ``k_c × n_r`` micro-panel of B lives in the L1 cache,
- an ``m_c × k_c`` packed block of A lives in the L2 cache,
- a ``k_c × n_c`` packed panel of B lives in the L3 cache,
- an ``m_r × n_r`` output micro-tile lives in registers.

For the LD kernel one "element" is a 64-bit word of packed alleles, so sizes
are counted in 8-byte words rather than doubles — the arithmetic is otherwise
identical to dense GEMM blocking. :func:`select_blocking` derives parameters
from cache capacities the way BLIS does (see Low et al., "Analytical modeling
is enough for high-performance BLIS"): it is deliberately simple, because the
paper stresses that *no tuning* beyond the double-precision defaults was
needed (Section IV: "No attempt was made to tune the parameters").
"""

from __future__ import annotations

from dataclasses import dataclass

__all__ = [
    "BlockingParams",
    "DEFAULT_BLOCKING",
    "FUSED_BLOCKING",
    "MICRO_BLOCKING",
    "select_blocking",
]

#: Bytes per packed element (one uint64 word of 64 alleles).
ELEMENT_BYTES = 8


@dataclass(frozen=True)
class BlockingParams:
    """The five GotoBLAS blocking parameters, in elements (packed words for k).

    Attributes
    ----------
    mc, nc, kc:
        Cache-level block sizes: the packed A block is ``mc × kc``, the packed
        B panel is ``kc × nc``.
    mr, nr:
        Register-level micro-tile: the micro-kernel updates an ``mr × nr``
        block of C per invocation.
    """

    mc: int
    nc: int
    kc: int
    mr: int
    nr: int

    def __post_init__(self) -> None:
        for name in ("mc", "nc", "kc", "mr", "nr"):
            value = getattr(self, name)
            if int(value) <= 0:
                raise ValueError(f"{name} must be positive, got {value}")
        if self.mc % self.mr:
            raise ValueError(
                f"mc ({self.mc}) must be a multiple of mr ({self.mr}) so packed "
                "A blocks tile exactly into micro-panels"
            )
        if self.nc % self.nr:
            raise ValueError(
                f"nc ({self.nc}) must be a multiple of nr ({self.nr}) so packed "
                "B panels tile exactly into micro-panels"
            )

    @property
    def a_block_bytes(self) -> int:
        """Footprint of one packed A block (targets L2)."""
        return self.mc * self.kc * ELEMENT_BYTES

    @property
    def b_panel_bytes(self) -> int:
        """Footprint of one packed B panel (targets L3)."""
        return self.kc * self.nc * ELEMENT_BYTES

    @property
    def b_micropanel_bytes(self) -> int:
        """Footprint of one B micro-panel (targets L1)."""
        return self.kc * self.nr * ELEMENT_BYTES

    def describe(self) -> str:
        """Human-readable summary used by the benchmark harnesses."""
        return (
            f"mc={self.mc} nc={self.nc} kc={self.kc} mr={self.mr} nr={self.nr} "
            f"(A block {self.a_block_bytes // 1024} KiB, "
            f"B panel {self.b_panel_bytes // 1024} KiB)"
        )


def select_blocking(
    *,
    l1_bytes: int = 32 * 1024,
    l2_bytes: int = 256 * 1024,
    l3_bytes: int = 8 * 1024 * 1024,
    mr: int = 8,
    nr: int = 8,
    max_nc: int = 4096,
) -> BlockingParams:
    """Derive blocking parameters from cache capacities (BLIS-style).

    The rules follow the standard analytical model:

    - ``kc``: half the L1 should hold a ``kc × nr`` B micro-panel, leaving
      room for the streaming A micro-panel;
    - ``mc``: half the L2 should hold the ``mc × kc`` packed A block;
    - ``nc``: half the L3 should hold the ``kc × nc`` packed B panel, capped
      at ``max_nc`` and rounded down to a multiple of ``nr``.

    Defaults correspond to the paper's Haswell test machine (32 KiB L1d,
    256 KiB L2, shared L3).
    """
    if min(l1_bytes, l2_bytes, l3_bytes) <= 0:
        raise ValueError("cache sizes must be positive")
    if l1_bytes > l2_bytes or l2_bytes > l3_bytes:
        raise ValueError("expected l1 <= l2 <= l3")
    kc = max(1, (l1_bytes // 2) // (nr * ELEMENT_BYTES))
    mc = max(mr, ((l2_bytes // 2) // (kc * ELEMENT_BYTES)) // mr * mr)
    nc = max(nr, ((l3_bytes // 2) // (kc * ELEMENT_BYTES)) // nr * nr)
    nc = min(nc, max_nc // nr * nr)
    return BlockingParams(mc=mc, nc=nc, kc=kc, mr=mr, nr=nr)


#: Blocking used by the vectorized numpy micro-kernel. The register tile is
#: far larger than a hardware kernel's (128×128 "virtual registers") because
#: each numpy micro-kernel invocation carries interpreter overhead that must
#: be amortized — the Python analogue of instruction-issue overhead.
DEFAULT_BLOCKING = BlockingParams(mc=256, nc=2048, kc=512, mr=128, nr=128)

#: Blocking with a hardware-realistic 8×8 register tile; used by the scalar
#: reference kernel and by the machine model, which counts real registers.
MICRO_BLOCKING = BlockingParams(mc=256, nc=2048, kc=256, mr=8, nr=8)

#: Blocking for the fused macro-kernel (:mod:`repro.core.macrokernel`). The
#: macro-kernel computes a whole ``mc × nc`` block per call, so ``mc``/``nc``
#: are large to amortize the per-block bit-plane expansion while ``kc`` is
#: short: each ``kc`` chunk of 64-allele words expands 64× when unpacked to
#: bit planes, and kc=64 keeps one expanded operand panel inside the LLC.
#: ``mr``/``nr`` only affect the popcount fall-back path and the operation
#: counts; the BLAS contraction has no register tile of its own. Values
#: selected empirically (see benchmarks/BENCH_gemm.json); ``repro tune`` can
#: re-derive them per machine.
FUSED_BLOCKING = BlockingParams(mc=2048, nc=4096, kc=64, mr=8, nr=8)
