"""PLINK-style 2-bit genotype encoding (substrate for the PLINK 1.9 baseline).

The paper's comparison (Section VI) notes that PLINK 1.9 works on *genotypes*
— diploid individuals with 0/1/2 copies of the alternate allele (plus a
missing state) — whereas the GEMM approach works on haploid alleles. PLINK
packs genotypes at 2 bits each, in the same encoding its ``.bed`` file format
uses:

====  =======================
bits  meaning
====  =======================
00    homozygous reference (0 copies)
01    missing
10    heterozygous (1 copy)
11    homozygous alternate (2 copies)
====  =======================

PLINK 1.9's pairwise-r² kernel derives per-pair haplotype-count surrogates
from this packed form with mask/AND/POPCNT word operations; our baseline
(:mod:`repro.baselines.plink`) consumes :class:`GenotypeMatrix` the same way.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

__all__ = ["GenotypeMatrix", "genotypes_from_haplotypes", "MISSING"]

#: Sentinel value for a missing genotype in the dense 0/1/2 representation.
MISSING = -1

#: Genotype value -> PLINK 2-bit code.
_GENO_TO_CODE = {0: 0b00, MISSING: 0b01, 1: 0b10, 2: 0b11}
#: PLINK 2-bit code -> genotype value.
_CODE_TO_GENO = np.array([0, MISSING, 1, 2], dtype=np.int8)

#: Genotypes packed per 64-bit word.
GENOS_PER_WORD = 32


@dataclass(frozen=True)
class GenotypeMatrix:
    """Packed 2-bit genotypes, variant-major like a PLINK ``.bed`` file.

    Attributes
    ----------
    words:
        ``(n_variants, n_words)`` ``uint64``; variant *i*'s genotypes occupy
        bit-pairs ``(2j, 2j+1)`` of its word stream for individual *j*.
        Padding bit-pairs past ``n_individuals`` encode homozygous reference
        (``00``), which contributes nothing to any popcount-based kernel.
    n_individuals:
        Number of valid genotype slots per variant.
    """

    words: np.ndarray
    n_individuals: int

    def __post_init__(self) -> None:
        words = np.ascontiguousarray(self.words, dtype=np.uint64)
        if words.ndim != 2:
            raise ValueError(f"words must be 2-D, got shape {words.shape}")
        needed = words_for_individuals(self.n_individuals)
        if words.shape[1] != needed:
            raise ValueError(
                f"expected {needed} words for {self.n_individuals} individuals, "
                f"got {words.shape[1]}"
            )
        object.__setattr__(self, "words", words)

    # -- constructors ------------------------------------------------------

    @classmethod
    def from_dense(cls, genotypes: np.ndarray) -> "GenotypeMatrix":
        """Pack a dense ``(n_individuals, n_variants)`` matrix of {0,1,2,-1}."""
        dense = np.asarray(genotypes)
        if dense.ndim != 2:
            raise ValueError(f"genotypes must be 2-D, got shape {dense.shape}")
        valid = np.isin(dense, (0, 1, 2, MISSING))
        if not valid.all():
            bad = np.unique(np.asarray(dense)[~valid])
            raise ValueError(f"invalid genotype values {bad!r}; expected 0/1/2/-1")
        n_individuals, n_variants = dense.shape
        codes = np.empty(dense.shape, dtype=np.uint64)
        for geno, code in _GENO_TO_CODE.items():
            codes[dense == geno] = code
        n_words = words_for_individuals(n_individuals)
        words = np.zeros((n_variants, n_words), dtype=np.uint64)
        variant_major = codes.T  # (n_variants, n_individuals)
        for j in range(n_individuals):
            w, slot = divmod(j, GENOS_PER_WORD)
            words[:, w] |= variant_major[:, j] << np.uint64(2 * slot)
        return cls(words=words, n_individuals=n_individuals)

    # -- shape -------------------------------------------------------------

    @property
    def n_variants(self) -> int:
        """Number of variants (SNPs)."""
        return self.words.shape[0]

    @property
    def n_words(self) -> int:
        """Packed 64-bit words per variant."""
        return self.words.shape[1]

    @property
    def nbytes(self) -> int:
        """Bytes of packed storage."""
        return self.words.nbytes

    # -- conversions -------------------------------------------------------

    def to_dense(self) -> np.ndarray:
        """Unpack to a dense ``(n_individuals, n_variants)`` int8 matrix."""
        n = self.n_individuals
        dense = np.empty((self.n_variants, n), dtype=np.int8)
        three = np.uint64(0b11)
        for j in range(n):
            w, slot = divmod(j, GENOS_PER_WORD)
            code = (self.words[:, w] >> np.uint64(2 * slot)) & three
            dense[:, j] = _CODE_TO_GENO[code.astype(np.intp)]
        return np.ascontiguousarray(dense.T)

    # -- bit-plane views used by the PLINK kernel ----------------------------

    def high_bits(self) -> np.ndarray:
        """Per-variant words holding only the high bit of each genotype pair.

        For the PLINK encoding the high bit is set for het (``10``) and
        hom-alt (``11``) genotypes — i.e. "carries at least one alt allele".
        Returned compacted so bit *j* of the output stream corresponds to
        individual *j* (one bit per individual, ready for popcount kernels).
        """
        return self._compact_plane(shift=1)

    def low_bits(self) -> np.ndarray:
        """Per-variant compacted low bits (set for missing ``01`` and hom-alt ``11``)."""
        return self._compact_plane(shift=0)

    def _compact_plane(self, shift: int) -> np.ndarray:
        """Extract one bit of every 2-bit pair and compact two words into one."""
        plane = (self.words >> np.uint64(shift)) & np.uint64(0x5555555555555555)
        # plane now has the selected bit of pair j at bit position 2j.
        compact_half = _compact_even_bits(plane)
        # Each half-filled word covers 32 individuals; merge pairs into full
        # 64-bit words so downstream popcount kernels see one bit/individual.
        n_variants, n_words = compact_half.shape
        out_words = (n_words + 1) // 2
        out = np.zeros((n_variants, out_words), dtype=np.uint64)
        out[:, : n_words // 2] = compact_half[:, 0 : 2 * (n_words // 2) : 2] | (
            compact_half[:, 1::2] << np.uint64(32)
        )
        if n_words % 2:
            out[:, -1] = compact_half[:, -1]
        return out

    def __repr__(self) -> str:
        return (
            f"GenotypeMatrix(n_individuals={self.n_individuals}, "
            f"n_variants={self.n_variants})"
        )


def words_for_individuals(n_individuals: int) -> int:
    """64-bit words needed to hold *n_individuals* 2-bit genotypes."""
    if n_individuals < 0:
        raise ValueError(f"n_individuals must be non-negative, got {n_individuals}")
    return (n_individuals + GENOS_PER_WORD - 1) // GENOS_PER_WORD


def _compact_even_bits(words: np.ndarray) -> np.ndarray:
    """Compact bits at even positions (0,2,4,...) into the low 32 bits.

    Classic parallel bit-extract ("unzip") over uint64 arrays: input bit
    ``2k`` moves to output bit ``k``; odd input bits must already be zero.
    """
    x = words.astype(np.uint64)
    masks = (
        np.uint64(0x3333333333333333),
        np.uint64(0x0F0F0F0F0F0F0F0F),
        np.uint64(0x00FF00FF00FF00FF),
        np.uint64(0x0000FFFF0000FFFF),
        np.uint64(0x00000000FFFFFFFF),
    )
    shifts = (1, 2, 4, 8, 16)
    for mask, shift in zip(masks, shifts):
        x = (x | (x >> np.uint64(shift))) & mask
    return x


def genotypes_from_haplotypes(haplotypes: np.ndarray) -> np.ndarray:
    """Pair consecutive haplotypes into diploid genotypes.

    Parameters
    ----------
    haplotypes:
        Dense binary ``(n_haplotypes, n_snps)`` matrix with an even number of
        rows; rows ``2i`` and ``2i+1`` form individual ``i``.

    Returns
    -------
    Dense ``(n_haplotypes // 2, n_snps)`` matrix of alt-allele counts 0/1/2.
    """
    haps = np.asarray(haplotypes)
    if haps.ndim != 2:
        raise ValueError(f"haplotypes must be 2-D, got shape {haps.shape}")
    if haps.shape[0] % 2:
        raise ValueError(
            f"need an even number of haplotypes to form diploids, got {haps.shape[0]}"
        )
    if not np.isin(haps, (0, 1)).all():
        raise ValueError("haplotypes must be binary")
    return (haps[0::2].astype(np.int8) + haps[1::2].astype(np.int8)).astype(np.int8)
