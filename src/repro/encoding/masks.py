"""Validity masks for alignment gaps and missing data (paper Section VII).

The paper's gap-aware extension attaches to every SNP ``s_i`` a second bit
vector ``c_i`` marking which samples carry a *valid* allelic state (1) versus
a gap / missing call (0). For a SNP pair ``(i, j)`` the joint validity is
``c_ij = c_i & c_j``, and all inner products are computed over the masked
vectors, e.g. the haplotype count becomes ``POPCNT(c_ij & s_i & s_j)`` and the
per-pair allele counts become ``POPCNT(c_ij & s_i)`` / ``POPCNT(c_ij & s_j)``
with the per-pair sample size ``POPCNT(c_ij)``.

A :class:`ValidityMask` is structurally a :class:`~repro.encoding.bitmatrix
.BitMatrix` over the same (samples × SNPs) grid; this module adds the
mask-specific constructors and invariants (a mask bit of a padded sample is
always zero, so masked popcounts stay exact).
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from repro.encoding.bitmatrix import BitMatrix

__all__ = ["ValidityMask"]


@dataclass(frozen=True)
class ValidityMask:
    """Per-(sample, SNP) validity bits, packed like the genomic matrix.

    Attributes
    ----------
    bits:
        A :class:`BitMatrix` whose set bits mark valid states.
    """

    bits: BitMatrix

    @classmethod
    def from_dense(cls, valid: np.ndarray) -> "ValidityMask":
        """Pack a dense boolean/0-1 ``(n_samples, n_snps)`` validity matrix."""
        return cls(bits=BitMatrix.from_dense(np.asarray(valid).astype(np.uint8)))

    @classmethod
    def all_valid(cls, n_samples: int, n_snps: int) -> "ValidityMask":
        """A mask marking every (sample, SNP) cell valid."""
        dense = np.ones((n_samples, n_snps), dtype=np.uint8)
        return cls.from_dense(dense)

    @classmethod
    def from_missing(cls, dense_with_missing: np.ndarray, missing: int = -1) -> tuple[
        "ValidityMask", np.ndarray
    ]:
        """Split a matrix containing *missing* sentinels into (mask, clean data).

        Missing cells become 0 in the returned data (so they are inert in
        AND/POPCNT kernels) and 0 in the mask.
        """
        arr = np.asarray(dense_with_missing)
        if arr.ndim != 2:
            raise ValueError(f"expected 2-D matrix, got shape {arr.shape}")
        is_missing = arr == missing
        clean = np.where(is_missing, 0, arr).astype(np.uint8)
        if not np.isin(clean, (0, 1)).all():
            raise ValueError("non-missing entries must be binary 0/1")
        return cls.from_dense(~is_missing), clean

    # -- shape -------------------------------------------------------------

    @property
    def n_samples(self) -> int:
        """Number of samples covered by the mask."""
        return self.bits.n_samples

    @property
    def n_snps(self) -> int:
        """Number of SNPs covered by the mask."""
        return self.bits.n_snps

    @property
    def words(self) -> np.ndarray:
        """Packed ``(n_snps, n_words)`` validity words."""
        return self.bits.words

    # -- mask algebra --------------------------------------------------------

    def valid_counts(self) -> np.ndarray:
        """Valid samples per SNP: ``POPCNT(c_i)``."""
        return self.bits.allele_counts()

    def pair_valid_words(self, i: int, j: int) -> np.ndarray:
        """Packed joint-validity words ``c_ij = c_i & c_j`` for one SNP pair."""
        return self.words[i] & self.words[j]

    def apply(self, data: BitMatrix) -> BitMatrix:
        """Zero out invalid cells of *data*: ``s_i & c_i`` per SNP."""
        if data.shape != (self.n_samples, self.n_snps):
            raise ValueError(
                f"mask shape {(self.n_samples, self.n_snps)} does not match "
                f"data shape {data.shape}"
            )
        return BitMatrix(words=data.words & self.words, n_samples=data.n_samples)

    def __repr__(self) -> str:
        return f"ValidityMask(n_samples={self.n_samples}, n_snps={self.n_snps})"
