"""Finite-sites (four-state) SNP encoding (paper Section VII).

Under a finite-sites model a SNP can carry any of the four nucleotide states,
so one bit per sample no longer suffices. Following the paper, each SNP is
represented by **four bit vectors**, one per nucleotide in ``{A, C, G, T}``:
bit *k* of plane ``X`` is set iff sample *k* carries state ``X`` at that SNP.
Alignment gaps and ambiguous characters (``N`` etc.) set no plane bit, which
makes them invisible to AND/POPCNT kernels; their positions are tracked by the
implied validity mask (the OR of the four planes).

With this encoding, the state-pair haplotype count for states ``(a, b)`` at
SNPs ``(i, j)`` is ``POPCNT(plane_a[i] & plane_b[j])`` — the identical kernel
the infinite-sites path uses, run once per state pair (≤16 combinations, the
"16× more computations" worst case the paper quotes).
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from repro.encoding.bitmatrix import BitMatrix
from repro.encoding.masks import ValidityMask

__all__ = ["DNA_STATES", "FiniteSitesMatrix"]

#: Canonical nucleotide ordering used for the four bit planes.
DNA_STATES = ("A", "C", "G", "T")

_STATE_INDEX = {state: idx for idx, state in enumerate(DNA_STATES)}


@dataclass(frozen=True)
class FiniteSitesMatrix:
    """Four-bit-plane encoding of a nucleotide alignment's SNPs.

    Attributes
    ----------
    planes:
        Tuple of four :class:`BitMatrix` objects in :data:`DNA_STATES` order,
        all over the same ``(n_samples, n_snps)`` grid.
    """

    planes: tuple[BitMatrix, BitMatrix, BitMatrix, BitMatrix]

    def __post_init__(self) -> None:
        if len(self.planes) != 4:
            raise ValueError(f"expected 4 bit planes, got {len(self.planes)}")
        shapes = {plane.shape for plane in self.planes}
        if len(shapes) != 1:
            raise ValueError(f"bit planes disagree on shape: {shapes}")
        # A sample can carry at most one state per SNP: planes are disjoint.
        combined = np.zeros_like(self.planes[0].words)
        for plane in self.planes:
            if np.any(combined & plane.words):
                raise ValueError("bit planes overlap: a sample has two states")
            combined |= plane.words

    # -- constructors ------------------------------------------------------

    @classmethod
    def from_characters(cls, alignment: np.ndarray) -> "FiniteSitesMatrix":
        """Encode a character alignment of shape ``(n_samples, n_snps)``.

        Accepts an array of single-character strings (or bytes). ``A/C/G/T``
        (case-insensitive) set the matching plane; anything else (gaps ``-``,
        ambiguity codes, ``N``) sets no plane and is treated as invalid.
        """
        chars = np.asarray(alignment)
        if chars.ndim != 2:
            raise ValueError(f"alignment must be 2-D, got shape {chars.shape}")
        if chars.dtype.kind == "S":
            chars = chars.astype("U1")
        upper = np.char.upper(chars.astype("U1"))
        planes = []
        for state in DNA_STATES:
            planes.append(BitMatrix.from_dense((upper == state).astype(np.uint8)))
        return cls(planes=tuple(planes))

    # -- shape -------------------------------------------------------------

    @property
    def n_samples(self) -> int:
        """Number of samples (alignment rows)."""
        return self.planes[0].n_samples

    @property
    def n_snps(self) -> int:
        """Number of SNP columns."""
        return self.planes[0].n_snps

    @property
    def shape(self) -> tuple[int, int]:
        """Logical ``(n_samples, n_snps)`` shape."""
        return self.planes[0].shape

    # -- accessors ---------------------------------------------------------

    def plane(self, state: str) -> BitMatrix:
        """Bit plane for one nucleotide state (``"A"``, ``"C"``, ``"G"``, ``"T"``)."""
        try:
            return self.planes[_STATE_INDEX[state.upper()]]
        except KeyError:
            raise ValueError(f"unknown DNA state {state!r}") from None

    def validity_mask(self) -> ValidityMask:
        """Mask of samples carrying any valid (unambiguous, non-gap) state."""
        combined = self.planes[0].words.copy()
        for plane in self.planes[1:]:
            combined |= plane.words
        return ValidityMask(
            bits=BitMatrix(words=combined, n_samples=self.n_samples)
        )

    def state_counts(self) -> np.ndarray:
        """Per-SNP counts of each state: shape ``(n_snps, 4)`` in A,C,G,T order."""
        return np.stack(
            [plane.allele_counts() for plane in self.planes], axis=1
        )

    def n_states(self) -> np.ndarray:
        """Per-SNP number of distinct observed states ``v_i`` (Eq. 6's v)."""
        return (self.state_counts() > 0).sum(axis=1)

    def to_characters(self) -> np.ndarray:
        """Decode back to a ``(n_samples, n_snps)`` character array.

        Cells with no state decode to ``"-"``.
        """
        out = np.full((self.n_samples, self.n_snps), "-", dtype="U1")
        for state, plane in zip(DNA_STATES, self.planes):
            dense = plane.to_dense().astype(bool)
            out[dense] = state
        return out

    def __repr__(self) -> str:
        return (
            f"FiniteSitesMatrix(n_samples={self.n_samples}, n_snps={self.n_snps})"
        )
