"""Encoding substrate: bit-packed genomic matrices and related encodings.

Implements the storage schemes the paper builds on:

- :class:`~repro.encoding.bitmatrix.BitMatrix` — the bit-packed SNP-major
  binary matrix of Figure 2 (one bit per allele under the infinite-sites
  model, SNPs padded with zeros to a multiple of 64 samples).
- :class:`~repro.encoding.genotypes.GenotypeMatrix` — PLINK-style 2-bit
  genotype encoding used by the PLINK 1.9 baseline (Section VI).
- :class:`~repro.encoding.masks.ValidityMask` — per-SNP valid-state bit
  vectors for alignment gaps / missing data (Section VII).
- :class:`~repro.encoding.fsm.FiniteSitesMatrix` — the four-bit-plane
  encoding for finite-sites models (Section VII).
"""

from repro.encoding.bitmatrix import WORD_BITS, BitMatrix, pack_bits, unpack_bits
from repro.encoding.fsm import DNA_STATES, FiniteSitesMatrix
from repro.encoding.genotypes import (
    GenotypeMatrix,
    genotypes_from_haplotypes,
)
from repro.encoding.masks import ValidityMask

__all__ = [
    "WORD_BITS",
    "BitMatrix",
    "pack_bits",
    "unpack_bits",
    "GenotypeMatrix",
    "genotypes_from_haplotypes",
    "ValidityMask",
    "FiniteSitesMatrix",
    "DNA_STATES",
]
