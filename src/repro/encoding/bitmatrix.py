"""Bit-packed SNP-major genomic matrix (the paper's Figure 2 layout).

Under the infinite-sites model every SNP has exactly two allelic states, so
one bit per (sample, SNP) cell suffices: ``0`` encodes the ancestral state and
``1`` the derived state (Section II-A). The paper stores each SNP as a run of
consecutive unsigned 64-bit integers, padding each SNP with zero bits when the
sample count is not a multiple of 64 (Section IV-A, Figure 2); zero padding is
what makes ``POPCNT(s_i & s_j)`` exact despite the padding, since padded
positions can never contribute a set bit.

:class:`BitMatrix` reproduces that layout: ``words`` is a C-contiguous
``(n_snps, n_words)`` array of ``uint64``, SNP-major so that the packed words
of one SNP are contiguous in memory — exactly the property the GotoBLAS-style
panel packing in :mod:`repro.core.packing` relies on. Bit ``b`` of word ``w``
of SNP ``s`` holds the allele of sample ``64*w + b`` at SNP ``s``
(little-endian bit numbering, matching x86 ``POPCNT`` semantics).
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from repro.util.validation import check_binary

__all__ = ["WORD_BITS", "BitMatrix", "pack_bits", "unpack_bits"]

#: Number of sample bits per packed machine word (the paper uses the 64-bit
#: POPCNT variant; see its footnote 3).
WORD_BITS = 64


def words_for_samples(n_samples: int) -> int:
    """Number of 64-bit words needed to store *n_samples* bits."""
    if n_samples < 0:
        raise ValueError(f"n_samples must be non-negative, got {n_samples}")
    return (n_samples + WORD_BITS - 1) // WORD_BITS


def pack_bits(dense: np.ndarray) -> np.ndarray:
    """Pack a binary ``(n_samples, n_snps)`` matrix into SNP-major uint64 words.

    Returns a ``(n_snps, n_words)`` ``uint64`` array with zero padding in the
    high bits of the last word of each SNP when ``n_samples % 64 != 0``.
    """
    dense = check_binary(dense, "genomic matrix")
    n_samples, n_snps = dense.shape
    n_words = words_for_samples(n_samples)
    # Transpose to SNP-major, pad the sample axis to a byte multiple, then
    # pack little-endian so bit k of the word stream is sample k.
    snp_major = np.ascontiguousarray(dense.T)
    padded_bits = n_words * WORD_BITS
    if padded_bits != n_samples:
        pad = np.zeros((n_snps, padded_bits - n_samples), dtype=np.uint8)
        snp_major = np.concatenate([snp_major, pad], axis=1)
    packed_bytes = np.packbits(snp_major, axis=1, bitorder="little")
    return np.ascontiguousarray(packed_bytes).view(np.uint64).reshape(n_snps, n_words)


def unpack_bits(words: np.ndarray, n_samples: int) -> np.ndarray:
    """Inverse of :func:`pack_bits`: recover the dense ``(n_samples, n_snps)`` matrix."""
    words = np.asarray(words, dtype=np.uint64)
    if words.ndim != 2:
        raise ValueError(f"words must be 2-D (n_snps, n_words), got {words.shape}")
    n_snps, n_words = words.shape
    if not 0 <= n_samples <= n_words * WORD_BITS:
        raise ValueError(
            f"n_samples={n_samples} incompatible with {n_words} words per SNP"
        )
    as_bytes = np.ascontiguousarray(words).view(np.uint8).reshape(n_snps, -1)
    bits = np.unpackbits(as_bytes, axis=1, bitorder="little")[:, :n_samples]
    return np.ascontiguousarray(bits.T)


@dataclass(frozen=True)
class BitMatrix:
    """A bit-packed binary genomic matrix, SNP-major (Figure 2 of the paper).

    Attributes
    ----------
    words:
        ``(n_snps, n_words)`` C-contiguous ``uint64`` array; row *i* holds the
        packed sample bits of SNP *i*, zero-padded past ``n_samples``.
    n_samples:
        Number of valid sample bits per SNP (the rest of the last word is
        guaranteed zero).
    """

    words: np.ndarray
    n_samples: int

    def __post_init__(self) -> None:
        words = np.ascontiguousarray(self.words, dtype=np.uint64)
        if words.ndim != 2:
            raise ValueError(f"words must be 2-D (n_snps, n_words), got {words.shape}")
        n_words = words.shape[1]
        if not 0 <= self.n_samples <= n_words * WORD_BITS:
            raise ValueError(
                f"n_samples={self.n_samples} does not fit {n_words} words per SNP"
            )
        # Enforce the zero-padding invariant the popcount kernel depends on.
        tail_bits = self.n_samples % WORD_BITS
        if n_words and self.n_samples < n_words * WORD_BITS:
            full_words = self.n_samples // WORD_BITS
            if tail_bits:
                mask = np.uint64((1 << tail_bits) - 1)
                if np.any(words[:, full_words] & ~mask):
                    raise ValueError("padding bits of the partial word must be zero")
                trailing = words[:, full_words + 1 :]
            else:
                trailing = words[:, full_words:]
            if trailing.size and np.any(trailing):
                raise ValueError("padding words past n_samples must be zero")
        object.__setattr__(self, "words", words)

    # -- constructors ------------------------------------------------------

    @classmethod
    def from_dense(cls, dense: np.ndarray) -> "BitMatrix":
        """Pack a dense binary ``(n_samples, n_snps)`` matrix (samples are rows)."""
        dense = check_binary(dense, "genomic matrix")
        return cls(words=pack_bits(dense), n_samples=dense.shape[0])

    @classmethod
    def from_snp_vectors(cls, snps: np.ndarray) -> "BitMatrix":
        """Pack a dense binary ``(n_snps, n_samples)`` matrix (SNPs are rows)."""
        snps = np.asarray(snps)
        if snps.ndim != 2:
            raise ValueError(f"snps must be 2-D, got shape {snps.shape}")
        return cls.from_dense(snps.T)

    @classmethod
    def zeros(cls, n_samples: int, n_snps: int) -> "BitMatrix":
        """An all-ancestral matrix of the given logical shape."""
        return cls(
            words=np.zeros((n_snps, words_for_samples(n_samples)), dtype=np.uint64),
            n_samples=n_samples,
        )

    @classmethod
    def from_packed_trusted(cls, words: np.ndarray, n_samples: int) -> "BitMatrix":
        """Wrap already-validated packed words, skipping the padding scan.

        ``__post_init__`` reads every word to enforce the zero-padding
        invariant — correct for in-RAM arrays, but on a disk-backed
        memmap (a :class:`repro.io.panelstore.PanelStore`) it would
        fault in the entire panel, defeating out-of-core execution. The
        store validates the invariant once at pack time, so reopening
        only needs the cheap metadata checks kept here. The caller
        vouches for the padding; a violation silently breaks POPCNT
        exactness, so only hand this words whose provenance enforces it.
        """
        if words.dtype != np.uint64 or words.ndim != 2:
            raise ValueError(
                f"trusted words must be 2-D uint64, got {words.dtype} "
                f"{words.shape}"
            )
        if not words.flags["C_CONTIGUOUS"]:
            raise ValueError("trusted words must be C-contiguous")
        n_samples = int(n_samples)
        if not 0 <= n_samples <= words.shape[1] * WORD_BITS:
            raise ValueError(
                f"n_samples={n_samples} does not fit {words.shape[1]} "
                "words per SNP"
            )
        self = object.__new__(cls)
        object.__setattr__(self, "words", words)
        object.__setattr__(self, "n_samples", n_samples)
        return self

    # -- shape -------------------------------------------------------------

    @property
    def n_snps(self) -> int:
        """Number of SNPs (columns of the logical genomic matrix)."""
        return self.words.shape[0]

    @property
    def n_words(self) -> int:
        """Packed 64-bit words per SNP, including padding."""
        return self.words.shape[1]

    @property
    def shape(self) -> tuple[int, int]:
        """Logical ``(n_samples, n_snps)`` shape of the genomic matrix."""
        return (self.n_samples, self.n_snps)

    @property
    def nbytes(self) -> int:
        """Bytes of packed storage."""
        return self.words.nbytes

    # -- conversions -------------------------------------------------------

    def to_dense(self) -> np.ndarray:
        """Unpack to the dense ``(n_samples, n_snps)`` 0/1 ``uint8`` matrix."""
        return unpack_bits(self.words, self.n_samples)

    def snp(self, index: int) -> np.ndarray:
        """Dense 0/1 vector (length ``n_samples``) of one SNP."""
        row = self.words[index : index + 1]
        return unpack_bits(row, self.n_samples)[:, 0]

    # -- statistics used throughout the library -----------------------------

    def allele_counts(self) -> np.ndarray:
        """Derived-allele count per SNP: ``POPCNT(s_i)`` (Equation 3 numerator)."""
        return np.bitwise_count(self.words).sum(axis=1, dtype=np.int64)

    def allele_frequencies(self) -> np.ndarray:
        """Derived-allele frequency per SNP: ``p_i = s_iᵀ s_i / N_seq`` (Eq. 3)."""
        if self.n_samples == 0:
            raise ValueError("allele frequencies undefined for zero samples")
        return self.allele_counts() / float(self.n_samples)

    def is_polymorphic(self) -> np.ndarray:
        """Boolean per SNP: segregating in the sample (0 < count < n_samples).

        Monomorphic sites are non-informative for LD (Section I); callers use
        this to drop them before pairwise computation.
        """
        counts = self.allele_counts()
        return (counts > 0) & (counts < self.n_samples)

    def drop_monomorphic(self) -> "BitMatrix":
        """A new matrix keeping only polymorphic SNPs."""
        return self.select(np.flatnonzero(self.is_polymorphic()))

    def filter_maf(self, min_maf: float) -> "BitMatrix":
        """A new matrix keeping SNPs with minor-allele frequency ≥ *min_maf*.

        The standard association-study prefilter: rare variants have little
        LD information and produce spurious perfect-r² pairs.
        """
        if not 0.0 <= min_maf <= 0.5:
            raise ValueError(f"min_maf must be in [0, 0.5], got {min_maf}")
        freqs = self.allele_frequencies()
        maf = np.minimum(freqs, 1.0 - freqs)
        return self.select(np.flatnonzero(maf >= min_maf))

    # -- structural operations ----------------------------------------------

    def select(self, snp_indices: np.ndarray) -> "BitMatrix":
        """A new matrix with the given SNPs (in the given order)."""
        idx = np.asarray(snp_indices)
        return BitMatrix(
            words=np.ascontiguousarray(self.words[idx]), n_samples=self.n_samples
        )

    def slice_snps(self, start: int, stop: int) -> "BitMatrix":
        """A new matrix over the half-open SNP range ``[start, stop)``."""
        return BitMatrix(
            words=np.ascontiguousarray(self.words[start:stop]),
            n_samples=self.n_samples,
        )

    def concat_snps(self, other: "BitMatrix") -> "BitMatrix":
        """Concatenate SNP sets of two matrices over the same samples."""
        if other.n_samples != self.n_samples:
            raise ValueError(
                f"sample counts differ: {self.n_samples} vs {other.n_samples}"
            )
        return BitMatrix(
            words=np.concatenate([self.words, other.words], axis=0),
            n_samples=self.n_samples,
        )

    def __eq__(self, other: object) -> bool:
        if not isinstance(other, BitMatrix):
            return NotImplemented
        return (
            self.n_samples == other.n_samples
            and self.words.shape == other.words.shape
            and bool(np.array_equal(self.words, other.words))
        )

    def __hash__(self) -> int:  # frozen dataclass with arrays: identity hash
        return id(self)

    def __repr__(self) -> str:
        return (
            f"BitMatrix(n_samples={self.n_samples}, n_snps={self.n_snps}, "
            f"n_words={self.n_words})"
        )
