"""FASTA alignments and SNP calling from character MSAs.

Feeds the front of the paper's workflow (Section I): a multiple-sequence
alignment arrives as FASTA; SNP calling keeps the polymorphic columns.
Biallelic columns map onto the infinite-sites bit matrix (+ validity mask
for gaps/ambiguity); columns with three or more states go to the
finite-sites path (Section VII).
"""

from __future__ import annotations

from dataclasses import dataclass
from pathlib import Path

import numpy as np

from repro.encoding.bitmatrix import BitMatrix
from repro.encoding.fsm import DNA_STATES, FiniteSitesMatrix
from repro.encoding.masks import ValidityMask

__all__ = ["SnpCallResult", "call_snps_from_alignment", "read_fasta", "write_fasta"]


def write_fasta(
    path: str | Path,
    sequences: np.ndarray,
    names: list[str] | None = None,
    *,
    line_width: int = 70,
) -> None:
    """Write a character alignment ``(n_samples, length)`` as FASTA."""
    seqs = np.asarray(sequences)
    if seqs.ndim != 2:
        raise ValueError(f"sequences must be 2-D, got shape {seqs.shape}")
    n = seqs.shape[0]
    if names is None:
        names = [f"seq{i}" for i in range(n)]
    if len(names) != n:
        raise ValueError(f"{len(names)} names for {n} sequences")
    lines = []
    for name, row in zip(names, seqs):
        lines.append(f">{name}")
        text = "".join(row.tolist())
        for start in range(0, len(text), line_width):
            lines.append(text[start : start + line_width])
    Path(path).write_text("\n".join(lines) + "\n")


def read_fasta(path: str | Path) -> tuple[np.ndarray, list[str]]:
    """Read an aligned FASTA into ``(characters, names)``.

    All records must have equal length (it is an alignment, not a read
    set); mixed lengths raise.
    """
    names: list[str] = []
    chunks: list[list[str]] = []
    current: list[str] | None = None
    for lineno, raw in enumerate(Path(path).read_text().splitlines(), start=1):
        line = raw.strip()
        if not line:
            continue
        if line.startswith(">"):
            names.append(line[1:].split()[0] if len(line) > 1 else f"seq{len(names)}")
            current = []
            chunks.append(current)
        else:
            if current is None:
                raise ValueError(f"line {lineno}: sequence data before any '>'")
            current.append(line)
    if not names:
        raise ValueError(f"no FASTA records in {path}")
    seqs = ["".join(c) for c in chunks]
    lengths = {len(s) for s in seqs}
    if len(lengths) != 1:
        raise ValueError(
            f"unaligned FASTA: record lengths {sorted(lengths)} differ"
        )
    chars = np.array([list(s) for s in seqs], dtype="U1")
    return chars, names


@dataclass(frozen=True)
class SnpCallResult:
    """SNP calls from a character alignment.

    Attributes
    ----------
    matrix:
        Packed binary matrix over the *biallelic* SNP columns (0 =
        majority allele, 1 = minority allele), invalid cells zeroed.
    mask:
        Validity mask over the biallelic columns (gaps/ambiguity = 0).
    positions:
        Alignment coordinates of the biallelic columns.
    multiallelic:
        :class:`FiniteSitesMatrix` over the columns with ≥3 states (for
        the Section VII finite-sites path); ``None`` when there are none.
    multiallelic_positions:
        Alignment coordinates of those columns.
    """

    matrix: BitMatrix
    mask: ValidityMask
    positions: np.ndarray
    multiallelic: FiniteSitesMatrix | None
    multiallelic_positions: np.ndarray


def call_snps_from_alignment(chars: np.ndarray) -> SnpCallResult:
    """Call SNPs from an aligned character matrix ``(n_samples, length)``.

    Columns with exactly two observed nucleotide states (among valid,
    unambiguous calls) become bit-matrix SNPs — majority state 0, minority
    state 1 (the ancestral state is unknown without an outgroup, so the
    frequency convention stands in, as common in practice). Columns with
    three or four states are returned as a finite-sites matrix.
    Monomorphic and all-invalid columns are dropped.
    """
    chars = np.asarray(chars)
    if chars.ndim != 2:
        raise ValueError(f"alignment must be 2-D, got shape {chars.shape}")
    upper = np.char.upper(chars.astype("U1"))
    valid = np.isin(upper, list(DNA_STATES))

    n_states = np.zeros(upper.shape[1], dtype=int)
    for state in DNA_STATES:
        n_states += ((upper == state) & valid).any(axis=0).astype(int)

    biallelic_cols = np.flatnonzero(n_states == 2)
    multi_cols = np.flatnonzero(n_states >= 3)

    n_samples = upper.shape[0]
    dense = np.zeros((n_samples, biallelic_cols.size), dtype=np.uint8)
    mask_dense = np.zeros_like(dense)
    for out_col, col in enumerate(biallelic_cols):
        column = upper[:, col]
        col_valid = valid[:, col]
        states, counts = np.unique(column[col_valid], return_counts=True)
        minority = states[int(np.argmin(counts))]
        dense[:, out_col] = ((column == minority) & col_valid).astype(np.uint8)
        mask_dense[:, out_col] = col_valid.astype(np.uint8)

    multiallelic = None
    if multi_cols.size:
        multiallelic = FiniteSitesMatrix.from_characters(upper[:, multi_cols])
    return SnpCallResult(
        matrix=BitMatrix.from_dense(dense),
        mask=ValidityMask.from_dense(mask_dense),
        positions=biallelic_cols.astype(np.float64),
        multiallelic=multiallelic,
        multiallelic_positions=multi_cols.astype(np.float64),
    )
