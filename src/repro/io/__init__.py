"""Dataset I/O substrate: the formats LD tooling consumes and produces.

- :mod:`repro.io.msformat` — Hudson ``ms`` simulator output (the format of
  the paper's simulated Datasets B/C and of OmegaPlus's default input).
- :mod:`repro.io.vcf` — a minimal VCF 4.x subset (the format of the
  1000 Genomes Dataset A), haploid or phased-diploid GT fields with
  missing-data support.
- :mod:`repro.io.plinkbed` — PLINK binary ``.bed``/``.bim``/``.fam``
  triples (the format PLINK 1.9 operates on), byte-compatible with
  PLINK's SNP-major 2-bit encoding.
- :mod:`repro.io.panelstore` — the repo's own disk-backed packed-panel
  store (``repro pack``), memmap-openable for out-of-core LD sweeps.
"""

from repro.io.msformat import read_ms, write_ms
from repro.io.panelstore import PanelStore, pack_panel
from repro.io.plinkbed import read_plink_bed, write_plink_bed
from repro.io.vcf import read_vcf, write_vcf

__all__ = [
    "read_ms",
    "write_ms",
    "PanelStore",
    "pack_panel",
    "read_plink_bed",
    "write_plink_bed",
    "read_vcf",
    "write_vcf",
]
