"""Disk-backed packed-panel store: the out-of-core input format.

The engine's shared-memory handoff requires the whole packed panel to fit
in RAM twice (driver copy + segment). At biobank scale that is the wall
Fabregat-Traver & Bientinesi knock down by streaming panels from disk
("Computing Petaflops over Terabytes of Data", PAPERS.md): the panel
lives in one versioned file, every consumer maps it read-only, and the
prefetch pipeline (:mod:`repro.core.prefetch`) slides a bounded window
over it.

File layout (version 1)::

    [ 0: 8]   magic  b"REPROPNL"
    [ 8:12]   header length (uint32, little-endian)
    [12:..]   JSON header: version, n_snps, n_words, n_samples,
              digest (sha256 of the words bytes), freqs_offset,
              words_offset
    ...       float64[n_snps] allele frequencies at freqs_offset
    ...       uint64[n_snps, n_words] word planes at words_offset
              (C order, page-aligned so a memmap window is a clean
              run of pages)

Everything expensive is paid once, at pack time: the zero-padding
invariant the popcount kernel depends on is validated while writing, the
allele frequencies are precomputed and stored, and the content digest is
taken over the exact words bytes — so :meth:`PanelStore.open` costs one
header read plus a memmap, never a full-panel scan, and a resumed
out-of-core sweep can fingerprint the input without re-reading terabytes.
"""

from __future__ import annotations

import hashlib
import json
from dataclasses import dataclass, field
from pathlib import Path

import numpy as np

from repro.encoding.bitmatrix import WORD_BITS, BitMatrix

__all__ = ["PANEL_MAGIC", "PANEL_VERSION", "PanelStore", "pack_panel"]

PANEL_MAGIC = b"REPROPNL"
PANEL_VERSION = 1

#: Word planes start on a page boundary so every prefetch window maps to
#: whole pages (no read amplification at window edges).
_WORDS_ALIGN = 4096
#: Rows hashed/written per chunk at pack time (bounds pack-time RAM when
#: the source itself is a memmap or another store).
_PACK_CHUNK_ROWS = 4096


def _aligned(offset: int, align: int) -> int:
    return (offset + align - 1) // align * align


@dataclass
class PanelStore:
    """A packed panel on disk, openable as a read-only memmap.

    Attributes
    ----------
    path:
        The store file.
    words:
        Read-only ``(n_snps, n_words)`` uint64 memmap of the word planes.
    freqs:
        Precomputed per-SNP derived-allele frequencies (float64, in RAM —
        one vector, not a panel-sized object).
    n_samples:
        Valid sample bits per SNP.
    content_digest:
        Hex sha256 of the words bytes, taken at pack time. This is the
        store's identity for manifest and warm-pool keying: equal digests
        mean bit-identical panels.
    """

    path: Path
    words: np.ndarray
    freqs: np.ndarray
    n_samples: int
    content_digest: str
    _mmap: np.memmap | None = field(default=None, repr=False)

    # -- shape (mirrors BitMatrix so engine code can stay duck-typed) ------

    @property
    def n_snps(self) -> int:
        return self.words.shape[0]

    @property
    def n_words(self) -> int:
        return self.words.shape[1]

    @property
    def row_nbytes(self) -> int:
        """Bytes of one packed SNP row (the prefetch budget unit)."""
        return self.n_words * 8

    @property
    def nbytes(self) -> int:
        """Bytes of packed words on disk."""
        return self.n_snps * self.row_nbytes

    def allele_frequencies(self) -> np.ndarray:
        """The frequencies precomputed at pack time (no panel scan)."""
        return self.freqs

    def to_bitmatrix(self) -> BitMatrix:
        """Zero-copy :class:`BitMatrix` over the memmapped words.

        Uses the trusted constructor: the padding invariant was enforced
        at pack time, so opening must not re-read the whole panel.
        """
        return BitMatrix.from_packed_trusted(self.words, self.n_samples)

    def read_rows(
        self, start: int, stop: int, out: np.ndarray | None = None
    ) -> np.ndarray:
        """Copy rows ``[start, stop)`` from disk into RAM (or *out*).

        This is the prefetcher's read primitive: an explicit copy, so the
        returned window is ordinary anonymous memory whose lifetime the
        byte budget controls, independent of the page cache.
        """
        if not 0 <= start <= stop <= self.n_snps:
            raise ValueError(
                f"row range [{start}, {stop}) outside panel of {self.n_snps}"
            )
        if out is None:
            return np.array(self.words[start:stop], dtype=np.uint64)
        rows = stop - start
        view = out[:rows]
        np.copyto(view, self.words[start:stop])
        return view

    def verify(self) -> bool:
        """Re-hash the words bytes against the stored digest (full read)."""
        digest = hashlib.sha256()
        for start in range(0, self.n_snps, _PACK_CHUNK_ROWS):
            chunk = self.words[start : start + _PACK_CHUNK_ROWS]
            digest.update(np.ascontiguousarray(chunk).tobytes())
        return digest.hexdigest() == self.content_digest

    def close(self) -> None:
        """Release the memmap; idempotent."""
        self._mmap = None
        self.words = None  # type: ignore[assignment]

    def __enter__(self) -> "PanelStore":
        return self

    def __exit__(self, *exc_info: object) -> None:
        self.close()

    # -- constructors ------------------------------------------------------

    @classmethod
    def open(cls, path: str | Path) -> "PanelStore":
        """Open a packed-panel store read-only (header parse + memmap)."""
        path = Path(path)
        with path.open("rb") as fh:
            magic = fh.read(8)
            if magic != PANEL_MAGIC:
                raise ValueError(
                    f"{path} is not a repro panel store (bad magic "
                    f"{magic!r}); produce one with `repro pack`"
                )
            raw_len = fh.read(4)
            if len(raw_len) != 4:
                raise ValueError(f"{path}: truncated panel-store header")
            header_len = int.from_bytes(raw_len, "little")
            try:
                header = json.loads(fh.read(header_len).decode("utf-8"))
            except (UnicodeDecodeError, json.JSONDecodeError) as exc:
                raise ValueError(
                    f"{path}: corrupt panel-store header ({exc})"
                ) from exc
        version = header.get("version")
        if version != PANEL_VERSION:
            raise ValueError(
                f"{path}: unsupported panel-store version {version!r} "
                f"(this build reads version {PANEL_VERSION})"
            )
        required = (
            "n_snps", "n_words", "n_samples", "digest",
            "freqs_offset", "words_offset",
        )
        missing = [key for key in required if key not in header]
        if missing:
            raise ValueError(
                f"{path}: panel-store header missing fields {missing}"
            )
        n_snps = int(header["n_snps"])
        n_words = int(header["n_words"])
        n_samples = int(header["n_samples"])
        if not 0 <= n_samples <= n_words * WORD_BITS:
            raise ValueError(
                f"{path}: n_samples={n_samples} does not fit "
                f"{n_words} words per SNP"
            )
        words_offset = int(header["words_offset"])
        expect = words_offset + n_snps * n_words * 8
        actual = path.stat().st_size
        if actual < expect:
            raise ValueError(
                f"{path}: truncated panel store ({actual} bytes, "
                f"needs {expect}); repack it"
            )
        with path.open("rb") as fh:
            fh.seek(int(header["freqs_offset"]))
            freqs = np.fromfile(fh, dtype="<f8", count=n_snps)
        if freqs.size != n_snps:
            raise ValueError(f"{path}: truncated frequency block")
        mmap = np.memmap(
            path, dtype=np.uint64, mode="r", offset=words_offset,
            shape=(n_snps, n_words), order="C",
        )
        return cls(
            path=path,
            words=mmap,
            freqs=freqs,
            n_samples=n_samples,
            content_digest=str(header["digest"]),
            _mmap=mmap,
        )

    @classmethod
    def create(
        cls, path: str | Path, matrix: "BitMatrix | np.ndarray",
        *, n_samples: int | None = None,
    ) -> "PanelStore":
        """Pack *matrix* into a store file at *path* and open it.

        Accepts a :class:`BitMatrix` (already packed and validated), a
        dense binary ``(n_samples, n_snps)`` array, or a raw
        ``(n_snps, n_words)`` uint64 word array with an explicit
        *n_samples* (validated here — the store must never hold words
        that violate the zero-padding invariant).
        """
        if isinstance(matrix, BitMatrix):
            panel = matrix
        elif n_samples is not None:
            # Raw words: BitMatrix.__post_init__ enforces the padding
            # invariant the popcount kernel (and every later open) trusts.
            panel = BitMatrix(
                words=np.asarray(matrix, dtype=np.uint64),
                n_samples=int(n_samples),
            )
        else:
            panel = BitMatrix.from_dense(np.asarray(matrix))
        return pack_panel(path, panel)


def pack_panel(path: str | Path, panel: BitMatrix) -> PanelStore:
    """Write *panel* as a version-1 store file and reopen it read-only.

    The write is chunked (``_PACK_CHUNK_ROWS`` rows at a time) with the
    content digest accumulated over exactly the bytes written, and the
    file is written to a temporary sibling then renamed — a crashed pack
    never leaves a half-store behind under the target name.
    """
    path = Path(path)
    if panel.n_samples == 0:
        raise ValueError("cannot pack a panel with zero samples")
    freqs = panel.allele_frequencies()
    words = panel.words
    digest = hashlib.sha256()
    for start in range(0, panel.n_snps, _PACK_CHUNK_ROWS):
        digest.update(
            np.ascontiguousarray(words[start : start + _PACK_CHUNK_ROWS])
            .tobytes()
        )
    header = {
        "version": PANEL_VERSION,
        "n_snps": panel.n_snps,
        "n_words": panel.n_words,
        "n_samples": panel.n_samples,
        "digest": digest.hexdigest(),
    }
    # Two-pass offset computation: the header's byte length depends on
    # the offsets it carries, so reserve generous fixed-width values.
    probe = dict(header, freqs_offset=0, words_offset=0)
    header_len = len(json.dumps(probe).encode()) + 32
    freqs_offset = _aligned(8 + 4 + header_len, 64)
    words_offset = _aligned(freqs_offset + panel.n_snps * 8, _WORDS_ALIGN)
    header["freqs_offset"] = freqs_offset
    header["words_offset"] = words_offset
    blob = json.dumps(header).encode()
    if len(blob) > header_len:  # pragma: no cover - 32 spare bytes suffice
        raise RuntimeError("panel-store header overflow")
    blob = blob + b" " * (header_len - len(blob))
    tmp = path.with_name(path.name + ".packing")
    with tmp.open("wb") as fh:
        fh.write(PANEL_MAGIC)
        fh.write(len(blob).to_bytes(4, "little"))
        fh.write(blob)
        fh.write(b"\x00" * (freqs_offset - fh.tell()))
        np.ascontiguousarray(freqs, dtype="<f8").tofile(fh)
        fh.write(b"\x00" * (words_offset - fh.tell()))
        for start in range(0, panel.n_snps, _PACK_CHUNK_ROWS):
            np.ascontiguousarray(
                words[start : start + _PACK_CHUNK_ROWS]
            ).tofile(fh)
        fh.flush()
    tmp.replace(path)
    return PanelStore.open(path)
