"""Minimal VCF 4.x subset: enough to round-trip haplotype panels.

Supports what LD computation needs from the 1000-Genomes-style inputs of
the paper's Dataset A: biallelic SNP records with GT fields, either haploid
(``0`` / ``1`` / ``.``) or phased diploid (``0|1`` etc., each individual
contributing two haplotypes), with missing calls mapping to the validity
mask. Everything else (INFO/FORMAT subtleties, multi-allelic records,
unphased genotypes) is rejected loudly rather than guessed at.

Files ending in ``.gz`` are read and written gzip-compressed transparently
(1000 Genomes ships ``.vcf.gz``).
"""

from __future__ import annotations

import gzip
from dataclasses import dataclass
from pathlib import Path

import numpy as np


def _read_text(path: Path) -> str:
    if path.suffix == ".gz":
        try:
            with gzip.open(path, "rt") as fh:
                return fh.read()
        except gzip.BadGzipFile as exc:
            raise ValueError(
                f"{path} is not valid gzip data ({exc}); re-download or "
                "decompress it"
            ) from exc
        except EOFError as exc:
            raise ValueError(
                f"{path} is truncated: the gzip stream ends mid-member "
                "(interrupted download?)"
            ) from exc
    return path.read_text()


def _write_text(path: Path, text: str) -> None:
    if path.suffix == ".gz":
        with gzip.open(path, "wt") as fh:
            fh.write(text)
    else:
        path.write_text(text)

from repro.encoding.bitmatrix import BitMatrix
from repro.encoding.masks import ValidityMask

__all__ = ["VcfPanel", "read_vcf", "write_vcf"]


@dataclass(frozen=True)
class VcfPanel:
    """Haplotype panel parsed from a VCF.

    Attributes
    ----------
    haplotypes:
        Dense ``(n_haplotypes, n_snps)`` 0/1 matrix; missing calls are 0.
    valid:
        Boolean matrix of the same shape; False where the call was missing.
    positions:
        POS column values.
    ids:
        Record IDs.
    ploidy:
        1 (haploid GT) or 2 (phased diploid; consecutive haplotype rows
        pair into individuals).
    """

    haplotypes: np.ndarray
    valid: np.ndarray
    positions: np.ndarray
    ids: list[str]
    ploidy: int

    def to_bitmatrix(self) -> BitMatrix:
        """Pack haplotypes (missing cells already zeroed)."""
        return BitMatrix.from_dense(self.haplotypes)

    def to_mask(self) -> ValidityMask:
        """Validity mask for the gap-aware LD path."""
        return ValidityMask.from_dense(self.valid.astype(np.uint8))


def write_vcf(
    path: str | Path,
    haplotypes: np.ndarray,
    positions: np.ndarray,
    *,
    chrom: str = "1",
    ploidy: int = 2,
    missing: np.ndarray | None = None,
) -> None:
    """Write a haplotype panel as a VCF.

    Parameters
    ----------
    haplotypes:
        Dense ``(n_haplotypes, n_snps)`` 0/1 matrix. With ``ploidy=2`` the
        haplotype count must be even; rows pair into individuals.
    positions:
        Integer-valued POS per SNP (ascending).
    missing:
        Optional boolean matrix marking missing calls (written as ``.``).
    """
    haps = np.asarray(haplotypes)
    positions = np.asarray(positions)
    if haps.ndim != 2:
        raise ValueError(f"haplotypes must be 2-D, got shape {haps.shape}")
    n_haps, n_snps = haps.shape
    if positions.size != n_snps:
        raise ValueError(f"{positions.size} positions for {n_snps} SNPs")
    if ploidy not in (1, 2):
        raise ValueError(f"ploidy must be 1 or 2, got {ploidy}")
    if ploidy == 2 and n_haps % 2:
        raise ValueError("diploid output needs an even number of haplotypes")
    if missing is None:
        missing = np.zeros(haps.shape, dtype=bool)
    else:
        missing = np.asarray(missing, dtype=bool)
        if missing.shape != haps.shape:
            raise ValueError("missing mask shape must match haplotypes")
    n_individuals = n_haps // ploidy
    lines = [
        "##fileformat=VCFv4.2",
        '##FORMAT=<ID=GT,Number=1,Type=String,Description="Genotype">',
        "#CHROM\tPOS\tID\tREF\tALT\tQUAL\tFILTER\tINFO\tFORMAT\t"
        + "\t".join(f"sample{i}" for i in range(n_individuals)),
    ]
    for s in range(n_snps):
        fields = [
            chrom,
            str(int(positions[s])),
            f"snp{s}",
            "A",
            "T",
            ".",
            "PASS",
            ".",
            "GT",
        ]
        for ind in range(n_individuals):
            calls = []
            for h in range(ploidy):
                row = ind * ploidy + h
                calls.append("." if missing[row, s] else str(int(haps[row, s])))
            fields.append("|".join(calls))
        lines.append("\t".join(fields))
    _write_text(Path(path), "\n".join(lines) + "\n")


def read_vcf(path: str | Path) -> VcfPanel:
    """Parse a minimal VCF into a haplotype panel.

    Requires biallelic records and consistent GT ploidy; phased separators
    (``|``) are required for diploid genotypes because LD on haplotypes
    needs phase (the paper's allele-oriented setting).
    """
    positions: list[int] = []
    ids: list[str] = []
    hap_rows: list[list[int]] = []
    valid_rows: list[list[bool]] = []
    ploidy: int | None = None
    n_individuals: int | None = None
    for lineno, raw in enumerate(
        _read_text(Path(path)).splitlines(), start=1
    ):
        line = raw.rstrip("\n")
        if not line or line.startswith("##"):
            continue
        if line.startswith("#CHROM"):
            header = line.split("\t")
            if len(header) < 10:
                raise ValueError("VCF has no sample columns")
            n_individuals = len(header) - 9
            continue
        if n_individuals is None:
            raise ValueError("VCF data line before #CHROM header")
        fields = line.split("\t")
        if len(fields) != 9 + n_individuals:
            raise ValueError(
                f"line {lineno}: expected {9 + n_individuals} columns, "
                f"got {len(fields)}"
            )
        ref, alt = fields[3], fields[4]
        if "," in alt:
            raise ValueError(
                f"line {lineno}: multi-allelic record (ALT={alt!r}) "
                "unsupported; split it (e.g. bcftools norm -m-) first"
            )
        if len(ref) != 1 or len(alt) != 1:
            raise ValueError(
                f"line {lineno}: only biallelic SNP records supported, "
                f"got REF={ref!r} ALT={alt!r} (indel/structural?)"
            )
        fmt = fields[8].split(":")
        if fmt[0] != "GT":
            raise ValueError(f"line {lineno}: first FORMAT field must be GT")
        site_calls: list[int] = []
        site_valid: list[bool] = []
        for col in fields[9:]:
            gt = col.split(":", 1)[0]
            if "/" in gt:
                raise ValueError(
                    f"line {lineno}: unphased genotype {gt!r}; haplotype LD "
                    "requires phased data"
                )
            alleles = gt.split("|")
            if ploidy is None:
                ploidy = len(alleles)
                if ploidy not in (1, 2):
                    raise ValueError(f"line {lineno}: unsupported ploidy {ploidy}")
            elif len(alleles) != ploidy:
                raise ValueError(f"line {lineno}: inconsistent ploidy")
            for allele in alleles:
                if allele == ".":
                    site_calls.append(0)
                    site_valid.append(False)
                elif allele in ("0", "1"):
                    site_calls.append(int(allele))
                    site_valid.append(True)
                else:
                    raise ValueError(
                        f"line {lineno}: unexpected allele {allele!r}"
                    )
        try:
            positions.append(int(fields[1]))
        except ValueError:
            raise ValueError(
                f"line {lineno}: POS must be an integer, got {fields[1]!r}"
            ) from None
        ids.append(fields[2])
        hap_rows.append(site_calls)
        valid_rows.append(site_valid)
    if not hap_rows:
        raise ValueError(f"no variant records in {path}")
    assert ploidy is not None
    haplotypes = np.array(hap_rows, dtype=np.uint8).T
    valid = np.array(valid_rows, dtype=bool).T
    return VcfPanel(
        haplotypes=np.ascontiguousarray(haplotypes),
        valid=np.ascontiguousarray(valid),
        positions=np.array(positions, dtype=np.int64),
        ids=ids,
        ploidy=ploidy,
    )
